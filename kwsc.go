// Package kwsc implements the indexes of Lu & Tao, "Indexing for Keyword
// Search with Structured Constraints" (PODS 2023): data structures that
// answer queries combining keyword search (find the objects whose documents
// contain all k supplied keywords) with structured geometric predicates —
// orthogonal ranges, rectangle intersection, linear constraints, spheres,
// and nearest-neighbor prioritization — in time O(N^{1-1/k} (1 + OUT^{1/k}))
// rather than the Theta(N) of the two naive strategies.
//
// # Data model
//
// The input is a set D of objects; each object carries a point in R^d and a
// non-empty document, a set of integer keywords. The input size is
// N = sum |e.Doc|. A query supplies a structured predicate plus k >= 2
// distinct keywords and returns the objects satisfying both. Indexes fix k
// at construction time.
//
// # Index catalog (Table 1 of the paper)
//
//	NewORPKW        orthogonal range reporting, d <= 2 (Theorem 1)
//	NewORPKWHigh    orthogonal range reporting, d >= 3 (Theorem 2)
//	NewRRKW         rectangle-intersection reporting (Corollary 3)
//	NewLinfNN       L∞ nearest neighbors (Corollary 4)
//	NewLCKW         linear-conjunction / simplex reporting (Theorems 5, 12)
//	NewSRPKW        spherical range reporting (Corollary 6)
//	NewL2NN         L2 nearest neighbors on integer grids (Corollary 7)
//	NewKSI          pure k-set-intersection reporting (Section 1.2)
//
// Baselines for comparison (the pre-paper state of the art): an inverted
// index with posting-list intersection (NewInvertedIndex) and a plain
// geometric index followed by keyword filtering (NewStructuredOnly).
//
// # Quickstart
//
//	objs := []kwsc.Object{
//		{Point: kwsc.Point{120, 8.7}, Doc: []kwsc.Keyword{pool, parking}},
//		...
//	}
//	ds, _ := kwsc.NewDataset(objs)
//	ix, _ := kwsc.NewORPKW(ds, 2) // queries will carry 2 keywords
//	ids, _, _ := ix.Collect(kwsc.NewRect(
//		[]float64{100, 8}, []float64{200, 10}), // price, rating ranges
//		[]kwsc.Keyword{pool, parking}, kwsc.QueryOpts{})
//
// Beyond the static indexes, the package grows the paper's structures into a
// small system: mutable indexes (NewDynamicORPKW), crash-safe durability
// (OpenDurable), WAL-shipping read replicas with measured staleness
// (StartReplica), out-of-core paged images (OpenPagedORPKW), and a sharded
// replica-aware HTTP service (cmd/kwscd).
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// measured reproduction of the paper's complexity claims.
package kwsc

import (
	"context"
	"fmt"
	"io"

	"kwsc/internal/bitpack"
	"kwsc/internal/codec"
	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/invidx"
	"kwsc/internal/spart"
	"kwsc/internal/twosi"
)

// Re-exported data-model types.
type (
	// Keyword is an integer keyword; documents are sets of keywords.
	Keyword = dataset.Keyword
	// Object is one input element: a point plus its document.
	Object = dataset.Object
	// Dataset is a validated input instance (see NewDataset).
	Dataset = dataset.Dataset
	// Point is a point in R^d.
	Point = geom.Point
	// Rect is a closed d-rectangle, possibly with infinite bounds.
	Rect = geom.Rect
	// Halfspace is a linear constraint sum c_i x_i <= b.
	Halfspace = geom.Halfspace
	// Polyhedron is an intersection of halfspaces.
	Polyhedron = geom.Polyhedron
	// Simplex is a d-simplex given by d+1 vertices.
	Simplex = geom.Simplex
	// Sphere is a closed L2 ball.
	Sphere = geom.Sphere
	// Region is any query region (Rect, Polyhedron, Sphere, FullSpace).
	Region = geom.Region
	// FullSpace is the region covering all of R^d (pure keyword search).
	FullSpace = geom.FullSpace
)

// Re-exported index types; constructors below document each.
type (
	// ORPKW answers orthogonal-range + keywords queries (Theorem 1).
	ORPKW = core.ORPKW
	// ORPKWHigh is ORP-KW for d >= 3 via dimension reduction (Theorem 2).
	ORPKWHigh = core.ORPKWHigh
	// RRKW answers rectangle-intersection + keywords queries (Corollary 3).
	RRKW = core.RRKW
	// RectObject is RR-KW's input element: a rectangle plus a document.
	RectObject = core.RectObject
	// LCKW answers linear-conjunction/simplex + keywords queries
	// (Theorems 5 and 12). It is the SP-KW index of Appendix D.
	LCKW = core.SPKW
	// LCKWConfig tunes LC-KW construction (substrate, lifted points).
	LCKWConfig = core.SPKWConfig
	// SRPKW answers sphere + keywords queries via lifting (Corollary 6).
	SRPKW = core.SRPKW
	// LinfNN answers t-nearest-neighbor + keywords queries under L∞
	// (Corollary 4).
	LinfNN = core.LinfNN
	// L2NN answers t-nearest-neighbor + keywords queries under L2 on
	// integer coordinates (Corollary 7).
	L2NN = core.L2NN
	// KSI answers pure k-set-intersection queries (Section 1.2).
	KSI = core.KSI
	// NNResult is one reported neighbor: object id and distance.
	NNResult = core.NNResult
	// NNStats instruments a nearest-neighbor search.
	NNStats = core.NNStats
	// QueryOpts carries optional result limits and work budgets.
	QueryOpts = core.QueryOpts
	// QueryStats instruments one query (visited/covered/crossing nodes,
	// work units, truncation flags).
	QueryStats = core.QueryStats
	// SpaceBreakdown is the analytic space audit of an index.
	SpaceBreakdown = core.SpaceBreakdown
	// InvertedIndex is the keywords-only naive baseline.
	InvertedIndex = invidx.Index
	// StructuredOnly is the geometry-only naive baseline.
	StructuredOnly = core.StructuredOnly
)

// NewDataset validates objects (non-empty documents, consistent dimensions)
// and builds a dataset; documents are sorted and de-duplicated.
func NewDataset(objs []Object) (*Dataset, error) { return dataset.New(objs) }

// NewRect returns the closed rectangle with the given bounds; use math.Inf
// for half-open ranges.
func NewRect(lo, hi []float64) *Rect { return geom.NewRect(lo, hi) }

// NewSphere returns the closed ball with the given center and radius.
func NewSphere(center Point, radius float64) *Sphere { return geom.NewSphere(center, radius) }

// NewSimplex returns the d-simplex with the given d+1 vertices.
func NewSimplex(v ...Point) *Simplex { return geom.NewSimplex(v...) }

// NewPolyhedron returns the intersection of the given halfspaces.
func NewPolyhedron(hs ...Halfspace) *Polyhedron { return geom.NewPolyhedron(hs...) }

// BuildOpts tunes index construction. The zero value builds subtrees in
// parallel across every core; Parallelism: 1 forces a sequential build.
// Parallel and sequential builds produce indexes that answer every query
// identically. Most callers pass Option values to the constructors instead
// of filling this struct.
type BuildOpts = core.BuildOpts

// Option is a functional construction option accepted by every index
// constructor: NewORPKW(ds, k, WithParallelism(4), WithTracer(t)).
type Option = core.BuildOption

// WithParallelism caps the number of goroutines a build may use; 1 forces a
// sequential build.
func WithParallelism(p int) Option { return core.WithParallelism(p) }

// WithTracer installs a per-index tracer: every query span the index emits
// goes to t in addition to any process-wide tracer (SetTracer).
func WithTracer(t Tracer) Option { return core.WithTracer(t) }

// WithoutObs excludes the index from the metrics registry, tracing, and the
// slow-query log (e.g. shadow indexes that must stay invisible to
// monitoring).
func WithoutObs() Option { return core.WithoutObs() }

// WithFlatLayout converts the index to the cache-conscious flat layout at the
// end of construction: tree nodes re-ordered into BFS order with implicit
// contiguous child addressing, node payloads packed into shared arenas,
// materialized keyword lists delta-encoded into fixed-size bit-packed blocks,
// and per-child non-emptiness tensors concatenated into one bit arena.
// Queries answer identically to the pointer layout (same results, stats, and
// policy semantics); resident memory shrinks and conjunctive queries speed up
// on large inputs. Built indexes can also be converted in place later via
// their Flatten method (ORPKW, ORPKWHigh, LCKW), e.g. after a warm-up phase —
// but never concurrently with queries. Dynamic indexes (NewDynamicORPKW)
// rebuild their static parts on merge and do not retain the flag; flatten the
// static snapshot instead.
func WithFlatLayout() Option { return core.WithFlatLayout() }

// NewORPKW builds the Theorem 1 index: O(N) space and
// O(N^{1-1/k} (1 + OUT^{1/k})) query time for d <= 2 (any d is accepted;
// for d >= 3 prefer NewORPKWHigh, whose query bound is dimension-free).
func NewORPKW(ds *Dataset, k int, opts ...Option) (*ORPKW, error) {
	return core.BuildORPKW(ds, k, opts...)
}

// NewORPKWWith is NewORPKW with an explicit options struct.
//
// Deprecated: use NewORPKW with Option values.
func NewORPKWWith(ds *Dataset, k int, opts BuildOpts) (*ORPKW, error) {
	return core.BuildORPKWWith(ds, k, opts)
}

// NewORPKWHigh builds the Theorem 2 index for d >= 3:
// O(N (log log N)^{d-2}) space, O(N^{1-1/k} (1 + OUT^{1/k})) query time.
func NewORPKWHigh(ds *Dataset, k int, opts ...Option) (*ORPKWHigh, error) {
	return core.BuildORPKWHigh(ds, k, opts...)
}

// NewORPKWHighWith is NewORPKWHigh with an explicit options struct.
//
// Deprecated: use NewORPKWHigh with Option values.
func NewORPKWHighWith(ds *Dataset, k int, opts BuildOpts) (*ORPKWHigh, error) {
	return core.BuildORPKWHighWith(ds, k, opts)
}

// NewRRKW builds the Corollary 3 index over d-rectangles; queries report
// the data rectangles intersecting a query rectangle that carry all k
// keywords.
func NewRRKW(rects []RectObject, k int, opts ...Option) (*RRKW, error) {
	return core.BuildRRKW(rects, k, opts...)
}

// NewRRKWWith is NewRRKW with an explicit options struct.
//
// Deprecated: use NewRRKW with Option values.
func NewRRKWWith(rects []RectObject, k int, opts BuildOpts) (*RRKW, error) {
	return core.BuildRRKWWith(rects, k, opts)
}

// NewLCKW builds the Theorem 5 / Theorem 12 index: linear-conjunction and
// simplex reporting with keywords. The zero config selects the default
// substrate (Willard partition tree for d = 2, box tree otherwise); Option
// values apply on top of cfg.Build.
func NewLCKW(ds *Dataset, cfg LCKWConfig, opts ...Option) (*LCKW, error) {
	cfg.Build = cfg.Build.With(opts...)
	return core.BuildSPKW(ds, cfg)
}

// NewSRPKW builds the Corollary 6 index: spherical range reporting with
// keywords via the lifting transformation.
func NewSRPKW(ds *Dataset, k int, opts ...Option) (*SRPKW, error) {
	return core.BuildSRPKW(ds, k, opts...)
}

// NewSRPKWWith is NewSRPKW with an explicit options struct.
//
// Deprecated: use NewSRPKW with Option values.
func NewSRPKWWith(ds *Dataset, k int, opts BuildOpts) (*SRPKW, error) {
	return core.BuildSRPKWWith(ds, k, opts)
}

// NewLinfNN builds the Corollary 4 index: t nearest neighbors under L∞
// among the objects carrying all k keywords.
func NewLinfNN(ds *Dataset, k int, opts ...Option) (*LinfNN, error) {
	return core.BuildLinfNN(ds, k, opts...)
}

// NewLinfNNWith is NewLinfNN with an explicit options struct.
//
// Deprecated: use NewLinfNN with Option values.
func NewLinfNNWith(ds *Dataset, k int, opts BuildOpts) (*LinfNN, error) {
	return core.BuildLinfNNWith(ds, k, opts)
}

// NewL2NN builds the Corollary 7 index: t nearest neighbors under L2 among
// the objects carrying all k keywords; coordinates must be integers.
func NewL2NN(ds *Dataset, k int, opts ...Option) (*L2NN, error) {
	return core.BuildL2NN(ds, k, opts...)
}

// NewL2NNWith is NewL2NN with an explicit options struct.
//
// Deprecated: use NewL2NN with Option values.
func NewL2NNWith(ds *Dataset, k int, opts BuildOpts) (*L2NN, error) {
	return core.BuildL2NNWith(ds, k, opts)
}

// NewKSI builds the Section 1.2 index over explicit sets: reporting and
// emptiness queries on the intersection of any k of them.
func NewKSI(sets [][]int64, k int, opts ...Option) (*KSI, error) {
	return core.BuildKSI(sets, k, opts...)
}

// NewKSIFromDataset treats a dataset's documents as the sets and indexes
// pure keyword search over them.
func NewKSIFromDataset(ds *Dataset, k int, opts ...Option) (*KSI, error) {
	return core.BuildKSIFromDataset(ds, k, opts...)
}

// checkDataset rejects datasets no index constructor can use, with an error
// matching ErrInvalidDataset.
func checkDataset(ds *Dataset) error {
	if ds == nil {
		return fmt.Errorf("%w: nil dataset", ErrInvalidDataset)
	}
	if ds.Len() == 0 {
		return fmt.Errorf("%w: empty dataset", ErrInvalidDataset)
	}
	return nil
}

// NewInvertedIndex builds the keywords-only naive baseline.
func NewInvertedIndex(ds *Dataset) (*InvertedIndex, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	return invidx.Build(ds), nil
}

// NewStructuredOnly builds the geometry-only naive baseline (a plain
// space-partitioning tree followed by keyword filtering).
func NewStructuredOnly(ds *Dataset) (*StructuredOnly, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	return core.BuildStructuredOnly(ds, nil), nil
}

// Universe returns the rectangle covering all of R^d (e.g. to run a pure
// keyword query against a rectangle index).
func Universe(d int) *Rect { return geom.UniverseRect(d) }

// internal splitters re-exported for the ablation configuration of NewLCKW.
type (
	// WillardSplitter is the default d=2 partition-tree substrate.
	WillardSplitter = spart.Willard2D
	// GridSplitter is the slab-grid ablation substrate (DESIGN.md E6b).
	GridSplitter = spart.Grid2D
	// BoxSplitter is the general-dimension box substrate.
	BoxSplitter = spart.Box
	// KDSplitter is the kd-tree substrate of Theorem 1.
	KDSplitter = spart.KD
)

// NewDynamicORPKW creates an empty insert/delete-capable ORP-KW index via
// the logarithmic method (Bentley–Saxe) over the static Theorem 1 structure
// — an extension beyond the paper, which is static-only. bufferCap tunes the
// unindexed write buffer (0 selects the default).
//
// The index is safe for concurrent use: mutators serialize on an internal
// writer mutex and publish each new state with one atomic store, while
// queries and accessors run lock-free against the last published state and
// never wait on a writer. SnapshotNow pins a DynSnapshot for repeatable
// reads across later mutations. See DESIGN.md §13.
func NewDynamicORPKW(dim, k, bufferCap int, opts ...Option) (*DynamicORPKW, error) {
	return core.NewDynamicORPKW(dim, k, bufferCap, opts...)
}

// NewTwoSI builds the Cohen–Porat-style 2-set-intersection index over a
// dataset's documents: the O(N)-space, O(sqrt(N) (1 + sqrt(OUT)))-query
// structure Section 3.5 of the paper credits as the framework's inspiration.
func NewTwoSI(ds *Dataset) (*TwoSI, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	return twosi.Build(ds), nil
}

// NewWordParallel1D builds the word-parallel one-dimensional range+keywords
// index of the literature line reviewed in the paper's Section 2 (Bille et
// al. / Goodrich): per-keyword position bitmaps AND-ed 64 positions at a
// time. The dataset must be 1-dimensional; query arity is not fixed at
// build time.
func NewWordParallel1D(ds *Dataset) (*WordParallel1D, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	return bitpack.Build(ds)
}

// Extension and baseline index types.
type (
	// DynamicORPKW is the insert/delete-capable ORP-KW index.
	DynamicORPKW = core.DynamicORPKW
	// DynSnapshot is a pinned, immutable view of a dynamic index (from
	// DynamicORPKW.SnapshotNow or DurableORPKW.Snapshot): queries against it
	// are repeatable no matter how much churn lands after the pin, and Seq()
	// identifies the exact operation prefix it reflects.
	DynSnapshot = core.DynSnapshot
	// TwoSI is the Cohen–Porat-style 2-set-intersection structure.
	TwoSI = twosi.Index
	// WordParallel1D is the bitmap-based 1D range+keywords index.
	WordParallel1D = bitpack.Index
)

// MultiK answers rectangle+keywords queries of any arity in [1, KMax] by
// maintaining one index per arity (the paper fixes k per index; this wrapper
// trades an O(KMax) space factor for arity freedom).
type MultiK = core.MultiK

// NewMultiK builds indexes for every keyword arity in [2, kMax]; queries
// with one keyword use posting lists, queries beyond kMax filter through the
// kMax index.
func NewMultiK(ds *Dataset, kMax int, opts ...Option) (*MultiK, error) {
	return core.BuildMultiK(ds, kMax, opts...)
}

// WriteDataset serializes a dataset to w in the library's compact,
// checksummed binary format; ReadDataset restores it. Indexes are rebuilt
// from data on load (construction is near-linear).
func WriteDataset(w io.Writer, ds *Dataset) error { return codec.WriteDataset(w, ds) }

// ReadDataset deserializes a dataset written by WriteDataset, verifying its
// checksum.
func ReadDataset(r io.Reader) (*Dataset, error) { return codec.ReadDataset(r) }

// Vocabulary maps string keywords to the dense integer ids the indexes
// operate on — the paper's "w.l.o.g. keywords are integers in [1, W]"
// (Section 3.2) made concrete for documents made of words.
type Vocabulary = dataset.Vocabulary

// NewVocabulary returns an empty vocabulary; use ID/Doc to intern words.
func NewVocabulary() *Vocabulary { return dataset.NewVocabulary() }

// Batch query plumbing: static indexes are concurrency-safe for readers, so
// ORPKW.QueryBatch / ORPKWHigh.QueryBatch answer many queries in parallel.
type (
	// RectQuery is one query of a batch.
	RectQuery = core.RectQuery
	// BatchResult is the outcome of one batch query.
	BatchResult = core.BatchResult
)

// Planner routes each rectangle+keywords query to the cheapest of the three
// strategies — the paper's index, the posting-list scan, or the geometric
// filter — using the paper's own cost formulas as estimates. All routes
// return identical results.
type (
	// Plan records one routing decision with per-strategy cost estimates.
	Plan = core.Plan
	// Route identifies a planner strategy.
	Route = core.Route
	// QueryPlanner is the cost-based router.
	QueryPlanner = core.Planner
)

// Planner route identifiers.
const (
	RouteFramework      = core.RouteFramework
	RouteKeywordsOnly   = core.RouteKeywordsOnly
	RouteStructuredOnly = core.RouteStructuredOnly
)

// NewPlanner builds all three strategies for k-keyword queries over the
// dataset.
func NewPlanner(ds *Dataset, k int, opts ...Option) (*QueryPlanner, error) {
	return core.BuildPlanner(ds, k, opts...)
}

// Resilience: every query accepts an ExecPolicy (via QueryOpts.Policy or the
// NN QueryWith variants) bounding its execution by wall-clock deadline, node
// budget, result cap, and cancellation channel. A policy stop returns the
// results reported so far — a prefix of the full answer — together with a
// typed error (ErrDeadline, ErrBudget, ErrCanceled). Index-internal panics
// are converted to *PanicError values carrying the offending query, so a
// corrupted traversal cannot take the process down.
type (
	// ExecPolicy bounds one query's execution; the zero value imposes none.
	ExecPolicy = core.ExecPolicy
	// PanicError wraps a panic recovered inside an index, echoing the query.
	PanicError = core.PanicError
)

// Typed resilience and validation errors; match with errors.Is / errors.As.
var (
	// ErrDeadline reports a query stopped by its policy deadline.
	ErrDeadline = core.ErrDeadline
	// ErrBudget reports a query stopped by its policy node budget.
	ErrBudget = core.ErrBudget
	// ErrCanceled reports a query stopped by its policy Done channel.
	ErrCanceled = core.ErrCanceled
	// ErrInvalidQuery wraps every query-validation failure (NaN coordinates,
	// inverted rectangles, malformed keyword lists, arity mismatches).
	ErrInvalidQuery = core.ErrInvalidQuery
	// ErrInvalidDataset wraps every constructor rejection of an unusable
	// input (nil or empty dataset), so misuse fails loudly at build time.
	ErrInvalidDataset = core.ErrInvalidDataset
)

// PolicyFromContext derives an ExecPolicy from a context: its deadline (if
// any) and its cancellation channel. Compose further bounds by setting
// NodeBudget or MaxResults on the returned value.
func PolicyFromContext(ctx context.Context) ExecPolicy {
	p := ExecPolicy{Done: ctx.Done()}
	if dl, ok := ctx.Deadline(); ok {
		p.Deadline = dl
	}
	return p
}
