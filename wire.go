package kwsc

// Versioned wire types for the served API (cmd/kwscd). These are the JSON
// bodies the /v1 endpoints speak, shared by the server, the kwsload load
// generator, and client code (see examples/served) so the contract lives in
// exactly one place. The schema is additive-versioned: /v1 fields are never
// removed or repurposed; a breaking change mints /v2 alongside.
//
// Validation is strict and maps onto ErrInvalidQuery: a malformed request
// fails before any shard is touched, with the same typed error the in-process
// constructors use, so HTTP 400s and library misuse share one vocabulary.

import (
	"fmt"
	"math"
	"time"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// APIVersion is the served API generation; all endpoints live under its
// path prefix.
const APIVersion = "v1"

// Served endpoint paths.
const (
	PathQuery = "/" + APIVersion + "/query"
	PathWrite = "/" + APIVersion + "/write"
)

// RectWire is a closed rectangle on the wire; use JSON nulls / omitted
// bounds never — both slices must carry one value per dimension
// (±Inf as strings is not supported; use very large magnitudes or omit the
// constraint entirely for pure keyword search).
type RectWire struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// SphereWire is a closed L2 ball on the wire.
type SphereWire struct {
	Center []float64 `json:"center"`
	Radius float64   `json:"radius"`
}

// QueryRequest is the body of POST /v1/query. At most one of Rect and
// Sphere may be set; neither means pure keyword search over all of space.
type QueryRequest struct {
	// Client identifies the caller for per-client admission quotas;
	// empty shares the anonymous bucket.
	Client string `json:"client,omitempty"`
	// Rect constrains results to a closed rectangle.
	Rect *RectWire `json:"rect,omitempty"`
	// Sphere constrains results to a closed L2 ball.
	Sphere *SphereWire `json:"sphere,omitempty"`
	// Keywords the result documents must all contain; arity must match the
	// serving index's k.
	Keywords []Keyword `json:"keywords"`
	// Limit caps the number of returned ids (0 = all).
	Limit int `json:"limit,omitempty"`
	// TimeoutMs bounds the query's wall-clock execution; a deadline stop
	// returns the prefix-correct partial result with Truncated set.
	// 0 uses the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// NodeBudget bounds per-shard tree-node visits (0 = server default,
	// which is unlimited unless the server is shedding load).
	NodeBudget int64 `json:"node_budget,omitempty"`
	// MaxStalenessMs lets dynamic shards answer from a cached MVCC snapshot
	// at most this old instead of pinning a fresh one (0 = always fresh).
	// Per-shard Seq in the response reports exactly which operation prefix
	// answered.
	MaxStalenessMs int64 `json:"max_staleness_ms,omitempty"`
}

// ShardOutcome reports how one shard's scatter leg ended.
type ShardOutcome struct {
	Shard    int   `json:"shard"`
	Reported int   `json:"reported"`
	Ops      int64 `json:"ops"`
	// Seq is the WAL operation prefix a dynamic shard answered at
	// (0 for static shards).
	Seq uint64 `json:"seq,omitempty"`
	// Outcome is "ok", "deadline", "budget", "canceled", "panic", or
	// "error".
	Outcome string `json:"outcome"`
	// FellBack reports that the shard's degraded executor answered via the
	// inverted-index baseline.
	FellBack bool `json:"fell_back,omitempty"`
	// Replica names the replica-group member that answered this leg
	// ("writer", "replica-N"; empty on non-replicated deployments).
	Replica string `json:"replica,omitempty"`
	// StalenessMs is the measured replication-lag age of the answering
	// replica in milliseconds (0 for authoritative legs; -1 for a follower
	// that has never been provably caught up).
	StalenessMs int64 `json:"staleness_ms,omitempty"`
	// Stale reports the leg was answered beyond the request's
	// max_staleness_ms bound — graceful degradation, not silent lying.
	Stale bool `json:"stale,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	// IDs are the matching global object ids (static corpora: positions in
	// the served dataset; dynamic: stable write handles), ascending.
	IDs []int64 `json:"ids"`
	// Count == len(IDs), kept explicit for clients that drop the array.
	Count int `json:"count"`
	// Truncated reports a partial (but prefix-correct) result: some shard
	// stopped on a limit, deadline, budget, or failure.
	Truncated bool `json:"truncated,omitempty"`
	// Degraded reports the server answered in degraded mode (load shed into
	// the fallback path, or a shard fell back to its baseline).
	Degraded bool `json:"degraded,omitempty"`
	// Stale reports that at least one shard answered beyond the request's
	// max_staleness_ms bound (see ShardOutcome.Stale for which).
	Stale bool `json:"stale,omitempty"`
	// ElapsedUs is the server-side wall time of the scatter-gather.
	ElapsedUs int64 `json:"elapsed_us"`
	// Shards reports per-shard outcomes, ascending by shard.
	Shards []ShardOutcome `json:"shards,omitempty"`
}

// Write operations.
const (
	OpInsert = "insert"
	OpDelete = "delete"
)

// WriteRequest is the body of POST /v1/write (dynamic corpora only).
type WriteRequest struct {
	// Client identifies the caller for admission quotas.
	Client string `json:"client,omitempty"`
	// Op is OpInsert or OpDelete.
	Op string `json:"op"`
	// Point and Doc describe the inserted object (Op == "insert").
	Point []float64 `json:"point,omitempty"`
	Doc   []Keyword `json:"doc,omitempty"`
	// Handle identifies the object to delete (Op == "delete"), as returned
	// by a previous insert.
	Handle int64 `json:"handle,omitempty"`
}

// WriteResponse is the body of a successful POST /v1/write. The operation is
// durable — acknowledged by the owning shard's WAL per its fsync policy —
// exactly when the HTTP status is 200.
type WriteResponse struct {
	// Handle is the inserted object's global handle (Op == "insert").
	Handle int64 `json:"handle,omitempty"`
	// Deleted reports whether the handle existed (Op == "delete").
	Deleted bool `json:"deleted,omitempty"`
	// Seq is the owning shard's WAL sequence after the operation.
	Seq uint64 `json:"seq,omitempty"`
	// Shard is the owning shard.
	Shard int `json:"shard"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Code is "invalid", "quota", "overload", "unsupported", or "internal".
	Code string `json:"code"`
	// Error is a human-readable detail.
	Error string `json:"error"`
}

// Error codes carried by ErrorResponse.Code.
const (
	CodeInvalid     = "invalid"     // 400: request failed validation
	CodeQuota       = "quota"       // 429: per-client token bucket empty
	CodeOverload    = "overload"    // 429: global in-flight limit reached
	CodeUnsupported = "unsupported" // 400: op not supported by this corpus
	CodeInternal    = "internal"    // 500
)

func checkFinite(what string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) {
			return fmt.Errorf("%w: %s[%d] is NaN", ErrInvalidQuery, what, i)
		}
	}
	return nil
}

// Validate checks the request against the serving index's dimensionality
// and keyword arity; every failure wraps ErrInvalidQuery. dim <= 0 or
// k <= 0 skip the respective shape checks (for clients validating before
// they know the server's parameters).
func (r *QueryRequest) Validate(dim, k int) error {
	if r.Rect != nil && r.Sphere != nil {
		return fmt.Errorf("%w: at most one of rect and sphere may be set", ErrInvalidQuery)
	}
	if r.Rect != nil {
		if len(r.Rect.Lo) != len(r.Rect.Hi) {
			return fmt.Errorf("%w: rect lo/hi lengths differ (%d vs %d)",
				ErrInvalidQuery, len(r.Rect.Lo), len(r.Rect.Hi))
		}
		if dim > 0 && len(r.Rect.Lo) != dim {
			return fmt.Errorf("%w: rect is %d-dimensional, index is %d-dimensional",
				ErrInvalidQuery, len(r.Rect.Lo), dim)
		}
		if err := checkFinite("rect.lo", r.Rect.Lo); err != nil {
			return err
		}
		if err := checkFinite("rect.hi", r.Rect.Hi); err != nil {
			return err
		}
		for i := range r.Rect.Lo {
			if r.Rect.Lo[i] > r.Rect.Hi[i] {
				return fmt.Errorf("%w: rect inverted on dimension %d (%g > %g)",
					ErrInvalidQuery, i, r.Rect.Lo[i], r.Rect.Hi[i])
			}
		}
	}
	if r.Sphere != nil {
		if dim > 0 && len(r.Sphere.Center) != dim {
			return fmt.Errorf("%w: sphere center is %d-dimensional, index is %d-dimensional",
				ErrInvalidQuery, len(r.Sphere.Center), dim)
		}
		if err := checkFinite("sphere.center", r.Sphere.Center); err != nil {
			return err
		}
		if math.IsNaN(r.Sphere.Radius) || math.IsInf(r.Sphere.Radius, 0) || r.Sphere.Radius < 0 {
			return fmt.Errorf("%w: sphere radius %g", ErrInvalidQuery, r.Sphere.Radius)
		}
	}
	if k > 0 && len(r.Keywords) != k {
		return fmt.Errorf("%w: got %d keywords, index requires exactly %d",
			ErrInvalidQuery, len(r.Keywords), k)
	}
	if err := dataset.ValidateKeywords(r.Keywords); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	if r.Limit < 0 {
		return fmt.Errorf("%w: negative limit %d", ErrInvalidQuery, r.Limit)
	}
	if r.TimeoutMs < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", ErrInvalidQuery, r.TimeoutMs)
	}
	if r.NodeBudget < 0 {
		return fmt.Errorf("%w: negative node_budget %d", ErrInvalidQuery, r.NodeBudget)
	}
	if r.MaxStalenessMs < 0 {
		return fmt.Errorf("%w: negative max_staleness_ms %d", ErrInvalidQuery, r.MaxStalenessMs)
	}
	return nil
}

// BoundingRect returns the tightest rectangle covering the request's region
// in the given dimensionality: the rect itself, the sphere's bounding box,
// or the universe for pure keyword search. Validate first.
func (r *QueryRequest) BoundingRect(dim int) *Rect {
	switch {
	case r.Rect != nil:
		return geom.NewRect(r.Rect.Lo, r.Rect.Hi)
	case r.Sphere != nil:
		lo := make([]float64, len(r.Sphere.Center))
		hi := make([]float64, len(r.Sphere.Center))
		for i, c := range r.Sphere.Center {
			lo[i] = c - r.Sphere.Radius
			hi[i] = c + r.Sphere.Radius
		}
		return geom.NewRect(lo, hi)
	default:
		return geom.UniverseRect(dim)
	}
}

// ExactRegion returns the request's region for exact point filtering, or nil
// when the bounding rectangle already is exact (rect or keyword-only
// queries).
func (r *QueryRequest) ExactRegion() Region {
	if r.Sphere != nil {
		return geom.NewSphere(Point(r.Sphere.Center), r.Sphere.Radius)
	}
	return nil
}

// Opts converts the request's knobs into QueryOpts; defaultTimeout applies
// when the request carries none (<= 0 disables the default too).
func (r *QueryRequest) Opts(defaultTimeout time.Duration) QueryOpts {
	opts := QueryOpts{Limit: r.Limit}
	if r.TimeoutMs > 0 {
		opts.Policy.Timeout = time.Duration(r.TimeoutMs) * time.Millisecond
	} else if defaultTimeout > 0 {
		opts.Policy.Timeout = defaultTimeout
	}
	opts.Policy.NodeBudget = r.NodeBudget
	return opts
}

// Validate checks the write request against the serving index's
// dimensionality; every failure wraps ErrInvalidQuery.
func (w *WriteRequest) Validate(dim int) error {
	switch w.Op {
	case OpInsert:
		if dim > 0 && len(w.Point) != dim {
			return fmt.Errorf("%w: point is %d-dimensional, index is %d-dimensional",
				ErrInvalidQuery, len(w.Point), dim)
		}
		if err := checkFinite("point", w.Point); err != nil {
			return err
		}
		for i, x := range w.Point {
			if math.IsInf(x, 0) {
				return fmt.Errorf("%w: point[%d] is infinite", ErrInvalidQuery, i)
			}
		}
		if len(w.Doc) == 0 {
			return fmt.Errorf("%w: insert requires a non-empty doc", ErrInvalidQuery)
		}
	case OpDelete:
		if w.Handle < 0 {
			return fmt.Errorf("%w: negative handle %d", ErrInvalidQuery, w.Handle)
		}
	default:
		return fmt.Errorf("%w: unknown op %q", ErrInvalidQuery, w.Op)
	}
	return nil
}

// Object converts an insert request into the library's object type.
func (w *WriteRequest) Object() Object {
	return Object{Point: Point(w.Point), Doc: w.Doc}
}
