package kwsc_test

// End-to-end observability through the public facade: exercising several
// index families populates the registry with enough distinct series to
// round-trip through both export formats, the global tracer sees every
// query, and the slow log retains the expensive ones.

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"kwsc"
)

func buildObsFixture(t *testing.T) (*kwsc.Dataset, *kwsc.ORPKW) {
	t.Helper()
	objs := make([]kwsc.Object, 0, 256)
	for i := 0; i < 256; i++ {
		objs = append(objs, kwsc.Object{
			Point: kwsc.Point{float64(i % 16), float64(i / 16)},
			Doc:   []kwsc.Keyword{0, kwsc.Keyword(1 + i%3), kwsc.Keyword(4 + i%5)},
		})
	}
	ds, err := kwsc.NewDataset(objs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := kwsc.NewORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds, ix
}

func TestMetricsSnapshotRoundTrips(t *testing.T) {
	ds, ix := buildObsFixture(t)
	// Touch several families so the registry is populated.
	if _, _, err := ix.Collect(kwsc.Universe(2), []kwsc.Keyword{0, 1}, kwsc.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	nn, err := kwsc.NewLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Query(kwsc.Point{8, 8}, 3, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	ksi, err := kwsc.NewKSIFromDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ksi.Report([]kwsc.Keyword{0, 1}, kwsc.QueryOpts{}); err != nil {
		t.Fatal(err)
	}

	snap := kwsc.Metrics()
	if n := snap.NumSeries(); n < 12 {
		t.Fatalf("registry has %d series, want >= 12", n)
	}
	if snap.Counter(`kwsc_queries_total{family="orpkw"}`) == 0 {
		t.Fatal("orpkw queries_total must be non-zero after a query")
	}
	if snap.Histogram(`kwsc_query_ops{family="ksi"}`).Count == 0 {
		t.Fatal("ksi ops histogram must have observations")
	}

	var jbuf bytes.Buffer
	if err := kwsc.WriteMetricsJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := kwsc.ParseMetricsJSON(jbuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	var pbuf bytes.Buffer
	if err := kwsc.WriteMetricsPrometheus(&pbuf); err != nil {
		t.Fatal(err)
	}
	fromProm, err := kwsc.ParseMetricsPrometheus(pbuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Both exports reproduce the same registry state. (The live registry may
	// have moved since snap was taken, so compare the two parses, which were
	// written back to back; counters only move between writes if other tests
	// run in parallel, which this package doesn't.)
	if !reflect.DeepEqual(fromJSON, fromProm) {
		t.Fatal("JSON and Prometheus exports disagree after parsing")
	}
	if fromJSON.NumSeries() < 12 {
		t.Fatalf("round-tripped snapshot has %d series, want >= 12", fromJSON.NumSeries())
	}
	if !strings.Contains(pbuf.String(), "# TYPE kwsc_queries_total counter") {
		t.Fatal("Prometheus export must carry TYPE comments")
	}
}

type facadeTracer struct {
	mu    sync.Mutex
	spans []kwsc.Span
}

func (f *facadeTracer) Begin(family, op string) {}
func (f *facadeTracer) End(sp kwsc.Span) {
	f.mu.Lock()
	f.spans = append(f.spans, sp)
	f.mu.Unlock()
}

func TestGlobalTracerAndSlowLog(t *testing.T) {
	_, ix := buildObsFixture(t)
	tr := &facadeTracer{}
	kwsc.SetTracer(tr)
	defer kwsc.SetTracer(nil)
	kwsc.EnableSlowLog(8, 1)
	defer kwsc.EnableSlowLog(0, 0)

	ids, st, err := ix.Collect(kwsc.Universe(2), []kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.spans) != 1 {
		t.Fatalf("global tracer saw %d spans, want 1", len(tr.spans))
	}
	sp := tr.spans[0]
	if sp.Family != "orpkw" || sp.Out != len(ids) || sp.Ops != st.Ops || sp.Outcome != kwsc.OutcomeOK {
		t.Fatalf("span disagrees with the query result: %+v", sp)
	}

	slow := kwsc.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("slow log must retain the query")
	}
	if slow[0].Ops != st.Ops || !strings.Contains(slow[0].Query, "keywords=[0 1]") {
		t.Fatalf("slow entry must reproduce the query: %+v", slow[0])
	}
}

func TestConstructorsRejectBadDatasets(t *testing.T) {
	empty := &kwsc.Dataset{}
	wantInvalid := func(what string, err error) {
		t.Helper()
		if !errors.Is(err, kwsc.ErrInvalidDataset) {
			t.Fatalf("%s: got %v, want ErrInvalidDataset", what, err)
		}
	}
	_, err := kwsc.NewInvertedIndex(nil)
	wantInvalid("NewInvertedIndex(nil)", err)
	_, err = kwsc.NewStructuredOnly(empty)
	wantInvalid("NewStructuredOnly(empty)", err)
	_, err = kwsc.NewTwoSI(nil)
	wantInvalid("NewTwoSI(nil)", err)
	_, err = kwsc.NewWordParallel1D(empty)
	wantInvalid("NewWordParallel1D(empty)", err)
	_, err = kwsc.NewORPKW(nil, 2)
	wantInvalid("NewORPKW(nil)", err)
}
