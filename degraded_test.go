package kwsc_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"kwsc"
	"kwsc/internal/core"
)

func degradedFixture(t *testing.T) (*kwsc.Dataset, *kwsc.Degraded, *kwsc.Rect, []kwsc.Keyword) {
	t.Helper()
	objs := make([]kwsc.Object, 0, 1200)
	for i := 0; i < 1200; i++ {
		x := float64(i%40) / 40
		y := float64(i/40) / 40
		doc := []kwsc.Keyword{kwsc.Keyword(1 + i%3), kwsc.Keyword(4 + i%5)}
		if i%2 == 0 {
			doc = append(doc, 1, 4)
		}
		objs = append(objs, kwsc.Object{Point: kwsc.Point{x, y}, Doc: doc})
	}
	ds, err := kwsc.NewDataset(objs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := kwsc.NewDegraded(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds, d, kwsc.Universe(2), []kwsc.Keyword{1, 4}
}

func sameIDSet(t *testing.T, got, want []int32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	seen := make(map[int32]struct{}, len(got))
	for _, id := range got {
		seen[id] = struct{}{}
	}
	for _, id := range want {
		if _, ok := seen[id]; !ok {
			t.Fatalf("%s: missing id %d", label, id)
		}
	}
}

func TestDegradedFallsBackOnBudget(t *testing.T) {
	ds, d, q, ws := degradedFixture(t)
	want := ds.Filter(q, ws)
	if len(want) == 0 {
		t.Fatal("fixture produced no matches")
	}
	got, st, err := d.Collect(q, ws, kwsc.QueryOpts{Policy: kwsc.ExecPolicy{NodeBudget: 2}})
	if err != nil {
		t.Fatalf("degraded collect errored: %v", err)
	}
	if !st.Fallback {
		t.Fatal("QueryStats.Fallback not set after budget exhaustion")
	}
	sameIDSet(t, got, want, "budget fallback")
	if d.FallbackCount() != 1 {
		t.Fatalf("FallbackCount = %d, want 1", d.FallbackCount())
	}

	// An unconstrained query uses the index path and matches too.
	got2, st2, err := d.Collect(q, ws, kwsc.QueryOpts{})
	if err != nil || st2.Fallback {
		t.Fatalf("unconstrained query: err=%v fallback=%v", err, st2.Fallback)
	}
	sameIDSet(t, got2, want, "index path")
}

func TestDegradedFallsBackOnPanic(t *testing.T) {
	defer core.DisarmAllFailpoints()
	ds, d, q, ws := degradedFixture(t)
	want := ds.Filter(q, ws)

	core.ArmFailpoint(core.FPFrameworkVisit, func() { panic("index corrupted") })
	got, st, err := d.Collect(q, ws, kwsc.QueryOpts{})
	if err != nil {
		t.Fatalf("degraded collect errored despite fallback: %v", err)
	}
	if !st.Fallback {
		t.Fatal("QueryStats.Fallback not set after index panic")
	}
	sameIDSet(t, got, want, "panic fallback")
}

func TestDegradedDoesNotFallBackOnDeadline(t *testing.T) {
	defer core.DisarmAllFailpoints()
	_, d, q, ws := degradedFixture(t)
	core.ArmFailpoint(core.FPFrameworkVisit, func() { time.Sleep(100 * time.Microsecond) })
	_, st, err := d.Collect(q, ws, kwsc.QueryOpts{Policy: kwsc.ExecPolicy{Timeout: time.Millisecond}})
	if !errors.Is(err, kwsc.ErrDeadline) {
		t.Fatalf("deadline stop returned %v, want ErrDeadline", err)
	}
	if st.Fallback {
		t.Fatal("deadline stop must not trigger fallback")
	}
}

func TestDegradedDoesNotFallBackOnInvalidQuery(t *testing.T) {
	_, d, _, ws := degradedFixture(t)
	bad := &kwsc.Rect{Lo: []float64{math.NaN(), 0}, Hi: []float64{1, 1}}
	_, st, err := d.Collect(bad, ws, kwsc.QueryOpts{})
	if !errors.Is(err, kwsc.ErrInvalidQuery) {
		t.Fatalf("NaN rect returned %v, want ErrInvalidQuery", err)
	}
	if st.Fallback || d.FallbackCount() != 0 {
		t.Fatal("invalid query must not trigger fallback")
	}
}

func TestDegradedFallbackRespectsLimit(t *testing.T) {
	ds, d, q, ws := degradedFixture(t)
	want := ds.Filter(q, ws)
	if len(want) < 5 {
		t.Fatal("fixture too small")
	}
	got, st, err := d.Collect(q, ws, kwsc.QueryOpts{
		Limit:  3,
		Policy: kwsc.ExecPolicy{NodeBudget: 2},
	})
	if err != nil {
		t.Fatalf("degraded collect errored: %v", err)
	}
	if !st.Fallback || !st.Truncated || len(got) != 3 {
		t.Fatalf("fallback with Limit=3: %d results, fallback=%v truncated=%v",
			len(got), st.Fallback, st.Truncated)
	}
}
