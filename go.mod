module kwsc

go 1.22
