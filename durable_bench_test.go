package kwsc

// Durability benchmarks, snapshotted by bench-save alongside the query
// families: WAL append throughput under each fsync policy (the cost of the
// acknowledged-write guarantee) and recovery replay throughput (the cost of
// reopening after a crash, which checkpointing exists to bound).

import (
	"fmt"
	"math/rand"
	"testing"
)

// durableObjs builds n insertable objects with 3-keyword docs.
func durableObjs(n int) []Object {
	r := rand.New(rand.NewSource(7))
	objs := make([]Object, n)
	for i := range objs {
		perm := r.Perm(16)
		objs[i] = Object{
			Point: Point{r.Float64(), r.Float64()},
			Doc:   []Keyword{Keyword(perm[0]), Keyword(perm[1]), Keyword(perm[2])},
		}
	}
	return objs
}

func BenchmarkWALAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  DurableOption
	}{
		{"fsync=none", WithFsyncPolicy(FsyncNone)},
		{"fsync=every-op", WithFsyncPolicy(FsyncEveryOp)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d, err := OpenDurable(b.TempDir(), 2, 2, tc.opt)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			objs := durableObjs(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Insert(objs[i%len(objs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecoveryReplay(b *testing.B) {
	for _, ops := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			dir := b.TempDir()
			d, err := OpenDurable(dir, 2, 2, WithFsyncPolicy(FsyncNone))
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range durableObjs(ops) {
				if _, err := d.Insert(o); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := OpenDurable(dir, 2, 2, WithFsyncPolicy(FsyncNone))
				if err != nil {
					b.Fatal(err)
				}
				if d.Len() != ops {
					b.Fatalf("replay recovered %d objects, want %d", d.Len(), ops)
				}
				b.StopTimer() // close (fsync) off the clock: replay is the subject
				d.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(ops), "replayed-ops/op")
		})
	}
}
