package kwsc

// Durability benchmarks, snapshotted by bench-save alongside the query
// families: WAL append throughput under each fsync policy (the cost of the
// acknowledged-write guarantee) and recovery replay throughput (the cost of
// reopening after a crash, which checkpointing exists to bound).

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// durableObjs builds n insertable objects with 3-keyword docs.
func durableObjs(n int) []Object {
	r := rand.New(rand.NewSource(7))
	objs := make([]Object, n)
	for i := range objs {
		perm := r.Perm(16)
		objs[i] = Object{
			Point: Point{r.Float64(), r.Float64()},
			Doc:   []Keyword{Keyword(perm[0]), Keyword(perm[1]), Keyword(perm[2])},
		}
	}
	return objs
}

func BenchmarkWALAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  DurableOption
	}{
		{"fsync=none", WithFsyncPolicy(FsyncNone)},
		{"fsync=every-op", WithFsyncPolicy(FsyncEveryOp)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d, err := OpenDurable(b.TempDir(), 2, 2, tc.opt)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			objs := durableObjs(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Insert(objs[i%len(objs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecoveryReplay(b *testing.B) {
	for _, ops := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			dir := b.TempDir()
			d, err := OpenDurable(dir, 2, 2, WithFsyncPolicy(FsyncNone))
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range durableObjs(ops) {
				if _, err := d.Insert(o); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := OpenDurable(dir, 2, 2, WithFsyncPolicy(FsyncNone))
				if err != nil {
					b.Fatal(err)
				}
				if d.Len() != ops {
					b.Fatalf("replay recovered %d objects, want %d", d.Len(), ops)
				}
				b.StopTimer() // close (fsync) off the clock: replay is the subject
				d.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(ops), "replayed-ops/op")
		})
	}
}

// BenchmarkConcurrentReadDuringChurn measures reader latency on the durable
// index while writer goroutines churn with per-op fsync — the non-blocking
// read guarantee as a number: with copy-on-write publication, reader
// throughput at writers=1 or writers=4 should stay within a small factor of
// the idle writers=0 case instead of collapsing behind the fsync. (On a
// single-core machine the busy writers steal reader timeslices, so the gap
// there measures CPU contention, not blocking; TestReadersNotBlockedBySlowFsync
// pins the blocking contract itself.)
func BenchmarkConcurrentReadDuringChurn(b *testing.B) {
	for _, writers := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			dir := b.TempDir()
			// Seed without paying per-op fsync, then reopen under the
			// policy the churn writers will stress.
			seed, err := OpenDurable(dir, 2, 2, WithFsyncPolicy(FsyncNone))
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range durableObjs(4096) {
				if _, err := seed.Insert(o); err != nil {
					b.Fatal(err)
				}
			}
			if err := seed.Close(); err != nil {
				b.Fatal(err)
			}
			d, err := OpenDurable(dir, 2, 2, WithFsyncPolicy(FsyncEveryOp))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()

			var stop atomic.Bool
			var wg sync.WaitGroup
			churn := durableObjs(1024)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Insert/delete pairs keep the index size stable, so
					// the readers' work stays comparable across writer
					// counts and the measurement isolates interference.
					for i := 0; !stop.Load(); i++ {
						h, err := d.Insert(churn[(w*331+i)%len(churn)])
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := d.Delete(h); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			q := NewRect([]float64{0.2, 0.2}, []float64{0.7, 0.7})
			ws := []Keyword{1, 2}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := d.Collect(q, ws); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
		})
	}
}
