package kwsc

// One benchmark family per experiment of DESIGN.md Section 5, each
// regenerating the behavior behind one row of the paper's Table 1 or one of
// its figures. The benchmarks measure wall time per query; the
// machine-independent exponent fits over N/OUT/t sweeps are produced by
// cmd/benchkw, which shares these workloads.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
	"kwsc/internal/spart"
	"kwsc/internal/workload"
)

// TestMain emits the metrics registry after a benchmark run as a single
// `# kwsc-metrics:` line, which cmd/benchsave embeds in the committed
// baseline snapshot ({records, metrics}); plain test runs stay silent.
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if data, err := obs.Default().Snapshot().MarshalCompact(); err == nil {
			fmt.Printf("# kwsc-metrics: %s\n", data)
		}
	}
	os.Exit(code)
}

// plantedFixture builds a planted dataset with OUT matches inside the target
// region and per-keyword posting lists of size OUT + partial.
func plantedFixture(seed int64, objects, dim, k, out, partial int) (*Dataset, []Keyword, *Rect) {
	return workload.GenPlanted(workload.Planted{
		Seed: seed, Objects: objects, Dim: dim, K: k, Out: out, Partial: partial,
	})
}

// --- E1: ORP-KW d=2 (Theorem 1, Table 1 row 1) ------------------------------

func BenchmarkE1ORPKW2D(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		for _, k := range []int{2, 3} {
			b.Run(fmt.Sprintf("N=%d/k=%d", n, k), func(b *testing.B) {
				ds, kws, region := plantedFixture(1, n, 2, k, 64, n/8)
				ix, err := NewORPKW(ds, k)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, _, err := ix.Collect(region, kws, QueryOpts{})
					if err != nil {
						b.Fatal(err)
					}
					if len(got) != 64 {
						b.Fatalf("OUT drifted: %d", len(got))
					}
				}
			})
		}
	}
}

// OUT sweep at fixed N: the OUT^{1/k} factor of the query bound.
func BenchmarkE1OutSweep(b *testing.B) {
	const n = 1 << 15
	for _, out := range []int{1, 16, 256, 2048} {
		b.Run(fmt.Sprintf("OUT=%d", out), func(b *testing.B) {
			ds, kws, region := plantedFixture(2, n, 2, 2, out, n/8)
			ix, err := NewORPKW(ds, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Collect(region, kws, QueryOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The two naive baselines of Section 1 on the E1 workload.
func BenchmarkE1Baselines(b *testing.B) {
	const n = 1 << 15
	ds, kws, region := plantedFixture(3, n, 2, 2, 64, n/8)
	b.Run("keywords-only", func(b *testing.B) {
		inv, _ := NewInvertedIndex(ds)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = inv.KeywordsOnly(region, kws)
		}
	})
	b.Run("structured-only", func(b *testing.B) {
		so, _ := NewStructuredOnly(ds)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, _ = so.Query(region, kws)
		}
	})
	b.Run("paper-index", func(b *testing.B) {
		ix, err := NewORPKW(ds, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.Collect(region, kws, QueryOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E2: ORP-KW d>=3 via dimension reduction (Theorem 2, row 2) -------------

func BenchmarkE2ORPKW3D(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 13} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			ds, kws, region := plantedFixture(4, n, 3, 2, 64, n/8)
			ix, err := NewORPKWHigh(ds, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Collect(region, kws, QueryOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: ORP-KW as LC-KW (Theorem 5 route, row 3) ----------------------------

func BenchmarkE3RectViaLCKW(b *testing.B) {
	const n = 1 << 14
	ds, kws, region := plantedFixture(5, n, 2, 2, 64, n/8)
	ix, err := NewLCKW(ds, LCKWConfig{K: 2})
	if err != nil {
		b.Fatal(err)
	}
	hs := region.Halfspaces()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.CollectConstraints(hs, kws, QueryOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: RR-KW (Corollary 3, row 4) ------------------------------------------

func benchRRKW(b *testing.B, d, n int) {
	rng := rand.New(rand.NewSource(6))
	rects := make([]RectObject, n)
	for i := range rects {
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			lo[j] = rng.Float64()
			hi[j] = lo[j] + rng.Float64()*0.05
		}
		doc := make([]Keyword, 4)
		for j := range doc {
			doc[j] = Keyword(rng.Intn(64))
		}
		rects[i] = RectObject{Rect: &Rect{Lo: lo, Hi: hi}, Doc: doc}
	}
	ix, err := NewRRKW(rects, 2)
	if err != nil {
		b.Fatal(err)
	}
	q := workload.RandRect(rng, d, 0.2)
	kws := []Keyword{1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Collect(q, kws, QueryOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4RRKWTemporal1D(b *testing.B) { benchRRKW(b, 1, 1<<14) }
func BenchmarkE4RRKWSpatial2D(b *testing.B)  { benchRRKW(b, 2, 1<<12) }

// --- E5: L∞ NN-KW (Corollary 4, row 5) ---------------------------------------

func BenchmarkE5LinfNN(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 7, Objects: 1 << 14, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := NewLinfNN(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			rng := rand.New(rand.NewSource(70))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := Point{rng.Float64(), rng.Float64()}
				if _, _, err := ix.Query(q, t, []Keyword{1, 2}, QueryOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: LC-KW (Theorem 5, rows 6-7) -----------------------------------------

func BenchmarkE6LCKW(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 8, Objects: 1 << 14, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := NewLCKW(ds, LCKWConfig{K: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			rng := rand.New(rand.NewSource(80))
			hs := workload.RandHalfspaces(rng, 2, s, 0.3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.CollectConstraints(hs, []Keyword{1, 2}, QueryOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6b: crossing-sensitivity ablation (Willard vs grid substrate) ----------

func BenchmarkE6bSubstrates(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 9, Objects: 1 << 13, Dim: 2, Vocab: 64, DocLen: 5})
	for _, sub := range []struct {
		name  string
		split spart.Splitter
	}{
		{"willard", &spart.Willard2D{}},
		{"grid", &spart.Grid2D{G: 4}},
	} {
		b.Run(sub.name, func(b *testing.B) {
			ix, err := NewLCKW(ds, LCKWConfig{K: 2, Splitter: sub.split})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(90))
			hs := workload.RandHalfspaces(rng, 2, 1, 0.4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.CollectConstraints(hs, []Keyword{1, 2}, QueryOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: SRP-KW via lifting (Corollary 6, rows 8-9) ---------------------------

func BenchmarkE7SRPKW(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 10, Objects: 1 << 13, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := NewSRPKW(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSphere(Point{rng.Float64(), rng.Float64()}, 0.1)
		if _, _, err := ix.Collect(s, []Keyword{1, 2}, QueryOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: L2 NN-KW (Corollary 7, rows 10-11) -----------------------------------

func BenchmarkE8L2NN(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 11, Objects: 1 << 12, Dim: 2, Vocab: 64, DocLen: 5, Points: "grid", GridSide: 1 << 16})
	ix, err := NewL2NN(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []int{1, 16} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			rng := rand.New(rand.NewSource(110))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := Point{float64(rng.Int63n(1 << 16)), float64(rng.Int63n(1 << 16))}
				if _, _, err := ix.Query(q, t, []Keyword{1, 2}, QueryOpts{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: k-SI and the tightness terms of Section 1.2 ---------------------------

func BenchmarkE9KSI(b *testing.B) {
	const n = 1 << 15
	for _, out := range []int{0, 64, 4096} {
		b.Run(fmt.Sprintf("OUT=%d", out), func(b *testing.B) {
			ds, kws, _ := plantedFixture(12, n, 2, 2, out, n/8)
			ix, err := NewKSIFromDataset(ds, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := ix.Report(kws, QueryOpts{})
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != out {
					b.Fatalf("OUT drifted: %d", len(got))
				}
			}
		})
	}
	b.Run("baseline-invidx", func(b *testing.B) {
		ds, kws, _ := plantedFixture(12, n, 2, 2, 64, n/8)
		inv, _ := NewInvertedIndex(ds)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = inv.Intersect(kws)
		}
	})
}

// --- F1: crossing-node profile of a vertical line (Figure 1 / Lemma 10) -------

func BenchmarkF1VerticalLineCrossing(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 13, Objects: 1 << 14, Dim: 2, Vocab: 16, DocLen: 4})
	ix, err := NewORPKW(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	x := float64(ds.Len() / 2)
	line := &Rect{Lo: []float64{x, -1e308}, Hi: []float64{x, 1e308}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Framework().CrossingCost(line, []Keyword{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2: type-1/type-2 decomposition (Figure 2) --------------------------------

func BenchmarkF2TypeProfile(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 14, Objects: 1 << 12, Dim: 3, Vocab: 32, DocLen: 4})
	ix, err := NewORPKWHigh(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(140))
	q := workload.RandRect(rng, 3, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Type2Profile(q, []Keyword{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1: ablation — kd route vs partition-tree route for rectangles ------------

func BenchmarkA1Routes(b *testing.B) {
	ds, kws, region := plantedFixture(15, 1<<14, 2, 2, 64, 1<<11)
	b.Run("kd-route", func(b *testing.B) {
		ix, err := NewORPKW(ds, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.Collect(region, kws, QueryOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("partition-route", func(b *testing.B) {
		ix, err := NewLCKW(ds, LCKWConfig{K: 2})
		if err != nil {
			b.Fatal(err)
		}
		hs := region.Halfspaces()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.CollectConstraints(hs, kws, QueryOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- A2: ablation — the k=2 specialization against the general framework -------

func BenchmarkA2TwoSetIntersection(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	sets := make([][]int64, 8)
	for i := range sets {
		for j := 0; j < 4096; j++ {
			sets[i] = append(sets[i], int64(rng.Intn(1<<15)))
		}
	}
	ix, err := NewKSI(sets, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Keyword(i % len(sets))
		c := Keyword((i + 3) % len(sets))
		if a == c {
			continue
		}
		if _, _, err := ix.Report([]Keyword{a, c}, QueryOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Build-time benchmarks: index construction cost per problem.
func BenchmarkBuildORPKW(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 17, Objects: 1 << 13, Dim: 2, Vocab: 256, DocLen: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewORPKW(ds, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildLCKW(b *testing.B) {
	ds := workload.Gen(workload.Config{Seed: 18, Objects: 1 << 12, Dim: 2, Vocab: 256, DocLen: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLCKW(ds, LCKWConfig{K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel construction: the same ORP-KW build at increasing worker budgets.
// On a multi-core machine the par=4 and par=8 rows should come in well under
// par=1; on a single core they coincide (the gate hands out no tokens).
func BenchmarkBuildParallel(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18} {
		b.Run(fmt.Sprintf("ORPKW2D/N=%d", n), func(b *testing.B) {
			ds := workload.Gen(workload.Config{Seed: 19, Objects: n, Dim: 2, Vocab: 256, DocLen: 5})
			for _, par := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := NewORPKWWith(ds, 2, BuildOpts{Parallelism: par}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// Steady-state query allocation profile: Collect allocates only the result
// slice; CollectInto with a warmed buffer allocates nothing.
func BenchmarkORPKW2DCollect(b *testing.B) {
	ds, kws, region := plantedFixture(24, 1<<15, 2, 2, 64, 1<<12)
	ix, err := NewORPKW(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Collect(region, kws, QueryOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkORPKW2DCollectInto(b *testing.B) {
	ds, kws, region := plantedFixture(24, 1<<15, 2, 2, 64, 1<<12)
	ix, err := NewORPKW(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]int32, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, _, err := ix.CollectInto(region, kws, QueryOpts{}, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = ids[:0]
	}
}

// The observability overhead pair: the same hot path with registry updates
// on (the default) and off. The acceptance bar is <5% ns/op overhead and
// identical (zero) allocs/op.
func BenchmarkORPKW2DCollectIntoMetricsOn(b *testing.B)  { benchCollectIntoMetrics(b, true) }
func BenchmarkORPKW2DCollectIntoMetricsOff(b *testing.B) { benchCollectIntoMetrics(b, false) }

func benchCollectIntoMetrics(b *testing.B, on bool) {
	ds, kws, region := plantedFixture(24, 1<<15, 2, 2, 64, 1<<12)
	ix, err := NewORPKW(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	EnableMetrics(on)
	defer EnableMetrics(true)
	buf := make([]int32, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, _, err := ix.CollectInto(region, kws, QueryOpts{}, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = ids[:0]
	}
}

// Keep the imports honest.
var (
	_ = core.QueryOpts{}
	_ = dataset.Keyword(0)
	_ geom.Point
)

// --- Extension benchmarks (beyond the paper) -----------------------------------

// Dynamization: amortized insertion cost through the logarithmic method.
func BenchmarkExtDynamicInsert(b *testing.B) {
	d, err := NewDynamicORPKW(2, 2, 64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := Object{
			Point: Point{rng.Float64(), rng.Float64()},
			Doc:   []Keyword{Keyword(rng.Intn(16)), Keyword(16 + rng.Intn(16))},
		}
		if _, err := d.Insert(obj); err != nil {
			b.Fatal(err)
		}
	}
}

// Dynamization: query over the multi-part structure.
func BenchmarkExtDynamicQuery(b *testing.B) {
	d, err := NewDynamicORPKW(2, 2, 64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1<<13; i++ {
		obj := Object{
			Point: Point{rng.Float64(), rng.Float64()},
			Doc:   []Keyword{Keyword(rng.Intn(8)), Keyword(8 + rng.Intn(8))},
		}
		if _, err := d.Insert(obj); err != nil {
			b.Fatal(err)
		}
	}
	q := NewRect([]float64{0.25, 0.25}, []float64{0.75, 0.75})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Collect(q, []Keyword{1, 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// The Cohen–Porat 2-SI ancestor structure on the E9 workload.
func BenchmarkExtTwoSI(b *testing.B) {
	ds, kws, _ := plantedFixture(22, 1<<15, 2, 2, 64, 1<<12)
	ix, _ := NewTwoSI(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Report(kws[0], kws[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// Word-parallel 1D bitmaps on dense keywords.
func BenchmarkExtWordParallel1D(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	objs := make([]Object, 1<<16)
	for i := range objs {
		doc := []Keyword{2 + Keyword(rng.Intn(62))}
		if rng.Float64() < 0.3 {
			doc = append(doc, 0)
		}
		if rng.Float64() < 0.3 {
			doc = append(doc, 1)
		}
		objs[i] = Object{Point: Point{rng.Float64()}, Doc: doc}
	}
	ds, err := NewDataset(objs)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewWordParallel1D(ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 0.8
		if _, _, err := ix.Collect(lo, lo+0.1, []Keyword{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}
