package kwsc

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"
)

func TestQueryRequestValidate(t *testing.T) {
	valid := func() *QueryRequest {
		return &QueryRequest{
			Rect:     &RectWire{Lo: []float64{0, 0}, Hi: []float64{1, 1}},
			Keywords: []Keyword{1, 2},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*QueryRequest)
		wantErr bool
	}{
		{"valid-rect", func(r *QueryRequest) {}, false},
		{"valid-keyword-only", func(r *QueryRequest) { r.Rect = nil }, false},
		{"valid-sphere", func(r *QueryRequest) {
			r.Rect = nil
			r.Sphere = &SphereWire{Center: []float64{0.5, 0.5}, Radius: 0.25}
		}, false},
		{"both-shapes", func(r *QueryRequest) {
			r.Sphere = &SphereWire{Center: []float64{0.5, 0.5}, Radius: 0.25}
		}, true},
		{"rect-length-mismatch", func(r *QueryRequest) { r.Rect.Hi = []float64{1} }, true},
		{"rect-wrong-dim", func(r *QueryRequest) {
			r.Rect = &RectWire{Lo: []float64{0}, Hi: []float64{1}}
		}, true},
		{"rect-nan", func(r *QueryRequest) { r.Rect.Lo[0] = math.NaN() }, true},
		{"rect-inverted", func(r *QueryRequest) { r.Rect.Lo[1] = 2 }, true},
		{"sphere-wrong-dim", func(r *QueryRequest) {
			r.Rect = nil
			r.Sphere = &SphereWire{Center: []float64{0.5}, Radius: 0.25}
		}, true},
		{"sphere-negative-radius", func(r *QueryRequest) {
			r.Rect = nil
			r.Sphere = &SphereWire{Center: []float64{0.5, 0.5}, Radius: -1}
		}, true},
		{"sphere-nan-radius", func(r *QueryRequest) {
			r.Rect = nil
			r.Sphere = &SphereWire{Center: []float64{0.5, 0.5}, Radius: math.NaN()}
		}, true},
		{"too-few-keywords", func(r *QueryRequest) { r.Keywords = []Keyword{1} }, true},
		{"too-many-keywords", func(r *QueryRequest) { r.Keywords = []Keyword{1, 2, 3} }, true},
		{"duplicate-keywords", func(r *QueryRequest) { r.Keywords = []Keyword{7, 7} }, true},
		{"negative-limit", func(r *QueryRequest) { r.Limit = -1 }, true},
		{"negative-timeout", func(r *QueryRequest) { r.TimeoutMs = -5 }, true},
		{"negative-budget", func(r *QueryRequest) { r.NodeBudget = -5 }, true},
		{"negative-staleness", func(r *QueryRequest) { r.MaxStalenessMs = -5 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := valid()
			tc.mutate(req)
			err := req.Validate(2, 2)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				if !errors.Is(err, ErrInvalidQuery) {
					t.Fatalf("error %v does not wrap ErrInvalidQuery", err)
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestWriteRequestValidate(t *testing.T) {
	cases := []struct {
		name    string
		req     WriteRequest
		wantErr bool
	}{
		{"valid-insert", WriteRequest{Op: OpInsert, Point: []float64{0.1, 0.2}, Doc: []Keyword{1, 2}}, false},
		{"valid-delete", WriteRequest{Op: OpDelete, Handle: 42}, false},
		{"unknown-op", WriteRequest{Op: "upsert"}, true},
		{"empty-op", WriteRequest{}, true},
		{"insert-wrong-dim", WriteRequest{Op: OpInsert, Point: []float64{0.1}, Doc: []Keyword{1}}, true},
		{"insert-nan", WriteRequest{Op: OpInsert, Point: []float64{math.NaN(), 0}, Doc: []Keyword{1}}, true},
		{"insert-inf", WriteRequest{Op: OpInsert, Point: []float64{math.Inf(1), 0}, Doc: []Keyword{1}}, true},
		{"insert-empty-doc", WriteRequest{Op: OpInsert, Point: []float64{0.1, 0.2}}, true},
		{"delete-negative-handle", WriteRequest{Op: OpDelete, Handle: -1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate(2)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				if !errors.Is(err, ErrInvalidQuery) {
					t.Fatalf("error %v does not wrap ErrInvalidQuery", err)
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

func TestQueryRequestGeometry(t *testing.T) {
	// Rect request: bounding rect is the rect itself, no exact region.
	rq := &QueryRequest{Rect: &RectWire{Lo: []float64{0, 0}, Hi: []float64{1, 2}}, Keywords: []Keyword{1, 2}}
	if r := rq.BoundingRect(2); r.Lo[0] != 0 || r.Hi[1] != 2 {
		t.Fatalf("rect bounding box: %+v", r)
	}
	if rq.ExactRegion() != nil {
		t.Fatal("rect request should need no exact filter")
	}

	// Sphere request: bounding box inflates by the radius; exact region is
	// the sphere.
	sq := &QueryRequest{Sphere: &SphereWire{Center: []float64{0.5, 0.5}, Radius: 0.25}, Keywords: []Keyword{1, 2}}
	r := sq.BoundingRect(2)
	if r.Lo[0] != 0.25 || r.Hi[0] != 0.75 {
		t.Fatalf("sphere bounding box: %+v", r)
	}
	exact := sq.ExactRegion()
	if exact == nil || !exact.ContainsPoint(Point{0.5, 0.7}) || exact.ContainsPoint(Point{0.74, 0.74}) {
		t.Fatalf("sphere exact region misbehaves: %v", exact)
	}

	// Keyword-only request: the universe.
	kq := &QueryRequest{Keywords: []Keyword{1, 2}}
	u := kq.BoundingRect(2)
	if !u.ContainsPoint(Point{1e300, -1e300}) {
		t.Fatal("keyword-only bounding box is not the universe")
	}
}

func TestQueryRequestOpts(t *testing.T) {
	req := &QueryRequest{Keywords: []Keyword{1, 2}, Limit: 7, TimeoutMs: 50, NodeBudget: 100}
	opts := req.Opts(2 * time.Second)
	if opts.Limit != 7 || opts.Policy.Timeout != 50*time.Millisecond || opts.Policy.NodeBudget != 100 {
		t.Fatalf("opts: %+v", opts)
	}
	// No explicit timeout: the server default applies.
	req.TimeoutMs = 0
	if got := req.Opts(2 * time.Second).Policy.Timeout; got != 2*time.Second {
		t.Fatalf("default timeout: %v", got)
	}
	// Default disabled.
	if got := req.Opts(0).Policy.Timeout; got != 0 {
		t.Fatalf("disabled default timeout: %v", got)
	}
}

// TestWireRoundTrip pins the JSON field names — the /v1 contract.
func TestWireRoundTrip(t *testing.T) {
	req := &QueryRequest{
		Client:   "c",
		Sphere:   &SphereWire{Center: []float64{1, 2}, Radius: 3},
		Keywords: []Keyword{4, 5},
		Limit:    6, TimeoutMs: 7, NodeBudget: 8, MaxStalenessMs: 9,
	}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"client"`, `"sphere"`, `"center"`, `"radius"`,
		`"keywords"`, `"limit"`, `"timeout_ms"`, `"node_budget"`, `"max_staleness_ms"`} {
		if !bytes.Contains(buf, []byte(field)) {
			t.Fatalf("marshal missing %s: %s", field, buf)
		}
	}
	var back QueryRequest
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Client != "c" || back.Sphere.Radius != 3 || back.Limit != 6 || back.MaxStalenessMs != 9 {
		t.Fatalf("round trip: %+v", back)
	}

	resp := &QueryResponse{IDs: []int64{1, 2}, Count: 2, Truncated: true,
		Shards: []ShardOutcome{{Shard: 0, Reported: 2, Outcome: "ok"}}}
	buf, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"ids"`, `"count"`, `"truncated"`, `"shards"`, `"outcome"`} {
		if !bytes.Contains(buf, []byte(field)) {
			t.Fatalf("response marshal missing %s: %s", field, buf)
		}
	}
}
