package kwsc

import (
	"kwsc/internal/core"
	"kwsc/internal/flatio"
	"kwsc/internal/wal"
)

// Out-of-core serving. Two paths put index bytes on disk in the paged KWCP2
// container format (page-aligned columns, per-page checksums) and serve them
// back through a mapping instead of a rebuild or a full decode:
//
//   - Static indexes: SavePagedORPKW / SavePagedLCKW persist a flattened
//     index; OpenPagedORPKW / OpenPagedLCKW map it and serve queries whose
//     results, stats, and stop points are byte-identical to the in-RAM
//     index. The big columns (coordinates, posting payloads, tensors) alias
//     the mapping, so the page cache is the only copy and datasets larger
//     than RAM stay servable.
//
//   - The durable index: checkpoints are always written in this format, and
//     WithPagedRecovery makes OpenDurable serve the newest checkpoint in
//     place — cold start becomes map + WAL-tail replay, with object payloads
//     faulted in on demand.
//
// See DESIGN.md §15 for the container format, the pinning buffer pool, and
// the checkpoint-retirement protocol.

// PagedFileOptions tunes how a paged index file is accessed.
type PagedFileOptions = flatio.Options

// PagedHandle owns the open file's reference; it must stay open for the
// returned index's lifetime and be closed exactly once afterwards.
type PagedHandle = flatio.Handle

// PagedBaseOptions tunes the paged checkpoint base of WithPagedRecovery:
// CapPages bounds resident pages in pread mode, NoMmap forces pread.
type PagedBaseOptions = core.PagedBaseOptions

// SavePagedORPKW persists a flattened ORP-KW index (build with
// WithFlatLayout, or call Flatten first) as a paged container at path,
// atomically.
func SavePagedORPKW(path string, ix *ORPKW) error {
	return flatio.SaveFileORPKW(path, ix)
}

// OpenPagedORPKW maps a file written by SavePagedORPKW and returns a
// query-ready index without rebuilding. Options forward observability
// settings (WithTracer, WithoutObs); construction-time options are
// meaningless here. Close the handle when done with the index.
func OpenPagedORPKW(path string, o PagedFileOptions, opts ...Option) (*ORPKW, *PagedHandle, error) {
	return flatio.OpenORPKW(path, o, opts...)
}

// SavePagedLCKW persists a flattened LC-KW index. The index must use a
// rectangle splitter (&kwsc.BoxSplitter{Dim: d}); the default d=2 Willard
// substrate has polygon cells with no serialized form and is refused.
func SavePagedLCKW(path string, ix *LCKW) error {
	return flatio.SaveFileSPKW(path, ix)
}

// OpenPagedLCKW maps a file written by SavePagedLCKW.
func OpenPagedLCKW(path string, o PagedFileOptions, opts ...Option) (*LCKW, *PagedHandle, error) {
	return flatio.OpenSPKW(path, o, opts...)
}

// WithPagedRecovery makes OpenDurable serve the newest checkpoint through
// the pager instead of decoding it: the checkpoint file becomes the dynamic
// index's immutable bottom layer, cold start is map + WAL-tail replay, and
// checkpoint pruning defers deletion of the serving file until the index
// releases it (Close). Legacy (pre-KWCP2) checkpoints fall back to the
// decoding path automatically.
func WithPagedRecovery(o PagedBaseOptions) DurableOption {
	return wal.WithPagedRecovery(o)
}
