package kwsc

// Out-of-core cold-start series (DESIGN.md §15, `make bench-coldstart`):
// how fast a process goes from nothing to answering its first query, for
// each of the ways an index can come up.
//
//   - ColdStartPagedORPKW      open a saved KWCP2 flat image (mmap and
//                              pread) and answer the probe query
//   - ColdStartRebuildORPKW    rebuild the same index from the raw dataset
//                              (the only option before paged snapshots)
//   - ColdStartDurable         reopen a durable directory whose state is
//                              one checkpoint + a short WAL tail, with the
//                              decoding recovery vs. paged recovery
//   - PagedResidentCapped      serve scans out of a pread buffer pool with
//                              a hard page cap, reporting resident bytes —
//                              the bounded-memory property that makes
//                              larger-than-RAM serving safe
//
// Every timed iteration is a full open → probe → close cycle, so ns/op is
// literally "cold start to first result". The probe is the planted
// conjunctive query (OUT=64), which faults in the tree skeleton, posting
// payloads, and point columns — an open that defers all work would still
// have to pay it here.
//
// The N=1M tier is opt-in via KWSC_BENCH_1M=1, like the other 1M benches.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kwsc/internal/pager"
)

// savedPagedFixture builds the planted flat index once and saves it at a
// fresh path (the pager registry is per-path, so each access mode gets its
// own file).
func savedPagedFixture(b *testing.B, dir, name string, n, k int) (string, []Keyword, *Rect) {
	b.Helper()
	ds, kws, region := plantedFixture(1, n, 2, k, 64, n/8)
	ix, err := NewORPKW(ds, k, WithFlatLayout())
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, name+".kwflat")
	if err := SavePagedORPKW(path, ix); err != nil {
		b.Fatal(err)
	}
	return path, kws, region
}

func benchColdStartPaged(b *testing.B, n, k int, o PagedFileOptions, name string) {
	path, kws, region := savedPagedFixture(b, b.TempDir(), name, n, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, h, err := OpenPagedORPKW(path, o)
		if err != nil {
			b.Fatal(err)
		}
		got, _, err := ix.Collect(region, kws, QueryOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 64 {
			b.Fatalf("OUT drifted: %d", len(got))
		}
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartPagedORPKW: map (or open for pread) a saved flat image
// and answer the probe. No decode, no rebuild — the big columns alias the
// mapping and fault in on demand.
func BenchmarkColdStartPagedORPKW(b *testing.B) {
	const n, k = 1 << 16, 2
	b.Run(fmt.Sprintf("N=%d/mmap", n), func(b *testing.B) {
		benchColdStartPaged(b, n, k, PagedFileOptions{}, "mmap")
	})
	b.Run(fmt.Sprintf("N=%d/pread", n), func(b *testing.B) {
		benchColdStartPaged(b, n, k, PagedFileOptions{NoMmap: true}, "pread")
	})
}

// BenchmarkColdStartRebuildORPKW: the pre-paged baseline — rebuild the flat
// index from the raw dataset on every start. The committed series pins the
// paged/rebuild ratio (the ISSUE gate is >= 10x at N=65536).
func BenchmarkColdStartRebuildORPKW(b *testing.B) {
	const n, k = 1 << 16, 2
	ds, kws, region := plantedFixture(1, n, 2, k, 64, n/8)
	b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix, err := NewORPKW(ds, k, WithFlatLayout())
			if err != nil {
				b.Fatal(err)
			}
			got, _, err := ix.Collect(region, kws, QueryOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != 64 {
				b.Fatalf("OUT drifted: %d", len(got))
			}
		}
	})
}

// durableFixtureDir populates a durable directory once: n inserts, one
// checkpoint covering all of them, then a short tail of ops so recovery has
// both a checkpoint to load and a WAL to replay.
func durableFixtureDir(b *testing.B, n, k, tail int) (string, []Keyword, *Rect) {
	b.Helper()
	ds, kws, region := plantedFixture(1, n+tail, 2, k, 64, n/8)
	dir := b.TempDir()
	d, err := OpenDurable(dir, 2, k, WithFsyncPolicy(FsyncNone))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := d.Insert(*ds.Object(int32(i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := n; i < n+tail; i++ {
		if _, err := d.Insert(*ds.Object(int32(i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	return dir, kws, region
}

func benchColdStartDurable(b *testing.B, dir string, kws []Keyword, region *Rect, k int, opts ...DurableOption) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		d, err := OpenDurable(dir, 2, k, append([]DurableOption{WithFsyncPolicy(FsyncNone)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		got, _, err := d.Collect(region, kws)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 64 {
			b.Fatalf("OUT drifted: %d", len(got))
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartDurable: reopen a durable directory holding one
// N=65536 checkpoint plus a 64-op WAL tail. "decode" is the legacy path
// (full checkpoint decode into the heap); "paged" maps the checkpoint and
// replays only the tail.
func BenchmarkColdStartDurable(b *testing.B) {
	const n, k, tail = 1 << 16, 2, 64
	dir, kws, region := durableFixtureDir(b, n, k, tail)
	b.Run(fmt.Sprintf("N=%d/decode", n), func(b *testing.B) {
		benchColdStartDurable(b, dir, kws, region, k)
	})
	b.Run(fmt.Sprintf("N=%d/paged-mmap", n), func(b *testing.B) {
		benchColdStartDurable(b, dir, kws, region, k, WithPagedRecovery(PagedBaseOptions{}))
	})
	b.Run(fmt.Sprintf("N=%d/paged-pread", n), func(b *testing.B) {
		benchColdStartDurable(b, dir, kws, region, k, WithPagedRecovery(PagedBaseOptions{NoMmap: true}))
	})
}

// BenchmarkPagedResidentCapped: query a paged checkpoint through a pread
// buffer pool capped at 64 pages (256 KiB) while the checkpoint itself is
// megabytes. ns/op is the query under the cap; bytes-resident is the
// pool's page frames after the run — it must stay at or under the cap no
// matter how much of the file the queries touch. This is the
// larger-than-RAM property at benchmark scale: resident memory is set by
// the cap, not the dataset.
func BenchmarkPagedResidentCapped(b *testing.B) {
	const n, k, capPages = 1 << 16, 2, 64
	dir, kws, region := durableFixtureDir(b, n, k, 0)
	d, err := OpenDurable(dir, 2, k, WithFsyncPolicy(FsyncNone),
		WithPagedRecovery(PagedBaseOptions{NoMmap: true, CapPages: capPages}))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := d.Collect(region, kws)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 64 {
			b.Fatalf("OUT drifted: %d", len(got))
		}
	}
	b.StopTimer()
	resident := Metrics().Gauges["kwsc_pager_resident_pages"]
	if resident > capPages {
		b.Fatalf("buffer pool holds %d pages, cap is %d", resident, capPages)
	}
	b.ReportMetric(float64(resident)*float64(pager.PageSize), "bytes-resident")
}

// --- N=1M tier (opt-in: KWSC_BENCH_1M=1) -------------------------------------

// BenchmarkColdStartPagedORPKW1M is the mmap cold start at a million
// objects: the flat image is ~hundreds of MB, and opening it still costs
// milliseconds because nothing is decoded up front.
func BenchmarkColdStartPagedORPKW1M(b *testing.B) {
	if os.Getenv("KWSC_BENCH_1M") == "" {
		b.Skip("set KWSC_BENCH_1M=1 for the N=1M tier")
	}
	const n, k = 1 << 20, 2
	b.Run(fmt.Sprintf("N=%d/mmap", n), func(b *testing.B) {
		benchColdStartPaged(b, n, k, PagedFileOptions{}, "mmap1m")
	})
}
