package kwsc_test

// Integration tests through the public API only, as a downstream user would
// consume the library.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"kwsc"
)

func buildCatalog(t testing.TB, n int, seed int64) (*kwsc.Dataset, []kwsc.Object) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := make([]kwsc.Object, n)
	for i := range objs {
		doc := []kwsc.Keyword{kwsc.Keyword(rng.Intn(10))}
		if rng.Float64() < 0.4 {
			doc = append(doc, kwsc.Keyword(10+rng.Intn(10)))
		}
		if rng.Float64() < 0.3 {
			doc = append(doc, 0, 1)
		}
		objs[i] = kwsc.Object{
			Point: kwsc.Point{rng.Float64() * 100, rng.Float64() * 10},
			Doc:   doc,
		}
	}
	ds, err := kwsc.NewDataset(objs)
	if err != nil {
		t.Fatal(err)
	}
	return ds, objs
}

func oracle(ds *kwsc.Dataset, q kwsc.Region, ws []kwsc.Keyword) []int32 {
	return ds.Filter(q, ws)
}

func idsEqual(t *testing.T, got, want []int32, label string) {
	t.Helper()
	g := append([]int32(nil), got...)
	w := append([]int32(nil), want...)
	sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
	sort.Slice(w, func(a, b int) bool { return w[a] < w[b] })
	if len(g) != len(w) {
		t.Fatalf("%s: %d results, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: element %d: %d != %d", label, i, g[i], w[i])
		}
	}
}

func TestPublicORPKW(t *testing.T) {
	ds, _ := buildCatalog(t, 800, 1)
	ix, err := kwsc.NewORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := kwsc.NewRect([]float64{20, 2}, []float64{70, 8})
	ws := []kwsc.Keyword{0, 1}
	got, st, err := ix.Collect(q, ws, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	idsEqual(t, got, oracle(ds, q, ws), "public orpkw")
	if st.Ops == 0 {
		t.Fatal("stats not populated")
	}
	if ix.Space().TotalWords(64) <= 0 {
		t.Fatal("space audit not populated")
	}
}

func TestPublicLCKWAndSimplex(t *testing.T) {
	ds, _ := buildCatalog(t, 600, 2)
	ix, err := kwsc.NewLCKW(ds, kwsc.LCKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := []kwsc.Halfspace{{Coef: []float64{1, 5}, Bound: 80}}
	var got []int32
	if _, err := ix.QueryConstraints(hs, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{},
		func(id int32) { got = append(got, id) }); err != nil {
		t.Fatal(err)
	}
	idsEqual(t, got, oracle(ds, kwsc.NewPolyhedron(hs...), []kwsc.Keyword{0, 1}), "public lckw")

	tri := kwsc.NewSimplex(kwsc.Point{0, 0}, kwsc.Point{100, 0}, kwsc.Point{0, 10})
	var simGot []int32
	if _, err := ix.QuerySimplex(tri, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{},
		func(id int32) { simGot = append(simGot, id) }); err != nil {
		t.Fatal(err)
	}
	ph, err := tri.Polyhedron()
	if err != nil {
		t.Fatal(err)
	}
	idsEqual(t, simGot, oracle(ds, ph, []kwsc.Keyword{0, 1}), "public simplex")
}

func TestPublicSRPKW(t *testing.T) {
	ds, _ := buildCatalog(t, 500, 3)
	ix, err := kwsc.NewSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := kwsc.NewSphere(kwsc.Point{50, 5}, 20)
	got, _, err := ix.Collect(s, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	idsEqual(t, got, oracle(ds, s, []kwsc.Keyword{0, 1}), "public srpkw")
}

func TestPublicNearestNeighbors(t *testing.T) {
	ds, _ := buildCatalog(t, 400, 4)
	nn, err := kwsc.NewLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := nn.Query(kwsc.Point{50, 5}, 3, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Skip("no matches in this catalog")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestPublicRRKW(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rects := make([]kwsc.RectObject, 300)
	for i := range rects {
		a, b := rng.Float64()*10, rng.Float64()
		rects[i] = kwsc.RectObject{
			Rect: kwsc.NewRect([]float64{a}, []float64{a + b}),
			Doc:  []kwsc.Keyword{kwsc.Keyword(rng.Intn(3)), kwsc.Keyword(3 + rng.Intn(3))},
		}
	}
	ix, err := kwsc.NewRRKW(rects, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := kwsc.NewRect([]float64{4}, []float64{6})
	got, _, err := ix.Collect(q, []kwsc.Keyword{1, 4}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var want []int32
	for i, r := range rects {
		hasBoth := (r.Doc[0] == 1 || r.Doc[1] == 1) && (r.Doc[0] == 4 || r.Doc[1] == 4)
		if hasBoth && r.Rect.Hi[0] >= 4 && r.Rect.Lo[0] <= 6 {
			want = append(want, int32(i))
		}
	}
	idsEqual(t, got, want, "public rrkw")
}

func TestPublicKSI(t *testing.T) {
	sets := [][]int64{
		{1, 2, 3, 4, 5},
		{4, 5, 6, 7},
		{5, 9},
	}
	ix, err := kwsc.NewKSI(sets, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Report([]kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // {4, 5}
		t.Fatalf("S0 ∩ S1 has %d elements, want 2", len(got))
	}
	empty, _, err := ix.Empty([]kwsc.Keyword{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if empty { // 5 is shared
		t.Fatal("S0 ∩ S2 is not empty")
	}
}

func TestPublicUniverseAndInfinities(t *testing.T) {
	ds, _ := buildCatalog(t, 200, 6)
	ix, err := kwsc.NewORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Collect(kwsc.Universe(2), []kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	idsEqual(t, got, oracle(ds, kwsc.FullSpace{}, []kwsc.Keyword{0, 1}), "universe")
	half := kwsc.NewRect([]float64{50, math.Inf(-1)}, []float64{math.Inf(1), math.Inf(1)})
	got, _, err = ix.Collect(half, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	idsEqual(t, got, oracle(ds, half, []kwsc.Keyword{0, 1}), "half-open")
}

// Indexes are safe for concurrent readers: queries only read. Run many
// goroutines under -race.
func TestPublicConcurrentQueries(t *testing.T) {
	ds, _ := buildCatalog(t, 1000, 7)
	ix, err := kwsc.NewORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := kwsc.NewRect([]float64{10, 1}, []float64{90, 9})
	want := oracle(ds, q, []kwsc.Keyword{0, 1})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				got, _, err := ix.Collect(q, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
				if err != nil {
					done <- err
					return
				}
				if len(got) != len(want) {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent result mismatch" }

// Touch every extension constructor through the public API.
func TestPublicExtensions(t *testing.T) {
	ds, _ := buildCatalog(t, 300, 8)

	// Dynamic index.
	dyn, err := kwsc.NewDynamicORPKW(2, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := dyn.Insert(kwsc.Object{Point: kwsc.Point{1, 1}, Doc: []kwsc.Keyword{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := dyn.Collect(kwsc.Universe(2), []kwsc.Keyword{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != h {
		t.Fatalf("dynamic query = %v", ids)
	}

	// Cohen–Porat 2-SI.
	cp, err := kwsc.NewTwoSI(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := cp.Report(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(ds, kwsc.FullSpace{}, []kwsc.Keyword{0, 1})
	if len(got) != len(want) {
		t.Fatalf("twosi: %d vs %d", len(got), len(want))
	}

	// Word-parallel 1D.
	objs1d := make([]kwsc.Object, 200)
	for i := range objs1d {
		objs1d[i] = kwsc.Object{Point: kwsc.Point{float64(i)}, Doc: []kwsc.Keyword{0, kwsc.Keyword(1 + i%3)}}
	}
	ds1, err := kwsc.NewDataset(objs1d)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := kwsc.NewWordParallel1D(ds1)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, err := wp.Collect(10, 20, []kwsc.Keyword{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range hits {
		p := ds1.Point(id)[0]
		if p < 10 || p > 20 {
			t.Fatalf("word-parallel hit out of range: %v", p)
		}
	}

	// MultiK.
	mk, err := kwsc.NewMultiK(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := kwsc.NewRect([]float64{0, 0}, []float64{100, 10})
	got3, _, err := mk.Collect(q, []kwsc.Keyword{0, 1}, kwsc.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	idsEqual(t, got3, oracle(ds, q, []kwsc.Keyword{0, 1}), "public multik")

	// Vocabulary.
	v := kwsc.NewVocabulary()
	doc := v.Doc("pool", "spa")
	if len(doc) != 2 || v.Len() != 2 {
		t.Fatal("vocabulary broken")
	}

	// Codec round trip.
	var buf bytes.Buffer
	if err := kwsc.WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := kwsc.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() || back.N() != ds.N() {
		t.Fatal("codec round trip changed the dataset")
	}

	// Batch queries.
	ix, err := kwsc.NewORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := []kwsc.RectQuery{
		{Rect: q, Keywords: []kwsc.Keyword{0, 1}},
		{Rect: kwsc.NewRect([]float64{0, 0}, []float64{50, 5}), Keywords: []kwsc.Keyword{0, 1}},
	}
	res := ix.QueryBatch(batch, 2)
	if len(res) != 2 || res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("batch failed: %+v", res)
	}
	idsEqual(t, res[0].IDs, got3, "batch vs direct")

	// Count/Empty.
	n, _, err := ix.Count(q, []kwsc.Keyword{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(got3) {
		t.Fatalf("Count = %d, want %d", n, len(got3))
	}
}

// Example demonstrates the paper's introductory query end to end.
func Example() {
	const (
		pool kwsc.Keyword = iota
		parking
		petFriendly
	)
	objs := []kwsc.Object{
		{Point: kwsc.Point{120, 8.7}, Doc: []kwsc.Keyword{pool, parking, petFriendly}},
		{Point: kwsc.Point{310, 9.4}, Doc: []kwsc.Keyword{pool}},
		{Point: kwsc.Point{150, 8.2}, Doc: []kwsc.Keyword{pool, parking, petFriendly}},
		{Point: kwsc.Point{60, 6.1}, Doc: []kwsc.Keyword{parking}},
	}
	ds, _ := kwsc.NewDataset(objs)
	ix, _ := kwsc.NewORPKW(ds, 3)
	// price in [100, 200], rating >= 8, all three amenity tags.
	ids, _, _ := ix.Collect(
		kwsc.NewRect([]float64{100, 8}, []float64{200, math.Inf(1)}),
		[]kwsc.Keyword{pool, parking, petFriendly},
		kwsc.QueryOpts{},
	)
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	fmt.Println(ids)
	// Output: [0 2]
}
