package kwsc

import (
	"time"

	"kwsc/internal/wal"
)

// Durability: OpenDurable gives the dynamic ORP-KW index a write-ahead log,
// periodic checkpoints, and crash recovery. Every insert and delete is
// logged before it is acknowledged, so after a crash Open reconstructs the
// exact acknowledged state: newest valid checkpoint + log replay, with a
// torn final write truncated and any deeper corruption refused (ErrCorrupt)
// rather than silently skipped.
//
// The durable index is safe for concurrent use: writers serialize on an
// internal write mutex while queries and snapshots run lock-free against the
// published copy-on-write state — they never wait on a mutation, a
// checkpoint, or an fsync.
//
//	d, err := kwsc.OpenDurable("idx.d", 2, 2) // dim=2, k=2
//	h, err := d.Insert(obj)                   // durable once err == nil
//	s := d.Snapshot()                         // pinned view of seq [1, s.Seq()]
//	err = d.Checkpoint()                      // bound future recovery time
//	err = d.Close()
//	d, err = kwsc.OpenDurable("idx.d", 2, 2)  // recovers, handles stable

// DurableORPKW is the crash-safe dynamic index; see OpenDurable.
type DurableORPKW = wal.Durable

// DurableOption configures OpenDurable.
type DurableOption = wal.Option

// SyncPolicy selects when the write-ahead log is fsynced — the
// durability/throughput trade-off of WithFsyncPolicy.
type SyncPolicy = wal.SyncPolicy

// Fsync policies for WithFsyncPolicy.
const (
	// FsyncEveryOp fsyncs before acknowledging each operation (default):
	// acknowledged ops survive OS crashes and power loss.
	FsyncEveryOp = wal.SyncEveryOp
	// FsyncInterval flushes every append immediately but fsyncs on a timer:
	// acknowledged ops survive process crashes; an OS crash can lose up to
	// one interval.
	FsyncInterval = wal.SyncInterval
	// FsyncNone never fsyncs explicitly: acknowledged ops survive process
	// crashes only.
	FsyncNone = wal.SyncNone
)

// ErrCorrupt reports unrecoverable log or checkpoint corruption found during
// OpenDurable: damage that valid records follow, a sequence gap, or an
// inapplicable record. (A torn final write is not corruption; recovery
// truncates it silently.)
var ErrCorrupt = wal.ErrCorrupt

// ErrIndexClosed reports an operation on a closed durable index.
var ErrIndexClosed = wal.ErrClosed

// WithFsyncPolicy selects the log's fsync policy (default FsyncEveryOp).
func WithFsyncPolicy(p SyncPolicy) DurableOption { return wal.WithSyncPolicy(p) }

// WithFsyncInterval selects FsyncInterval with the given period.
func WithFsyncInterval(d time.Duration) DurableOption { return wal.WithSyncInterval(d) }

// WithAutoCheckpoint checkpoints automatically after every n operations
// (0 disables; Checkpoint remains available).
func WithAutoCheckpoint(n int) DurableOption { return wal.WithAutoCheckpoint(n) }

// WithDurableBufferCap tunes the dynamic index's unindexed write buffer
// (0 selects the default).
func WithDurableBufferCap(n int) DurableOption { return wal.WithBufferCap(n) }

// WithDurableBuild forwards index construction options (WithParallelism,
// WithTracer, WithoutObs) to the underlying dynamic index.
func WithDurableBuild(opts ...Option) DurableOption { return wal.WithBuildOptions(opts...) }

// OpenDurable opens (creating or recovering) a durable dynamic ORP-KW index
// rooted at directory dir, for dim-dimensional points and k-keyword queries;
// dim and k must match any state already in dir. See DESIGN.md §11 for the
// log format, checkpointing, and the recovery state machine.
func OpenDurable(dir string, dim, k int, opts ...DurableOption) (*DurableORPKW, error) {
	return wal.Open(dir, dim, k, opts...)
}
