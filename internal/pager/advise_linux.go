//go:build linux

package pager

import "syscall"

// adviseRange applies the hint to [off, off+n): madvise on the mapping when
// the file is mapped, posix_fadvise on the descriptor otherwise. Errors are
// deliberately dropped — a refused hint just means colder first reads.
func (f *File) adviseRange(off, n int64, kind adviseKind) {
	lo, hi, ok := f.clampRange(off, n)
	if !ok {
		return
	}
	if f.data != nil {
		madv := syscall.MADV_WILLNEED
		if kind == adviseSequential {
			madv = syscall.MADV_SEQUENTIAL
		}
		_ = syscall.Madvise(f.data[lo:hi], madv)
		return
	}
	// posix_fadvise advice values (linux/include/uapi/linux/fadvise.h);
	// syscall exports no constants for them.
	fadv := int64(3) // POSIX_FADV_WILLNEED
	if kind == adviseSequential {
		fadv = 2 // POSIX_FADV_SEQUENTIAL
	}
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64,
		f.f.Fd(), uintptr(lo), uintptr(hi-lo), uintptr(fadv), 0, 0)
}
