//go:build linux

package pager

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only and shared; the kernel's page cache backs
// the mapping, so resident set grows only with touched pages and shrinks
// under memory pressure — the property that lets a shard serve an index
// larger than RAM.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
