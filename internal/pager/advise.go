package pager

// Kernel access-pattern hints (ROADMAP item 2c). Hints are best-effort: they
// never fail a read, they only warm or order the page cache. On a mapped
// file they become madvise on the mapping; on a pread-backed file,
// posix_fadvise on the descriptor; on non-Linux platforms, nothing.

// adviseKind selects the hint adviseRange applies.
type adviseKind int

const (
	adviseWillNeed   adviseKind = iota // prefetch: the range is about to be hot
	adviseSequential                   // aggressive readahead: one linear pass
)

// AdviseWillNeed hints that the byte range [off, off+n) is about to be
// accessed — the kernel may start prefetching it. Used on the tree-skeleton
// sections at open so the first queries fault in warm pages.
func (f *File) AdviseWillNeed(off, n int64) { f.adviseRange(off, n, adviseWillNeed) }

// AdviseSequential hints one linear pass over [off, off+n) — the kernel
// raises readahead for it. Used by the open-time VerifyAllPages scan.
func (f *File) AdviseSequential(off, n int64) { f.adviseRange(off, n, adviseSequential) }

// clampRange page-aligns and bounds-checks a hint range; ok is false when
// nothing remains to advise.
func (f *File) clampRange(off, n int64) (lo, hi int64, ok bool) {
	if n <= 0 || off < 0 || off >= f.size {
		return 0, 0, false
	}
	hi = off + n
	if hi > f.size {
		hi = f.size
	}
	lo = off &^ (PageSize - 1) // madvise requires a page-aligned start
	return lo, hi, true
}
