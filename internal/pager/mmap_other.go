//go:build !linux

package pager

import "os"

// Platforms without the mmap fast path fall back to pread transparently:
// Open treats a map failure as "not mapped" and every read goes through the
// pool.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errString("pager: mmap unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
