package pager

import (
	"encoding/binary"
	"fmt"
	"math"
)

// View is a typed random-access reader over one byte range of a pooled file
// (one KWCP2 section, usually). It keeps the most recently touched page
// pinned, so sequential and locally-clustered access patterns — binary
// searches, posting-block scans, per-object doc reads — pin each page once
// per run instead of once per word.
//
// Errors are sticky: a failed read (bad offset, checksum mismatch) zeroes
// the result, latches the error, and makes every later read a no-op; check
// Err at the points where the caller needs a verdict. A View is not safe for
// concurrent use; create one per goroutine (Views are cheap — one pin).
type View struct {
	p       *Pool
	off     int64 // absolute byte offset of the section
	n       int64 // section length in bytes
	cur     Frame
	curPage int64
	err     error
}

// NewView creates a view over the absolute byte range [off, off+n).
func NewView(p *Pool, off, n int64) (*View, error) {
	if off < 0 || n < 0 || off+n > p.f.size {
		return nil, fmt.Errorf("pager: view [%d,%d) outside file of %d bytes", off, off+n, p.f.size)
	}
	return &View{p: p, off: off, n: n, curPage: -1}, nil
}

// Len returns the section length in bytes.
func (v *View) Len() int64 { return v.n }

// Err returns the first error any read hit, or nil.
func (v *View) Err() error { return v.err }

// Release unpins the sticky frame. The view is reusable afterwards (the
// next read re-pins).
func (v *View) Release() {
	v.cur.Unpin()
	v.cur = Frame{}
	v.curPage = -1
}

// fail latches err and returns nil.
func (v *View) fail(err error) []byte {
	if v.err == nil {
		v.err = err
	}
	return nil
}

// page pins page pg (absolute page index), reusing the sticky frame.
func (v *View) page(pg int64) []byte {
	if pg == v.curPage {
		return v.cur.Data
	}
	fr, err := v.p.Pin(pg)
	if err != nil {
		return v.fail(err)
	}
	v.cur.Unpin()
	v.cur = fr
	v.curPage = pg
	return fr.Data
}

// bytes returns n bytes at section-relative offset rel when they lie within
// a single page; callers needing spans use Read. n must be <= PageSize.
func (v *View) bytes(rel, n int64) []byte {
	if v.err != nil {
		return nil
	}
	if rel < 0 || n < 0 || rel+n > v.n {
		return v.fail(fmt.Errorf("pager: read [%d,%d) outside section of %d bytes", rel, rel+n, v.n))
	}
	abs := v.off + rel
	pg := abs / PageSize
	po := abs - pg*PageSize
	if po+n > PageSize {
		return nil // page-crossing: caller falls back to Read
	}
	data := v.page(pg)
	if data == nil {
		return nil
	}
	if po+n > int64(len(data)) {
		return v.fail(fmt.Errorf("pager: read past end of partial page %d", pg))
	}
	return data[po : po+n]
}

// Read copies the section-relative range [rel, rel+len(dst)) into dst,
// crossing pages as needed.
func (v *View) Read(rel int64, dst []byte) {
	if v.err != nil {
		return
	}
	n := int64(len(dst))
	if rel < 0 || rel+n > v.n {
		v.fail(fmt.Errorf("pager: read [%d,%d) outside section of %d bytes", rel, rel+n, v.n))
		return
	}
	for n > 0 {
		abs := v.off + rel
		pg := abs / PageSize
		po := abs - pg*PageSize
		chunk := PageSize - po
		if chunk > n {
			chunk = n
		}
		data := v.page(pg)
		if data == nil {
			return
		}
		if po+chunk > int64(len(data)) {
			v.fail(fmt.Errorf("pager: read past end of partial page %d", pg))
			return
		}
		copy(dst[len(dst)-int(n):], data[po:po+chunk])
		rel += chunk
		n -= chunk
	}
}

// readScalar reads size bytes at rel, handling the (rare) page-straddling
// case through a stack buffer.
func (v *View) readScalar(rel, size int64, buf []byte) []byte {
	if b := v.bytes(rel, size); b != nil || v.err != nil {
		return b
	}
	v.Read(rel, buf[:size])
	if v.err != nil {
		return nil
	}
	return buf[:size]
}

// U32 reads the little-endian uint32 at byte offset rel.
func (v *View) U32(rel int64) uint32 {
	var buf [4]byte
	b := v.readScalar(rel, 4, buf[:])
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads the little-endian uint64 at byte offset rel.
func (v *View) U64(rel int64) uint64 {
	var buf [8]byte
	b := v.readScalar(rel, 8, buf[:])
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads the little-endian int32 at byte offset rel.
func (v *View) I32(rel int64) int32 { return int32(v.U32(rel)) }

// I64 reads the little-endian int64 at byte offset rel.
func (v *View) I64(rel int64) int64 { return int64(v.U64(rel)) }

// F64 reads the little-endian float64 at byte offset rel.
func (v *View) F64(rel int64) float64 { return math.Float64frombits(v.U64(rel)) }
