// Package pager is the out-of-core substrate of the KWCP2 paged snapshot
// format (DESIGN.md §15): a page-granular view over an immutable on-disk
// file, served either zero-copy from a read-only memory mapping (the default
// on platforms that support it) or through pread into a bounded pin/unpin
// buffer pool with clock eviction. Pages are verified against their crc32c
// on first pin, and every pool is instrumented through internal/obs
// (hits/misses/evictions, resident-page gauge, pin-latency histogram).
//
// The package also owns the open-file registry that checkpoint pruning
// consults: a superseded snapshot file that a live mapping still pins is
// marked obsolete and deleted on the last unref instead of being unlinked
// under the reader (see Retire).
package pager

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// PageSize is the fixed page granularity of KWCP2 files. Sections start on
// page boundaries, so a page-aligned mapping keeps every section payload
// aligned for word-sized access.
const PageSize = 4096

// ErrChecksum reports a page whose content does not match its recorded
// crc32c — torn by a crash after the rename commit point (impossible with a
// sane filesystem, but disks lie) or damaged at rest.
var ErrChecksum = errString("pager: page checksum mismatch")

type errString string

func (e errString) Error() string { return string(e) }

// File is one open, immutable paged file. It is either memory-mapped (data
// non-nil; reads are zero-copy subslices) or plain-file backed (reads go
// through pread). Files are reference counted: Open/Ref take a reference,
// Unref drops one, and the file is unmapped and closed — and, if Retire
// marked it obsolete, deleted — when the count reaches zero.
type File struct {
	path string
	f    *os.File
	data []byte // non-nil iff mmap'd
	size int64

	mu       sync.Mutex
	refs     int
	obsolete bool
	closed   bool
}

// openOpts configures Open.
type openOpts struct {
	noMmap bool
}

// OpenOption configures Open.
type OpenOption func(*openOpts)

// WithoutMmap forces the pread path even where mmap is available — the
// bounded-memory serving mode (pages resident only while pooled) and the
// fallback exercised by tests on every platform.
func WithoutMmap() OpenOption { return func(o *openOpts) { o.noMmap = true } }

// registry tracks every open File by cleaned absolute path so that Retire
// can defer deletion of files still in use, and so a second Open of the same
// path shares the mapping instead of doubling it.
var (
	regMu    sync.Mutex
	registry = map[string]*File{}
)

// Open opens path for paged reads, taking one reference. If the same path is
// already open the existing File is shared (its reference count grows); the
// mapping/file descriptor is a process-wide singleton per path.
func Open(path string, opts ...OpenOption) (*File, error) {
	var o openOpts
	for _, op := range opts {
		op(&o)
	}
	key, err := filepath.Abs(filepath.Clean(path))
	if err != nil {
		return nil, err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if f, ok := registry[key]; ok {
		f.mu.Lock()
		f.refs++
		f.mu.Unlock()
		return f, nil
	}
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := osf.Stat()
	if err != nil {
		osf.Close()
		return nil, err
	}
	pf := &File{path: key, f: osf, size: st.Size(), refs: 1}
	if !o.noMmap && pf.size > 0 {
		if data, err := mmapFile(osf, pf.size); err == nil {
			pf.data = data
		}
		// mmap failure is not an error: pread serves the same bytes.
	}
	registry[key] = pf
	pagerOpenFiles.Add(1)
	if pf.data != nil {
		pagerMappedBytes.Add(pf.size)
	}
	return pf, nil
}

// Ref takes an additional reference on an already-open file.
func (f *File) Ref() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// Unref drops one reference. On the last unref the mapping is released, the
// descriptor closed, and — if the file was retired while open — the file is
// removed from disk.
func (f *File) Unref() error {
	regMu.Lock()
	f.mu.Lock()
	f.refs--
	last := f.refs <= 0 && !f.closed
	if last {
		f.closed = true
		if registry[f.path] == f {
			delete(registry, f.path)
		}
	}
	obsolete := f.obsolete
	f.mu.Unlock()
	regMu.Unlock()
	if !last {
		return nil
	}
	var err error
	if f.data != nil {
		err = munmapFile(f.data)
		pagerMappedBytes.Add(-f.size)
		f.data = nil
	}
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	pagerOpenFiles.Add(-1)
	if obsolete {
		if rerr := os.Remove(f.path); rerr != nil && !os.IsNotExist(rerr) && err == nil {
			err = rerr
		}
		pagerRetiredDeleted.Inc()
	}
	return err
}

// Retire marks the file at path as superseded. If no open File holds it, the
// file is unlinked immediately; otherwise deletion is deferred to the last
// Unref and Retire reports deferred=true. Checkpoint pruning calls this
// instead of os.Remove so a snapshot a live mapping still pins is never
// deleted under the reader.
func Retire(path string) (deferred bool, err error) {
	key, err := filepath.Abs(filepath.Clean(path))
	if err != nil {
		return false, err
	}
	regMu.Lock()
	f, open := registry[key]
	if open {
		f.mu.Lock()
		f.obsolete = true
		f.mu.Unlock()
		pagerRetireDeferred.Inc()
	}
	regMu.Unlock()
	if open {
		return true, nil
	}
	if err := os.Remove(key); err != nil && !os.IsNotExist(err) {
		return false, err
	}
	return false, nil
}

// Path returns the cleaned absolute path of the file.
func (f *File) Path() string { return f.path }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Mapped reports whether reads are served from a memory mapping.
func (f *File) Mapped() bool { return f.data != nil }

// NumPages returns the page count (the last page may be partial).
func (f *File) NumPages() int64 { return (f.size + PageSize - 1) / PageSize }

// ReadAt implements io.ReaderAt over either backend.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > f.size {
		return 0, fmt.Errorf("pager: read offset %d outside file of %d bytes", off, f.size)
	}
	if f.data != nil {
		n := copy(p, f.data[off:])
		if n < len(p) {
			return n, io.EOF
		}
		return n, nil
	}
	return f.f.ReadAt(p, off)
}

// Bytes returns the full mapping, or nil when the file is pread-backed. The
// returned slice is read-only: writing to it faults.
func (f *File) Bytes() []byte { return f.data }

// pageSpan returns the byte range of page p within the file.
func (f *File) pageSpan(page int64) (off, n int64, err error) {
	off = page * PageSize
	if page < 0 || off >= f.size {
		return 0, 0, fmt.Errorf("pager: page %d outside file of %d pages", page, f.NumPages())
	}
	n = PageSize
	if off+n > f.size {
		n = f.size - off
	}
	return off, n, nil
}
