package pager

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writePagedFixture writes nPages pages of deterministic content and returns
// the path plus the per-page crc table.
func writePagedFixture(t *testing.T, nPages int, tail int) (string, []uint32) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.kwc2")
	size := (nPages-1)*PageSize + tail
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*7 + i/PageSize)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	crcs := make([]uint32, nPages)
	for p := 0; p < nPages; p++ {
		end := (p + 1) * PageSize
		if end > size {
			end = size
		}
		crcs[p] = Checksum(data[p*PageSize : end])
	}
	return path, crcs
}

func openBoth(t *testing.T, path string) map[string]*File {
	t.Helper()
	m := map[string]*File{}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m["auto"] = f
	// The same path is a registry singleton, so force the pread mode through
	// a distinct path (hard link) rather than a second Open option.
	alt := path + ".pread"
	if err := os.Link(path, alt); err != nil {
		t.Fatal(err)
	}
	pf, err := Open(alt, WithoutMmap())
	if err != nil {
		t.Fatal(err)
	}
	if pf.Mapped() {
		t.Fatal("WithoutMmap file reports Mapped")
	}
	m["pread"] = pf
	return m
}

func TestPinRoundTripBothModes(t *testing.T) {
	path, crcs := writePagedFixture(t, 5, 1000)
	for mode, f := range openBoth(t, path) {
		pool := NewPool(f, 2, crcs)
		for pass := 0; pass < 2; pass++ {
			for p := int64(0); p < f.NumPages(); p++ {
				fr, err := pool.Pin(p)
				if err != nil {
					t.Fatalf("%s: pin page %d: %v", mode, p, err)
				}
				want := byte(int(p)*PageSize*7 + int(p))
				if fr.Data[0] != want {
					t.Fatalf("%s: page %d starts with %d, want %d", mode, p, fr.Data[0], want)
				}
				if p == f.NumPages()-1 && len(fr.Data) != 1000 {
					t.Fatalf("%s: tail page has %d bytes, want 1000", mode, len(fr.Data))
				}
				fr.Unpin()
			}
		}
		if err := f.Unref(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChecksumFailureOnFirstPin(t *testing.T) {
	path, crcs := writePagedFixture(t, 4, PageSize)
	// Corrupt one byte in page 2.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[2*PageSize+100] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for mode, f := range openBoth(t, path) {
		pool := NewPool(f, 4, crcs)
		if _, err := pool.Pin(1); err != nil {
			t.Fatalf("%s: clean page rejected: %v", mode, err)
		}
		if _, err := pool.Pin(2); !errors.Is(err, ErrChecksum) {
			t.Fatalf("%s: corrupt page error = %v, want ErrChecksum", mode, err)
		}
		f.Unref()
	}
}

func TestPoolEvictionBound(t *testing.T) {
	path, crcs := writePagedFixture(t, 32, PageSize)
	f, err := Open(path, WithoutMmap())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Unref()
	const cap = 4
	pool := NewPool(f, cap, crcs)
	before := pagerEvictions.Load()
	for round := 0; round < 3; round++ {
		for p := int64(0); p < 32; p++ {
			fr, err := pool.Pin(p)
			if err != nil {
				t.Fatal(err)
			}
			fr.Unpin()
			if r := pool.Resident(); r > cap {
				t.Fatalf("resident %d exceeds cap %d", r, cap)
			}
		}
	}
	if pagerEvictions.Load() == before {
		t.Fatal("no evictions recorded while cycling 32 pages through a 4-page pool")
	}
}

func TestPinnedFramesSurviveEviction(t *testing.T) {
	path, crcs := writePagedFixture(t, 16, PageSize)
	f, err := Open(path, WithoutMmap())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Unref()
	pool := NewPool(f, 2, crcs)
	fr0, err := pool.Pin(0)
	if err != nil {
		t.Fatal(err)
	}
	first := fr0.Data[0]
	for p := int64(1); p < 16; p++ {
		fr, err := pool.Pin(p)
		if err != nil {
			t.Fatal(err)
		}
		fr.Unpin()
	}
	if fr0.Data[0] != first {
		t.Fatal("pinned frame was evicted and reused under the pin")
	}
	fr0.Unpin()
}

func TestViewTypedReadsAndSpans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "typed.kwc2")
	data := make([]byte, 3*PageSize)
	binary.LittleEndian.PutUint64(data[16:], 0xdeadbeefcafe)
	binary.LittleEndian.PutUint32(data[PageSize-2:], 0x11223344) // straddles pages 0/1
	for i := 0; i < 64; i++ {
		data[2*PageSize+i] = byte(i)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"mmap", "pread"} {
		p := path
		var opts []OpenOption
		if mode == "pread" {
			p = path + ".pread"
			os.Link(path, p)
			opts = append(opts, WithoutMmap())
		}
		f, err := Open(p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		pool := NewPool(f, 2, nil)
		v, err := NewView(pool, 0, f.Size())
		if err != nil {
			t.Fatal(err)
		}
		if got := v.U64(16); got != 0xdeadbeefcafe {
			t.Fatalf("%s: U64 = %x", mode, got)
		}
		if got := v.U32(PageSize - 2); got != 0x11223344 {
			t.Fatalf("%s: straddling U32 = %x", mode, got)
		}
		span := make([]byte, 64)
		v.Read(2*PageSize-16, span)
		for i := 16; i < 64; i++ {
			if span[i] != byte(i-16) {
				t.Fatalf("%s: span[%d] = %d", mode, i, span[i])
			}
		}
		if v.Err() != nil {
			t.Fatalf("%s: sticky err %v", mode, v.Err())
		}
		v.U64(f.Size()) // out of range
		if v.Err() == nil {
			t.Fatalf("%s: out-of-range read did not latch", mode)
		}
		v.Release()
		f.Unref()
	}
}

func TestRetireDefersWhileOpen(t *testing.T) {
	path, _ := writePagedFixture(t, 2, PageSize)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	deferred, err := Retire(path)
	if err != nil || !deferred {
		t.Fatalf("Retire(open) = (%v, %v), want deferred", deferred, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("retired file deleted while still referenced")
	}
	// A second reference keeps it alive past the first unref.
	f.Ref()
	if err := f.Unref(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("retired file deleted while a reference remains")
	}
	if err := f.Unref(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("retired file survives last unref: %v", err)
	}
}

func TestRetireUnopenedRemovesImmediately(t *testing.T) {
	path, _ := writePagedFixture(t, 2, PageSize)
	deferred, err := Retire(path)
	if err != nil || deferred {
		t.Fatalf("Retire(closed) = (%v, %v)", deferred, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("file survives immediate retire")
	}
}

func TestOpenSharesRegistryEntry(t *testing.T) {
	path, _ := writePagedFixture(t, 2, PageSize)
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same path opened twice returned distinct files")
	}
	if err := a.Unref(); err != nil {
		t.Fatal(err)
	}
	// Still readable through the second reference.
	var buf [8]byte
	if _, err := b.ReadAt(buf[:], 0); err != nil {
		t.Fatalf("read after first unref: %v", err)
	}
	if err := b.Unref(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPinsRace(t *testing.T) {
	path, crcs := writePagedFixture(t, 64, PageSize)
	f, err := Open(path, WithoutMmap())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Unref()
	pool := NewPool(f, 8, crcs)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			for i := 0; i < 400; i++ {
				p := (seed*31 + int64(i)*17) % 64
				fr, err := pool.Pin(p)
				if err != nil {
					done <- err
					return
				}
				want := byte(int(p)*PageSize*7 + int(p))
				if fr.Data[0] != want {
					fr.Unpin()
					done <- errors.New("pin returned wrong page content")
					return
				}
				fr.Unpin()
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdviseHints: access-pattern hints must be safe no-ops from the
// caller's perspective on both backends — any range, including unaligned,
// partial-page, and out-of-bounds ones, leaves reads intact.
func TestAdviseHints(t *testing.T) {
	path, _ := writePagedFixture(t, 4, 100)
	for mode, f := range openBoth(t, path) {
		t.Run(mode, func(t *testing.T) {
			defer f.Unref()
			f.AdviseSequential(0, f.Size())
			f.AdviseWillNeed(0, f.Size())
			f.AdviseWillNeed(123, 7)           // unaligned interior
			f.AdviseWillNeed(f.Size()-10, 100) // clipped tail
			f.AdviseWillNeed(-5, 10)           // rejected, no panic
			f.AdviseWillNeed(f.Size()+5, 10)   // past EOF, rejected
			f.AdviseSequential(0, 0)           // empty
			var buf [8]byte
			if _, err := f.ReadAt(buf[:], 0); err != nil {
				t.Fatalf("read after advise: %v", err)
			}
			if want := byte(0); buf[0] != want {
				t.Fatalf("byte 0 = %d, want %d", buf[0], want)
			}
		})
	}
}
