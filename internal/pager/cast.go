package pager

import "unsafe"

// Zero-copy typed views over mapped section bytes. KWCP2 sections are
// little-endian and page-aligned, so on a little-endian host a mapped
// section IS the typed slice — no decode, no copy. Big-endian hosts (and
// misaligned inputs, which a well-formed container never produces) get nil
// and fall back to the view-based readers.

// hostLE reports whether the host is little-endian, decided once at init.
var hostLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// CanCast reports whether zero-copy casts are available on this host.
func CanCast() bool { return hostLE }

func castOK(b []byte, align int) bool {
	return hostLE && len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%uintptr(align) == 0
}

// CastI64 views b as []int64. Returns nil unless the host is little-endian
// and b is 8-byte aligned and non-empty.
func CastI64(b []byte) []int64 {
	if !castOK(b, 8) {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// CastU64 views b as []uint64 under the same conditions as CastI64.
func CastU64(b []byte) []uint64 {
	if !castOK(b, 8) {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// CastF64 views b as []float64 under the same conditions as CastI64.
func CastF64(b []byte) []float64 {
	if !castOK(b, 8) {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// CastU32 views b as []uint32 (4-byte alignment).
func CastU32(b []byte) []uint32 {
	if !castOK(b, 4) {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// CastI32 views b as []int32 (4-byte alignment).
func CastI32(b []byte) []int32 {
	if !castOK(b, 4) {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
