//go:build !linux

package pager

// adviseRange is a no-op off Linux: the hints are pure optimizations and the
// portable fallback is simply a cold page cache.
func (f *File) adviseRange(off, n int64, kind adviseKind) {
	_, _, _ = off, n, kind
}
