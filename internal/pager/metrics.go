package pager

import "kwsc/internal/obs"

// Buffer-pool metrics, registered process-wide like the query and WAL
// families: the hit ratio and eviction rate tell whether a capped pool is
// sized for its working set, the resident gauge bounds memory, and the
// pin-latency histogram separates cached pins (ns) from faulting ones (µs+).
var (
	pagerPinHits     = obs.Default().Counter("kwsc_pager_pin_hits_total")
	pagerPinMisses   = obs.Default().Counter("kwsc_pager_pin_misses_total")
	pagerEvictions   = obs.Default().Counter("kwsc_pager_evictions_total")
	pagerCRCErrors   = obs.Default().Counter("kwsc_pager_crc_failures_total")
	pagerPinNs       = obs.Default().Histogram("kwsc_pager_pin_ns")
	pagerResident    = obs.Default().Gauge("kwsc_pager_resident_pages")
	pagerOpenFiles   = obs.Default().Gauge("kwsc_pager_open_files")
	pagerMappedBytes = obs.Default().Gauge("kwsc_pager_mapped_bytes")

	pagerRetireDeferred = obs.Default().Counter("kwsc_pager_retire_deferred_total")
	pagerRetiredDeleted = obs.Default().Counter("kwsc_pager_retired_deleted_total")
)
