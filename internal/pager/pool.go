package pager

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the page checksum function (crc32c, the same polynomial the
// WAL frames and the v1 snapshot codec use).
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// Pool serves pinned pages of one File and verifies each page against its
// recorded crc32c the first time it is pinned.
//
// Over a mapped file a pin is a bounds-checked subslice of the mapping —
// zero-copy, no eviction (the kernel's page cache owns residency) — and the
// pool contributes only the one-time checksum pass and the hit/miss
// accounting. Over a pread file the pool owns residency: at most capPages
// page buffers stay allocated, a miss past the cap evicts the first
// unpinned frame the clock hand finds (second-chance on the reference bit),
// and pinned frames are never evicted. The pool is safe for concurrent use.
type Pool struct {
	f    *File
	crcs []uint32 // expected crc32c per page; 0 = unverified page; nil = no table

	mu       sync.Mutex
	verified []uint64 // bitmap: page passed its checksum at least once
	frames   map[int64]*frame
	clock    []*frame
	hand     int
	cap      int
}

// frame is one resident page buffer of a pread-backed pool.
type frame struct {
	page int64
	buf  []byte
	n    int
	pins int
	ref  bool
	live bool // occupied clock slot
}

// Frame is a pinned page: Data stays valid — and its content immutable —
// until Unpin. Over a mapped file Data aliases the mapping and Unpin is
// free; over a pread file Unpin releases the buffer for eviction.
type Frame struct {
	p    *Pool
	fr   *frame
	Data []byte
}

// NewPool creates a pool over f holding at most capPages resident pages
// (pread mode; <= 0 selects 64). crcs is the per-page expected crc32c table
// (entry 0 skips verification for that page; nil skips all — for callers
// that verified the file wholesale).
func NewPool(f *File, capPages int, crcs []uint32) *Pool {
	if capPages <= 0 {
		capPages = 64
	}
	return &Pool{
		f:        f,
		crcs:     crcs,
		verified: make([]uint64, (f.NumPages()+63)/64),
		frames:   make(map[int64]*frame),
		cap:      capPages,
	}
}

// File returns the underlying file.
func (p *Pool) File() *File { return p.f }

// Close releases every frame buffer and returns their resident-page
// accounting; the pool must not be pinned again afterwards. Closing is how
// a short-lived pool (a checkpoint decode, a closed base) keeps the global
// resident gauge an actual memory measure instead of a high-water mark.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	pagerResident.Add(-int64(len(p.clock)))
	p.clock = nil
	p.frames = nil
	p.hand = 0
}

// Resident returns the number of page buffers currently held (always 0 for
// a mapped file — residency is the kernel's).
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Cap returns the resident-page cap.
func (p *Pool) Cap() int { return p.cap }

// Pin returns page, faulting it in (pread mode) and verifying its checksum
// on first pin. The caller must Unpin the returned frame.
func (p *Pool) Pin(page int64) (Frame, error) {
	start := time.Now()
	fr, err := p.pin(page)
	pagerPinNs.Observe(int64(time.Since(start)))
	return fr, err
}

func (p *Pool) pin(page int64) (Frame, error) {
	off, n, err := p.f.pageSpan(page)
	if err != nil {
		return Frame{}, err
	}
	if p.f.data != nil {
		data := p.f.data[off : off+n]
		p.mu.Lock()
		first := !p.isVerifiedLocked(page)
		if first {
			if err := p.verifyLocked(page, data); err != nil {
				p.mu.Unlock()
				return Frame{}, err
			}
		}
		p.mu.Unlock()
		if first {
			pagerPinMisses.Inc()
		} else {
			pagerPinHits.Inc()
		}
		return Frame{p: p, Data: data}, nil
	}

	p.mu.Lock()
	if fr, ok := p.frames[page]; ok {
		fr.pins++
		fr.ref = true
		p.mu.Unlock()
		pagerPinHits.Inc()
		return Frame{p: p, fr: fr, Data: fr.buf[:fr.n]}, nil
	}
	fr := p.takeFrameLocked()
	fr.page = page
	fr.n = int(n)
	fr.pins = 1
	fr.ref = true
	p.frames[page] = fr
	// Read outside any per-frame lock would race a concurrent pin of the
	// same page; keep the pool lock across the pread — page reads are rare
	// (that is what the pool exists to make true) and the simplicity keeps
	// the eviction invariants airtight.
	if _, err := p.f.ReadAt(fr.buf[:n], off); err != nil {
		p.dropFrameLocked(fr)
		p.mu.Unlock()
		return Frame{}, err
	}
	if !p.isVerifiedLocked(page) {
		if err := p.verifyLocked(page, fr.buf[:n]); err != nil {
			p.dropFrameLocked(fr)
			p.mu.Unlock()
			return Frame{}, err
		}
	}
	p.mu.Unlock()
	pagerPinMisses.Inc()
	return Frame{p: p, fr: fr, Data: fr.buf[:n]}, nil
}

// takeFrameLocked returns a fresh or evicted frame with a PageSize buffer,
// registered in the clock. Under cap it allocates; at cap it runs the clock
// hand (skip pinned, second-chance on the reference bit). When every frame
// is pinned the pool overshoots its cap rather than failing the query.
func (p *Pool) takeFrameLocked() *frame {
	if len(p.clock) >= p.cap {
		scanned := 0
		for scanned < 2*len(p.clock) {
			p.hand = (p.hand + 1) % len(p.clock)
			fr := p.clock[p.hand]
			scanned++
			if !fr.live || fr.pins > 0 {
				continue
			}
			if fr.ref {
				fr.ref = false
				continue
			}
			delete(p.frames, fr.page)
			pagerEvictions.Inc()
			return fr
		}
	}
	fr := &frame{buf: make([]byte, PageSize), live: true}
	p.clock = append(p.clock, fr)
	pagerResident.Add(1)
	return fr
}

// dropFrameLocked removes a frame whose fill failed, leaving its slot
// reusable.
func (p *Pool) dropFrameLocked(fr *frame) {
	delete(p.frames, fr.page)
	fr.pins = 0
	fr.ref = false
}

func (p *Pool) isVerifiedLocked(page int64) bool {
	return p.verified[page>>6]&(1<<(uint64(page)&63)) != 0
}

func (p *Pool) verifyLocked(page int64, data []byte) error {
	if p.crcs != nil && page < int64(len(p.crcs)) && p.crcs[page] != 0 {
		if got := Checksum(data); got != p.crcs[page] {
			pagerCRCErrors.Inc()
			return fmt.Errorf("%w: page %d of %s has crc %08x, recorded %08x",
				ErrChecksum, page, p.f.path, got, p.crcs[page])
		}
	}
	p.verified[page>>6] |= 1 << (uint64(page) & 63)
	return nil
}

// Unpin releases the pin. Safe on a zero Frame.
func (f Frame) Unpin() {
	if f.fr == nil {
		return
	}
	f.p.mu.Lock()
	f.fr.pins--
	f.p.mu.Unlock()
}
