package spart

import (
	"sort"

	"kwsc/internal/geom"
)

// Box is a general-dimension axis-median splitter with box cells that works
// on raw (possibly tied) coordinates: the split plane is placed strictly
// between two distinct coordinate values nearest the weighted median, so no
// object ever lies on a boundary and pivot sets are empty. It is the
// substrate used for SP-KW/LC-KW queries in dimension d >= 3 (e.g. the
// lifted halfspaces of Corollary 6) and for the L2NN-KW integer grids of
// Corollary 7, where exact coordinate ties are common and the
// between-values placement replaces the symbolic perturbation of
// Appendix D.4 (see DESIGN.md, substitution 2).
type Box struct {
	// Dim is the dimensionality of the points.
	Dim int
}

// Fanout implements Splitter.
func (b *Box) Fanout() int { return 2 }

// RootCell implements Splitter.
func (b *Box) RootCell(pts []geom.Point, objs []int32) Cell {
	return geom.UniverseRect(b.Dim)
}

// Split implements Splitter. It tries axes starting at depth mod d and picks
// the first axis admitting a split with both sides non-empty, preferring the
// most weight-balanced boundary near the median.
func (b *Box) Split(cell Cell, objs []int32, pts []geom.Point, weight []int32, depth int) ([]Cell, []int8, bool) {
	rect := cell.(*geom.Rect)
	total := totalWeight(objs, weight)
	order := append([]int32(nil), objs...)
	for off := 0; off < b.Dim; off++ {
		axis := (depth + off) % b.Dim
		sort.Slice(order, func(x, y int) bool { return pts[order[x]][axis] < pts[order[y]][axis] })
		if pts[order[0]][axis] == pts[order[len(order)-1]][axis] {
			continue // constant on this axis
		}
		// Find the boundary between distinct values that best balances
		// weight: scan prefix weights and consider each value change.
		var acc int64
		bestSplit, bestCost := 0.0, int64(1)<<62
		for i := 0; i+1 < len(order); i++ {
			acc += weightOf(weight, order[i])
			cur, nxt := pts[order[i]][axis], pts[order[i+1]][axis]
			if cur == nxt {
				continue
			}
			lw, rw := acc, total-acc
			cost := lw
			if rw > cost {
				cost = rw
			}
			if cost < bestCost {
				bestCost = cost
				bestSplit = cur + (nxt-cur)/2
				if bestSplit <= cur { // adjacent floats
					bestSplit = nxt
				}
			}
		}
		if bestCost >= total {
			continue
		}
		left := rect.Clone()
		left.Hi[axis] = bestSplit
		right := rect.Clone()
		right.Lo[axis] = bestSplit
		assign := make([]int8, len(objs))
		for i, id := range objs {
			if pts[id][axis] < bestSplit {
				assign[i] = 0
			} else {
				assign[i] = 1
			}
		}
		return []Cell{left, right}, assign, true
	}
	return nil, nil, false // all points identical
}

// Relate implements Splitter.
func (b *Box) Relate(c Cell, q geom.Region) geom.Relation {
	r := c.(*geom.Rect)
	return q.RelateRect(r.Lo, r.Hi)
}
