package spart

import (
	"sort"

	"kwsc/internal/geom"
)

// Quad2D is a point-quadtree-style splitter: each node splits its cell into
// four quadrants around the weighted two-dimensional median point (median x,
// then median y of each half would skew; the quadtree uses one center for
// all four, so the children share a corner). A line crosses at most 3 of 4
// quadrants sharing a corner, giving the same O(n^{log4 3}) worst-case
// crossing recurrence as the Willard tree with a much simpler construction —
// but unlike Willard, the count balance per quadrant is not guaranteed
// (a quadrant can hold up to half the weight), so depth bounds are
// distribution-dependent. Included as a substrate ablation.
type Quad2D struct{}

// Fanout implements Splitter.
func (q *Quad2D) Fanout() int { return 4 }

// RootCell implements Splitter.
func (q *Quad2D) RootCell(pts []geom.Point, objs []int32) Cell {
	return geom.UniverseRect(2)
}

// Split implements Splitter: the center is (weighted median x, weighted
// median y), computed independently per axis. Objects on either median line
// become pivots.
func (q *Quad2D) Split(cell Cell, objs []int32, pts []geom.Point, weight []int32, depth int) ([]Cell, []int8, bool) {
	rect := cell.(*geom.Rect)
	total := totalWeight(objs, weight)
	center := make([]float64, 2)
	for axis := 0; axis < 2; axis++ {
		order := append([]int32(nil), objs...)
		sort.Slice(order, func(a, b int) bool {
			pa, pb := pts[order[a]][axis], pts[order[b]][axis]
			if pa != pb {
				return pa < pb
			}
			return order[a] < order[b]
		})
		m, ok := weightedMedianCoord(order, pts, weight, axis, total)
		if !ok {
			return nil, nil, false // constant on this axis
		}
		center[axis] = m
	}
	assign := make([]int8, len(objs))
	counts := [4]int{}
	pivots := 0
	for i, id := range objs {
		p := pts[id]
		var xs, ys int8
		switch {
		case p[0] < center[0]:
			xs = 0
		case p[0] > center[0]:
			xs = 1
		default:
			assign[i] = PivotChild
			pivots++
			continue
		}
		switch {
		case p[1] < center[1]:
			ys = 0
		case p[1] > center[1]:
			ys = 1
		default:
			assign[i] = PivotChild
			pivots++
			continue
		}
		assign[i] = 2*xs + ys
		counts[2*xs+ys]++
	}
	// Guard against degenerate splits where one quadrant swallows
	// everything and no pivot provides progress.
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 && pivots == 0 {
		return nil, nil, false
	}
	mk := func(lox, loy, hix, hiy float64) Cell {
		return &geom.Rect{Lo: []float64{lox, loy}, Hi: []float64{hix, hiy}}
	}
	cells := []Cell{
		mk(rect.Lo[0], rect.Lo[1], center[0], center[1]),
		mk(rect.Lo[0], center[1], center[0], rect.Hi[1]),
		mk(center[0], rect.Lo[1], rect.Hi[0], center[1]),
		mk(center[0], center[1], rect.Hi[0], rect.Hi[1]),
	}
	return cells, assign, true
}

// Relate implements Splitter.
func (q *Quad2D) Relate(c Cell, r geom.Region) geom.Relation {
	rect := c.(*geom.Rect)
	return r.RelateRect(rect.Lo, rect.Hi)
}
