package spart

import (
	"sort"

	"kwsc/internal/geom"
)

// KD is the kd-tree splitter of Section 3.1, generalized to d dimensions:
// the cell of a node at depth t is split by an axis-parallel hyperplane on
// dimension t mod d through the weighted-median object. Objects exactly on
// the split hyperplane become pivots — with rank-space coordinates
// (Section 3.4) that is exactly one object per split, giving the
// constant-size pivot sets the analysis needs (footnote 8).
//
// For d = 2 the crossing sensitivity of any axis-parallel line is
// O(sqrt(N)) (Section 3.3), which is what Theorem 1 rests on.
type KD struct {
	// Dim is the dimensionality of the points.
	Dim int
}

// Fanout implements Splitter.
func (k *KD) Fanout() int { return 2 }

// RootCell implements Splitter: the root cell is all of R^d.
func (k *KD) RootCell(pts []geom.Point, objs []int32) Cell {
	return geom.UniverseRect(k.Dim)
}

// Split implements Splitter.
func (k *KD) Split(cell Cell, objs []int32, pts []geom.Point, weight []int32, depth int) ([]Cell, []int8, bool) {
	rect := cell.(*geom.Rect)
	axis := depth % k.Dim
	order := append([]int32(nil), objs...)
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]][axis], pts[order[b]][axis]
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	total := totalWeight(objs, weight)
	// Weighted median: the first object at which the prefix weight reaches
	// half the total.
	var acc int64
	m := -1
	for i, id := range order {
		acc += weightOf(weight, id)
		if acc*2 >= total {
			m = i
			break
		}
	}
	if m < 0 {
		m = len(order) - 1
	}
	split := pts[order[m]][axis]
	if split == pts[order[0]][axis] && split == pts[order[len(order)-1]][axis] {
		// All coordinates equal on this axis; with rank-space input this
		// cannot happen for len(objs) > 1, but guard for raw coordinates:
		// try the remaining axes before giving up.
		found := false
		for off := 1; off < k.Dim; off++ {
			a2 := (axis + off) % k.Dim
			lo, hi := pts[order[0]][a2], pts[order[0]][a2]
			for _, id := range order[1:] {
				if c := pts[id][a2]; c < lo {
					lo = c
				} else if c > hi {
					hi = c
				}
			}
			if lo != hi {
				axis = a2
				found = true
				break
			}
		}
		if !found {
			return nil, nil, false
		}
		sort.Slice(order, func(a, b int) bool {
			pa, pb := pts[order[a]][axis], pts[order[b]][axis]
			if pa != pb {
				return pa < pb
			}
			return order[a] < order[b]
		})
		acc = 0
		for i, id := range order {
			acc += weightOf(weight, id)
			if acc*2 >= total {
				m = i
				break
			}
		}
		split = pts[order[m]][axis]
	}
	left := rect.Clone()
	left.Hi[axis] = split
	right := rect.Clone()
	right.Lo[axis] = split
	assign := make([]int8, len(objs))
	for i, id := range objs {
		switch c := pts[id][axis]; {
		case c < split:
			assign[i] = 0
		case c > split:
			assign[i] = 1
		default:
			assign[i] = PivotChild
		}
	}
	return []Cell{left, right}, assign, true
}

// Relate implements Splitter.
func (k *KD) Relate(c Cell, q geom.Region) geom.Relation {
	r := c.(*geom.Rect)
	return q.RelateRect(r.Lo, r.Hi)
}
