package spart

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"kwsc/internal/geom"
)

func randomPoints(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// rankify converts points to rank space per dimension (distinct integer
// coordinates), which is the input contract of the KD splitter.
func rankify(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return pts
	}
	d := len(pts[0])
	out := make([]geom.Point, len(pts))
	for i := range out {
		out[i] = make(geom.Point, d)
	}
	idx := make([]int, len(pts))
	for j := 0; j < d; j++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if pts[idx[a]][j] != pts[idx[b]][j] {
				return pts[idx[a]][j] < pts[idx[b]][j]
			}
			return idx[a] < idx[b]
		})
		for r, i := range idx {
			out[i][j] = float64(r)
		}
	}
	return out
}

func bruteQuery(pts []geom.Point, q geom.Region) []int32 {
	var out []int32
	for i, p := range pts {
		if q.ContainsPoint(p) {
			out = append(out, int32(i))
		}
	}
	return out
}

func checkSame(t *testing.T, got, want []int32, label string) {
	t.Helper()
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d ids, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: id %d mismatch: got %d want %d", label, i, got[i], want[i])
		}
	}
}

func collect(tree *Tree, q geom.Region) ([]int32, QueryStats) {
	var out []int32
	st := tree.Query(q, func(id int32) { out = append(out, id) })
	return out, st
}

func TestKDTreeRectQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := rankify(randomPoints(rng, 600, 2))
	tree := BuildTree(pts, nil, &KD{Dim: 2}, 4)
	for trial := 0; trial < 60; trial++ {
		lo := []float64{float64(rng.Intn(500)), float64(rng.Intn(500))}
		hi := []float64{lo[0] + float64(rng.Intn(200)), lo[1] + float64(rng.Intn(200))}
		q := geom.NewRect(lo, hi)
		got, _ := collect(tree, q)
		checkSame(t, got, bruteQuery(pts, q), "kd-rect")
	}
}

func TestKDTreePivotConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := rankify(randomPoints(rng, 2000, 2))
	tree := BuildTree(pts, nil, &KD{Dim: 2}, 4)
	// In rank space the kd splitter puts exactly one object on each split
	// line (footnote 8's constant-size pivot sets).
	if m := tree.MaxPivots(); m > 1 {
		t.Fatalf("kd pivot set of size %d; rank space should cap it at 1", m)
	}
}

func TestKDTreeHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := rankify(randomPoints(rng, 4096, 2))
	tree := BuildTree(pts, nil, &KD{Dim: 2}, 1)
	if h := tree.Height(); h > 2*13 {
		t.Fatalf("kd height %d too large for 4096 points", h)
	}
}

func TestKDCrossingSqrtN(t *testing.T) {
	// Theorem 1's substrate property: an axis-parallel line crosses
	// O(sqrt(N)) cells of a 2D kd-tree (Section 3.3).
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1024, 4096} {
		pts := rankify(randomPoints(rng, n, 2))
		tree := BuildTree(pts, nil, &KD{Dim: 2}, 1)
		x := float64(n / 2)
		line := geom.NewRect([]float64{x, math.Inf(-1)}, []float64{x, math.Inf(1)})
		profile := tree.CrossingProfile(line)
		total := 0
		for _, c := range profile {
			total += c
		}
		bound := 8 * int(math.Sqrt(float64(n)))
		if total > bound {
			t.Fatalf("n=%d: vertical line crosses %d cells, want <= %d", n, total, bound)
		}
	}
}

func TestWillardTreeHalfplaneQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 600, 2)
	tree := BuildTree(pts, nil, &Willard2D{}, 4)
	for trial := 0; trial < 60; trial++ {
		ph := geom.NewPolyhedron(geom.Halfspace{
			Coef:  []float64{rng.NormFloat64(), rng.NormFloat64()},
			Bound: rng.NormFloat64() * 0.5,
		})
		got, _ := collect(tree, ph)
		checkSame(t, got, bruteQuery(pts, ph), "willard-halfplane")
	}
}

func TestWillardTreeTriangleQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 500, 2)
	tree := BuildTree(pts, nil, &Willard2D{}, 4)
	for trial := 0; trial < 40; trial++ {
		v := []geom.Point{
			{rng.Float64() * 1.4, rng.Float64() * 1.4},
			{rng.Float64() * 1.4, rng.Float64() * 1.4},
			{rng.Float64() * 1.4, rng.Float64() * 1.4},
		}
		area := (v[1][0]-v[0][0])*(v[2][1]-v[0][1]) - (v[1][1]-v[0][1])*(v[2][0]-v[0][0])
		if math.Abs(area) < 0.05 {
			continue
		}
		ph, err := geom.NewSimplex(v...).Polyhedron()
		if err != nil {
			continue
		}
		got, _ := collect(tree, ph)
		checkSame(t, got, bruteQuery(pts, ph), "willard-triangle")
	}
}

func TestWillardBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 4096, 2)
	tree := BuildTree(pts, nil, &Willard2D{}, 8)
	// Height of a 4-way weight-balanced tree on 4096 points: log base
	// (1/0.45) of 4096 is ~10.4; allow generous slack.
	if h := tree.Height(); h > 16 {
		t.Fatalf("willard height %d too large", h)
	}
	if m := tree.MaxPivots(); m > 16 {
		t.Fatalf("willard pivot set of size %d exceeds the configured cap", m)
	}
}

func TestWillardDegenerateInputs(t *testing.T) {
	// All points identical: must become a single leaf, not recurse forever.
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{0.5, 0.5}
	}
	tree := BuildTree(pts, nil, &Willard2D{}, 4)
	q := geom.NewPolyhedron(geom.Halfspace{Coef: []float64{1, 0}, Bound: 1})
	got, _ := collect(tree, q)
	if len(got) != 50 {
		t.Fatalf("identical-point query returned %d of 50", len(got))
	}
	// All points collinear (same x): ham-sandwich degenerates; fallback
	// must still terminate and answer correctly.
	for i := range pts {
		pts[i] = geom.Point{0.25, float64(i)}
	}
	tree = BuildTree(pts, nil, &Willard2D{}, 4)
	half := geom.NewPolyhedron(geom.Halfspace{Coef: []float64{0, 1}, Bound: 24.5})
	got, _ = collect(tree, half)
	checkSame(t, got, bruteQuery(pts, half), "willard-collinear")
}

func TestBoxTreeQueries3D(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(rng, 500, 3)
	tree := BuildTree(pts, nil, &Box{Dim: 3}, 4)
	for trial := 0; trial < 40; trial++ {
		ph := geom.NewPolyhedron(geom.Halfspace{
			Coef:  []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			Bound: rng.NormFloat64() * 0.5,
		})
		got, _ := collect(tree, ph)
		checkSame(t, got, bruteQuery(pts, ph), "box-halfspace")
	}
}

func TestBoxTreeIntegerTies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{float64(rng.Intn(10)), float64(rng.Intn(10)), float64(rng.Intn(10))}
	}
	tree := BuildTree(pts, nil, &Box{Dim: 3}, 4)
	if m := tree.MaxPivots(); m != 0 {
		t.Fatalf("box splitter must produce no pivots, got %d", m)
	}
	for trial := 0; trial < 30; trial++ {
		q := &geom.Rect{
			Lo: []float64{float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(8))},
			Hi: []float64{float64(2 + rng.Intn(8)), float64(2 + rng.Intn(8)), float64(2 + rng.Intn(8))},
		}
		if q.Lo[0] > q.Hi[0] || q.Lo[1] > q.Hi[1] || q.Lo[2] > q.Hi[2] {
			continue
		}
		got, _ := collect(tree, q)
		checkSame(t, got, bruteQuery(pts, q), "box-ties")
	}
}

func TestBoxTreeAllIdentical(t *testing.T) {
	pts := make([]geom.Point, 30)
	for i := range pts {
		pts[i] = geom.Point{1, 2, 3}
	}
	tree := BuildTree(pts, nil, &Box{Dim: 3}, 4)
	got, _ := collect(tree, geom.UniverseRect(3))
	if len(got) != 30 {
		t.Fatalf("identical points: got %d of 30", len(got))
	}
}

func TestGridTreeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := randomPoints(rng, 600, 2)
	tree := BuildTree(pts, nil, &Grid2D{G: 4}, 8)
	for trial := 0; trial < 40; trial++ {
		ph := geom.NewPolyhedron(geom.Halfspace{
			Coef:  []float64{rng.NormFloat64(), rng.NormFloat64()},
			Bound: rng.NormFloat64() * 0.5,
		})
		got, _ := collect(tree, ph)
		checkSame(t, got, bruteQuery(pts, ph), "grid-halfplane")
	}
}

func TestGridGrainClamping(t *testing.T) {
	if (&Grid2D{}).Fanout() != 16 {
		t.Fatal("default grain should be 4 (fanout 16)")
	}
	if (&Grid2D{G: 100}).Fanout() != 121 {
		t.Fatal("grain must clamp to 11")
	}
	if (&Grid2D{G: 3}).Fanout() != 9 {
		t.Fatal("explicit grain ignored")
	}
}

func TestWeightedSplitBalance(t *testing.T) {
	// One object carries half the total weight; the kd splitter must not
	// put it plus everything else on one side.
	rng := rand.New(rand.NewSource(11))
	pts := rankify(randomPoints(rng, 257, 2))
	w := make([]int32, len(pts))
	for i := range w {
		w[i] = 1
	}
	w[100] = 256
	tree := BuildTree(pts, w, &KD{Dim: 2}, 1)
	if tree.Len() < 10 {
		t.Fatalf("weighted tree degenerate: %d nodes", tree.Len())
	}
	got, _ := collect(tree, geom.UniverseRect(2))
	if len(got) != len(pts) {
		t.Fatalf("weighted tree lost objects: %d of %d", len(got), len(pts))
	}
}

func TestTreeQueryStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := rankify(randomPoints(rng, 300, 2))
	tree := BuildTree(pts, nil, &KD{Dim: 2}, 4)
	_, st := collect(tree, geom.UniverseRect(2))
	if st.Visited == 0 || st.Covered == 0 {
		t.Fatalf("universe query stats empty: %+v", st)
	}
	if st.Covered+st.Crossing != st.Visited {
		t.Fatalf("covered+crossing != visited: %+v", st)
	}
	// A query disjoint from all points walks at most one root-to-leaf spine
	// (the unbounded outer cells), never the whole tree.
	var none []int32
	st = tree.Query(geom.NewRect([]float64{-10, -10}, []float64{-5, -5}), func(id int32) { none = append(none, id) })
	if len(none) != 0 {
		t.Fatalf("disjoint query reported %d points", len(none))
	}
	if st.Visited > tree.Height()+2 {
		t.Fatalf("disjoint query visited %d nodes (height %d)", st.Visited, tree.Height())
	}
}

func TestEmptyTree(t *testing.T) {
	tree := BuildTree(nil, nil, &KD{Dim: 2}, 4)
	got, st := collect(tree, geom.UniverseRect(2))
	if len(got) != 0 || st.Visited != 0 {
		t.Fatal("empty tree must answer empty")
	}
	if tree.Height() != -1 {
		t.Fatal("empty tree height must be -1")
	}
}

// Cells must cover the points assigned to their subtrees: verified by
// querying each leaf's own cell region and checking every subtree point is
// reported. Exercised indirectly: a query equal to any cell returns at
// least the points inside it.
func TestCellCoverageInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, split := range []Splitter{&KD{Dim: 2}, &Willard2D{}, &Grid2D{G: 3}, &Quad2D{}} {
		var pts []geom.Point
		if _, isKD := split.(*KD); isKD {
			pts = rankify(randomPoints(rng, 300, 2))
		} else {
			pts = randomPoints(rng, 300, 2)
		}
		tree := BuildTree(pts, nil, split, 4)
		for i := range tree.nodes {
			n := &tree.nodes[i]
			sub := subtreeIDs(tree, int32(i))
			for _, id := range sub {
				if !cellContains(split, n.cell, pts[id]) {
					t.Fatalf("%T: node %d cell misses point %d", split, i, id)
				}
			}
		}
	}
}

func subtreeIDs(t *Tree, n int32) []int32 {
	out := append([]int32(nil), t.nodes[n].pivots...)
	for _, c := range t.nodes[n].children {
		out = append(out, subtreeIDs(t, c)...)
	}
	return out
}

func cellContains(s Splitter, c Cell, p geom.Point) bool {
	switch cell := c.(type) {
	case *geom.Rect:
		return cell.ContainsPoint(p)
	case *geom.Polygon:
		return cell.ContainsPoint(p)
	default:
		return false
	}
}

func TestQuadTreeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randomPoints(rng, 600, 2)
	tree := BuildTree(pts, nil, &Quad2D{}, 4)
	for trial := 0; trial < 40; trial++ {
		ph := geom.NewPolyhedron(geom.Halfspace{
			Coef:  []float64{rng.NormFloat64(), rng.NormFloat64()},
			Bound: rng.NormFloat64() * 0.5,
		})
		got, _ := collect(tree, ph)
		checkSame(t, got, bruteQuery(pts, ph), "quad-halfplane")
	}
	for trial := 0; trial < 40; trial++ {
		q := geom.NewRect(
			[]float64{rng.Float64() * 0.5, rng.Float64() * 0.5},
			[]float64{0.5 + rng.Float64()*0.5, 0.5 + rng.Float64()*0.5},
		)
		got, _ := collect(tree, q)
		checkSame(t, got, bruteQuery(pts, q), "quad-rect")
	}
}

func TestQuadTreeDegenerate(t *testing.T) {
	// Identical points: leaf, no infinite recursion.
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Point{0.3, 0.7}
	}
	tree := BuildTree(pts, nil, &Quad2D{}, 4)
	got, _ := collect(tree, geom.UniverseRect(2))
	if len(got) != 40 {
		t.Fatalf("identical points: got %d of 40", len(got))
	}
	// Collinear points along x: y axis constant.
	for i := range pts {
		pts[i] = geom.Point{float64(i), 0.5}
	}
	tree = BuildTree(pts, nil, &Quad2D{}, 4)
	q := geom.NewRect([]float64{10, 0}, []float64{20, 1})
	got, _ = collect(tree, q)
	checkSame(t, got, bruteQuery(pts, q), "quad-collinear")
}

func TestQuadTreeProgress(t *testing.T) {
	// Diagonal points stress the shared-corner split.
	pts := make([]geom.Point, 512)
	for i := range pts {
		pts[i] = geom.Point{float64(i), float64(i)}
	}
	tree := BuildTree(pts, nil, &Quad2D{}, 1)
	if h := tree.Height(); h > 64 {
		t.Fatalf("diagonal quadtree height %d; split not making progress", h)
	}
	got, _ := collect(tree, geom.NewRect([]float64{100, 100}, []float64{200, 200}))
	if len(got) != 101 {
		t.Fatalf("diagonal range: got %d, want 101", len(got))
	}
}

// The Willard splitter's structural contract: each of the four classes holds
// at most 45% of the node's weight (the balance the crossing analysis needs).
func TestWillardSplitBalanceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := randomPoints(rng, 2000, 2)
	w := make([]int32, len(pts))
	for i := range w {
		w[i] = int32(1 + rng.Intn(9)) // non-uniform weights
	}
	split := &Willard2D{}
	objs := make([]int32, len(pts))
	var total int64
	for i := range objs {
		objs[i] = int32(i)
		total += int64(w[i])
	}
	cells, assign, ok := split.Split(split.RootCell(pts, objs), objs, pts, w, 0)
	if !ok {
		t.Fatal("root split failed")
	}
	if len(cells) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(cells))
	}
	var classW [4]int64
	var pivots int
	for i, a := range assign {
		if a == PivotChild {
			pivots++
			continue
		}
		classW[a] += int64(w[objs[i]])
	}
	for c, cw := range classW {
		if float64(cw) > 0.45*float64(total) {
			t.Fatalf("class %d holds %.1f%% of the weight", c, 100*float64(cw)/float64(total))
		}
	}
	if pivots > 16 {
		t.Fatalf("%d pivots exceed the cap", pivots)
	}
}
