// Package spart provides the space-partitioning indexes that Step 1 of the
// paper's transformation framework starts from (Section 3.1 and Appendix
// D.1): trees whose nodes carry geometric cells such that (i) a node's cell
// covers all points in its subtree, (ii) the root cell is the whole space,
// and (iii) sibling cells are interior-disjoint with the parent cell as
// their union.
//
// The package abstracts the partitioning policy behind the Splitter
// interface so the same keyword-transformation code (internal/core) runs on
// the 2D kd-tree of Theorem 1, the Willard ham-sandwich partition tree used
// in place of Chan's optimal partition tree for Theorem 12 (see DESIGN.md,
// substitution 1), the general-dimension box tree, and the grid splitter
// used for ablation.
package spart

import "kwsc/internal/geom"

// Cell is a node's geometric cell. Its concrete type is owned by the
// Splitter that produced it (*geom.Rect for kd/box/grid, *geom.Polygon for
// the Willard tree).
type Cell any

// PivotChild is the assignment code meaning "this object lies on a splitting
// boundary and becomes a pivot of the node" (the pivot sets of Section 3.2).
const PivotChild int8 = -1

// Splitter is a space-partitioning policy.
type Splitter interface {
	// Fanout returns the maximum number of children a split produces.
	Fanout() int
	// RootCell returns the cell of the root node, covering every point.
	RootCell(pts []geom.Point, objs []int32) Cell
	// Split partitions the objects of a node into child cells. pts and
	// weight are global arrays indexed by object id (weight may be nil,
	// meaning unit weights); objs lists the node's objects. It returns the
	// child cells, an assignment per object (child index, or PivotChild for
	// objects on split boundaries), and ok=false when no useful split
	// exists (the caller should make the node a leaf). Child cells may be
	// returned for empty children; the caller prunes them.
	Split(cell Cell, objs []int32, pts []geom.Point, weight []int32, depth int) (children []Cell, assign []int8, ok bool)
	// Relate classifies query region q against cell c.
	Relate(c Cell, q geom.Region) geom.Relation
}

// weightOf returns the weight of object id under an optional weight array.
func weightOf(weight []int32, id int32) int64 {
	if weight == nil {
		return 1
	}
	return int64(weight[id])
}

// totalWeight sums the weights of objs.
func totalWeight(objs []int32, weight []int32) int64 {
	var s int64
	for _, id := range objs {
		s += weightOf(weight, id)
	}
	return s
}
