package spart

import "kwsc/internal/geom"

// Tree is a plain (keyword-free) space-partitioning tree over a point set.
// It serves three roles:
//
//   - the "structured only" naive baseline of Section 1 (report everything
//     in the query region, then filter by keywords);
//   - the pure-geometry sanity layer for the splitters;
//   - the instrument for the crossing-sensitivity experiments (E6b, F1 in
//     DESIGN.md): Query reports how many visited nodes were crossing vs
//     covered, which is exactly the quantity expression (7) bounds.
type Tree struct {
	split    Splitter
	pts      []geom.Point
	nodes    []treeNode
	leafSize int
}

type treeNode struct {
	cell     Cell
	children []int32
	pivots   []int32 // boundary objects; for leaves, all objects
	size     int32   // objects in subtree (pivots included)
}

// QueryStats instruments one query.
type QueryStats struct {
	Visited  int // nodes visited
	Crossing int // visited nodes whose cell crosses the region boundary
	Covered  int // visited nodes whose cell is fully covered
	PtChecks int // individual point-in-region tests
}

// BuildTree constructs the tree. weight may be nil (unit weights); leafSize
// <= 0 selects the default of 8.
func BuildTree(pts []geom.Point, weight []int32, split Splitter, leafSize int) *Tree {
	if leafSize <= 0 {
		leafSize = 8
	}
	t := &Tree{split: split, pts: pts, leafSize: leafSize}
	objs := make([]int32, len(pts))
	for i := range objs {
		objs[i] = int32(i)
	}
	if len(objs) == 0 {
		return t
	}
	root := split.RootCell(pts, objs)
	t.build(root, objs, weight, 0)
	return t
}

// build appends the subtree for objs and returns its node index.
func (t *Tree) build(cell Cell, objs []int32, weight []int32, depth int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{cell: cell, size: int32(len(objs))})
	if len(objs) <= t.leafSize {
		t.nodes[idx].pivots = append([]int32(nil), objs...)
		return idx
	}
	cells, assign, ok := t.split.Split(cell, objs, t.pts, weight, depth)
	if !ok {
		t.nodes[idx].pivots = append([]int32(nil), objs...)
		return idx
	}
	groups := make([][]int32, len(cells))
	var pivots []int32
	for i, id := range objs {
		if a := assign[i]; a == PivotChild {
			pivots = append(pivots, id)
		} else {
			groups[a] = append(groups[a], id)
		}
	}
	t.nodes[idx].pivots = pivots
	for c, g := range groups {
		if len(g) == 0 {
			continue
		}
		child := t.build(cells[c], g, weight, depth+1)
		t.nodes[idx].children = append(t.nodes[idx].children, child)
	}
	return idx
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// Height returns the tree height (root = 0); -1 for an empty tree.
func (t *Tree) Height() int {
	if len(t.nodes) == 0 {
		return -1
	}
	var rec func(n int32) int
	rec = func(n int32) int {
		h := 0
		for _, c := range t.nodes[n].children {
			if ch := rec(c) + 1; ch > h {
				h = ch
			}
		}
		return h
	}
	return rec(0)
}

// MaxPivots returns the largest pivot set of any internal node.
func (t *Tree) MaxPivots() int {
	m := 0
	for _, n := range t.nodes {
		if len(n.children) > 0 && len(n.pivots) > m {
			m = len(n.pivots)
		}
	}
	return m
}

// Query reports the ids of all points inside region q.
func (t *Tree) Query(q geom.Region, report func(int32)) QueryStats {
	var st QueryStats
	if len(t.nodes) == 0 {
		return st
	}
	t.visit(0, q, report, &st, false)
	return st
}

func (t *Tree) visit(n int32, q geom.Region, report func(int32), st *QueryStats, covered bool) {
	node := &t.nodes[n]
	st.Visited++
	if covered {
		st.Covered++
		for _, id := range node.pivots {
			report(id)
		}
		for _, c := range node.children {
			t.visit(c, q, report, st, true)
		}
		return
	}
	st.Crossing++
	for _, id := range node.pivots {
		st.PtChecks++
		if q.ContainsPoint(t.pts[id]) {
			report(id)
		}
	}
	for _, c := range node.children {
		switch t.split.Relate(t.nodes[c].cell, q) {
		case geom.Disjoint:
		case geom.Covered:
			t.visit(c, q, report, st, true)
		default:
			t.visit(c, q, report, st, false)
		}
	}
}

// CrossingProfile visits the tree for region q without reporting and counts
// crossing nodes per level — the T_cross of Section 3.3, used by the F1 and
// E6b experiments.
func (t *Tree) CrossingProfile(q geom.Region) []int {
	var levels []int
	if len(t.nodes) == 0 {
		return levels
	}
	var rec func(n int32, depth int)
	rec = func(n int32, depth int) {
		for len(levels) <= depth {
			levels = append(levels, 0)
		}
		levels[depth]++
		for _, c := range t.nodes[n].children {
			if t.split.Relate(t.nodes[c].cell, q) == geom.Crossing {
				rec(c, depth+1)
			}
		}
	}
	if t.split.Relate(t.nodes[0].cell, q) == geom.Crossing {
		rec(0, 0)
	}
	return levels
}
