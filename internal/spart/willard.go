package spart

import (
	"math"
	"sort"

	"kwsc/internal/geom"
)

// Willard2D is a partition tree for R^2 in the style of Willard (1982),
// standing in for Chan's optimal partition tree in the SP-KW construction of
// Appendix D (DESIGN.md, substitution 1). Each node splits its weighted
// point set into four classes using two lines:
//
//  1. a vertical line through the weighted-median x-coordinate, and
//  2. a ham-sandwich cut: a line that simultaneously halves (by weight) the
//     points on each side of the vertical line, found by sign-bisection on
//     the cut angle.
//
// Any query line crosses at most one of the two splitting lines once each,
// so it meets at most 3 of the 4 regions, giving the worst-case crossing
// recurrence C(n) <= 3 C(n/4) + O(1) = O(n^{log4 3}) = O(n^0.7925).
// Objects lying exactly on a splitting line become pivots, which is how the
// framework's general-position removal (Appendix D.4) is realized
// constructively. When degeneracies defeat the ham-sandwich search (many
// cohincident coordinates), the splitter falls back to a two-level
// axis-median split, preserving balance and correctness.
type Willard2D struct {
	// MaxPivots bounds the pivot set a split may produce before falling
	// back to the axis-median split; 0 means the default of 16.
	MaxPivots int
}

func (w *Willard2D) maxPivots() int {
	if w.MaxPivots > 0 {
		return w.MaxPivots
	}
	return 16
}

// Fanout implements Splitter.
func (w *Willard2D) Fanout() int { return 4 }

// RootCell implements Splitter: the bounding square of the data, inflated so
// every point is interior.
func (w *Willard2D) RootCell(pts []geom.Point, objs []int32) Cell {
	if len(objs) == 0 {
		return geom.NewSquare(-1, -1, 1, 1)
	}
	lox, loy := pts[objs[0]][0], pts[objs[0]][1]
	hix, hiy := lox, loy
	for _, id := range objs[1:] {
		p := pts[id]
		if p[0] < lox {
			lox = p[0]
		}
		if p[0] > hix {
			hix = p[0]
		}
		if p[1] < loy {
			loy = p[1]
		}
		if p[1] > hiy {
			hiy = p[1]
		}
	}
	pad := 1 + (hix - lox) + (hiy - loy)
	return geom.NewSquare(lox-pad, loy-pad, hix+pad, hiy+pad)
}

// Split implements Splitter.
func (w *Willard2D) Split(cell Cell, objs []int32, pts []geom.Point, weight []int32, depth int) ([]Cell, []int8, bool) {
	poly := cell.(*geom.Polygon)
	total := totalWeight(objs, weight)
	// Step 1: vertical weighted-median line.
	order := append([]int32(nil), objs...)
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]][0], pts[order[b]][0]
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	xm, ok := weightedMedianCoord(order, pts, weight, 0, total)
	if !ok {
		return w.fallback(poly, objs, pts, weight)
	}
	var left, right []int32
	pivotsOnA := 0
	for _, id := range order {
		switch x := pts[id][0]; {
		case x < xm:
			left = append(left, id)
		case x > xm:
			right = append(right, id)
		default:
			pivotsOnA++
		}
	}
	if pivotsOnA > w.maxPivots() || len(left) == 0 || len(right) == 0 {
		return w.fallback(poly, objs, pts, weight)
	}
	// Step 2: ham-sandwich cut by angle bisection. g(theta) is the weight
	// imbalance of the right set w.r.t. the left set's weighted-median line
	// of normal direction (cos theta, sin theta).
	cut := func(theta float64) (nx, ny, c float64, g int64) {
		nx, ny = math.Cos(theta), math.Sin(theta)
		c = weightedMedianProj(left, pts, weight, nx, ny)
		for _, id := range right {
			p := pts[id]
			v := nx*p[0] + ny*p[1]
			switch {
			case v < c:
				g += weightOf(weight, id)
			case v > c:
				g -= weightOf(weight, id)
			}
		}
		return
	}
	const theta0 = 0.0137
	lo, hi := theta0, theta0+math.Pi
	_, _, _, glo := cut(lo)
	_, _, _, ghi := cut(hi)
	var nx, ny, c float64
	found := false
	switch {
	case glo == 0:
		nx, ny, c, _ = cut(lo)
		found = true
	case ghi == 0:
		nx, ny, c, _ = cut(hi)
		found = true
	case (glo > 0) == (ghi > 0):
		// Discrete tie-handling broke antisymmetry; fall back.
	default:
		for iter := 0; iter < 64; iter++ {
			mid := (lo + hi) / 2
			mnx, mny, mc, gm := cut(mid)
			if gm == 0 {
				nx, ny, c, found = mnx, mny, mc, true
				break
			}
			if (gm > 0) == (glo > 0) {
				lo, glo = mid, gm
			} else {
				hi = mid
			}
		}
		if !found {
			// Interval has collapsed onto the jump angle; take the side
			// with the smaller imbalance and let near-line objects become
			// pivots below.
			nx, ny, c, _ = cut(lo)
			found = true
		}
	}
	if !found {
		return w.fallback(poly, objs, pts, weight)
	}
	// Classify every object; near-line objects become pivots.
	scale := 1.0
	for _, id := range objs {
		p := pts[id]
		for _, v := range []float64{p[0], p[1]} {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
	}
	band := 1e-9 * (scale + math.Abs(c))
	assign := make([]int8, len(objs))
	childW := make([]int64, 4)
	pivots := 0
	for i, id := range objs {
		p := pts[id]
		x := p[0]
		v := nx*p[0] + ny*p[1]
		var xs, ys int8
		switch {
		case x < xm:
			xs = 0
		case x > xm:
			xs = 1
		default:
			assign[i] = PivotChild
			pivots++
			continue
		}
		switch {
		case v < c-band:
			ys = 0
		case v > c+band:
			ys = 1
		default:
			assign[i] = PivotChild
			pivots++
			continue
		}
		assign[i] = 2*xs + ys
		childW[2*xs+ys] += weightOf(weight, id)
	}
	if pivots > w.maxPivots() {
		return w.fallback(poly, objs, pts, weight)
	}
	for _, cw := range childW {
		if float64(cw) > 0.45*float64(total) {
			return w.fallback(poly, objs, pts, weight)
		}
	}
	xLeft := geom.Halfspace{Coef: []float64{1, 0}, Bound: xm}
	xRight := geom.Halfspace{Coef: []float64{-1, 0}, Bound: -xm}
	below := geom.Halfspace{Coef: []float64{nx, ny}, Bound: c}
	above := geom.Halfspace{Coef: []float64{-nx, -ny}, Bound: -c}
	cells := []Cell{
		poly.ClipHalfplane(xLeft).ClipHalfplane(below),
		poly.ClipHalfplane(xLeft).ClipHalfplane(above),
		poly.ClipHalfplane(xRight).ClipHalfplane(below),
		poly.ClipHalfplane(xRight).ClipHalfplane(above),
	}
	return cells, assign, true
}

// fallback performs a two-level axis-median split (x then per-side y),
// which is always available and keeps the four cells convex polygons.
func (w *Willard2D) fallback(poly *geom.Polygon, objs []int32, pts []geom.Point, weight []int32) ([]Cell, []int8, bool) {
	total := totalWeight(objs, weight)
	order := append([]int32(nil), objs...)
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]][0], pts[order[b]][0]
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	xm, okx := weightedMedianCoord(order, pts, weight, 0, total)
	var left, right []int32
	for _, id := range order {
		switch x := pts[id][0]; {
		case okx && x < xm:
			left = append(left, id)
		case okx && x > xm:
			right = append(right, id)
		case !okx:
			left = append(left, id)
		}
	}
	ymOf := func(side []int32) (float64, bool) {
		if len(side) == 0 {
			return 0, false
		}
		s := append([]int32(nil), side...)
		sort.Slice(s, func(a, b int) bool {
			pa, pb := pts[s[a]][1], pts[s[b]][1]
			if pa != pb {
				return pa < pb
			}
			return s[a] < s[b]
		})
		return weightedMedianCoord(s, pts, weight, 1, totalWeight(s, weight))
	}
	ylm, okl := ymOf(left)
	yrm, okr := ymOf(right)
	if !okx && !okl {
		return nil, nil, false // all points identical in x and y
	}
	assign := make([]int8, len(objs))
	for i, id := range objs {
		p := pts[id]
		var xs int8
		switch {
		case !okx:
			xs = 0
		case p[0] < xm:
			xs = 0
		case p[0] > xm:
			xs = 1
		default:
			assign[i] = PivotChild
			continue
		}
		ym, oky := ylm, okl
		if xs == 1 {
			ym, oky = yrm, okr
		}
		switch {
		case !oky:
			assign[i] = 2 * xs
		case p[1] < ym:
			assign[i] = 2 * xs
		case p[1] > ym:
			assign[i] = 2*xs + 1
		default:
			assign[i] = PivotChild
		}
	}
	if !okx {
		xm = math.Inf(1)
	}
	if !okl {
		ylm = math.Inf(1)
	}
	if !okr {
		yrm = math.Inf(1)
	}
	xLeft := geom.Halfspace{Coef: []float64{1, 0}, Bound: xm}
	xRight := geom.Halfspace{Coef: []float64{-1, 0}, Bound: -xm}
	cells := []Cell{
		poly.ClipHalfplane(xLeft).ClipHalfplane(geom.Halfspace{Coef: []float64{0, 1}, Bound: ylm}),
		poly.ClipHalfplane(xLeft).ClipHalfplane(geom.Halfspace{Coef: []float64{0, -1}, Bound: -ylm}),
		poly.ClipHalfplane(xRight).ClipHalfplane(geom.Halfspace{Coef: []float64{0, 1}, Bound: yrm}),
		poly.ClipHalfplane(xRight).ClipHalfplane(geom.Halfspace{Coef: []float64{0, -1}, Bound: -yrm}),
	}
	return cells, assign, true
}

// Relate implements Splitter.
func (w *Willard2D) Relate(c Cell, q geom.Region) geom.Relation {
	return q.RelatePolygon(c.(*geom.Polygon))
}

// weightedMedianCoord returns the coordinate (on the given axis) of the
// weighted-median object of the pre-sorted order.
func weightedMedianCoord(order []int32, pts []geom.Point, weight []int32, axis int, total int64) (float64, bool) {
	if len(order) == 0 {
		return 0, false
	}
	if pts[order[0]][axis] == pts[order[len(order)-1]][axis] {
		return 0, false // constant axis: no split possible
	}
	var acc int64
	for _, id := range order {
		acc += weightOf(weight, id)
		if acc*2 >= total {
			return pts[id][axis], true
		}
	}
	return pts[order[len(order)-1]][axis], true
}

// weightedMedianProj returns the weighted median of the projections
// n . p over the given objects.
func weightedMedianProj(objs []int32, pts []geom.Point, weight []int32, nx, ny float64) float64 {
	type pv struct {
		v float64
		w int64
	}
	vals := make([]pv, len(objs))
	var total int64
	for i, id := range objs {
		p := pts[id]
		w := weightOf(weight, id)
		vals[i] = pv{v: nx*p[0] + ny*p[1], w: w}
		total += w
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
	var acc int64
	for _, x := range vals {
		acc += x.w
		if acc*2 >= total {
			return x.v
		}
	}
	return vals[len(vals)-1].v
}
