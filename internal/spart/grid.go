package spart

import (
	"sort"

	"kwsc/internal/geom"
)

// Grid2D is the count-balanced slab-grid splitter used for the ablation
// study of DESIGN.md experiment E6b: a node splits into G weight-balanced
// vertical slabs, each further split into G weight-balanced rows, giving
// fanout G^2. On benign (non-adversarial) inputs an arbitrary line crosses
// O(G) of the G^2 cells, so the empirical crossing exponent approaches 1/2 —
// matching the 1-1/d bound of Chan's tree that the paper assumes — but
// unlike Willard2D the grid offers no worst-case guarantee (an adversarial
// line can cross Theta(G^2) cells).
type Grid2D struct {
	// G is the per-axis grain; fanout is G*G. 0 means the default of 4.
	G int
}

func (g *Grid2D) grain() int {
	switch {
	case g.G >= 2 && g.G <= 11: // 11*11 = 121 fits the int8 child codes
		return g.G
	case g.G > 11:
		return 11
	default:
		return 4
	}
}

// Fanout implements Splitter.
func (g *Grid2D) Fanout() int { n := g.grain(); return n * n }

// RootCell implements Splitter.
func (g *Grid2D) RootCell(pts []geom.Point, objs []int32) Cell {
	return geom.UniverseRect(2)
}

// Split implements Splitter.
func (g *Grid2D) Split(cell Cell, objs []int32, pts []geom.Point, weight []int32, depth int) ([]Cell, []int8, bool) {
	rect := cell.(*geom.Rect)
	grain := g.grain()
	order := append([]int32(nil), objs...)
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]][0], pts[order[b]][0]
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	if pts[order[0]][0] == pts[order[len(order)-1]][0] &&
		samePointsOnAxis(order, pts, 1) {
		return nil, nil, false
	}
	total := totalWeight(objs, weight)
	// Slab boundaries: after every total/grain of weight, the next object's
	// x-coordinate becomes a boundary and the object a pivot (the greedy
	// packing of the paper's footnote 13, applied per axis).
	slabOf := make(map[int32]int, len(objs))
	pivot := make(map[int32]bool)
	xBounds := packGreedy(order, pts, weight, 0, total, grain, slabOf, pivot)
	// Rows within each slab.
	rowOf := make(map[int32]int, len(objs))
	yBounds := make([][]float64, grain)
	for s := 0; s < grain; s++ {
		var members []int32
		for _, id := range order {
			if !pivot[id] && slabOf[id] == s {
				members = append(members, id)
			}
		}
		if len(members) == 0 {
			yBounds[s] = nil
			continue
		}
		sort.Slice(members, func(a, b int) bool {
			pa, pb := pts[members[a]][1], pts[members[b]][1]
			if pa != pb {
				return pa < pb
			}
			return members[a] < members[b]
		})
		yBounds[s] = packGreedy(members, pts, weight, 1, totalWeight(members, weight), grain, rowOf, pivot)
	}
	assign := make([]int8, len(objs))
	for i, id := range objs {
		if pivot[id] {
			assign[i] = PivotChild
			continue
		}
		assign[i] = int8(slabOf[id]*grain + rowOf[id])
	}
	// Build cells: slab s spans x in (bound[s-1], bound[s]) within rect.
	cells := make([]Cell, grain*grain)
	for s := 0; s < grain; s++ {
		xlo, xhi := rect.Lo[0], rect.Hi[0]
		if s > 0 && s-1 < len(xBounds) {
			xlo = xBounds[s-1]
		}
		if s < len(xBounds) {
			xhi = xBounds[s]
		}
		for r := 0; r < grain; r++ {
			ylo, yhi := rect.Lo[1], rect.Hi[1]
			yb := yBounds[s]
			if r > 0 && r-1 < len(yb) {
				ylo = yb[r-1]
			}
			if r < len(yb) {
				yhi = yb[r]
			}
			if xlo > xhi {
				xlo, xhi = xhi, xlo
			}
			if ylo > yhi {
				ylo, yhi = yhi, ylo
			}
			cells[s*grain+r] = &geom.Rect{Lo: []float64{xlo, ylo}, Hi: []float64{xhi, yhi}}
		}
	}
	return cells, assign, true
}

// packGreedy scans the pre-sorted objects and packs them greedily into
// `grain` groups of weight at most total/grain each; the object following a
// full group becomes a pivot and its coordinate a boundary (footnote 13).
// It records group membership in groupOf and pivots in pivot, returning the
// boundary coordinates.
func packGreedy(order []int32, pts []geom.Point, weight []int32, axis int, total int64, grain int, groupOf map[int32]int, pivot map[int32]bool) []float64 {
	budget := total / int64(grain)
	if budget < 1 {
		budget = 1
	}
	var bounds []float64
	group, acc := 0, int64(0)
	for _, id := range order {
		w := weightOf(weight, id)
		if acc+w > budget && group < grain-1 {
			pivot[id] = true
			bounds = append(bounds, pts[id][axis])
			group++
			acc = 0
			continue
		}
		groupOf[id] = group
		acc += w
	}
	return bounds
}

func samePointsOnAxis(order []int32, pts []geom.Point, axis int) bool {
	for _, id := range order[1:] {
		if pts[id][axis] != pts[order[0]][axis] {
			return false
		}
	}
	return true
}

// Relate implements Splitter.
func (g *Grid2D) Relate(c Cell, q geom.Region) geom.Relation {
	r := c.(*geom.Rect)
	return q.RelateRect(r.Lo, r.Hi)
}
