package bits

// Raw exposes the arena's backing words for serialization, in arena order.
// The returned slice aliases the arena — callers must treat it as read-only.
func (a *Arena) Raw() []uint64 { return a.words }

// ArenaFromWords reassembles an arena around an existing word slice (the
// inverse of Raw) — e.g. a column of a paged flat-index image. The slice is
// aliased, not copied, so bit offsets that indexed the original arena remain
// valid against the result.
func ArenaFromWords(words []uint64) Arena { return Arena{words: words} }
