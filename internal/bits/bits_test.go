package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasic(t *testing.T) {
	d := NewDense(130)
	if d.Len() != 130 {
		t.Fatalf("Len = %d", d.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		if d.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		d.Set(i)
		if !d.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if c := d.Count(); c != 6 {
		t.Fatalf("Count = %d, want 6", c)
	}
	if d.SpaceBits() != 192 { // 3 words
		t.Fatalf("SpaceBits = %d, want 192", d.SpaceBits())
	}
}

func TestDenseSetIdempotent(t *testing.T) {
	d := NewDense(10)
	d.Set(5)
	d.Set(5)
	if d.Count() != 1 {
		t.Fatal("double Set must not double count")
	}
}

func TestDenseZeroLength(t *testing.T) {
	d := NewDense(0)
	if d.Count() != 0 || d.Len() != 0 {
		t.Fatal("zero-length bitset misbehaves")
	}
}

func TestU32SetBasic(t *testing.T) {
	s := NewU32Set([]uint32{5, 7, 7, 9})
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicates collapse)", s.Size())
	}
	for _, k := range []uint32{5, 7, 9} {
		if !s.Contains(k) {
			t.Fatalf("missing key %d", k)
		}
	}
	for _, k := range []uint32{0, 1, 6, 8, 1 << 30} {
		if s.Contains(k) {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestU32SetZeroKey(t *testing.T) {
	s := NewU32Set([]uint32{0, 3})
	if !s.Contains(0) {
		t.Fatal("zero key lost")
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d, want 2", s.Size())
	}
	s2 := NewU32Set([]uint32{3})
	if s2.Contains(0) {
		t.Fatal("phantom zero key")
	}
}

func TestU32SetEmpty(t *testing.T) {
	s := NewU32Set(nil)
	if s.Size() != 0 || s.Contains(0) || s.Contains(42) {
		t.Fatal("empty set misbehaves")
	}
}

func TestU32SetCollisionHeavy(t *testing.T) {
	// Sequential keys stress the probe chain.
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = uint32(i * 2)
	}
	s := NewU32Set(keys)
	for i := 0; i < 2000; i++ {
		want := i%2 == 0
		if got := s.Contains(uint32(i)); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestU32SetSpaceWords(t *testing.T) {
	s := NewU32Set([]uint32{1, 2, 3})
	if s.SpaceWords() <= 0 {
		t.Fatal("SpaceWords must be positive")
	}
}

// Property: a U32Set agrees with a reference map for arbitrary key sets.
func TestU32SetAgainstMapProperty(t *testing.T) {
	f := func(keys []uint32, probes []uint32) bool {
		ref := make(map[uint32]bool, len(keys))
		for _, k := range keys {
			ref[k] = true
		}
		s := NewU32Set(keys)
		if s.Size() != len(ref) {
			return false
		}
		for _, p := range probes {
			if s.Contains(p) != ref[p] {
				return false
			}
		}
		for _, k := range keys {
			if !s.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dense agrees with a reference map under random set/get.
func TestDenseAgainstMapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		d := NewDense(n)
		ref := make(map[int]bool)
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				d.Set(i)
				ref[i] = true
			} else if d.Get(i) != ref[i] {
				t.Fatalf("trial %d: Get(%d) mismatch", trial, i)
			}
		}
		if d.Count() != len(ref) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, d.Count(), len(ref))
		}
	}
}

func TestArenaConcatenatesDenseSets(t *testing.T) {
	var a Arena
	sizes := []int{1, 63, 64, 65, 300}
	offs := make([]int64, len(sizes))
	for si, n := range sizes {
		d := NewDense(n)
		for i := 0; i < n; i += si + 1 {
			d.Set(i)
		}
		offs[si] = a.AppendDense(d)
	}
	for si, n := range sizes {
		for i := 0; i < n; i++ {
			want := i%(si+1) == 0
			if got := a.Get(offs[si], int64(i)); got != want {
				t.Fatalf("set %d bit %d: got %v, want %v", si, i, got, want)
			}
		}
	}
	if a.Words() <= 0 || a.SpaceBits() != a.Words()*64 {
		t.Fatalf("arena accounting inconsistent: %d words, %d bits", a.Words(), a.SpaceBits())
	}
}

func TestArenaGrowAndSet(t *testing.T) {
	var a Arena
	off1 := a.Grow(2)
	off2 := a.Grow(1)
	a.Set(off1, 5)
	a.Set(off1, 127)
	a.Set(off2, 0)
	if !a.Get(off1, 5) || !a.Get(off1, 127) || !a.Get(off2, 0) {
		t.Fatal("set bits not readable")
	}
	if a.Get(off1, 6) || a.Get(off2, 1) {
		t.Fatal("unset bits read as set")
	}
}
