// Package bits provides the low-level word-RAM building blocks of the
// secondary structures T_u in the index-transformation framework
// (Section 3.2): dense bitsets backing the k-dimensional non-emptiness bit
// arrays, and an open-addressing uint32 set that plays the role of the
// "perfect hash table on e.Doc" (footnote 9) giving O(1) keyword membership
// tests per document.
package bits

import "math/bits"

// Dense is a fixed-capacity dense bitset.
type Dense struct {
	words []uint64
	n     int
}

// NewDense returns a bitset holding n bits, all zero.
func NewDense(n int) *Dense {
	return &Dense{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (d *Dense) Len() int { return d.n }

// Set sets bit i.
func (d *Dense) Set(i int) { d.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (d *Dense) Get(i int) bool { return d.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (d *Dense) Count() int {
	c := 0
	for _, w := range d.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SpaceBits returns the storage footprint in bits (the unit Appendix B uses
// when accounting the T_u structures).
func (d *Dense) SpaceBits() int64 { return int64(len(d.words)) * 64 }

// Arena is a single word slice holding many concatenated bitsets, each
// word-aligned and addressed by the word offset its owner recorded at append
// time. The flat index layout concatenates every per-child non-emptiness
// tensor of a tree into one arena: one allocation, contiguous in memory, no
// per-tensor slice headers or pointer hops on the query path.
type Arena struct {
	words []uint64
}

// AppendDense copies d's words into the arena and returns the word offset at
// which they start.
func (a *Arena) AppendDense(d *Dense) int64 {
	off := int64(len(a.words))
	a.words = append(a.words, d.words...)
	return off
}

// Grow appends n zero words and returns their starting offset.
func (a *Arena) Grow(n int) int64 {
	off := int64(len(a.words))
	a.words = append(a.words, make([]uint64, n)...)
	return off
}

// Get reports bit i of the bitset starting at word offset off.
func (a *Arena) Get(off int64, i int64) bool {
	return a.words[off+i>>6]&(1<<(uint64(i)&63)) != 0
}

// Set sets bit i of the bitset starting at word offset off (builder use).
func (a *Arena) Set(off int64, i int64) {
	a.words[off+i>>6] |= 1 << (uint64(i) & 63)
}

// Words returns the arena size in 64-bit words.
func (a *Arena) Words() int64 { return int64(len(a.words)) }

// SpaceBits returns the storage footprint in bits.
func (a *Arena) SpaceBits() int64 { return int64(len(a.words)) * 64 }

// U32Set is an open-addressing hash set of uint32 keys with linear probing.
// Zero-valued keys are supported via a sentinel flag. The set is built once
// and then only queried, which is exactly the usage pattern of the per-object
// document hash tables: construction at indexing time, O(1) expected lookups
// at query time.
type U32Set struct {
	slots   []uint32
	used    []bool
	mask    uint32
	size    int
	hasZero bool
}

// NewU32Set builds a set from the given keys (duplicates are collapsed).
func NewU32Set(keys []uint32) *U32Set {
	cap := 4
	for cap < 2*len(keys) {
		cap <<= 1
	}
	s := &U32Set{
		slots: make([]uint32, cap),
		used:  make([]bool, cap),
		mask:  uint32(cap - 1),
	}
	for _, k := range keys {
		s.add(k)
	}
	return s
}

func (s *U32Set) add(k uint32) {
	if k == 0 {
		if !s.hasZero {
			s.hasZero = true
			s.size++
		}
		return
	}
	i := hash32(k) & s.mask
	for s.used[i] {
		if s.slots[i] == k {
			return
		}
		i = (i + 1) & s.mask
	}
	s.used[i] = true
	s.slots[i] = k
	s.size++
}

// Contains reports whether k is in the set.
func (s *U32Set) Contains(k uint32) bool {
	if k == 0 {
		return s.hasZero
	}
	i := hash32(k) & s.mask
	for s.used[i] {
		if s.slots[i] == k {
			return true
		}
		i = (i + 1) & s.mask
	}
	return false
}

// Size returns the number of distinct keys.
func (s *U32Set) Size() int { return s.size }

// SpaceWords returns the storage footprint in machine words.
func (s *U32Set) SpaceWords() int64 {
	// slots: one uint32 per slot (half word); used: 1 bit rounded to 1/8
	// word each; count both as words/2 + words/64 conservatively rounded up.
	return int64(len(s.slots))/2 + int64(len(s.used))/64 + 2
}

// hash32 is a Fibonacci/multiplicative mix giving good dispersion for
// sequential keyword ids.
func hash32(k uint32) uint32 {
	k ^= k >> 16
	k *= 0x7feb352d
	k ^= k >> 15
	k *= 0x846ca68b
	k ^= k >> 16
	return k
}
