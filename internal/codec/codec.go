// Package codec provides a compact, versioned binary serialization for
// datasets — the persistence layer of the library. Indexes themselves are
// not serialized: construction is near-linear, so the stable artifact is the
// data, and an index is rebuilt from its configuration on load (the same
// decision Lucene-style systems make for in-memory accelerator structures).
//
// Format (little-endian, varint-compressed):
//
//	magic "KWSC" | version u8 | dim uvarint | count uvarint
//	per object: per-dim float64 bits uvarint | doclen uvarint | keyword deltas uvarint...
//	crc32 (Castagnoli) of everything prior
//
// Keyword lists are sorted at dataset construction, so delta coding makes
// typical documents a few bytes each.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"kwsc/internal/dataset"
)

const (
	magic   = "KWSC"
	version = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checksum or framing failure.
var ErrCorrupt = errors.New("codec: corrupt dataset stream")

// WriteDataset serializes the dataset to w.
func WriteDataset(w io.Writer, ds *dataset.Dataset) error {
	cw := &crcWriter{w: bufio.NewWriter(w), h: crc32.New(castagnoli)}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return err
	}
	if err := cw.writeByte(version); err != nil {
		return err
	}
	cw.writeUvarint(uint64(ds.Dim()))
	cw.writeUvarint(uint64(ds.Len()))
	for i := 0; i < ds.Len(); i++ {
		id := int32(i)
		for _, c := range ds.Point(id) {
			cw.writeUvarint(math.Float64bits(c))
		}
		doc := ds.Doc(id)
		cw.writeUvarint(uint64(len(doc)))
		prev := uint64(0)
		for _, kw := range doc {
			cw.writeUvarint(uint64(kw) - prev)
			prev = uint64(kw)
		}
	}
	if cw.err != nil {
		return cw.err
	}
	sum := cw.h.Sum32()
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], sum)
	if _, err := cw.w.Write(buf[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// ReadDataset deserializes a dataset from r, verifying the checksum.
func ReadDataset(r io.Reader) (*dataset.Dataset, error) {
	cr := &crcReader{r: bufio.NewReader(r), h: crc32.New(castagnoli)}
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, fmt.Errorf("codec: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("codec: unsupported version %d", head[len(magic)])
	}
	dim, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: dim", ErrCorrupt)
	}
	count, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: count", ErrCorrupt)
	}
	if dim == 0 || dim > 64 {
		return nil, fmt.Errorf("%w: implausible dimension %d", ErrCorrupt, dim)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("%w: implausible object count %d", ErrCorrupt, count)
	}
	// Allocation is paced by the bytes actually read, never by the claimed
	// counts alone: a corrupt 12-byte stream may declare billions of objects,
	// but every object costs at least one byte per point coordinate and
	// document keyword, so growing incrementally (capped initial capacity)
	// bounds memory by the input size and fails with ErrCorrupt at the
	// truncation point instead of attempting a gigabyte make().
	objs := make([]dataset.Object, 0, capHint(count, 1))
	for i := uint64(0); i < count; i++ {
		p := make([]float64, dim)
		for j := range p {
			bits, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: point data", ErrCorrupt)
			}
			p[j] = math.Float64frombits(bits)
		}
		doc, err := readDoc(cr)
		if err != nil {
			return nil, err
		}
		objs = append(objs, dataset.Object{Point: p, Doc: doc})
	}
	want := cr.h.Sum32()
	var buf [4]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(buf[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return dataset.New(objs)
}

// maxCapHint caps how many elements any claimed count pre-allocates before a
// single byte backing them has been read.
const maxCapHint = 4096

// capHint bounds the initial capacity for a length-prefixed sequence whose
// elements cost at least minBytes each: never more than maxCapHint elements
// up front, growth beyond that is paid for by successfully parsed input.
func capHint(claimed uint64, minBytes int) int {
	per := uint64(maxCapHint)
	if minBytes > 1 {
		per = uint64(maxCapHint / minBytes)
	}
	if claimed < per {
		return int(claimed)
	}
	return int(per)
}

// readDoc reads one length-prefixed, delta-coded keyword list.
func readDoc(cr *crcReader) ([]dataset.Keyword, error) {
	dl, err := binary.ReadUvarint(cr)
	if err != nil || dl == 0 || dl > 1<<24 {
		return nil, fmt.Errorf("%w: document length", ErrCorrupt)
	}
	doc := make([]dataset.Keyword, 0, capHint(dl, 1))
	prev := uint64(0)
	for j := uint64(0); j < dl; j++ {
		d, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: document data", ErrCorrupt)
		}
		prev += d
		if prev > math.MaxUint32 {
			return nil, fmt.Errorf("%w: keyword overflow", ErrCorrupt)
		}
		doc = append(doc, dataset.Keyword(prev))
	}
	return doc, nil
}

type crcWriter struct {
	w   *bufio.Writer
	h   hash.Hash32
	err error
	buf [binary.MaxVarintLen64]byte
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	cw.h.Write(p)
	n, err := cw.w.Write(p)
	cw.err = err
	return n, err
}

func (cw *crcWriter) writeByte(b byte) error {
	_, err := cw.Write([]byte{b})
	return err
}

func (cw *crcWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(cw.buf[:], v)
	cw.Write(cw.buf[:n])
}

type crcReader struct {
	r *bufio.Reader
	h hash.Hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.h.Write(p[:n])
	return n, err
}

// ReadByte lets binary.ReadUvarint consume one byte at a time while keeping
// the checksum in sync.
func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.h.Write([]byte{b})
	}
	return b, err
}
