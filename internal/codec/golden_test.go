package codec

import (
	"bytes"
	"encoding/hex"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// The on-disk format is a compatibility contract: this golden test pins the
// exact bytes of version 1 so accidental format changes fail loudly (a
// deliberate change must bump the version and update the constant).
func TestGoldenFormatV1(t *testing.T) {
	ds := dataset.MustNew([]dataset.Object{
		{Point: geom.Point{1, 2}, Doc: []dataset.Keyword{3, 5}},
		{Point: geom.Point{-0.5, 4}, Doc: []dataset.Keyword{0}},
	})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(buf.Bytes())
	if got != goldenV1 {
		t.Fatalf("format drifted:\n got %s\nwant %s", got, goldenV1)
	}
	back, err := ReadDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatal("golden stream does not restore")
	}
}

const goldenV1 = "4b57534301020280808080808080f83f80808080808080804002030280808080808080f0bf018080808080808088400100b32a1442"
