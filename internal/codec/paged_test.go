package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/pager"
)

func testPagedSnapshot(seed int64, n int) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	s := &Snapshot{K: 2, Dim: 2, LastSeq: 41, NextHandle: int64(3*n + 10)}
	h := int64(-1)
	for i := 0; i < n; i++ {
		h += 1 + rng.Int63n(3)
		doc := map[dataset.Keyword]bool{}
		for len(doc) < 1+rng.Intn(4) {
			doc[dataset.Keyword(rng.Intn(24))] = true
		}
		obj := dataset.Object{Point: geom.Point{rng.Float64(), rng.NormFloat64()}}
		for kw := range doc {
			obj.Doc = append(obj.Doc, kw)
		}
		obj.Doc = dataset.NormalizeDoc(obj.Doc)
		s.Entries = append(s.Entries, SnapshotEntry{Handle: h, Obj: obj})
	}
	return s
}

func snapshotsEqual(t *testing.T, a, b *Snapshot) {
	t.Helper()
	if a.K != b.K || a.Dim != b.Dim || a.LastSeq != b.LastSeq || a.NextHandle != b.NextHandle {
		t.Fatalf("snapshot headers differ: %+v vs %+v", a, b)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		x, y := &a.Entries[i], &b.Entries[i]
		if x.Handle != y.Handle {
			t.Fatalf("entry %d handle %d vs %d", i, x.Handle, y.Handle)
		}
		if len(x.Obj.Point) != len(y.Obj.Point) || len(x.Obj.Doc) != len(y.Obj.Doc) {
			t.Fatalf("entry %d shape differs", i)
		}
		for j := range x.Obj.Point {
			if x.Obj.Point[j] != y.Obj.Point[j] {
				t.Fatalf("entry %d point differs", i)
			}
		}
		for j := range x.Obj.Doc {
			if x.Obj.Doc[j] != y.Obj.Doc[j] {
				t.Fatalf("entry %d doc differs", i)
			}
		}
	}
}

func TestPagedSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 300} {
		s := testPagedSnapshot(int64(n), n)
		var buf bytes.Buffer
		if err := WritePagedSnapshot(&buf, s); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		if buf.Len()%pager.PageSize != 0 {
			t.Fatalf("n=%d: container size %d not a page multiple", n, buf.Len())
		}
		got, err := ReadPagedSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		snapshotsEqual(t, s, got)
	}
}

func TestPagedSnapshotDetectsCorruption(t *testing.T) {
	s := testPagedSnapshot(3, 200)
	var buf bytes.Buffer
	if err := WritePagedSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flip one byte in every page in turn: each must be rejected.
	for page := 0; page*pager.PageSize < len(clean); page++ {
		data := append([]byte(nil), clean...)
		data[page*pager.PageSize+137] ^= 0x20
		if _, err := ReadPagedSnapshot(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corruption in page %d accepted (err=%v)", page, err)
		}
	}
	// Truncation at every page boundary must be rejected too.
	for sz := 0; sz < len(clean); sz += pager.PageSize {
		if _, err := ReadPagedSnapshot(bytes.NewReader(clean[:sz]), int64(sz)); err == nil {
			t.Fatalf("truncation to %d bytes accepted", sz)
		}
	}
}

func TestContainerRoundTrip(t *testing.T) {
	meta := PagedMeta{Kind: 9, K: 3, Dim: 4, Count: 77, LastSeq: 5, NextHandle: 80}
	secs := []Section{
		{ID: 40, Data: bytes.Repeat([]byte{0xab}, 3)},
		{ID: 41, Data: nil},
		{ID: 42, Data: bytes.Repeat([]byte{0x11}, 2*pager.PageSize+5)},
	}
	var buf bytes.Buffer
	if err := WriteContainer(&buf, meta.Encode(), secs); err != nil {
		t.Fatal(err)
	}
	c, err := ParseContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if got := ParsePagedMeta(c.Meta); got != meta {
		t.Fatalf("meta round-trip: %+v vs %+v", got, meta)
	}
	if err := c.VerifyAllPages(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, s := range secs {
		b, err := c.SectionBytes(bytes.NewReader(buf.Bytes()), s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, s.Data) {
			t.Fatalf("section %d round-trip differs", s.ID)
		}
		off, _, ok := c.Section(s.ID)
		if !ok || off%pager.PageSize != 0 {
			t.Fatalf("section %d at unaligned offset %d", s.ID, off)
		}
	}
	if _, _, ok := c.Section(99); ok {
		t.Fatal("phantom section found")
	}
}

func TestWriteContainerRejectsBadSections(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteContainer(&buf, [64]byte{}, []Section{{ID: 0}}); err == nil {
		t.Fatal("reserved id 0 accepted")
	}
	if err := WriteContainer(&buf, [64]byte{}, []Section{{ID: 7}, {ID: 7}}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	many := make([]Section, MaxSections)
	for i := range many {
		many[i].ID = uint32(i + 1)
	}
	if err := WriteContainer(&buf, [64]byte{}, many); err == nil {
		t.Fatal("directory overflow accepted")
	}
}

// FuzzReadPagedSnapshot asserts the KWCP2 parser chain — superblock,
// section directory, page-CRC table, column decode — is total over
// arbitrary bytes: parse or fail, never panic or over-allocate.
func FuzzReadPagedSnapshot(f *testing.F) {
	var buf bytes.Buffer
	if err := WritePagedSnapshot(&buf, testPagedSnapshot(1, 9)); err != nil {
		f.Fatal(err)
	}
	golden := buf.Bytes()
	f.Add(golden)
	f.Add([]byte("KWC2"))
	f.Add(golden[:pager.PageSize])
	for _, pos := range []int{5, 13, 90, pager.PageSize + 8, 2 * pager.PageSize, len(golden) - 9} {
		flip := append([]byte(nil), golden...)
		flip[pos] ^= 0x41
		f.Add(flip)
		f.Add(flip[:pos])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadPagedSnapshot(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Accepted input must re-encode and re-parse to the same snapshot.
		var out bytes.Buffer
		if err := WritePagedSnapshot(&out, got); err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		back, err := ReadPagedSnapshot(bytes.NewReader(out.Bytes()), int64(out.Len()))
		if err != nil {
			t.Fatalf("re-encoded snapshot fails to parse: %v", err)
		}
		snapshotsEqual(t, got, back)
	})
}
