package codec

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

func roundTrip(t *testing.T, ds *dataset.Dataset) *dataset.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func assertEqualDatasets(t *testing.T, a, b *dataset.Dataset) {
	t.Helper()
	if a.Len() != b.Len() || a.Dim() != b.Dim() || a.N() != b.N() || a.W() != b.W() {
		t.Fatalf("shape mismatch: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.Len(), a.Dim(), a.N(), a.W(), b.Len(), b.Dim(), b.N(), b.W())
	}
	for i := 0; i < a.Len(); i++ {
		id := int32(i)
		if !a.Point(id).Equal(b.Point(id)) {
			t.Fatalf("object %d point mismatch", i)
		}
		da, db := a.Doc(id), b.Doc(id)
		if len(da) != len(db) {
			t.Fatalf("object %d doc length mismatch", i)
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("object %d keyword %d mismatch", i, j)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 500, Dim: 3, Vocab: 100, DocLen: 5})
	assertEqualDatasets(t, ds, roundTrip(t, ds))
}

func TestRoundTripSpecialValues(t *testing.T) {
	ds := dataset.MustNew([]dataset.Object{
		{Point: geom.Point{0, -0.0}, Doc: []dataset.Keyword{0}},
		{Point: geom.Point{math.MaxFloat64, -math.MaxFloat64}, Doc: []dataset.Keyword{math.MaxUint32}},
		{Point: geom.Point{math.SmallestNonzeroFloat64, 1e-300}, Doc: []dataset.Keyword{1, 2, 3}},
	})
	assertEqualDatasets(t, ds, roundTrip(t, ds))
}

func TestChecksumDetectsFlips(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 2, Objects: 100, Dim: 2, Vocab: 50, DocLen: 4})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		corrupted := append([]byte(nil), raw...)
		pos := rng.Intn(len(corrupted))
		corrupted[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := ReadDataset(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("trial %d: bit flip at %d undetected", trial, pos)
		}
	}
}

func TestTruncatedStream(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 4, Objects: 50, Dim: 2, Vocab: 20, DocLen: 3})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, 5, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadDataset(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("NOPE\x01"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}
	ds := workload.Gen(workload.Config{Seed: 5, Objects: 10, Dim: 2, Vocab: 10, DocLen: 3})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version byte
	if _, err := ReadDataset(bytes.NewReader(raw)); err == nil {
		t.Fatal("future version accepted")
	}
}

// Property: arbitrary valid datasets survive the round trip.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		n := 1 + rng.Intn(100)
		dim := 1 + rng.Intn(4)
		objs := make([]dataset.Object, n)
		for i := range objs {
			p := make(geom.Point, dim)
			for j := range p {
				p[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
			}
			doc := make([]dataset.Keyword, 1+rng.Intn(6))
			for j := range doc {
				doc[j] = dataset.Keyword(rng.Intn(1 << uint(1+rng.Intn(20))))
			}
			objs[i] = dataset.Object{Point: p, Doc: doc}
		}
		ds := dataset.MustNew(objs)
		var buf bytes.Buffer
		if err := WriteDataset(&buf, ds); err != nil {
			return false
		}
		got, err := ReadDataset(&buf)
		if err != nil {
			return false
		}
		if got.Len() != ds.Len() || got.N() != ds.N() {
			return false
		}
		for i := 0; i < ds.Len(); i++ {
			if !got.Point(int32(i)).Equal(ds.Point(int32(i))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// A persisted dataset rebuilds a working index.
func TestPersistedDatasetIndexes(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 7, Objects: 300, Dim: 2, Vocab: 30, DocLen: 4})
	restored := roundTrip(t, ds)
	q := geom.NewRect([]float64{0.2, 0.2}, []float64{0.8, 0.8})
	a := ds.Filter(q, []dataset.Keyword{0, 1})
	b := restored.Filter(q, []dataset.Keyword{0, 1})
	if len(a) != len(b) {
		t.Fatalf("restored dataset answers differently: %d vs %d", len(a), len(b))
	}
}
