package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"kwsc/internal/dataset"
)

// Snapshot is the payload of a durability checkpoint: the live
// (handle, object) entries of a dynamic index together with the log position
// the checkpoint supersedes and the handle watermark recovery must resume
// from. See DESIGN.md §11 for the byte-level diagram.
//
// Format (little-endian, varint-compressed, crc32c-terminated like the
// dataset codec):
//
//	magic "KWCP" | version u8 | k uvarint | dim uvarint
//	lastSeq uvarint | nextHandle uvarint | count uvarint
//	per entry: handle uvarint (strictly increasing)
//	           per-dim float64 bits uvarint | doclen uvarint | kw deltas...
//	crc32 (Castagnoli) of everything prior
type Snapshot struct {
	K          int             // query keyword arity of the index
	Dim        int             // point dimensionality
	LastSeq    uint64          // last WAL sequence number the snapshot covers
	NextHandle int64           // handle the next insertion will be assigned
	Entries    []SnapshotEntry // live entries, ascending by handle
}

// SnapshotEntry is one live (handle, object) pair.
type SnapshotEntry struct {
	Handle int64
	Obj    dataset.Object
}

const (
	snapMagic   = "KWCP"
	snapVersion = 1
)

// WriteSnapshot serializes the snapshot to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if s.Dim < 1 || s.Dim > 64 {
		return fmt.Errorf("codec: snapshot dimension %d outside [1, 64]", s.Dim)
	}
	cw := &crcWriter{w: bufio.NewWriter(w), h: crc32.New(castagnoli)}
	if _, err := cw.Write([]byte(snapMagic)); err != nil {
		return err
	}
	if err := cw.writeByte(snapVersion); err != nil {
		return err
	}
	cw.writeUvarint(uint64(s.K))
	cw.writeUvarint(uint64(s.Dim))
	cw.writeUvarint(s.LastSeq)
	cw.writeUvarint(uint64(s.NextHandle))
	cw.writeUvarint(uint64(len(s.Entries)))
	prev := int64(-1)
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Handle <= prev {
			return fmt.Errorf("codec: snapshot handles not strictly increasing at %d", e.Handle)
		}
		if len(e.Obj.Point) != s.Dim {
			return fmt.Errorf("codec: snapshot entry %d has dimension %d, want %d", i, len(e.Obj.Point), s.Dim)
		}
		prev = e.Handle
		cw.writeUvarint(uint64(e.Handle))
		for _, c := range e.Obj.Point {
			cw.writeUvarint(math.Float64bits(c))
		}
		cw.writeUvarint(uint64(len(e.Obj.Doc)))
		prevKW := uint64(0)
		for _, kw := range e.Obj.Doc {
			cw.writeUvarint(uint64(kw) - prevKW)
			prevKW = uint64(kw)
		}
	}
	if cw.err != nil {
		return cw.err
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], cw.h.Sum32())
	if _, err := cw.w.Write(buf[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot, verifying
// its checksum and structural invariants. It applies the same
// allocation-pacing defense as ReadDataset: claimed counts never allocate
// more than the input can back.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	cr := &crcReader{r: bufio.NewReader(r), h: crc32.New(castagnoli)}
	head := make([]byte, len(snapMagic)+1)
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, fmt.Errorf("%w: reading snapshot header", ErrCorrupt)
	}
	if string(head[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if head[len(snapMagic)] != snapVersion {
		return nil, fmt.Errorf("codec: unsupported snapshot version %d", head[len(snapMagic)])
	}
	k, err := binary.ReadUvarint(cr)
	if err != nil || k < 2 || k > 64 {
		return nil, fmt.Errorf("%w: snapshot arity", ErrCorrupt)
	}
	dim, err := binary.ReadUvarint(cr)
	if err != nil || dim == 0 || dim > 64 {
		return nil, fmt.Errorf("%w: snapshot dimension", ErrCorrupt)
	}
	lastSeq, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: snapshot sequence", ErrCorrupt)
	}
	nextHandle, err := binary.ReadUvarint(cr)
	if err != nil || nextHandle > math.MaxInt64 {
		return nil, fmt.Errorf("%w: snapshot handle watermark", ErrCorrupt)
	}
	count, err := binary.ReadUvarint(cr)
	if err != nil || count > 1<<31 {
		return nil, fmt.Errorf("%w: snapshot entry count", ErrCorrupt)
	}
	s := &Snapshot{
		K: int(k), Dim: int(dim), LastSeq: lastSeq, NextHandle: int64(nextHandle),
		Entries: make([]SnapshotEntry, 0, capHint(count, 1)),
	}
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		h, err := binary.ReadUvarint(cr)
		if err != nil || h > math.MaxInt64 {
			return nil, fmt.Errorf("%w: snapshot entry handle", ErrCorrupt)
		}
		handle := int64(h)
		if handle <= prev || handle >= s.NextHandle {
			return nil, fmt.Errorf("%w: snapshot handle %d out of order or past watermark", ErrCorrupt, handle)
		}
		prev = handle
		p := make([]float64, dim)
		for j := range p {
			bits, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: snapshot point data", ErrCorrupt)
			}
			p[j] = math.Float64frombits(bits)
		}
		doc, err := readDoc(cr)
		if err != nil {
			return nil, err
		}
		s.Entries = append(s.Entries, SnapshotEntry{Handle: handle, Obj: dataset.Object{Point: p, Doc: doc}})
	}
	want := cr.h.Sum32()
	var buf [4]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: missing snapshot checksum", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(buf[:]) != want {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	return s, nil
}
