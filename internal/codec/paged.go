package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"kwsc/internal/pager"
)

// This file is the KWCP2 container: the page-aligned, offset-addressed,
// checksummed layout that paged snapshots (snapshot v2 and the flat index
// images) are framed in. Unlike the varint stream formats in this package,
// a KWCP2 file is addressable in place — every section is a page-aligned
// run of fixed-width little-endian values, so an open file can be served
// straight from a read-only mapping (or a bounded pread pool) without a
// decode pass. See DESIGN.md §15 for the byte-level diagram.
//
// File layout (pageSize = 4096, all integers little-endian):
//
//	page 0 (superblock):
//	  magic "KWC2" | version u16 | flags u16 | pageSize u32 | sectionCount u32
//	  meta [64]byte (application blob, see PagedMeta)
//	  tableCRC u32 (crc32c of the page-CRC table section)
//	  directory: sectionCount x { id u32 | reserved u32 | off u64 | len u64 }
//	  ... zero padding ...
//	  superblock crc32c u32 over page[0 : pageSize-4]
//	page 1..: section 0, the page-CRC table — one crc32c u32 per file page,
//	  over the full page including zero padding; entries for page 0 and the
//	  table's own pages are 0 (those pages are covered by the superblock CRC
//	  and tableCRC instead)
//	then each remaining section, page-aligned, zero-padded to a page multiple
//
// PagedMagic is the KWCP2 container magic, exported so checkpoint readers
// can sniff the format of a file before choosing a decoder.
const PagedMagic = pagedMagic

const (
	pagedMagic   = "KWC2"
	pagedVersion = 1

	superMetaOff     = 16
	superTableCRCOff = 80
	superDirOff      = 84
	dirEntrySize     = 24

	// MaxSections is the directory capacity of one superblock page.
	MaxSections = (pager.PageSize - 4 - superDirOff) / dirEntrySize
)

// Section is one named byte payload of a KWCP2 container.
type Section struct {
	ID   uint32
	Data []byte
}

// ContainerSection locates one section within a parsed container.
type ContainerSection struct {
	ID  uint32
	Off int64
	Len int64
}

// Container is a parsed KWCP2 superblock: the section directory, the
// application meta blob, and the verified page-CRC table. It holds no
// section payloads — those are read (or mapped) by the caller.
type Container struct {
	Meta     [64]byte
	Sections []ContainerSection
	PageCRCs []uint32 // one per file page; 0 = not covered (superblock, table)
	size     int64
}

func pagesFor(n int64) int64 { return (n + pager.PageSize - 1) / pager.PageSize }

// WriteContainer frames the sections into a KWCP2 container on w. Section
// IDs must be nonzero (0 names the page-CRC table) and unique; order is
// preserved in the directory and the file.
func WriteContainer(w io.Writer, meta [64]byte, sections []Section) error {
	if len(sections)+1 > MaxSections {
		return fmt.Errorf("codec: %d sections exceed the %d-entry directory", len(sections)+1, MaxSections)
	}
	seen := map[uint32]bool{0: true}
	dataPages := int64(0)
	for _, s := range sections {
		if seen[s.ID] {
			return fmt.Errorf("codec: duplicate or reserved section id %d", s.ID)
		}
		seen[s.ID] = true
		dataPages += pagesFor(int64(len(s.Data)))
	}
	// The table's length depends on the page count, which depends on the
	// table's length; iterate to the (small) fixed point.
	tablePages := int64(1)
	for {
		need := pagesFor(4 * (1 + tablePages + dataPages))
		if need == tablePages {
			break
		}
		tablePages = need
	}
	numPages := 1 + tablePages + dataPages

	dir := make([]ContainerSection, 0, len(sections)+1)
	dir = append(dir, ContainerSection{ID: 0, Off: pager.PageSize, Len: 4 * numPages})
	off := (1 + tablePages) * pager.PageSize
	for _, s := range sections {
		dir = append(dir, ContainerSection{ID: s.ID, Off: off, Len: int64(len(s.Data))})
		off += pagesFor(int64(len(s.Data))) * pager.PageSize
	}

	var zeros [pager.PageSize]byte
	crcs := make([]uint32, numPages)
	for si, s := range sections {
		e := dir[si+1]
		for p := int64(0); p < pagesFor(e.Len); p++ {
			lo := p * pager.PageSize
			hi := lo + pager.PageSize
			if hi > e.Len {
				hi = e.Len
			}
			c := crc32.Update(0, castagnoli, s.Data[lo:hi])
			if pad := pager.PageSize - (hi - lo); pad > 0 {
				c = crc32.Update(c, castagnoli, zeros[:pad])
			}
			crcs[e.Off/pager.PageSize+p] = c
		}
	}
	table := putU32s(crcs)
	// The table checksum covers the padded table pages, so a flipped bit
	// anywhere in that region — padding included — is detected, matching the
	// full-page coverage data pages get.
	tableCRC := crc32.Checksum(table, castagnoli)
	if pad := tablePages*pager.PageSize - int64(len(table)); pad > 0 {
		tableCRC = crc32.Update(tableCRC, castagnoli, zeros[:pad])
	}

	page := make([]byte, pager.PageSize)
	copy(page, pagedMagic)
	binary.LittleEndian.PutUint16(page[4:], pagedVersion)
	binary.LittleEndian.PutUint16(page[6:], 0)
	binary.LittleEndian.PutUint32(page[8:], pager.PageSize)
	binary.LittleEndian.PutUint32(page[12:], uint32(len(dir)))
	copy(page[superMetaOff:], meta[:])
	binary.LittleEndian.PutUint32(page[superTableCRCOff:], tableCRC)
	o := superDirOff
	for _, e := range dir {
		binary.LittleEndian.PutUint32(page[o:], e.ID)
		binary.LittleEndian.PutUint64(page[o+8:], uint64(e.Off))
		binary.LittleEndian.PutUint64(page[o+16:], uint64(e.Len))
		o += dirEntrySize
	}
	binary.LittleEndian.PutUint32(page[pager.PageSize-4:],
		crc32.Checksum(page[:pager.PageSize-4], castagnoli))

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(page); err != nil {
		return err
	}
	if _, err := bw.Write(table); err != nil {
		return err
	}
	if pad := tablePages*pager.PageSize - int64(len(table)); pad > 0 {
		if _, err := bw.Write(zeros[:pad]); err != nil {
			return err
		}
	}
	for _, s := range sections {
		if _, err := bw.Write(s.Data); err != nil {
			return err
		}
		if pad := pagesFor(int64(len(s.Data)))*pager.PageSize - int64(len(s.Data)); pad > 0 {
			if _, err := bw.Write(zeros[:pad]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ParseContainer reads and validates the superblock and page-CRC table of a
// KWCP2 container. It touches only page 0 and the table pages; section
// payloads stay on disk.
func ParseContainer(r io.ReaderAt, size int64) (*Container, error) {
	if size < 2*pager.PageSize || size%pager.PageSize != 0 {
		return nil, fmt.Errorf("%w: container size %d not a page multiple >= 2 pages", ErrCorrupt, size)
	}
	page := make([]byte, pager.PageSize)
	if _, err := io.ReadFull(io.NewSectionReader(r, 0, pager.PageSize), page); err != nil {
		return nil, fmt.Errorf("%w: reading superblock", ErrCorrupt)
	}
	if string(page[:4]) != pagedMagic {
		return nil, fmt.Errorf("%w: bad container magic", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(page[pager.PageSize-4:]); got != crc32.Checksum(page[:pager.PageSize-4], castagnoli) {
		return nil, fmt.Errorf("%w: superblock checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(page[4:]); v != pagedVersion {
		return nil, fmt.Errorf("codec: unsupported container version %d", v)
	}
	if ps := binary.LittleEndian.Uint32(page[8:]); ps != pager.PageSize {
		return nil, fmt.Errorf("%w: container page size %d, want %d", ErrCorrupt, ps, pager.PageSize)
	}
	nsec := binary.LittleEndian.Uint32(page[12:])
	if nsec < 1 || nsec > MaxSections {
		return nil, fmt.Errorf("%w: section count %d", ErrCorrupt, nsec)
	}
	c := &Container{size: size}
	copy(c.Meta[:], page[superMetaOff:])
	seen := map[uint32]bool{}
	for i := uint32(0); i < nsec; i++ {
		o := superDirOff + int(i)*dirEntrySize
		e := ContainerSection{ID: binary.LittleEndian.Uint32(page[o:])}
		off := binary.LittleEndian.Uint64(page[o+8:])
		n := binary.LittleEndian.Uint64(page[o+16:])
		if off >= 1<<62 || n >= 1<<62 {
			return nil, fmt.Errorf("%w: section %d span overflows", ErrCorrupt, e.ID)
		}
		e.Off, e.Len = int64(off), int64(n)
		if e.Off < pager.PageSize || e.Off%pager.PageSize != 0 || e.Off+e.Len > size {
			return nil, fmt.Errorf("%w: section %d span [%d,%d) outside file", ErrCorrupt, e.ID, e.Off, e.Off+e.Len)
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("%w: duplicate section id %d", ErrCorrupt, e.ID)
		}
		seen[e.ID] = true
		c.Sections = append(c.Sections, e)
	}
	numPages := size / pager.PageSize
	tOff, tLen, ok := c.Section(0)
	if !ok || tLen != 4*numPages {
		return nil, fmt.Errorf("%w: page-CRC table missing or sized %d, want %d", ErrCorrupt, tLen, 4*numPages)
	}
	padded := pagesFor(tLen) * pager.PageSize
	if tOff+padded > size {
		return nil, fmt.Errorf("%w: page-CRC table pages outside file", ErrCorrupt)
	}
	table := make([]byte, padded)
	if _, err := io.ReadFull(io.NewSectionReader(r, tOff, padded), table); err != nil {
		return nil, fmt.Errorf("%w: reading page-CRC table", ErrCorrupt)
	}
	if got := crc32.Checksum(table, castagnoli); got != binary.LittleEndian.Uint32(page[superTableCRCOff:]) {
		return nil, fmt.Errorf("%w: page-CRC table checksum mismatch", ErrCorrupt)
	}
	c.PageCRCs = getU32s(table[:tLen])
	// The superblock and the table verify through their own checksums; their
	// table entries are defined 0 regardless of what the file claims.
	c.PageCRCs[0] = 0
	for p := tOff / pager.PageSize; p < (tOff+tLen+pager.PageSize-1)/pager.PageSize; p++ {
		c.PageCRCs[p] = 0
	}
	return c, nil
}

// Section returns the byte span of section id, if present.
func (c *Container) Section(id uint32) (off, n int64, ok bool) {
	for _, e := range c.Sections {
		if e.ID == id {
			return e.Off, e.Len, true
		}
	}
	return 0, 0, false
}

// SectionBytes reads section id in full. Missing sections read as empty.
func (c *Container) SectionBytes(r io.ReaderAt, id uint32) ([]byte, error) {
	off, n, ok := c.Section(id)
	if !ok || n == 0 {
		return nil, nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(r, off, n), buf); err != nil {
		return nil, fmt.Errorf("%w: reading section %d", ErrCorrupt, id)
	}
	return buf, nil
}

// sequentialAdviser is implemented by pager.File: a hint that the next reads
// are one linear pass, so the kernel raises readahead for them.
type sequentialAdviser interface{ AdviseSequential(off, n int64) }

// VerifyAllPages checksums every covered page against the table — the eager
// integrity pass for full decodes; paged serving verifies lazily per pin.
// When the reader is a pager file the scan announces itself as sequential
// first (ROADMAP item 2c), cutting cold-start fault stalls on large images.
func (c *Container) VerifyAllPages(r io.ReaderAt) error {
	if a, ok := r.(sequentialAdviser); ok {
		a.AdviseSequential(0, int64(len(c.PageCRCs))*pager.PageSize)
	}
	buf := make([]byte, pager.PageSize)
	for p := int64(0); p < int64(len(c.PageCRCs)); p++ {
		want := c.PageCRCs[p]
		if want == 0 {
			continue
		}
		if _, err := io.ReadFull(io.NewSectionReader(r, p*pager.PageSize, pager.PageSize), buf); err != nil {
			return fmt.Errorf("%w: reading page %d", ErrCorrupt, p)
		}
		if got := crc32.Checksum(buf, castagnoli); got != want {
			return fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, p)
		}
	}
	return nil
}

// Fixed-width little-endian column codecs. The encode side is explicit (a
// checkpoint write is not hot); the mapped read side bypasses these with
// aligned casts and the pread side decodes through them.

func putU32s(v []uint32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], x)
	}
	return b
}

func putI32s(v []int32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
	return b
}

func putU64s(v []uint64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], x)
	}
	return b
}

func putI64s(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

func putF64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func getU32s(b []byte) []uint32 {
	v := make([]uint32, len(b)/4)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return v
}

func getI32s(b []byte) []int32 {
	v := make([]int32, len(b)/4)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return v
}

func getU64s(b []byte) []uint64 {
	v := make([]uint64, len(b)/8)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return v
}

func getI64s(b []byte) []int64 {
	v := make([]int64, len(b)/8)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

func getF64s(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}
