package codec

import (
	"bytes"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// fuzzSeeds returns golden encodings plus deterministic bit-flipped and
// truncated variants, so the corpus starts deep inside the parser instead of
// bouncing off the magic check.
func fuzzSeeds(golden []byte) [][]byte {
	seeds := [][]byte{golden, {}, []byte("KWSC"), []byte("KWCP")}
	for _, pos := range []int{4, 5, 6, len(golden) / 2, len(golden) - 2} {
		if pos < 0 || pos >= len(golden) {
			continue
		}
		flip := append([]byte(nil), golden...)
		flip[pos] ^= 0x41
		seeds = append(seeds, flip)
		seeds = append(seeds, golden[:pos])
	}
	return seeds
}

// FuzzReadDataset asserts the dataset decoder is total: arbitrary input
// either round-trips as a valid dataset or fails with an error — never a
// panic, hang, or input-disproportionate allocation (the varint counts in a
// 12-byte stream can claim gigabytes).
func FuzzReadDataset(f *testing.F) {
	ds := workload.Gen(workload.Config{Seed: 9, Objects: 40, Dim: 2, Vocab: 30, DocLen: 4})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		f.Fatal(err)
	}
	for _, s := range fuzzSeeds(buf.Bytes()) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must re-encode to an equal dataset.
		var out bytes.Buffer
		if err := WriteDataset(&out, got); err != nil {
			t.Fatalf("accepted dataset fails to re-encode: %v", err)
		}
		back, err := ReadDataset(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded dataset fails to parse: %v", err)
		}
		if back.Len() != got.Len() || back.N() != got.N() {
			t.Fatalf("re-encode changed shape: (%d,%d) vs (%d,%d)", back.Len(), back.N(), got.Len(), got.N())
		}
	})
}

// FuzzReadSnapshot is the same totality property for checkpoint snapshots.
func FuzzReadSnapshot(f *testing.F) {
	s := &Snapshot{
		K: 2, Dim: 2, LastSeq: 17, NextHandle: 6,
		Entries: []SnapshotEntry{
			{Handle: 1, Obj: dataset.Object{Point: geom.Point{0.5, 0.5}, Doc: []dataset.Keyword{1, 2}}},
			{Handle: 5, Obj: dataset.Object{Point: geom.Point{2, -3}, Doc: []dataset.Keyword{0, 7}}},
		},
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		f.Fatal(err)
	}
	for _, seed := range fuzzSeeds(buf.Bytes()) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, got); err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded snapshot fails to parse: %v", err)
		}
	})
}
