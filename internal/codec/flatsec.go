package codec

// Section IDs of a flat-index KWCP2 container (PagedKindFlatORPKW or
// PagedKindFlatSPKW). Sections 10-29 are the FlatArenas columns of
// internal/core (BFS node order), 30-32 the dataset image, 33-34 the rank
// tables (ORPKW only). internal/flatio owns the read/write paths; the IDs
// live here so every KWCP2 section registry is in one place.
const (
	SecFlatMeta       = 10 // []uint64 {splitterKind, pdim, numNodes}
	SecFlatCells      = 11 // []float64, 2*pdim per node: Lo then Hi
	SecFlatNu         = 12 // []int64 node weights
	SecFlatL          = 13 // []int32 large-keyword counts
	SecFlatChildFirst = 14 // []int32
	SecFlatChildCount = 15 // []int32
	SecFlatPivotStart = 16 // []int32, numNodes+1 prefix offsets
	SecFlatPivotIDs   = 17 // []int32
	SecFlatLargeStart = 18 // []int32, numNodes+1 prefix offsets
	SecFlatLargeKeys  = 19 // []uint32, sorted per node
	SecFlatLargeIdx   = 20 // []int32 tensor axis indexes
	SecFlatMatStart   = 21 // []int32, numNodes+1 prefix offsets
	SecFlatMatKeys    = 22 // []uint32, sorted per node
	SecFlatMatLists   = 23 // []int32 triples {block, numBlocks, n}
	SecFlatMatBlocks  = 24 // []int32 quads {off, first, max, n|w<<16}
	SecFlatMatWords   = 25 // []uint64 bitpack payload
	SecFlatTensorOff  = 26 // []int64 word offsets per node
	SecFlatTensorStr  = 27 // []int64 word strides per node
	SecFlatTensorWrds = 28 // []uint64 non-emptiness bit arrays
	SecFlatCoords     = 29 // []float64 partitioning coordinates, n x pdim
	SecFlatPoints     = 30 // []float64 dataset points, n x dim
	SecFlatDocStart   = 31 // []int64, n+1 prefix offsets
	SecFlatDocWords   = 32 // []uint32 concatenated sorted documents
	SecFlatRankSorted = 33 // []float64 rank tables, dim x n (ORPKW only)
	SecFlatRankRanks  = 34 // []int32 rank tables, dim x n (ORPKW only)
)

// Exported little-endian column codecs for sibling packages that assemble
// their own KWCP2 section payloads (internal/flatio). Put* allocates the
// byte image; Get* decodes a fresh slice (zero-copy readers use
// pager.Cast* on mapped bytes instead).

// PutU32s encodes v little-endian.
func PutU32s(v []uint32) []byte { return putU32s(v) }

// PutI32s encodes v little-endian.
func PutI32s(v []int32) []byte { return putI32s(v) }

// PutU64s encodes v little-endian.
func PutU64s(v []uint64) []byte { return putU64s(v) }

// PutI64s encodes v little-endian.
func PutI64s(v []int64) []byte { return putI64s(v) }

// PutF64s encodes v little-endian (IEEE 754 bits).
func PutF64s(v []float64) []byte { return putF64s(v) }

// GetU32s decodes a little-endian column; len(b) must be a multiple of 4.
func GetU32s(b []byte) []uint32 { return getU32s(b) }

// GetI32s decodes a little-endian column; len(b) must be a multiple of 4.
func GetI32s(b []byte) []int32 { return getI32s(b) }

// GetU64s decodes a little-endian column; len(b) must be a multiple of 8.
func GetU64s(b []byte) []uint64 { return getU64s(b) }

// GetI64s decodes a little-endian column; len(b) must be a multiple of 8.
func GetI64s(b []byte) []int64 { return getI64s(b) }

// GetF64s decodes a little-endian column; len(b) must be a multiple of 8.
func GetF64s(b []byte) []float64 { return getF64s(b) }
