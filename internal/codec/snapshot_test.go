package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		K: 2, Dim: 2, LastSeq: 41, NextHandle: 9,
		Entries: []SnapshotEntry{
			{Handle: 0, Obj: dataset.Object{Point: geom.Point{0.1, 0.2}, Doc: []dataset.Keyword{1, 3}}},
			{Handle: 3, Obj: dataset.Object{Point: geom.Point{-4, 8.5}, Doc: []dataset.Keyword{0}}},
			{Handle: 8, Obj: dataset.Object{Point: geom.Point{7, 7}, Doc: []dataset.Keyword{2, 3, 9}}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.K != s.K || got.Dim != s.Dim || got.LastSeq != s.LastSeq || got.NextHandle != s.NextHandle {
		t.Fatalf("header mismatch: %+v vs %+v", got, s)
	}
	if len(got.Entries) != len(s.Entries) {
		t.Fatalf("entry count %d, want %d", len(got.Entries), len(s.Entries))
	}
	for i := range s.Entries {
		a, b := s.Entries[i], got.Entries[i]
		if a.Handle != b.Handle || !a.Obj.Point.Equal(b.Obj.Point) || len(a.Obj.Doc) != len(b.Obj.Doc) {
			t.Fatalf("entry %d mismatch", i)
		}
		for j := range a.Obj.Doc {
			if a.Obj.Doc[j] != b.Obj.Doc[j] {
				t.Fatalf("entry %d keyword %d mismatch", i, j)
			}
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	s := &Snapshot{K: 2, Dim: 3, LastSeq: 0, NextHandle: 0}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 0 || got.Dim != 3 {
		t.Fatalf("empty snapshot mangled: %+v", got)
	}
}

func TestSnapshotRejectsUnsortedHandles(t *testing.T) {
	s := sampleSnapshot()
	s.Entries[0].Handle, s.Entries[1].Handle = 5, 2
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err == nil {
		t.Fatal("unsorted handles accepted")
	}
}

func TestSnapshotChecksumDetectsFlips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		corrupted := append([]byte(nil), raw...)
		pos := rng.Intn(len(corrupted))
		corrupted[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := ReadSnapshot(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("trial %d: bit flip at %d undetected", trial, pos)
		}
	}
}

func TestSnapshotTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v", cut, err)
		}
	}
}

// A tiny stream claiming a huge entry count must fail cheaply with
// ErrCorrupt, not attempt a proportional allocation (the OOM hardening).
func TestSnapshotHugeClaimedCount(t *testing.T) {
	// Hand-build a header claiming 2^30 entries with no body.
	var hdr bytes.Buffer
	hdr.WriteString(snapMagic)
	hdr.WriteByte(snapVersion)
	for _, v := range []uint64{2, 2, 0, 1 << 40, 1 << 30} { // k, dim, seq, nextHandle, count
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		hdr.Write(tmp[:n])
	}
	if _, err := ReadSnapshot(bytes.NewReader(hdr.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge claimed count: err = %v", err)
	}
}
