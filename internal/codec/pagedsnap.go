package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"kwsc/internal/bitpack"
	"kwsc/internal/dataset"
)

// Snapshot v2: the same logical payload as Snapshot (live handle/object
// entries plus the WAL watermark), laid out as KWCP2 columns so a recovered
// process can serve the checkpoint through a mapping instead of decoding it.
// The columns are struct-of-arrays images of the entries, plus an inverted
// index (sorted vocabulary, bitpacked postings of entry *indexes*) that the
// paged base uses to answer queries without scanning every object.

// Section IDs of a snapshot-v2 container (SecPageCRC is the container's own
// table).
const (
	SecPageCRC    = 0
	SecHandles    = 1 // []int64, strictly increasing, count entries
	SecPoints     = 2 // []float64, count x dim, row-major
	SecDocStart   = 3 // []int64, count+1 prefix offsets into SecDocWords
	SecDocWords   = 4 // []uint32, concatenated sorted documents
	SecVocab      = 5 // []uint32, sorted distinct keywords
	SecPostLists  = 6 // []int32 triples {block, numBlocks, n} per vocab entry
	SecPostBlocks = 7 // []int32 quads {off, first, max, n|w<<16} per block
	SecPostWords  = 8 // []uint64 bitpack payload
)

// Kind discriminates what a KWCP2 container holds (PagedMeta.Kind).
const (
	PagedKindSnapshot  = 1
	PagedKindFlatORPKW = 2
	PagedKindFlatSPKW  = 3
)

// PagedMeta is the 64-byte application blob of a KWCP2 superblock.
//
//	kind u32 | k u32 | dim u32 | reserved u32
//	count u64 | lastSeq u64 | nextHandle u64 | zeros
type PagedMeta struct {
	Kind       uint32
	K          uint32
	Dim        uint32
	Count      uint64
	LastSeq    uint64
	NextHandle uint64
}

// Encode packs the meta into the superblock blob.
func (m PagedMeta) Encode() [64]byte {
	var b [64]byte
	binary.LittleEndian.PutUint32(b[0:], m.Kind)
	binary.LittleEndian.PutUint32(b[4:], m.K)
	binary.LittleEndian.PutUint32(b[8:], m.Dim)
	binary.LittleEndian.PutUint64(b[16:], m.Count)
	binary.LittleEndian.PutUint64(b[24:], m.LastSeq)
	binary.LittleEndian.PutUint64(b[32:], m.NextHandle)
	return b
}

// ParsePagedMeta unpacks a superblock blob.
func ParsePagedMeta(b [64]byte) PagedMeta {
	return PagedMeta{
		Kind:       binary.LittleEndian.Uint32(b[0:]),
		K:          binary.LittleEndian.Uint32(b[4:]),
		Dim:        binary.LittleEndian.Uint32(b[8:]),
		Count:      binary.LittleEndian.Uint64(b[16:]),
		LastSeq:    binary.LittleEndian.Uint64(b[24:]),
		NextHandle: binary.LittleEndian.Uint64(b[32:]),
	}
}

// EncodePostLists flattens bitpack list handles into the SecPostLists int32
// layout.
func EncodePostLists(lists []bitpack.List) []int32 {
	out := make([]int32, 0, 3*len(lists))
	for _, l := range lists {
		out = append(out, l.Block, l.NumBlocks, l.N)
	}
	return out
}

// DecodePostLists is the inverse of EncodePostLists.
func DecodePostLists(v []int32) ([]bitpack.List, error) {
	if len(v)%3 != 0 {
		return nil, fmt.Errorf("%w: posting list triples truncated", ErrCorrupt)
	}
	out := make([]bitpack.List, len(v)/3)
	for i := range out {
		out[i] = bitpack.List{Block: v[3*i], NumBlocks: v[3*i+1], N: v[3*i+2]}
	}
	return out, nil
}

// EncodePostBlocks flattens bitpack block metadata into the SecPostBlocks
// int32 layout. Go struct layout is not a serialization format, so the
// fields are interleaved explicitly.
func EncodePostBlocks(blocks []bitpack.Block) []int32 {
	out := make([]int32, 0, 4*len(blocks))
	for _, b := range blocks {
		out = append(out, b.Off, b.First, b.Max, int32(b.N)|int32(b.W)<<16)
	}
	return out
}

// DecodePostBlocks is the inverse of EncodePostBlocks.
func DecodePostBlocks(v []int32) ([]bitpack.Block, error) {
	if len(v)%4 != 0 {
		return nil, fmt.Errorf("%w: posting block quads truncated", ErrCorrupt)
	}
	out := make([]bitpack.Block, len(v)/4)
	for i := range out {
		nw := v[4*i+3]
		out[i] = bitpack.Block{
			Off:   v[4*i],
			First: v[4*i+1],
			Max:   v[4*i+2],
			N:     int16(nw & 0xffff),
			W:     uint8(nw >> 16 & 0xff),
		}
		if nw>>24 != 0 {
			return nil, fmt.Errorf("%w: posting block flags %#x unknown", ErrCorrupt, nw>>24)
		}
	}
	return out, nil
}

// WritePagedSnapshot serializes the snapshot as a KWCP2 container.
func WritePagedSnapshot(w io.Writer, s *Snapshot) error {
	if s.Dim < 1 || s.Dim > 64 {
		return fmt.Errorf("codec: snapshot dimension %d outside [1, 64]", s.Dim)
	}
	count := len(s.Entries)
	handles := make([]int64, count)
	points := make([]float64, count*s.Dim)
	docStart := make([]int64, count+1)
	var docWords []uint32
	postings := map[uint32][]int32{}
	prev := int64(-1)
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Handle <= prev {
			return fmt.Errorf("codec: snapshot handles not strictly increasing at %d", e.Handle)
		}
		if len(e.Obj.Point) != s.Dim {
			return fmt.Errorf("codec: snapshot entry %d has dimension %d, want %d", i, len(e.Obj.Point), s.Dim)
		}
		prev = e.Handle
		handles[i] = e.Handle
		copy(points[i*s.Dim:], e.Obj.Point)
		for _, kw := range e.Obj.Doc {
			docWords = append(docWords, kw)
			postings[kw] = append(postings[kw], int32(i))
		}
		docStart[i+1] = int64(len(docWords))
	}
	vocab := make([]uint32, 0, len(postings))
	for kw := range postings {
		vocab = append(vocab, kw)
	}
	sort.Slice(vocab, func(i, j int) bool { return vocab[i] < vocab[j] })
	var arena bitpack.PackedLists
	lists := make([]bitpack.List, len(vocab))
	for i, kw := range vocab {
		lists[i] = arena.Append(postings[kw])
	}
	words, blocks := arena.Raw()

	meta := PagedMeta{
		Kind:       PagedKindSnapshot,
		K:          uint32(s.K),
		Dim:        uint32(s.Dim),
		Count:      uint64(count),
		LastSeq:    s.LastSeq,
		NextHandle: uint64(s.NextHandle),
	}
	return WriteContainer(w, meta.Encode(), []Section{
		{SecHandles, putI64s(handles)},
		{SecPoints, putF64s(points)},
		{SecDocStart, putI64s(docStart)},
		{SecDocWords, putU32s(docWords)},
		{SecVocab, putU32s(vocab)},
		{SecPostLists, putI32s(EncodePostLists(lists))},
		{SecPostBlocks, putI32s(EncodePostBlocks(blocks))},
		{SecPostWords, putU64s(words)},
	})
}

// sectionExact reads section id and checks its byte length is exactly want.
func sectionExact(c *Container, r io.ReaderAt, id uint32, want int64) ([]byte, error) {
	_, n, ok := c.Section(id)
	if !ok && want == 0 {
		return nil, nil
	}
	if !ok || n != want {
		return nil, fmt.Errorf("%w: section %d is %d bytes, want %d", ErrCorrupt, id, n, want)
	}
	return c.SectionBytes(r, id)
}

// ReadPagedSnapshot fully decodes a snapshot-v2 container, verifying every
// page checksum and the structural invariants — the eager path used by
// classic (non-paged) recovery from a v2 checkpoint. Paged serving opens the
// same bytes through core's paged base instead and never runs this.
func ReadPagedSnapshot(r io.ReaderAt, size int64) (*Snapshot, error) {
	c, err := ParseContainer(r, size)
	if err != nil {
		return nil, err
	}
	if err := c.VerifyAllPages(r); err != nil {
		return nil, err
	}
	meta := ParsePagedMeta(c.Meta)
	if meta.Kind != PagedKindSnapshot {
		return nil, fmt.Errorf("%w: container kind %d is not a snapshot", ErrCorrupt, meta.Kind)
	}
	if meta.K < 2 || meta.K > 64 {
		return nil, fmt.Errorf("%w: snapshot arity", ErrCorrupt)
	}
	if meta.Dim == 0 || meta.Dim > 64 {
		return nil, fmt.Errorf("%w: snapshot dimension", ErrCorrupt)
	}
	if meta.Count > 1<<31 || meta.NextHandle > math.MaxInt64 {
		return nil, fmt.Errorf("%w: snapshot count or handle watermark", ErrCorrupt)
	}
	count := int64(meta.Count)
	dim := int64(meta.Dim)

	handlesB, err := sectionExact(c, r, SecHandles, 8*count)
	if err != nil {
		return nil, err
	}
	pointsB, err := sectionExact(c, r, SecPoints, 8*count*dim)
	if err != nil {
		return nil, err
	}
	docStartB, err := sectionExact(c, r, SecDocStart, 8*(count+1))
	if err != nil {
		return nil, err
	}
	handles := getI64s(handlesB)
	points := getF64s(pointsB)
	docStart := getI64s(docStartB)
	if docStart[0] != 0 {
		return nil, fmt.Errorf("%w: document offsets do not start at 0", ErrCorrupt)
	}
	total := docStart[count]
	_, dwLen, _ := c.Section(SecDocWords)
	if dwLen != 4*total {
		return nil, fmt.Errorf("%w: document words sized %d, offsets claim %d", ErrCorrupt, dwLen, 4*total)
	}
	docWordsB, err := c.SectionBytes(r, SecDocWords)
	if err != nil {
		return nil, err
	}
	docWords := getU32s(docWordsB)

	s := &Snapshot{
		K: int(meta.K), Dim: int(meta.Dim),
		LastSeq: meta.LastSeq, NextHandle: int64(meta.NextHandle),
		Entries: make([]SnapshotEntry, 0, count),
	}
	prev := int64(-1)
	for i := int64(0); i < count; i++ {
		h := handles[i]
		if h <= prev || h >= s.NextHandle {
			return nil, fmt.Errorf("%w: snapshot handle %d out of order or past watermark", ErrCorrupt, h)
		}
		prev = h
		lo, hi := docStart[i], docStart[i+1]
		if lo >= hi {
			return nil, fmt.Errorf("%w: document length", ErrCorrupt)
		}
		doc := make([]dataset.Keyword, hi-lo)
		for j := range doc {
			kw := docWords[lo+int64(j)]
			if j > 0 && kw <= doc[j-1] {
				return nil, fmt.Errorf("%w: document keywords not strictly increasing", ErrCorrupt)
			}
			doc[j] = kw
		}
		p := make([]float64, dim)
		copy(p, points[i*dim:(i+1)*dim])
		s.Entries = append(s.Entries, SnapshotEntry{Handle: h, Obj: dataset.Object{Point: p, Doc: doc}})
	}

	// The inverted-index sections are unused on this path but must still be
	// structurally sound — the paged base trusts the same validation.
	if err := validateSnapshotPostings(c, r, count, total); err != nil {
		return nil, err
	}
	return s, nil
}

// validateSnapshotPostings checks the vocabulary and bitpacked posting
// sections: sorted vocab, one list per keyword, every block span inside the
// word arena, and exactly one posting per document word.
func validateSnapshotPostings(c *Container, r io.ReaderAt, count, totalWords int64) error {
	vocabB, err := c.SectionBytes(r, SecVocab)
	if err != nil {
		return err
	}
	listsB, err := c.SectionBytes(r, SecPostLists)
	if err != nil {
		return err
	}
	blocksB, err := c.SectionBytes(r, SecPostBlocks)
	if err != nil {
		return err
	}
	wordsB, err := c.SectionBytes(r, SecPostWords)
	if err != nil {
		return err
	}
	if len(vocabB)%4 != 0 || len(listsB)%4 != 0 || len(blocksB)%4 != 0 || len(wordsB)%8 != 0 {
		return fmt.Errorf("%w: posting section not a whole number of values", ErrCorrupt)
	}
	vocab := getU32s(vocabB)
	lists, err := DecodePostLists(getI32s(listsB))
	if err != nil {
		return err
	}
	blocks, err := DecodePostBlocks(getI32s(blocksB))
	if err != nil {
		return err
	}
	if len(lists) != len(vocab) {
		return fmt.Errorf("%w: %d posting lists for %d keywords", ErrCorrupt, len(lists), len(vocab))
	}
	arena := bitpack.FromRaw(getU64s(wordsB), blocks)
	var n int64
	for i, l := range lists {
		if i > 0 && vocab[i] <= vocab[i-1] {
			return fmt.Errorf("%w: vocabulary not strictly increasing", ErrCorrupt)
		}
		if err := arena.Validate(l); err != nil {
			return fmt.Errorf("%w: posting list %d: %v", ErrCorrupt, i, err)
		}
		for _, b := range arena.Blocks(l) {
			if b.First < 0 || int64(b.Max) >= count || b.First > b.Max {
				return fmt.Errorf("%w: posting block ids outside [0,%d)", ErrCorrupt, count)
			}
		}
		n += int64(l.N)
	}
	if n != totalWords {
		return fmt.Errorf("%w: %d postings for %d document words", ErrCorrupt, n, totalWords)
	}
	return nil
}
