// Package benchfmt is the committed benchmark snapshot schema, shared by
// cmd/benchsave (micro-benchmark records parsed from `go test -bench`
// output) and cmd/kwsload (serving measurements: QPS, tail latency, and
// goodput-under-overload curves). Keeping the schema in one package means a
// BENCH_*.json baseline can hold both kinds of measurement and every tool
// agrees on the field names.
//
// The schema is additive: fields are never removed or repurposed, and
// readers must accept files missing any of the newer sections (the legacy
// generation was a bare Record array; benchsave still parses it).
package benchfmt

import "encoding/json"

// Record is one micro-benchmark measurement. BytesResident captures the
// custom "bytes-resident" metric the flat-layout benchmarks report via
// b.ReportMetric: the live heap the built index retains, as opposed to
// B/op allocation churn.
type Record struct {
	Name          string  `json:"name"`
	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op,omitempty"`
	BytesResident int64   `json:"bytes_resident,omitempty"`
}

// ServeRecord is one load-test step against a running kwscd: a fixed client
// concurrency driven closed-loop for a fixed duration. A sweep of steps at
// increasing concurrency forms the goodput curve — under graceful
// degradation GoodputQPS should plateau (not collapse) as offered load
// passes capacity, with the excess turned away as Shed.
type ServeRecord struct {
	// Name labels the step (e.g. "query-c8" for 8 query clients).
	Name string `json:"name"`
	// Concurrency is the number of closed-loop clients in the step.
	Concurrency int `json:"concurrency"`
	// DurationSec is the measured wall-clock length of the step.
	DurationSec float64 `json:"duration_sec"`

	// Requests counts everything sent; OK the 200s, Shed the 429s,
	// Errors everything else (including transport failures).
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`
	Errors   int64 `json:"errors"`
	// Degraded and Truncated count OK responses carrying those flags.
	Degraded  int64 `json:"degraded,omitempty"`
	Truncated int64 `json:"truncated,omitempty"`

	// QPS is Requests/DurationSec (offered, as seen by the server);
	// GoodputQPS is OK/DurationSec — completed, non-shed work.
	QPS        float64 `json:"qps"`
	GoodputQPS float64 `json:"goodput_qps"`

	// Latency percentiles over the OK responses, in microseconds.
	P50Us  int64 `json:"p50_us"`
	P99Us  int64 `json:"p99_us"`
	P999Us int64 `json:"p999_us"`
}

// SnapshotFile is the on-disk schema: micro-benchmark records, serving
// measurements, and the metrics registry the run emitted (the
// `# kwsc-metrics:` line TestMain prints under -bench). Any section may be
// absent.
type SnapshotFile struct {
	Records []Record        `json:"records,omitempty"`
	Serve   []ServeRecord   `json:"serve,omitempty"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
}
