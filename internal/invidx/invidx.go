// Package invidx implements the inverted index — the classical O(N)-space
// structure that answers "pure" keyword search, i.e. k-set-intersection
// (k-SI) reporting queries (Section 1.2) — together with the "keywords only"
// naive baseline the paper measures its indexes against (Section 1):
// intersect the k posting lists, then discard objects failing the structured
// predicate. Its query cost is Theta(sum_i |S_wi|) in the worst case, which
// can be Theta(N) even when nothing is reported — exactly the drawback the
// paper's indexes remove.
package invidx

import (
	"sort"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// Index is an inverted index over a dataset: for each keyword w, the posting
// list S_w holds (sorted) the ids of the objects whose documents contain w.
type Index struct {
	ds       *dataset.Dataset
	postings map[dataset.Keyword][]int32
}

// Build constructs the inverted index in O(N) time and space.
func Build(ds *dataset.Dataset) *Index {
	post := make(map[dataset.Keyword][]int32)
	for i := 0; i < ds.Len(); i++ {
		id := int32(i)
		for _, w := range ds.Doc(id) {
			post[w] = append(post[w], id)
		}
	}
	return &Index{ds: ds, postings: post}
}

// Posting returns the posting list of keyword w (nil when w never occurs).
// Callers must not mutate it.
func (ix *Index) Posting(w dataset.Keyword) []int32 { return ix.postings[w] }

// DocFrequency returns |S_w|.
func (ix *Index) DocFrequency(w dataset.Keyword) int { return len(ix.postings[w]) }

// orderedLists returns the posting lists of ws sorted smallest-first, with
// ties broken by keyword id — a total order independent of both the map's
// iteration order and the caller's keyword order, so a query's work (and its
// instrumented cost) is reproducible across runs and ws permutations. ok is
// false when some keyword has an empty posting list (the intersection is
// trivially empty).
func (ix *Index) orderedLists(ws []dataset.Keyword) (lists [][]int32, ok bool) {
	type entry struct {
		list []int32
		w    dataset.Keyword
	}
	entries := make([]entry, len(ws))
	for i, w := range ws {
		entries[i] = entry{ix.postings[w], w}
		if len(entries[i].list) == 0 {
			return nil, false
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if la, lb := len(entries[a].list), len(entries[b].list); la != lb {
			return la < lb
		}
		return entries[a].w < entries[b].w
	})
	lists = make([][]int32, len(entries))
	for i, e := range entries {
		lists[i] = e.list
	}
	return lists, true
}

// Intersect answers a k-SI reporting query: the ids of objects containing
// every keyword. It intersects the shortest list against the others by
// galloping (doubling) search, costing O(min|S| * k * log(max|S|)); list
// order is the deterministic smallest-first order of orderedLists.
func (ix *Index) Intersect(ws []dataset.Keyword) []int32 {
	if len(ws) == 0 {
		return nil
	}
	lists, ok := ix.orderedLists(ws)
	if !ok {
		return nil
	}
	var out []int32
candidates:
	for _, id := range lists[0] {
		for _, l := range lists[1:] {
			if !gallopContains(l, id) {
				continue candidates
			}
		}
		out = append(out, id)
	}
	return out
}

// Empty answers a k-SI emptiness query.
func (ix *Index) Empty(ws []dataset.Keyword) bool {
	if len(ws) == 0 {
		return true
	}
	lists, ok := ix.orderedLists(ws)
	if !ok {
		return true
	}
candidates:
	for _, id := range lists[0] {
		for _, l := range lists[1:] {
			if !gallopContains(l, id) {
				continue candidates
			}
		}
		return false
	}
	return true
}

// KeywordsOnly is the "keywords only" naive baseline: compute D(w1,...,wk)
// via the inverted index, then eliminate objects outside the region q. Its
// cost is dominated by the intersection even when q is tiny.
func (ix *Index) KeywordsOnly(q geom.Region, ws []dataset.Keyword) []int32 {
	ids := ix.Intersect(ws)
	out := ids[:0]
	for _, id := range ids {
		if q.ContainsPoint(ix.ds.Point(id)) {
			out = append(out, id)
		}
	}
	return out
}

// ScanCost returns sum_i |S_wi|, the work a merge-based intersection would
// do — the quantity the paper's O(N^{1-1/k}) bounds are compared against.
func (ix *Index) ScanCost(ws []dataset.Keyword) int64 {
	var s int64
	for _, w := range ws {
		s += int64(len(ix.postings[w]))
	}
	return s
}

// SpaceWords returns the index footprint in words: one id per posting entry
// plus map overhead approximated by one word per distinct keyword.
func (ix *Index) SpaceWords() int64 {
	var s int64
	for _, l := range ix.postings {
		s += int64(len(l))/2 + 2
	}
	return s
}

// gallopContains reports whether sorted list l contains id, by doubling
// search from the front. (Per-candidate state-free variant; the asymptotics
// the baseline is benchmarked for are unaffected.)
func gallopContains(l []int32, id int32) bool {
	n := len(l)
	if n == 0 || l[0] > id || l[n-1] < id {
		return false
	}
	hi := 1
	for hi < n && l[hi] < id {
		hi <<= 1
	}
	if hi > n {
		hi = n
	}
	lo := hi >> 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < n && l[lo] == id
}
