package invidx

import (
	"sort"

	"kwsc/internal/bitpack"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// Packed is the cache-conscious form of the inverted index: every posting
// list delta-encoded into fixed-size bit-packed blocks (bitpack.BlockSize
// ids each) inside one shared arena, with per-block skip maxima. Conjunctive
// queries run block-at-a-time — the driver (smallest) list is decoded
// sequentially while the others advance by galloping over block maxima, and
// a block's payload is decoded only when its [First, Max] window admits the
// candidate. Space drops from one 4-byte id per entry to the list's delta
// entropy (a few bits per id for dense lists); the skip metadata restores
// the galloping asymptotics of the pointer layout.
type Packed struct {
	ds    *dataset.Dataset
	arena bitpack.PackedLists
	lists map[dataset.Keyword]bitpack.List
}

// Pack converts the index into its packed form. The receiver's posting map
// is not retained; callers that keep only the Packed value release the raw
// id slices to the collector.
func (ix *Index) Pack() *Packed {
	// Deterministic arena layout: keywords in ascending order.
	ws := make([]dataset.Keyword, 0, len(ix.postings))
	for w := range ix.postings {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a] < ws[b] })
	p := &Packed{ds: ix.ds, lists: make(map[dataset.Keyword]bitpack.List, len(ws))}
	for _, w := range ws {
		p.lists[w] = p.arena.Append(ix.postings[w])
	}
	return p
}

// BuildPacked constructs the packed inverted index directly from a dataset.
func BuildPacked(ds *dataset.Dataset) *Packed {
	return Build(ds).Pack()
}

// DocFrequency returns |S_w|.
func (p *Packed) DocFrequency(w dataset.Keyword) int { return int(p.lists[w].N) }

// ScanCost returns sum_i |S_wi| (see Index.ScanCost).
func (p *Packed) ScanCost(ws []dataset.Keyword) int64 {
	var s int64
	for _, w := range ws {
		s += int64(p.lists[w].N)
	}
	return s
}

// SpaceWords audits the packed footprint: the shared arena plus one handle
// and map slot per keyword.
func (p *Packed) SpaceWords() int64 {
	return p.arena.SpaceWords() + 3*int64(len(p.lists))
}

// Posting decodes the full posting list of w into a fresh slice (nil when w
// never occurs). It exists for verification; the query paths never
// materialize whole lists.
func (p *Packed) Posting(w dataset.Keyword) []int32 {
	l, ok := p.lists[w]
	if !ok {
		return nil
	}
	return p.arena.UnpackInto(l, make([]int32, 0, l.N))
}

// pcursor walks one packed list monotonically during an intersection.
type pcursor struct {
	blocks []bitpack.Block
	bi     int     // current block
	buf    []int32 // decoded current block; nil when not yet decoded
	pos    int     // resume position inside buf (candidates arrive ascending)
	dec    [bitpack.BlockSize]int32
}

// seek positions the cursor at the first block whose Max >= id, galloping
// forward over the skip maxima. It reports false when the list is exhausted.
func (c *pcursor) seek(id int32) bool {
	if c.bi >= len(c.blocks) {
		return false
	}
	if c.blocks[c.bi].Max >= id {
		return true
	}
	// Gallop: maxima are non-decreasing for sorted lists.
	step := 1
	lo := c.bi + 1
	for c.bi+step < len(c.blocks) && c.blocks[c.bi+step].Max < id {
		lo = c.bi + step + 1
		step <<= 1
	}
	hi := c.bi + step
	if hi > len(c.blocks) {
		hi = len(c.blocks)
	}
	// Binary search in [lo, hi) for the first block with Max >= id.
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.blocks[mid].Max < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(c.blocks) {
		c.bi = len(c.blocks)
		return false
	}
	c.bi, c.buf, c.pos = lo, nil, 0
	return true
}

// contains reports whether the list holds id, decoding the current block
// only when its [First, Max] window admits id. Successive calls must pass
// non-decreasing ids.
func (c *pcursor) contains(a *bitpack.PackedLists, id int32) bool {
	if !c.seek(id) {
		return false
	}
	b := c.blocks[c.bi]
	if id < b.First {
		return false // id falls in the gap before this block: no decode
	}
	if id == b.First {
		return true // answered from skip metadata alone
	}
	if c.buf == nil {
		c.buf = a.DecodeBlock(b, c.dec[:0])
	}
	// Gallop within the decoded block from the resume position.
	n := len(c.buf)
	lo, step := c.pos, 1
	for lo+step < n && c.buf[lo+step] < id {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.buf[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.pos = lo
	return lo < n && c.buf[lo] == id
}

// ordered returns the lists of ws smallest-first (ties by keyword id, the
// same total order Index.orderedLists uses); ok is false when a keyword is
// absent or empty.
func (p *Packed) ordered(ws []dataset.Keyword) (lists []bitpack.List, ok bool) {
	type entry struct {
		l bitpack.List
		w dataset.Keyword
	}
	entries := make([]entry, len(ws))
	for i, w := range ws {
		l, present := p.lists[w]
		if !present || l.N == 0 {
			return nil, false
		}
		entries[i] = entry{l, w}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].l.N != entries[b].l.N {
			return entries[a].l.N < entries[b].l.N
		}
		return entries[a].w < entries[b].w
	})
	lists = make([]bitpack.List, len(entries))
	for i, e := range entries {
		lists[i] = e.l
	}
	return lists, true
}

// IntersectInto answers a k-SI reporting query, appending the ids of objects
// containing every keyword to dst (ascending). The smallest list drives,
// decoded block by block; every other list advances through pcursors.
func (p *Packed) IntersectInto(dst []int32, ws []dataset.Keyword) []int32 {
	lists, ok := p.ordered(ws)
	if !ok || len(lists) == 0 {
		return dst
	}
	if len(lists) == 1 {
		return p.arena.UnpackInto(lists[0], dst)
	}
	cursors := make([]pcursor, len(lists)-1)
	for i := range cursors {
		cursors[i].blocks = p.arena.Blocks(lists[i+1])
	}
	var driver [bitpack.BlockSize]int32
	for _, b := range p.arena.Blocks(lists[0]) {
		// The rarest block still has to clear every other list's maxima:
		// when the block's whole window precedes cursor i's current
		// position there can be no match inside it — but cursors only move
		// forward, so the window check is per candidate below.
		buf := p.arena.DecodeBlock(b, driver[:0])
	candidates:
		for _, id := range buf {
			for i := range cursors {
				if !cursors[i].contains(&p.arena, id) {
					if cursors[i].bi >= len(cursors[i].blocks) {
						return dst // some list exhausted: nothing more can match
					}
					continue candidates
				}
			}
			dst = append(dst, id)
		}
	}
	return dst
}

// Intersect is IntersectInto with a fresh result slice.
func (p *Packed) Intersect(ws []dataset.Keyword) []int32 {
	if len(ws) == 0 {
		return nil
	}
	return p.IntersectInto(nil, ws)
}

// Empty answers a k-SI emptiness query without materializing results.
func (p *Packed) Empty(ws []dataset.Keyword) bool {
	if len(ws) == 0 {
		return true
	}
	lists, ok := p.ordered(ws)
	if !ok {
		return true
	}
	if len(lists) == 1 {
		return lists[0].N == 0
	}
	cursors := make([]pcursor, len(lists)-1)
	for i := range cursors {
		cursors[i].blocks = p.arena.Blocks(lists[i+1])
	}
	var driver [bitpack.BlockSize]int32
	for _, b := range p.arena.Blocks(lists[0]) {
		buf := p.arena.DecodeBlock(b, driver[:0])
	candidates:
		for _, id := range buf {
			for i := range cursors {
				if !cursors[i].contains(&p.arena, id) {
					if cursors[i].bi >= len(cursors[i].blocks) {
						return true
					}
					continue candidates
				}
			}
			return false
		}
	}
	return true
}

// KeywordsOnly is the packed form of the "keywords only" baseline: intersect
// the posting lists block-at-a-time, then discard objects outside q.
func (p *Packed) KeywordsOnly(q geom.Region, ws []dataset.Keyword) []int32 {
	ids := p.Intersect(ws)
	out := ids[:0]
	for _, id := range ids {
		if q.ContainsPoint(p.ds.Point(id)) {
			out = append(out, id)
		}
	}
	return out
}
