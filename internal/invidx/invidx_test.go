package invidx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

func buildRandom(rng *rand.Rand, n, vocab, docLen int) *dataset.Dataset {
	objs := make([]dataset.Object, n)
	for i := range objs {
		l := 1 + rng.Intn(docLen)
		doc := make([]dataset.Keyword, l)
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(vocab))
		}
		objs[i] = dataset.Object{
			Point: geom.Point{rng.Float64(), rng.Float64()},
			Doc:   doc,
		}
	}
	return dataset.MustNew(objs)
}

func bruteIntersect(ds *dataset.Dataset, ws []dataset.Keyword) []int32 {
	var out []int32
	for i := 0; i < ds.Len(); i++ {
		if ds.HasAll(int32(i), ws) {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestPostingListsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := buildRandom(rng, 200, 30, 6)
	ix := Build(ds)
	for w := 0; w < 30; w++ {
		l := ix.Posting(dataset.Keyword(w))
		if !sort.SliceIsSorted(l, func(a, b int) bool { return l[a] < l[b] }) {
			t.Fatalf("posting list %d not sorted", w)
		}
		if len(l) != ix.DocFrequency(dataset.Keyword(w)) {
			t.Fatal("DocFrequency disagrees with Posting length")
		}
	}
}

func TestIntersectMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := buildRandom(rng, 300, 20, 6)
	ix := Build(ds)
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(3)
		ws := make([]dataset.Keyword, 0, k)
		seen := map[dataset.Keyword]bool{}
		for len(ws) < k {
			w := dataset.Keyword(rng.Intn(20))
			if !seen[w] {
				seen[w] = true
				ws = append(ws, w)
			}
		}
		got := ix.Intersect(ws)
		want := bruteIntersect(ds, ws)
		if len(got) != len(want) {
			t.Fatalf("trial %d: intersect size %d, want %d", trial, len(got), len(want))
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: element %d mismatch", trial, i)
			}
		}
		if ix.Empty(ws) != (len(want) == 0) {
			t.Fatalf("trial %d: emptiness mismatch", trial)
		}
	}
}

func TestIntersectMissingKeyword(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := buildRandom(rng, 50, 10, 4)
	ix := Build(ds)
	if got := ix.Intersect([]dataset.Keyword{0, 9999}); got != nil {
		t.Fatalf("intersection with absent keyword = %v, want nil", got)
	}
	if !ix.Empty([]dataset.Keyword{0, 9999}) {
		t.Fatal("emptiness with absent keyword")
	}
	if got := ix.Intersect(nil); got != nil {
		t.Fatal("empty keyword list must yield nil")
	}
	if !ix.Empty(nil) {
		t.Fatal("empty keyword list is empty")
	}
}

func TestKeywordsOnlyBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := buildRandom(rng, 300, 15, 5)
	ix := Build(ds)
	for trial := 0; trial < 50; trial++ {
		q := geom.NewRect(
			[]float64{rng.Float64() * 0.5, rng.Float64() * 0.5},
			[]float64{0.5 + rng.Float64()*0.5, 0.5 + rng.Float64()*0.5},
		)
		ws := []dataset.Keyword{dataset.Keyword(rng.Intn(15)), dataset.Keyword(15 - 1 - rng.Intn(7))}
		if ws[0] == ws[1] {
			continue
		}
		got := ix.KeywordsOnly(q, ws)
		want := ds.Filter(q, ws)
		if len(got) != len(want) {
			t.Fatalf("trial %d: baseline size %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestScanCost(t *testing.T) {
	ds := dataset.MustNew([]dataset.Object{
		{Point: geom.Point{0, 0}, Doc: []dataset.Keyword{1, 2}},
		{Point: geom.Point{1, 1}, Doc: []dataset.Keyword{1}},
	})
	ix := Build(ds)
	if c := ix.ScanCost([]dataset.Keyword{1, 2}); c != 3 {
		t.Fatalf("ScanCost = %d, want 3", c)
	}
}

func TestSpaceWordsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := Build(buildRandom(rng, 100, 10, 4))
	if ix.SpaceWords() <= 0 {
		t.Fatal("SpaceWords must be positive")
	}
}

func TestGallopContains(t *testing.T) {
	l := []int32{2, 4, 8, 16, 32, 64}
	for _, v := range l {
		if !gallopContains(l, v) {
			t.Fatalf("missing %d", v)
		}
	}
	for _, v := range []int32{0, 3, 5, 100} {
		if gallopContains(l, v) {
			t.Fatalf("phantom %d", v)
		}
	}
	if gallopContains(nil, 1) {
		t.Fatal("empty list contains nothing")
	}
}

// Property: gallopContains agrees with linear search on sorted random lists.
func TestGallopContainsProperty(t *testing.T) {
	f := func(raw []int32, probes []int32) bool {
		l := append([]int32(nil), raw...)
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		for _, p := range probes {
			want := false
			for _, v := range l {
				if v == p {
					want = true
					break
				}
			}
			if gallopContains(l, p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
