package invidx

import (
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// naiveIntersect is the reference: sorted-merge over raw posting lists.
func naiveIntersect(lists [][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	out := append([]int32(nil), lists[0]...)
	for _, l := range lists[1:] {
		var next []int32
		i, j := 0, 0
		for i < len(out) && j < len(l) {
			switch {
			case out[i] < l[j]:
				i++
			case out[i] > l[j]:
				j++
			default:
				next = append(next, out[i])
				i++
				j++
			}
		}
		out = next
	}
	return out
}

func dsFromDocs(t *testing.T, docs [][]dataset.Keyword) *dataset.Dataset {
	t.Helper()
	objs := make([]dataset.Object, len(docs))
	for i, d := range docs {
		objs[i] = dataset.Object{Point: geom.Point{float64(i)}, Doc: d}
	}
	ds, err := dataset.New(objs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func checkIDs(t *testing.T, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d (got %v, want %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("id %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// crossCheck verifies raw, packed, and naive intersections agree.
func crossCheck(t *testing.T, ds *dataset.Dataset, ws []dataset.Keyword) {
	t.Helper()
	ix := Build(ds)
	p := ix.Pack()
	lists := make([][]int32, len(ws))
	empty := false
	for i, w := range ws {
		lists[i] = ix.Posting(w)
		if len(lists[i]) == 0 {
			empty = true
		}
	}
	var want []int32
	if !empty {
		want = naiveIntersect(lists)
	}
	checkIDs(t, ix.Intersect(ws), want)
	checkIDs(t, p.Intersect(ws), want)
	if gotEmpty := p.Empty(ws); gotEmpty != (len(want) == 0) {
		t.Fatalf("Empty(%v) = %v, want %v", ws, gotEmpty, len(want) == 0)
	}
}

func TestPackedEmptyPosting(t *testing.T) {
	ds := dsFromDocs(t, [][]dataset.Keyword{{1, 2}, {1, 3}, {2, 3}})
	crossCheck(t, ds, []dataset.Keyword{1, 99}) // 99 never occurs
	crossCheck(t, ds, []dataset.Keyword{1, 2})
	p := BuildPacked(ds)
	if got := p.Intersect([]dataset.Keyword{99, 100}); got != nil {
		t.Fatalf("absent keywords: got %v, want nil", got)
	}
	if got := p.Intersect(nil); got != nil {
		t.Fatalf("no keywords: got %v, want nil", got)
	}
	if !p.Empty([]dataset.Keyword{1, 99}) || !p.Empty(nil) {
		t.Fatal("Empty must be true for absent keywords and empty queries")
	}
}

func TestPackedSingletonBlocks(t *testing.T) {
	// Lists of length 1 (single singleton block) intersecting lists of
	// every size around the block boundary.
	docs := make([][]dataset.Keyword, 300)
	for i := range docs {
		docs[i] = []dataset.Keyword{1}
		if i == 137 {
			docs[i] = []dataset.Keyword{1, 2} // keyword 2: singleton list
		}
		if i == 0 || i == 299 {
			docs[i] = append(docs[i], 3) // keyword 3: two entries at the edges
		}
	}
	ds := dsFromDocs(t, docs)
	crossCheck(t, ds, []dataset.Keyword{1, 2})
	crossCheck(t, ds, []dataset.Keyword{2, 1})
	crossCheck(t, ds, []dataset.Keyword{1, 3})
	crossCheck(t, ds, []dataset.Keyword{2, 3}) // disjoint singletons
}

func TestPackedAllEqualDocs(t *testing.T) {
	// Every object carries the same document: all lists are identical and
	// full-length, so every id survives and every block decodes.
	for _, n := range []int{1, 127, 128, 129, 1000} {
		docs := make([][]dataset.Keyword, n)
		for i := range docs {
			docs[i] = []dataset.Keyword{5, 6, 7}
		}
		ds := dsFromDocs(t, docs)
		p := BuildPacked(ds)
		got := p.Intersect([]dataset.Keyword{5, 6, 7})
		if len(got) != n {
			t.Fatalf("n=%d: got %d ids, want all %d", n, len(got), n)
		}
		for i, id := range got {
			if id != int32(i) {
				t.Fatalf("n=%d: id[%d] = %d", n, i, id)
			}
		}
	}
}

func TestPackedAdversarialSkew(t *testing.T) {
	// One list of 1M sequential ids against one 3-element list: the packed
	// intersection must decode only the blocks around the three candidates,
	// not the megalist.
	const big = 1 << 20
	sparse := []int32{3, big / 2, big - 1}
	ix := &Index{postings: map[dataset.Keyword][]int32{}}
	bigList := make([]int32, big)
	for i := range bigList {
		bigList[i] = int32(i)
	}
	ix.postings[1] = bigList
	ix.postings[2] = sparse
	p := ix.Pack()
	got := p.Intersect([]dataset.Keyword{1, 2})
	checkIDs(t, got, sparse)
	got = p.Intersect([]dataset.Keyword{2, 1})
	checkIDs(t, got, sparse)
	if p.Empty([]dataset.Keyword{1, 2}) {
		t.Fatal("skewed intersection is non-empty")
	}
	// The reverse skew with no matches: sparse ids in the gaps.
	ix.postings[3] = []int32{}
	gap := make([]int32, 0, big/2)
	for i := 1; i < big; i += 2 {
		gap = append(gap, int32(i))
	}
	ix.postings[4] = gap // odd ids only
	ix.postings[5] = []int32{0, 2, big - 2}
	p = ix.Pack()
	if got := p.Intersect([]dataset.Keyword{4, 5}); len(got) != 0 {
		t.Fatalf("disjoint skew: got %v, want empty", got)
	}
	if !p.Empty([]dataset.Keyword{4, 5}) {
		t.Fatal("disjoint skew must be Empty")
	}
}

func TestPackedRandomCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(600)
		vocab := 4 + rng.Intn(10)
		docs := make([][]dataset.Keyword, n)
		for i := range docs {
			k := 1 + rng.Intn(4)
			seen := map[dataset.Keyword]bool{}
			for len(docs[i]) < k {
				w := dataset.Keyword(rng.Intn(vocab))
				if !seen[w] {
					seen[w] = true
					docs[i] = append(docs[i], w)
				}
			}
		}
		ds := dsFromDocs(t, docs)
		nws := 2 + rng.Intn(3)
		seen := map[dataset.Keyword]bool{}
		var ws []dataset.Keyword
		for len(ws) < nws {
			w := dataset.Keyword(rng.Intn(vocab + 1))
			if !seen[w] {
				seen[w] = true
				ws = append(ws, w)
			}
		}
		crossCheck(t, ds, ws)
	}
}

func TestPackedKeywordsOnlyMatchesRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	docs := make([][]dataset.Keyword, 500)
	for i := range docs {
		docs[i] = []dataset.Keyword{dataset.Keyword(rng.Intn(4)), 4 + dataset.Keyword(rng.Intn(4))}
	}
	ds := dsFromDocs(t, docs)
	ix := Build(ds)
	p := ix.Pack()
	q := geom.NewRect([]float64{100}, []float64{400})
	for a := dataset.Keyword(0); a < 4; a++ {
		for b := dataset.Keyword(4); b < 8; b++ {
			ws := []dataset.Keyword{a, b}
			checkIDs(t, p.KeywordsOnly(q, ws), ix.KeywordsOnly(q, ws))
		}
	}
}

func TestPackedSpaceSmallerOnDenseLists(t *testing.T) {
	// Dense sequential lists: deltas of 1 pack at ~1-2 bits per id, so the
	// packed arena must be far below the raw half-word-per-id footprint.
	docs := make([][]dataset.Keyword, 1<<14)
	for i := range docs {
		docs[i] = []dataset.Keyword{0, 1}
	}
	ds := dsFromDocs(t, docs)
	ix := Build(ds)
	p := ix.Pack()
	if raw, packed := ix.SpaceWords(), p.SpaceWords(); packed*4 > raw {
		t.Fatalf("packed %d words vs raw %d: expected >= 4x compression on dense lists", packed, raw)
	}
}

// The deterministic-ordering regression: equal-length lists must be ordered
// by keyword id, and any permutation of ws must produce the same list order
// (the satellite fix for the sort.Slice tie instability).
func TestOrderedListsDeterministic(t *testing.T) {
	docs := make([][]dataset.Keyword, 200)
	for i := range docs {
		docs[i] = []dataset.Keyword{0, 1, 2} // three identical-length lists
	}
	docs[0] = []dataset.Keyword{0, 1, 2, 3} // keyword 3: shorter list
	ds := dsFromDocs(t, docs)
	ix := Build(ds)
	perms := [][]dataset.Keyword{
		{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1},
	}
	var wantLens []int
	for pi, ws := range perms {
		lists, ok := ix.orderedLists(ws)
		if !ok {
			t.Fatal("all keywords present")
		}
		lens := make([]int, len(lists))
		for i, l := range lists {
			lens[i] = len(l)
		}
		// Smallest first; ties must come out in keyword order 0,1,2.
		if lens[0] != 1 {
			t.Fatalf("perm %d: shortest list not first: %v", pi, lens)
		}
		if pi == 0 {
			wantLens = lens
		} else {
			for i := range lens {
				if lens[i] != wantLens[i] {
					t.Fatalf("perm %d: ordering differs: %v vs %v", pi, lens, wantLens)
				}
			}
		}
		// The tie-broken tail must be exactly the postings of keywords 0,1,2.
		for i, w := range []dataset.Keyword{0, 1, 2} {
			got := lists[i+1]
			want := ix.Posting(w)
			if &got[0] != &want[0] {
				t.Fatalf("perm %d: tie position %d is not keyword %d's list", pi, i, w)
			}
		}
	}
	// The same Intersect answer, byte for byte, under every permutation.
	base := ix.Intersect(perms[0])
	packed := ix.Pack()
	for _, ws := range perms {
		checkIDs(t, ix.Intersect(ws), base)
		checkIDs(t, packed.Intersect(ws), base)
	}
}
