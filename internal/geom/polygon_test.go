package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() *Polygon { return NewSquare(0, 0, 1, 1) }

func TestPolygonContainsPoint(t *testing.T) {
	pg := unitSquare()
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0.5, 0.5}, true},
		{Point{0, 0}, true},   // vertex
		{Point{0.5, 0}, true}, // edge
		{Point{1.1, 0.5}, false},
		{Point{-0.1, 0.5}, false},
	}
	for i, c := range cases {
		if got := pg.ContainsPoint(c.p); got != c.want {
			t.Errorf("case %d: ContainsPoint(%v) = %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestPolygonEmpty(t *testing.T) {
	var nilPoly *Polygon
	if !nilPoly.Empty() {
		t.Fatal("nil polygon must be empty")
	}
	if !(&Polygon{}).Empty() {
		t.Fatal("zero polygon must be empty")
	}
	if unitSquare().Empty() {
		t.Fatal("unit square is not empty")
	}
}

func TestClipHalfplane(t *testing.T) {
	pg := unitSquare()
	// Keep x <= 0.5.
	clipped := pg.ClipHalfplane(Halfspace{Coef: []float64{1, 0}, Bound: 0.5})
	if clipped.Empty() {
		t.Fatal("clip should not empty the square")
	}
	if clipped.ContainsPoint(Point{0.75, 0.5}) {
		t.Fatal("clipped polygon still contains removed half")
	}
	if !clipped.ContainsPoint(Point{0.25, 0.5}) {
		t.Fatal("clipped polygon lost kept half")
	}
	// Clip away everything.
	gone := pg.ClipHalfplane(Halfspace{Coef: []float64{1, 0}, Bound: -1})
	if !gone.Empty() {
		t.Fatal("clip by external line should empty the polygon")
	}
	// Clip that keeps everything.
	all := pg.ClipHalfplane(Halfspace{Coef: []float64{1, 0}, Bound: 5})
	if len(all.V) != 4 {
		t.Fatalf("identity clip changed vertex count: %d", len(all.V))
	}
}

func TestClipLineBelowAbove(t *testing.T) {
	pg := unitSquare()
	below := pg.ClipLineBelow(0, 1, 0.5) // y <= 0.5
	above := pg.ClipLineAbove(0, 1, 0.5) // y >= 0.5
	if !below.ContainsPoint(Point{0.5, 0.25}) || below.ContainsPoint(Point{0.5, 0.75}) {
		t.Fatal("ClipLineBelow kept the wrong side")
	}
	if !above.ContainsPoint(Point{0.5, 0.75}) || above.ContainsPoint(Point{0.5, 0.25}) {
		t.Fatal("ClipLineAbove kept the wrong side")
	}
}

func TestRelatePolygonHalfspaces(t *testing.T) {
	pg := unitSquare()
	// Query region x + y <= 3 covers the square.
	if r := relatePolygonHalfspaces(pg, []Halfspace{{Coef: []float64{1, 1}, Bound: 3}}); r != Covered {
		t.Fatalf("want Covered, got %v", r)
	}
	// x + y <= -1 is disjoint.
	if r := relatePolygonHalfspaces(pg, []Halfspace{{Coef: []float64{1, 1}, Bound: -1}}); r != Disjoint {
		t.Fatalf("want Disjoint, got %v", r)
	}
	// x + y <= 1 crosses.
	if r := relatePolygonHalfspaces(pg, []Halfspace{{Coef: []float64{1, 1}, Bound: 1}}); r != Crossing {
		t.Fatalf("want Crossing, got %v", r)
	}
	// Empty polygon is always disjoint.
	if r := relatePolygonHalfspaces(&Polygon{}, nil); r != Disjoint {
		t.Fatalf("empty polygon: want Disjoint, got %v", r)
	}
}

func TestRectRelatePolygon(t *testing.T) {
	pg := unitSquare()
	if r := NewRect([]float64{-1, -1}, []float64{2, 2}).RelatePolygon(pg); r != Covered {
		t.Fatalf("want Covered, got %v", r)
	}
	if r := NewRect([]float64{2, 2}, []float64{3, 3}).RelatePolygon(pg); r != Disjoint {
		t.Fatalf("want Disjoint, got %v", r)
	}
	if r := NewRect([]float64{0.5, 0.5}, []float64{3, 3}).RelatePolygon(pg); r != Crossing {
		t.Fatalf("want Crossing, got %v", r)
	}
}

// Property: clipping preserves membership — a point is in clip(P, h) iff it
// is in P and satisfies h (up to boundary tolerance, so only strict interior
// points are sampled).
func TestClipMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		pg := NewSquare(0, 0, 1, 1)
		// Random halfplane through the square's vicinity.
		h := Halfspace{
			Coef:  []float64{rng.NormFloat64(), rng.NormFloat64()},
			Bound: rng.NormFloat64(),
		}
		clipped := pg.ClipHalfplane(h)
		for i := 0; i < 32; i++ {
			p := Point{rng.Float64(), rng.Float64()}
			margin := h.Eval(p) - h.Bound
			if margin > -1e-6 && margin < 1e-6 {
				continue // too close to the clip boundary to judge
			}
			want := margin < 0 // inside the square by construction
			got := clipped.ContainsPoint(p)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: successive clips commute with conjunction: clipping by h1 then
// h2 contains exactly the points satisfying both.
func TestDoubleClipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		h1 := Halfspace{Coef: []float64{rng.NormFloat64(), rng.NormFloat64()}, Bound: rng.Float64()}
		h2 := Halfspace{Coef: []float64{rng.NormFloat64(), rng.NormFloat64()}, Bound: rng.Float64()}
		c12 := unitSquare().ClipHalfplane(h1).ClipHalfplane(h2)
		c21 := unitSquare().ClipHalfplane(h2).ClipHalfplane(h1)
		for i := 0; i < 16; i++ {
			p := Point{rng.Float64(), rng.Float64()}
			m1, m2 := h1.Eval(p)-h1.Bound, h2.Eval(p)-h2.Bound
			if m1 > -1e-6 && m1 < 1e-6 || m2 > -1e-6 && m2 < 1e-6 {
				continue
			}
			want := m1 < 0 && m2 < 0
			if c12.ContainsPoint(p) != want || c21.ContainsPoint(p) != want {
				t.Fatalf("trial %d: clip order disagreement at %v", trial, p)
			}
		}
	}
}

func TestFanTriangulate(t *testing.T) {
	pg := NewSquare(0, 0, 2, 2)
	tris := pg.FanTriangulate()
	if len(tris) != 2 {
		t.Fatalf("square should give 2 triangles, got %d", len(tris))
	}
	// Union of triangles contains the square's points; sampled check.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := Point{rng.Float64() * 2, rng.Float64() * 2}
		in := false
		for _, tri := range tris {
			ph, err := tri.Polyhedron()
			if err != nil {
				t.Fatal(err)
			}
			if ph.ContainsPoint(p) {
				in = true
				break
			}
		}
		if !in {
			t.Fatalf("point %v lost by triangulation", p)
		}
	}
	if got := (&Polygon{V: []Point{{0, 0}, {1, 1}}}).FanTriangulate(); got != nil {
		t.Fatal("degenerate polygon must not triangulate")
	}
	if len(pg.Vertices()) != 4 {
		t.Fatal("Vertices accessor broken")
	}
}

func TestClipPolyhedron2D(t *testing.T) {
	ph := NewPolyhedron(
		Halfspace{Coef: []float64{1, 0}, Bound: 0.5},
		Halfspace{Coef: []float64{0, 1}, Bound: 0.5},
	)
	pg := ClipPolyhedron2D(ph, NewRect([]float64{0, 0}, []float64{1, 1}))
	if pg.Empty() {
		t.Fatal("clip emptied a quarter-square region")
	}
	if !pg.ContainsPoint(Point{0.25, 0.25}) || pg.ContainsPoint(Point{0.75, 0.75}) {
		t.Fatal("clipped region wrong")
	}
	// Infeasible system clips to empty.
	bad := NewPolyhedron(
		Halfspace{Coef: []float64{1, 0}, Bound: -1},
		Halfspace{Coef: []float64{-1, 0}, Bound: -1},
	)
	if !ClipPolyhedron2D(bad, NewRect([]float64{0, 0}, []float64{1, 1})).Empty() {
		t.Fatal("infeasible system must clip to empty")
	}
}
