package geom

import (
	"fmt"
	"math"

	"kwsc/internal/lp"
)

// Halfspace is a linear constraint sum_i Coef[i]*x[i] <= Bound, the query
// atom of the LC-KW problem (Section 1.1).
type Halfspace struct {
	Coef  []float64
	Bound float64
}

// Dim returns the dimensionality of the halfspace.
func (h Halfspace) Dim() int { return len(h.Coef) }

// Eval returns Coef . p.
func (h Halfspace) Eval(p Point) float64 {
	var s float64
	for i, c := range h.Coef {
		s += c * p[i]
	}
	return s
}

// Contains reports whether p satisfies the constraint (closed halfspace).
func (h Halfspace) Contains(p Point) bool { return h.Eval(p) <= h.Bound }

// On reports whether p lies on the boundary hyperplane within tolerance tol.
func (h Halfspace) On(p Point, tol float64) bool {
	return math.Abs(h.Eval(p)-h.Bound) <= tol
}

// maxOverRect returns max{Coef . x : x in [lo,hi]}, attained at the corner
// picking hi[i] when Coef[i] > 0 and lo[i] otherwise. Infinite bounds yield
// +Inf when the corresponding coefficient points that way.
func (h Halfspace) maxOverRect(lo, hi []float64) float64 {
	var s float64
	for i, c := range h.Coef {
		switch {
		case c > 0:
			s += c * hi[i]
		case c < 0:
			s += c * lo[i]
		}
	}
	return s
}

// minOverRect returns min{Coef . x : x in [lo,hi]}.
func (h Halfspace) minOverRect(lo, hi []float64) float64 {
	var s float64
	for i, c := range h.Coef {
		switch {
		case c > 0:
			s += c * lo[i]
		case c < 0:
			s += c * hi[i]
		}
	}
	return s
}

// Polyhedron is the intersection of a set of halfspaces: the query region of
// the LC-KW problem with s = O(1) constraints, and (via the d+1 facets of a
// simplex) of the SP-KW problem of Appendix D.
type Polyhedron struct {
	HS []Halfspace
}

// NewPolyhedron builds a polyhedron from halfspaces, validating dimensions.
func NewPolyhedron(hs ...Halfspace) *Polyhedron {
	if len(hs) == 0 {
		panic("geom: polyhedron needs at least one halfspace")
	}
	d := len(hs[0].Coef)
	for _, h := range hs {
		if len(h.Coef) != d {
			panic(fmt.Sprintf("geom: polyhedron halfspaces of mixed dimensions %d and %d", d, len(h.Coef)))
		}
	}
	return &Polyhedron{HS: hs}
}

// Dim returns the dimensionality of the polyhedron.
func (ph *Polyhedron) Dim() int { return len(ph.HS[0].Coef) }

// ContainsPoint implements Region.
func (ph *Polyhedron) ContainsPoint(p Point) bool {
	for _, h := range ph.HS {
		if !h.Contains(p) {
			return false
		}
	}
	return true
}

// RelateRect implements Region. Coverage is decided exactly by maximizing
// each constraint over the box; disjointness by linear-programming
// feasibility of {constraints} inside the box.
func (ph *Polyhedron) RelateRect(lo, hi []float64) Relation {
	covered := true
	for _, h := range ph.HS {
		if h.maxOverRect(lo, hi) > h.Bound {
			covered = false
			break
		}
	}
	if covered {
		return Covered
	}
	// Quick reject: a single constraint already unsatisfiable over the box.
	for _, h := range ph.HS {
		if h.minOverRect(lo, hi) > h.Bound {
			return Disjoint
		}
	}
	// Infinite box bounds cannot reach here from index cells (cells are
	// clipped to the data bounding box); clamp defensively for safety.
	flo, fhi := finiteBox(lo, hi)
	cons := make([]lp.Constraint, len(ph.HS))
	for i, h := range ph.HS {
		cons[i] = lp.Constraint{Coef: h.Coef, Bound: h.Bound}
	}
	if lp.FeasibleInBox(cons, flo, fhi) {
		return Crossing
	}
	return Disjoint
}

// RelatePolygon implements Region for 2D polygon cells by clipping.
func (ph *Polyhedron) RelatePolygon(poly *Polygon) Relation {
	return relatePolygonHalfspaces(poly, ph.HS)
}

// finiteBox replaces infinite bounds by a huge finite surrogate so the LP
// stays bounded.
func finiteBox(lo, hi []float64) ([]float64, []float64) {
	const big = 1e18
	fl := make([]float64, len(lo))
	fh := make([]float64, len(hi))
	for i := range lo {
		fl[i], fh[i] = lo[i], hi[i]
		if math.IsInf(fl[i], -1) {
			fl[i] = -big
		}
		if math.IsInf(fh[i], 1) {
			fh[i] = big
		}
	}
	return fl, fh
}
