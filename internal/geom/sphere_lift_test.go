package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSphereContainsPoint(t *testing.T) {
	s := NewSphere(Point{0, 0}, 1)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{1, 0}, true}, // boundary is closed
		{Point{0.7, 0.7}, true},
		{Point{0.8, 0.8}, false},
	}
	for i, c := range cases {
		if got := s.ContainsPoint(c.p); got != c.want {
			t.Errorf("case %d: ContainsPoint(%v) = %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestNewSphereNegativeRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSphere(Point{0, 0}, -1)
}

func TestSphereRelateRect(t *testing.T) {
	s := NewSphere(Point{0, 0}, 1)
	cases := []struct {
		lo, hi []float64
		want   Relation
	}{
		{[]float64{-0.5, -0.5}, []float64{0.5, 0.5}, Covered},
		{[]float64{2, 2}, []float64{3, 3}, Disjoint},
		{[]float64{0, 0}, []float64{2, 2}, Crossing},
		{[]float64{0.9, 0.9}, []float64{2, 2}, Disjoint}, // corner gap: nearest point (0.9,0.9) has norm > 1
	}
	for i, c := range cases {
		if got := s.RelateRect(c.lo, c.hi); got != c.want {
			t.Errorf("case %d: RelateRect = %v, want %v", i, got, c.want)
		}
	}
}

func TestSphereRelatePolygon(t *testing.T) {
	s := NewSphere(Point{0.5, 0.5}, 2)
	if r := s.RelatePolygon(NewSquare(0, 0, 1, 1)); r != Covered {
		t.Fatalf("want Covered, got %v", r)
	}
	far := NewSphere(Point{10, 10}, 1)
	if r := far.RelatePolygon(NewSquare(0, 0, 1, 1)); r != Disjoint {
		t.Fatalf("want Disjoint, got %v", r)
	}
	cross := NewSphere(Point{1, 0.5}, 0.3)
	if r := cross.RelatePolygon(NewSquare(0, 0, 1, 1)); r != Crossing {
		t.Fatalf("want Crossing, got %v", r)
	}
	// Center inside but boundary pokes out.
	poke := NewSphere(Point{0.5, 0.5}, 0.6)
	if r := poke.RelatePolygon(NewSquare(0, 0, 1, 1)); r != Crossing {
		t.Fatalf("want Crossing, got %v", r)
	}
	// Small sphere fully inside means the polygon crosses (not covered).
	inner := NewSphere(Point{0.5, 0.5}, 0.1)
	if r := inner.RelatePolygon(NewSquare(0, 0, 1, 1)); r != Crossing {
		t.Fatalf("want Crossing, got %v", r)
	}
	if r := s.RelatePolygon(&Polygon{}); r != Disjoint {
		t.Fatalf("empty polygon: want Disjoint, got %v", r)
	}
}

// The defining property of the lifting technique (Corollary 6): p lies in
// sphere B iff the lifted point satisfies the lifted halfspace.
func TestLiftMembershipProperty(t *testing.T) {
	f := func(px, py, cx, cy, r float64) bool {
		r = 0.1 + mod1(r)*3
		p := Point{mod1(px) * 4, mod1(py) * 4}
		s := NewSphere(Point{mod1(cx) * 4, mod1(cy) * 4}, r)
		h := LiftSphere(s)
		return s.ContainsPoint(p) == h.Contains(Lift(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLiftSphereSqMatchesLiftSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		c := Point{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		r := rng.Float64() * 5
		h1 := LiftSphere(NewSphere(c, r))
		h2 := LiftSphereSq(c, r*r)
		for j := range h1.Coef {
			if h1.Coef[j] != h2.Coef[j] {
				t.Fatal("coefficient mismatch")
			}
		}
		if h1.Bound != h2.Bound {
			t.Fatal("bound mismatch")
		}
	}
}

func TestLiftDimension(t *testing.T) {
	p := Point{3, 4}
	l := Lift(p)
	if len(l) != 3 {
		t.Fatalf("lift of R^2 point must be in R^3, got %d", len(l))
	}
	if l[2] != 25 {
		t.Fatalf("lifted coordinate = %v, want 25", l[2])
	}
}

func TestDistSqToSegment(t *testing.T) {
	cases := []struct {
		p, a, b Point
		want    float64
	}{
		{Point{0, 1}, Point{-1, 0}, Point{1, 0}, 1}, // perpendicular to middle
		{Point{2, 0}, Point{-1, 0}, Point{1, 0}, 1}, // beyond endpoint
		{Point{0, 0}, Point{-1, 0}, Point{1, 0}, 0}, // on segment
		{Point{5, 5}, Point{1, 1}, Point{1, 1}, 32}, // degenerate segment
	}
	for i, c := range cases {
		if got := distSqToSegment(c.p, c.a, c.b); got != c.want {
			t.Errorf("case %d: distSq = %v, want %v", i, got, c.want)
		}
	}
}

func mod1(x float64) float64 {
	m := math.Mod(math.Abs(x), 1)
	if math.IsNaN(m) {
		return 0
	}
	return m
}
