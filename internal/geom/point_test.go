package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDim(t *testing.T) {
	if d := (Point{1, 2, 3}).Dim(); d != 3 {
		t.Fatalf("Dim = %d, want 3", d)
	}
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	if !p.Equal(Point{1, 2}) {
		t.Fatal("original mutated")
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 3}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
}

func TestPointDot(t *testing.T) {
	if v := (Point{1, 2, 3}).Dot(Point{4, 5, 6}); v != 32 {
		t.Fatalf("Dot = %v, want 32", v)
	}
}

func TestPointDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	_ = (Point{1}).Dot(Point{1, 2})
}

func TestPointArithmetic(t *testing.T) {
	a, b := Point{3, 4}, Point{1, 1}
	if !a.Sub(b).Equal(Point{2, 3}) {
		t.Fatal("Sub wrong")
	}
	if !a.Add(b).Equal(Point{4, 5}) {
		t.Fatal("Add wrong")
	}
	if !a.Scale(2).Equal(Point{6, 8}) {
		t.Fatal("Scale wrong")
	}
}

func TestLInf(t *testing.T) {
	p, q := Point{0, 0}, Point{3, -4}
	if d := p.LInf(q); d != 4 {
		t.Fatalf("LInf = %v, want 4", d)
	}
	if d := p.LInf(p); d != 0 {
		t.Fatalf("LInf self = %v, want 0", d)
	}
}

func TestL2(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if d := p.L2(q); d != 5 {
		t.Fatalf("L2 = %v, want 5", d)
	}
	if d2 := p.L2Sq(q); d2 != 25 {
		t.Fatalf("L2Sq = %v, want 25", d2)
	}
}

// The L∞ distance is a constant-factor approximation of L2 (the observation
// behind Corollary 4's approximation interpretation):
// LInf <= L2 <= sqrt(d) * LInf.
func TestMetricSandwichProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		bound := func(x float64) float64 { return math.Mod(x, 1e6) }
		p, q := Point{bound(ax), bound(ay)}, Point{bound(bx), bound(by)}
		linf, l2 := p.LInf(q), p.L2(q)
		return linf <= l2+1e-9 && l2 <= math.Sqrt2*linf+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelationString(t *testing.T) {
	for r, want := range map[Relation]string{
		Disjoint: "disjoint", Crossing: "crossing", Covered: "covered",
	} {
		if got := r.String(); got != want {
			t.Errorf("Relation(%d).String() = %q, want %q", r, got, want)
		}
	}
	if got := Relation(9).String(); got != "Relation(9)" {
		t.Errorf("unknown relation formats as %q", got)
	}
}

func TestFullSpace(t *testing.T) {
	var fs FullSpace
	if !fs.ContainsPoint(Point{1e18, -1e18}) {
		t.Fatal("FullSpace must contain everything")
	}
	if fs.RelateRect([]float64{0}, []float64{1}) != Covered {
		t.Fatal("FullSpace must cover any rect")
	}
	if fs.RelatePolygon(NewSquare(0, 0, 1, 1)) != Covered {
		t.Fatal("FullSpace must cover any polygon")
	}
}
