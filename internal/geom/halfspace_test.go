package geom

import (
	"math/rand"
	"testing"
)

func TestHalfspaceEvalContains(t *testing.T) {
	h := Halfspace{Coef: []float64{1, 2}, Bound: 4}
	if v := h.Eval(Point{1, 1}); v != 3 {
		t.Fatalf("Eval = %v, want 3", v)
	}
	if !h.Contains(Point{0, 2}) { // boundary
		t.Fatal("boundary point must be contained (closed halfspace)")
	}
	if h.Contains(Point{5, 0}) {
		t.Fatal("exterior point contained")
	}
	if !h.On(Point{0, 2}, 1e-12) {
		t.Fatal("On should detect boundary point")
	}
	if h.On(Point{0, 0}, 1e-12) {
		t.Fatal("On should reject interior point")
	}
}

func TestHalfspaceRectExtremes(t *testing.T) {
	h := Halfspace{Coef: []float64{1, -2}, Bound: 0}
	lo, hi := []float64{0, 0}, []float64{3, 5}
	if v := h.maxOverRect(lo, hi); v != 3 { // x=3, y=0
		t.Fatalf("maxOverRect = %v, want 3", v)
	}
	if v := h.minOverRect(lo, hi); v != -10 { // x=0, y=5
		t.Fatalf("minOverRect = %v, want -10", v)
	}
}

func TestPolyhedronValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mixed dimensions")
		}
	}()
	NewPolyhedron(
		Halfspace{Coef: []float64{1}, Bound: 0},
		Halfspace{Coef: []float64{1, 2}, Bound: 0},
	)
}

func TestPolyhedronEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for no halfspaces")
		}
	}()
	NewPolyhedron()
}

func TestPolyhedronRelateRect(t *testing.T) {
	// Triangle x >= 0, y >= 0, x + y <= 1.
	ph := NewPolyhedron(
		Halfspace{Coef: []float64{-1, 0}, Bound: 0},
		Halfspace{Coef: []float64{0, -1}, Bound: 0},
		Halfspace{Coef: []float64{1, 1}, Bound: 1},
	)
	cases := []struct {
		lo, hi []float64
		want   Relation
	}{
		{[]float64{0.1, 0.1}, []float64{0.2, 0.2}, Covered},
		{[]float64{2, 2}, []float64{3, 3}, Disjoint},
		{[]float64{0.4, 0.4}, []float64{0.8, 0.8}, Crossing},
		// Box whose corners all lie outside but which still intersects the
		// triangle through an edge — the LP feasibility path.
		{[]float64{0.4, -1}, []float64{0.6, 2}, Crossing},
		// Box beyond the hypotenuse but overlapping its bounding box.
		{[]float64{0.9, 0.9}, []float64{1.5, 1.5}, Disjoint},
	}
	for i, c := range cases {
		if got := ph.RelateRect(c.lo, c.hi); got != c.want {
			t.Errorf("case %d: RelateRect = %v, want %v", i, got, c.want)
		}
	}
}

func TestPolyhedronRelateRect3D(t *testing.T) {
	// Halfspace x + y + z <= 1 in R^3 (the shape lifting produces).
	ph := NewPolyhedron(Halfspace{Coef: []float64{1, 1, 1}, Bound: 1})
	if r := ph.RelateRect([]float64{0, 0, 0}, []float64{0.3, 0.3, 0.3}); r != Covered {
		t.Fatalf("want Covered, got %v", r)
	}
	if r := ph.RelateRect([]float64{1, 1, 1}, []float64{2, 2, 2}); r != Disjoint {
		t.Fatalf("want Disjoint, got %v", r)
	}
	if r := ph.RelateRect([]float64{0, 0, 0}, []float64{1, 1, 1}); r != Crossing {
		t.Fatalf("want Crossing, got %v", r)
	}
}

// Property: RelateRect never returns Disjoint when a sampled point of the
// box lies in the polyhedron, and never Covered when a sampled point of the
// box lies outside — the one-sided errors that would break index pruning.
func TestPolyhedronRelateRectSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		d := 2 + rng.Intn(2)
		s := 1 + rng.Intn(3)
		hs := make([]Halfspace, s)
		for i := range hs {
			coef := make([]float64, d)
			for j := range coef {
				coef[j] = rng.NormFloat64()
			}
			hs[i] = Halfspace{Coef: coef, Bound: rng.NormFloat64()}
		}
		ph := NewPolyhedron(hs...)
		lo := make([]float64, d)
		hi := make([]float64, d)
		for j := 0; j < d; j++ {
			lo[j] = rng.NormFloat64()
			hi[j] = lo[j] + rng.Float64()*2
		}
		rel := ph.RelateRect(lo, hi)
		for i := 0; i < 32; i++ {
			p := make(Point, d)
			for j := 0; j < d; j++ {
				p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
			in := ph.ContainsPoint(p)
			if rel == Disjoint && in {
				t.Fatalf("trial %d: Disjoint but %v is inside", trial, p)
			}
			if rel == Covered && !in {
				t.Fatalf("trial %d: Covered but %v is outside", trial, p)
			}
		}
	}
}
