// Package geom provides the geometric primitives and predicates used by the
// keyword-search indexes: points, d-rectangles, halfspaces, convex polyhedra,
// 2D convex polygons, d-simplices, and spheres, together with the
// containment/intersection tests the index-transformation framework relies
// on (Sections 3 and 4 and Appendices D and F of Lu & Tao, PODS 2023).
//
// All coordinates are float64. Rectangles may have infinite extents, which is
// how the reductions in Appendix F express half-open query ranges.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in R^d, represented by its d coordinates.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dot returns the inner product of p and q, which must share a dimension.
func (p Point) Dot(q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dot product of mismatched dimensions %d and %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Sub returns p - q as a new point.
func (p Point) Sub(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Add returns p + q as a new point.
func (p Point) Add(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Scale returns c*p as a new point.
func (p Point) Scale(c float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = c * p[i]
	}
	return r
}

// LInf returns the L-infinity distance between p and q (footnote 2 of the
// paper): max_i |p[i]-q[i]|.
func (p Point) LInf(q Point) float64 {
	var m float64
	for i := range p {
		d := math.Abs(p[i] - q[i])
		if d > m {
			m = d
		}
	}
	return m
}

// L2Sq returns the squared Euclidean distance between p and q.
func (p Point) L2Sq(q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// L2 returns the Euclidean distance between p and q.
func (p Point) L2(q Point) float64 { return math.Sqrt(p.L2Sq(q)) }

// Relation classifies how a query region relates to an index cell.
type Relation int8

const (
	// Disjoint means the region and the cell have no common point.
	Disjoint Relation = iota
	// Crossing means the region intersects the cell but does not cover it
	// (the "crossing node" case of Section 3.3).
	Crossing
	// Covered means the cell is fully contained in the region
	// (the "covered node" case of Section 3.3).
	Covered
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case Disjoint:
		return "disjoint"
	case Crossing:
		return "crossing"
	case Covered:
		return "covered"
	default:
		return fmt.Sprintf("Relation(%d)", int8(r))
	}
}

// Region is a query region: any set of points against which cells and points
// can be classified. Rect, Polyhedron, Sphere and FullSpace implement it.
type Region interface {
	// ContainsPoint reports whether p lies in the (closed) region.
	ContainsPoint(p Point) bool
	// RelateRect classifies the region against the axis-aligned box
	// [lo[0],hi[0]] x ... x [lo[d-1],hi[d-1]] (bounds may be infinite).
	RelateRect(lo, hi []float64) Relation
	// RelatePolygon classifies the region against a 2D convex polygon cell.
	RelatePolygon(poly *Polygon) Relation
}

// FullSpace is the query region covering all of R^d. It is how a "pure"
// keyword-search query (the k-SI reduction of Section 1.2) is expressed: a
// search rectangle q := R^d.
type FullSpace struct{}

// ContainsPoint always reports true.
func (FullSpace) ContainsPoint(Point) bool { return true }

// RelateRect always reports Covered.
func (FullSpace) RelateRect(lo, hi []float64) Relation { return Covered }

// RelatePolygon always reports Covered.
func (FullSpace) RelatePolygon(*Polygon) Relation { return Covered }
