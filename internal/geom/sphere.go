package geom

import "fmt"

// Sphere is a closed ball {x : ||x - Center||_2 <= Radius}, the query region
// of the SRP-KW problem (Section 1.1).
type Sphere struct {
	Center Point
	Radius float64
}

// NewSphere validates and returns the sphere.
func NewSphere(center Point, radius float64) *Sphere {
	if radius < 0 {
		panic(fmt.Sprintf("geom: negative sphere radius %v", radius))
	}
	return &Sphere{Center: center, Radius: radius}
}

// Dim returns the ambient dimension.
func (s *Sphere) Dim() int { return len(s.Center) }

// ContainsPoint implements Region.
func (s *Sphere) ContainsPoint(p Point) bool {
	return s.Center.L2Sq(p) <= s.Radius*s.Radius
}

// RelateRect implements Region, exactly: the nearest and farthest points of
// a box from the center are computed per coordinate.
func (s *Sphere) RelateRect(lo, hi []float64) Relation {
	r2 := s.Radius * s.Radius
	var near, far float64
	for i, c := range s.Center {
		dLo, dHi := lo[i]-c, hi[i]-c
		// Nearest coordinate offset.
		switch {
		case dLo > 0:
			near += dLo * dLo
		case dHi < 0:
			near += dHi * dHi
		}
		// Farthest coordinate offset.
		a, b := dLo*dLo, dHi*dHi
		if a > b {
			far += a
		} else {
			far += b
		}
	}
	switch {
	case near > r2:
		return Disjoint
	case far <= r2:
		return Covered
	default:
		return Crossing
	}
}

// RelatePolygon implements Region for 2D polygon cells: covered when every
// vertex is inside; disjoint when the center's distance to the polygon
// exceeds the radius; crossing otherwise.
func (s *Sphere) RelatePolygon(poly *Polygon) Relation {
	if poly.Empty() {
		return Disjoint
	}
	covered := true
	r2 := s.Radius * s.Radius
	for _, v := range poly.V {
		if s.Center.L2Sq(v) > r2 {
			covered = false
			break
		}
	}
	if covered {
		return Covered
	}
	if poly.ContainsPoint(s.Center) {
		return Crossing
	}
	// Distance from center to the polygon boundary.
	n := len(poly.V)
	for i := 0; i < n; i++ {
		if distSqToSegment(s.Center, poly.V[i], poly.V[(i+1)%n]) <= r2 {
			return Crossing
		}
	}
	return Disjoint
}

func distSqToSegment(p, a, b Point) float64 {
	ax, ay := b[0]-a[0], b[1]-a[1]
	px, py := p[0]-a[0], p[1]-a[1]
	den := ax*ax + ay*ay
	t := 0.0
	if den > 0 {
		t = (px*ax + py*ay) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx, dy := px-t*ax, py-t*ay
	return dx*dx + dy*dy
}
