package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	NewRect([]float64{1}, []float64{0})
}

func TestNewRectDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched dims")
		}
	}()
	NewRect([]float64{0, 0}, []float64{1})
}

func TestRectContainsPoint(t *testing.T) {
	r := NewRect([]float64{0, 0}, []float64{1, 2})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0.5, 1}, true},
		{Point{0, 0}, true}, // closed at the low corner
		{Point{1, 2}, true}, // closed at the high corner
		{Point{1.01, 1}, false},
		{Point{0.5, -0.01}, false},
	}
	for i, c := range cases {
		if got := r.ContainsPoint(c.p); got != c.want {
			t.Errorf("case %d: ContainsPoint(%v) = %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestUniverseRect(t *testing.T) {
	u := UniverseRect(3)
	if !u.ContainsPoint(Point{1e300, -1e300, 0}) {
		t.Fatal("universe must contain everything")
	}
	if u.RelateRect([]float64{0, 0, 0}, []float64{1, 1, 1}) != Covered {
		t.Fatal("universe must cover any box")
	}
}

func TestRectRelateRect(t *testing.T) {
	r := NewRect([]float64{0, 0}, []float64{10, 10})
	cases := []struct {
		lo, hi []float64
		want   Relation
	}{
		{[]float64{2, 2}, []float64{3, 3}, Covered},
		{[]float64{-5, -5}, []float64{-1, -1}, Disjoint},
		{[]float64{-5, -5}, []float64{5, 5}, Crossing},
		{[]float64{0, 0}, []float64{10, 10}, Covered},    // identical
		{[]float64{10, 10}, []float64{11, 11}, Crossing}, // touching corner
		{[]float64{10.0001, 0}, []float64{11, 1}, Disjoint},
	}
	for i, c := range cases {
		if got := r.RelateRect(c.lo, c.hi); got != c.want {
			t.Errorf("case %d: RelateRect = %v, want %v", i, got, c.want)
		}
	}
}

func TestRectHalfspacesEquivalence(t *testing.T) {
	r := NewRect([]float64{0, -1}, []float64{2, 3})
	ph := NewPolyhedron(r.Halfspaces()...)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := Point{rng.Float64()*6 - 2, rng.Float64()*8 - 3}
		if r.ContainsPoint(p) != ph.ContainsPoint(p) {
			t.Fatalf("halfspace conversion disagrees at %v", p)
		}
	}
}

func TestRectHalfspacesOmitInfinite(t *testing.T) {
	r := &Rect{Lo: []float64{math.Inf(-1), 0}, Hi: []float64{5, math.Inf(1)}}
	hs := r.Halfspaces()
	if len(hs) != 2 {
		t.Fatalf("want 2 finite halfspaces, got %d", len(hs))
	}
}

func TestRectCenterCloneString(t *testing.T) {
	r := NewRect([]float64{0, 2}, []float64{4, 6})
	if !r.Center().Equal(Point{2, 4}) {
		t.Fatalf("Center = %v", r.Center())
	}
	c := r.Clone()
	c.Lo[0] = -1
	if r.Lo[0] != 0 {
		t.Fatal("Clone aliases")
	}
	if r.String() != "[0,4] x [2,6]" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r := BoundingRect(pts)
	if r.Lo[0] != -2 || r.Lo[1] != -1 || r.Hi[0] != 4 || r.Hi[1] != 5 {
		t.Fatalf("BoundingRect = %v", r)
	}
	for _, p := range pts {
		if !r.ContainsPoint(p) {
			t.Fatalf("bounding rect misses %v", p)
		}
	}
}

func TestBoundingRectEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoundingRect(nil)
}

// Property: RelateRect is consistent with corner membership — Covered means
// all corners of the box are inside; Disjoint means no sampled point of the
// box is inside.
func TestRectRelateConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		mk := func() *Rect {
			lo := []float64{rng.Float64() * 4, rng.Float64() * 4}
			hi := []float64{lo[0] + rng.Float64()*3, lo[1] + rng.Float64()*3}
			return &Rect{Lo: lo, Hi: hi}
		}
		q, c := mk(), mk()
		rel := q.RelateRect(c.Lo, c.Hi)
		corners := []Point{
			{c.Lo[0], c.Lo[1]}, {c.Lo[0], c.Hi[1]},
			{c.Hi[0], c.Lo[1]}, {c.Hi[0], c.Hi[1]},
		}
		inside := 0
		for _, p := range corners {
			if q.ContainsPoint(p) {
				inside++
			}
		}
		switch rel {
		case Covered:
			return inside == 4
		case Disjoint:
			// Sample interior points.
			for i := 0; i < 16; i++ {
				p := Point{
					c.Lo[0] + rng.Float64()*(c.Hi[0]-c.Lo[0]),
					c.Lo[1] + rng.Float64()*(c.Hi[1]-c.Lo[1]),
				}
				if q.ContainsPoint(p) {
					return false
				}
			}
			return true
		default:
			return true
		}
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
