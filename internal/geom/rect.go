package geom

import (
	"fmt"
	"math"
	"strings"
)

// Rect is a closed d-rectangle [Lo[0],Hi[0]] x ... x [Lo[d-1],Hi[d-1]]
// (footnote 1 of the paper). Bounds may be -Inf/+Inf, which the Appendix F
// reductions use for half-open ranges.
type Rect struct {
	Lo, Hi []float64
}

// NewRect returns the rectangle with the given bounds. It panics if the
// slices have different lengths or if some Lo[i] > Hi[i] (an empty
// rectangle must be represented explicitly by the caller, never passed as a
// query).
func NewRect(lo, hi []float64) *Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: rect bounds of mismatched dimensions %d and %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: empty rectangle on dimension %d: [%v,%v]", i, lo[i], hi[i]))
		}
	}
	return &Rect{Lo: lo, Hi: hi}
}

// UniverseRect returns the rectangle covering all of R^d.
func UniverseRect(d int) *Rect {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	return &Rect{Lo: lo, Hi: hi}
}

// Dim returns the dimensionality of the rectangle.
func (r *Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r *Rect) Clone() *Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return &Rect{Lo: lo, Hi: hi}
}

// String implements fmt.Stringer.
func (r *Rect) String() string {
	var b strings.Builder
	for i := range r.Lo {
		if i > 0 {
			b.WriteString(" x ")
		}
		fmt.Fprintf(&b, "[%g,%g]", r.Lo[i], r.Hi[i])
	}
	return b.String()
}

// ContainsPoint reports whether p lies in the closed rectangle.
func (r *Rect) ContainsPoint(p Point) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether the box [lo,hi] is fully inside r.
func (r *Rect) ContainsRect(lo, hi []float64) bool {
	for i := range r.Lo {
		if lo[i] < r.Lo[i] || hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// IntersectsRect reports whether r and the box [lo,hi] share a point.
func (r *Rect) IntersectsRect(lo, hi []float64) bool {
	for i := range r.Lo {
		if hi[i] < r.Lo[i] || lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// RelateRect implements Region.
func (r *Rect) RelateRect(lo, hi []float64) Relation {
	if !r.IntersectsRect(lo, hi) {
		return Disjoint
	}
	if r.ContainsRect(lo, hi) {
		return Covered
	}
	return Crossing
}

// RelatePolygon implements Region: the rectangle is treated as the
// intersection of up to 2d halfplanes and related to the polygon by clipping.
func (r *Rect) RelatePolygon(poly *Polygon) Relation {
	return relatePolygonHalfspaces(poly, r.Halfspaces())
}

// Halfspaces returns the rectangle as a conjunction of linear constraints,
// omitting infinite bounds. This is the observation of Section 1.1 that a
// d-rectangle is the conjunction of at most 2d = O(1) linear constraints.
func (r *Rect) Halfspaces() []Halfspace {
	d := len(r.Lo)
	hs := make([]Halfspace, 0, 2*d)
	for i := 0; i < d; i++ {
		if !math.IsInf(r.Lo[i], -1) {
			c := make([]float64, d)
			c[i] = -1
			hs = append(hs, Halfspace{Coef: c, Bound: -r.Lo[i]})
		}
		if !math.IsInf(r.Hi[i], 1) {
			c := make([]float64, d)
			c[i] = 1
			hs = append(hs, Halfspace{Coef: c, Bound: r.Hi[i]})
		}
	}
	return hs
}

// Center returns the center point of a finite rectangle.
func (r *Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// BoundingRect returns the smallest rectangle covering all the given points.
// It panics if pts is empty.
func BoundingRect(pts []Point) *Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	d := len(pts[0])
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, pts[0])
	copy(hi, pts[0])
	for _, p := range pts[1:] {
		for i := 0; i < d; i++ {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	return &Rect{Lo: lo, Hi: hi}
}
