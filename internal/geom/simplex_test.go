package geom

import (
	"math/rand"
	"testing"
)

func TestSimplexValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong vertex count")
		}
	}()
	NewSimplex(Point{0, 0}, Point{1, 0}) // a 2-simplex needs 3 vertices
}

func TestSimplexPolyhedron2D(t *testing.T) {
	tri := NewSimplex(Point{0, 0}, Point{4, 0}, Point{0, 4})
	ph, err := tri.Polyhedron()
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.HS) != 3 {
		t.Fatalf("triangle should yield 3 halfspaces, got %d", len(ph.HS))
	}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true}, // vertex
		{Point{2, 2}, true}, // on hypotenuse
		{Point{3, 3}, false},
		{Point{-0.1, 1}, false},
		{Point{1, -0.1}, false},
	}
	for i, c := range cases {
		if got := ph.ContainsPoint(c.p); got != c.want {
			t.Errorf("case %d: ContainsPoint(%v) = %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestSimplexPolyhedron3D(t *testing.T) {
	tet := NewSimplex(Point{0, 0, 0}, Point{2, 0, 0}, Point{0, 2, 0}, Point{0, 0, 2})
	ph, err := tet.Polyhedron()
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.HS) != 4 {
		t.Fatalf("tetrahedron should yield 4 halfspaces, got %d", len(ph.HS))
	}
	if !ph.ContainsPoint(Point{0.3, 0.3, 0.3}) {
		t.Fatal("interior point rejected")
	}
	if ph.ContainsPoint(Point{1, 1, 1}) {
		t.Fatal("exterior point accepted")
	}
	// Barycenter is interior.
	if !ph.ContainsPoint(Point{0.5, 0.5, 0.5}) {
		t.Fatal("barycenter rejected")
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// A facet with coincident vertices is rank-deficient and must error.
	deg := NewSimplex(Point{0, 0}, Point{1, 1}, Point{1, 1})
	if _, err := deg.Polyhedron(); err == nil {
		t.Fatal("expected error for a simplex with coincident vertices")
	}
	// A collinear (measure-zero) simplex is permitted: lifting produces
	// degenerate simplices on purpose (Corollary 6). Its polyhedron is the
	// segment's affine hull intersected with the edge constraints.
	flat := NewSimplex(Point{0, 0}, Point{1, 1}, Point{2, 2})
	if ph, err := flat.Polyhedron(); err != nil {
		t.Fatalf("collinear simplex should build: %v", err)
	} else if !ph.ContainsPoint(Point{1, 1}) {
		t.Fatal("collinear simplex must contain its own vertices")
	}
}

// Property: barycentric sampling — convex combinations of the vertices are
// inside the facet polyhedron; points pushed past a vertex are outside.
func TestSimplexBarycentricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		v := []Point{
			{rng.NormFloat64() * 3, rng.NormFloat64() * 3},
			{rng.NormFloat64() * 3, rng.NormFloat64() * 3},
			{rng.NormFloat64() * 3, rng.NormFloat64() * 3},
		}
		// Skip nearly-degenerate triangles.
		area := (v[1][0]-v[0][0])*(v[2][1]-v[0][1]) - (v[1][1]-v[0][1])*(v[2][0]-v[0][0])
		if area < 0.1 && area > -0.1 {
			continue
		}
		ph, err := NewSimplex(v...).Polyhedron()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 20; i++ {
			a, b := rng.Float64(), rng.Float64()
			if a+b > 1 {
				a, b = 1-a, 1-b
			}
			c := 1 - a - b
			p := Point{
				a*v[0][0] + b*v[1][0] + c*v[2][0],
				a*v[0][1] + b*v[1][1] + c*v[2][1],
			}
			if !ph.ContainsPoint(p) {
				t.Fatalf("trial %d: barycentric point %v rejected", trial, p)
			}
		}
		// Reflect vertex 0 through the opposite edge midpoint: outside.
		mid := Point{(v[1][0] + v[2][0]) / 2, (v[1][1] + v[2][1]) / 2}
		out := Point{2*mid[0] - v[0][0] + (mid[0] - v[0][0]), 2*mid[1] - v[0][1] + (mid[1] - v[0][1])}
		if ph.ContainsPoint(out) {
			t.Fatalf("trial %d: reflected exterior point %v accepted", trial, out)
		}
	}
}

func TestNullVectorOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		d := 2 + rng.Intn(3) // dims 2..4
		rows := make([][]float64, d-1)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		n, ok := nullVector(rows, d)
		if !ok {
			continue // random rank deficiency is astronomically unlikely but legal
		}
		for i, r := range rows {
			var dot float64
			for j := range r {
				dot += r[j] * n[j]
			}
			if dot > 1e-8 || dot < -1e-8 {
				t.Fatalf("trial %d: row %d not orthogonal (dot=%v)", trial, i, dot)
			}
		}
	}
}
