package geom

import "math"

// Polygon is a convex polygon in R^2 given by its vertices in counterclockwise
// order. Polygons are the node cells of the Willard partition tree
// (Appendix D substrate): each child cell is the parent polygon clipped by
// one or two splitting lines.
type Polygon struct {
	V []Point // CCW vertices; len >= 3 for a proper polygon
}

// NewSquare returns the axis-aligned square [lo.x,hi.x] x [lo.y,hi.y] as a
// polygon (used as the finite root cell clipped to the data's bounding box).
func NewSquare(lox, loy, hix, hiy float64) *Polygon {
	return &Polygon{V: []Point{
		{lox, loy}, {hix, loy}, {hix, hiy}, {lox, hiy},
	}}
}

// Empty reports whether the polygon has no area-carrying vertex set.
func (pg *Polygon) Empty() bool { return pg == nil || len(pg.V) == 0 }

// ContainsPoint reports whether p lies in the closed polygon. Clipping can
// produce degenerate polygons (a point or a segment); those contain exactly
// the points on them, not the whole plane.
func (pg *Polygon) ContainsPoint(p Point) bool {
	if pg.Empty() {
		return false
	}
	n := len(pg.V)
	switch n {
	case 1:
		a := pg.V[0]
		dx, dy := p[0]-a[0], p[1]-a[1]
		return dx*dx+dy*dy <= polyEps*edgeScale(a, a, p)
	case 2:
		return distSqToSegment(p, pg.V[0], pg.V[1]) <= polyEps*edgeScale(pg.V[0], pg.V[1], p)
	}
	for i := 0; i < n; i++ {
		a, b := pg.V[i], pg.V[(i+1)%n]
		// CCW: interior is to the left of each directed edge a->b.
		if cross2(b[0]-a[0], b[1]-a[1], p[0]-a[0], p[1]-a[1]) < -polyEps*edgeScale(a, b, p) {
			return false
		}
	}
	return true
}

// ClipHalfplane returns the polygon clipped to {x : h.Coef . x <= h.Bound}
// via Sutherland–Hodgman. The result may be empty.
func (pg *Polygon) ClipHalfplane(h Halfspace) *Polygon {
	if pg.Empty() {
		return &Polygon{}
	}
	n := len(pg.V)
	out := make([]Point, 0, n+1)
	for i := 0; i < n; i++ {
		cur, nxt := pg.V[i], pg.V[(i+1)%n]
		cIn := h.Eval(cur) <= h.Bound+polyEps*hsScale(h, cur)
		nIn := h.Eval(nxt) <= h.Bound+polyEps*hsScale(h, nxt)
		if cIn {
			out = append(out, cur)
		}
		if cIn != nIn {
			if ip, ok := lineCross(cur, nxt, h); ok {
				out = append(out, ip)
			}
		}
	}
	return &Polygon{V: dedupeVerts(out)}
}

// ClipLineBelow / ClipLineAbove clip by the line a*x + b*y = c keeping the
// side <= c or >= c respectively.
func (pg *Polygon) ClipLineBelow(a, b, c float64) *Polygon {
	return pg.ClipHalfplane(Halfspace{Coef: []float64{a, b}, Bound: c})
}

// ClipLineAbove keeps the side a*x + b*y >= c.
func (pg *Polygon) ClipLineAbove(a, b, c float64) *Polygon {
	return pg.ClipHalfplane(Halfspace{Coef: []float64{-a, -b}, Bound: -c})
}

// relatePolygonHalfspaces classifies the region (intersection of hs) against
// the polygon cell: Covered when every polygon vertex satisfies every
// halfspace, Disjoint when successive clipping empties the polygon, and
// Crossing otherwise.
func relatePolygonHalfspaces(poly *Polygon, hs []Halfspace) Relation {
	if poly.Empty() {
		return Disjoint
	}
	covered := true
outer:
	for _, h := range hs {
		for _, v := range poly.V {
			if h.Eval(v) > h.Bound+polyEps*hsScale(h, v) {
				covered = false
				break outer
			}
		}
	}
	if covered {
		return Covered
	}
	clipped := poly
	for _, h := range hs {
		clipped = clipped.ClipHalfplane(h)
		if clipped.Empty() {
			return Disjoint
		}
	}
	return Crossing
}

const polyEps = 1e-12

func cross2(ax, ay, bx, by float64) float64 { return ax*by - ay*bx }

func edgeScale(a, b, p Point) float64 {
	m := 1.0
	for _, v := range []float64{a[0], a[1], b[0], b[1], p[0], p[1]} {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m * m
}

func hsScale(h Halfspace, p Point) float64 {
	m := 1.0
	for _, v := range h.Coef {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	for _, v := range p {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	if b := math.Abs(h.Bound); b > m {
		m = b
	}
	return m
}

// lineCross intersects segment cur->nxt with the boundary of h.
func lineCross(cur, nxt Point, h Halfspace) (Point, bool) {
	fc := h.Eval(cur) - h.Bound
	fn := h.Eval(nxt) - h.Bound
	den := fc - fn
	if den == 0 {
		return nil, false
	}
	t := fc / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Point{cur[0] + t*(nxt[0]-cur[0]), cur[1] + t*(nxt[1]-cur[1])}, true
}

func dedupeVerts(v []Point) []Point {
	if len(v) < 2 {
		return v
	}
	out := v[:0]
	for _, p := range v {
		if len(out) == 0 || !p.Equal(out[len(out)-1]) {
			out = append(out, p)
		}
	}
	// Drop a duplicated closing vertex.
	if len(out) > 1 && out[0].Equal(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// Vertices returns the polygon's vertex list (read-only view).
func (pg *Polygon) Vertices() []Point { return pg.V }

// FanTriangulate splits a convex polygon into triangles sharing its first
// vertex — the constant-size simplex partition the LC-KW reduction of
// Appendix D applies to the query polyhedron. Degenerate polygons (< 3
// vertices) yield no triangles.
func (pg *Polygon) FanTriangulate() []*Simplex {
	if pg.Empty() || len(pg.V) < 3 {
		return nil
	}
	out := make([]*Simplex, 0, len(pg.V)-2)
	for i := 1; i+1 < len(pg.V); i++ {
		out = append(out, &Simplex{V: []Point{pg.V[0], pg.V[i], pg.V[i+1]}})
	}
	return out
}

// ClipPolyhedron2D materializes the intersection of 2D halfspaces as a
// convex polygon by clipping a bounding square; bound must enclose the
// region of interest (e.g. the data's bounding box).
func ClipPolyhedron2D(ph *Polyhedron, bound *Rect) *Polygon {
	pg := NewSquare(bound.Lo[0], bound.Lo[1], bound.Hi[0], bound.Hi[1])
	for _, h := range ph.HS {
		pg = pg.ClipHalfplane(h)
		if pg.Empty() {
			return pg
		}
	}
	return pg
}
