package geom

import (
	"fmt"
	"math"
)

// Simplex is a d-simplex in R^d given by its d+1 vertices (Appendix D: "a
// polyhedron in R^d with d+1 facets"). Degenerate (lower-dimensional)
// simplices are permitted; they arise from the lifting reduction of
// Corollary 6 where one "facet" is the halfspace itself.
type Simplex struct {
	V []Point // exactly d+1 vertices
}

// NewSimplex validates and returns a simplex with the given vertices.
func NewSimplex(v ...Point) *Simplex {
	if len(v) < 2 {
		panic("geom: a simplex needs at least 2 vertices")
	}
	d := len(v[0])
	if len(v) != d+1 {
		panic(fmt.Sprintf("geom: a %d-simplex needs %d vertices, got %d", d, d+1, len(v)))
	}
	for _, p := range v {
		if len(p) != d {
			panic("geom: simplex vertices of mixed dimension")
		}
	}
	return &Simplex{V: v}
}

// Dim returns the ambient dimension d.
func (s *Simplex) Dim() int { return len(s.V[0]) }

// Polyhedron converts the simplex to the intersection of its d+1 facet
// halfspaces: facet i is the affine hull of all vertices except V[i],
// oriented so V[i] satisfies the constraint. Returns an error for degenerate
// simplices whose facet normals cannot be determined.
func (s *Simplex) Polyhedron() (*Polyhedron, error) {
	d := s.Dim()
	hs := make([]Halfspace, 0, d+1)
	for i := range s.V {
		// Facet points: all vertices except V[i].
		facet := make([]Point, 0, d)
		for j, p := range s.V {
			if j != i {
				facet = append(facet, p)
			}
		}
		n, err := hyperplaneNormal(facet)
		if err != nil {
			return nil, fmt.Errorf("geom: degenerate simplex facet %d: %w", i, err)
		}
		b := 0.0
		for k := 0; k < d; k++ {
			b += n[k] * facet[0][k]
		}
		// Orient so the opposite vertex is inside (n . V[i] <= b).
		v := 0.0
		for k := 0; k < d; k++ {
			v += n[k] * s.V[i][k]
		}
		if v > b {
			for k := range n {
				n[k] = -n[k]
			}
			b = -b
		}
		hs = append(hs, Halfspace{Coef: n, Bound: b})
	}
	return &Polyhedron{HS: hs}, nil
}

// hyperplaneNormal finds a unit vector orthogonal to the affine hull of the
// d points in pts (which live in R^d), i.e. a nonzero solution of
// n . (pts[i] - pts[0]) = 0 for all i, via Gaussian elimination.
func hyperplaneNormal(pts []Point) ([]float64, error) {
	d := len(pts[0])
	if len(pts) != d {
		return nil, fmt.Errorf("need %d points for a hyperplane in R^%d, got %d", d, d, len(pts))
	}
	// Build the (d-1) x d system.
	rows := make([][]float64, d-1)
	for i := 1; i < d; i++ {
		row := make([]float64, d)
		for k := 0; k < d; k++ {
			row[k] = pts[i][k] - pts[0][k]
		}
		rows[i-1] = row
	}
	n, ok := nullVector(rows, d)
	if !ok {
		return nil, fmt.Errorf("rank-deficient facet (collinear points)")
	}
	return n, nil
}

// nullVector returns a nonzero vector n in R^d with rows . n = 0, assuming
// rows has rank d-1 (the generic case). Gaussian elimination with partial
// pivoting determines d-1 pivot columns; the free column is set to 1 and the
// pivots back-substituted.
func nullVector(rows [][]float64, d int) ([]float64, bool) {
	m := len(rows)
	a := make([][]float64, m)
	for i, r := range rows {
		a[i] = append([]float64(nil), r...)
	}
	pivotCol := make([]int, 0, m)
	isPivot := make([]bool, d)
	r := 0
	for c := 0; c < d && r < m; c++ {
		// Partial pivot in column c among rows r..m-1.
		p, pv := -1, 1e-12
		for i := r; i < m; i++ {
			if v := math.Abs(a[i][c]); v > pv {
				p, pv = i, v
			}
		}
		if p < 0 {
			continue
		}
		a[r], a[p] = a[p], a[r]
		for i := 0; i < m; i++ {
			if i == r || a[i][c] == 0 {
				continue
			}
			f := a[i][c] / a[r][c]
			for k := c; k < d; k++ {
				a[i][k] -= f * a[r][k]
			}
		}
		pivotCol = append(pivotCol, c)
		isPivot[c] = true
		r++
	}
	if r < d-1 {
		return nil, false // rank below d-1: degenerate
	}
	// Pick the first free column.
	free := -1
	for c := 0; c < d; c++ {
		if !isPivot[c] {
			free = c
			break
		}
	}
	if free < 0 {
		return nil, false
	}
	n := make([]float64, d)
	n[free] = 1
	for i := len(pivotCol) - 1; i >= 0; i-- {
		c := pivotCol[i]
		// Row i is the row whose pivot is column c.
		s := a[i][free] * n[free]
		for k := c + 1; k < d; k++ {
			if k != free && isPivot[k] {
				s += a[i][k] * n[k]
			}
		}
		n[c] = -s / a[i][c]
	}
	// Normalize for numeric hygiene.
	var norm float64
	for _, v := range n {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 || math.IsNaN(norm) {
		return nil, false
	}
	for i := range n {
		n[i] /= norm
	}
	return n, true
}
