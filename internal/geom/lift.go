package geom

// This file implements the lifting technique of Corollary 6 (after
// Aurenhammer [8]; see also Section 11.6 of de Berg et al. [24]): a point
// p in R^d maps to p' = (p[0], ..., p[d-1], sum_i p[i]^2) in R^{d+1}, and a
// sphere B(c, rho) in R^d maps to the halfspace
//
//	x[d] - 2 c . (x[0..d-1]) <= rho^2 - ||c||^2
//
// in R^{d+1}, such that p lies in B iff p' satisfies the halfspace. The
// d-dimensional SRP-KW problem thereby reduces to a single-constraint
// (d+1)-dimensional LC-KW query.

// Lift maps p in R^d to its paraboloid lift in R^{d+1}.
func Lift(p Point) Point {
	q := make(Point, len(p)+1)
	var s float64
	for i, v := range p {
		q[i] = v
		s += v * v
	}
	q[len(p)] = s
	return q
}

// LiftSphere maps the sphere to the halfspace in R^{d+1} that captures
// membership of lifted points.
func LiftSphere(s *Sphere) Halfspace {
	d := s.Dim()
	coef := make([]float64, d+1)
	var c2 float64
	for i, c := range s.Center {
		coef[i] = -2 * c
		c2 += c * c
	}
	coef[d] = 1
	return Halfspace{Coef: coef, Bound: s.Radius*s.Radius - c2}
}

// LiftSphereSq is LiftSphere for a sphere given by its squared radius, which
// lets the L2NN-KW search of Corollary 7 binary-search over exact integer
// squared distances without taking square roots.
func LiftSphereSq(center Point, radiusSq float64) Halfspace {
	d := len(center)
	coef := make([]float64, d+1)
	var c2 float64
	for i, c := range center {
		coef[i] = -2 * c
		c2 += c * c
	}
	coef[d] = 1
	return Halfspace{Coef: coef, Bound: radiusSq - c2}
}
