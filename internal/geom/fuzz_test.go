package geom

import (
	"math"
	"testing"
)

// FuzzPolygonClip checks that clipping never yields a polygon containing a
// point outside the clip halfplane (soundness of the Willard cells).
func FuzzPolygonClip(f *testing.F) {
	f.Add(1.0, 0.0, 0.5, 0.3, 0.3)
	f.Add(0.0, 1.0, 0.25, 0.7, 0.2)
	f.Add(-1.0, 1.0, 0.0, 0.5, 0.5)
	f.Add(0.5, -0.25, 1e6, 0.1, 0.9)
	f.Fuzz(func(t *testing.T, a, b, c, px, py float64) {
		for _, v := range []float64{a, b, c, px, py} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		if math.Abs(a) > 1e9 || math.Abs(b) > 1e9 || math.Abs(c) > 1e9 {
			t.Skip()
		}
		if math.Abs(a)+math.Abs(b) < 1e-9 {
			t.Skip()
		}
		h := Halfspace{Coef: []float64{a, b}, Bound: c}
		clipped := NewSquare(0, 0, 1, 1).ClipHalfplane(h)
		p := Point{math.Mod(math.Abs(px), 1), math.Mod(math.Abs(py), 1)}
		margin := h.Eval(p) - h.Bound
		scale := hsScale(h, p)
		if margin > 1e-6*scale && clipped.ContainsPoint(p) {
			t.Fatalf("clip kept excluded point %v (margin %g)", p, margin)
		}
		if margin < -1e-6*scale && !clipped.ContainsPoint(p) {
			t.Fatalf("clip lost retained point %v (margin %g)", p, margin)
		}
	})
}

// FuzzSphereRelateRect checks the exact sphere/box classification against
// point sampling on a deterministic lattice.
func FuzzSphereRelateRect(f *testing.F) {
	f.Add(0.5, 0.5, 0.3, 0.2, 0.2, 0.6, 0.6)
	f.Add(0.0, 0.0, 1.0, -2.0, -2.0, 2.0, 2.0)
	f.Fuzz(func(t *testing.T, cx, cy, r, lox, loy, hix, hiy float64) {
		for _, v := range []float64{cx, cy, r, lox, loy, hix, hiy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		if r <= 0 || lox >= hix || loy >= hiy {
			t.Skip()
		}
		s := NewSphere(Point{cx, cy}, r)
		rel := s.RelateRect([]float64{lox, loy}, []float64{hix, hiy})
		const grid = 8
		for i := 0; i <= grid; i++ {
			for j := 0; j <= grid; j++ {
				p := Point{
					lox + float64(i)/grid*(hix-lox),
					loy + float64(j)/grid*(hiy-loy),
				}
				in := s.ContainsPoint(p)
				if rel == Disjoint && in {
					t.Fatalf("Disjoint but %v inside", p)
				}
				if rel == Covered && !in {
					t.Fatalf("Covered but %v outside", p)
				}
			}
		}
	})
}

// FuzzLiftMembership re-checks the lifting equivalence on fuzzer-chosen
// inputs (the crux of Corollary 6).
func FuzzLiftMembership(f *testing.F) {
	f.Add(0.3, 0.4, 0.5, 0.5, 0.25)
	f.Fuzz(func(t *testing.T, px, py, cx, cy, r float64) {
		for _, v := range []float64{px, py, cx, cy, r} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		if r <= 0 {
			t.Skip()
		}
		s := NewSphere(Point{cx, cy}, r)
		p := Point{px, py}
		// Skip points within float tolerance of the boundary.
		if math.Abs(s.Center.L2Sq(p)-r*r) < 1e-9*(1+r*r) {
			t.Skip()
		}
		if s.ContainsPoint(p) != LiftSphere(s).Contains(Lift(p)) {
			t.Fatalf("lifting disagreement: sphere %v/%v point %v", s.Center, r, p)
		}
	})
}
