package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a query ended, mirroring the typed errors of the
// execution-policy layer.
type Outcome string

// Span outcomes.
const (
	OutcomeOK       Outcome = "ok"
	OutcomeInvalid  Outcome = "invalid"
	OutcomeDeadline Outcome = "deadline"
	OutcomeBudget   Outcome = "budget"
	OutcomeCanceled Outcome = "canceled"
	OutcomePanic    Outcome = "panic"
	OutcomeError    Outcome = "error"
)

// Span is one completed query as seen by a Tracer. The Query field echoes
// the constraint the same way PanicError does ("region=... keywords=..."),
// so a span can be replayed by hand.
type Span struct {
	Family  string        // index family, e.g. "orpkw", "planner"
	Op      string        // entry point, e.g. "CollectInto"
	Query   string        // human-readable query echo
	K       int           // keyword arity the index was built for
	Out     int           // results reported
	Ops     int64         // work units (the ExecPolicy accounting unit)
	Nodes   int           // tree nodes visited
	Elapsed time.Duration // wall-clock time inside the entry point
	Outcome Outcome       // policy outcome classification
	Err     error         // the returned error, if any

	// Planner-only fields: the winning route and the per-route cost
	// estimates the decision was based on.
	Route     string             `json:",omitempty"`
	Estimates map[string]float64 `json:",omitempty"`
}

// Tracer receives query spans. Begin fires on entry (before any work),
// End after the entry point finishes — including error and panic-recovered
// returns. Implementations must be safe for concurrent use; they run inline
// on the query path, so they should be cheap.
type Tracer interface {
	Begin(family, op string)
	End(Span)
}

// tracerBox wraps the interface so an atomic.Pointer can hold it.
type tracerBox struct{ t Tracer }

var globalTracer atomic.Pointer[tracerBox]

// SetTracer installs t as the process-wide tracer (nil uninstalls). Spans
// go to both the global tracer and any per-index tracer installed via build
// options.
func SetTracer(t Tracer) {
	if t == nil {
		globalTracer.Store(nil)
		setFlag(flagTracer, false)
		return
	}
	globalTracer.Store(&tracerBox{t: t})
	setFlag(flagTracer, true)
}

// ActiveTracer returns the installed global tracer, or nil.
func ActiveTracer() Tracer {
	if b := globalTracer.Load(); b != nil {
		return b.t
	}
	return nil
}

// SlowEntry is one retained slow query.
type SlowEntry struct {
	Family  string        `json:"family"`
	Op      string        `json:"op"`
	Query   string        `json:"query"` // echo, replayable by hand
	Ops     int64         `json:"ops"`
	Nodes   int           `json:"nodes"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Outcome Outcome       `json:"outcome"`
}

// slowLog keeps the top-M queries by Ops in a small ring. Admission is a
// single atomic load against a running threshold: once the log is full the
// threshold rises to (current minimum)+1, so a steady stream of equal-cost
// queries stops paying for echo formatting entirely.
type slowLog struct {
	gate    atomic.Int64 // ops must be >= gate to be considered; MaxInt64 = disabled
	mu      sync.Mutex
	cap     int
	minOps  int64 // configured floor
	entries []SlowEntry
}

// slowDisabled is a gate no real ops count reaches (MaxInt64).
const slowDisabled = int64(^uint64(0) >> 1)

var slow slowLog

func init() { slow.gate.Store(slowDisabled) }

// EnableSlowLog starts retaining the top-`capacity` queries by Ops with at
// least minOps work units. capacity <= 0 disables the log and drops retained
// entries.
func EnableSlowLog(capacity int, minOps int64) {
	slow.mu.Lock()
	defer slow.mu.Unlock()
	if capacity <= 0 {
		slow.cap = 0
		slow.entries = nil
		slow.gate.Store(slowDisabled)
		setFlag(flagSlow, false)
		return
	}
	if minOps < 0 {
		minOps = 0
	}
	slow.cap = capacity
	slow.minOps = minOps
	slow.entries = slow.entries[:0]
	slow.gate.Store(minOps)
	setFlag(flagSlow, true)
}

// SlowAdmits is the hot-path check: would a query with this many work units
// make the log? False for nearly all traffic once the log is warm.
func SlowAdmits(ops int64) bool { return ops >= slow.gate.Load() }

// RecordSlow offers a completed query to the log. Callers should check
// SlowAdmits first; this re-checks under the lock so concurrent admissions
// stay consistent.
func RecordSlow(e SlowEntry) {
	slow.mu.Lock()
	defer slow.mu.Unlock()
	if slow.cap == 0 || e.Ops < slow.gate.Load() {
		return
	}
	if len(slow.entries) < slow.cap {
		slow.entries = append(slow.entries, e)
	} else {
		// Evict the minimum; e.Ops >= gate > min guarantees e belongs.
		minI := 0
		for i := 1; i < len(slow.entries); i++ {
			if slow.entries[i].Ops < slow.entries[minI].Ops {
				minI = i
			}
		}
		slow.entries[minI] = e
	}
	if len(slow.entries) == slow.cap {
		minOps := slow.entries[0].Ops
		for _, se := range slow.entries[1:] {
			if se.Ops < minOps {
				minOps = se.Ops
			}
		}
		// Full: only strictly more expensive queries are interesting now.
		slow.gate.Store(minOps + 1)
	}
}

// SlowQueries returns the retained entries, most expensive first.
func SlowQueries() []SlowEntry {
	slow.mu.Lock()
	out := make([]SlowEntry, len(slow.entries))
	copy(out, slow.entries)
	slow.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Ops > out[j].Ops })
	return out
}

// SlowArmed reports whether the slow log is retaining entries.
func SlowArmed() bool { return armedFlags.Load()&flagSlow != 0 }
