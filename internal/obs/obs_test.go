package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("Counter must return the same pointer for the same name")
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIdx(c.v); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.v, got, c.want)
		}
	}

	var h Histogram
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 107 {
		t.Fatalf("count/sum = %d/%d, want 4/107", s.Count, s.Sum)
	}
	// Buckets are cumulative: le=1 holds 1, le=4 holds 3, le=128 holds 4.
	find := func(le int64) int64 {
		for _, b := range s.Buckets {
			if b.Le == le {
				return b.Count
			}
		}
		t.Fatalf("no bucket le=%d in %+v", le, s.Buckets)
		return 0
	}
	if find(1) != 1 || find(4) != 3 || find(128) != 4 {
		t.Fatalf("cumulative buckets wrong: %+v", s.Buckets)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Le != 128 {
		t.Fatalf("buckets not trimmed after last non-zero: %+v", s.Buckets)
	}
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Add(3)
	r.Gauge("buckets").Set(2)
	r.Histogram("lat").Observe(10)

	s := r.Snapshot()
	if s.Counter("queries_total") != 3 || s.Gauge("buckets") != 2 || s.Histogram("lat").Count != 1 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	if s.NumSeries() != 3 {
		t.Fatalf("NumSeries = %d, want 3", s.NumSeries())
	}

	r.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset must zero metrics in place")
	}
	c.Inc() // the pre-Reset pointer must still feed the registry
	if r.Snapshot().Counter("queries_total") != 1 {
		t.Fatal("pre-Reset pointers must stay registered")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`q_total{family="orpkw"}`).Add(11)
	r.Gauge("live").Set(-4)
	h := r.Histogram(`lat_ns{family="orpkw"}`)
	h.Observe(5)
	h.Observe(900)
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("JSON round-trip mismatch:\n got %+v\nwant %+v", back, s)
	}

	compact, err := s.MarshalCompact()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(compact, '\n') {
		t.Fatal("compact form must be a single line")
	}
	back2, err := ParseJSON(bytes.NewReader(compact))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back2) {
		t.Fatal("compact JSON round-trip mismatch")
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	// >= 12 distinct series across the three kinds, with and without labels.
	for _, fam := range []string{"orpkw", "rrkw", "lckw", "ksi"} {
		r.Counter(fmt.Sprintf(`kwsc_queries_total{family=%q}`, fam)).Add(int64(len(fam)))
		r.Counter(fmt.Sprintf(`kwsc_query_errors_total{family=%q,code="budget"}`, fam)).Inc()
		h := r.Histogram(fmt.Sprintf(`kwsc_query_ops{family=%q}`, fam))
		h.Observe(3)
		h.Observe(70000)
	}
	r.Gauge("kwsc_dynamic_buckets").Set(5)
	r.Gauge("kwsc_dynamic_live_objects").Set(1234)
	r.Counter("kwsc_fallbacks_total") // untouched series survive too
	s := r.Snapshot()
	if s.NumSeries() < 12 {
		t.Fatalf("fixture too small: %d series", s.NumSeries())
	}

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE kwsc_queries_total counter",
		"# TYPE kwsc_dynamic_buckets gauge",
		"# TYPE kwsc_query_ops histogram",
		`kwsc_queries_total{family="orpkw"} 5`,
		`kwsc_query_ops_bucket{family="orpkw",le="+Inf"} 2`,
		`kwsc_query_ops_sum{family="orpkw"} 70003`,
		`kwsc_query_ops_count{family="orpkw"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus text missing %q:\n%s", want, text)
		}
	}

	back, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("Prometheus round-trip mismatch:\n got %+v\nwant %+v", back, s)
	}
}

type captureTracer struct {
	mu     sync.Mutex
	begins int
	spans  []Span
}

func (c *captureTracer) Begin(family, op string) {
	c.mu.Lock()
	c.begins++
	c.mu.Unlock()
}

func (c *captureTracer) End(sp Span) {
	c.mu.Lock()
	c.spans = append(c.spans, sp)
	c.mu.Unlock()
}

func TestSetTracerArming(t *testing.T) {
	SetMetricsEnabled(false)
	defer func() {
		SetTracer(nil)
		SetMetricsEnabled(true)
	}()
	if Armed() {
		t.Fatal("nothing should be armed with metrics off and no tracer")
	}
	tr := &captureTracer{}
	SetTracer(tr)
	if !Armed() || ActiveTracer() == nil {
		t.Fatal("tracer must arm the layer")
	}
	SetTracer(nil)
	if Armed() || ActiveTracer() != nil {
		t.Fatal("nil must disarm the tracer")
	}
}

func TestSlowLogTopM(t *testing.T) {
	EnableSlowLog(3, 10)
	defer EnableSlowLog(0, 0)

	if SlowAdmits(9) {
		t.Fatal("below-floor ops must not admit")
	}
	for _, ops := range []int64{15, 11, 30, 12, 50} {
		if SlowAdmits(ops) {
			RecordSlow(SlowEntry{Query: fmt.Sprintf("q%d", ops), Ops: ops, Elapsed: time.Millisecond})
		}
	}
	got := SlowQueries()
	if len(got) != 3 {
		t.Fatalf("kept %d entries, want 3", len(got))
	}
	// Top-3 by ops of {15,11,30,12,50} is {50,30,15}.
	for i, want := range []int64{50, 30, 15} {
		if got[i].Ops != want {
			t.Fatalf("entry %d ops = %d, want %d (%+v)", i, got[i].Ops, want, got)
		}
	}
	// The gate has risen past the current minimum: equal-cost traffic stops
	// paying for span formatting.
	if SlowAdmits(15) {
		t.Fatal("gate must rise to min+1 once full")
	}
	if !SlowAdmits(16) {
		t.Fatal("strictly more expensive queries must still admit")
	}

	EnableSlowLog(0, 0)
	if SlowAdmits(1 << 40) {
		t.Fatal("disabled log must admit nothing")
	}
	if len(SlowQueries()) != 0 {
		t.Fatal("disabling must drop retained entries")
	}
}

func TestConcurrentMetricsAndSlowLog(t *testing.T) {
	r := NewRegistry()
	EnableSlowLog(8, 1)
	defer EnableSlowLog(0, 0)
	tr := &captureTracer{}
	SetTracer(tr)
	defer SetTracer(nil)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total")
			h := r.Histogram("h")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				if ops := int64(i); SlowAdmits(ops) {
					RecordSlow(SlowEntry{Ops: ops})
				}
				if g := ActiveTracer(); g != nil {
					g.Begin("fam", "op")
					g.End(Span{Ops: int64(i)})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots and flag flips
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
			SlowQueries()
			SetMetricsEnabled(i%2 == 0)
		}
	}()
	wg.Wait()
	<-done
	SetMetricsEnabled(true)

	if got := r.Counter("c_total").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if len(SlowQueries()) == 0 {
		t.Fatal("slow log should have retained entries")
	}
}
