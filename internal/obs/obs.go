// Package obs is the zero-dependency observability layer: a lock-cheap
// metrics registry (atomic counters, gauges and fixed-bucket histograms),
// an optional query tracer, and a ring-buffer slow-query log.
//
// The package is designed around one constraint: the query hot path in
// internal/core must stay at 0 allocs/op with the global registry enabled.
// Every per-query operation here is therefore a handful of atomic
// instructions on pre-resolved metric pointers — the name-keyed map is only
// consulted at index-build or snapshot time, never per query. Anything that
// needs to format or allocate (span echoes, slow-log entries) is gated
// behind Armed/SlowAdmits fast paths that are single atomic loads.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use, but callers normally obtain counters from a Registry so they appear
// in snapshots and exports.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are ignored; counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (bucket counts, live objects).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add applies a delta; composite owners use deltas so several indexes can
// share one fleet-wide gauge coherently.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of exponential buckets: bucket i counts
// observations v with v <= 2^i (cumulatively), the last bucket is +Inf.
// 2^38 ns ≈ 4.5 min, far beyond any query latency; node/ops counts for
// datasets up to ~10^11 fit as well.
const histBuckets = 40

// Histogram is a fixed-shape exponential histogram: power-of-two bucket
// bounds, so Observe is two atomic adds plus a bits.Len64 — no floating
// point, no locks. The shape is shared by every histogram in the registry,
// which is what lets node-visit counts be read directly as the Table 1
// exponents (log2(bucket bound) / log2(N) ≈ 1 - 1/k).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIdx maps an observation to its bucket: v <= 1 -> 0, otherwise
// ceil(log2(v)), clamped to the +Inf bucket.
func bucketIdx(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1)) // ceil(log2(v)) for v >= 2
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIdx(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistBucket is one cumulative bucket of a histogram snapshot: Count is the
// number of observations <= Le. The implicit +Inf bucket equals the
// histogram's total Count.
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram. Buckets are
// cumulative (Prometheus-style) and trimmed after the last bound that
// reaches the total count, so empty tails don't bloat exports.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// snapshot copies the histogram. Concurrent Observe calls may tear between
// count and buckets; snapshots are monitoring reads, not barriers.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	var cum int64
	last := -1
	raw := make([]int64, histBuckets)
	for i := 0; i < histBuckets; i++ {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	if last == histBuckets-1 {
		last = histBuckets - 2 // the final bucket is exported as +Inf, not a bound
	}
	for i := 0; i <= last; i++ {
		cum += raw[i]
		s.Buckets = append(s.Buckets, HistBucket{Le: int64(1) << uint(i), Count: cum})
	}
	return s
}

// Snapshot is a plain-struct copy of a registry, ready for JSON marshalling
// or diffing in tests. Map keys are full series names including labels,
// e.g. `kwsc_queries_total{family="orpkw"}`.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// NumSeries counts the distinct series in the snapshot (each histogram is
// one series; its buckets are not counted separately).
func (s Snapshot) NumSeries() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Counter returns a counter value by full series name (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value by full series name (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram snapshot by full series name.
func (s Snapshot) Histogram(name string) HistSnapshot { return s.Histograms[name] }

// Registry holds named metrics. Lookup/creation takes a mutex; the returned
// metric pointers are then used lock-free, so the per-query cost is
// independent of registry size.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric into a plain struct. Series that have never
// been touched (zero counters, empty histograms) are included so exports are
// stable across runs.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every metric in place (registered pointers stay valid, which
// is what instrumented indexes hold). Intended for tests and benchmarks.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// names returns all series names sorted, for deterministic exports.
func (r *Registry) sortedNames() (counters, gauges, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.counters {
		counters = append(counters, name)
	}
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	for name := range r.hists {
		hists = append(hists, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// defaultReg is the process-wide registry every instrumented index feeds.
var defaultReg = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultReg }

// Armed-state flags: a single packed word so the hot path can decide
// "is anything observing?" with one atomic load.
const (
	flagMetrics = 1 << iota
	flagTracer
	flagSlow
)

var armedFlags atomic.Uint32

func init() { armedFlags.Store(flagMetrics) } // metrics are on by default

func setFlag(bit uint32, on bool) {
	for {
		old := armedFlags.Load()
		nw := old &^ bit
		if on {
			nw = old | bit
		}
		if armedFlags.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Armed reports whether any consumer (metrics, tracer, slow log) is active.
// Instrumented entry points skip even the clock read when this is false.
func Armed() bool { return armedFlags.Load() != 0 }

// SetMetricsEnabled turns registry updates on or off globally. Metrics are
// enabled by default; disabling is for overhead measurements.
func SetMetricsEnabled(on bool) { setFlag(flagMetrics, on) }

// MetricsEnabled reports whether registry updates are active.
func MetricsEnabled() bool { return armedFlags.Load()&flagMetrics != 0 }
