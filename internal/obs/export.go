package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteJSON writes the snapshot as indented expvar-style JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// MarshalCompact returns the snapshot as single-line JSON, suitable for
// embedding in benchmark output (`# kwsc-metrics: {...}`).
func (s Snapshot) MarshalCompact() ([]byte, error) { return json.Marshal(s) }

// ParseJSON decodes a snapshot previously produced by WriteJSON or
// MarshalCompact.
func ParseJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parsing JSON snapshot: %w", err)
	}
	s.normalize()
	return s, nil
}

// normalize gives nil maps a canonical empty value so parsed snapshots
// compare equal to fresh ones.
func (s *Snapshot) normalize() {
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistSnapshot{}
	}
}

// splitSeries splits a full series name `base{label="v",...}` into the base
// name and the label body (without braces); labels is "" when unlabelled.
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges a series' own labels with an extra label (used for
// histogram `le`); either part may be empty.
func joinLabels(labels, extra string) string {
	switch {
	case labels == "":
		return extra
	case extra == "":
		return labels
	default:
		return labels + "," + extra
	}
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Histograms expand into cumulative `_bucket` series with `le`
// labels plus `_sum` and `_count`, so the power-of-two node-visit buckets
// can be scraped and graphed directly.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	emitTyped := func(kind string, series map[string]int64) {
		names := make([]string, 0, len(series))
		for n := range series {
			names = append(names, n)
		}
		sort.Strings(names)
		lastBase := ""
		for _, n := range names {
			base, _ := splitSeries(n)
			if base != lastBase {
				fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
				lastBase = base
			}
			fmt.Fprintf(bw, "%s %d\n", n, series[n])
		}
	}
	emitTyped("counter", s.Counters)
	emitTyped("gauge", s.Gauges)

	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	lastBase := ""
	for _, n := range hnames {
		h := s.Histograms[n]
		base, labels := splitSeries(n)
		if base != lastBase {
			fmt.Fprintf(bw, "# TYPE %s histogram\n", base)
			lastBase = base
		}
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket{%s} %d\n",
				base, joinLabels(labels, `le="`+strconv.FormatInt(b.Le, 10)+`"`), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket{%s} %d\n", base, joinLabels(labels, `le="+Inf"`), h.Count)
		if labels == "" {
			fmt.Fprintf(bw, "%s_sum %d\n", base, h.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", base, h.Count)
		} else {
			fmt.Fprintf(bw, "%s_sum{%s} %d\n", base, labels, h.Sum)
			fmt.Fprintf(bw, "%s_count{%s} %d\n", base, labels, h.Count)
		}
	}
	return bw.Flush()
}

// ParsePrometheus decodes text previously produced by WritePrometheus back
// into a Snapshot, using the `# TYPE` comments to classify series. It
// understands the subset of the exposition format this package emits.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	types := map[string]string{} // base name -> counter|gauge|histogram
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) == 4 {
				types[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		series, valStr, ok := splitSample(line)
		if !ok {
			return Snapshot{}, fmt.Errorf("obs: bad sample line %q", line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return Snapshot{}, fmt.Errorf("obs: bad value in %q: %w", line, err)
		}
		base, labels := splitSeries(series)
		switch {
		case types[base] == "counter":
			s.Counters[series] = int64(val)
		case types[base] == "gauge":
			s.Gauges[series] = int64(val)
		default:
			hbase, part, le, ok := histogramPart(base, labels, types)
			if !ok {
				return Snapshot{}, fmt.Errorf("obs: series %q has no TYPE", series)
			}
			name := hbase
			if rest := stripLe(labels); rest != "" {
				name = hbase + "{" + rest + "}"
			}
			h := s.Histograms[name]
			switch part {
			case "sum":
				h.Sum = int64(val)
			case "count":
				h.Count = int64(val)
			case "bucket":
				if le != "+Inf" {
					bound, err := strconv.ParseInt(le, 10, 64)
					if err != nil {
						return Snapshot{}, fmt.Errorf("obs: bad le %q in %q", le, line)
					}
					h.Buckets = append(h.Buckets, HistBucket{Le: bound, Count: int64(val)})
				}
			}
			s.Histograms[name] = h
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, err
	}
	for name, h := range s.Histograms {
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].Le < h.Buckets[j].Le })
		s.Histograms[name] = h
	}
	return s, nil
}

// splitSample splits `series{labels} value` (or `series value`) respecting
// that label values may contain spaces inside quotes — ours never do, but
// the closing brace is still the reliable boundary.
func splitSample(line string) (series, value string, ok bool) {
	if i := strings.IndexByte(line, '}'); i >= 0 {
		series = line[:i+1]
		value = strings.TrimSpace(line[i+1:])
	} else {
		j := strings.LastIndexByte(line, ' ')
		if j < 0 {
			return "", "", false
		}
		series = line[:j]
		value = strings.TrimSpace(line[j+1:])
	}
	if series == "" || value == "" {
		return "", "", false
	}
	return series, value, true
}

// histogramPart classifies a sample that belongs to a histogram family:
// base `name_bucket`/`name_sum`/`name_count` with TYPE `name histogram`.
func histogramPart(base, labels string, types map[string]string) (hbase, part, le string, ok bool) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(base, suffix) {
			hb := strings.TrimSuffix(base, suffix)
			if types[hb] == "histogram" {
				return hb, suffix[1:], extractLe(labels), true
			}
		}
	}
	return "", "", "", false
}

// extractLe pulls the le="..." value out of a label body.
func extractLe(labels string) string {
	for _, part := range strings.Split(labels, ",") {
		if strings.HasPrefix(part, `le="`) {
			return strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
		}
	}
	return ""
}

// stripLe removes the le="..." label from a label body, returning the
// series' own labels.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, part := range parts {
		if !strings.HasPrefix(part, `le="`) {
			kept = append(kept, part)
		}
	}
	return strings.Join(kept, ",")
}
