// Package flatio persists built static indexes (ORPKW, SPKW) as flat-index
// KWCP2 containers and reopens them without rebuilding. A saved file holds
// the dataset image (points, documents), the flattened framework's column
// arenas (internal/core's FlatArenas), and — for ORPKW — the rank tables, so
// an open is: map the file, verify page checksums, validate structure, and
// serve. On a little-endian host with the file mapped, the big columns
// (coordinates, posting payloads, tensors) alias the mapping directly and
// the page cache is the only copy; otherwise the columns are decoded into
// RAM through the pager.
//
// Only rectangle splitters round-trip (spart.KD, spart.Box): Willard2D's
// polygon cells have no fixed-width serialized form, so SPKW indexes built
// over the default d=2 substrate must be built with an explicit Box splitter
// to be saveable (SaveSPKW reports this as an error, not a panic).
package flatio

import (
	"fmt"
	"os"

	"kwsc/internal/codec"
	"kwsc/internal/pager"
)

// Options tunes how a saved index is opened.
type Options struct {
	// NoMmap forces pread-backed access: every column is decoded into RAM
	// at open and the mapping is never created. The default maps the file
	// and aliases columns zero-copy where alignment and endianness allow.
	NoMmap bool
}

// Handle owns the open file's pager reference. The index returned alongside
// it may alias the mapping, so the handle must stay open for the index's
// lifetime and be closed exactly once when the index is discarded.
type Handle struct {
	f *pager.File
}

// Close releases the file reference (unmapping on the last reference, and
// completing a deferred pager.Retire if one is pending).
func (h *Handle) Close() error {
	if h == nil || h.f == nil {
		return nil
	}
	f := h.f
	h.f = nil
	return f.Unref()
}

// Path returns the file the handle serves from.
func (h *Handle) Path() string { return h.f.Path() }

// Mapped reports whether the file is memory-mapped.
func (h *Handle) Mapped() bool { return h.f.Mapped() }

// writeAtomic writes a container to path via tmp-file + rename + directory
// sync, so a crash mid-save never leaves a torn file under the final name.
func writeAtomic(path string, encode func(f *os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncParentDir(path)
}

func syncParentDir(path string) error {
	dir := "."
	if i := lastSlash(path); i >= 0 {
		dir = path[:i]
		if dir == "" {
			dir = "/"
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == os.PathSeparator {
			return i
		}
	}
	return -1
}

// openContainer opens path through the pager, parses the superblock, and
// verifies every page checksum. On success the caller owns the returned
// file reference.
func openContainer(path string, o Options) (*pager.File, *codec.Container, error) {
	var popts []pager.OpenOption
	if o.NoMmap {
		popts = append(popts, pager.WithoutMmap())
	}
	f, err := pager.Open(path, popts...)
	if err != nil {
		return nil, nil, err
	}
	c, err := codec.ParseContainer(f, f.Size())
	if err != nil {
		f.Unref()
		return nil, nil, err
	}
	if err := c.VerifyAllPages(f); err != nil {
		f.Unref()
		return nil, nil, err
	}
	adviseSkeleton(f, c)
	return f, c, nil
}

// secReader hands out section payloads, zero-copy when the file is mapped
// on a little-endian host and copied/decoded otherwise. All page checksums
// were verified by openContainer, so aliasing the mapping is safe.
type secReader struct {
	c      *codec.Container
	f      *pager.File
	mapped []byte // non-nil iff zero-copy aliasing is allowed
}

func newSecReader(c *codec.Container, f *pager.File) *secReader {
	s := &secReader{c: c, f: f}
	if f.Mapped() && pager.CanCast() {
		s.mapped = f.Bytes()
	}
	return s
}

// bytes returns section id's payload (nil for an absent or empty section)
// and whether the returned slice aliases the mapping.
func (s *secReader) bytes(id uint32) ([]byte, bool, error) {
	_, n, ok := s.c.Section(id)
	if !ok || n == 0 {
		return nil, false, nil
	}
	if s.mapped != nil {
		off, _, _ := s.c.Section(id)
		return s.mapped[off : off+n], true, nil
	}
	b, err := s.c.SectionBytes(s.f, id)
	return b, false, err
}

func (s *secReader) f64s(id uint32, what string) ([]float64, error) {
	b, aliased, err := s.bytes(id)
	if err != nil || b == nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: %s section not a whole number of float64s", codec.ErrCorrupt, what)
	}
	if aliased {
		if v := pager.CastF64(b); v != nil {
			return v, nil
		}
	}
	return codec.GetF64s(b), nil
}

func (s *secReader) i64s(id uint32, what string) ([]int64, error) {
	b, aliased, err := s.bytes(id)
	if err != nil || b == nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: %s section not a whole number of int64s", codec.ErrCorrupt, what)
	}
	if aliased {
		if v := pager.CastI64(b); v != nil {
			return v, nil
		}
	}
	return codec.GetI64s(b), nil
}

func (s *secReader) u64s(id uint32, what string) ([]uint64, error) {
	b, aliased, err := s.bytes(id)
	if err != nil || b == nil {
		return nil, err
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: %s section not a whole number of uint64s", codec.ErrCorrupt, what)
	}
	if aliased {
		if v := pager.CastU64(b); v != nil {
			return v, nil
		}
	}
	return codec.GetU64s(b), nil
}

func (s *secReader) i32s(id uint32, what string) ([]int32, error) {
	b, aliased, err := s.bytes(id)
	if err != nil || b == nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: %s section not a whole number of int32s", codec.ErrCorrupt, what)
	}
	if aliased {
		if v := pager.CastI32(b); v != nil {
			return v, nil
		}
	}
	return codec.GetI32s(b), nil
}

func (s *secReader) u32s(id uint32, what string) ([]uint32, error) {
	b, aliased, err := s.bytes(id)
	if err != nil || b == nil {
		return nil, err
	}
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: %s section not a whole number of uint32s", codec.ErrCorrupt, what)
	}
	if aliased {
		if v := pager.CastU32(b); v != nil {
			return v, nil
		}
	}
	return codec.GetU32s(b), nil
}
