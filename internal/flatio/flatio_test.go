package flatio

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kwsc/internal/codec"
	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/pager"
)

// testDataset builds a deterministic dataset: clustered points (so tree
// nodes at every depth see both covered and crossing query cells) and docs
// drawn from a small vocabulary with skewed frequencies (so some keywords go
// large and others stay materialized).
func testDataset(t *testing.T, seed int64, n, dim int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := make([]dataset.Object, n)
	for i := range objs {
		p := make(geom.Point, dim)
		for j := range p {
			p[j] = float64(rng.Intn(40)) + rng.Float64()
		}
		nw := 2 + rng.Intn(4)
		doc := make([]dataset.Keyword, nw)
		for j := range doc {
			// Zipf-ish: low keyword ids are frequent.
			doc[j] = dataset.Keyword(rng.Intn(3 + rng.Intn(14)))
		}
		doc = dataset.NormalizeDoc(doc)
		for len(doc) < 2 {
			doc = dataset.NormalizeDoc(append(doc, dataset.Keyword(rng.Intn(17))))
		}
		objs[i] = dataset.Object{Point: p, Doc: doc}
	}
	ds, err := dataset.New(objs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func randRect(rng *rand.Rand, dim int) *geom.Rect {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := range lo {
		a, b := rng.Float64()*41, rng.Float64()*41
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	return geom.NewRect(lo, hi)
}

func randKeywords(rng *rand.Rand, k int) []dataset.Keyword {
	for {
		ws := make([]dataset.Keyword, k)
		for i := range ws {
			ws[i] = dataset.Keyword(rng.Intn(17))
		}
		if len(dataset.NormalizeDoc(append([]dataset.Keyword(nil), ws...))) == k {
			return ws
		}
	}
}

// randOpts exercises every stop mechanism: plain, Limit, Budget, and the
// error-surfacing Policy bounds.
func randOpts(rng *rand.Rand) core.QueryOpts {
	switch rng.Intn(5) {
	case 0:
		return core.QueryOpts{Limit: 1 + rng.Intn(4)}
	case 1:
		return core.QueryOpts{Budget: 1 + int64(rng.Intn(40))}
	case 2:
		return core.QueryOpts{Policy: core.ExecPolicy{NodeBudget: 1 + int64(rng.Intn(30))}}
	case 3:
		return core.QueryOpts{Policy: core.ExecPolicy{MaxResults: 1 + rng.Intn(4)}}
	default:
		return core.QueryOpts{}
	}
}

// openBothORPKW saves ix to two files (the pager registry is per-path, so
// each access mode needs its own path) and opens one mapped, one pread.
func openBothORPKW(t *testing.T, ix *core.ORPKW) map[string]*core.ORPKW {
	t.Helper()
	dir := t.TempDir()
	out := map[string]*core.ORPKW{}
	for name, o := range map[string]Options{
		"mmap":  {},
		"pread": {NoMmap: true},
	} {
		path := filepath.Join(dir, name+".kwflat")
		if err := SaveFileORPKW(path, ix); err != nil {
			t.Fatal(err)
		}
		opened, h, err := OpenORPKW(path, o)
		if err != nil {
			t.Fatalf("OpenORPKW(%s): %v", name, err)
		}
		t.Cleanup(func() {
			if err := h.Close(); err != nil {
				t.Errorf("close %s: %v", name, err)
			}
		})
		out[name] = opened
	}
	return out
}

// TestORPKWPagedMatchesInRAM is the byte-identical property: for a shared
// query stream with every stop mechanism in play, the paged index (both
// access modes) must return the same ids in the same order, the same
// QueryStats, and the same error as the index it was saved from.
func TestORPKWPagedMatchesInRAM(t *testing.T) {
	ds := testDataset(t, 1, 600, 2)
	built, err := core.BuildORPKW(ds, 2, core.WithFlatLayout())
	if err != nil {
		t.Fatal(err)
	}
	opened := openBothORPKW(t, built)

	rng := rand.New(rand.NewSource(2))
	for qi := 0; qi < 120; qi++ {
		q := randRect(rng, 2)
		ws := randKeywords(rng, 2)
		opts := randOpts(rng)
		wantIDs, wantSt, wantErr := built.Collect(q, ws, opts)
		for name, ix := range opened {
			gotIDs, gotSt, gotErr := ix.Collect(q, ws, opts)
			if !reflect.DeepEqual(gotIDs, wantIDs) {
				t.Fatalf("query %d (%s): ids %v, want %v", qi, name, gotIDs, wantIDs)
			}
			if gotSt != wantSt {
				t.Fatalf("query %d (%s): stats %+v, want %+v", qi, name, gotSt, wantSt)
			}
			if !errors.Is(gotErr, wantErr) && !errors.Is(wantErr, gotErr) {
				t.Fatalf("query %d (%s): err %v, want %v", qi, name, gotErr, wantErr)
			}
		}
	}

	// The reconstructed index also agrees on the structural accessors the
	// space audits and experiment tables read.
	for name, ix := range opened {
		if ix.K() != built.K() {
			t.Fatalf("%s: K = %d, want %d", name, ix.K(), built.K())
		}
		bf, of := built.Framework(), ix.Framework()
		if of.NumNodes() != bf.NumNodes() || of.Height() != bf.Height() ||
			of.MaxPivots() != bf.MaxPivots() || of.PointDim() != bf.PointDim() {
			t.Fatalf("%s: framework shape diverged", name)
		}
	}
}

// TestSPKWPagedMatchesInRAM is the same property for SPKW over a Box
// splitter (d=3 exercises the non-planar path; halfspace queries exercise
// the convex, non-rectangular Relate code).
func TestSPKWPagedMatchesInRAM(t *testing.T) {
	ds := testDataset(t, 3, 400, 3)
	built, err := core.BuildSPKW(ds, core.SPKWConfig{K: 2, Build: core.BuildOpts{Flat: true}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opened := map[string]*core.SPKW{}
	for name, o := range map[string]Options{
		"mmap":  {},
		"pread": {NoMmap: true},
	} {
		path := filepath.Join(dir, name+".kwflat")
		if err := SaveFileSPKW(path, built); err != nil {
			t.Fatal(err)
		}
		ix, h, err := OpenSPKW(path, o)
		if err != nil {
			t.Fatalf("OpenSPKW(%s): %v", name, err)
		}
		defer h.Close()
		opened[name] = ix
	}

	rng := rand.New(rand.NewSource(4))
	for qi := 0; qi < 80; qi++ {
		hs := []geom.Halfspace{
			{Coef: []float64{1, rng.Float64() - 0.5, rng.Float64() - 0.5}, Bound: rng.Float64() * 40},
			{Coef: []float64{-1, rng.Float64() - 0.5, rng.Float64() - 0.5}, Bound: -rng.Float64() * 10},
			{Coef: []float64{rng.Float64() - 0.5, 1, 0}, Bound: rng.Float64() * 40},
		}
		ws := randKeywords(rng, 2)
		opts := randOpts(rng)
		wantIDs, wantSt, wantErr := built.Collect(hs, ws, opts)
		for name, ix := range opened {
			gotIDs, gotSt, gotErr := ix.Collect(hs, ws, opts)
			if !reflect.DeepEqual(gotIDs, wantIDs) {
				t.Fatalf("query %d (%s): ids %v, want %v", qi, name, gotIDs, wantIDs)
			}
			if gotSt != wantSt {
				t.Fatalf("query %d (%s): stats %+v, want %+v", qi, name, gotSt, wantSt)
			}
			if !errors.Is(gotErr, wantErr) && !errors.Is(wantErr, gotErr) {
				t.Fatalf("query %d (%s): err %v, want %v", qi, name, gotErr, wantErr)
			}
		}
	}
}

// TestSaveSPKWRejectsWillard: the default d=2 substrate has polygon cells
// with no serialized form — saving must fail cleanly, not panic.
func TestSaveSPKWRejectsWillard(t *testing.T) {
	ds := testDataset(t, 5, 120, 2)
	ix, err := core.BuildSPKW(ds, core.SPKWConfig{K: 2, Build: core.BuildOpts{Flat: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFileSPKW(filepath.Join(t.TempDir(), "w.kwflat"), ix); err == nil {
		t.Fatal("saving a Willard2D index succeeded; its cells have no serialized form")
	}
}

// TestSaveRequiresFlatLayout: a pointer-tree index has nothing to export.
func TestSaveRequiresFlatLayout(t *testing.T) {
	ds := testDataset(t, 6, 80, 2)
	ix, err := core.BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFileORPKW(filepath.Join(t.TempDir(), "p.kwflat"), ix); err == nil {
		t.Fatal("saving a non-flat index succeeded")
	}
}

// TestOpenRefusesDamage flips one byte in every section in turn and demands
// the open fail — the page checksums cover the entire payload, so any
// corruption is a checksum error, and a truncated file is refused at parse.
func TestOpenRefusesDamage(t *testing.T) {
	ds := testDataset(t, 7, 300, 2)
	built, err := core.BuildORPKW(ds, 2, core.WithFlatLayout())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.kwflat")
	if err := SaveFileORPKW(clean, built); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range []int64{
		int64(len(raw)) / 3, int64(len(raw)) / 2, int64(len(raw)) - 9,
	} {
		bad := filepath.Join(dir, "bad"+string(rune('a'+i))+".kwflat")
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := OpenORPKW(bad, Options{})
		if err == nil {
			t.Fatalf("open with byte %d flipped succeeded", off)
		}
		if !errors.Is(err, pager.ErrChecksum) && !errors.Is(err, codec.ErrCorrupt) {
			t.Fatalf("open with byte %d flipped: err %v, want checksum or corruption", off, err)
		}
	}

	trunc := filepath.Join(dir, "trunc.kwflat")
	if err := os.WriteFile(trunc, raw[:len(raw)-pager.PageSize], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenORPKW(trunc, Options{}); err == nil {
		t.Fatal("open of a truncated container succeeded")
	}

	// Kind confusion: an ORPKW image is not an SPKW image.
	if _, _, err := OpenSPKW(clean, Options{}); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("OpenSPKW of an ORPKW image: err %v, want ErrCorrupt", err)
	}
}
