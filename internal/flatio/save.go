package flatio

import (
	"fmt"
	"io"
	"os"

	"kwsc/internal/codec"
	"kwsc/internal/core"
	"kwsc/internal/dataset"
)

// SaveORPKW serializes a flattened ORPKW (dataset, rank tables, flat
// arenas) as a flat-index KWCP2 container. The index must be flat (build
// with core.WithFlatLayout or call Flatten first); ORPKW's KD splitter
// always serializes.
func SaveORPKW(w io.Writer, ix *core.ORPKW) error {
	fw := ix.Framework()
	a, err := fw.ExportFlat()
	if err != nil {
		return err
	}
	ds := fw.Dataset()
	secs, err := flatSections(a, ds)
	if err != nil {
		return err
	}
	sorted, ranks := ix.RankSpace().Tables()
	ss := make([]float64, 0, ds.Dim()*ds.Len())
	rr := make([]int32, 0, ds.Dim()*ds.Len())
	for j := 0; j < ds.Dim(); j++ {
		ss = append(ss, sorted[j]...)
		rr = append(rr, ranks[j]...)
	}
	secs = append(secs,
		codec.Section{ID: codec.SecFlatRankSorted, Data: codec.PutF64s(ss)},
		codec.Section{ID: codec.SecFlatRankRanks, Data: codec.PutI32s(rr)},
	)
	meta := codec.PagedMeta{
		Kind:  codec.PagedKindFlatORPKW,
		K:     uint32(a.K),
		Dim:   uint32(ds.Dim()),
		Count: uint64(ds.Len()),
	}
	return codec.WriteContainer(w, meta.Encode(), secs)
}

// SaveSPKW serializes a flattened SPKW. The splitter must be spart.Box (or
// spart.KD): the default d=2 Willard2D substrate has polygon cells with no
// fixed-width form — build with SPKWConfig.Splitter = &spart.Box{Dim: 2} if
// the index is to be saved.
func SaveSPKW(w io.Writer, ix *core.SPKW) error {
	fw := ix.Framework()
	a, err := fw.ExportFlat()
	if err != nil {
		return err
	}
	ds := fw.Dataset()
	secs, err := flatSections(a, ds)
	if err != nil {
		return err
	}
	meta := codec.PagedMeta{
		Kind:  codec.PagedKindFlatSPKW,
		K:     uint32(a.K),
		Dim:   uint32(ds.Dim()),
		Count: uint64(ds.Len()),
	}
	return codec.WriteContainer(w, meta.Encode(), secs)
}

// SaveFileORPKW is SaveORPKW to a path, written atomically (tmp + rename +
// directory sync).
func SaveFileORPKW(path string, ix *core.ORPKW) error {
	return writeAtomic(path, func(f *os.File) error { return SaveORPKW(f, ix) })
}

// SaveFileSPKW is SaveSPKW to a path, written atomically.
func SaveFileSPKW(path string, ix *core.SPKW) error {
	return writeAtomic(path, func(f *os.File) error { return SaveSPKW(f, ix) })
}

// flatSections encodes the framework columns and the dataset image — the
// sections common to both index kinds.
func flatSections(a *core.FlatArenas, ds *dataset.Dataset) ([]codec.Section, error) {
	n, dim := ds.Len(), ds.Dim()
	if a.NumObjects != n {
		return nil, fmt.Errorf("flatio: flat image indexes %d objects, dataset has %d", a.NumObjects, n)
	}
	points := make([]float64, n*dim)
	docStart := make([]int64, n+1)
	var docWords []uint32
	for i := 0; i < n; i++ {
		copy(points[i*dim:], ds.Point(int32(i)))
		docWords = append(docWords, ds.Doc(int32(i))...)
		docStart[i+1] = int64(len(docWords))
	}
	nn := len(a.Nu)
	return []codec.Section{
		{ID: codec.SecFlatMeta, Data: codec.PutU64s([]uint64{uint64(a.SplitterKind), uint64(a.PDim), uint64(nn)})},
		{ID: codec.SecFlatCells, Data: codec.PutF64s(a.CellBounds)},
		{ID: codec.SecFlatNu, Data: codec.PutI64s(a.Nu)},
		{ID: codec.SecFlatL, Data: codec.PutI32s(a.L)},
		{ID: codec.SecFlatChildFirst, Data: codec.PutI32s(a.ChildFirst)},
		{ID: codec.SecFlatChildCount, Data: codec.PutI32s(a.ChildCount)},
		{ID: codec.SecFlatPivotStart, Data: codec.PutI32s(a.PivotStart)},
		{ID: codec.SecFlatPivotIDs, Data: codec.PutI32s(a.PivotIDs)},
		{ID: codec.SecFlatLargeStart, Data: codec.PutI32s(a.LargeStart)},
		{ID: codec.SecFlatLargeKeys, Data: codec.PutU32s(a.LargeKeys)},
		{ID: codec.SecFlatLargeIdx, Data: codec.PutI32s(a.LargeIdx)},
		{ID: codec.SecFlatMatStart, Data: codec.PutI32s(a.MatStart)},
		{ID: codec.SecFlatMatKeys, Data: codec.PutU32s(a.MatKeys)},
		{ID: codec.SecFlatMatLists, Data: codec.PutI32s(codec.EncodePostLists(a.MatLists))},
		{ID: codec.SecFlatMatBlocks, Data: codec.PutI32s(codec.EncodePostBlocks(a.MatBlocks))},
		{ID: codec.SecFlatMatWords, Data: codec.PutU64s(a.MatWords)},
		{ID: codec.SecFlatTensorOff, Data: codec.PutI64s(a.TensorOff)},
		{ID: codec.SecFlatTensorStr, Data: codec.PutI64s(a.TensorStride)},
		{ID: codec.SecFlatTensorWrds, Data: codec.PutU64s(a.TensorWords)},
		{ID: codec.SecFlatCoords, Data: codec.PutF64s(a.Coords)},
		{ID: codec.SecFlatPoints, Data: codec.PutF64s(points)},
		{ID: codec.SecFlatDocStart, Data: codec.PutI64s(docStart)},
		{ID: codec.SecFlatDocWords, Data: codec.PutU32s(docWords)},
	}, nil
}
