package flatio

import (
	"fmt"

	"kwsc/internal/codec"
	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/pager"
)

// OpenORPKW opens a container written by SaveORPKW and returns a
// query-ready index plus the handle that owns the file reference. Build
// options tune observability only (core.WithTracer, core.NoObs); nothing is
// rebuilt. On failure the file reference is released.
func OpenORPKW(path string, o Options, opts ...core.BuildOption) (*core.ORPKW, *Handle, error) {
	f, c, err := openContainer(path, o)
	if err != nil {
		return nil, nil, err
	}
	ix, err := openORPKWFrom(f, c, opts)
	if err != nil {
		f.Unref()
		return nil, nil, err
	}
	return ix, &Handle{f: f}, nil
}

// OpenSPKW opens a container written by SaveSPKW.
func OpenSPKW(path string, o Options, opts ...core.BuildOption) (*core.SPKW, *Handle, error) {
	f, c, err := openContainer(path, o)
	if err != nil {
		return nil, nil, err
	}
	ix, err := openSPKWFrom(f, c, opts)
	if err != nil {
		f.Unref()
		return nil, nil, err
	}
	return ix, &Handle{f: f}, nil
}

// adviseSkeleton hints WILLNEED on the tree-skeleton sections — the per-node
// columns every traversal touches from the first query — so they prefetch
// while the rest of the image (postings, tensors, coordinates) stays
// demand-paged. Best-effort; no-op off Linux.
func adviseSkeleton(f *pager.File, c *codec.Container) {
	skeleton := []uint32{
		codec.SecFlatMeta, codec.SecFlatCells, codec.SecFlatNu, codec.SecFlatL,
		codec.SecFlatChildFirst, codec.SecFlatChildCount,
		codec.SecFlatPivotStart, codec.SecFlatPivotIDs,
	}
	for _, id := range skeleton {
		if off, n, ok := c.Section(id); ok {
			f.AdviseWillNeed(off, n)
		}
	}
}

func openORPKWFrom(f *pager.File, c *codec.Container, opts []core.BuildOption) (*core.ORPKW, error) {
	meta := codec.ParsePagedMeta(c.Meta)
	if meta.Kind != codec.PagedKindFlatORPKW {
		return nil, fmt.Errorf("%w: container kind %d is not a flat ORPKW image", codec.ErrCorrupt, meta.Kind)
	}
	sr := newSecReader(c, f)
	ds, a, err := loadCommon(sr, meta)
	if err != nil {
		return nil, err
	}
	rs, err := loadRankSpace(sr, ds)
	if err != nil {
		return nil, err
	}
	fw, err := core.NewFrameworkFromFlat(ds, a)
	if err != nil {
		return nil, err
	}
	return core.NewORPKWFromParts(ds, rs, fw, opts...)
}

func openSPKWFrom(f *pager.File, c *codec.Container, opts []core.BuildOption) (*core.SPKW, error) {
	meta := codec.ParsePagedMeta(c.Meta)
	if meta.Kind != codec.PagedKindFlatSPKW {
		return nil, fmt.Errorf("%w: container kind %d is not a flat SPKW image", codec.ErrCorrupt, meta.Kind)
	}
	sr := newSecReader(c, f)
	ds, a, err := loadCommon(sr, meta)
	if err != nil {
		return nil, err
	}
	fw, err := core.NewFrameworkFromFlat(ds, a)
	if err != nil {
		return nil, err
	}
	return core.NewSPKWFromParts(ds, fw, opts...)
}

// loadCommon reconstructs the dataset and the flat arena columns shared by
// both index kinds. The dataset's points and documents alias the mapping
// when zero-copy reads are in effect — dataset.NewPrenormalized never
// mutates them, which is what makes PROT_READ aliasing safe.
func loadCommon(sr *secReader, meta codec.PagedMeta) (*dataset.Dataset, *core.FlatArenas, error) {
	if meta.Dim < 1 || meta.Dim > 64 {
		return nil, nil, fmt.Errorf("%w: flat image dimension %d", codec.ErrCorrupt, meta.Dim)
	}
	if meta.K < 2 || meta.K > 64 {
		return nil, nil, fmt.Errorf("%w: flat image arity %d", codec.ErrCorrupt, meta.K)
	}
	if meta.Count < 1 || meta.Count > 1<<31 {
		return nil, nil, fmt.Errorf("%w: flat image object count %d", codec.ErrCorrupt, meta.Count)
	}
	n, dim := int(meta.Count), int(meta.Dim)

	fm, err := sr.u64s(codec.SecFlatMeta, "flat meta")
	if err != nil {
		return nil, nil, err
	}
	if len(fm) != 3 {
		return nil, nil, fmt.Errorf("%w: flat meta section has %d values, want 3", codec.ErrCorrupt, len(fm))
	}
	if fm[1] < 1 || fm[1] > 64 || fm[2] < 1 || fm[2] > 1<<31 {
		return nil, nil, fmt.Errorf("%w: flat meta pdim %d / nodes %d out of range", codec.ErrCorrupt, fm[1], fm[2])
	}
	nn := int(fm[2])

	// Dataset image.
	points, err := sr.f64s(codec.SecFlatPoints, "points")
	if err != nil {
		return nil, nil, err
	}
	docStart, err := sr.i64s(codec.SecFlatDocStart, "document offsets")
	if err != nil {
		return nil, nil, err
	}
	docWords, err := sr.u32s(codec.SecFlatDocWords, "document words")
	if err != nil {
		return nil, nil, err
	}
	if len(points) != n*dim {
		return nil, nil, fmt.Errorf("%w: %d point coordinates for %d objects of dimension %d",
			codec.ErrCorrupt, len(points), n, dim)
	}
	if len(docStart) != n+1 || docStart[0] != 0 || docStart[n] != int64(len(docWords)) {
		return nil, nil, fmt.Errorf("%w: document offsets malformed", codec.ErrCorrupt)
	}
	objs := make([]dataset.Object, n)
	for i := 0; i < n; i++ {
		lo, hi := docStart[i], docStart[i+1]
		if lo > hi {
			return nil, nil, fmt.Errorf("%w: document offsets decrease at object %d", codec.ErrCorrupt, i)
		}
		objs[i] = dataset.Object{
			Point: geom.Point(points[i*dim : (i+1)*dim]),
			Doc:   docWords[lo:hi],
		}
	}
	ds, err := dataset.NewPrenormalized(objs)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", codec.ErrCorrupt, err)
	}

	// Framework columns. Shape validation is NewFrameworkFromFlat's job;
	// here only the element-width and handle decodes can fail.
	a := &core.FlatArenas{
		SplitterKind: int(fm[0]),
		K:            int(meta.K),
		PDim:         int(fm[1]),
		NumObjects:   n,
	}
	if a.CellBounds, err = sr.f64s(codec.SecFlatCells, "cells"); err != nil {
		return nil, nil, err
	}
	if a.Nu, err = sr.i64s(codec.SecFlatNu, "node weights"); err != nil {
		return nil, nil, err
	}
	if a.L, err = sr.i32s(codec.SecFlatL, "large counts"); err != nil {
		return nil, nil, err
	}
	if a.ChildFirst, err = sr.i32s(codec.SecFlatChildFirst, "child offsets"); err != nil {
		return nil, nil, err
	}
	if a.ChildCount, err = sr.i32s(codec.SecFlatChildCount, "child counts"); err != nil {
		return nil, nil, err
	}
	if a.PivotStart, err = sr.i32s(codec.SecFlatPivotStart, "pivot offsets"); err != nil {
		return nil, nil, err
	}
	if a.PivotIDs, err = sr.i32s(codec.SecFlatPivotIDs, "pivot ids"); err != nil {
		return nil, nil, err
	}
	if a.LargeStart, err = sr.i32s(codec.SecFlatLargeStart, "large offsets"); err != nil {
		return nil, nil, err
	}
	if a.LargeKeys, err = sr.u32s(codec.SecFlatLargeKeys, "large keys"); err != nil {
		return nil, nil, err
	}
	if a.LargeIdx, err = sr.i32s(codec.SecFlatLargeIdx, "large indexes"); err != nil {
		return nil, nil, err
	}
	if a.MatStart, err = sr.i32s(codec.SecFlatMatStart, "list offsets"); err != nil {
		return nil, nil, err
	}
	if a.MatKeys, err = sr.u32s(codec.SecFlatMatKeys, "list keys"); err != nil {
		return nil, nil, err
	}
	listsRaw, err := sr.i32s(codec.SecFlatMatLists, "list handles")
	if err != nil {
		return nil, nil, err
	}
	if a.MatLists, err = codec.DecodePostLists(listsRaw); err != nil {
		return nil, nil, err
	}
	blocksRaw, err := sr.i32s(codec.SecFlatMatBlocks, "list blocks")
	if err != nil {
		return nil, nil, err
	}
	if a.MatBlocks, err = codec.DecodePostBlocks(blocksRaw); err != nil {
		return nil, nil, err
	}
	if a.MatWords, err = sr.u64s(codec.SecFlatMatWords, "list payload"); err != nil {
		return nil, nil, err
	}
	if a.TensorOff, err = sr.i64s(codec.SecFlatTensorOff, "tensor offsets"); err != nil {
		return nil, nil, err
	}
	if a.TensorStride, err = sr.i64s(codec.SecFlatTensorStr, "tensor strides"); err != nil {
		return nil, nil, err
	}
	if a.TensorWords, err = sr.u64s(codec.SecFlatTensorWrds, "tensor payload"); err != nil {
		return nil, nil, err
	}
	if a.Coords, err = sr.f64s(codec.SecFlatCoords, "coordinates"); err != nil {
		return nil, nil, err
	}
	if len(a.Nu) != nn {
		return nil, nil, fmt.Errorf("%w: flat meta claims %d nodes, weights carry %d", codec.ErrCorrupt, nn, len(a.Nu))
	}
	return ds, a, nil
}

// loadRankSpace reconstructs the ORPKW rank tables: per dimension, the
// sorted coordinate array (what query rectangles binary-search against) and
// the per-object ranks. Both must be exactly n entries per dimension; the
// sorted arrays must be non-decreasing and the ranks in [0, n).
func loadRankSpace(sr *secReader, ds *dataset.Dataset) (*dataset.RankSpace, error) {
	n, dim := ds.Len(), ds.Dim()
	ss, err := sr.f64s(codec.SecFlatRankSorted, "rank sorted")
	if err != nil {
		return nil, err
	}
	rr, err := sr.i32s(codec.SecFlatRankRanks, "rank indexes")
	if err != nil {
		return nil, err
	}
	if len(ss) != dim*n || len(rr) != dim*n {
		return nil, fmt.Errorf("%w: rank tables sized %d/%d for %d objects of dimension %d",
			codec.ErrCorrupt, len(ss), len(rr), n, dim)
	}
	sorted := make([][]float64, dim)
	ranks := make([][]int32, dim)
	for j := 0; j < dim; j++ {
		sorted[j] = ss[j*n : (j+1)*n]
		ranks[j] = rr[j*n : (j+1)*n]
		for i := 1; i < n; i++ {
			if !(sorted[j][i-1] <= sorted[j][i]) { // also rejects NaN
				return nil, fmt.Errorf("%w: rank table %d not sorted", codec.ErrCorrupt, j)
			}
		}
		for _, r := range ranks[j] {
			if r < 0 || int(r) >= n {
				return nil, fmt.Errorf("%w: rank %d outside [0, %d)", codec.ErrCorrupt, r, n)
			}
		}
	}
	return dataset.RankSpaceFromTables(dim, sorted, ranks), nil
}
