package twosi

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

func buildRandom(rng *rand.Rand, n, vocab int) *dataset.Dataset {
	objs := make([]dataset.Object, n)
	for i := range objs {
		l := 1 + rng.Intn(5)
		doc := make([]dataset.Keyword, l)
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(vocab))
		}
		objs[i] = dataset.Object{Point: geom.Point{0}, Doc: doc}
	}
	return dataset.MustNew(objs)
}

func brute(ds *dataset.Dataset, a, b dataset.Keyword) []int32 {
	var out []int32
	for i := 0; i < ds.Len(); i++ {
		if ds.Has(int32(i), a) && ds.Has(int32(i), b) {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestReportMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := buildRandom(rng, 500, 16)
	ix := Build(ds)
	for a := dataset.Keyword(0); a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			got, _, err := ix.Report(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := brute(ds, a, b)
			sort.Slice(got, func(x, y int) bool { return got[x] < got[y] })
			if len(got) != len(want) {
				t.Fatalf("(%d,%d): got %d, want %d", a, b, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("(%d,%d): element %d mismatch", a, b, i)
				}
			}
			empty, err := ix.Empty(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if empty != (len(want) == 0) {
				t.Fatalf("(%d,%d): emptiness mismatch", a, b)
			}
		}
	}
}

func TestDuplicateKeywordRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix := Build(buildRandom(rng, 50, 8))
	if _, _, err := ix.Report(3, 3); err == nil {
		t.Fatal("duplicate keyword must error")
	}
	if _, err := ix.Empty(3, 3); err == nil {
		t.Fatal("duplicate keyword must error in Empty")
	}
}

func TestAbsentKeywords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := buildRandom(rng, 100, 8)
	ix := Build(ds)
	got, st, err := ix.Report(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("absent keywords produced results")
	}
	if st.Scanned > 0 {
		t.Fatalf("absent keywords scanned %d entries", st.Scanned)
	}
}

// The sqrt(N) (1 + sqrt(OUT)) shape: on a worst-case-shaped input (two
// sub-threshold disjoint posting lists) the scan cost stays O(sqrt(N)).
func TestEmptyIntersectionCostSqrtN(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		partial := int(0.9 * math.Sqrt(float64(3*n)))
		objs := make([]dataset.Object, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range objs {
			doc := []dataset.Keyword{2 + dataset.Keyword(rng.Intn(60)), 64 + dataset.Keyword(rng.Intn(60))}
			switch {
			case i < partial:
				doc[0] = 0
			case i < 2*partial:
				doc[0] = 1
			}
			objs[i] = dataset.Object{Point: geom.Point{0}, Doc: doc}
		}
		ds := dataset.MustNew(objs)
		ix := Build(ds)
		got, st, err := ix.Report(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatal("planted intersection should be empty")
		}
		bound := int64(20 * math.Sqrt(float64(ds.N())))
		if st.Scanned+int64(st.NodesVisited) > bound {
			t.Fatalf("n=%d: cost %d exceeds O(sqrt N) bound %d",
				n, st.Scanned+int64(st.NodesVisited), bound)
		}
	}
}

func TestSpaceLinearish(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s1 := Build(buildRandom(rng, 1000, 64)).SpaceWords()
	s4 := Build(buildRandom(rng, 4000, 64)).SpaceWords()
	if ratio := float64(s4) / float64(s1); ratio > 7 {
		t.Fatalf("space grew %.1fx on 4x data", ratio)
	}
}

func TestKeywordsEnumeration(t *testing.T) {
	ds := dataset.MustNew([]dataset.Object{
		{Point: geom.Point{0}, Doc: []dataset.Keyword{5, 2}},
		{Point: geom.Point{0}, Doc: []dataset.Keyword{2, 9}},
	})
	ix := Build(ds)
	ws := ix.Keywords()
	if len(ws) != 3 || ws[0] != 2 || ws[1] != 5 || ws[2] != 9 {
		t.Fatalf("Keywords = %v", ws)
	}
	if ix.NumNodes() < 1 {
		t.Fatal("no nodes")
	}
}
