// Package twosi implements the set-intersection index of Cohen and Porat
// ("Fast set intersection and two-patterns matching", TCS 2010) that
// Section 3.5 of Lu & Tao credits as the inspiration for their
// transformation framework: O(N) space and O(sqrt(N) (1 + sqrt(OUT)))
// reporting time for the intersection of two sets, with no geometry
// involved.
//
// The structure is the framework stripped to its combinatorial core: a
// balanced binary tree over the element universe where each node u
// classifies the incoming keywords as large (frequency >= sqrt(N_u)) or
// small, stores an L x L bit matrix recording which large pairs have a
// non-empty intersection in each child, and materializes the element list of
// every keyword at the node where it first becomes small. It exists in this
// repository both as the historical baseline (ablation A2 of DESIGN.md) and
// as an independent check on the framework's keyword machinery.
package twosi

import (
	"fmt"
	"math"
	"sort"

	"kwsc/internal/bits"
	"kwsc/internal/dataset"
)

// Index answers 2-set-intersection reporting and emptiness queries over the
// documents of a dataset: Report(a, b) returns the ids of the objects whose
// documents contain both keywords.
type Index struct {
	ds    *dataset.Dataset
	nodes []node
}

type node struct {
	lo, hi   int32 // element-id range [lo, hi) of this subtree
	children [2]int32
	leafObjs []int32
	large    map[dataset.Keyword]int32
	l        int32
	matrix   [2]*bits.Dense // per child: L*L bits, row-major, bit => non-empty
	mat      map[dataset.Keyword][]int32
}

const leafSize = 8

// Build constructs the index in O(N log N) time.
func Build(ds *dataset.Dataset) *Index {
	ix := &Index{ds: ds}
	objs := make([]int32, ds.Len())
	for i := range objs {
		objs[i] = int32(i)
	}
	incoming := make([]dataset.Keyword, 0, 64)
	seen := make(map[dataset.Keyword]struct{})
	for _, id := range objs {
		for _, w := range ds.Doc(id) {
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				incoming = append(incoming, w)
			}
		}
	}
	ix.build(objs, incoming)
	return ix
}

func (ix *Index) build(objs []int32, incoming []dataset.Keyword) int32 {
	idx := int32(len(ix.nodes))
	ix.nodes = append(ix.nodes, node{children: [2]int32{-1, -1}})
	if len(objs) <= leafSize {
		ix.nodes[idx].leafObjs = append([]int32(nil), objs...)
		return idx
	}
	var nu int64
	cnt := make(map[dataset.Keyword]int64, len(incoming))
	for _, w := range incoming {
		cnt[w] = 0
	}
	for _, id := range objs {
		nu += int64(ix.ds.DocLen(id))
		for _, w := range ix.ds.Doc(id) {
			if _, track := cnt[w]; track {
				cnt[w]++
			}
		}
	}
	threshold := math.Sqrt(float64(nu))
	large := make(map[dataset.Keyword]int32)
	var largeList []dataset.Keyword
	for _, w := range incoming {
		if float64(cnt[w]) >= threshold {
			large[w] = int32(len(largeList))
			largeList = append(largeList, w)
		}
	}
	mat := make(map[dataset.Keyword][]int32)
	for _, id := range objs {
		for _, w := range ix.ds.Doc(id) {
			if c, track := cnt[w]; track && c > 0 {
				if _, isLarge := large[w]; !isLarge {
					mat[w] = append(mat[w], id)
				}
			}
		}
	}
	// Split the objects in half by id order (the "element universe" split).
	mid := len(objs) / 2
	halves := [2][]int32{objs[:mid], objs[mid:]}
	L := len(largeList)
	ix.nodes[idx].large = large
	ix.nodes[idx].l = int32(L)
	ix.nodes[idx].mat = mat
	for c, half := range halves {
		m := bits.NewDense(L * L)
		scratch := make([]int32, 0, 16)
		for _, id := range half {
			scratch = scratch[:0]
			for _, w := range ix.ds.Doc(id) {
				if li, ok := large[w]; ok {
					scratch = append(scratch, li)
				}
			}
			for i := 0; i < len(scratch); i++ {
				for j := i + 1; j < len(scratch); j++ {
					a, b := scratch[i], scratch[j]
					if a > b {
						a, b = b, a
					}
					m.Set(int(a)*L + int(b))
				}
			}
		}
		ix.nodes[idx].matrix[c] = m
		child := ix.build(half, largeList)
		ix.nodes[idx].children[c] = child
	}
	return idx
}

// Stats instruments one query.
type Stats struct {
	NodesVisited int
	Scanned      int64
	Reported     int
}

// Report returns the ids of objects containing both keywords a and b.
func (ix *Index) Report(a, b dataset.Keyword) ([]int32, Stats, error) {
	if a == b {
		return nil, Stats{}, fmt.Errorf("twosi: keywords must be distinct, got %d twice", a)
	}
	var out []int32
	var st Stats
	ix.visit(0, a, b, &out, &st)
	return out, st, nil
}

// Empty reports whether the intersection is empty, in O(sqrt(N)) time.
func (ix *Index) Empty(a, b dataset.Keyword) (bool, error) {
	if a == b {
		return false, fmt.Errorf("twosi: keywords must be distinct, got %d twice", a)
	}
	var out []int32
	var st Stats
	ix.visitLimit(0, a, b, &out, &st, 1)
	return len(out) == 0, nil
}

func (ix *Index) visit(u int32, a, b dataset.Keyword, out *[]int32, st *Stats) {
	ix.visitLimit(u, a, b, out, st, -1)
}

func (ix *Index) visitLimit(u int32, a, b dataset.Keyword, out *[]int32, st *Stats, limit int) {
	if limit >= 0 && len(*out) >= limit {
		return
	}
	n := &ix.nodes[u]
	st.NodesVisited++
	if n.leafObjs != nil {
		for _, id := range n.leafObjs {
			st.Scanned++
			if ix.ds.Has(id, a) && ix.ds.Has(id, b) {
				*out = append(*out, id)
				st.Reported++
				if limit >= 0 && len(*out) >= limit {
					return
				}
			}
		}
		return
	}
	la, okA := n.large[a]
	lb, okB := n.large[b]
	if !okA || !okB {
		// At least one keyword is small here: scan the shorter materialized
		// list (it covers every qualifying object of the subtree).
		w := a
		if okA || (!okB && len(n.mat[b]) < len(n.mat[a])) {
			w = b
		}
		other := a
		if w == a {
			other = b
		}
		for _, id := range n.mat[w] {
			st.Scanned++
			if ix.ds.Has(id, other) {
				*out = append(*out, id)
				st.Reported++
				if limit >= 0 && len(*out) >= limit {
					return
				}
			}
		}
		return
	}
	lo, hi := la, lb
	if lo > hi {
		lo, hi = hi, lo
	}
	bit := int(lo)*int(n.l) + int(hi)
	for c := 0; c < 2; c++ {
		if n.matrix[c].Get(bit) {
			ix.visitLimit(n.children[c], a, b, out, st, limit)
			if limit >= 0 && len(*out) >= limit {
				return
			}
		}
	}
}

// SpaceWords audits the structure analytically (words plus matrix bits
// charged at 64 bits per word).
func (ix *Index) SpaceWords() int64 {
	var words, matrixBits int64
	for i := range ix.nodes {
		n := &ix.nodes[i]
		words += 4 + int64(len(n.leafObjs)) + 2*int64(len(n.large))
		for _, lst := range n.mat {
			words += int64(len(lst)) + 1
		}
		for _, m := range n.matrix {
			if m != nil {
				matrixBits += m.SpaceBits()
			}
		}
	}
	return words + (matrixBits+63)/64
}

// NumNodes returns the node count.
func (ix *Index) NumNodes() int { return len(ix.nodes) }

// Keywords returns the distinct keywords, sorted (handy for tests).
func (ix *Index) Keywords() []dataset.Keyword {
	seen := map[dataset.Keyword]struct{}{}
	var out []dataset.Keyword
	for i := 0; i < ix.ds.Len(); i++ {
		for _, w := range ix.ds.Doc(int32(i)) {
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				out = append(out, w)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
