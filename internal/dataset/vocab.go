package dataset

import "sort"

// Vocabulary maps string keywords to the dense integer ids the indexes
// operate on. The paper treats keywords as integers in [1, W] w.l.o.g.
// (Section 3.2); this is the "w.l.o.g." made concrete for callers whose
// documents are words.
type Vocabulary struct {
	ids   map[string]Keyword
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]Keyword)}
}

// ID interns the word, returning its stable keyword id.
func (v *Vocabulary) ID(word string) Keyword {
	if id, ok := v.ids[word]; ok {
		return id
	}
	id := Keyword(len(v.words))
	v.ids[word] = id
	v.words = append(v.words, word)
	return id
}

// Lookup returns the id of a word without interning it.
func (v *Vocabulary) Lookup(word string) (Keyword, bool) {
	id, ok := v.ids[word]
	return id, ok
}

// Word returns the word of an id; ok=false for unknown ids.
func (v *Vocabulary) Word(id Keyword) (string, bool) {
	if int(id) >= len(v.words) {
		return "", false
	}
	return v.words[id], true
}

// Len returns the number of interned words.
func (v *Vocabulary) Len() int { return len(v.words) }

// Doc interns every word and returns the keyword document.
func (v *Vocabulary) Doc(words ...string) []Keyword {
	doc := make([]Keyword, len(words))
	for i, w := range words {
		doc[i] = v.ID(w)
	}
	return doc
}

// Words returns all interned words, sorted (for deterministic output).
func (v *Vocabulary) Words() []string {
	out := append([]string(nil), v.words...)
	sort.Strings(out)
	return out
}
