// Package dataset defines the input data model shared by every problem in
// the paper (Section 1.1): a set D of objects, each carrying a point in R^d
// and a non-empty document e.Doc formulated as a set of integer keywords.
// The input size is N = sum_e |e.Doc| (equation (2)), and W is the number of
// distinct keywords; w.l.o.g. keywords are integers in [0, W).
package dataset

import (
	"errors"
	"fmt"
	"sort"

	"kwsc/internal/bits"
	"kwsc/internal/geom"
)

// Keyword is an integer keyword. The paper treats keywords as integers in
// [1, W]; we use [0, W).
type Keyword = uint32

// Object is one element of D: a point plus its document.
type Object struct {
	Point geom.Point
	Doc   []Keyword
}

// Dataset is a validated, immutable input instance.
type Dataset struct {
	objs    []Object
	n       int64 // N = sum |Doc|
	w       int   // vocabulary bound: keywords < w
	dim     int
	docSets []*bits.U32Set // per-object O(1) membership (footnote 9)
}

// ErrEmpty is returned when constructing a dataset with no objects.
var ErrEmpty = errors.New("dataset: no objects")

// New validates the objects and builds the dataset. Documents are sorted and
// de-duplicated in place. Every object must have a non-empty document and a
// point of the same dimensionality.
func New(objs []Object) (*Dataset, error) {
	if len(objs) == 0 {
		return nil, ErrEmpty
	}
	dim := len(objs[0].Point)
	if dim == 0 {
		return nil, errors.New("dataset: zero-dimensional points")
	}
	ds := &Dataset{objs: objs, dim: dim}
	maxW := Keyword(0)
	for i := range objs {
		o := &objs[i]
		if len(o.Point) != dim {
			return nil, fmt.Errorf("dataset: object %d has dimension %d, want %d", i, len(o.Point), dim)
		}
		if len(o.Doc) == 0 {
			return nil, fmt.Errorf("dataset: object %d has an empty document", i)
		}
		o.Doc = NormalizeDoc(o.Doc)
		ds.n += int64(len(o.Doc))
		if last := o.Doc[len(o.Doc)-1]; last >= maxW {
			maxW = last + 1
		}
	}
	ds.w = int(maxW)
	ds.docSets = make([]*bits.U32Set, len(objs))
	for i := range objs {
		ds.docSets[i] = bits.NewU32Set(objs[i].Doc)
	}
	return ds, nil
}

// MustNew is New that panics on error; intended for tests and examples.
func MustNew(objs []Object) *Dataset {
	ds, err := New(objs)
	if err != nil {
		panic(err)
	}
	return ds
}

// Len returns the number of objects |D|.
func (ds *Dataset) Len() int { return len(ds.objs) }

// N returns the input size N = sum_e |e.Doc| (equation (2)).
func (ds *Dataset) N() int64 { return ds.n }

// W returns an upper bound on keyword values (all keywords are < W).
func (ds *Dataset) W() int { return ds.w }

// Dim returns the dimensionality of the points.
func (ds *Dataset) Dim() int { return ds.dim }

// Object returns object i.
func (ds *Dataset) Object(i int32) *Object { return &ds.objs[i] }

// Point returns the point of object i.
func (ds *Dataset) Point(i int32) geom.Point { return ds.objs[i].Point }

// Doc returns the (sorted, de-duplicated) document of object i.
func (ds *Dataset) Doc(i int32) []Keyword { return ds.objs[i].Doc }

// DocLen returns |e.Doc| for object i — the object's weight in the verbose
// set of Section 3.2.
func (ds *Dataset) DocLen(i int32) int32 { return int32(len(ds.objs[i].Doc)) }

// Has reports whether keyword w appears in object i's document, in O(1)
// expected time.
func (ds *Dataset) Has(i int32, w Keyword) bool { return ds.docSets[i].Contains(w) }

// HasAll reports whether object i's document contains every keyword in ws —
// the membership test of D(w1,...,wk) in equation (1).
func (ds *Dataset) HasAll(i int32, ws []Keyword) bool {
	for _, w := range ws {
		if !ds.docSets[i].Contains(w) {
			return false
		}
	}
	return true
}

// DocSpaceWords returns the total space of the per-object hash tables in
// words (the O(N) cost noted in footnote 9).
func (ds *Dataset) DocSpaceWords() int64 {
	var s int64
	for _, t := range ds.docSets {
		s += t.SpaceWords()
	}
	return s
}

// ValidateKeywords checks a query keyword tuple: it must have at least two
// distinct keywords (the paper fixes k >= 2) and no duplicates. The check is
// quadratic but allocation-free — k is a small constant on the query hot
// path.
func ValidateKeywords(ws []Keyword) error {
	if len(ws) < 2 {
		return fmt.Errorf("dataset: query needs k >= 2 keywords, got %d", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		for j := 0; j < i; j++ {
			if ws[i] == ws[j] {
				return fmt.Errorf("dataset: duplicate query keyword %d", ws[i])
			}
		}
	}
	return nil
}

// Filter returns, by brute force, the ids of all objects whose documents
// contain every keyword in ws and whose points lie in region q. This is the
// ground-truth oracle used by the test suite and the final stage of the
// naive baselines.
func (ds *Dataset) Filter(q geom.Region, ws []Keyword) []int32 {
	var out []int32
	for i := range ds.objs {
		id := int32(i)
		if ds.HasAll(id, ws) && q.ContainsPoint(ds.objs[i].Point) {
			out = append(out, id)
		}
	}
	return out
}

// NormalizeDoc sorts ws in place and removes duplicates, returning the
// (possibly shortened) slice — the canonical document form every index and
// codec operates on. ws must be non-empty.
func NormalizeDoc(ws []Keyword) []Keyword {
	sort.Slice(ws, func(a, b int) bool { return ws[a] < ws[b] })
	out := ws[:1]
	for _, w := range ws[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}
