package dataset

import (
	"math"
	"sort"

	"kwsc/internal/geom"
)

// RankSpace implements Step 4 of the transformation framework (Section 3.4):
// it removes the general-position assumption by converting coordinates to
// ranks. Objects are sorted on each dimension with ties broken by the object
// with the smaller id, so every object receives a distinct integer rank per
// dimension. A query rectangle in the original space converts to a rank-space
// rectangle in O(log N) time by binary search, without affecting the result.
type RankSpace struct {
	dim    int
	sorted [][]float64 // per dim: coordinate values in rank order
	ranks  [][]int32   // per dim, per object: the object's rank
}

// NewRankSpace builds the rank-space conversion for the dataset.
func NewRankSpace(ds *Dataset) *RankSpace {
	d := ds.Dim()
	n := ds.Len()
	rs := &RankSpace{
		dim:    d,
		sorted: make([][]float64, d),
		ranks:  make([][]int32, d),
	}
	order := make([]int32, n)
	for j := 0; j < d; j++ {
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			pa, pb := ds.Point(order[a])[j], ds.Point(order[b])[j]
			if pa != pb {
				return pa < pb
			}
			return order[a] < order[b]
		})
		rs.sorted[j] = make([]float64, n)
		rs.ranks[j] = make([]int32, n)
		for r, id := range order {
			rs.sorted[j][r] = ds.Point(id)[j]
			rs.ranks[j][id] = int32(r)
		}
	}
	return rs
}

// Dim returns the dimensionality.
func (rs *RankSpace) Dim() int { return rs.dim }

// Rank returns object i's rank on dimension j.
func (rs *RankSpace) Rank(i int32, j int) int32 { return rs.ranks[j][i] }

// RankPoint returns object i's point in rank space.
func (rs *RankSpace) RankPoint(i int32) geom.Point {
	p := make(geom.Point, rs.dim)
	for j := 0; j < rs.dim; j++ {
		p[j] = float64(rs.ranks[j][i])
	}
	return p
}

// ToRankRect converts an original-space rectangle to rank space. ok=false
// means the rectangle contains no object on some dimension (the query result
// is empty). Correctness relies on ties being broken consistently: all
// objects whose coordinate lies in [lo, hi] occupy a contiguous rank range.
func (rs *RankSpace) ToRankRect(q *geom.Rect) (_ *geom.Rect, ok bool) {
	dst := &geom.Rect{Lo: make([]float64, rs.dim), Hi: make([]float64, rs.dim)}
	if !rs.ToRankRectInto(q, dst) {
		return nil, false
	}
	return dst, true
}

// ToRankRectInto is ToRankRect writing into a caller-supplied rectangle
// whose Lo/Hi already have length Dim(); it performs no allocations, which
// is what lets pooled query contexts reuse one rank rectangle per query.
// ok=false leaves dst in an unspecified state.
func (rs *RankSpace) ToRankRectInto(q *geom.Rect, dst *geom.Rect) (ok bool) {
	for j := 0; j < rs.dim; j++ {
		s := rs.sorted[j]
		var lr, hr int
		if math.IsInf(q.Lo[j], -1) {
			lr = 0
		} else {
			lr = sort.SearchFloat64s(s, q.Lo[j]) // first rank with coord >= lo
		}
		if math.IsInf(q.Hi[j], 1) {
			hr = len(s) - 1
		} else {
			hr = sort.Search(len(s), func(r int) bool { return s[r] > q.Hi[j] }) - 1
		}
		if lr > hr {
			return false
		}
		dst.Lo[j], dst.Hi[j] = float64(lr), float64(hr)
	}
	return true
}

// SpaceWords returns the footprint of the conversion tables in words.
func (rs *RankSpace) SpaceWords() int64 {
	var s int64
	for j := 0; j < rs.dim; j++ {
		s += int64(len(rs.sorted[j])) + int64(len(rs.ranks[j]))/2
	}
	return s
}

// Tables exposes the conversion tables for serialization: per-dimension
// coordinate values in rank order and per-dimension object ranks. The
// returned slices alias the RankSpace and must be treated as read-only.
func (rs *RankSpace) Tables() (sorted [][]float64, ranks [][]int32) {
	return rs.sorted, rs.ranks
}

// RankSpaceFromTables reassembles a RankSpace from serialized tables (the
// inverse of Tables), e.g. columns of a paged flat-index image. Callers own
// validation of the tables' mutual consistency; each dimension must carry
// one value and one rank per object.
func RankSpaceFromTables(dim int, sorted [][]float64, ranks [][]int32) *RankSpace {
	return &RankSpace{dim: dim, sorted: sorted, ranks: ranks}
}
