package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kwsc/internal/geom"
)

func small() *Dataset {
	return MustNew([]Object{
		{Point: geom.Point{1, 2}, Doc: []Keyword{3, 1, 3}}, // dup collapses
		{Point: geom.Point{4, 5}, Doc: []Keyword{2}},
		{Point: geom.Point{0, 0}, Doc: []Keyword{1, 2, 5}},
	})
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil); err != ErrEmpty {
		t.Fatalf("empty input: err = %v, want ErrEmpty", err)
	}
	if _, err := New([]Object{{Point: geom.Point{1}, Doc: nil}}); err == nil {
		t.Fatal("empty document must be rejected")
	}
	if _, err := New([]Object{
		{Point: geom.Point{1, 2}, Doc: []Keyword{1}},
		{Point: geom.Point{1}, Doc: []Keyword{1}},
	}); err == nil {
		t.Fatal("mixed dimensions must be rejected")
	}
	if _, err := New([]Object{{Point: geom.Point{}, Doc: []Keyword{1}}}); err == nil {
		t.Fatal("zero-dimensional points must be rejected")
	}
}

func TestAccessors(t *testing.T) {
	ds := small()
	if ds.Len() != 3 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.N() != 6 { // docs: {1,3}, {2}, {1,2,5}
		t.Fatalf("N = %d, want 6", ds.N())
	}
	if ds.W() != 6 { // max keyword 5 -> bound 6
		t.Fatalf("W = %d, want 6", ds.W())
	}
	if ds.Dim() != 2 {
		t.Fatalf("Dim = %d", ds.Dim())
	}
	if ds.DocLen(0) != 2 {
		t.Fatalf("DocLen(0) = %d, want 2 after dedupe", ds.DocLen(0))
	}
	if !ds.Point(1).Equal(geom.Point{4, 5}) {
		t.Fatal("Point accessor wrong")
	}
}

func TestHasAndHasAll(t *testing.T) {
	ds := small()
	if !ds.Has(0, 1) || !ds.Has(0, 3) || ds.Has(0, 2) {
		t.Fatal("Has wrong")
	}
	if !ds.HasAll(2, []Keyword{1, 2}) {
		t.Fatal("HasAll false negative")
	}
	if ds.HasAll(2, []Keyword{1, 4}) {
		t.Fatal("HasAll false positive")
	}
	if !ds.HasAll(0, nil) {
		t.Fatal("HasAll of no keywords is vacuously true")
	}
}

func TestValidateKeywords(t *testing.T) {
	if err := ValidateKeywords([]Keyword{1, 2}); err != nil {
		t.Fatalf("valid pair rejected: %v", err)
	}
	if err := ValidateKeywords([]Keyword{1}); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	if err := ValidateKeywords([]Keyword{1, 1}); err == nil {
		t.Fatal("duplicates must be rejected")
	}
}

func TestFilterOracle(t *testing.T) {
	ds := small()
	got := ds.Filter(geom.NewRect([]float64{0, 0}, []float64{2, 3}), []Keyword{1})
	// Objects 0 (1,2) and 2 (0,0) are in range; both contain keyword 1.
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestDocSpaceWordsPositive(t *testing.T) {
	if small().DocSpaceWords() <= 0 {
		t.Fatal("DocSpaceWords must be positive")
	}
}

func TestRankSpaceDistinctRanks(t *testing.T) {
	// Heavy ties: all x equal, several y equal.
	objs := []Object{
		{Point: geom.Point{1, 7}, Doc: []Keyword{0}},
		{Point: geom.Point{1, 7}, Doc: []Keyword{0}},
		{Point: geom.Point{1, 3}, Doc: []Keyword{0}},
		{Point: geom.Point{1, 9}, Doc: []Keyword{0}},
	}
	ds := MustNew(objs)
	rs := NewRankSpace(ds)
	for j := 0; j < 2; j++ {
		seen := map[int32]bool{}
		for i := 0; i < ds.Len(); i++ {
			r := rs.Rank(int32(i), j)
			if r < 0 || int(r) >= ds.Len() {
				t.Fatalf("rank out of range: %d", r)
			}
			if seen[r] {
				t.Fatalf("duplicate rank %d on dim %d", r, j)
			}
			seen[r] = true
		}
	}
	// Ties on y (7,7) must break by id: object 0 before object 1.
	if rs.Rank(0, 1) >= rs.Rank(1, 1) {
		t.Fatal("tie-break by id violated")
	}
}

func TestToRankRectEmpty(t *testing.T) {
	ds := small()
	rs := NewRankSpace(ds)
	if _, ok := rs.ToRankRect(geom.NewRect([]float64{10, 10}, []float64{20, 20})); ok {
		t.Fatal("rectangle beyond all coordinates must convert to empty")
	}
}

func TestToRankRectInfinite(t *testing.T) {
	ds := small()
	rs := NewRankSpace(ds)
	inf := math.Inf(1)
	rq, ok := rs.ToRankRect(&geom.Rect{Lo: []float64{-inf, -inf}, Hi: []float64{inf, inf}})
	if !ok {
		t.Fatal("universe must convert")
	}
	if rq.Lo[0] != 0 || rq.Hi[0] != float64(ds.Len()-1) {
		t.Fatalf("universe rank rect = %v", rq)
	}
}

// Property (the Step 4 guarantee): for random data and queries, rank-space
// containment of rank points equals original-space containment of original
// points.
func TestRankSpaceQueryEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		n := 2 + rng.Intn(60)
		objs := make([]Object, n)
		for i := range objs {
			// Coarse grid coordinates force plenty of ties.
			objs[i] = Object{
				Point: geom.Point{float64(rng.Intn(8)), float64(rng.Intn(8))},
				Doc:   []Keyword{0},
			}
		}
		ds := MustNew(objs)
		rs := NewRankSpace(ds)
		q := &geom.Rect{
			Lo: []float64{float64(rng.Intn(8)) - 0.5, float64(rng.Intn(8)) - 0.5},
			Hi: []float64{float64(rng.Intn(10)), float64(rng.Intn(10))},
		}
		if q.Lo[0] > q.Hi[0] || q.Lo[1] > q.Hi[1] {
			return true
		}
		rq, okc := rs.ToRankRect(q)
		for i := 0; i < n; i++ {
			id := int32(i)
			orig := q.ContainsPoint(ds.Point(id))
			var rank bool
			if okc {
				rank = rq.ContainsPoint(rs.RankPoint(id))
			}
			if orig != rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRankSpaceSpaceWords(t *testing.T) {
	rs := NewRankSpace(small())
	if rs.SpaceWords() <= 0 {
		t.Fatal("SpaceWords must be positive")
	}
	if rs.Dim() != 2 {
		t.Fatal("Dim wrong")
	}
}
