package dataset

import (
	"errors"
	"fmt"

	"kwsc/internal/bits"
)

// NewPrenormalized builds a dataset from objects whose documents are already
// in canonical form (sorted, strictly increasing). Unlike New it never
// writes to the objects — the constructor used when points and documents
// alias a read-only snapshot mapping, where NormalizeDoc's in-place sort
// would fault. Non-canonical documents are rejected instead of repaired.
func NewPrenormalized(objs []Object) (*Dataset, error) {
	if len(objs) == 0 {
		return nil, ErrEmpty
	}
	dim := len(objs[0].Point)
	if dim == 0 {
		return nil, errors.New("dataset: zero-dimensional points")
	}
	ds := &Dataset{objs: objs, dim: dim}
	maxW := Keyword(0)
	for i := range objs {
		o := &objs[i]
		if len(o.Point) != dim {
			return nil, fmt.Errorf("dataset: object %d has dimension %d, want %d", i, len(o.Point), dim)
		}
		if len(o.Doc) == 0 {
			return nil, fmt.Errorf("dataset: object %d has an empty document", i)
		}
		for j := 1; j < len(o.Doc); j++ {
			if o.Doc[j] <= o.Doc[j-1] {
				return nil, fmt.Errorf("dataset: object %d document not strictly increasing", i)
			}
		}
		ds.n += int64(len(o.Doc))
		if last := o.Doc[len(o.Doc)-1]; last >= maxW {
			maxW = last + 1
		}
	}
	ds.w = int(maxW)
	ds.docSets = make([]*bits.U32Set, len(objs))
	for i := range objs {
		ds.docSets[i] = bits.NewU32Set(objs[i].Doc)
	}
	return ds, nil
}
