package dataset

import "testing"

func TestVocabularyIntern(t *testing.T) {
	v := NewVocabulary()
	a := v.ID("pool")
	b := v.ID("parking")
	if a == b {
		t.Fatal("distinct words share an id")
	}
	if again := v.ID("pool"); again != a {
		t.Fatal("re-interning changed the id")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
}

func TestVocabularyLookupWord(t *testing.T) {
	v := NewVocabulary()
	id := v.ID("spa")
	if got, ok := v.Lookup("spa"); !ok || got != id {
		t.Fatal("Lookup failed")
	}
	if _, ok := v.Lookup("beach"); ok {
		t.Fatal("Lookup invented a word")
	}
	if v.Len() != 1 {
		t.Fatal("Lookup must not intern")
	}
	if w, ok := v.Word(id); !ok || w != "spa" {
		t.Fatal("Word failed")
	}
	if _, ok := v.Word(999); ok {
		t.Fatal("Word invented an id")
	}
}

func TestVocabularyDoc(t *testing.T) {
	v := NewVocabulary()
	doc := v.Doc("pool", "spa", "pool")
	if len(doc) != 3 || doc[0] != doc[2] {
		t.Fatalf("Doc = %v", doc)
	}
	words := v.Words()
	if len(words) != 2 || words[0] != "pool" || words[1] != "spa" {
		t.Fatalf("Words = %v", words)
	}
}

func TestVocabularyEndToEnd(t *testing.T) {
	v := NewVocabulary()
	ds := MustNew([]Object{
		{Point: []float64{1, 2}, Doc: v.Doc("pool", "spa")},
		{Point: []float64{3, 4}, Doc: v.Doc("spa", "gym")},
	})
	spa, _ := v.Lookup("spa")
	gym, _ := v.Lookup("gym")
	if !ds.HasAll(1, []Keyword{spa, gym}) {
		t.Fatal("vocabulary-built documents broken")
	}
	if ds.Has(0, gym) {
		t.Fatal("phantom membership")
	}
}
