package core

import (
	"math/rand"
	"sort"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// dynOracle mirrors the dynamic index with a plain map.
type dynOracle struct {
	objs map[int64]dataset.Object
}

func (o *dynOracle) query(q *geom.Rect, ws []dataset.Keyword) []int64 {
	var out []int64
	for h, obj := range o.objs {
		if q.ContainsPoint(obj.Point) && docHasAll(obj.Doc, ws) {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func randObj(rng *rand.Rand) dataset.Object {
	doc := make([]dataset.Keyword, 1+rng.Intn(4))
	for j := range doc {
		doc[j] = dataset.Keyword(rng.Intn(10))
	}
	return dataset.Object{
		Point: geom.Point{rng.Float64(), rng.Float64()},
		Doc:   doc,
	}
}

func TestDynamicValidation(t *testing.T) {
	if _, err := NewDynamicORPKW(2, 1, 0); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	if _, err := NewDynamicORPKW(0, 2, 0); err == nil {
		t.Fatal("dim=0 must be rejected")
	}
	d, err := NewDynamicORPKW(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(dataset.Object{Point: geom.Point{1}, Doc: []dataset.Keyword{1}}); err == nil {
		t.Fatal("wrong dimension must be rejected")
	}
	if _, err := d.Insert(dataset.Object{Point: geom.Point{1, 2}}); err == nil {
		t.Fatal("empty document must be rejected")
	}
	if _, _, err := d.Collect(geom.UniverseRect(2), []dataset.Keyword{1}); err == nil {
		t.Fatal("wrong arity query must be rejected")
	}
}

func TestDynamicInsertQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := NewDynamicORPKW(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &dynOracle{objs: map[int64]dataset.Object{}}
	for i := 0; i < 500; i++ {
		obj := randObj(rng)
		h, err := d.Insert(obj)
		if err != nil {
			t.Fatal(err)
		}
		oracle.objs[h] = obj
		if i%50 == 0 {
			q := &geom.Rect{
				Lo: []float64{rng.Float64() * 0.5, rng.Float64() * 0.5},
				Hi: []float64{0.5 + rng.Float64()*0.5, 0.5 + rng.Float64()*0.5},
			}
			got, _, err := d.Collect(q, []dataset.Keyword{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			want := oracle.query(q, []dataset.Keyword{0, 1})
			if len(got) != len(want) {
				t.Fatalf("step %d: got %d, want %d", i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("step %d: handle mismatch at %d", i, j)
				}
			}
		}
	}
	if d.Len() != 500 {
		t.Fatalf("Len = %d, want 500", d.Len())
	}
}

func TestDynamicLogarithmicBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := NewDynamicORPKW(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2048; i++ {
		if _, err := d.Insert(randObj(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// 2048 objects with buffer 8: at most ~log2(256)+1 occupied buckets.
	if nb := d.NumBuckets(); nb > 10 {
		t.Fatalf("%d occupied buckets; logarithmic method violated (occupancy %v)",
			nb, d.Buckets())
	}
}

func TestDynamicDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := NewDynamicORPKW(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &dynOracle{objs: map[int64]dataset.Object{}}
	var handles []int64
	for i := 0; i < 300; i++ {
		obj := randObj(rng)
		h, err := d.Insert(obj)
		if err != nil {
			t.Fatal(err)
		}
		oracle.objs[h] = obj
		handles = append(handles, h)
	}
	// Delete 200 random objects, checking consistency along the way.
	rng.Shuffle(len(handles), func(a, b int) { handles[a], handles[b] = handles[b], handles[a] })
	for i, h := range handles[:200] {
		ok, err := d.Delete(h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("delete %d reported missing", h)
		}
		delete(oracle.objs, h)
		if i%25 == 0 {
			got, _, err := d.Collect(geom.UniverseRect(2), []dataset.Keyword{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.query(geom.UniverseRect(2), []dataset.Keyword{0, 1})
			if len(got) != len(want) {
				t.Fatalf("after %d deletes: got %d, want %d", i+1, len(got), len(want))
			}
		}
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	// Double delete and unknown handle.
	if ok, _ := d.Delete(handles[0]); ok {
		t.Fatal("double delete must report false")
	}
	if ok, _ := d.Delete(99999); ok {
		t.Fatal("unknown handle must report false")
	}
}

func TestDynamicMixedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := NewDynamicORPKW(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &dynOracle{objs: map[int64]dataset.Object{}}
	var live []int64
	for step := 0; step < 1500; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			obj := randObj(rng)
			h, err := d.Insert(obj)
			if err != nil {
				t.Fatal(err)
			}
			oracle.objs[h] = obj
			live = append(live, h)
		} else {
			i := rng.Intn(len(live))
			h := live[i]
			live = append(live[:i], live[i+1:]...)
			if ok, err := d.Delete(h); err != nil || !ok {
				t.Fatalf("delete failed: ok=%v err=%v", ok, err)
			}
			delete(oracle.objs, h)
		}
		if step%100 == 99 {
			q := &geom.Rect{
				Lo: []float64{0.2, 0.2},
				Hi: []float64{0.8, 0.8},
			}
			got, _, err := d.Collect(q, []dataset.Keyword{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			want := oracle.query(q, []dataset.Keyword{0, 1})
			if len(got) != len(want) {
				t.Fatalf("step %d: got %d, want %d", step, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("step %d: handle mismatch", step)
				}
			}
		}
	}
}

func TestDynamicBufferDeletion(t *testing.T) {
	d, err := NewDynamicORPKW(2, 2, 100) // large buffer: stays unindexed
	if err != nil {
		t.Fatal(err)
	}
	h1, err := d.Insert(dataset.Object{Point: geom.Point{0.1, 0.1}, Doc: []dataset.Keyword{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d.Insert(dataset.Object{Point: geom.Point{0.2, 0.2}, Doc: []dataset.Keyword{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Delete(h1); !ok {
		t.Fatal("buffer delete failed")
	}
	got, _, err := d.Collect(geom.UniverseRect(2), []dataset.Keyword{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != h2 {
		t.Fatalf("got %v, want [%d]", got, h2)
	}
}

// TestDynamicTombstoneCompaction is the regression test for the tombstone
// leak: deletes against bucketed entries used to accumulate in the `deleted`
// map (and the shared fleet gauge) until a merge happened to touch them. The
// index must now compact as soon as tombstones exceed half the live count.
func TestDynamicTombstoneCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, err := NewDynamicORPKW(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	gauge0 := dynTombstones.Load()
	var handles []int64
	for i := 0; i < 256; i++ { // multiple of bufferCap: everything bucketed
		h, err := d.Insert(randObj(rng))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	maxTomb := 0
	for _, h := range handles[:200] {
		ok, err := d.Delete(h)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", h, ok, err)
		}
		if tomb := d.Tombstones(); tomb > maxTomb {
			maxTomb = tomb
		}
		if 2*d.Tombstones() > d.Len() {
			t.Fatalf("tombstones %d exceed half the live count %d after compaction threshold",
				d.Tombstones(), d.Len())
		}
	}
	if maxTomb == 0 {
		t.Fatal("workload never tombstoned a bucketed entry; test is vacuous")
	}
	if d.Tombstones() >= maxTomb {
		t.Fatalf("tombstone map never shrank (now %d, peak %d)", d.Tombstones(), maxTomb)
	}
	// The shared fleet gauge must track the map, not leak monotonically.
	if got, want := dynTombstones.Load()-gauge0, int64(d.Tombstones()); got != want {
		t.Fatalf("tombstone gauge delta %d, map size %d", got, want)
	}
}

func TestExpectedBucketsHelper(t *testing.T) {
	if expectedBuckets(0, 8) != 0 {
		t.Fatal("zero entries, zero buckets")
	}
	if expectedBuckets(24, 8) != 2 { // 24/8 = 3 = 0b11
		t.Fatal("24 entries at cap 8 should be 2 buckets")
	}
}
