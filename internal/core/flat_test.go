package core

import (
	"math/rand"
	"testing"
	"time"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// sameIDsAndStats asserts a flat-layout query reproduced the pointer-layout
// query exactly: same ids in the same order, same stats, same error class.
func sameIDsAndStats(t *testing.T, label string, gotIDs, wantIDs []int32, gotSt, wantSt QueryStats, gotErr, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: error mismatch: flat=%v pointer=%v", label, gotErr, wantErr)
	}
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("%s: flat reported %d ids, pointer %d", label, len(gotIDs), len(wantIDs))
	}
	for i := range gotIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("%s: id %d differs: flat=%d pointer=%d", label, i, gotIDs[i], wantIDs[i])
		}
	}
	if gotSt != wantSt {
		t.Fatalf("%s: stats differ:\nflat:    %+v\npointer: %+v", label, gotSt, wantSt)
	}
}

func randWs(rng *rand.Rand, k, vocab int) []dataset.Keyword {
	ws := make([]dataset.Keyword, 0, k)
	seen := map[dataset.Keyword]bool{}
	for len(ws) < k {
		w := dataset.Keyword(1 + rng.Intn(vocab))
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	return ws
}

// The tentpole property: over random datasets and queries, an index built
// with the flat layout answers every query byte-identically to the pointer
// layout — same ids in the same order, and the same QueryStats (node visits,
// pivot checks, mat scans, ops), including under Limit and Budget stops.
func TestFlatByteIdenticalORPKW(t *testing.T) {
	for _, k := range []int{2, 3} {
		for seed := int64(0); seed < 3; seed++ {
			ds := workload.Gen(workload.Config{
				Seed: 1000 + seed, Objects: 2000, Dim: 2, Vocab: 60, DocLen: 5,
			})
			ptr, err := BuildORPKW(ds, k, WithoutObs())
			if err != nil {
				t.Fatal(err)
			}
			fl, err := BuildORPKW(ds, k, WithoutObs(), WithFlatLayout())
			if err != nil {
				t.Fatal(err)
			}
			if !fl.Framework().IsFlat() || ptr.Framework().IsFlat() {
				t.Fatal("flat flag not reflected by IsFlat")
			}
			rng := rand.New(rand.NewSource(2000 + seed))
			for trial := 0; trial < 60; trial++ {
				q := workload.RandRect(rng, 2, 0.05+0.9*rng.Float64())
				ws := randWs(rng, k, 60)
				opts := QueryOpts{}
				switch trial % 4 {
				case 1:
					opts.Limit = 1 + rng.Intn(8)
				case 2:
					opts.Budget = int64(1 + rng.Intn(200))
				case 3:
					opts.Policy = ExecPolicy{NodeBudget: int64(1 + rng.Intn(50))}
				}
				wantIDs, wantSt, wantErr := ptr.Collect(q, ws, opts)
				gotIDs, gotSt, gotErr := fl.Collect(q, ws, opts)
				sameIDsAndStats(t, "orpkw collect", gotIDs, wantIDs, gotSt, wantSt, gotErr, wantErr)
			}
		}
	}
}

// The same property for the dimension-reduction index (d >= 3), whose
// secondary frameworks are flattened per node, including the non-id-sorted
// materialized lists the zigzag delta codec exists for.
func TestFlatByteIdenticalORPKWHigh(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 7, Objects: 1500, Dim: 3, Vocab: 40, DocLen: 4})
	ptr, err := BuildORPKWHigh(ds, 2, WithoutObs())
	if err != nil {
		t.Fatal(err)
	}
	fl, err := BuildORPKWHigh(ds, 2, WithoutObs(), WithFlatLayout())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		q := workload.RandRect(rng, 3, 0.1+0.8*rng.Float64())
		ws := randWs(rng, 2, 40)
		opts := QueryOpts{}
		if trial%3 == 1 {
			opts.Limit = 1 + rng.Intn(6)
		}
		wantIDs, wantSt, wantErr := ptr.Collect(q, ws, opts)
		gotIDs, gotSt, gotErr := fl.Collect(q, ws, opts)
		sameIDsAndStats(t, "orpkwhigh collect", gotIDs, wantIDs, gotSt, wantSt, gotErr, wantErr)
	}
}

// The partition-tree index under a non-rectangular region exercises the flat
// traversal's Relate calls against arbitrary convex cells.
func TestFlatByteIdenticalLCKW(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 11, Objects: 1200, Dim: 2, Vocab: 30, DocLen: 4})
	ptr, err := BuildSPKW(ds, SPKWConfig{K: 2, Build: BuildOpts{NoObs: true}})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := BuildSPKW(ds, SPKWConfig{K: 2, Build: BuildOpts{NoObs: true, Flat: true}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		hs := []geom.Halfspace{
			{Coef: []float64{1, 0}, Bound: rng.Float64()},
			{Coef: []float64{0, 1}, Bound: rng.Float64()},
			{Coef: []float64{-1, -1}, Bound: -0.2 * rng.Float64()},
		}
		ws := randWs(rng, 2, 30)
		var wantIDs, gotIDs []int32
		wantSt, wantErr := ptr.QueryConstraints(hs, ws, QueryOpts{}, func(id int32) { wantIDs = append(wantIDs, id) })
		gotSt, gotErr := fl.QueryConstraints(hs, ws, QueryOpts{}, func(id int32) { gotIDs = append(gotIDs, id) })
		sameIDsAndStats(t, "lckw constraints", gotIDs, wantIDs, gotSt, wantSt, gotErr, wantErr)
	}
}

// Flatten converts a built index in place: queries before and after agree,
// the accessors agree with the pointer form, and Flatten is idempotent.
func TestFlattenInPlaceAndAccessors(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 21, Objects: 3000, Dim: 2, Vocab: 50, DocLen: 5})
	ix, err := BuildORPKW(ds, 2, WithoutObs())
	if err != nil {
		t.Fatal(err)
	}
	fw := ix.Framework()
	nodes, height, maxPiv := fw.NumNodes(), fw.Height(), fw.MaxPivots()
	rng := rand.New(rand.NewSource(22))
	type probe struct {
		q  *geom.Rect
		ws []dataset.Keyword
	}
	probes := make([]probe, 20)
	before := make([][]int32, len(probes))
	beforeSt := make([]QueryStats, len(probes))
	crossBefore := make([]float64, len(probes))
	for i := range probes {
		probes[i] = probe{workload.RandRect(rng, 2, 0.3), randWs(rng, 2, 50)}
		before[i], beforeSt[i], err = ix.Collect(probes[i].q, probes[i].ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		// CrossingCost takes the rank-space region the framework partitions
		// on; use the raw rect against the framework directly.
		crossBefore[i], err = fw.CrossingCost(probes[i].q, probes[i].ws)
		if err != nil {
			t.Fatal(err)
		}
	}
	ix.Flatten()
	ix.Flatten() // idempotent
	if !fw.IsFlat() {
		t.Fatal("Flatten did not take effect")
	}
	if fw.NumNodes() != nodes || fw.Height() != height || fw.MaxPivots() != maxPiv {
		t.Fatalf("accessors changed: nodes %d->%d height %d->%d maxPivots %d->%d",
			nodes, fw.NumNodes(), height, fw.Height(), maxPiv, fw.MaxPivots())
	}
	for i, p := range probes {
		after, st, err := ix.Collect(p.q, p.ws, QueryOpts{})
		sameIDsAndStats(t, "in-place flatten", after, before[i], st, beforeSt[i], err, nil)
		cross, err := fw.CrossingCost(p.q, p.ws)
		if err != nil {
			t.Fatal(err)
		}
		if cross != crossBefore[i] {
			t.Fatalf("CrossingCost changed after Flatten: %v -> %v", crossBefore[i], cross)
		}
	}
}

// The flat layout must audit strictly smaller than the pointer layout on a
// non-trivial index: packed half-word ids, one-word large entries, and
// delta-compressed materialized lists all shrink their terms.
func TestFlatSpaceSmaller(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 31, Objects: 1 << 13, Dim: 2, Vocab: 100, DocLen: 6})
	ptr, err := BuildORPKW(ds, 2, WithoutObs())
	if err != nil {
		t.Fatal(err)
	}
	fl, err := BuildORPKW(ds, 2, WithoutObs(), WithFlatLayout())
	if err != nil {
		t.Fatal(err)
	}
	pw, fw := ptr.Space().TotalWords(64), fl.Space().TotalWords(64)
	if fw >= pw {
		t.Fatalf("flat layout audits at %d words, pointer at %d: expected a reduction", fw, pw)
	}
	t.Logf("space: pointer %d words, flat %d words (%.1f%%)", pw, fw, 100*float64(fw)/float64(pw))
}

// A deadline policy must behave identically in the flat traversal (the check
// cadence is per node visit in both layouts). Uses an already-expired
// deadline so the outcome is deterministic: both stop immediately.
func TestFlatPolicyDeadline(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 41, Objects: 2000, Dim: 2, Vocab: 40, DocLen: 5})
	fl, err := BuildORPKW(ds, 2, WithoutObs(), WithFlatLayout())
	if err != nil {
		t.Fatal(err)
	}
	opts := QueryOpts{Policy: ExecPolicy{Deadline: time.Now().Add(-time.Second)}}
	_, st, err := fl.Collect(workload.RandRect(rand.New(rand.NewSource(42)), 2, 0.5), []dataset.Keyword{1, 2}, opts)
	if err == nil || !st.DeadlineHit {
		t.Fatalf("expected deadline stop, got err=%v st=%+v", err, st)
	}
}
