package core

import (
	"fmt"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// KSI is the k-set-intersection index of Section 1.2: pure keyword search as
// an ORP-KW instance where every object is mapped to an arbitrary point and
// queries use the search rectangle q := R^d. It inherits the framework's
// O(N^{1-1/k} (1 + OUT^{1/k})) reporting bound, which Lemma 8 shows is tight
// (up to sub-polynomial factors) under the strong set-intersection and
// strong k-set-disjointness conjectures.
type KSI struct {
	ds *dataset.Dataset
	fw *Framework
}

// BuildKSI indexes the sets S_0..S_{m-1}: sets[i] lists the elements of set
// i, with elements drawn from any integer universe. Following the reduction
// of Section 1.2, the object universe is the union of the sets and object
// e's document is {i : e in S_i}.
func BuildKSI(sets [][]int64, k int) (*KSI, error) {
	if len(sets) < 2 {
		return nil, fmt.Errorf("core: k-SI needs at least 2 sets, got %d", len(sets))
	}
	docs := make(map[int64][]dataset.Keyword)
	for i, s := range sets {
		for _, e := range s {
			docs[e] = append(docs[e], dataset.Keyword(i))
		}
	}
	objs := make([]dataset.Object, 0, len(docs))
	for e, doc := range docs {
		// "Map each object to an arbitrary point": spread objects on a line
		// of distinct coordinates (the element value itself works, with a
		// second coordinate for d=2).
		objs = append(objs, dataset.Object{
			Point: geom.Point{float64(e), float64(e)},
			Doc:   doc,
		})
	}
	ds, err := dataset.New(objs)
	if err != nil {
		return nil, err
	}
	return BuildKSIFromDataset(ds, k)
}

// BuildKSIFromDataset treats an existing dataset's documents as the sets
// (keyword w's set S_w is the objects containing w) and indexes pure keyword
// search over them.
func BuildKSIFromDataset(ds *dataset.Dataset, k int) (*KSI, error) {
	orp, err := BuildORPKW(ds, k)
	if err != nil {
		return nil, err
	}
	return &KSI{ds: ds, fw: orp.Framework()}, nil
}

// Report answers a k-SI reporting query: the ids of the objects carrying all
// k keywords (equivalently, the intersection of the k sets).
func (ix *KSI) Report(ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	var out []int32
	st, err := ix.fw.Query(geom.FullSpace{}, ws, opts, func(id int32) { out = append(out, id) })
	return out, st, err
}

// Empty answers a k-SI emptiness query by running a budgeted reporting
// query: per Section 1.2 (footnote 4), if the reporting query exceeds its
// O(N^{1-1/k}) budget without finishing, the intersection must be non-empty.
func (ix *KSI) Empty(ws []dataset.Keyword) (bool, QueryStats, error) {
	st, err := ix.fw.Query(geom.FullSpace{}, ws, QueryOpts{Limit: 1}, func(int32) {})
	return st.Reported == 0, st, err
}

// Dataset returns the reduction's dataset.
func (ix *KSI) Dataset() *dataset.Dataset { return ix.ds }

// Space returns the analytic space audit.
func (ix *KSI) Space() SpaceBreakdown { return ix.fw.Space() }
