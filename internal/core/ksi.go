package core

import (
	"fmt"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// KSI is the k-set-intersection index of Section 1.2: pure keyword search as
// an ORP-KW instance where every object is mapped to an arbitrary point and
// queries use the search rectangle q := R^d. It inherits the framework's
// O(N^{1-1/k} (1 + OUT^{1/k})) reporting bound, which Lemma 8 shows is tight
// (up to sub-polynomial factors) under the strong set-intersection and
// strong k-set-disjointness conjectures.
type KSI struct {
	ds *dataset.Dataset
	fw *Framework

	fam    family
	tracer obs.Tracer
}

// BuildKSI indexes the sets S_0..S_{m-1}: sets[i] lists the elements of set
// i, with elements drawn from any integer universe. Following the reduction
// of Section 1.2, the object universe is the union of the sets and object
// e's document is {i : e in S_i}.
func BuildKSI(sets [][]int64, k int, opts ...BuildOption) (*KSI, error) {
	if len(sets) < 2 {
		return nil, fmt.Errorf("%w: k-SI needs at least 2 sets, got %d", ErrInvalidDataset, len(sets))
	}
	docs := make(map[int64][]dataset.Keyword)
	for i, s := range sets {
		for _, e := range s {
			docs[e] = append(docs[e], dataset.Keyword(i))
		}
	}
	objs := make([]dataset.Object, 0, len(docs))
	for e, doc := range docs {
		// "Map each object to an arbitrary point": spread objects on a line
		// of distinct coordinates (the element value itself works, with a
		// second coordinate for d=2).
		objs = append(objs, dataset.Object{
			Point: geom.Point{float64(e), float64(e)},
			Doc:   doc,
		})
	}
	ds, err := dataset.New(objs)
	if err != nil {
		return nil, err
	}
	return BuildKSIFromDataset(ds, k, opts...)
}

// BuildKSIFromDataset treats an existing dataset's documents as the sets
// (keyword w's set S_w is the objects containing w) and indexes pure keyword
// search over them.
func BuildKSIFromDataset(ds *dataset.Dataset, k int, opts ...BuildOption) (*KSI, error) {
	o := resolveOpts(opts)
	bt := obsBuildStart()
	// The ORP-KW instance is the reduction's vehicle: untagged, so k-SI
	// queries are counted under the ksi family only.
	orp, err := BuildORPKWWith(ds, k, o.inner())
	if err != nil {
		return nil, err
	}
	ix := &KSI{ds: ds, fw: orp.Framework(), fam: o.famFor(famKSI), tracer: o.Tracer}
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

// Report answers a k-SI reporting query: the ids of the objects carrying all
// k keywords (equivalently, the intersection of the k sets).
func (ix *KSI) Report(ws []dataset.Keyword, opts QueryOpts) (out []int32, st QueryStats, err error) {
	qt := obsBegin(ix.fam, "Report", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "Report", echoQuery("k-SI", ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	st, err = ix.fw.Query(geom.FullSpace{}, ws, opts, func(id int32) { out = append(out, id) })
	return out, st, err
}

// Empty answers a k-SI emptiness query by running a budgeted reporting
// query: per Section 1.2 (footnote 4), if the reporting query exceeds its
// O(N^{1-1/k}) budget without finishing, the intersection must be non-empty.
func (ix *KSI) Empty(ws []dataset.Keyword) (empty bool, st QueryStats, err error) {
	qt := obsBegin(ix.fam, "Empty", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "Empty", echoQuery("k-SI", ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	st, err = ix.fw.Query(geom.FullSpace{}, ws, QueryOpts{Limit: 1}, func(int32) {})
	return st.Reported == 0, st, err
}

// Dataset returns the reduction's dataset.
func (ix *KSI) Dataset() *dataset.Dataset { return ix.ds }

// Space returns the analytic space audit.
func (ix *KSI) Space() SpaceBreakdown { return ix.fw.Space() }
