package core

import (
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// This file provides counting and emptiness variants for every reporting
// index. Emptiness runs a reporting query truncated at the first result —
// the manual-termination idea of the paper's footnote 4 — so it never pays
// for more than one output.

// Count returns |q ∩ D(w1..wk)| for the kd-route index.
func (ix *ORPKW) Count(q *geom.Rect, ws []dataset.Keyword) (int, QueryStats, error) {
	n := 0
	st, err := ix.Query(q, ws, QueryOpts{}, func(int32) { n++ })
	return n, st, err
}

// Empty reports whether q ∩ D(w1..wk) is empty.
func (ix *ORPKW) Empty(q *geom.Rect, ws []dataset.Keyword) (bool, QueryStats, error) {
	st, err := ix.Query(q, ws, QueryOpts{Limit: 1}, func(int32) {})
	return st.Reported == 0, st, err
}

// Count returns |q ∩ D(w1..wk)| for the dimension-reduction index.
func (ix *ORPKWHigh) Count(q *geom.Rect, ws []dataset.Keyword) (int, QueryStats, error) {
	n := 0
	st, err := ix.Query(q, ws, QueryOpts{}, func(int32) { n++ })
	return n, st, err
}

// Empty reports whether q ∩ D(w1..wk) is empty.
func (ix *ORPKWHigh) Empty(q *geom.Rect, ws []dataset.Keyword) (bool, QueryStats, error) {
	st, err := ix.Query(q, ws, QueryOpts{Limit: 1}, func(int32) {})
	return st.Reported == 0, st, err
}

// CountConstraints returns the number of objects satisfying every linear
// constraint that carry all keywords.
func (ix *SPKW) CountConstraints(hs []geom.Halfspace, ws []dataset.Keyword) (int, QueryStats, error) {
	n := 0
	st, err := ix.QueryConstraints(hs, ws, QueryOpts{}, func(int32) { n++ })
	return n, st, err
}

// EmptyConstraints reports whether the LC-KW result is empty.
func (ix *SPKW) EmptyConstraints(hs []geom.Halfspace, ws []dataset.Keyword) (bool, QueryStats, error) {
	st, err := ix.QueryConstraints(hs, ws, QueryOpts{Limit: 1}, func(int32) {})
	return st.Reported == 0, st, err
}

// Count returns the number of keyword-qualified objects in the sphere.
func (ix *SRPKW) Count(s *geom.Sphere, ws []dataset.Keyword) (int, QueryStats, error) {
	n := 0
	st, err := ix.Query(s, ws, QueryOpts{}, func(int32) { n++ })
	return n, st, err
}

// Empty reports whether the SRP-KW result is empty.
func (ix *SRPKW) Empty(s *geom.Sphere, ws []dataset.Keyword) (bool, QueryStats, error) {
	st, err := ix.Query(s, ws, QueryOpts{Limit: 1}, func(int32) {})
	return st.Reported == 0, st, err
}

// Count returns the number of intersecting, keyword-qualified rectangles.
func (ix *RRKW) Count(q *geom.Rect, ws []dataset.Keyword) (int, QueryStats, error) {
	n := 0
	st, err := ix.Query(q, ws, QueryOpts{}, func(int32) { n++ })
	return n, st, err
}

// Empty reports whether the RR-KW result is empty.
func (ix *RRKW) Empty(q *geom.Rect, ws []dataset.Keyword) (bool, QueryStats, error) {
	st, err := ix.Query(q, ws, QueryOpts{Limit: 1}, func(int32) {})
	return st.Reported == 0, st, err
}
