package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// RectQuery is one query of a batch: a rectangle plus its keywords.
type RectQuery struct {
	Rect     *geom.Rect
	Keywords []dataset.Keyword
	Opts     QueryOpts
}

// BatchResult is the outcome of one query of a batch.
type BatchResult struct {
	IDs   []int32
	Stats QueryStats
	Err   error
}

// QueryBatch answers many queries concurrently. The static indexes are
// safe for concurrent readers, so a batch parallelizes trivially;
// parallelism <= 0 selects GOMAXPROCS. Results are positionally aligned
// with the queries.
func (ix *ORPKW) QueryBatch(queries []RectQuery, parallelism int) []BatchResult {
	return ix.QueryBatchInto(queries, parallelism, nil)
}

// QueryBatchInto is QueryBatch reusing the IDs buffers of prev (typically
// the result slice of an earlier batch); a warmed prev makes the batch
// allocation-free apart from growth. prev may be nil or shorter than
// queries.
func (ix *ORPKW) QueryBatchInto(queries []RectQuery, parallelism int, prev []BatchResult) []BatchResult {
	return runBatch(queries, parallelism, prev, func(q RectQuery, buf []int32) BatchResult {
		ids, st, err := ix.CollectInto(q.Rect, q.Keywords, q.Opts, buf)
		return BatchResult{IDs: ids, Stats: st, Err: err}
	})
}

// QueryBatch answers many queries concurrently on the dimension-reduction
// index.
func (ix *ORPKWHigh) QueryBatch(queries []RectQuery, parallelism int) []BatchResult {
	return ix.QueryBatchInto(queries, parallelism, nil)
}

// QueryBatchInto is QueryBatch reusing the IDs buffers of prev.
func (ix *ORPKWHigh) QueryBatchInto(queries []RectQuery, parallelism int, prev []BatchResult) []BatchResult {
	return runBatch(queries, parallelism, prev, func(q RectQuery, buf []int32) BatchResult {
		ids, st, err := ix.CollectInto(q.Rect, q.Keywords, q.Opts, buf)
		return BatchResult{IDs: ids, Stats: st, Err: err}
	})
}

// batchBlock is the number of consecutive queries a worker claims per
// fetch-and-add: large enough to amortize the atomic, small enough to keep
// the tail balanced when per-query costs are skewed.
const batchBlock = 16

// safeOne runs one batch query with panic isolation: a query that panics
// past the per-index recovery (or inside result handling) yields a
// BatchResult with the converted error instead of taking down the worker
// goroutine — and with it the process.
func safeOne(one func(RectQuery, []int32) BatchResult, q RectQuery, buf []int32) (br BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			br = BatchResult{Err: newPanicError("QueryBatch", r, echoRegion(q.Rect, q.Keywords))}
		}
	}()
	failpoint(FPBatchQuery)
	return one(q, buf)
}

func runBatch(queries []RectQuery, parallelism int, prev []BatchResult, one func(RectQuery, []int32) BatchResult) []BatchResult {
	if obs.MetricsEnabled() {
		// Batch throughput; the per-query family counters are fed by the
		// inner CollectInto calls on the (tagged) index itself.
		batchRuns.Inc()
		batchQueries.Add(int64(len(queries)))
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	results := make([]BatchResult, len(queries))
	reuse := func(i int) []int32 {
		if i < len(prev) {
			return prev[i].IDs[:0]
		}
		return nil
	}
	if parallelism <= 1 {
		for i, q := range queries {
			results[i] = safeOne(one, q, reuse(i))
		}
		return results
	}
	// Workers claim contiguous blocks of queries via an atomic cursor;
	// results land at their query's position, so no channel or collection
	// pass is needed and neighboring queries share cache lines per worker.
	var next atomic.Int64
	nblocks := (len(queries) + batchBlock - 1) / batchBlock
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					return
				}
				lo := b * batchBlock
				hi := lo + batchBlock
				if hi > len(queries) {
					hi = len(queries)
				}
				for i := lo; i < hi; i++ {
					results[i] = safeOne(one, queries[i], reuse(i))
				}
			}
		}()
	}
	wg.Wait()
	return results
}
