package core

import (
	"runtime"
	"sync"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// RectQuery is one query of a batch: a rectangle plus its keywords.
type RectQuery struct {
	Rect     *geom.Rect
	Keywords []dataset.Keyword
	Opts     QueryOpts
}

// BatchResult is the outcome of one query of a batch.
type BatchResult struct {
	IDs   []int32
	Stats QueryStats
	Err   error
}

// QueryBatch answers many queries concurrently. The static indexes are
// safe for concurrent readers, so a batch parallelizes trivially;
// parallelism <= 0 selects GOMAXPROCS. Results are positionally aligned
// with the queries.
func (ix *ORPKW) QueryBatch(queries []RectQuery, parallelism int) []BatchResult {
	return runBatch(queries, parallelism, func(q RectQuery) BatchResult {
		ids, st, err := ix.Collect(q.Rect, q.Keywords, q.Opts)
		return BatchResult{IDs: ids, Stats: st, Err: err}
	})
}

// QueryBatch answers many queries concurrently on the dimension-reduction
// index.
func (ix *ORPKWHigh) QueryBatch(queries []RectQuery, parallelism int) []BatchResult {
	return runBatch(queries, parallelism, func(q RectQuery) BatchResult {
		ids, st, err := ix.Collect(q.Rect, q.Keywords, q.Opts)
		return BatchResult{IDs: ids, Stats: st, Err: err}
	})
}

func runBatch(queries []RectQuery, parallelism int, one func(RectQuery) BatchResult) []BatchResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	results := make([]BatchResult, len(queries))
	if parallelism <= 1 {
		for i, q := range queries {
			results[i] = one(q)
		}
		return results
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = one(queries[i])
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
