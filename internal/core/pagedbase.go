package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"kwsc/internal/bitpack"
	"kwsc/internal/codec"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/pager"
)

// PagedBase serves the entries of a KWCP2 snapshot checkpoint directly from
// the file — mapped read-only by default, or through a bounded pread buffer
// pool — so recovery can answer queries the moment the file is open instead
// of after a full decode and index rebuild. It plugs into DynamicORPKW as
// the immutable base layer beneath the Bentley–Saxe buckets: deletions of
// base entries are tombstoned at the dynamic layer, and insertions go to the
// buffer/buckets as usual (see BaseIndex).
//
// A query picks the rarest query keyword's bitpacked posting list, scans its
// candidates, and verifies the remaining keywords against the candidate's
// document and its point against the rectangle — O(min posting list) work,
// the classic document-at-a-time plan. That is asymptotically weaker than
// the ORPKW traversal the entries would support fully decoded, but it touches
// only the pages the posting list and its candidates live on, which is the
// out-of-core trade: bounded memory and instant start against more work per
// query. A background-rebuilt bucket index supersedes the base at the next
// full compaction into RAM (future work; today the base lives until restart).
//
// Structural metadata (vocabulary, posting-list and block directories,
// handle and document offsets) is validated eagerly at open — O(vocabulary +
// blocks + entries), no payload pages touched beyond those columns — so the
// scan path can trust offsets without re-checking. Page content integrity is
// the pager's job: every page is checksum-verified on first pin, and a
// mismatch surfaces as an error wrapping pager.ErrChecksum.
type PagedBase struct {
	f    *pager.File
	pool *pager.Pool

	k, dim     int
	count      int64
	lastSeq    uint64
	nextHandle int64

	// Absolute byte offsets of the payload sections.
	handlesOff, pointsOff, docStartOff, docWordsOff, wordsOff int64
	docTotal, wordsN                                          int64

	// Always-resident metadata columns (small: O(vocabulary + blocks)).
	vocab  []uint32
	lists  []bitpack.List
	blocks []bitpack.Block

	// Zero-copy typed columns, non-nil only when the file is mapped on a
	// little-endian host; otherwise reads go through pager views.
	mHandles  []int64
	mPoints   []float64
	mDocStart []int64
	mDocWords []uint32
	mWords    []uint64

	closed atomic.Bool
}

// PagedBaseOptions configures OpenPagedBase.
type PagedBaseOptions struct {
	// CapPages bounds the resident pages of the pread buffer pool
	// (0 selects the pager default). Only meaningful with NoMmap — a mapped
	// file's residency belongs to the kernel.
	CapPages int
	// NoMmap forces the pread pool even where mmap is available: the
	// bounded-memory serving mode for datasets larger than RAM.
	NoMmap bool
}

// errBase tags structural corruption that page checksums cannot catch
// (a well-formed file describing impossible offsets).
func errBase(format string, args ...any) error {
	return fmt.Errorf("core: paged base: "+format, args...)
}

// OpenPagedBase opens a snapshot-v2 checkpoint for in-place serving. The
// returned base holds a pager reference on the file until Close.
func OpenPagedBase(path string, o PagedBaseOptions) (*PagedBase, error) {
	var popts []pager.OpenOption
	if o.NoMmap {
		popts = append(popts, pager.WithoutMmap())
	}
	f, err := pager.Open(path, popts...)
	if err != nil {
		return nil, err
	}
	b, err := newPagedBase(f, o.CapPages)
	if err != nil {
		f.Unref()
		return nil, err
	}
	// A dropped base without Close must not pin the file (and, if retired,
	// its disk space) forever.
	runtime.SetFinalizer(b, func(b *PagedBase) { b.Close() })
	return b, nil
}

func newPagedBase(f *pager.File, capPages int) (*PagedBase, error) {
	c, err := codec.ParseContainer(f, f.Size())
	if err != nil {
		return nil, err
	}
	meta := codec.ParsePagedMeta(c.Meta)
	if meta.Kind != codec.PagedKindSnapshot {
		return nil, errBase("container kind %d is not a snapshot", meta.Kind)
	}
	if meta.K < 2 || meta.K > 64 || meta.Dim == 0 || meta.Dim > 64 || meta.Count > 1<<31 {
		return nil, errBase("implausible meta %+v", meta)
	}
	b := &PagedBase{
		f:          f,
		pool:       pager.NewPool(f, capPages, c.PageCRCs),
		k:          int(meta.K),
		dim:        int(meta.Dim),
		count:      int64(meta.Count),
		lastSeq:    meta.LastSeq,
		nextHandle: int64(meta.NextHandle),
	}
	span := func(id uint32, want int64) (int64, error) {
		off, n, ok := c.Section(id)
		if !ok && want == 0 {
			return 0, nil
		}
		if !ok || (want >= 0 && n != want) {
			return 0, errBase("section %d is %d bytes, want %d", id, n, want)
		}
		return off, nil
	}
	if b.handlesOff, err = span(codec.SecHandles, 8*b.count); err != nil {
		return nil, err
	}
	if b.pointsOff, err = span(codec.SecPoints, 8*b.count*int64(b.dim)); err != nil {
		return nil, err
	}
	if b.docStartOff, err = span(codec.SecDocStart, 8*(b.count+1)); err != nil {
		return nil, err
	}

	// Decode the resident metadata columns through the pool so their pages
	// are checksum-verified exactly once, here.
	vocabB, err := b.readSection(c, codec.SecVocab)
	if err != nil {
		return nil, err
	}
	listsB, err := b.readSection(c, codec.SecPostLists)
	if err != nil {
		return nil, err
	}
	blocksB, err := b.readSection(c, codec.SecPostBlocks)
	if err != nil {
		return nil, err
	}
	if len(vocabB)%4 != 0 || len(listsB)%12 != 0 || len(blocksB)%16 != 0 {
		return nil, errBase("metadata section not a whole number of records")
	}
	b.vocab = leU32s(vocabB)
	if b.lists, err = codec.DecodePostLists(leI32s(listsB)); err != nil {
		return nil, err
	}
	if b.blocks, err = codec.DecodePostBlocks(leI32s(blocksB)); err != nil {
		return nil, err
	}
	_, wordsLen, _ := c.Section(codec.SecPostWords)
	if b.wordsOff, err = span(codec.SecPostWords, wordsLen); err != nil {
		return nil, err
	}
	if wordsLen%8 != 0 {
		return nil, errBase("posting payload not a whole number of words")
	}
	b.wordsN = wordsLen / 8
	if err := b.validateStructure(c); err != nil {
		return nil, err
	}
	if f.Mapped() && pager.CanCast() && b.count > 0 {
		raw := f.Bytes()
		sec := func(off, n int64) []byte { return raw[off : off+n] }
		b.mHandles = pager.CastI64(sec(b.handlesOff, 8*b.count))
		b.mPoints = pager.CastF64(sec(b.pointsOff, 8*b.count*int64(b.dim)))
		b.mDocStart = pager.CastI64(sec(b.docStartOff, 8*(b.count+1)))
		b.mDocWords = pager.CastU32(sec(b.docWordsOff, 4*b.docTotal))
		b.mWords = pager.CastU64(sec(b.wordsOff, 8*b.wordsN))
		// All casts must land together: the readers key off mHandles.
		if b.mHandles == nil || b.mPoints == nil || b.mDocStart == nil ||
			b.mDocWords == nil || (b.wordsN > 0 && b.mWords == nil) {
			b.mHandles, b.mPoints, b.mDocStart, b.mDocWords, b.mWords = nil, nil, nil, nil, nil
		}
	}
	if b.mHandles != nil {
		// The cast readers bypass the pool, so lazy verify-on-first-pin never
		// fires for them; checksum every page once here instead. Still far
		// cheaper than a decode — one crc32c pass, no parsing, no build.
		for p := int64(0); p < f.NumPages(); p++ {
			fr, err := b.pool.Pin(p)
			if err != nil {
				return nil, err
			}
			fr.Unpin()
		}
	}
	return b, nil
}

// leU32s and leI32s decode whole little-endian columns (the resident
// metadata sections, read once at open).
func leU32s(b []byte) []uint32 {
	v := make([]uint32, len(b)/4)
	for i := range v {
		v[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
	}
	return v
}

func leI32s(b []byte) []int32 {
	u := leU32s(b)
	v := make([]int32, len(u))
	for i := range u {
		v[i] = int32(u[i])
	}
	return v
}

// readSection reads a whole section through the pool (checksum-verifying
// its pages) into a fresh buffer.
func (b *PagedBase) readSection(c *codec.Container, id uint32) ([]byte, error) {
	off, n, ok := c.Section(id)
	if !ok || n == 0 {
		return nil, nil
	}
	v, err := pager.NewView(b.pool, off, n)
	if err != nil {
		return nil, err
	}
	defer v.Release()
	buf := make([]byte, n)
	v.Read(0, buf)
	if err := v.Err(); err != nil {
		return nil, err
	}
	return buf, nil
}

// validateStructure checks every offset-bearing column the scan path will
// trust: handle order, document offsets, vocabulary order, and posting
// list/block geometry. Runs once at open; touches only those columns.
func (b *PagedBase) validateStructure(c *codec.Container) error {
	// Handles: strictly increasing, below the watermark.
	hv, err := pager.NewView(b.pool, b.handlesOff, 8*b.count)
	if err != nil {
		return err
	}
	prev := int64(-1)
	for i := int64(0); i < b.count; i++ {
		h := hv.I64(8 * i)
		if h <= prev {
			hv.Release()
			return errBase("handles not strictly increasing at index %d", i)
		}
		prev = h
	}
	if err := hv.Err(); err != nil {
		hv.Release()
		return err
	}
	hv.Release()
	if b.count > 0 && prev >= b.nextHandle {
		return errBase("handle %d at or past watermark %d", prev, b.nextHandle)
	}

	// Document offsets: zero-based, strictly increasing (documents are
	// non-empty), consistent with the words section length.
	dv, err := pager.NewView(b.pool, b.docStartOff, 8*(b.count+1))
	if err != nil {
		return err
	}
	defer dv.Release()
	if dv.I64(0) != 0 {
		return errBase("document offsets do not start at 0")
	}
	last := int64(0)
	for i := int64(1); i <= b.count; i++ {
		s := dv.I64(8 * i)
		if s <= last {
			return errBase("empty or out-of-order document at index %d", i-1)
		}
		last = s
	}
	if err := dv.Err(); err != nil {
		return err
	}
	b.docTotal = last
	if b.count == 0 {
		b.docTotal = 0
	}
	var dwWant int64 = 4 * b.docTotal
	off, n, ok := c.Section(codec.SecDocWords)
	if b.docTotal == 0 {
		if ok && n != 0 {
			return errBase("document words present for an empty snapshot")
		}
	} else if !ok || n != dwWant {
		return errBase("document words sized %d, offsets claim %d", n, dwWant)
	}
	b.docWordsOff = off

	// Vocabulary and posting geometry.
	if len(b.lists) != len(b.vocab) {
		return errBase("%d posting lists for %d keywords", len(b.lists), len(b.vocab))
	}
	var total int64
	for i, l := range b.lists {
		if i > 0 && b.vocab[i] <= b.vocab[i-1] {
			return errBase("vocabulary not sorted at entry %d", i)
		}
		if l.Block < 0 || l.NumBlocks < 0 || int64(l.Block)+int64(l.NumBlocks) > int64(len(b.blocks)) {
			return errBase("posting list %d blocks out of range", i)
		}
		var n int64
		for _, blk := range b.blocks[l.Block : l.Block+l.NumBlocks] {
			if blk.N < 1 || blk.N > bitpack.BlockSize || blk.W > 32 {
				return errBase("posting block geometry invalid in list %d", i)
			}
			need := (int64(blk.N-1)*int64(blk.W) + 63) / 64
			if blk.Off < 0 || int64(blk.Off)+need > b.wordsN {
				return errBase("posting block payload out of range in list %d", i)
			}
			if blk.First < 0 || int64(blk.Max) >= b.count || blk.First > blk.Max {
				return errBase("posting block ids outside [0,%d) in list %d", b.count, i)
			}
			n += int64(blk.N)
		}
		if n != int64(l.N) {
			return errBase("posting list %d claims %d values, blocks hold %d", i, l.N, n)
		}
		total += n
	}
	if total != b.docTotal {
		return errBase("%d postings for %d document words", total, b.docTotal)
	}
	return nil
}

// Close releases the pager reference. Outstanding queries must have
// drained: over a mapped file their reads would fault after the unmap.
func (b *PagedBase) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	runtime.SetFinalizer(b, nil)
	b.pool.Close()
	return b.f.Unref()
}

// Path returns the checkpoint file the base serves from.
func (b *PagedBase) Path() string { return b.f.Path() }

// Len returns the number of entries in the base (tombstones at the dynamic
// layer are not subtracted here).
func (b *PagedBase) Len() int { return int(b.count) }

// K returns the query keyword arity recorded in the checkpoint.
func (b *PagedBase) K() int { return b.k }

// Dim returns the point dimensionality recorded in the checkpoint.
func (b *PagedBase) Dim() int { return b.dim }

// LastSeq returns the WAL sequence the checkpoint covers.
func (b *PagedBase) LastSeq() uint64 { return b.lastSeq }

// NextHandle returns the handle watermark recorded in the checkpoint.
func (b *PagedBase) NextHandle() int64 { return b.nextHandle }

// Pool exposes the buffer pool for instrumentation (resident pages, cap).
func (b *PagedBase) Pool() *pager.Pool { return b.pool }

// handleAt returns the handle of entry i.
func (b *PagedBase) handleAt(v *pager.View, i int64) int64 {
	if b.mHandles != nil {
		return b.mHandles[i]
	}
	return v.I64(8 * i)
}

// Has reports whether handle names an entry of the base, in O(log count)
// page-pinned reads.
func (b *PagedBase) Has(handle int64) bool {
	if b.count == 0 {
		return false
	}
	if b.mHandles != nil {
		i := sort.Search(int(b.count), func(i int) bool { return b.mHandles[i] >= handle })
		return i < int(b.count) && b.mHandles[i] == handle
	}
	v, err := pager.NewView(b.pool, b.handlesOff, 8*b.count)
	if err != nil {
		return false
	}
	defer v.Release()
	lo, hi := int64(0), b.count
	for lo < hi {
		mid := (lo + hi) / 2
		if v.I64(8*mid) < handle {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v.Err() == nil && lo < b.count && v.I64(8*lo) == handle
}

// listFor returns the posting list of keyword w, if present.
func (b *PagedBase) listFor(w dataset.Keyword) (bitpack.List, bool) {
	i := sort.Search(len(b.vocab), func(i int) bool { return b.vocab[i] >= w })
	if i >= len(b.vocab) || b.vocab[i] != w {
		return bitpack.List{}, false
	}
	return b.lists[i], true
}

// baseReader bundles the per-query views and scratch buffers of one scan.
type baseReader struct {
	b                  *PagedBase
	hv, pv, dv, wv, ww *pager.View
	doc                []dataset.Keyword
	pt                 geom.Point
	words              []uint64
	vals               []int32
}

func (b *PagedBase) newReader() (*baseReader, error) {
	r := &baseReader{b: b}
	if b.mHandles != nil {
		return r, nil
	}
	mk := func(off, n int64) (*pager.View, error) { return pager.NewView(b.pool, off, n) }
	var err error
	if r.hv, err = mk(b.handlesOff, 8*b.count); err != nil {
		return nil, err
	}
	if r.pv, err = mk(b.pointsOff, 8*b.count*int64(b.dim)); err != nil {
		r.release()
		return nil, err
	}
	if r.dv, err = mk(b.docStartOff, 8*(b.count+1)); err != nil {
		r.release()
		return nil, err
	}
	if b.docTotal > 0 {
		if r.wv, err = mk(b.docWordsOff, 4*b.docTotal); err != nil {
			r.release()
			return nil, err
		}
	}
	if b.wordsN > 0 {
		if r.ww, err = mk(b.wordsOff, 8*b.wordsN); err != nil {
			r.release()
			return nil, err
		}
	}
	r.pt = make(geom.Point, b.dim)
	return r, nil
}

func (r *baseReader) release() {
	for _, v := range []*pager.View{r.hv, r.pv, r.dv, r.wv, r.ww} {
		if v != nil {
			v.Release()
		}
	}
}

// err returns the first sticky error across the reader's views.
func (r *baseReader) err() error {
	for _, v := range []*pager.View{r.hv, r.pv, r.dv, r.wv, r.ww} {
		if v != nil && v.Err() != nil {
			return v.Err()
		}
	}
	return nil
}

// decodeBlock appends block blk's candidate ids to r.vals (reset first).
func (r *baseReader) decodeBlock(blk bitpack.Block) error {
	r.vals = r.vals[:0]
	if r.b.mWords != nil {
		arena := bitpack.FromRaw(r.b.mWords, nil)
		r.vals = arena.DecodeBlock(blk, r.vals)
		return nil
	}
	need := (int64(blk.N-1)*int64(blk.W) + 63) / 64
	if cap(r.words) < int(need) {
		r.words = make([]uint64, need, need+8)
	}
	r.words = r.words[:need]
	for i := int64(0); i < need; i++ {
		r.words[i] = r.ww.U64(8 * (int64(blk.Off) + i))
	}
	if err := r.ww.Err(); err != nil {
		return err
	}
	local := blk
	local.Off = 0
	arena := bitpack.FromRaw(r.words, nil)
	r.vals = arena.DecodeBlock(local, r.vals)
	return nil
}

// inRect reports whether entry i's point lies in q.
func (r *baseReader) inRect(q *geom.Rect, i int64) bool {
	if r.b.mPoints != nil {
		p := r.b.mPoints[i*int64(r.b.dim) : (i+1)*int64(r.b.dim)]
		for j := range p {
			if p[j] < q.Lo[j] || p[j] > q.Hi[j] {
				return false
			}
		}
		return true
	}
	for j := 0; j < r.b.dim; j++ {
		c := r.pv.F64(8 * (i*int64(r.b.dim) + int64(j)))
		if c < q.Lo[j] || c > q.Hi[j] {
			return false
		}
	}
	return true
}

// docOf returns entry i's document (mapped subslice or scratch copy).
func (r *baseReader) docOf(i int64) []dataset.Keyword {
	if r.b.mDocWords != nil {
		return r.b.mDocWords[r.b.mDocStart[i]:r.b.mDocStart[i+1]]
	}
	lo, hi := r.dv.I64(8*i), r.dv.I64(8*(i+1))
	if hi <= lo || r.dv.Err() != nil {
		return nil
	}
	n := hi - lo
	if cap(r.doc) < int(n) {
		r.doc = make([]dataset.Keyword, n, n+16)
	}
	r.doc = r.doc[:n]
	for j := int64(0); j < n; j++ {
		r.doc[j] = r.wv.U32(4 * (lo + j))
	}
	return r.doc
}

// docHasAllSorted verifies membership of every keyword in ws by binary
// search over the (sorted) document.
func docHasAllSorted(doc []dataset.Keyword, ws []dataset.Keyword) bool {
	for _, w := range ws {
		i := sort.Search(len(doc), func(i int) bool { return doc[i] >= w })
		if i >= len(doc) || doc[i] != w {
			return false
		}
	}
	return true
}

// Query reports (handle, object) for every base entry in q whose document
// contains all k keywords. In pread mode the reported object's Point and Doc
// are scratch, valid only for the duration of the callback; in mapped mode
// they alias the mapping and remain valid until Close. Tombstone filtering
// is the caller's job (the dynamic layer owns the tombstone set).
func (b *PagedBase) Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(handle int64, obj *dataset.Object)) (st QueryStats, err error) {
	if len(ws) != b.k {
		return st, fmt.Errorf("%w: query carries %d keywords but the base holds k=%d", ErrInvalidQuery, len(ws), b.k)
	}
	if err := dataset.ValidateKeywords(ws); err != nil {
		return st, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	if err := validateRect(q, b.dim); err != nil {
		return st, err
	}
	opts = opts.normalized()
	if b.count == 0 {
		return st, nil
	}
	// Drive the scan off the rarest keyword's posting list; any keyword
	// absent from the vocabulary empties the result.
	var drive bitpack.List
	for i, w := range ws {
		l, ok := b.listFor(w)
		if !ok {
			return st, nil
		}
		if i == 0 || l.N < drive.N {
			drive = l
		}
	}
	r, err := b.newReader()
	if err != nil {
		return st, err
	}
	defer r.release()
	ps := newPolState(opts.Policy)
	for _, blk := range b.blocks[drive.Block : drive.Block+drive.NumBlocks] {
		if err := r.decodeBlock(blk); err != nil {
			return st, err
		}
		for _, id := range r.vals {
			i := int64(id)
			st.Ops++
			st.MatScanned++
			if opts.Budget > 0 && st.Ops > opts.Budget {
				st.BudgetHit, st.Truncated = true, true
				return st, r.err()
			}
			if err := ps.check(&st, st.Ops); err != nil {
				return st, err
			}
			if !r.inRect(q, i) {
				continue
			}
			doc := r.docOf(i)
			if !docHasAllSorted(doc, ws) {
				continue
			}
			if err := r.err(); err != nil {
				return st, err
			}
			if opts.Limit > 0 && st.Reported >= opts.Limit {
				st.Truncated = true
				return st, nil
			}
			obj := dataset.Object{Point: r.pointOf(i), Doc: doc}
			report(b.handleAt(r.hv, i), &obj)
			st.Reported++
		}
	}
	return st, r.err()
}

// pointOf returns entry i's point (mapped subslice or scratch copy).
func (r *baseReader) pointOf(i int64) geom.Point {
	if r.b.mPoints != nil {
		return r.b.mPoints[i*int64(r.b.dim) : (i+1)*int64(r.b.dim)]
	}
	for j := 0; j < r.b.dim; j++ {
		r.pt[j] = r.pv.F64(8 * (i*int64(r.b.dim) + int64(j)))
	}
	return r.pt
}

// Entries decodes every base entry — the checkpoint-writing path, which is
// allowed to touch the whole file.
func (b *PagedBase) Entries() ([]DynEntry, error) {
	r, err := b.newReader()
	if err != nil {
		return nil, err
	}
	defer r.release()
	out := make([]DynEntry, 0, b.count)
	for i := int64(0); i < b.count; i++ {
		doc := r.docOf(i)
		obj := dataset.Object{
			Point: append(geom.Point(nil), r.pointOf(i)...),
			Doc:   append([]dataset.Keyword(nil), doc...),
		}
		out = append(out, DynEntry{Handle: b.handleAt(r.hv, i), Obj: obj})
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	return out, nil
}
