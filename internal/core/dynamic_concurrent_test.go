package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// Concurrency tests for the copy-on-write dynamic index: readers and
// snapshots must observe only fully published states while a writer churns,
// pinned views must answer identically forever, and the shared obs gauges
// must track the fleet's structural totals exactly even when several
// instances publish deltas concurrently. Run under -race (make race).

// churn applies n randomized ops (~1/4 deletes of still-live handles) to d.
// It is the single mutator of d; DynamicORPKW serializes mutators internally,
// so the test's writer goroutines never coordinate beyond this.
func churn(t *testing.T, d *DynamicORPKW, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var live []int64
	for i := 0; i < n; i++ {
		if len(live) > 0 && rng.Intn(4) == 0 {
			j := rng.Intn(len(live))
			ok, err := d.Delete(live[j])
			if err != nil || !ok {
				t.Errorf("op %d: Delete(%d) = %v, %v", i, live[j], ok, err)
				return
			}
			live = append(live[:j], live[j+1:]...)
		} else {
			h, err := d.Insert(randObj(rng))
			if err != nil {
				t.Errorf("op %d: Insert: %v", i, err)
				return
			}
			live = append(live, h)
		}
	}
}

// snapBrute answers a query by brute force over a snapshot's own Entries
// dump — the self-consistency oracle: whatever state a reader pinned, its
// queries must agree with its entry listing.
func snapBrute(s *DynSnapshot, q *geom.Rect, ws []dataset.Keyword) []int64 {
	entries, err := s.Entries()
	if err != nil {
		panic(err)
	}
	var out []int64
	for _, e := range entries {
		if q.ContainsPoint(e.Obj.Point) && docHasAll(e.Obj.Doc, ws) {
			out = append(out, e.Handle)
		}
	}
	return out
}

// TestDynamicConcurrentSnapshotConsistency runs lock-free readers against a
// churning writer. Every pinned snapshot must be internally consistent —
// Len matches its entry dump, Collect matches brute force over that dump,
// and a repeated query answers identically — and the seqs a reader observes
// must never go backwards.
func TestDynamicConcurrentSnapshotConsistency(t *testing.T) {
	d, err := NewDynamicORPKW(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		churn(t, d, 42, 800)
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			lastSeq := uint64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				s := d.SnapshotNow()
				if s.Seq() < lastSeq {
					t.Errorf("reader %d: seq went backwards: %d after %d", r, s.Seq(), lastSeq)
					return
				}
				lastSeq = s.Seq()
				es, err := s.Entries()
				if err != nil {
					t.Errorf("reader %d: Entries: %v", r, err)
					return
				}
				if got := len(es); got != s.Len() {
					t.Errorf("reader %d: seq %d: Entries()=%d, Len()=%d", r, s.Seq(), got, s.Len())
					return
				}
				a := dataset.Keyword(rng.Intn(9))
				ws := []dataset.Keyword{a, a + 1}
				q := geom.NewRect([]float64{0, 0}, []float64{rng.Float64(), 1})
				got, _, err := s.Collect(q, ws)
				if err != nil {
					t.Errorf("reader %d: Collect: %v", r, err)
					return
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				want := snapBrute(s, q, ws)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("reader %d: seq %d: Collect %v, entries say %v", r, s.Seq(), got, want)
					return
				}
				again, _, err := s.Collect(q, ws)
				if err != nil {
					t.Errorf("reader %d: repeat Collect: %v", r, err)
					return
				}
				sort.Slice(again, func(i, j int) bool { return again[i] < again[j] })
				if fmt.Sprint(got) != fmt.Sprint(again) {
					t.Errorf("reader %d: seq %d not repeatable: %v then %v", r, s.Seq(), got, again)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	<-done
}

// TestDynamicSnapshotPinnedAcrossChurn pins a view, records a query answer,
// applies enough churn to trigger carries and a compaction, and requires the
// pinned view to answer byte-identically while the head has moved on.
func TestDynamicSnapshotPinnedAcrossChurn(t *testing.T) {
	d, err := NewDynamicORPKW(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var handles []int64
	for i := 0; i < 30; i++ {
		h, err := d.Insert(randObj(rng))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	s := d.SnapshotNow()
	pinSeq := s.Seq()
	all := geom.NewRect([]float64{-1, -1}, []float64{2, 2})
	ws := []dataset.Keyword{2, 5}
	before, _, err := s.Collect(all, ws)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(before, func(i, j int) bool { return before[i] < before[j] })
	eb, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	entriesBefore := fmt.Sprint(eb)

	// Churn past the pin: deletes force tombstones and a compaction, inserts
	// force buffer carries that rebuild the bucket array the pin points into.
	for _, h := range handles[:20] {
		if ok, err := d.Delete(h); err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", h, ok, err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := d.Insert(randObj(rng)); err != nil {
			t.Fatal(err)
		}
	}

	if s.Seq() != pinSeq {
		t.Fatalf("pinned seq moved: %d -> %d", pinSeq, s.Seq())
	}
	after, _, err := s.Collect(all, ws)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(after, func(i, j int) bool { return after[i] < after[j] })
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("pinned view changed: %v then %v", before, after)
	}
	ea, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(ea); got != entriesBefore {
		t.Fatalf("pinned entry dump changed across churn")
	}
	if head := d.Seq(); head <= pinSeq {
		t.Fatalf("head seq %d did not advance past pin %d", head, pinSeq)
	}
}

// TestDynamicGaugeDeltasConcurrentChurn is the registry-delta invariant:
// several instances churning concurrently publish gauge deltas against their
// own predecessor states, so after they quiesce the shared gauges must have
// moved by exactly the sum of the instances' structural values — no lost or
// double-counted updates.
func TestDynamicGaugeDeltasConcurrentChurn(t *testing.T) {
	reg := obs.Default()
	bucketsG := reg.Gauge("kwsc_dynamic_buckets")
	liveG := reg.Gauge("kwsc_dynamic_live_objects")
	bufferedG := reg.Gauge("kwsc_dynamic_buffered")
	tombG := reg.Gauge("kwsc_dynamic_tombstones")
	pubC := reg.Counter("kwsc_dynamic_state_publishes_total")
	buckets0, live0 := bucketsG.Load(), liveG.Load()
	buffered0, tomb0 := bufferedG.Load(), tombG.Load()
	pub0 := pubC.Load()

	const nIdx, opsEach = 3, 500
	idxs := make([]*DynamicORPKW, nIdx)
	for i := range idxs {
		d, err := NewDynamicORPKW(2, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		idxs[i] = d
	}
	var wg sync.WaitGroup
	for i, d := range idxs {
		wg.Add(1)
		go func(i int, d *DynamicORPKW) {
			defer wg.Done()
			churn(t, d, int64(100+i), opsEach)
		}(i, d)
	}
	wg.Wait()

	var wantBuckets, wantLive, wantBuffered, wantTombs int64
	for _, d := range idxs {
		live, tombs := d.Len(), d.Tombstones()
		inBuckets := 0
		for _, n := range d.Buckets() {
			inBuckets += n
		}
		// live = buffered + (bucket entries − tombstones): bucket entries
		// still include the tombstoned ones until a compaction purges them.
		wantBuckets += int64(d.NumBuckets())
		wantLive += int64(live)
		wantBuffered += int64(live - (inBuckets - tombs))
		wantTombs += int64(tombs)
	}
	type row struct {
		name  string
		delta int64
		want  int64
	}
	for _, r := range []row{
		{"kwsc_dynamic_buckets", bucketsG.Load() - buckets0, wantBuckets},
		{"kwsc_dynamic_live_objects", liveG.Load() - live0, wantLive},
		{"kwsc_dynamic_buffered", bufferedG.Load() - buffered0, wantBuffered},
		{"kwsc_dynamic_tombstones", tombG.Load() - tomb0, wantTombs},
	} {
		if r.delta != r.want {
			t.Errorf("%s moved by %d, instances account for %d", r.name, r.delta, r.want)
		}
	}
	// One publish per applied mutation, exactly.
	if gotPub := pubC.Load() - pub0; gotPub != nIdx*opsEach {
		t.Errorf("publishes moved by %d, want %d (one per applied op)", gotPub, nIdx*opsEach)
	}
}
