package core

import (
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

func TestCountAndEmptyORPKW(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 400, Dim: 2, Vocab: 20, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		q := workload.RandRect(rng, 2, 0.4)
		ws := workload.RandKeywords(rng, 20, 2)
		want := len(ds.Filter(q, ws))
		n, _, err := ix.Count(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("Count = %d, want %d", n, want)
		}
		empty, st, err := ix.Empty(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		if empty != (want == 0) {
			t.Fatalf("Empty = %v, want %v", empty, want == 0)
		}
		if want > 0 && st.Reported != 1 {
			t.Fatalf("emptiness query reported %d; must stop at the first hit", st.Reported)
		}
	}
}

func TestCountAndEmptyHighDim(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 2, Objects: 600, Dim: 3, Vocab: 15, DocLen: 4})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 15; trial++ {
		q := workload.RandRect(rng, 3, 0.6)
		ws := workload.RandKeywords(rng, 15, 2)
		want := len(ds.Filter(q, ws))
		n, _, err := ix.Count(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("Count = %d, want %d", n, want)
		}
		empty, _, err := ix.Empty(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		if empty != (want == 0) {
			t.Fatalf("Empty = %v, want %v", empty, want == 0)
		}
	}
}

func TestCountConstraintsAndSphere(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 400, Dim: 2, Vocab: 15, DocLen: 4})
	lc, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srp, err := BuildSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 15; trial++ {
		ws := workload.RandKeywords(rng, 15, 2)
		hs := workload.RandHalfspaces(rng, 2, 2, 0.6)
		want := len(ds.Filter(geom.NewPolyhedron(hs...), ws))
		n, _, err := lc.CountConstraints(hs, ws)
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("CountConstraints = %d, want %d", n, want)
		}
		empty, _, err := lc.EmptyConstraints(hs, ws)
		if err != nil {
			t.Fatal(err)
		}
		if empty != (want == 0) {
			t.Fatal("EmptyConstraints disagrees with Count")
		}
		s := geom.NewSphere(geom.Point{rng.Float64(), rng.Float64()}, 0.2)
		wantS := len(ds.Filter(s, ws))
		nS, _, err := srp.Count(s, ws)
		if err != nil {
			t.Fatal(err)
		}
		if nS != wantS {
			t.Fatalf("sphere Count = %d, want %d", nS, wantS)
		}
		emptyS, _, err := srp.Empty(s, ws)
		if err != nil {
			t.Fatal(err)
		}
		if emptyS != (wantS == 0) {
			t.Fatal("sphere Empty disagrees")
		}
	}
}

func TestCountRRKW(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	rects := make([]RectObject, 200)
	for i := range rects {
		a := rng.Float64()
		rects[i] = RectObject{
			Rect: &geom.Rect{Lo: []float64{a}, Hi: []float64{a + 0.1}},
			Doc:  []dataset.Keyword{dataset.Keyword(rng.Intn(4)), 4 + dataset.Keyword(rng.Intn(4))},
		}
	}
	ix, err := BuildRRKW(rects, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := &geom.Rect{Lo: []float64{0.4}, Hi: []float64{0.6}}
	ws := []dataset.Keyword{1, 5}
	want := 0
	for i, r := range rects {
		if ix.Dataset().HasAll(int32(i), ws) && r.Rect.Hi[0] >= 0.4 && r.Rect.Lo[0] <= 0.6 {
			want++
		}
	}
	n, _, err := ix.Count(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("RRKW Count = %d, want %d", n, want)
	}
	empty, _, err := ix.Empty(q, ws)
	if err != nil {
		t.Fatal(err)
	}
	if empty != (want == 0) {
		t.Fatal("RRKW Empty disagrees")
	}
}
