package core

import (
	"fmt"
	"math"
	"time"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/invidx"
	"kwsc/internal/obs"
)

// Planner is a cost-based router over the three ways to answer a
// rectangle+keywords query — the paper's index and the two naive baselines
// it generalizes. The paper's point is asymptotic domination, but at finite
// N each strategy has a regime: a very rare keyword makes the posting scan
// unbeatable, a tiny region makes the geometric filter cheap, and everything
// else belongs to the framework. The planner applies the paper's own cost
// formulas as estimates, with the classic independence assumption supplying
// the output-cardinality estimate:
//
//	estOUT          = min(min_w |S_w|, |D| * prod_w (|S_w|/|D|) * sel(q))
//	keywords-only:   k * min_w |S_w|            (galloping intersection)
//	structured-only: sel(q) * |D|               (uniformity assumption)
//	framework:       N^{1-1/k} * (1 + estOUT^{1/k})
//
// All three routes return identical results; only cost differs.
type Planner struct {
	ds   *dataset.Dataset
	k    int
	orp  *ORPKW
	inv  *invidx.Packed
	so   *StructuredOnly
	bbox *geom.Rect
	nPow float64 // N^{1-1/k}

	fam    family
	tracer obs.Tracer
}

// Route identifies the strategy a plan selected.
type Route string

// The planner's strategies.
const (
	RouteFramework      Route = "framework"       // the paper's index (Theorem 1/2)
	RouteKeywordsOnly   Route = "keywords-only"   // posting intersection + filter
	RouteStructuredOnly Route = "structured-only" // geometric filter + keyword check
)

// Plan records a routing decision.
type Plan struct {
	Route     Route
	Estimates map[Route]float64 // estimated work units per strategy
}

// BuildPlanner constructs all three strategies for k-keyword queries.
func BuildPlanner(ds *dataset.Dataset, k int, opts ...BuildOption) (*Planner, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	o := resolveOpts(opts)
	bt := obsBuildStart()
	// The framework route is one of the planner's internal strategies:
	// untagged, so each routed query is counted once under planner.
	orp, err := BuildORPKWWith(ds, k, o.inner())
	if err != nil {
		return nil, err
	}
	pts := make([]geom.Point, ds.Len())
	for i := range pts {
		pts[i] = ds.Point(int32(i))
	}
	p := &Planner{
		ds:     ds,
		k:      k,
		orp:    orp,
		inv:    invidx.BuildPacked(ds),
		so:     BuildStructuredOnly(ds, nil),
		bbox:   geom.BoundingRect(pts),
		nPow:   math.Pow(float64(ds.N()), 1-1/float64(k)),
		fam:    o.famFor(famPlanner),
		tracer: o.Tracer,
	}
	obsBuildEnd(p.fam, bt)
	return p, nil
}

// Explain estimates each strategy without running anything.
func (p *Planner) Explain(q *geom.Rect, ws []dataset.Keyword) Plan {
	minDF := math.MaxFloat64
	indep := float64(p.ds.Len())
	for _, w := range ws {
		df := float64(p.inv.DocFrequency(w))
		if df < minDF {
			minDF = df
		}
		indep *= df / float64(p.ds.Len())
	}
	sel := p.selectivity(q)
	estOut := math.Min(minDF, indep*sel)
	est := map[Route]float64{
		RouteKeywordsOnly:   float64(p.k) * minDF,
		RouteStructuredOnly: sel * float64(p.ds.Len()),
		RouteFramework:      p.nPow * (1 + math.Pow(estOut, 1/float64(p.k))),
	}
	best := RouteFramework
	for r, c := range est {
		if c < est[best] || (c == est[best] && r == RouteKeywordsOnly) {
			best = r
		}
	}
	return Plan{Route: best, Estimates: est}
}

// selectivity estimates the fraction of objects inside q under a uniformity
// assumption over the data bounding box.
func (p *Planner) selectivity(q *geom.Rect) float64 {
	frac := 1.0
	for j := 0; j < p.ds.Dim(); j++ {
		span := p.bbox.Hi[j] - p.bbox.Lo[j]
		if span <= 0 {
			continue
		}
		lo := math.Max(q.Lo[j], p.bbox.Lo[j])
		hi := math.Min(q.Hi[j], p.bbox.Hi[j])
		if hi <= lo {
			return 0
		}
		frac *= (hi - lo) / span
	}
	return frac
}

// Query routes and executes. The returned plan reports the decision; stats
// are filled for the framework route (the baselines report only result
// counts through the plan estimates).
func (p *Planner) Query(q *geom.Rect, ws []dataset.Keyword, report func(int32)) (plan Plan, st QueryStats, err error) {
	qt := obsBegin(p.fam, "Query", p.tracer)
	defer func() {
		if obsEnd(p.fam, qt, &st, err, p.tracer) {
			p.emitPlanSpan(plan, q, ws, qt, &st, err)
		}
	}()
	if len(ws) != p.k {
		return Plan{}, QueryStats{}, fmt.Errorf("core: planner built for k=%d, query has %d keywords", p.k, len(ws))
	}
	if err := dataset.ValidateKeywords(ws); err != nil {
		return Plan{}, QueryStats{}, err
	}
	plan = p.Explain(q, ws)
	p.countRoute(plan.Route)
	switch plan.Route {
	case RouteKeywordsOnly:
		for _, id := range p.inv.KeywordsOnly(q, ws) {
			report(id)
			st.Reported++
		}
		return plan, st, nil
	case RouteStructuredOnly:
		ids, _, _ := p.so.Query(q, ws)
		for _, id := range ids {
			report(id)
			st.Reported++
		}
		return plan, st, nil
	default:
		st, err = p.orp.Query(q, ws, QueryOpts{}, report)
		return plan, st, err
	}
}

// countRoute records the routing decision in the shared route counters.
func (p *Planner) countRoute(r Route) {
	if p.fam == famNone || !obs.MetricsEnabled() {
		return
	}
	switch r {
	case RouteKeywordsOnly:
		routeKeywordsHits.Inc()
	case RouteStructuredOnly:
		routeStructuredHits.Inc()
	default:
		routeFrameworkHits.Inc()
	}
}

// emitPlanSpan is the planner's decision trace: the usual query span plus the
// chosen route and the per-strategy cost estimates that drove the decision.
func (p *Planner) emitPlanSpan(plan Plan, q *geom.Rect, ws []dataset.Keyword, start time.Time, st *QueryStats, err error) {
	sp := obs.Span{
		Family:  famNames[p.fam],
		Op:      "Query",
		Query:   echoRegion(q, ws),
		K:       p.k,
		Out:     st.Reported,
		Ops:     st.Ops,
		Nodes:   st.NodesVisited,
		Elapsed: time.Since(start),
		Outcome: outcomeOf(err),
		Err:     err,
		Route:   string(plan.Route),
	}
	if len(plan.Estimates) > 0 {
		sp.Estimates = make(map[string]float64, len(plan.Estimates))
		for r, c := range plan.Estimates {
			sp.Estimates[string(r)] = c
		}
	}
	emitSpan(sp, p.tracer)
}

// Collect is Query returning a slice.
func (p *Planner) Collect(q *geom.Rect, ws []dataset.Keyword) ([]int32, Plan, error) {
	var out []int32
	plan, _, err := p.Query(q, ws, func(id int32) { out = append(out, id) })
	return out, plan, err
}
