package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"kwsc/internal/codec"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/pager"
)

// testCheckpointSnapshot builds a random snapshot with canonical documents
// and strictly increasing (gappy) handles.
func testCheckpointSnapshot(seed int64, n, dim int) *codec.Snapshot {
	rng := rand.New(rand.NewSource(seed))
	s := &codec.Snapshot{K: 2, Dim: dim, LastSeq: uint64(3 * n)}
	h := int64(-1)
	for i := 0; i < n; i++ {
		h += 1 + int64(rng.Intn(3))
		doc := make([]dataset.Keyword, 1+rng.Intn(5))
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(12))
		}
		pt := make(geom.Point, dim)
		for j := range pt {
			pt[j] = rng.Float64()
		}
		s.Entries = append(s.Entries, codec.SnapshotEntry{
			Handle: h,
			Obj:    dataset.Object{Point: pt, Doc: dataset.NormalizeDoc(doc)},
		})
	}
	s.NextHandle = h + 1
	return s
}

// writePagedCheckpoint serializes snap as a KWCP2 container at dir/name.
func writePagedCheckpoint(t *testing.T, dir, name string, snap *codec.Snapshot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := codec.WritePagedSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// snapOracle answers queries by brute force over the snapshot entries.
func snapOracle(snap *codec.Snapshot, q *geom.Rect, ws []dataset.Keyword) []int64 {
	var out []int64
	for i := range snap.Entries {
		e := &snap.Entries[i]
		if q.ContainsPoint(e.Obj.Point) && docHasAll(e.Obj.Doc, ws) {
			out = append(out, e.Handle)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func collectBase(t *testing.T, b *PagedBase, q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int64, QueryStats) {
	t.Helper()
	var got []int64
	st, err := b.Query(q, ws, opts, func(h int64, obj *dataset.Object) {
		if len(obj.Point) != b.Dim() || len(obj.Doc) == 0 {
			t.Fatalf("reported object malformed: %v", obj)
		}
		got = append(got, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	return got, st
}

func randRect(rng *rand.Rand, dim int) *geom.Rect {
	q := &geom.Rect{Lo: make([]float64, dim), Hi: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		q.Lo[j], q.Hi[j] = a, b
	}
	return q
}

func randKeywordPair(rng *rand.Rand) []dataset.Keyword {
	a := dataset.Keyword(rng.Intn(12))
	b := dataset.Keyword(rng.Intn(12))
	for b == a {
		b = dataset.Keyword(rng.Intn(12))
	}
	return []dataset.Keyword{a, b}
}

// openBothBaseModes opens the same snapshot bytes mapped and through the
// bounded pread pool (distinct files: the pager registry is a per-path
// singleton, so one path cannot be open in two modes at once).
func openBothBaseModes(t *testing.T, snap *codec.Snapshot) map[string]*PagedBase {
	t.Helper()
	dir := t.TempDir()
	modes := map[string]*PagedBase{}
	pm := writePagedCheckpoint(t, dir, "mmap.ckpt", snap)
	b, err := OpenPagedBase(pm, PagedBaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	modes["mmap"] = b
	pp := writePagedCheckpoint(t, dir, "pread.ckpt", snap)
	b, err = OpenPagedBase(pp, PagedBaseOptions{NoMmap: true, CapPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	modes["pread"] = b
	return modes
}

func TestPagedBaseQueryBothModes(t *testing.T) {
	snap := testCheckpointSnapshot(11, 400, 2)
	for mode, b := range openBothBaseModes(t, snap) {
		t.Run(mode, func(t *testing.T) {
			defer b.Close()
			if b.Len() != len(snap.Entries) || b.K() != snap.K || b.Dim() != snap.Dim {
				t.Fatalf("meta mismatch: len=%d k=%d dim=%d", b.Len(), b.K(), b.Dim())
			}
			if b.LastSeq() != snap.LastSeq || b.NextHandle() != snap.NextHandle {
				t.Fatalf("watermarks: seq=%d next=%d", b.LastSeq(), b.NextHandle())
			}
			present := map[int64]bool{}
			for _, e := range snap.Entries {
				present[e.Handle] = true
				if !b.Has(e.Handle) {
					t.Fatalf("Has(%d) = false for a base handle", e.Handle)
				}
			}
			for h := int64(0); h < snap.NextHandle+2; h++ {
				if b.Has(h) != present[h] {
					t.Fatalf("Has(%d) = %v, want %v", h, !present[h], present[h])
				}
			}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 60; i++ {
				q, ws := randRect(rng, 2), randKeywordPair(rng)
				got, st := collectBase(t, b, q, ws, QueryOpts{})
				want := snapOracle(snap, q, ws)
				if len(got) != len(want) {
					t.Fatalf("query %d: %d results, want %d", i, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("query %d: handle %d, want %d", i, got[j], want[j])
					}
				}
				if st.Reported != len(want) {
					t.Fatalf("query %d: Reported=%d, want %d", i, st.Reported, len(want))
				}
				if len(want) > 0 && st.Ops == 0 {
					t.Fatal("non-empty result charged zero ops")
				}
			}
			// A keyword outside the vocabulary empties the result for free.
			got, st := collectBase(t, b, geom.UniverseRect(2), []dataset.Keyword{900, 901}, QueryOpts{})
			if len(got) != 0 || st.Ops != 0 {
				t.Fatalf("absent keyword: %d results, %d ops", len(got), st.Ops)
			}
			// Entries decodes the full snapshot back.
			es, err := b.Entries()
			if err != nil {
				t.Fatal(err)
			}
			if len(es) != len(snap.Entries) {
				t.Fatalf("Entries: %d, want %d", len(es), len(snap.Entries))
			}
			for i, e := range es {
				se := &snap.Entries[i]
				if e.Handle != se.Handle || !pointsEq(e.Obj.Point, se.Obj.Point) || !docsEq(e.Obj.Doc, se.Obj.Doc) {
					t.Fatalf("entry %d differs: %+v vs %+v", i, e, se)
				}
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal("second Close must be a no-op, got", err)
			}
		})
	}
}

func pointsEq(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func docsEq(a, b []dataset.Keyword) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPagedBaseStopConditions(t *testing.T) {
	snap := testCheckpointSnapshot(13, 300, 2)
	for mode, b := range openBothBaseModes(t, snap) {
		t.Run(mode, func(t *testing.T) {
			defer b.Close()
			ws := []dataset.Keyword{0, 1}
			all := snapOracle(snap, geom.UniverseRect(2), ws)
			if len(all) < 3 {
				t.Skip("seed produced too few matches")
			}
			// Limit truncates silently after the cap.
			got, st := collectBase(t, b, geom.UniverseRect(2), ws, QueryOpts{Limit: 2})
			if len(got) != 2 || !st.Truncated || st.BudgetHit {
				t.Fatalf("limit: %d results, truncated=%v budgetHit=%v", len(got), st.Truncated, st.BudgetHit)
			}
			// Budget exhaustion is a silent stop with BudgetHit.
			_, st = collectBase(t, b, geom.UniverseRect(2), ws, QueryOpts{Budget: 1})
			if !st.BudgetHit || !st.Truncated {
				t.Fatalf("budget: budgetHit=%v truncated=%v", st.BudgetHit, st.Truncated)
			}
			// Policy node budget surfaces as a typed error with partial stats.
			_, err := b.Query(geom.UniverseRect(2), ws, QueryOpts{Policy: ExecPolicy{NodeBudget: 1}}, func(int64, *dataset.Object) {})
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("policy budget: err=%v, want ErrBudget", err)
			}
			// Arity and rectangle validation match the in-RAM indexes.
			if _, err := b.Query(geom.UniverseRect(2), []dataset.Keyword{1}, QueryOpts{}, nil); !errors.Is(err, ErrInvalidQuery) {
				t.Fatalf("arity: err=%v", err)
			}
			if _, err := b.Query(&geom.Rect{Lo: []float64{0}, Hi: []float64{1}}, ws, QueryOpts{}, nil); err == nil {
				t.Fatal("dimension-mismatched rectangle accepted")
			}
		})
	}
}

// TestPagedBaseMatchesClassicRestore drives the same mutation + query history
// against a fully decoded restore and a paged-base restore and demands
// identical results throughout — the paged base is a drop-in bottom layer.
func TestPagedBaseMatchesClassicRestore(t *testing.T) {
	snap := testCheckpointSnapshot(17, 250, 2)
	dir := t.TempDir()
	p := writePagedCheckpoint(t, dir, "base.ckpt", snap)
	b, err := OpenPagedBase(p, PagedBaseOptions{NoMmap: true, CapPages: 16})
	if err != nil {
		t.Fatal(err)
	}

	entries := make([]DynEntry, len(snap.Entries))
	for i, e := range snap.Entries {
		entries[i] = DynEntry{Handle: e.Handle, Obj: e.Obj}
	}
	classic, err := RestoreDynamicORPKW(2, 2, 8, entries, snap.NextHandle)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := RestoreDynamicORPKWFromBase(2, 2, 8, b, snap.NextHandle)
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Base().Close()
	if paged.Len() != classic.Len() {
		t.Fatalf("restored Len %d vs %d", paged.Len(), classic.Len())
	}

	rng := rand.New(rand.NewSource(29))
	handles := make([]int64, len(entries))
	for i, e := range entries {
		handles[i] = e.Handle
	}
	check := func(step int) {
		q, ws := randRect(rng, 2), randKeywordPair(rng)
		if step%7 == 0 {
			q = geom.UniverseRect(2)
		}
		gc, _, err := classic.Collect(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		gp, _, err := paged.Collect(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(gc, func(a, b int) bool { return gc[a] < gc[b] })
		sort.Slice(gp, func(a, b int) bool { return gp[a] < gp[b] })
		if len(gc) != len(gp) {
			t.Fatalf("step %d: classic %d results, paged %d", step, len(gc), len(gp))
		}
		for i := range gc {
			if gc[i] != gp[i] {
				t.Fatalf("step %d: result %d differs: %d vs %d", step, i, gc[i], gp[i])
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch {
		case step%3 == 0 && len(handles) > 0:
			// Delete a random live handle (often a base-resident one) from both.
			i := rng.Intn(len(handles))
			h := handles[i]
			ok1, err1 := classic.Delete(h)
			ok2, err2 := paged.Delete(h)
			if err1 != nil || err2 != nil || ok1 != ok2 {
				t.Fatalf("step %d: delete(%d) = (%v,%v) vs (%v,%v)", step, h, ok1, err1, ok2, err2)
			}
			handles[i] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		default:
			obj := randObj(rng)
			h1, err1 := classic.Insert(obj)
			h2, err2 := paged.Insert(obj)
			if err1 != nil || err2 != nil || h1 != h2 {
				t.Fatalf("step %d: insert = (%d,%v) vs (%d,%v)", step, h1, err1, h2, err2)
			}
			handles = append(handles, h1)
		}
		if paged.Len() != classic.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, paged.Len(), classic.Len())
		}
		if step%10 == 0 {
			check(step)
		}
	}
	check(401)

	// The merged durability snapshots agree entry for entry.
	ec, err := classic.SnapshotNow().Entries()
	if err != nil {
		t.Fatal(err)
	}
	ep, err := paged.SnapshotNow().Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(ec) != len(ep) {
		t.Fatalf("snapshot entries: %d vs %d", len(ec), len(ep))
	}
	for i := range ec {
		if ec[i].Handle != ep[i].Handle || !pointsEq(ec[i].Obj.Point, ep[i].Obj.Point) || !docsEq(ec[i].Obj.Doc, ep[i].Obj.Doc) {
			t.Fatalf("snapshot entry %d differs: %+v vs %+v", i, ec[i], ep[i])
		}
	}
}

// TestPagedBaseDeleteSemantics exercises tombstoning of base entries: double
// deletes, Len accounting, exclusion from queries and snapshots, and survival
// of base tombstones across bucket compactions.
func TestPagedBaseDeleteSemantics(t *testing.T) {
	snap := testCheckpointSnapshot(19, 64, 2)
	dir := t.TempDir()
	p := writePagedCheckpoint(t, dir, "del.ckpt", snap)
	b, err := OpenPagedBase(p, PagedBaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := RestoreDynamicORPKWFromBase(2, 2, 4, b, snap.NextHandle)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	victim := snap.Entries[10].Handle
	if ok, err := d.Delete(victim); err != nil || !ok {
		t.Fatalf("delete base handle: ok=%v err=%v", ok, err)
	}
	if ok, _ := d.Delete(victim); ok {
		t.Fatal("double delete of a base handle reported true")
	}
	if d.Len() != len(snap.Entries)-1 {
		t.Fatalf("Len = %d after one delete", d.Len())
	}
	got, _, err := d.Collect(geom.UniverseRect(2), snap.Entries[10].Obj.Doc[:1+len(snap.Entries[10].Obj.Doc)%2])
	if err == nil {
		for _, h := range got {
			if h == victim {
				t.Fatal("tombstoned base handle reported by a query")
			}
		}
	}

	// Fill buckets above the base, then delete every inserted entry: the
	// bucket tombstones force compactions, which must neither resurrect the
	// base victim nor purge base tombstones (the base is immutable).
	rng := rand.New(rand.NewSource(31))
	var inserted []int64
	for i := 0; i < 64; i++ {
		h, err := d.Insert(randObj(rng))
		if err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, h)
	}
	for _, h := range inserted {
		if ok, err := d.Delete(h); err != nil || !ok {
			t.Fatalf("delete inserted %d: ok=%v err=%v", h, ok, err)
		}
	}
	if d.Len() != len(snap.Entries)-1 {
		t.Fatalf("Len = %d after churn, want %d", d.Len(), len(snap.Entries)-1)
	}
	if d.Base() == nil {
		t.Fatal("compaction dropped the base layer")
	}
	es, err := d.SnapshotNow().Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != len(snap.Entries)-1 {
		t.Fatalf("snapshot entries = %d, want %d", len(es), len(snap.Entries)-1)
	}
	for _, e := range es {
		if e.Handle == victim {
			t.Fatal("snapshot resurrects the tombstoned base handle")
		}
	}
	// Compactions must have purged bucket tombstones (65 deletes happened)
	// while maintaining the rest-state invariant — bucket tombstones (total
	// minus the one immutable base tombstone) stay under half the live count,
	// so the base tombstone can never retrigger compaction forever.
	tombs := d.Tombstones()
	if tombs >= 65 {
		t.Fatalf("tombstones = %d: no compaction purged anything", tombs)
	}
	if 2*(tombs-1) > d.Len() {
		t.Fatalf("tombstones = %d violate the compaction invariant for %d live", tombs, d.Len())
	}
}

// TestPagedBaseLazyChecksum: in pread mode payload pages are verified on
// first pin, so a corrupt points page passes open (which touches only
// metadata columns) but fails the first query that reads it.
func TestPagedBaseLazyChecksum(t *testing.T) {
	snap := testCheckpointSnapshot(23, 500, 4)
	dir := t.TempDir()
	p := writePagedCheckpoint(t, dir, "corrupt.ckpt", snap)

	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	c, err := codec.ParseContainer(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	off, n, ok := c.Section(codec.SecPoints)
	if !ok || n < 8 {
		t.Fatal("no points section")
	}
	raw[off+n/2] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := OpenPagedBase(p, PagedBaseOptions{NoMmap: true, CapPages: 8})
	if err != nil {
		t.Fatalf("pread open must not touch payload pages: %v", err)
	}
	defer b.Close()
	var qerr error
	for i := 0; i < 60 && qerr == nil; i++ {
		ws := []dataset.Keyword{dataset.Keyword(i % 12), dataset.Keyword((i + 1) % 12)}
		_, qerr = b.Query(geom.UniverseRect(4), ws, QueryOpts{}, func(int64, *dataset.Object) {})
	}
	if !errors.Is(qerr, pager.ErrChecksum) {
		t.Fatalf("corrupt payload page served without ErrChecksum (err=%v)", qerr)
	}

	// The mapped open verifies every page eagerly when zero-copy casts are
	// active, and lazily otherwise — either way the corruption surfaces.
	p2 := filepath.Join(dir, "corrupt2.ckpt")
	if err := os.WriteFile(p2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenPagedBase(p2, PagedBaseOptions{})
	if err == nil {
		defer b2.Close()
		var qerr2 error
		for i := 0; i < 60 && qerr2 == nil; i++ {
			ws := []dataset.Keyword{dataset.Keyword(i % 12), dataset.Keyword((i + 1) % 12)}
			_, qerr2 = b2.Query(geom.UniverseRect(4), ws, QueryOpts{}, func(int64, *dataset.Object) {})
		}
		if !errors.Is(qerr2, pager.ErrChecksum) {
			t.Fatalf("mapped mode served corrupt page (err=%v)", qerr2)
		}
	} else if !errors.Is(err, pager.ErrChecksum) {
		t.Fatalf("mapped open failed with %v, want ErrChecksum", err)
	}
}

// TestOpenPagedBaseRejectsBadFiles: a v1 checkpoint, truncation, and a
// wrong-kind container are all refused at open.
func TestOpenPagedBaseRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	snap := testCheckpointSnapshot(37, 40, 2)

	var v1 bytes.Buffer
	if err := codec.WriteSnapshot(&v1, snap); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(dir, "v1.ckpt")
	if err := os.WriteFile(p1, v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPagedBase(p1, PagedBaseOptions{}); err == nil {
		t.Fatal("v1 checkpoint accepted as a paged base")
	}

	p2 := writePagedCheckpoint(t, dir, "trunc.ckpt", snap)
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, raw[:len(raw)-pager.PageSize], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPagedBase(p2, PagedBaseOptions{}); err == nil {
		t.Fatal("truncated container accepted")
	}
}
