package core

// Tests that realize the paper's theoretical arguments as executable checks:
// the Appendix G reduction and the Lemma 8 algebra.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// Appendix G reduces k-SI reporting to L∞NN-KW: starting from t=1, issue an
// NN query with an arbitrary query point; if it reports fewer than t
// objects, it has found the entire D(w1..wk); otherwise double t. The test
// executes the reduction and checks it reproduces the exact intersection.
func TestAppendixGReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := make([]dataset.Object, 400)
	for i := range objs {
		doc := make([]dataset.Keyword, 1+rng.Intn(4))
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(8))
		}
		objs[i] = dataset.Object{
			Point: geom.Point{rng.Float64(), rng.Float64()},
			Doc:   doc,
		}
	}
	ds := dataset.MustNew(objs)
	nn, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := dataset.Keyword(0); a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			ws := []dataset.Keyword{a, b}
			want := ds.Filter(geom.FullSpace{}, ws)
			// The reduction, verbatim: arbitrary query point, doubling t.
			q := geom.Point{0.37, 0.61}
			var res []NNResult
			for tt := 1; ; tt *= 2 {
				r, _, err := nn.Query(q, tt, ws, QueryOpts{})
				if err != nil {
					t.Fatal(err)
				}
				if len(r) < tt {
					res = r
					break
				}
				if tt > 2*ds.Len() {
					t.Fatal("doubling runaway; reduction broken")
				}
			}
			if len(res) != len(want) {
				t.Fatalf("(%d,%d): reduction found %d, intersection has %d",
					a, b, len(res), len(want))
			}
			got := make([]int32, len(res))
			for i, r := range res {
				got[i] = r.ID
			}
			sort.Slice(got, func(x, y int) bool { return got[x] < got[y] })
			sort.Slice(want, func(x, y int) bool { return want[x] < want[y] })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("(%d,%d): element %d mismatch", a, b, i)
				}
			}
		}
	}
}

// Lemma 8's algebra: if an index achieves query time (3)
// O(N^{1-1/k} + N^{1-1/k} OUT^{1/k - eps} + OUT), then it achieves
// O(N^{1-delta} + OUT) with delta = min{1/k, eps/(1-1/k+eps)}. The proof
// splits on OUT vs N^{(1-1/k)/(1-1/k+eps)}; this test verifies both branch
// inequalities numerically over a grid of parameters.
func TestLemma8Algebra(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		for _, eps := range []float64{0.01, 0.1, 0.25, 1.0 / float64(k) * 0.9} {
			invK := 1.0 / float64(k)
			delta := math.Min(invK, eps/(1-invK+eps))
			thresholdExp := (1 - invK) / (1 - invK + eps)
			for _, logN := range []float64{10, 20, 40} {
				n := math.Pow(2, logN)
				threshold := math.Pow(n, thresholdExp)
				for _, outFrac := range []float64{0.1, 0.5, 0.9, 1, 1.1, 2, 10} {
					out := threshold * outFrac
					if out > n || out < 1 {
						continue
					}
					// The middle term of (3), which the lemma shows is
					// dominated by N^{1-delta} + OUT in every case.
					lhs := math.Pow(n, 1-invK) * math.Pow(out, invK-eps)
					bound := math.Max(math.Pow(n, 1-delta), out)
					if lhs > bound*(1+1e-9) {
						t.Fatalf("k=%d eps=%.3f N=2^%.0f OUT=%.3g (threshold %.3g): %g > %g",
							k, eps, logN, out, threshold, lhs, bound)
					}
					// And the first term N^{1-1/k} is dominated as well
					// (delta <= 1/k by definition).
					if math.Pow(n, 1-invK) > math.Pow(n, 1-delta)*(1+1e-9) {
						t.Fatalf("k=%d eps=%.3f: N^{1-1/k} exceeds N^{1-delta}", k, eps)
					}
				}
			}
		}
	}
}

// The tightness discussion of Section 1.2: our index's measured emptiness
// cost at OUT=0 never exceeds a constant multiple of N^{1-1/k} on the
// worst-case-shaped input — i.e. the structure does not secretly defy the
// strong k-set-disjointness conjecture's target (which would require
// sub-N^{1-1/k} time).
func TestEmptinessMatchesDisjointnessBound(t *testing.T) {
	for _, k := range []int{2, 3} {
		n := 6000
		partial := int(0.9 * math.Pow(float64(5*n), 1-1/float64(k)))
		rng := rand.New(rand.NewSource(int64(k)))
		objs := make([]dataset.Object, n)
		for i := range objs {
			doc := []dataset.Keyword{dataset.Keyword(10 + rng.Intn(200))}
			for w := 0; w < k; w++ {
				lo := w * partial
				if i >= lo && i < lo+partial {
					doc = append(doc, dataset.Keyword(w))
				}
			}
			objs[i] = dataset.Object{
				Point: geom.Point{rng.Float64(), rng.Float64()},
				Doc:   doc,
			}
		}
		ds := dataset.MustNew(objs)
		ix, err := BuildKSIFromDataset(ds, k)
		if err != nil {
			t.Fatal(err)
		}
		ws := make([]dataset.Keyword, k)
		for i := range ws {
			ws[i] = dataset.Keyword(i)
		}
		empty, st, err := ix.Empty(ws)
		if err != nil {
			t.Fatal(err)
		}
		if !empty {
			t.Fatal("planted lists are pairwise disjoint; intersection must be empty")
		}
		bound := 30 * math.Pow(float64(ds.N()), 1-1/float64(k))
		if float64(st.Ops) > bound {
			t.Fatalf("k=%d: emptiness cost %d exceeds %f", k, st.Ops, bound)
		}
	}
}

// The headline claim as a regression guard: on the worst-case-shaped
// workload, the measured ORP-KW query cost at OUT=0 scales with an exponent
// close to 1-1/k (work units are deterministic, so this is stable across
// machines; generous tolerance absorbs boundary effects of the small sweep).
func TestHeadlineExponentRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("N sweep too large for -short")
	}
	ops := func(objects int) float64 {
		ds, kws, slab := workload.GenAdversarial(workload.Adversarial{
			Seed: 42, Objects: objects, Dim: 2, K: 2,
		})
		ix, err := BuildORPKW(ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := ix.Collect(slab, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Reported != 0 {
			t.Fatal("adversarial slab must have OUT=0")
		}
		return float64(st.Ops)
	}
	nsmall, nbig := 1<<13, 1<<17 // 16x data
	lo, hi := ops(nsmall), ops(nbig)
	exponent := math.Log(hi/lo) / math.Log(float64(nbig)/float64(nsmall))
	if exponent < 0.2 || exponent > 0.72 {
		t.Fatalf("ORP-KW OUT=0 exponent drifted to %.3f (ops %v -> %v); expected ~0.5",
			exponent, lo, hi)
	}
	// And the absolute cost stays within a constant factor of N^{1/2}.
	bound := 8 * math.Sqrt(float64(nbig*6))
	if hi > bound {
		t.Fatalf("ops %v exceed %v at N~%d", hi, bound, nbig*6)
	}
}
