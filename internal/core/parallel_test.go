package core

import (
	"math/rand"
	"sync"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
	"kwsc/internal/workload"
)

func sameSorted(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: id %d is %d, want %d", label, i, got[i], want[i])
		}
	}
}

// Parallel and serial ORP-KW builds (d = 2) must answer an identical query
// battery identically. The dataset is large enough that subtree groups
// exceed the sequential cutoff, so the parallel path genuinely runs.
func TestParallelBuildDeterminismORPKW2D(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 11, Objects: 6000, Dim: 2, Vocab: 25, DocLen: 4})
	serial, err := BuildORPKWWith(ds, 2, BuildOpts{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildORPKWWith(ds, 2, BuildOpts{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for q := 0; q < 60; q++ {
		rect := workload.RandRect(rng, 2, 0.4)
		ws := workload.RandKeywords(rng, 25, 2)
		a, _, err := serial.Collect(rect, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := par.Collect(rect, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sameSorted(t, "orpkw2d", sortedIDs(b), sortedIDs(a))
		if !sameIDSet(b, ds.Filter(rect, ws)) {
			t.Fatalf("query %d: parallel build disagrees with oracle", q)
		}
	}
}

// Same determinism contract for the d = 3 dimension-reduction index, whose
// parallel build also covers per-node secondary structures.
func TestParallelBuildDeterminismORPKW3D(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 21, Objects: 4000, Dim: 3, Vocab: 20, DocLen: 4})
	serial, err := BuildORPKWHighWith(ds, 2, BuildOpts{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildORPKWHighWith(ds, 2, BuildOpts{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for q := 0; q < 40; q++ {
		rect := workload.RandRect(rng, 3, 0.5)
		ws := workload.RandKeywords(rng, 20, 2)
		a, _, err := serial.Collect(rect, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := par.Collect(rect, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sameSorted(t, "orpkw3d", sortedIDs(b), sortedIDs(a))
		if !sameIDSet(b, ds.Filter(rect, ws)) {
			t.Fatalf("query %d: parallel build disagrees with oracle", q)
		}
	}
}

// Same determinism contract for the partition-tree LC-KW route.
func TestParallelBuildDeterminismLCKW(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 31, Objects: 5000, Dim: 2, Vocab: 20, DocLen: 4})
	serial, err := BuildSPKW(ds, SPKWConfig{K: 2, Build: BuildOpts{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildSPKW(ds, SPKWConfig{K: 2, Build: BuildOpts{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for q := 0; q < 30; q++ {
		rect := workload.RandRect(rng, 2, 0.5)
		hs := []geom.Halfspace{
			{Coef: []float64{1, 0}, Bound: rect.Hi[0]},
			{Coef: []float64{-1, 0}, Bound: -rect.Lo[0]},
			{Coef: []float64{0, 1}, Bound: rect.Hi[1]},
		}
		ws := workload.RandKeywords(rng, 20, 2)
		a, _, err := serial.CollectConstraints(hs, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := par.CollectConstraints(hs, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sameSorted(t, "lckw", sortedIDs(b), sortedIDs(a))
	}
}

// A kd-substrate parallel build must also match, since ORP-KW shares the
// framework with custom splitters.
func TestParallelBuildDeterminismKDSplitter(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 41, Objects: 5000, Dim: 2, Vocab: 18, DocLen: 4})
	build := func(p int) *Framework {
		pts := make([]geom.Point, ds.Len())
		for i := range pts {
			pts[i] = ds.Point(int32(i))
		}
		fw, err := BuildFramework(ds, FrameworkConfig{
			K:           2,
			Splitter:    &spart.KD{Dim: 2},
			Points:      pts,
			Parallelism: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fw
	}
	serial, par := build(1), build(4)
	rng := rand.New(rand.NewSource(42))
	for q := 0; q < 30; q++ {
		rect := workload.RandRect(rng, 2, 0.4)
		ws := workload.RandKeywords(rng, 18, 2)
		a, _, err := serial.Collect(rect, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := par.Collect(rect, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sameSorted(t, "framework", sortedIDs(b), sortedIDs(a))
	}
}

// A shared index must serve QueryBatch and plain Collect calls from many
// goroutines at once; run under -race this exercises the pooled query
// contexts for write collisions.
func TestConcurrentQueriesShareIndex(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 51, Objects: 1200, Dim: 2, Vocab: 20, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	queries := makeBatch(rng, 48)
	want := make([][]int32, len(queries))
	for i, q := range queries {
		want[i] = sortedIDs(ds.Filter(q.Rect, q.Keywords))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results := ix.QueryBatch(queries, 4)
			for i, r := range results {
				if r.Err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, r.Err)
					return
				}
				sameSorted(t, "batch", sortedIDs(r.IDs), want[i])
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range queries {
				ids, _, err := ix.Collect(queries[i].Rect, queries[i].Keywords, QueryOpts{})
				if err != nil {
					t.Errorf("goroutine %d collect %d: %v", g, i, err)
					return
				}
				sameSorted(t, "collect", sortedIDs(ids), want[i])
			}
		}(g)
	}
	wg.Wait()
}

// Returned ID slices are caller-owned: scribbling over one result must not
// corrupt any later query, and batch results must stay independent of the
// buffers a subsequent QueryBatchInto reuses.
func TestCollectResultsCallerOwned(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 61, Objects: 900, Dim: 2, Vocab: 15, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	type probe struct {
		rect *geom.Rect
		ws   []dataset.Keyword
		want []int32
	}
	probes := make([]probe, 25)
	for i := range probes {
		r := workload.RandRect(rng, 2, 0.4)
		w := workload.RandKeywords(rng, 15, 2)
		probes[i] = probe{rect: r, ws: w, want: sortedIDs(ds.Filter(r, w))}
	}
	var held [][]int32
	for _, p := range probes {
		ids, _, err := ix.Collect(p.rect, p.ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sameSorted(t, "pristine", sortedIDs(ids), p.want)
		held = append(held, ids)
		// Vandalize every slice handed out so far; if any of them aliases
		// index- or pool-owned memory, a later query will see the damage.
		for _, h := range held {
			for j := range h {
				h[j] = -7
			}
		}
	}
	// One clean pass after all the vandalism.
	for _, p := range probes {
		ids, _, err := ix.Collect(p.rect, p.ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sameSorted(t, "after-mutation", sortedIDs(ids), p.want)
	}
}

// QueryBatchInto reuses prior IDs buffers without leaking stale contents
// into the new answers.
func TestQueryBatchIntoReuse(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 71, Objects: 900, Dim: 2, Vocab: 15, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	first := makeBatch(rng, 30)
	second := makeBatch(rng, 30)
	prev := ix.QueryBatch(first, 4)
	results := ix.QueryBatchInto(second, 4, prev)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		sameSorted(t, "into", sortedIDs(r.IDs), sortedIDs(ds.Filter(second[i].Rect, second[i].Keywords)))
	}
	// A shorter prev must also be fine.
	third := makeBatch(rng, 30)
	results = ix.QueryBatchInto(third, 4, results[:7])
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		sameSorted(t, "short-prev", sortedIDs(r.IDs), sortedIDs(ds.Filter(third[i].Rect, third[i].Keywords)))
	}
}

// CollectInto appends into the supplied buffer, reusing its capacity.
func TestCollectIntoReusesBuffer(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 81, Objects: 700, Dim: 2, Vocab: 12, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(82))
	buf := make([]int32, 0, 1024)
	for q := 0; q < 20; q++ {
		rect := workload.RandRect(rng, 2, 0.5)
		ws := workload.RandKeywords(rng, 12, 2)
		ids, _, err := ix.CollectInto(rect, ws, QueryOpts{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		sameSorted(t, "collect-into", sortedIDs(ids), sortedIDs(ds.Filter(rect, ws)))
		if len(ids) > 0 && len(ids) <= cap(buf) && &ids[0] != &buf[:1][0] {
			t.Fatal("CollectInto did not reuse the supplied buffer")
		}
		buf = ids
	}
}
