package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// DynamicORPKW maintains an ORP-KW index under insertions and deletions via
// the logarithmic method of Bentley and Saxe. The paper's structures are
// static; range-reporting-with-keywords is a decomposable search problem
// (the answer over a union of parts is the union of the answers), so the
// classic transformation applies: objects live in O(log n) static ORPKW
// indexes of doubling sizes plus a small linear buffer, insertions trigger
// binary-counter merges, and deletions are tombstones purged at rebuilds.
//
// Amortized insertion cost is O(log n) static-build work per object; a
// query costs the sum over the O(log n) parts, preserving the
// O(N^{1-1/k} (1 + OUT^{1/k})) shape up to a logarithmic factor.
//
// Objects are identified by stable handles assigned at insertion; reported
// results carry handles, not positional ids (positions change at merges).
//
// # Concurrency
//
// The index is safe for any number of concurrent readers alongside its
// (internally serialized) writers, and reads never block on writes: all
// mutable state lives in an immutable dynState value published through an
// atomic pointer. A mutator — serialized on the writer mutex — builds the
// successor state off to the side (buckets are immutable static indexes, so
// a merge reuses them wholesale) and installs it with a single atomic store;
// a query loads the pointer once and runs entirely against that consistent
// snapshot, so it can never observe a half-applied mutation. SnapshotNow
// pins a state explicitly for repeatable reads. See DESIGN.md §13 for the
// publication protocol and the memory-ordering argument.
type DynamicORPKW struct {
	k, dim    int
	bufferCap int
	fam       family
	tracer    obs.Tracer
	bopts     BuildOpts // construction options for bucket rebuilds

	// state is the current published snapshot; readers Load it exactly once
	// per operation and never write it.
	state atomic.Pointer[dynState]

	// mu serializes mutators (Insert/Delete/SetJournal/SetSeq and recovery
	// bulk-loads). It is never taken on the query path.
	mu      sync.Mutex
	journal Journal
}

// dynState is one immutable version of the index. Every field is frozen at
// publication: successor states copy what they change (the buffer slice, the
// bucket slice, the tombstone set) and share the rest. Readers therefore see
// either the state before a mutation or the state after it, never a mix.
type dynState struct {
	buffer  []dynEntry   // unindexed recent inserts (never mutated in place)
	buckets []*dynBucket // buckets[i] holds at most bufferCap<<i entries
	deleted *tombSet     // tombstoned handles still present in buckets or base

	// base is an optional immutable bottom layer served out-of-core (a
	// paged checkpoint opened in place). It is shared by every successor
	// state for the process lifetime: merges never fold it in, deletions of
	// its entries stay tombstones, and baseTombs counts them so compaction
	// triggers only on the purgeable (bucket-resident) tombstones.
	base      BaseIndex
	baseTombs int

	nextHandle int64
	live       int

	// seq is the number of mutations applied to reach this state. When a
	// Journal is attached it equals the WAL sequence number of the last
	// acknowledged record included in this state (recovery aligns the base
	// via SetSeq), which is what pins MVCC snapshot reads to an acked-WAL
	// prefix.
	seq uint64
}

func (st *dynState) numBuckets() int {
	c := 0
	for _, b := range st.buckets {
		if b != nil {
			c++
		}
	}
	return c
}

// tombSet is an immutable set of tombstoned handles: a shared base map plus
// a short overlay of recent additions. with() copies only the overlay, so a
// copy-on-write delete costs O(tombOverlayCap) instead of O(tombstones);
// when the overlay fills it folds into a fresh base map, amortizing the full
// copy over tombOverlayCap deletes. A nil *tombSet is the empty set.
type tombSet struct {
	base    map[int64]struct{} // shared across states; never mutated
	overlay []int64            // additions since base was built; small
}

const tombOverlayCap = 32

func (t *tombSet) has(h int64) bool {
	if t == nil {
		return false
	}
	for _, x := range t.overlay {
		if x == h {
			return true
		}
	}
	_, ok := t.base[h]
	return ok
}

func (t *tombSet) size() int {
	if t == nil {
		return 0
	}
	return len(t.base) + len(t.overlay)
}

// with returns the set plus h. h must not already be a member (callers check
// has first); membership is kept disjoint between base and overlay so size
// stays a plain sum.
func (t *tombSet) with(h int64) *tombSet {
	if t == nil {
		return &tombSet{overlay: []int64{h}}
	}
	if len(t.overlay) < tombOverlayCap {
		ov := make([]int64, len(t.overlay)+1)
		copy(ov, t.overlay)
		ov[len(t.overlay)] = h
		return &tombSet{base: t.base, overlay: ov}
	}
	m := make(map[int64]struct{}, len(t.base)+len(t.overlay)+1)
	for k := range t.base {
		m[k] = struct{}{}
	}
	for _, x := range t.overlay {
		m[x] = struct{}{}
	}
	m[h] = struct{}{}
	return &tombSet{base: m}
}

// materialize returns a fresh mutable copy of the set, for merge-time
// purging. Mutating the copy never affects published states.
func (t *tombSet) materialize() map[int64]struct{} {
	if t == nil {
		return map[int64]struct{}{}
	}
	m := make(map[int64]struct{}, t.size())
	for k := range t.base {
		m[k] = struct{}{}
	}
	for _, x := range t.overlay {
		m[x] = struct{}{}
	}
	return m
}

// tombSetFrom wraps an already-private map (built by materialize and pruned)
// as an immutable set; ownership of m transfers to the set.
func tombSetFrom(m map[int64]struct{}) *tombSet {
	if len(m) == 0 {
		return nil
	}
	return &tombSet{base: m}
}

// Journal receives every mutation before it is applied, so a durability
// layer can make the operation recoverable first. A non-nil error vetoes the
// mutation: the index stays unchanged and the error is returned to the
// caller — an op is acknowledged only after its journal write succeeded.
// The hooks run synchronously on the mutating goroutine, under the writer
// mutex, strictly before the successor state is published.
type Journal interface {
	// LogInsert records the insertion of obj under the given (already
	// assigned) stable handle.
	LogInsert(handle int64, obj dataset.Object) error
	// LogDelete records the deletion of the given live handle.
	LogDelete(handle int64) error
}

// SetJournal installs (or, with nil, removes) the mutation journal. It is
// meant to be called once, right after construction or recovery, before the
// index takes writes.
func (d *DynamicORPKW) SetJournal(j Journal) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.journal = j
}

type dynEntry struct {
	handle int64
	obj    dataset.Object
}

// BaseIndex is an immutable bottom layer a dynamic index can sit on — in
// practice a PagedBase serving a checkpoint file in place. The dynamic layer
// owns liveness: tombstoned handles are filtered by the caller of Query, and
// Entries enumerates every base entry regardless of tombstones.
type BaseIndex interface {
	// Len returns the number of entries in the base.
	Len() int
	// Has reports whether handle names a base entry.
	Has(handle int64) bool
	// Query reports every base entry in q whose document contains all
	// keywords. Reported objects may alias scratch valid only during the
	// callback.
	Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(handle int64, obj *dataset.Object)) (QueryStats, error)
	// Entries decodes every base entry, ascending by handle.
	Entries() ([]DynEntry, error)
	// Close releases the base's resources (file references, mappings).
	Close() error
}

// dynBucket is one static part. It is immutable after construction: the
// entries slice is never appended to or reordered, and the static index is
// safe for concurrent readers, so buckets are shared freely across states.
type dynBucket struct {
	ix      *ORPKW
	entries []dynEntry // parallel to the bucket dataset's object ids
}

// NewDynamicORPKW creates an empty dynamic index for k-keyword queries over
// d-dimensional points. bufferCap tunes the unindexed write buffer
// (0 selects 64).
func NewDynamicORPKW(dim, k, bufferCap int, opts ...BuildOption) (*DynamicORPKW, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: k >= 2 required, got %d", k)
	}
	if dim < 1 {
		return nil, fmt.Errorf("core: dimension >= 1 required, got %d", dim)
	}
	if bufferCap <= 0 {
		bufferCap = 64
	}
	o := resolveOpts(opts)
	d := &DynamicORPKW{
		k: k, dim: dim, bufferCap: bufferCap,
		fam: o.famFor(famDynamic), tracer: o.Tracer, bopts: o,
	}
	d.state.Store(&dynState{})
	return d, nil
}

// publish installs ns as the current state — the single atomic commit point
// of every mutation — and pushes structural gauge deltas computed against
// prev, the state the mutator started from. The writer mutex makes prev the
// currently published state, so concurrent publications cannot double-count:
// every delta is new-minus-published, applied exactly once, in publication
// order.
func (d *DynamicORPKW) publish(prev, ns *dynState) {
	d.state.Store(ns)
	if d.fam == famNone {
		return
	}
	dynPublishes.Inc()
	dynBuckets.Add(int64(ns.numBuckets() - prev.numBuckets()))
	dynLive.Add(int64(ns.live - prev.live))
	dynBuffered.Add(int64(len(ns.buffer) - len(prev.buffer)))
	dynTombstones.Add(int64(ns.deleted.size() - prev.deleted.size()))
}

// Len returns the number of live objects.
func (d *DynamicORPKW) Len() int { return d.state.Load().live }

// K returns the query keyword arity.
func (d *DynamicORPKW) K() int { return d.k }

// NextHandle returns the handle the next insertion will be assigned.
func (d *DynamicORPKW) NextHandle() int64 { return d.state.Load().nextHandle }

// Tombstones returns the number of deleted-but-unpurged bucket entries
// (exposed for the compaction regression tests and instrumentation).
func (d *DynamicORPKW) Tombstones() int { return d.state.Load().deleted.size() }

// Seq returns the mutation sequence number of the published state: the
// count of applied mutations or, with a journal attached, the WAL sequence
// of the last acknowledged record visible to new queries.
func (d *DynamicORPKW) Seq() uint64 { return d.state.Load().seq }

// SetSeq aligns the published state's sequence number with an external
// journal's numbering without touching the data. Recovery calls it between
// restoring a checkpoint (whose entries correspond to the checkpoint's
// LastSeq, not to the restore-time mutation count) and replaying the log,
// before the index takes writes or serves queries.
func (d *DynamicORPKW) SetSeq(seq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	if st.seq == seq {
		return
	}
	ns := *st
	ns.seq = seq
	d.publish(st, &ns)
}

// Insert adds an object and returns its stable handle.
func (d *DynamicORPKW) Insert(obj dataset.Object) (int64, error) {
	if len(obj.Point) != d.dim {
		return 0, fmt.Errorf("core: object dimension %d, index dimension %d", len(obj.Point), d.dim)
	}
	if len(obj.Doc) == 0 {
		return 0, fmt.Errorf("core: object with empty document")
	}
	// The document copy is normalized (sorted, de-duplicated) immediately —
	// not deferred to the first merge — so the buffer, the journal, and the
	// bucket datasets all see the same canonical form.
	cp := dataset.Object{
		Point: obj.Point.Clone(),
		Doc:   dataset.NormalizeDoc(append([]dataset.Keyword(nil), obj.Doc...)),
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	h := st.nextHandle
	if d.journal != nil {
		if err := d.journal.LogInsert(h, cp); err != nil {
			return 0, err
		}
	}
	buf := make([]dynEntry, len(st.buffer)+1)
	copy(buf, st.buffer)
	buf[len(st.buffer)] = dynEntry{handle: h, obj: cp}
	ns := &dynState{
		buffer: buf, buckets: st.buckets, deleted: st.deleted,
		base: st.base, baseTombs: st.baseTombs,
		nextHandle: h + 1, live: st.live + 1, seq: st.seq + 1,
	}
	if d.fam != famNone {
		dynInserts.Inc()
	}
	// The op is journaled, so it must become visible even if the merge it
	// triggers fails: publish the carried state on success, the plain
	// buffered state otherwise (mirroring recovery, which replays the record
	// into a buffer append and is free to merge later).
	var carryErr error
	if len(ns.buffer) >= d.bufferCap {
		if merged, err := d.carried(ns); err != nil {
			carryErr = err
		} else {
			ns = merged
		}
	}
	d.publish(st, ns)
	if carryErr != nil {
		return 0, carryErr
	}
	return h, nil
}

// Delete removes the object with the given handle. Deleting an unknown or
// already-deleted handle returns false.
func (d *DynamicORPKW) Delete(handle int64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	if handle < 0 || handle >= st.nextHandle {
		return false, nil
	}
	if st.deleted.has(handle) {
		return false, nil
	}
	// Locate the handle first — in the buffer, the base, or some bucket —
	// so the journal only ever records deletions of live handles. The base
	// check precedes the bucket scan because Has is a binary search while
	// the bucket scan is linear.
	bufIdx := -1
	for i := range st.buffer {
		if st.buffer[i].handle == handle {
			bufIdx = i
			break
		}
	}
	inBase := false
	if bufIdx < 0 {
		if st.base != nil && st.base.Has(handle) {
			inBase = true
		} else {
			found := false
			for _, b := range st.buckets {
				if b == nil {
					continue
				}
				for i := range b.entries {
					if b.entries[i].handle == handle {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found {
				return false, nil
			}
		}
	}
	if d.journal != nil {
		if err := d.journal.LogDelete(handle); err != nil {
			return false, err
		}
	}
	ns := &dynState{
		buffer: st.buffer, buckets: st.buckets, deleted: st.deleted,
		base: st.base, baseTombs: st.baseTombs,
		nextHandle: st.nextHandle, live: st.live - 1, seq: st.seq + 1,
	}
	if bufIdx >= 0 {
		buf := make([]dynEntry, 0, len(st.buffer)-1)
		buf = append(buf, st.buffer[:bufIdx]...)
		buf = append(buf, st.buffer[bufIdx+1:]...)
		ns.buffer = buf
	} else {
		ns.deleted = st.deleted.with(handle)
		if inBase {
			ns.baseTombs++
		}
	}
	if d.fam != famNone {
		dynDeletes.Inc()
	}
	// Compact when purgeable tombstones exceed half the live count: merges
	// only purge the buckets they touch, so without this trigger a
	// delete-heavy workload leaks tombstones (and their map memory)
	// indefinitely. Base tombstones are excluded — the base is immutable, a
	// rebuild can never retire them, and counting them would re-trigger
	// compaction forever. The delete itself is journaled and must stick, so
	// a failed compaction publishes the uncompacted state and surfaces the
	// error alongside ok=true.
	var rebErr error
	if 2*(ns.deleted.size()-ns.baseTombs) > ns.live {
		if rb, err := d.rebuilt(ns); err != nil {
			rebErr = err
		} else {
			ns = rb
		}
	}
	d.publish(st, ns)
	return true, rebErr
}

// carried returns the successor of st after a binary-counter merge: the full
// buffer plus the maximal run of occupied buckets, purged of tombstones,
// installed at the smallest slot whose capacity fits. st is not modified.
func (d *DynamicORPKW) carried(st *dynState) (*dynState, error) {
	if d.fam != famNone {
		dynCarries.Inc()
	}
	entries := append([]dynEntry(nil), st.buffer...)
	buckets := append([]*dynBucket(nil), st.buckets...)
	slot := 0
	for slot < len(buckets) && buckets[slot] != nil {
		entries = append(entries, buckets[slot].entries...)
		buckets[slot] = nil
		slot++
	}
	tombs := st.deleted.materialize()
	entries = purge(entries, tombs)
	ns := &dynState{
		buckets: buckets, base: st.base, baseTombs: st.baseTombs,
		nextHandle: st.nextHandle, live: st.live, seq: st.seq,
	}
	if err := d.installInto(ns, entries, slot, tombs); err != nil {
		return nil, err
	}
	ns.deleted = tombSetFrom(tombs)
	return ns, nil
}

// rebuilt returns the successor of st with everything merged into a single
// static index and every tombstone purged. st is not modified.
func (d *DynamicORPKW) rebuilt(st *dynState) (*dynState, error) {
	if d.fam != famNone {
		dynRebuilds.Inc()
	}
	entries := append([]dynEntry(nil), st.buffer...)
	for _, b := range st.buckets {
		if b != nil {
			entries = append(entries, b.entries...)
		}
	}
	tombs := st.deleted.materialize()
	entries = purge(entries, tombs)
	ns := &dynState{
		base: st.base, baseTombs: st.baseTombs,
		nextHandle: st.nextHandle, live: st.live, seq: st.seq,
	}
	if len(entries) == 0 {
		// Base tombstones survive every rebuild (the base is immutable), so
		// the set is not necessarily empty here.
		ns.deleted = tombSetFrom(tombs)
		return ns, nil
	}
	if err := d.installInto(ns, entries, 0, tombs); err != nil {
		return nil, err
	}
	// Every purgeable tombstone names a bucket entry and every bucket was
	// merged, so the purge consumed all but the base tombstones.
	ns.deleted = tombSetFrom(tombs)
	return ns, nil
}

// purge filters out tombstoned entries, consuming the matched handles from
// tombs. entries must be privately owned by the caller (it is filtered in
// place); published slices are never passed here.
func purge(entries []dynEntry, tombs map[int64]struct{}) []dynEntry {
	out := entries[:0]
	for _, e := range entries {
		if _, gone := tombs[e.handle]; gone {
			delete(tombs, e.handle)
			continue
		}
		out = append(out, e)
	}
	return out
}

// installInto places entries in the smallest slot >= minSlot of ns.buckets
// whose capacity bufferCap<<slot holds them, growing the bucket slice as
// needed. ns must be an unpublished state under construction whose buckets
// slice is privately owned; entries and tombs likewise.
func (d *DynamicORPKW) installInto(ns *dynState, entries []dynEntry, minSlot int, tombs map[int64]struct{}) error {
	if len(entries) == 0 {
		return nil
	}
	slot := minSlot
	for d.bufferCap<<slot < len(entries) {
		slot++
	}
	// The target slot may be occupied when a purge shrank a merge below its
	// natural size; cascade upward.
	for slot < len(ns.buckets) && ns.buckets[slot] != nil {
		entries = append(entries, ns.buckets[slot].entries...)
		ns.buckets[slot] = nil
		entries = purge(entries, tombs)
		for d.bufferCap<<slot < len(entries) {
			slot++
		}
	}
	for len(ns.buckets) <= slot {
		ns.buckets = append(ns.buckets, nil)
	}
	objs := make([]dataset.Object, len(entries))
	for i, e := range entries {
		// Clone each document: dataset.New re-normalizes docs in place, and
		// the entry's doc slice is shared with previously published states
		// that concurrent readers may be scanning right now.
		objs[i] = dataset.Object{
			Point: e.obj.Point,
			Doc:   append([]dataset.Keyword(nil), e.obj.Doc...),
		}
	}
	ds, err := dataset.New(objs)
	if err != nil {
		return err
	}
	// Bucket indexes are internal parts: built untagged so a dynamic query
	// is counted once, under the dynamic family.
	ix, err := BuildORPKWWith(ds, d.k, d.bopts.inner())
	if err != nil {
		return err
	}
	ns.buckets[slot] = &dynBucket{ix: ix, entries: entries}
	return nil
}

// Query reports (handle, object) for every live object in q whose document
// contains all k keywords.
func (d *DynamicORPKW) Query(q *geom.Rect, ws []dataset.Keyword, report func(handle int64, obj *dataset.Object)) (QueryStats, error) {
	return d.QueryWith(q, ws, QueryOpts{}, report)
}

// QueryWith is Query under explicit options. The policy's deadline, node
// budget and cancellation channel span the write-buffer scan and every
// Bentley–Saxe bucket (buffer entries charge the node budget per scanned
// entry); a violation returns the partial results reported so far with a
// typed error. Limit suppresses reports past the cap and skips the remaining
// buckets, though the bucket being scanned runs to completion.
//
// The query runs lock-free against the state published when it started;
// mutations that land mid-query are not observed, in whole or in part.
func (d *DynamicORPKW) QueryWith(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(handle int64, obj *dataset.Object)) (QueryStats, error) {
	return d.queryState(d.state.Load(), q, ws, opts, report)
}

// queryState runs one query entirely against the snapshot sn.
func (d *DynamicORPKW) queryState(sn *dynState, q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(handle int64, obj *dataset.Object)) (st QueryStats, err error) {
	qt := obsBegin(d.fam, "Query", d.tracer)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError("DynamicORPKW.Query", r, echoRegion(q, ws))
		}
		if obsEnd(d.fam, qt, &st, err, d.tracer) {
			obsSpan(d.fam, "Query", echoRegion(q, ws), d.k, qt, &st, err, d.tracer)
		}
	}()
	if len(ws) != d.k {
		return QueryStats{}, fmt.Errorf("%w: query carries %d keywords but the index was built for k=%d", ErrInvalidQuery, len(ws), d.k)
	}
	if err := dataset.ValidateKeywords(ws); err != nil {
		return QueryStats{}, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	if err := validateRect(q, d.dim); err != nil {
		return QueryStats{}, err
	}
	opts = opts.normalized()
	ps := newPolState(opts.Policy)
	// Buffer: linear scan (bounded by bufferCap).
	for i := range sn.buffer {
		e := &sn.buffer[i]
		st.Ops++
		if err := ps.check(&st, st.Ops); err != nil {
			return st, err
		}
		if q.ContainsPoint(e.obj.Point) && docHasAll(e.obj.Doc, ws) {
			if opts.Limit > 0 && st.Reported >= opts.Limit {
				st.Truncated = true
				return st, nil
			}
			report(e.handle, &e.obj)
			st.Reported++
		}
	}
	// Base: the paged checkpoint layer, scanned like a bucket with
	// tombstones filtered here (the base has no liveness knowledge).
	if sn.base != nil {
		if opts.Limit > 0 && st.Reported >= opts.Limit {
			st.Truncated = true
			return st, nil
		}
		live := 0
		bopts := QueryOpts{Budget: opts.Budget, Policy: opts.Policy.shrunk(st.Ops)}
		bst, berr := sn.base.Query(q, ws, bopts, func(h int64, obj *dataset.Object) {
			if sn.deleted.has(h) {
				return
			}
			if opts.Limit > 0 && st.Reported+live >= opts.Limit {
				return
			}
			report(h, obj)
			live++
		})
		bst.Reported = live
		st.add(bst)
		if berr != nil {
			return st, berr
		}
	}
	for _, b := range sn.buckets {
		if b == nil {
			continue
		}
		failpoint(FPDynamicBucket)
		if opts.Limit > 0 && st.Reported >= opts.Limit {
			st.Truncated = true
			return st, nil
		}
		// Reported live results are tracked here, not by the bucket's own
		// stats: tombstoned hits must not count toward the limit.
		live := 0
		bopts := QueryOpts{Budget: opts.Budget, Policy: opts.Policy.shrunk(st.Ops)}
		bst, berr := b.ix.Query(q, ws, bopts, func(id int32) {
			e := &b.entries[id]
			if sn.deleted.has(e.handle) {
				return
			}
			if opts.Limit > 0 && st.Reported+live >= opts.Limit {
				return
			}
			report(e.handle, &e.obj)
			live++
		})
		bst.Reported = live
		st.add(bst)
		if berr != nil {
			return st, berr
		}
	}
	if opts.Limit > 0 && st.Reported >= opts.Limit {
		st.Truncated = true
	}
	return st, nil
}

// Collect is Query returning the handles.
func (d *DynamicORPKW) Collect(q *geom.Rect, ws []dataset.Keyword) ([]int64, QueryStats, error) {
	var out []int64
	st, err := d.Query(q, ws, func(h int64, _ *dataset.Object) { out = append(out, h) })
	return out, st, err
}

// Buckets returns the occupancy pattern (entry counts per slot), exposed for
// tests and instrumentation of the logarithmic structure.
func (d *DynamicORPKW) Buckets() []int {
	st := d.state.Load()
	out := make([]int, len(st.buckets))
	for i, b := range st.buckets {
		if b != nil {
			out[i] = len(b.entries)
		}
	}
	return out
}

// NumBuckets returns the number of occupied static parts; O(log n) by the
// binary-counter invariant.
func (d *DynamicORPKW) NumBuckets() int {
	return d.state.Load().numBuckets()
}

// docHasAll is the buffer-side membership check (documents there are small
// and unindexed).
func docHasAll(doc, ws []dataset.Keyword) bool {
	for _, w := range ws {
		found := false
		for _, x := range doc {
			if x == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// DynSnapshot is an immutable point-in-time view of a DynamicORPKW, pinned
// by SnapshotNow. Queries against it are repeatable — they see exactly the
// mutations applied up to Seq(), no matter how much churn lands afterwards —
// and cost nothing to hold beyond the memory of the pinned state (which the
// garbage collector reclaims once the snapshot is dropped and merges have
// superseded its buckets). With a journal attached, Seq() is the WAL
// sequence of the last acknowledged record the view includes, so a pinned
// query reads exactly the acked-WAL prefix at that seq.
type DynSnapshot struct {
	d  *DynamicORPKW
	st *dynState
}

// SnapshotNow pins the currently published state for repeatable reads.
func (d *DynamicORPKW) SnapshotNow() *DynSnapshot {
	if d.fam != famNone {
		dynSnapshotPins.Inc()
	}
	return &DynSnapshot{d: d, st: d.state.Load()}
}

// Seq returns the sequence number the view is pinned to.
func (s *DynSnapshot) Seq() uint64 { return s.st.seq }

// Len returns the number of live objects in the view.
func (s *DynSnapshot) Len() int { return s.st.live }

// NumBuckets returns the occupied static parts of the view.
func (s *DynSnapshot) NumBuckets() int { return s.st.numBuckets() }

// Tombstones returns the deleted-but-unpurged entry count of the view.
func (s *DynSnapshot) Tombstones() int { return s.st.deleted.size() }

// Query reports (handle, object) for every object live at the pinned seq in
// q whose document contains all k keywords.
func (s *DynSnapshot) Query(q *geom.Rect, ws []dataset.Keyword, report func(handle int64, obj *dataset.Object)) (QueryStats, error) {
	return s.QueryWith(q, ws, QueryOpts{}, report)
}

// QueryWith is Query under explicit options; see DynamicORPKW.QueryWith.
func (s *DynSnapshot) QueryWith(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(handle int64, obj *dataset.Object)) (QueryStats, error) {
	if s.d.fam != famNone {
		dynSnapStaleness.Set(int64(s.d.state.Load().seq - s.st.seq))
	}
	return s.d.queryState(s.st, q, ws, opts, report)
}

// Collect is Query returning the handles.
func (s *DynSnapshot) Collect(q *geom.Rect, ws []dataset.Keyword) ([]int64, QueryStats, error) {
	var out []int64
	st, err := s.Query(q, ws, func(h int64, _ *dataset.Object) { out = append(out, h) })
	return out, st, err
}

// DynEntry is one live (handle, object) pair of a dynamic index — the unit
// of a durability snapshot.
type DynEntry struct {
	Handle int64
	Obj    dataset.Object
}

// Entries returns every entry live at the pinned seq in ascending handle
// order. The returned objects alias the index's internal copies; callers
// must treat them as read-only (holding them across further mutations is
// fine — the pinned state is immutable). With a paged base attached the
// base file is read in full, which can fail (I/O, checksum) — hence the
// error.
func (s *DynSnapshot) Entries() ([]DynEntry, error) {
	st := s.st
	out := make([]DynEntry, 0, st.live)
	if st.base != nil {
		bes, err := st.base.Entries()
		if err != nil {
			return nil, err
		}
		for i := range bes {
			if !st.deleted.has(bes[i].Handle) {
				out = append(out, bes[i])
			}
		}
	}
	for i := range st.buffer {
		out = append(out, DynEntry{Handle: st.buffer[i].handle, Obj: st.buffer[i].obj})
	}
	for _, b := range st.buckets {
		if b == nil {
			continue
		}
		for i := range b.entries {
			e := &b.entries[i]
			if st.deleted.has(e.handle) {
				continue
			}
			out = append(out, DynEntry{Handle: e.handle, Obj: e.obj})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Handle < out[b].Handle })
	return out, nil
}

// RestoreDynamicORPKW rebuilds a dynamic index from a durability snapshot:
// the live entries (any order; they are sorted by handle) plus the
// next-handle watermark, which must exceed every entry's handle so that
// handles assigned after recovery never collide with restored ones. The
// whole load is published as one state; use SetSeq afterwards to align the
// sequence number with the snapshot's journal position.
func RestoreDynamicORPKW(dim, k, bufferCap int, entries []DynEntry, nextHandle int64, opts ...BuildOption) (*DynamicORPKW, error) {
	d, err := NewDynamicORPKW(dim, k, bufferCap, opts...)
	if err != nil {
		return nil, err
	}
	sorted := append([]DynEntry(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Handle < sorted[b].Handle })
	st := &dynState{}
	for i, e := range sorted {
		if e.Handle < 0 || e.Handle >= nextHandle {
			return nil, fmt.Errorf("core: snapshot handle %d outside [0, %d)", e.Handle, nextHandle)
		}
		if i > 0 && e.Handle == sorted[i-1].Handle {
			return nil, fmt.Errorf("core: duplicate snapshot handle %d", e.Handle)
		}
		if len(e.Obj.Point) != dim {
			return nil, fmt.Errorf("core: snapshot object dimension %d, index dimension %d", len(e.Obj.Point), dim)
		}
		if len(e.Obj.Doc) == 0 {
			return nil, fmt.Errorf("core: snapshot object with empty document")
		}
		st.buffer = append(st.buffer, dynEntry{handle: e.Handle, obj: e.Obj})
		st.live++
		if len(st.buffer) >= d.bufferCap {
			ns, err := d.carried(st)
			if err != nil {
				return nil, err
			}
			st = ns
		}
	}
	st.nextHandle = nextHandle
	d.mu.Lock()
	defer d.mu.Unlock()
	d.publish(d.state.Load(), st)
	return d, nil
}

// RestoreDynamicORPKWFromBase builds a dynamic index whose bottom layer is
// an already-open paged checkpoint, without decoding a single entry: the
// base serves its objects in place, new writes land in the buffer/buckets
// above it, and deletions of base entries become permanent tombstones. The
// base's entry count and handle watermark must come from its own validated
// metadata (the caller — recovery — passes them through).
func RestoreDynamicORPKWFromBase(dim, k, bufferCap int, base BaseIndex, nextHandle int64, opts ...BuildOption) (*DynamicORPKW, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil base index")
	}
	d, err := NewDynamicORPKW(dim, k, bufferCap, opts...)
	if err != nil {
		return nil, err
	}
	st := &dynState{base: base, live: base.Len(), nextHandle: nextHandle}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.publish(d.state.Load(), st)
	return d, nil
}

// Base returns the immutable bottom layer, or nil. The durability layer
// uses it to close the base's file reference on shutdown.
func (d *DynamicORPKW) Base() BaseIndex { return d.state.Load().base }

// expectedBuckets returns the binary-counter bucket count for n entries and
// buffer capacity b (a test helper kept here for documentation value).
func expectedBuckets(n, b int) int {
	if n <= 0 {
		return 0
	}
	return bits.OnesCount(uint(n / b))
}
