package core

import (
	"fmt"
	"math/bits"
	"sort"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// DynamicORPKW maintains an ORP-KW index under insertions and deletions via
// the logarithmic method of Bentley and Saxe. The paper's structures are
// static; range-reporting-with-keywords is a decomposable search problem
// (the answer over a union of parts is the union of the answers), so the
// classic transformation applies: objects live in O(log n) static ORPKW
// indexes of doubling sizes plus a small linear buffer, insertions trigger
// binary-counter merges, and deletions are tombstones purged at rebuilds.
//
// Amortized insertion cost is O(log n) static-build work per object; a
// query costs the sum over the O(log n) parts, preserving the
// O(N^{1-1/k} (1 + OUT^{1/k})) shape up to a logarithmic factor.
//
// Objects are identified by stable handles assigned at insertion; reported
// results carry handles, not positional ids (positions change at merges).
type DynamicORPKW struct {
	k, dim     int
	bufferCap  int
	buffer     []dynEntry
	buckets    []*dynBucket // buckets[i] holds at most bufferCap<<i entries
	deleted    map[int64]struct{}
	nextHandle int64
	live       int

	fam     family
	tracer  obs.Tracer
	bopts   BuildOpts // construction options for bucket rebuilds
	journal Journal

	// Last values pushed to the shared structural gauges; the gauges are
	// updated with deltas so several dynamic indexes aggregate coherently.
	obsNumBuckets, obsLive, obsBuffered, obsTombstones int
}

// Journal receives every mutation before it is applied, so a durability
// layer can make the operation recoverable first. A non-nil error vetoes the
// mutation: the index stays unchanged and the error is returned to the
// caller — an op is acknowledged only after its journal write succeeded.
// The hooks run synchronously on the mutating goroutine.
type Journal interface {
	// LogInsert records the insertion of obj under the given (already
	// assigned) stable handle.
	LogInsert(handle int64, obj dataset.Object) error
	// LogDelete records the deletion of the given live handle.
	LogDelete(handle int64) error
}

// SetJournal installs (or, with nil, removes) the mutation journal. It is
// meant to be called once, right after construction or recovery, before the
// index takes writes.
func (d *DynamicORPKW) SetJournal(j Journal) { d.journal = j }

type dynEntry struct {
	handle int64
	obj    dataset.Object
}

type dynBucket struct {
	ix      *ORPKW
	entries []dynEntry // parallel to the bucket dataset's object ids
}

// NewDynamicORPKW creates an empty dynamic index for k-keyword queries over
// d-dimensional points. bufferCap tunes the unindexed write buffer
// (0 selects 64).
func NewDynamicORPKW(dim, k, bufferCap int, opts ...BuildOption) (*DynamicORPKW, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: k >= 2 required, got %d", k)
	}
	if dim < 1 {
		return nil, fmt.Errorf("core: dimension >= 1 required, got %d", dim)
	}
	if bufferCap <= 0 {
		bufferCap = 64
	}
	o := resolveOpts(opts)
	return &DynamicORPKW{
		k: k, dim: dim, bufferCap: bufferCap,
		deleted: make(map[int64]struct{}),
		fam:     o.famFor(famDynamic), tracer: o.Tracer, bopts: o,
	}, nil
}

// syncObs pushes structural deltas (bucket count, live objects, buffered
// writes, tombstones) to the shared gauges; called after every mutation.
func (d *DynamicORPKW) syncObs() {
	if d.fam == famNone {
		return
	}
	nb := d.NumBuckets()
	dynBuckets.Add(int64(nb - d.obsNumBuckets))
	d.obsNumBuckets = nb
	dynLive.Add(int64(d.live - d.obsLive))
	d.obsLive = d.live
	buf := len(d.buffer)
	dynBuffered.Add(int64(buf - d.obsBuffered))
	d.obsBuffered = buf
	tomb := len(d.deleted)
	dynTombstones.Add(int64(tomb - d.obsTombstones))
	d.obsTombstones = tomb
}

// Len returns the number of live objects.
func (d *DynamicORPKW) Len() int { return d.live }

// K returns the query keyword arity.
func (d *DynamicORPKW) K() int { return d.k }

// NextHandle returns the handle the next insertion will be assigned.
func (d *DynamicORPKW) NextHandle() int64 { return d.nextHandle }

// Tombstones returns the number of deleted-but-unpurged bucket entries
// (exposed for the compaction regression tests and instrumentation).
func (d *DynamicORPKW) Tombstones() int { return len(d.deleted) }

// Insert adds an object and returns its stable handle.
func (d *DynamicORPKW) Insert(obj dataset.Object) (int64, error) {
	if len(obj.Point) != d.dim {
		return 0, fmt.Errorf("core: object dimension %d, index dimension %d", len(obj.Point), d.dim)
	}
	if len(obj.Doc) == 0 {
		return 0, fmt.Errorf("core: object with empty document")
	}
	h := d.nextHandle
	// The document copy is normalized (sorted, de-duplicated) immediately —
	// not deferred to the first merge — so the buffer, the journal, and the
	// bucket datasets all see the same canonical form.
	cp := dataset.Object{
		Point: obj.Point.Clone(),
		Doc:   dataset.NormalizeDoc(append([]dataset.Keyword(nil), obj.Doc...)),
	}
	if d.journal != nil {
		if err := d.journal.LogInsert(h, cp); err != nil {
			return 0, err
		}
	}
	d.nextHandle++
	d.buffer = append(d.buffer, dynEntry{handle: h, obj: cp})
	d.live++
	if d.fam != famNone {
		dynInserts.Inc()
	}
	if len(d.buffer) >= d.bufferCap {
		if err := d.carry(); err != nil {
			d.syncObs()
			return 0, err
		}
	}
	d.syncObs()
	return h, nil
}

// Delete removes the object with the given handle. Deleting an unknown or
// already-deleted handle returns false.
func (d *DynamicORPKW) Delete(handle int64) (bool, error) {
	if handle < 0 || handle >= d.nextHandle {
		return false, nil
	}
	if _, gone := d.deleted[handle]; gone {
		return false, nil
	}
	// Locate the handle first — in the buffer or in some bucket — so the
	// journal only ever records deletions of live handles.
	bufIdx := -1
	for i := range d.buffer {
		if d.buffer[i].handle == handle {
			bufIdx = i
			break
		}
	}
	if bufIdx < 0 {
		found := false
		for _, b := range d.buckets {
			if b == nil {
				continue
			}
			for i := range b.entries {
				if b.entries[i].handle == handle {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	if d.journal != nil {
		if err := d.journal.LogDelete(handle); err != nil {
			return false, err
		}
	}
	if bufIdx >= 0 {
		// Buffer entries are removed in place.
		d.buffer = append(d.buffer[:bufIdx], d.buffer[bufIdx+1:]...)
		d.live--
		if d.fam != famNone {
			dynDeletes.Inc()
		}
		d.syncObs()
		return true, nil
	}
	d.deleted[handle] = struct{}{}
	d.live--
	if d.fam != famNone {
		dynDeletes.Inc()
	}
	// Compact when tombstones exceed half the live count: merges only purge
	// the buckets they touch, so without this trigger a delete-heavy workload
	// leaks tombstones (and their map memory) indefinitely.
	if 2*len(d.deleted) > d.live {
		if err := d.rebuildAll(); err != nil {
			d.syncObs()
			return true, err
		}
	}
	d.syncObs()
	return true, nil
}

// carry merges the buffer with the maximal run of occupied buckets
// (binary-counter style), purging tombstones, and installs the result at the
// smallest slot whose capacity fits.
func (d *DynamicORPKW) carry() error {
	if d.fam != famNone {
		dynCarries.Inc()
	}
	entries := d.takeBuffer()
	slot := 0
	for slot < len(d.buckets) && d.buckets[slot] != nil {
		entries = append(entries, d.buckets[slot].entries...)
		d.buckets[slot] = nil
		slot++
	}
	entries = d.purge(entries)
	return d.install(entries, slot)
}

func (d *DynamicORPKW) takeBuffer() []dynEntry {
	out := d.buffer
	d.buffer = nil
	return out
}

func (d *DynamicORPKW) purge(entries []dynEntry) []dynEntry {
	out := entries[:0]
	for _, e := range entries {
		if _, gone := d.deleted[e.handle]; gone {
			delete(d.deleted, e.handle)
			continue
		}
		out = append(out, e)
	}
	return out
}

// install places entries in the smallest slot >= minSlot whose capacity
// bufferCap<<slot holds them, growing the bucket array as needed.
func (d *DynamicORPKW) install(entries []dynEntry, minSlot int) error {
	if len(entries) == 0 {
		return nil
	}
	slot := minSlot
	for d.bufferCap<<slot < len(entries) {
		slot++
	}
	// The target slot may be occupied when a purge shrank a merge below its
	// natural size; cascade upward.
	for slot < len(d.buckets) && d.buckets[slot] != nil {
		entries = append(entries, d.buckets[slot].entries...)
		d.buckets[slot] = nil
		entries = d.purge(entries)
		for d.bufferCap<<slot < len(entries) {
			slot++
		}
	}
	for len(d.buckets) <= slot {
		d.buckets = append(d.buckets, nil)
	}
	objs := make([]dataset.Object, len(entries))
	for i, e := range entries {
		objs[i] = e.obj
	}
	ds, err := dataset.New(objs)
	if err != nil {
		return err
	}
	// Bucket indexes are internal parts: built untagged so a dynamic query
	// is counted once, under the dynamic family.
	ix, err := BuildORPKWWith(ds, d.k, d.bopts.inner())
	if err != nil {
		return err
	}
	d.buckets[slot] = &dynBucket{ix: ix, entries: entries}
	return nil
}

// rebuildAll merges everything into a single static index.
func (d *DynamicORPKW) rebuildAll() error {
	if d.fam != famNone {
		dynRebuilds.Inc()
	}
	var entries []dynEntry
	entries = append(entries, d.takeBuffer()...)
	for i, b := range d.buckets {
		if b != nil {
			entries = append(entries, b.entries...)
			d.buckets[i] = nil
		}
	}
	entries = d.purge(entries)
	d.deleted = make(map[int64]struct{})
	if len(entries) == 0 {
		return nil
	}
	return d.install(entries, 0)
}

// Query reports (handle, object) for every live object in q whose document
// contains all k keywords.
func (d *DynamicORPKW) Query(q *geom.Rect, ws []dataset.Keyword, report func(handle int64, obj *dataset.Object)) (QueryStats, error) {
	return d.QueryWith(q, ws, QueryOpts{}, report)
}

// QueryWith is Query under explicit options. The policy's deadline, node
// budget and cancellation channel span the write-buffer scan and every
// Bentley–Saxe bucket (buffer entries charge the node budget per scanned
// entry); a violation returns the partial results reported so far with a
// typed error. Limit suppresses reports past the cap and skips the remaining
// buckets, though the bucket being scanned runs to completion.
func (d *DynamicORPKW) QueryWith(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(handle int64, obj *dataset.Object)) (st QueryStats, err error) {
	qt := obsBegin(d.fam, "Query", d.tracer)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError("DynamicORPKW.Query", r, echoRegion(q, ws))
		}
		if obsEnd(d.fam, qt, &st, err, d.tracer) {
			obsSpan(d.fam, "Query", echoRegion(q, ws), d.k, qt, &st, err, d.tracer)
		}
	}()
	if len(ws) != d.k {
		return QueryStats{}, fmt.Errorf("%w: query carries %d keywords but the index was built for k=%d", ErrInvalidQuery, len(ws), d.k)
	}
	if err := dataset.ValidateKeywords(ws); err != nil {
		return QueryStats{}, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	if err := validateRect(q, d.dim); err != nil {
		return QueryStats{}, err
	}
	opts = opts.normalized()
	ps := newPolState(opts.Policy)
	// Buffer: linear scan (bounded by bufferCap).
	for i := range d.buffer {
		e := &d.buffer[i]
		st.Ops++
		if err := ps.check(&st, st.Ops); err != nil {
			return st, err
		}
		if q.ContainsPoint(e.obj.Point) && docHasAll(e.obj.Doc, ws) {
			if opts.Limit > 0 && st.Reported >= opts.Limit {
				st.Truncated = true
				return st, nil
			}
			report(e.handle, &e.obj)
			st.Reported++
		}
	}
	for _, b := range d.buckets {
		if b == nil {
			continue
		}
		failpoint(FPDynamicBucket)
		if opts.Limit > 0 && st.Reported >= opts.Limit {
			st.Truncated = true
			return st, nil
		}
		// Reported live results are tracked here, not by the bucket's own
		// stats: tombstoned hits must not count toward the limit.
		live := 0
		bopts := QueryOpts{Budget: opts.Budget, Policy: opts.Policy.shrunk(st.Ops)}
		bst, berr := b.ix.Query(q, ws, bopts, func(id int32) {
			e := &b.entries[id]
			if _, gone := d.deleted[e.handle]; gone {
				return
			}
			if opts.Limit > 0 && st.Reported+live >= opts.Limit {
				return
			}
			report(e.handle, &e.obj)
			live++
		})
		bst.Reported = live
		st.add(bst)
		if berr != nil {
			return st, berr
		}
	}
	if opts.Limit > 0 && st.Reported >= opts.Limit {
		st.Truncated = true
	}
	return st, nil
}

// Collect is Query returning the handles.
func (d *DynamicORPKW) Collect(q *geom.Rect, ws []dataset.Keyword) ([]int64, QueryStats, error) {
	var out []int64
	st, err := d.Query(q, ws, func(h int64, _ *dataset.Object) { out = append(out, h) })
	return out, st, err
}

// Buckets returns the occupancy pattern (entry counts per slot), exposed for
// tests and instrumentation of the logarithmic structure.
func (d *DynamicORPKW) Buckets() []int {
	out := make([]int, len(d.buckets))
	for i, b := range d.buckets {
		if b != nil {
			out[i] = len(b.entries)
		}
	}
	return out
}

// NumBuckets returns the number of occupied static parts; O(log n) by the
// binary-counter invariant.
func (d *DynamicORPKW) NumBuckets() int {
	c := 0
	for _, b := range d.buckets {
		if b != nil {
			c++
		}
	}
	return c
}

// docHasAll is the buffer-side membership check (documents there are small
// and unindexed).
func docHasAll(doc, ws []dataset.Keyword) bool {
	for _, w := range ws {
		found := false
		for _, x := range doc {
			if x == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// DynEntry is one live (handle, object) pair of a dynamic index — the unit
// of a durability snapshot.
type DynEntry struct {
	Handle int64
	Obj    dataset.Object
}

// Snapshot returns every live entry in ascending handle order. The returned
// objects alias the index's internal copies; callers must treat them as
// read-only and must not mutate the index while holding the slice.
func (d *DynamicORPKW) Snapshot() []DynEntry {
	out := make([]DynEntry, 0, d.live)
	for i := range d.buffer {
		out = append(out, DynEntry{Handle: d.buffer[i].handle, Obj: d.buffer[i].obj})
	}
	for _, b := range d.buckets {
		if b == nil {
			continue
		}
		for i := range b.entries {
			e := &b.entries[i]
			if _, gone := d.deleted[e.handle]; gone {
				continue
			}
			out = append(out, DynEntry{Handle: e.handle, Obj: e.obj})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Handle < out[b].Handle })
	return out
}

// RestoreDynamicORPKW rebuilds a dynamic index from a durability snapshot:
// the live entries (any order; they are sorted by handle) plus the
// next-handle watermark, which must exceed every entry's handle so that
// handles assigned after recovery never collide with restored ones.
func RestoreDynamicORPKW(dim, k, bufferCap int, entries []DynEntry, nextHandle int64, opts ...BuildOption) (*DynamicORPKW, error) {
	d, err := NewDynamicORPKW(dim, k, bufferCap, opts...)
	if err != nil {
		return nil, err
	}
	sorted := append([]DynEntry(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Handle < sorted[b].Handle })
	for i, e := range sorted {
		if e.Handle < 0 || e.Handle >= nextHandle {
			return nil, fmt.Errorf("core: snapshot handle %d outside [0, %d)", e.Handle, nextHandle)
		}
		if i > 0 && e.Handle == sorted[i-1].Handle {
			return nil, fmt.Errorf("core: duplicate snapshot handle %d", e.Handle)
		}
		if len(e.Obj.Point) != dim {
			return nil, fmt.Errorf("core: snapshot object dimension %d, index dimension %d", len(e.Obj.Point), dim)
		}
		if len(e.Obj.Doc) == 0 {
			return nil, fmt.Errorf("core: snapshot object with empty document")
		}
		d.buffer = append(d.buffer, dynEntry{handle: e.Handle, obj: e.Obj})
		d.live++
		if len(d.buffer) >= d.bufferCap {
			if err := d.carry(); err != nil {
				return nil, err
			}
		}
	}
	d.nextHandle = nextHandle
	d.syncObs()
	return d, nil
}

// expectedBuckets returns the binary-counter bucket count for n entries and
// buffer capacity b (a test helper kept here for documentation value).
func expectedBuckets(n, b int) int {
	if n <= 0 {
		return 0
	}
	return bits.OnesCount(uint(n / b))
}
