package core

import (
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
)

// StructuredOnly is the second naive baseline of Section 1: retrieve every
// object satisfying the structured condition from a plain (keyword-free)
// geometry index, then eliminate the objects whose documents miss a keyword.
// Like the keywords-only baseline it can do Theta(region size) work even
// when nothing qualifies — the drawback the paper's indexes remove.
type StructuredOnly struct {
	ds   *dataset.Dataset
	tree *spart.Tree
}

// BuildStructuredOnly builds the baseline over the dataset's points using
// the given splitter (nil selects kd for rank-free float data of any
// dimension).
func BuildStructuredOnly(ds *dataset.Dataset, split spart.Splitter) *StructuredOnly {
	if split == nil {
		split = &spart.Box{Dim: ds.Dim()}
	}
	pts := make([]geom.Point, ds.Len())
	for i := range pts {
		pts[i] = ds.Point(int32(i))
	}
	return &StructuredOnly{ds: ds, tree: spart.BuildTree(pts, nil, split, 8)}
}

// Query reports objects in q containing all keywords; Candidates counts the
// objects the geometric phase surfaced before keyword filtering.
func (b *StructuredOnly) Query(q geom.Region, ws []dataset.Keyword) (out []int32, candidates int, stats spart.QueryStats) {
	stats = b.tree.Query(q, func(id int32) {
		candidates++
		if b.ds.HasAll(id, ws) {
			out = append(out, id)
		}
	})
	return out, candidates, stats
}

// Tree exposes the underlying plain tree (for the crossing-sensitivity
// experiments, which measure the geometry substrate in isolation).
func (b *StructuredOnly) Tree() *spart.Tree { return b.tree }
