package core

import (
	"math"
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

func TestDimRedRejectsLowDim(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 20, Dim: 2, Vocab: 10, DocLen: 3})
	if _, err := BuildORPKWHigh(ds, 2); err == nil {
		t.Fatal("d=2 must be rejected (use ORPKW)")
	}
	ds3 := workload.Gen(workload.Config{Seed: 1, Objects: 20, Dim: 3, Vocab: 10, DocLen: 3})
	if _, err := BuildORPKWHigh(ds3, 1); err == nil {
		t.Fatal("k=1 must be rejected")
	}
}

// Proposition 1: the tree has O(log log N) levels. For the N values a test
// can afford, that means single digits.
func TestDimRedLevelsLogLog(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 2, Objects: 20000, Dim: 3, Vocab: 500, DocLen: 5})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l := ix.Levels(); l > 8 {
		t.Fatalf("top tree has %d levels for N=%d; expected O(log log N)", l, ds.N())
	}
}

// The fanout schedule f_u = 2*2^(k^level) (equation 10).
func TestFanoutSchedule(t *testing.T) {
	cases := []struct {
		k, level int
		want     int64
	}{
		{2, 0, 4}, {2, 1, 8}, {2, 2, 32}, {2, 3, 512},
		{3, 0, 4}, {3, 1, 16},
	}
	for _, c := range cases {
		if got := fanoutAt(c.k, c.level, 1<<40); got != c.want {
			t.Errorf("fanoutAt(k=%d, level=%d) = %d, want %d", c.k, c.level, got, c.want)
		}
	}
	// Deep levels saturate at the cap instead of overflowing.
	if got := fanoutAt(2, 50, 999); got != 999 {
		t.Errorf("deep fanout = %d, want cap", got)
	}
}

// Proposition 3: realized fanouts stay O(N^{1-1/k}).
func TestDimRedFanoutBound(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 8000, Dim: 3, Vocab: 300, DocLen: 5})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(16 * math.Sqrt(float64(ds.N())))
	if f := ix.MaxFanout(); f > bound {
		t.Fatalf("max fanout %d exceeds O(N^{1/2}) bound %d", f, bound)
	}
}

// Figure 2's structural claim: each level of the top tree has at most two
// type-2 nodes per query.
func TestDimRedType2PerLevel(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 4, Objects: 5000, Dim: 3, Vocab: 200, DocLen: 5})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 40; trial++ {
		q := workload.RandRect(rng, 3, 0.2+rng.Float64()*0.6)
		profile, err := ix.Type2Profile(q, []dataset.Keyword{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		for lvl, c := range profile {
			if c > 2 {
				t.Fatalf("trial %d: level %d has %d type-2 nodes, want <= 2", trial, lvl, c)
			}
		}
	}
}

// The space blow-up per added dimension stays modest (the log log N factor
// of Lemma 11): compare the audit for d=3 against the d=2 framework.
func TestDimRedSpaceBlowup(t *testing.T) {
	n := 4000
	ds2 := workload.Gen(workload.Config{Seed: 5, Objects: n, Dim: 2, Vocab: 300, DocLen: 5})
	ds3 := workload.Gen(workload.Config{Seed: 5, Objects: n, Dim: 3, Vocab: 300, DocLen: 5})
	ix2, err := BuildORPKW(ds2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix3, err := BuildORPKWHigh(ds3, 2)
	if err != nil {
		t.Fatal(err)
	}
	w2 := ix2.Space().TotalWords(64)
	w3 := ix3.Space().TotalWords(64)
	// log log N for N ~ 24k is ~4.6; allow factor 16 for constants.
	if ratio := float64(w3) / float64(w2); ratio > 16 {
		t.Fatalf("d=3 uses %.1fx the space of d=2; expected an O(log log N) factor", ratio)
	}
}

// Limit and budget flow through secondary structures.
func TestDimRedLimitBudget(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 6, Objects: 3000, Dim: 3, Vocab: 6, DocLen: 4})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.UniverseRect(3)
	full, _, err := ix.Collect(u, []dataset.Keyword{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Skip("too few matches for limit test")
	}
	got, st, err := ix.Collect(u, []dataset.Keyword{0, 1}, QueryOpts{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || !st.Truncated {
		t.Fatalf("limit=5: got %d, truncated=%v", len(got), st.Truncated)
	}
	_, st, err = ix.Collect(u, []dataset.Keyword{0, 1}, QueryOpts{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !st.BudgetHit {
		t.Fatal("tiny budget must trip")
	}
}

// Type-1 plus type-2 node counts are recorded.
func TestDimRedStatsPopulated(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 7, Objects: 3000, Dim: 3, Vocab: 40, DocLen: 5})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := workload.RandRect(rand.New(rand.NewSource(1)), 3, 0.5)
	_, st, err := ix.Collect(q, []dataset.Keyword{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Type1Nodes+st.Type2Nodes == 0 {
		t.Fatalf("dimension-reduction stats empty: %+v", st)
	}
}

// 4-dimensional nesting: a drTree whose secondaries are themselves drTrees.
func TestDimRedNested4D(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 8, Objects: 1500, Dim: 4, Vocab: 40, DocLen: 4})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 25; trial++ {
		q := workload.RandRect(rng, 4, 0.6)
		ws := workload.RandKeywords(rng, 40, 2)
		got, _, err := ix.Collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(q, ws), "dimred-4d")
	}
}

// k=3 through the dimension-reduction machinery.
func TestDimRedK3(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 9, Objects: 1200, Dim: 3, Vocab: 15, DocLen: 6, ZipfS: 1.1})
	ix, err := BuildORPKWHigh(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		q := workload.RandRect(rng, 3, 0.7)
		ws := workload.RandKeywords(rng, 15, 3)
		got, _, err := ix.Collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(q, ws), "dimred-k3")
	}
}
