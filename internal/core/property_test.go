package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
	"kwsc/internal/workload"
)

// randDataset builds a small random dataset with heavy keyword reuse so
// intersections are non-trivial.
func randDataset(rng *rand.Rand, maxN, dim int) *dataset.Dataset {
	n := 2 + rng.Intn(maxN)
	vocab := 4 + rng.Intn(12)
	objs := make([]dataset.Object, n)
	for i := range objs {
		p := make(geom.Point, dim)
		for j := range p {
			// Coarse grid: plenty of coordinate ties.
			p[j] = float64(rng.Intn(16))
		}
		l := 1 + rng.Intn(5)
		doc := make([]dataset.Keyword, l)
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(vocab))
		}
		objs[i] = dataset.Object{Point: p, Doc: doc}
	}
	return dataset.MustNew(objs)
}

func randKws(rng *rand.Rand, ds *dataset.Dataset, k int) []dataset.Keyword {
	ws := make([]dataset.Keyword, 0, k)
	seen := map[dataset.Keyword]bool{}
	for len(ws) < k {
		w := dataset.Keyword(rng.Intn(ds.W() + 1))
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	return ws
}

// Property: ORP-KW equals the brute-force oracle on arbitrary random
// datasets (including heavy ties) and arbitrary rectangles, for k = 2 and 3.
func TestPropertyORPKWEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	check := func() bool {
		k := 2 + rng.Intn(2)
		ds := randDataset(rng, 120, 2)
		ix, err := BuildORPKW(ds, k)
		if err != nil {
			return false
		}
		for q := 0; q < 8; q++ {
			lo := []float64{float64(rng.Intn(16)) - 0.5, float64(rng.Intn(16)) - 0.5}
			hi := []float64{lo[0] + float64(rng.Intn(10)), lo[1] + float64(rng.Intn(10))}
			rect := &geom.Rect{Lo: lo, Hi: hi}
			ws := randKws(rng, ds, k)
			got, _, err := ix.Collect(rect, ws, QueryOpts{})
			if err != nil {
				return false
			}
			if !sameIDSet(got, ds.Filter(rect, ws)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Willard-substrate SP-KW index equals the oracle on random
// halfplane conjunctions.
func TestPropertySPKWEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	check := func() bool {
		k := 2 + rng.Intn(2)
		ds := randDataset(rng, 100, 2)
		ix, err := BuildSPKW(ds, SPKWConfig{K: k})
		if err != nil {
			return false
		}
		for q := 0; q < 6; q++ {
			s := 1 + rng.Intn(3)
			hs := make([]geom.Halfspace, s)
			for i := range hs {
				hs[i] = geom.Halfspace{
					Coef:  []float64{rng.NormFloat64(), rng.NormFloat64()},
					Bound: rng.NormFloat64() * 10,
				}
			}
			ws := randKws(rng, ds, k)
			got, _, err := ix.CollectConstraints(hs, ws, QueryOpts{})
			if err != nil {
				return false
			}
			if !sameIDSet(got, ds.Filter(geom.NewPolyhedron(hs...), ws)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the dimension-reduction index agrees with the oracle in 3 and 4
// dimensions.
func TestPropertyORPKWHighEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	check := func() bool {
		dim := 3 + rng.Intn(2)
		ds := randDataset(rng, 100, dim)
		ix, err := BuildORPKWHigh(ds, 2)
		if err != nil {
			return false
		}
		for q := 0; q < 6; q++ {
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			for j := 0; j < dim; j++ {
				lo[j] = float64(rng.Intn(16)) - 0.5
				hi[j] = lo[j] + float64(rng.Intn(12))
			}
			rect := &geom.Rect{Lo: lo, Hi: hi}
			ws := randKws(rng, ds, 2)
			got, _, err := ix.Collect(rect, ws, QueryOpts{})
			if err != nil {
				return false
			}
			if !sameIDSet(got, ds.Filter(rect, ws)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the grid-splitter ablation substrate answers identically to the
// Willard substrate (same problem, different Step-1 index).
func TestPropertySplitterAgnostic(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 60; trial++ {
		ds := randDataset(rng, 100, 2)
		a, err := BuildSPKW(ds, SPKWConfig{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildSPKW(ds, SPKWConfig{K: 2, Splitter: &spart.Grid2D{G: 3}})
		if err != nil {
			t.Fatal(err)
		}
		hs := []geom.Halfspace{{
			Coef:  []float64{rng.NormFloat64(), rng.NormFloat64()},
			Bound: rng.NormFloat64() * 8,
		}}
		ws := randKws(rng, ds, 2)
		ra, _, err := a.CollectConstraints(hs, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.CollectConstraints(hs, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDSet(ra, rb) {
			t.Fatalf("trial %d: willard and grid substrates disagree", trial)
		}
	}
}

// Property: planted workloads have exactly the planted OUT.
func TestPropertyPlantedOut(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 30; trial++ {
		out := rng.Intn(50)
		ds, kws, region := workload.GenPlanted(workload.Planted{
			Seed: int64(trial), Objects: 500, Dim: 2, K: 2,
			Out: out, Partial: 40,
		})
		ix, err := BuildORPKW(ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ix.Collect(region, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != out {
			t.Fatalf("trial %d: planted OUT=%d, query returned %d", trial, out, len(got))
		}
	}
}

// Property: FullSpace queries equal pure posting-list intersection, i.e. the
// framework solves k-SI exactly (the Section 1.2 equivalence).
func TestPropertyKSIEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		ds := randDataset(rng, 150, 2)
		ix, err := BuildKSIFromDataset(ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		ws := randKws(rng, ds, 2)
		got, _, err := ix.Report(ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDSet(got, ds.Filter(geom.FullSpace{}, ws)) {
			t.Fatalf("trial %d: k-SI mismatch", trial)
		}
	}
}

func sameIDSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int32]bool, len(a))
	for _, x := range a {
		if m[x] {
			return false // duplicate
		}
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}
