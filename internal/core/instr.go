package core

import (
	"errors"
	"time"

	"kwsc/internal/obs"
)

// family identifies which index family a public entry point belongs to in
// the metrics registry. famNone means "not observed": composite indexes
// (RRKW over ORPKW, NN probes over ORPKW, dynamic buckets, planner routes,
// MultiK per-arity indexes) build their inner indexes untagged so each user
// query is counted exactly once, at the entry point the caller invoked.
type family uint8

const (
	famNone family = iota
	famORPKW
	famORPKWHigh
	famRRKW
	famLCKW
	famSRPKW
	famLinfNN
	famL2NN
	famKSI
	famDynamic
	famMultiK
	famPlanner
	famCount
)

// famNames are the `family` label values in exported series.
var famNames = [famCount]string{
	famORPKW:     "orpkw",
	famORPKWHigh: "orpkw_high",
	famRRKW:      "rrkw",
	famLCKW:      "lckw",
	famSRPKW:     "srpkw",
	famLinfNN:    "linf_nn",
	famL2NN:      "l2_nn",
	famKSI:       "ksi",
	famDynamic:   "dynamic",
	famMultiK:    "multik",
	famPlanner:   "planner",
}

// famMeter holds one family's pre-resolved metric pointers. Resolution
// happens once at package init; per-query updates are atomic increments on
// these pointers and never touch the registry's name map.
type famMeter struct {
	queries     *obs.Counter
	errInvalid  *obs.Counter
	errDeadline *obs.Counter
	errBudget   *obs.Counter
	errCanceled *obs.Counter
	errPanic    *obs.Counter
	latencyNs   *obs.Histogram
	ops         *obs.Histogram
	nodes       *obs.Histogram
	builds      *obs.Counter
	buildNs     *obs.Histogram
}

var meters [famCount]famMeter

func init() {
	reg := obs.Default()
	for f := famNone + 1; f < famCount; f++ {
		n := famNames[f]
		lab := `{family="` + n + `"}`
		errLab := func(code string) string {
			return `kwsc_query_errors_total{family="` + n + `",code="` + code + `"}`
		}
		meters[f] = famMeter{
			queries:     reg.Counter("kwsc_queries_total" + lab),
			errInvalid:  reg.Counter(errLab("invalid")),
			errDeadline: reg.Counter(errLab("deadline")),
			errBudget:   reg.Counter(errLab("budget")),
			errCanceled: reg.Counter(errLab("canceled")),
			errPanic:    reg.Counter(errLab("panic")),
			latencyNs:   reg.Histogram("kwsc_query_latency_ns" + lab),
			ops:         reg.Histogram("kwsc_query_ops" + lab),
			nodes:       reg.Histogram("kwsc_query_nodes" + lab),
			builds:      reg.Counter("kwsc_builds_total" + lab),
			buildNs:     reg.Histogram("kwsc_build_ns" + lab),
		}
	}
}

// Cross-family metrics: dynamic-index churn (Bentley–Saxe health), batch
// throughput, planner route decisions, degraded-mode fallbacks. Gauges are
// updated with deltas so several indexes share them coherently as fleet
// totals.
var (
	dynInserts    = obs.Default().Counter("kwsc_dynamic_inserts_total")
	dynDeletes    = obs.Default().Counter("kwsc_dynamic_deletes_total")
	dynCarries    = obs.Default().Counter("kwsc_dynamic_carries_total")
	dynRebuilds   = obs.Default().Counter("kwsc_dynamic_rebuilds_total")
	dynBuckets    = obs.Default().Gauge("kwsc_dynamic_buckets")
	dynLive       = obs.Default().Gauge("kwsc_dynamic_live_objects")
	dynBuffered   = obs.Default().Gauge("kwsc_dynamic_buffered")
	dynTombstones = obs.Default().Gauge("kwsc_dynamic_tombstones")

	// Copy-on-write state publication and MVCC snapshot health: one publish
	// per applied mutation (there are no retries — publication is serialized
	// on the writer mutex, so the counter doubles as the applied-op count),
	// one pin per SnapshotNow, and the last observed reader staleness (ops
	// between a pinned query's seq and the head seq at query time).
	dynPublishes     = obs.Default().Counter("kwsc_dynamic_state_publishes_total")
	dynSnapshotPins  = obs.Default().Counter("kwsc_dynamic_snapshot_pins_total")
	dynSnapStaleness = obs.Default().Gauge("kwsc_dynamic_snapshot_staleness_ops")

	batchRuns    = obs.Default().Counter("kwsc_batch_runs_total")
	batchQueries = obs.Default().Counter("kwsc_batch_queries_total")

	routeFrameworkHits  = obs.Default().Counter(`kwsc_planner_route_total{route="framework"}`)
	routeKeywordsHits   = obs.Default().Counter(`kwsc_planner_route_total{route="keywords-only"}`)
	routeStructuredHits = obs.Default().Counter(`kwsc_planner_route_total{route="structured-only"}`)
)

// errCounter maps a typed query error to its per-family counter (nil for
// success or unclassified errors; those still count in queries).
func (m *famMeter) errCounter(err error) *obs.Counter {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrInvalidQuery):
		return m.errInvalid
	case errors.Is(err, ErrDeadline):
		return m.errDeadline
	case errors.Is(err, ErrBudget):
		return m.errBudget
	case errors.Is(err, ErrCanceled):
		return m.errCanceled
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return m.errPanic
	}
	return nil
}

// outcomeOf classifies an error for span reporting.
func outcomeOf(err error) obs.Outcome {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, ErrInvalidQuery):
		return obs.OutcomeInvalid
	case errors.Is(err, ErrDeadline):
		return obs.OutcomeDeadline
	case errors.Is(err, ErrBudget):
		return obs.OutcomeBudget
	case errors.Is(err, ErrCanceled):
		return obs.OutcomeCanceled
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return obs.OutcomePanic
	}
	return obs.OutcomeError
}

// obsBegin marks entry into an instrumented query method: it fires tracer
// Begin hooks and returns the start time, or the zero Time when nothing is
// observing this index (untagged family, or metrics/tracing/slow-log all
// off). The zero return short-circuits obsEnd, so a disarmed query pays one
// atomic load and no clock read.
func obsBegin(fam family, op string, local obs.Tracer) time.Time {
	if fam == famNone || (local == nil && !obs.Armed()) {
		return time.Time{}
	}
	if local != nil {
		local.Begin(famNames[fam], op)
	}
	if g := obs.ActiveTracer(); g != nil {
		g.Begin(famNames[fam], op)
	}
	return time.Now()
}

// obsEnd records a finished query into the registry — atomics only, no
// allocation — and reports whether the caller must also emit a span (a
// tracer is installed or the slow log would admit this query). Span
// emission is separate so the query echo is only formatted off the
// metrics-only hot path.
func obsEnd(fam family, start time.Time, st *QueryStats, err error, local obs.Tracer) bool {
	if start.IsZero() {
		return false
	}
	if obs.MetricsEnabled() {
		m := &meters[fam]
		m.queries.Inc()
		if c := m.errCounter(err); c != nil {
			c.Inc()
		}
		m.latencyNs.Observe(int64(time.Since(start)))
		m.ops.Observe(st.Ops)
		m.nodes.Observe(int64(st.NodesVisited))
	}
	return local != nil || obs.ActiveTracer() != nil || obs.SlowAdmits(st.Ops)
}

// obsSpan builds and emits the end-of-query span to the per-index tracer,
// the global tracer, and the slow-query log. Callers invoke it only when
// obsEnd returned true; echo is the human-readable query (echoRegion-style),
// formatted by the caller at that point and not before.
func obsSpan(fam family, op, echo string, k int, start time.Time, st *QueryStats, err error, local obs.Tracer) {
	sp := obs.Span{
		Family:  famNames[fam],
		Op:      op,
		Query:   echo,
		K:       k,
		Out:     st.Reported,
		Ops:     st.Ops,
		Nodes:   st.NodesVisited,
		Elapsed: time.Since(start),
		Outcome: outcomeOf(err),
		Err:     err,
	}
	emitSpan(sp, local)
}

// emitSpan delivers a completed span (also used directly by the planner,
// which attaches route and estimate fields).
func emitSpan(sp obs.Span, local obs.Tracer) {
	if local != nil {
		local.End(sp)
	}
	if g := obs.ActiveTracer(); g != nil {
		g.End(sp)
	}
	if obs.SlowAdmits(sp.Ops) {
		obs.RecordSlow(obs.SlowEntry{
			Family:  sp.Family,
			Op:      sp.Op,
			Query:   sp.Query,
			Ops:     sp.Ops,
			Nodes:   sp.Nodes,
			Elapsed: sp.Elapsed,
			Outcome: sp.Outcome,
		})
	}
}

// obsBuildStart/obsBuildEnd time index construction. Composite indexes
// build their inner structures with NoObs, so each user-visible Build call
// is counted once under the family the caller asked for.
func obsBuildStart() time.Time {
	if !obs.MetricsEnabled() {
		return time.Time{}
	}
	return time.Now()
}

func obsBuildEnd(fam family, start time.Time) {
	if fam == famNone || start.IsZero() || !obs.MetricsEnabled() {
		return
	}
	m := &meters[fam]
	m.builds.Inc()
	m.buildNs.Observe(int64(time.Since(start)))
}
