package core

import (
	"fmt"
	"math"
	"sync"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
)

// QueryOpts tunes a framework query.
type QueryOpts struct {
	// Limit stops the query after reporting this many objects (0 = all).
	// The L∞NN-KW and L2NN-KW searches (Corollaries 4 and 7) use it to
	// implement the "terminate manually once t results are found" step.
	Limit int
	// Budget stops the query after this many work units (pivot checks,
	// materialized-list scans and node visits; 0 = unlimited). It realizes
	// the paper's manual-termination argument for emptiness queries
	// (footnote 4). Exhaustion sets QueryStats.BudgetHit without an error;
	// for the error-surfacing wall-clock and visit bounds of the serving
	// path, use Policy.
	Budget int64
	// Policy bounds the query in wall-clock terms (deadline, node-visit
	// budget, cancellation). The zero value imposes nothing and keeps the
	// query path allocation-free; violations surface as typed errors
	// (ErrDeadline, ErrBudget, ErrCanceled) alongside partial results.
	Policy ExecPolicy
}

// QueryStats instruments one query; Ops is the machine-independent cost in
// work units, which is what the complexity experiments fit exponents on.
type QueryStats struct {
	NodesVisited  int
	CoveredNodes  int   // visited nodes with cell fully covered by q
	CrossingNodes int   // visited nodes with cell crossing q's boundary
	PivotChecks   int64 // objects examined in pivot sets
	MatScanned    int64 // objects examined in materialized small lists
	Reported      int
	Ops           int64
	Truncated     bool // stopped early: Limit, MaxResults, or any policy stop
	BudgetHit     bool // stopped by Budget

	// Resilience instrumentation (ExecPolicy and degraded-mode outcomes).
	DeadlineHit   bool // stopped by Policy.Deadline/Timeout
	NodeBudgetHit bool // stopped by Policy.NodeBudget
	Canceled      bool // stopped by Policy.Done
	Fallback      bool // answered by the degraded-mode baseline

	// Dimension-reduction instrumentation (Section 4 / Figure 2): counts of
	// type-1 nodes (sigma(u) contained in q's x-range; answered by the
	// secondary structure) and type-2 nodes (answered by pivot scans).
	Type1Nodes int
	Type2Nodes int
}

// add merges st2 into st (used when a query spans secondary structures).
func (st *QueryStats) add(o QueryStats) {
	st.NodesVisited += o.NodesVisited
	st.CoveredNodes += o.CoveredNodes
	st.CrossingNodes += o.CrossingNodes
	st.PivotChecks += o.PivotChecks
	st.MatScanned += o.MatScanned
	st.Reported += o.Reported
	st.Ops += o.Ops
	st.Truncated = st.Truncated || o.Truncated
	st.BudgetHit = st.BudgetHit || o.BudgetHit
	st.DeadlineHit = st.DeadlineHit || o.DeadlineHit
	st.NodeBudgetHit = st.NodeBudgetHit || o.NodeBudgetHit
	st.Canceled = st.Canceled || o.Canceled
	st.Fallback = st.Fallback || o.Fallback
	st.Type1Nodes += o.Type1Nodes
	st.Type2Nodes += o.Type2Nodes
}

// Query answers a region-plus-keywords query (Section 3.3's algorithm):
// report every object whose point lies in q and whose document contains all
// k keywords. The keyword tuple must contain exactly the arity k the index
// was built with, with no duplicates.
func (f *Framework) Query(q geom.Region, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError("Framework.Query", r, echoRegion(q, ws))
		}
	}()
	if err := f.checkQuery(ws); err != nil {
		return QueryStats{}, err
	}
	opts = opts.normalized()
	qc := getQctx()
	qc.f, qc.q, qc.ws, qc.opts, qc.report = f, q, ws, opts, report
	qc.pst = newPolState(opts.Policy)
	f.run(qc)
	st, err = qc.st, qc.stopErr
	putQctx(qc)
	return st, err
}

// Collect is Query returning a slice of object ids. The slice is freshly
// allocated and owned by the caller; use CollectInto to amortize it.
func (f *Framework) Collect(q geom.Region, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return f.CollectInto(q, ws, opts, nil)
}

// CollectInto is Collect appending into buf (reusing its capacity, like
// append). With a warmed buffer and a pooled context the steady-state query
// path performs zero heap allocations. The returned slice aliases buf, never
// pooled scratch, so the caller owns it outright; with a nil buf the ids
// accumulate in pooled scratch and are copied out in one exact-size
// allocation.
func (f *Framework) CollectInto(q geom.Region, ws []dataset.Keyword, opts QueryOpts, buf []int32) (out []int32, st QueryStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, newPanicError("Framework.CollectInto", r, echoRegion(q, ws))
		}
	}()
	if err := f.checkQuery(ws); err != nil {
		return nil, QueryStats{}, err
	}
	opts = opts.normalized()
	qc := getQctx()
	qc.f, qc.q, qc.ws, qc.opts = f, q, ws, opts
	qc.pst = newPolState(opts.Policy)
	qc.collecting = true
	scratch := buf == nil
	if scratch {
		qc.out = qc.res[:0]
	} else {
		qc.out = buf[:0]
	}
	f.run(qc)
	out, st, err = qc.out, qc.st, qc.stopErr
	if scratch {
		qc.res = out[:0] // keep the grown scratch for the next query
		if len(out) > 0 {
			out = append([]int32(nil), out...)
		} else {
			out = nil
		}
	}
	putQctx(qc) // clears qc.out: the pool never retains the returned slice
	return out, st, err
}

func (f *Framework) checkQuery(ws []dataset.Keyword) error {
	if len(ws) != f.k {
		return fmt.Errorf("%w: query carries %d keywords but the index was built for k=%d", ErrInvalidQuery, len(ws), f.k)
	}
	if err := dataset.ValidateKeywords(ws); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	return nil
}

func (f *Framework) run(qc *qctx) {
	if f.flat != nil {
		if r, ok := qc.q.(*geom.Rect); ok {
			qc.qLo, qc.qHi = r.Lo, r.Hi
		}
		if len(f.flat.cells) > 0 {
			rel := f.split.Relate(f.flat.cells[0], qc.q)
			if rel != geom.Disjoint {
				qc.visitFlat(0, rel)
			}
		}
		return
	}
	if len(f.nodes) > 0 {
		rel := f.split.Relate(f.nodes[0].cell, qc.q)
		if rel != geom.Disjoint {
			qc.visit(0, rel)
		}
	}
}

// qctx is the per-query traversal state. Contexts are pooled: the sorted
// scratch buffer survives between queries, so a warmed steady-state query
// allocates nothing. All reference fields are cleared before the context
// returns to the pool (putQctx) — pooled memory must never alias anything a
// caller still holds.
type qctx struct {
	f          *Framework
	q          geom.Region
	ws         []dataset.Keyword
	opts       QueryOpts
	report     func(int32)
	collecting bool
	out        []int32
	st         QueryStats
	done       bool
	pst        polState // ExecPolicy progress (zero when no policy is set)
	stopErr    error    // typed policy error that ended the traversal
	sorted     []int32  // scratch for tensor index
	res        []int32  // scratch accumulator for buf-less CollectInto
	blk        []int32  // scratch for flat-layout packed-block decoding

	// Rect fast path for the flat layout: when q is a *geom.Rect, run caches
	// its bounds so checkAndEmitFlat tests containment with inlined
	// comparisons over the coords arena instead of an interface call.
	qLo, qHi []float64
}

var qctxPool = sync.Pool{New: func() any { return new(qctx) }}

func getQctx() *qctx { return qctxPool.Get().(*qctx) }

func putQctx(qc *qctx) {
	sorted, res, blk := qc.sorted[:0], qc.res[:0], qc.blk[:0]
	*qc = qctx{sorted: sorted, res: res, blk: blk}
	qctxPool.Put(qc)
}

func (qc *qctx) stop() bool {
	if qc.done {
		return true
	}
	if qc.opts.Limit > 0 && qc.st.Reported >= qc.opts.Limit {
		qc.st.Truncated = true
		qc.done = true
		return true
	}
	if qc.opts.Budget > 0 && qc.st.Ops > qc.opts.Budget {
		qc.st.BudgetHit = true
		qc.done = true
		return true
	}
	if qc.pst.active {
		if err := qc.pst.check(&qc.st, int64(qc.st.NodesVisited)); err != nil {
			qc.stopErr = err
			qc.done = true
			return true
		}
	}
	return false
}

func (qc *qctx) emit(id int32) {
	if qc.collecting {
		qc.out = append(qc.out, id)
	} else {
		qc.report(id)
	}
	qc.st.Reported++
}

// checkAndEmit examines one candidate object.
func (qc *qctx) checkAndEmit(id int32, covered bool) {
	if (covered || qc.q.ContainsPoint(qc.f.pts[id])) && qc.f.ds.HasAll(id, qc.ws) {
		qc.emit(id)
	}
}

func (qc *qctx) visit(u int32, rel geom.Relation) {
	if qc.stop() {
		return
	}
	f := qc.f
	n := &f.nodes[u]
	failpoint(FPFrameworkVisit)
	qc.st.NodesVisited++
	qc.st.Ops++
	covered := rel == geom.Covered
	if covered {
		qc.st.CoveredNodes++
	} else {
		qc.st.CrossingNodes++
	}

	if len(n.children) == 0 {
		// Leaf: the pivot set is the whole active set.
		for _, id := range n.pivots {
			qc.st.PivotChecks++
			qc.st.Ops++
			qc.checkAndEmit(id, covered)
			if qc.stop() {
				return
			}
		}
		return
	}

	// Use T_u to decide, in O(k) time, whether every query keyword is large
	// at u. If some keyword is small, its materialized list D_u^act(w) is
	// scanned and the subtree is never descended (Section 3.3); qualifying
	// pivots of u are contained in that list, so they need no separate scan.
	smallW := dataset.Keyword(0)
	smallLen := -1
	allLarge := true
	for _, w := range qc.ws {
		if _, ok := n.large[w]; !ok {
			allLarge = false
			l := len(n.mat[w])
			if smallLen < 0 || l < smallLen {
				smallW, smallLen = w, l
			}
		}
	}
	if !allLarge {
		for _, id := range n.mat[smallW] {
			qc.st.MatScanned++
			qc.st.Ops++
			qc.checkAndEmit(id, covered)
			if qc.stop() {
				return
			}
		}
		return
	}

	// All keywords large: examine the pivots, then descend into children
	// whose non-emptiness bit is set and whose cell meets q.
	for _, id := range n.pivots {
		qc.st.PivotChecks++
		qc.st.Ops++
		qc.checkAndEmit(id, covered)
		if qc.stop() {
			return
		}
	}
	if cap(qc.sorted) < f.k {
		qc.sorted = make([]int32, f.k)
	}
	s := qc.sorted[:0]
	for _, w := range qc.ws {
		s = append(s, n.large[w])
	}
	qc.sorted = s
	sortInt32s(s)
	lin := tensorIndex(s, int(n.l))
	for ci, child := range n.children {
		if !n.tensors[ci].Get(int(lin)) {
			continue
		}
		crel := geom.Covered
		if !covered {
			crel = f.split.Relate(f.nodes[child].cell, qc.q)
			if crel == geom.Disjoint {
				continue
			}
		}
		qc.visit(child, crel)
		if qc.done {
			return
		}
	}
}

// CrossingCost replays a query and returns the crossing-sensitivity of
// expression (7): the number of internal crossing nodes plus
// sum N_z^{1-1/k} over the crossing leaves of the query tree, where a
// "leaf of T_qry" is any visited node at which the descent stopped.
// It is used by the F1/E6b experiments.
func (f *Framework) CrossingCost(q geom.Region, ws []dataset.Keyword) (float64, error) {
	if err := dataset.ValidateKeywords(ws); err != nil {
		return 0, err
	}
	if f.flat != nil {
		return f.crossingCostFlat(q, ws), nil
	}
	var cost float64
	exp := 1 - 1/float64(f.k)
	var rec func(u int32)
	rec = func(u int32) {
		n := &f.nodes[u]
		// Does the descent stop here?
		stopsHere := len(n.children) == 0
		if !stopsHere {
			for _, w := range ws {
				if _, ok := n.large[w]; !ok {
					stopsHere = true
					break
				}
			}
		}
		if stopsHere {
			cost += pow(float64(n.nu), exp)
			return
		}
		cost++
		s := make([]int32, 0, f.k)
		for _, w := range ws {
			s = append(s, n.large[w])
		}
		sortInt32s(s)
		lin := tensorIndex(s, int(n.l))
		for ci, child := range n.children {
			if !n.tensors[ci].Get(int(lin)) {
				continue
			}
			if f.split.Relate(f.nodes[child].cell, q) == geom.Crossing {
				rec(child)
			}
		}
	}
	if len(f.nodes) > 0 && f.split.Relate(f.nodes[0].cell, q) == geom.Crossing {
		rec(0)
	}
	return cost, nil
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

var _ = spart.PivotChild
