package core

import (
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// Exercise the small accessor and audit surfaces across every index type.
func TestAccessorSurfaces(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 200, Dim: 2, Vocab: 20, DocLen: 4})

	orp, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if orp.RankSpace() == nil {
		t.Fatal("RankSpace accessor nil")
	}
	if _, _, err := orp.Framework().Collect(geom.UniverseRect(2), []dataset.Keyword{0, 1}, QueryOpts{}); err != nil {
		t.Fatal(err)
	}

	sp, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Framework() == nil || sp.K() != 2 {
		t.Fatal("SPKW accessors broken")
	}
	if sp.Space().TotalWords(0) <= 0 { // 0 selects the 64-bit default
		t.Fatal("SPKW space audit empty")
	}

	srp, err := BuildSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if srp.K() != 2 || srp.Space().TotalWords(64) <= 0 {
		t.Fatal("SRPKW accessors broken")
	}
	if _, _, err := srp.Collect(geom.NewSphere(geom.Point{0.5}, 1), []dataset.Keyword{0, 1}, QueryOpts{}); err == nil {
		t.Fatal("dimension mismatch must error")
	}

	grid := workload.Gen(workload.Config{Seed: 2, Objects: 150, Dim: 2, Vocab: 20, DocLen: 4, Points: "grid", GridSide: 64})
	l2, err := BuildL2NN(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Space().TotalWords(64) <= 0 {
		t.Fatal("L2NN space audit empty")
	}

	ksi, err := BuildKSI([][]int64{{1, 2}, {2, 3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ksi.Dataset() == nil || ksi.Space().TotalWords(64) <= 0 {
		t.Fatal("KSI accessors broken")
	}

	ds3 := workload.Gen(workload.Config{Seed: 3, Objects: 200, Dim: 3, Vocab: 15, DocLen: 4})
	hi, err := BuildORPKWHigh(ds3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hi.K() != 2 {
		t.Fatal("ORPKWHigh.K broken")
	}

	dyn, err := NewDynamicORPKW(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.K() != 2 {
		t.Fatal("DynamicORPKW.K broken")
	}
	for i := 0; i < 40; i++ {
		if _, err := dyn.Insert(dataset.Object{Point: geom.Point{float64(i), 0}, Doc: []dataset.Keyword{0, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	occ := dyn.Buckets()
	total := 0
	for _, c := range occ {
		total += c
	}
	if total+8 < 40 { // at most one buffer of 8 outside buckets
		t.Fatalf("bucket occupancy %v accounts for too few objects", occ)
	}
}

func TestRRKWRectAccessor(t *testing.T) {
	rects := []RectObject{
		{Rect: geom.NewRect([]float64{1}, []float64{2}), Doc: []dataset.Keyword{0, 1}},
		{Rect: geom.NewRect([]float64{3}, []float64{5}), Doc: []dataset.Keyword{0, 1}},
	}
	ix, err := BuildRRKW(rects, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r := ix.Rect(1); r.Lo[0] != 3 || r.Hi[0] != 5 {
		t.Fatalf("Rect(1) = %v", r)
	}
	if ix.Space().TotalWords(64) <= 0 {
		t.Fatal("RRKW space audit empty")
	}
}

func TestSpaceBreakdownWordCharging(t *testing.T) {
	s := SpaceBreakdown{NodeWords: 10, TensorBits: 130}
	if w := s.TotalWords(64); w != 10+3 { // ceil(130/64) = 3
		t.Fatalf("TotalWords(64) = %d, want 13", w)
	}
	if w := s.TotalWords(0); w != 13 { // default 64
		t.Fatalf("TotalWords(0) = %d, want 13", w)
	}
	if w := s.TotalWords(20); w != 10+7 { // paper's log N-bit words: ceil(130/20)
		t.Fatalf("TotalWords(20) = %d, want 17", w)
	}
}
