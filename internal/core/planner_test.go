package core

import (
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

func TestPlannerAllRoutesAgree(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 800, Dim: 2, Vocab: 30, DocLen: 4})
	p, err := BuildPlanner(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	routesSeen := map[Route]bool{}
	for trial := 0; trial < 60; trial++ {
		var q *geom.Rect
		switch trial % 3 {
		case 0:
			q = workload.RandRect(rng, 2, 0.02) // tiny region
		case 1:
			q = workload.RandRect(rng, 2, 0.9) // huge region
		default:
			q = workload.RandRect(rng, 2, 0.3)
		}
		ws := workload.RandKeywords(rng, 30, 2)
		got, plan, err := p.Collect(q, ws)
		if err != nil {
			t.Fatal(err)
		}
		routesSeen[plan.Route] = true
		equalIDs(t, got, ds.Filter(q, ws), "planner-"+string(plan.Route))
	}
	if len(routesSeen) < 2 {
		t.Fatalf("planner never diversified: %v", routesSeen)
	}
}

func TestPlannerPicksKeywordsOnlyForRareTerm(t *testing.T) {
	// One keyword appears exactly once: the posting scan is unbeatable.
	rng := rand.New(rand.NewSource(2))
	objs := make([]dataset.Object, 2000)
	for i := range objs {
		objs[i] = dataset.Object{
			Point: geom.Point{rng.Float64(), rng.Float64()},
			Doc:   []dataset.Keyword{1, dataset.Keyword(2 + rng.Intn(20))},
		}
	}
	objs[500].Doc = []dataset.Keyword{0, 1} // the single rare occurrence
	ds := dataset.MustNew(objs)
	p, err := BuildPlanner(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Explain(geom.UniverseRect(2), []dataset.Keyword{0, 1})
	if plan.Route != RouteKeywordsOnly {
		t.Fatalf("rare keyword should route to posting scan, got %s (%v)", plan.Route, plan.Estimates)
	}
}

func TestPlannerPicksStructuredOnlyForTinyRegion(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 5000, Dim: 2, Vocab: 6, DocLen: 4, ZipfS: 1.01})
	p, err := BuildPlanner(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Frequent keywords + microscopic region.
	q := geom.NewRect([]float64{0.5, 0.5}, []float64{0.5001, 0.5001})
	plan := p.Explain(q, []dataset.Keyword{0, 1})
	if plan.Route != RouteStructuredOnly {
		t.Fatalf("tiny region should route to geometric filter, got %s (%v)", plan.Route, plan.Estimates)
	}
}

func TestPlannerPicksFrameworkForBalancedQuery(t *testing.T) {
	// Large postings, large region, but (by the planted construction) the
	// intersection is controlled: the framework's sublinear bound wins.
	ds, kws, _ := workload.GenAdversarial(workload.Adversarial{Seed: 4, Objects: 20000, Dim: 2, K: 2})
	p, err := BuildPlanner(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Explain(geom.UniverseRect(2), kws)
	// min posting ~ 0.9*sqrt(N); framework estimate ~ sqrt(N)*(1+N^{1/4}*..)
	// vs keywords-only 2*0.9*sqrt(N): close — accept either sublinear route,
	// but never the full structured scan.
	if plan.Route == RouteStructuredOnly {
		t.Fatalf("universe region must not route to the structured scan (%v)", plan.Estimates)
	}
}

func TestPlannerValidation(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 5, Objects: 100, Dim: 2, Vocab: 10, DocLen: 3})
	p, err := BuildPlanner(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Collect(geom.UniverseRect(2), []dataset.Keyword{1}); err == nil {
		t.Fatal("wrong arity must error")
	}
	if _, _, err := p.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 1}); err == nil {
		t.Fatal("duplicates must error")
	}
}

func TestPlannerSelectivityClamps(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 6, Objects: 100, Dim: 2, Vocab: 10, DocLen: 3})
	p, err := BuildPlanner(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Region outside the data bounding box.
	if s := p.selectivity(geom.NewRect([]float64{5, 5}, []float64{6, 6})); s != 0 {
		t.Fatalf("external region selectivity = %v, want 0", s)
	}
	// Region covering everything.
	if s := p.selectivity(geom.UniverseRect(2)); s != 1 {
		t.Fatalf("universe selectivity = %v, want 1", s)
	}
}
