package core

import (
	"errors"
	"sync"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// Shared fuzz fixtures: one index per family, built once (index construction
// dominates fuzz throughput otherwise).
var (
	fuzzOnce sync.Once
	fuzzDS   *dataset.Dataset
	fuzzLow  *ORPKW
	fuzzHiDS *dataset.Dataset
	fuzzHigh *ORPKWHigh
	fuzzMK   *MultiK
)

func fuzzFixtures(t testing.TB) {
	fuzzOnce.Do(func() {
		fuzzDS = workload.Gen(workload.Config{Seed: 40, Objects: 1200, Dim: 2, Vocab: 12, DocLen: 4})
		fuzzHiDS = workload.Gen(workload.Config{Seed: 41, Objects: 800, Dim: 3, Vocab: 12, DocLen: 4})
		var err error
		if fuzzLow, err = BuildORPKW(fuzzDS, 2); err != nil {
			t.Fatal(err)
		}
		if fuzzHigh, err = BuildORPKWHigh(fuzzHiDS, 2); err != nil {
			t.Fatal(err)
		}
		if fuzzMK, err = BuildMultiK(fuzzDS, 3); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzExecPolicy drives random (family, rectangle, keywords, budget, cap)
// tuples through the policy machinery and asserts the resilience invariants:
//
//   - a policy-stopped answer is a prefix of the unbounded answer;
//   - the typed error matches the stats flags (ErrBudget <=> NodeBudgetHit);
//   - MaxResults truncates silently and never yields more than the cap;
//   - an unconstrained rerun of the same query is untouched by the policy
//     machinery having run before it (no pooled-context contamination).
func FuzzExecPolicy(f *testing.F) {
	f.Add(uint8(0), uint16(3), uint16(0), int64(0), int64(1), int64(0), int64(1))
	f.Add(uint8(1), uint16(9), uint16(5), int64(200), int64(0), int64(-2), int64(3))
	f.Add(uint8(2), uint16(50), uint16(2), int64(1), int64(4), int64(5), int64(6))
	f.Add(uint8(0), uint16(1000), uint16(7), int64(64), int64(0), int64(0), int64(0))
	f.Fuzz(func(t *testing.T, family uint8, budget16 uint16, cap16 uint16, ax, ay, bx, by int64) {
		fuzzFixtures(t)
		budget := int64(budget16)
		maxRes := int(cap16 % 64)
		// Rectangle from the fuzzed corner coordinates, scaled into the unit
		// square the generators populate, normalized so lo <= hi.
		coord := func(v int64) float64 { return float64(((v%40)+40)%40) / 40.0 }
		lo := []float64{coord(ax), coord(ay)}
		hi := []float64{coord(bx), coord(by)}
		for j := range lo {
			if lo[j] > hi[j] {
				lo[j], hi[j] = hi[j], lo[j]
			}
		}
		q := geom.NewRect(lo, hi)
		ws := []dataset.Keyword{1, 2}

		type collector func(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error)
		var collect collector
		switch family % 3 {
		case 0:
			collect = fuzzLow.Collect
		case 1:
			q3 := geom.NewRect(append(lo, 0), append(hi, 1))
			collect = func(_ *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
				return fuzzHigh.Collect(q3, ws, opts)
			}
		case 2:
			collect = func(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
				return fuzzMK.Collect(q, ws, opts)
			}
		}

		full, _, err := collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatalf("unbounded query failed: %v", err)
		}

		pol := ExecPolicy{NodeBudget: budget, MaxResults: maxRes}
		got, st, err := collect(q, ws, QueryOpts{Policy: pol})

		if err != nil {
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("policy %+v: unexpected error %v", pol, err)
			}
			if !st.NodeBudgetHit || !st.Truncated {
				t.Fatalf("ErrBudget without matching flags: %+v", st)
			}
		} else if st.NodeBudgetHit {
			t.Fatalf("NodeBudgetHit set without ErrBudget")
		}
		if maxRes > 0 && len(got) > maxRes {
			t.Fatalf("MaxResults=%d but %d results returned", maxRes, len(got))
		}
		if len(got) > len(full) {
			t.Fatalf("policy run returned %d results, unbounded returned %d", len(got), len(full))
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("result %d: policy run %d, unbounded %d: not a prefix", i, got[i], full[i])
			}
		}

		// The policy machinery leaves no residue in the pooled contexts.
		again, ast, err := collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatalf("rerun failed: %v", err)
		}
		if ast.Truncated || ast.NodeBudgetHit || ast.DeadlineHit || ast.Canceled {
			t.Fatalf("rerun stats contaminated: %+v", ast)
		}
		if len(again) != len(full) {
			t.Fatalf("rerun returned %d results, want %d", len(again), len(full))
		}
	})
}
