package core

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
	"kwsc/internal/workload"
)

// famSeries builds the full series names for one family label.
func famSeries(fam string) (queries, ops string) {
	return `kwsc_queries_total{family="` + fam + `"}`, `kwsc_query_ops{family="` + fam + `"}`
}

func errSeries(fam, code string) string {
	return `kwsc_query_errors_total{family="` + fam + `",code="` + code + `"}`
}

// registryDelta runs fn and returns the change of every counter and the
// count/sum change of every histogram in the default registry.
func registryDelta(fn func()) (counters map[string]int64, histCount map[string]int64, histSum map[string]int64) {
	before := obs.Default().Snapshot()
	fn()
	after := obs.Default().Snapshot()
	counters = make(map[string]int64)
	for name, v := range after.Counters {
		if d := v - before.Counters[name]; d != 0 {
			counters[name] = d
		}
	}
	histCount = make(map[string]int64)
	histSum = make(map[string]int64)
	for name, h := range after.Histograms {
		if d := h.Count - before.Histograms[name].Count; d != 0 {
			histCount[name] = d
		}
		if d := h.Sum - before.Histograms[name].Sum; d != 0 {
			histSum[name] = d
		}
	}
	return
}

// The central cross-family invariant: one user-visible query increments
// exactly one family's queries_total, and the ops histogram absorbs exactly
// the Ops figure the query's own QueryStats reported — composites (RRKW over
// ORPKW, NN probes, KSI's inner ORP-KW, MultiK's per-arity indexes) must not
// double-count through their inner structures.
func TestRegistryCountsEachFamilyOnce(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 61, Objects: 1 << 10, Dim: 2, Vocab: 32, DocLen: 4})
	q := geom.UniverseRect(2)
	ws := []dataset.Keyword{1, 2}

	orp, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	srp, err := BuildSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	ksi, err := BuildKSIFromDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := BuildMultiK(ds, 3)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		fam string
		run func() int64 // returns QueryStats.Ops
	}{
		{"orpkw", func() int64 {
			_, st, err := orp.Collect(q, ws, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			return st.Ops
		}},
		{"linf_nn", func() int64 {
			_, ns, err := nn.Query(geom.Point{0.5, 0.5}, 3, ws, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			return ns.Ops
		}},
		{"srpkw", func() int64 {
			_, st, err := srp.Collect(geom.NewSphere(geom.Point{0.5, 0.5}, 0.3), ws, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			return st.Ops
		}},
		{"ksi", func() int64 {
			_, st, err := ksi.Report(ws, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			return st.Ops
		}},
		{"multik", func() int64 {
			_, st, err := mk.Collect(q, []dataset.Keyword{1, 2, 3}, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			return st.Ops
		}},
	}
	for _, c := range cases {
		var ops int64
		counters, histCount, histSum := registryDelta(func() { ops = c.run() })
		qSeries, opsSeries := famSeries(c.fam)
		if counters[qSeries] != 1 {
			t.Errorf("[%s] queries_total delta = %d, want 1 (all deltas: %v)",
				c.fam, counters[qSeries], counters)
		}
		// No other family's query counter may move: counted exactly once.
		for name, d := range counters {
			if strings.HasPrefix(name, "kwsc_queries_total{") && name != qSeries {
				t.Errorf("[%s] foreign counter %s moved by %d", c.fam, name, d)
			}
		}
		if histCount[opsSeries] != 1 || histSum[opsSeries] != ops {
			t.Errorf("[%s] ops histogram delta count=%d sum=%d, want count=1 sum=%d (QueryStats.Ops)",
				c.fam, histCount[opsSeries], histSum[opsSeries], ops)
		}
	}
}

// Error counters must agree with the typed error the caller saw, including
// a panic converted at the entry point.
func TestErrorCountersMatchTypedErrors(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 62, Objects: 1 << 10, Dim: 2, Vocab: 32, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws := []dataset.Keyword{1, 2}

	counters, _, _ := registryDelta(func() {
		_, _, err := ix.Collect(nil, ws, QueryOpts{})
		if !errors.Is(err, ErrInvalidQuery) {
			t.Fatalf("want ErrInvalidQuery, got %v", err)
		}
	})
	if counters[errSeries("orpkw", "invalid")] != 1 {
		t.Errorf("invalid-query counter delta = %d, want 1", counters[errSeries("orpkw", "invalid")])
	}

	counters, _, _ = registryDelta(func() {
		_, _, err := ix.Collect(geom.UniverseRect(2), ws,
			QueryOpts{Policy: ExecPolicy{NodeBudget: 1}})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("want ErrBudget, got %v", err)
		}
	})
	if counters[errSeries("orpkw", "budget")] != 1 {
		t.Errorf("budget counter delta = %d, want 1", counters[errSeries("orpkw", "budget")])
	}

	ArmFailpoint(FPFrameworkVisit, func() { panic("instr test") })
	counters, _, _ = registryDelta(func() {
		_, _, err := ix.Collect(geom.UniverseRect(2), ws, QueryOpts{})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("want *PanicError, got %v", err)
		}
	})
	DisarmAllFailpoints()
	if counters[errSeries("orpkw", "panic")] != 1 {
		t.Errorf("panic counter delta = %d, want 1", counters[errSeries("orpkw", "panic")])
	}
	// The failed queries still count as queries.
	qSeries, _ := famSeries("orpkw")
	if counters[qSeries] != 1 {
		t.Errorf("queries_total delta = %d during panic, want 1", counters[qSeries])
	}
}

// Builds are counted once per user-visible constructor; the inner structures
// a composite builds must not inflate any family's build counter.
func TestBuildCountersCountedOnce(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 63, Objects: 1 << 9, Dim: 2, Vocab: 16, DocLen: 3})
	counters, histCount, _ := registryDelta(func() {
		if _, err := BuildLinfNN(ds, 2); err != nil { // builds an inner ORPKW
			t.Fatal(err)
		}
	})
	if counters[`kwsc_builds_total{family="linf_nn"}`] != 1 {
		t.Errorf("linf_nn builds delta = %d, want 1", counters[`kwsc_builds_total{family="linf_nn"}`])
	}
	if counters[`kwsc_builds_total{family="orpkw"}`] != 0 {
		t.Errorf("inner orpkw build leaked into builds_total (delta %d)",
			counters[`kwsc_builds_total{family="orpkw"}`])
	}
	if histCount[`kwsc_build_ns{family="linf_nn"}`] != 1 {
		t.Error("build latency histogram must record the build")
	}
}

// WithoutObs must make an index invisible: no counters move, no spans fire.
func TestWithoutObsSilencesIndex(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 64, Objects: 1 << 9, Dim: 2, Vocab: 16, DocLen: 3})
	var ix *ORPKW
	counters, _, _ := registryDelta(func() {
		var err error
		ix, err = BuildORPKW(ds, 2, WithoutObs())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2}, QueryOpts{}); err != nil {
			t.Fatal(err)
		}
	})
	for name, d := range counters {
		if strings.HasPrefix(name, "kwsc_queries_total") || strings.HasPrefix(name, "kwsc_builds_total") {
			t.Errorf("WithoutObs index moved %s by %d", name, d)
		}
	}
}

// spanTracer records spans for assertions.
type spanTracer struct {
	mu     sync.Mutex
	begins []string
	spans  []obs.Span
}

func (s *spanTracer) Begin(family, op string) {
	s.mu.Lock()
	s.begins = append(s.begins, family+"."+op)
	s.mu.Unlock()
}

func (s *spanTracer) End(sp obs.Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

// A per-index tracer sees exactly the spans of that index, with the stats
// the caller got and the query echoed PanicError-style.
func TestPerIndexTracerSpans(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 65, Objects: 1 << 10, Dim: 2, Vocab: 32, DocLen: 4})
	tr := &spanTracer{}
	ix, err := BuildORPKW(ds, 2, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	q := workload.RandRect(rand.New(rand.NewSource(65)), 2, 0.5)
	ws := []dataset.Keyword{1, 2}
	ids, st, err := ix.Collect(q, ws, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.begins) != 1 || tr.begins[0] != "orpkw.CollectInto" {
		t.Fatalf("begins = %v, want [orpkw.CollectInto]", tr.begins)
	}
	if len(tr.spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(tr.spans))
	}
	sp := tr.spans[0]
	if sp.Family != "orpkw" || sp.Op != "CollectInto" || sp.K != 2 {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	if sp.Ops != st.Ops || sp.Out != len(ids) || sp.Outcome != obs.OutcomeOK {
		t.Fatalf("span stats disagree with QueryStats: %+v vs %+v", sp, st)
	}
	if !strings.Contains(sp.Query, "keywords=") {
		t.Fatalf("span must echo the query, got %q", sp.Query)
	}
}

// The planner's span is its decision trace: route plus the cost estimates.
func TestPlannerSpanCarriesRouteAndEstimates(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 66, Objects: 1 << 10, Dim: 2, Vocab: 32, DocLen: 4})
	tr := &spanTracer{}
	p, err := BuildPlanner(ds, 2, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	counters, _, _ := registryDelta(func() {
		if _, _, err := p.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2}); err != nil {
			t.Fatal(err)
		}
	})
	if len(tr.spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(tr.spans))
	}
	sp := tr.spans[0]
	if sp.Route == "" || len(sp.Estimates) != 3 {
		t.Fatalf("planner span must carry route + 3 estimates: %+v", sp)
	}
	routeTotal := int64(0)
	for name, d := range counters {
		if strings.HasPrefix(name, "kwsc_planner_route_total{") {
			routeTotal += d
		}
	}
	if routeTotal != 1 {
		t.Fatalf("route counters moved by %d, want exactly 1", routeTotal)
	}
	qSeries, _ := famSeries("planner")
	if counters[qSeries] != 1 {
		t.Fatalf("planner queries_total delta = %d, want 1", counters[qSeries])
	}
	// The framework route runs an untagged inner ORPKW: orpkw must not move.
	if counters[`kwsc_queries_total{family="orpkw"}`] != 0 {
		t.Fatal("planner's inner framework query leaked into orpkw counters")
	}
}

// Slow-log entries must reproduce the query (echo) and rank by ops.
func TestSlowLogCapturesExpensiveQueries(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 67, Objects: 1 << 11, Dim: 2, Vocab: 16, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	obs.EnableSlowLog(4, 1)
	defer obs.EnableSlowLog(0, 0)

	_, st, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	entries := obs.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("universe query must enter the slow log")
	}
	e := entries[0]
	if e.Family != "orpkw" || e.Op != "CollectInto" {
		t.Fatalf("slow entry identity wrong: %+v", e)
	}
	if e.Ops != st.Ops {
		t.Fatalf("slow entry ops = %d, want %d", e.Ops, st.Ops)
	}
	if !strings.Contains(e.Query, "region=") || !strings.Contains(e.Query, "keywords=[1 2]") {
		t.Fatalf("slow entry must echo the query for reproduction, got %q", e.Query)
	}
}

// Dynamic-index churn counters and fleet gauges stay coherent across
// inserts, deletes and queries.
func TestDynamicGaugesStayCoherent(t *testing.T) {
	counters, _, _ := registryDelta(func() {
		d, err := NewDynamicORPKW(2, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := d.Insert(dataset.Object{
				Point: geom.Point{float64(i), float64(i)},
				Doc:   []dataset.Keyword{1, 2},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := d.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2}); err != nil {
			t.Fatal(err)
		}
	})
	if counters["kwsc_dynamic_inserts_total"] != 20 {
		t.Errorf("inserts delta = %d, want 20", counters["kwsc_dynamic_inserts_total"])
	}
	if counters["kwsc_dynamic_carries_total"] == 0 {
		t.Error("20 inserts through a 4-slot buffer must carry at least once")
	}
	qSeries, _ := famSeries("dynamic")
	if counters[qSeries] != 1 {
		t.Errorf("dynamic queries_total delta = %d, want 1", counters[qSeries])
	}
	// Bucket scans are inner untagged ORPKW builds/queries: orpkw untouched.
	if counters[`kwsc_queries_total{family="orpkw"}`] != 0 {
		t.Error("dynamic bucket queries leaked into orpkw counters")
	}
}

// Batch runs feed the batch throughput counters, and every query of the
// batch still lands in the index family's own counters.
func TestBatchCounters(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 68, Objects: 1 << 10, Dim: 2, Vocab: 32, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]RectQuery, 6)
	for i := range queries {
		queries[i] = RectQuery{Rect: geom.UniverseRect(2), Keywords: []dataset.Keyword{1, 2}}
	}
	counters, _, _ := registryDelta(func() {
		for _, r := range ix.QueryBatch(queries, 2) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	})
	if counters["kwsc_batch_runs_total"] != 1 {
		t.Errorf("batch runs delta = %d, want 1", counters["kwsc_batch_runs_total"])
	}
	if counters["kwsc_batch_queries_total"] != 6 {
		t.Errorf("batch queries delta = %d, want 6", counters["kwsc_batch_queries_total"])
	}
	qSeries, _ := famSeries("orpkw")
	if counters[qSeries] != 6 {
		t.Errorf("orpkw queries_total delta = %d, want 6 (one per batch member)", counters[qSeries])
	}
}

// EnableMetrics(false) must freeze the registry without breaking queries.
func TestMetricsDisableFreezesRegistry(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 69, Objects: 1 << 9, Dim: 2, Vocab: 16, DocLen: 3})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetMetricsEnabled(false)
	defer obs.SetMetricsEnabled(true)
	counters, histCount, _ := registryDelta(func() {
		if _, _, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2}, QueryOpts{}); err != nil {
			t.Fatal(err)
		}
	})
	if len(counters) != 0 || len(histCount) != 0 {
		t.Fatalf("registry moved with metrics disabled: %v %v", counters, histCount)
	}
}
