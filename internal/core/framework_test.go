package core

import (
	"math"
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
	"kwsc/internal/workload"
)

func TestFrameworkRejectsBadConfig(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 10, Dim: 2, Vocab: 10, DocLen: 3})
	if _, err := BuildFramework(ds, FrameworkConfig{K: 1, Splitter: &spart.KD{Dim: 2}}); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	if _, err := BuildFramework(ds, FrameworkConfig{K: 2}); err == nil {
		t.Fatal("nil splitter must be rejected")
	}
}

func TestQueryValidation(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 2, Objects: 50, Dim: 2, Vocab: 20, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.UniverseRect(2)
	if _, _, err := ix.Collect(u, []dataset.Keyword{1}, QueryOpts{}); err == nil {
		t.Fatal("wrong arity must error")
	}
	if _, _, err := ix.Collect(u, []dataset.Keyword{1, 1}, QueryOpts{}); err == nil {
		t.Fatal("duplicate keywords must error")
	}
	if _, _, err := ix.Collect(u, []dataset.Keyword{1, 2, 3}, QueryOpts{}); err == nil {
		t.Fatal("over-arity must error")
	}
	if _, _, err := ix.Collect(geom.UniverseRect(3), []dataset.Keyword{1, 2}, QueryOpts{}); err == nil {
		t.Fatal("wrong query dimension must error")
	}
}

// The large/small threshold and the materialization rule (Section 3.2):
// verified structurally on the built index.
func TestLargeSmallInvariants(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 800, Dim: 2, Vocab: 40, DocLen: 5, ZipfS: 1.6})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Framework()
	k := float64(f.k)
	for ni := range f.nodes {
		n := &f.nodes[ni]
		if len(n.children) == 0 {
			continue
		}
		threshold := math.Pow(float64(n.nu), 1-1/k)
		// Count the active set of this node by walking its subtree.
		counts := map[dataset.Keyword]int64{}
		var walk func(int32)
		walk = func(u int32) {
			for _, id := range f.nodes[u].pivots {
				for _, w := range f.ds.Doc(id) {
					counts[w]++
				}
			}
			for _, c := range f.nodes[u].children {
				walk(c)
			}
		}
		walk(int32(ni))
		// Large keywords must meet the threshold; materialized lists must
		// hold exactly the active objects carrying a small keyword.
		for w, li := range n.large {
			if li < 0 || li >= n.l {
				t.Fatalf("node %d: large index %d out of range", ni, li)
			}
			if float64(counts[w]) < threshold {
				t.Fatalf("node %d: keyword %d classified large with count %d < threshold %.1f",
					ni, w, counts[w], threshold)
			}
		}
		for w, lst := range n.mat {
			if _, isLarge := n.large[w]; isLarge {
				t.Fatalf("node %d: keyword %d both large and materialized", ni, w)
			}
			if float64(counts[w]) >= threshold {
				t.Fatalf("node %d: keyword %d materialized with count %d >= threshold %.1f",
					ni, w, counts[w], threshold)
			}
			if int64(len(lst)) != counts[w] {
				t.Fatalf("node %d: materialized list of %d entries, active count %d",
					ni, len(lst), counts[w])
			}
		}
		// The large-keyword bound of Section 3.2: at most N_u^{1/k}.
		if float64(n.l) > math.Pow(float64(n.nu), 1/k)+1 {
			t.Fatalf("node %d: %d large keywords exceeds N_u^{1/k} = %.1f",
				ni, n.l, math.Pow(float64(n.nu), 1/k))
		}
	}
}

// The non-emptiness tensor is sound and complete: a bit is set iff some
// object in the child's subtree carries the whole keyword combination.
func TestTensorSoundness(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 4, Objects: 400, Dim: 2, Vocab: 12, DocLen: 4, ZipfS: 1.3})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Framework()
	for ni := range f.nodes {
		n := &f.nodes[ni]
		if len(n.children) == 0 || n.l < 2 {
			continue
		}
		// Invert the large map.
		byIdx := make([]dataset.Keyword, n.l)
		for w, li := range n.large {
			byIdx[li] = w
		}
		for ci, child := range n.children {
			sub := map[int32]bool{}
			var walk func(int32)
			walk = func(u int32) {
				for _, id := range f.nodes[u].pivots {
					sub[id] = true
				}
				for _, c := range f.nodes[u].children {
					walk(c)
				}
			}
			walk(child)
			for a := int32(0); a < n.l; a++ {
				for b := a + 1; b < n.l; b++ {
					want := false
					for id := range sub {
						if f.ds.Has(id, byIdx[a]) && f.ds.Has(id, byIdx[b]) {
							want = true
							break
						}
					}
					got := n.tensors[ci].Get(int(tensorIndex([]int32{a, b}, int(n.l))))
					if got != want {
						t.Fatalf("node %d child %d: tensor bit (%d,%d) = %v, want %v",
							ni, ci, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestQueryStatsConsistency(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 5, Objects: 600, Dim: 2, Vocab: 30, DocLen: 5})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(50))
	for i := 0; i < 30; i++ {
		q := workload.RandRect(rng, 2, 0.4)
		ws := workload.RandKeywords(rng, 30, 2)
		ids, st, err := ix.Collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if st.CoveredNodes+st.CrossingNodes != st.NodesVisited {
			t.Fatalf("covered+crossing != visited: %+v", st)
		}
		if st.Reported != len(ids) {
			t.Fatalf("Reported=%d but %d ids returned", st.Reported, len(ids))
		}
		if st.Ops < int64(st.NodesVisited) {
			t.Fatalf("Ops must count at least node visits: %+v", st)
		}
		if st.Truncated || st.BudgetHit {
			t.Fatalf("unlimited query cannot truncate: %+v", st)
		}
	}
}

func TestQueryLimit(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 6, Objects: 500, Dim: 2, Vocab: 8, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.UniverseRect(2)
	full, _, err := ix.Collect(u, []dataset.Keyword{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5 {
		t.Skip("workload produced too few matches for the limit test")
	}
	got, st, err := ix.Collect(u, []dataset.Keyword{0, 1}, QueryOpts{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !st.Truncated {
		t.Fatalf("limit=3: got %d results, truncated=%v", len(got), st.Truncated)
	}
	// Limit >= OUT reports everything without truncation.
	got, st, err = ix.Collect(u, []dataset.Keyword{0, 1}, QueryOpts{Limit: len(full)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(full) {
		t.Fatalf("limit=OUT: got %d, want %d", len(got), len(full))
	}
}

func TestQueryBudget(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 7, Objects: 2000, Dim: 2, Vocab: 8, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := geom.UniverseRect(2)
	_, st, err := ix.Collect(u, []dataset.Keyword{0, 1}, QueryOpts{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.BudgetHit {
		t.Fatalf("budget of 10 ops on a 2000-object query must trip: %+v", st)
	}
	if st.Ops > 64 {
		t.Fatalf("budget overshoot too large: %d ops", st.Ops)
	}
}

// No object is ever reported twice (the pivot-vs-materialized-list overlap
// discussed in the query algorithm).
func TestNoDuplicateReports(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 8, Objects: 700, Dim: 2, Vocab: 10, DocLen: 5, ZipfS: 1.1})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(80))
	for i := 0; i < 40; i++ {
		q := workload.RandRect(rng, 2, 0.8)
		ws := workload.RandKeywords(rng, 10, 2)
		seen := map[int32]int{}
		if _, err := ix.Query(q, ws, QueryOpts{}, func(id int32) { seen[id]++ }); err != nil {
			t.Fatal(err)
		}
		for id, c := range seen {
			if c > 1 {
				t.Fatalf("object %d reported %d times", id, c)
			}
		}
	}
}

// Space audit sanity: the framework's footprint grows roughly linearly in N
// for fixed parameters (Theorem 1's O(N) words).
func TestSpaceRoughlyLinear(t *testing.T) {
	words := func(n int) int64 {
		ds := workload.Gen(workload.Config{Seed: 9, Objects: n, Dim: 2, Vocab: 200, DocLen: 6})
		ix, err := BuildORPKW(ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		return ix.Space().TotalWords(64)
	}
	w1, w4 := words(1000), words(4000)
	ratio := float64(w4) / float64(w1)
	if ratio > 7 {
		t.Fatalf("space grew %0.1fx for 4x data; superlinear blow-up", ratio)
	}
}

func TestFrameworkAccessors(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 10, Objects: 300, Dim: 2, Vocab: 30, DocLen: 4})
	ix, err := BuildORPKW(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Framework()
	if f.K() != 3 || ix.K() != 3 {
		t.Fatal("K accessor wrong")
	}
	if f.Dataset() != ds {
		t.Fatal("Dataset accessor wrong")
	}
	if f.NumNodes() <= 1 {
		t.Fatal("tree did not split")
	}
	if f.Height() <= 0 {
		t.Fatal("height must be positive")
	}
	if f.MaxPivots() > 1 {
		t.Fatalf("rank-space kd pivots must be <= 1, got %d", f.MaxPivots())
	}
}

// CrossingCost: a vertical line through a 2D kd-tree framework has crossing
// sensitivity O(sqrt(N) * N^{1/2 - 1/k}) ~ O(N^{1-1/k}) (Lemma 10); sanity
// check the measured value against a generous constant.
func TestCrossingCostVerticalLine(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 11, Objects: 4096, Dim: 2, Vocab: 12, DocLen: 4, ZipfS: 1.05})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A zero-width rank rectangle behaves as a vertical line.
	n := float64(ds.N())
	rq := &geom.Rect{
		Lo: []float64{float64(ds.Len() / 2), math.Inf(-1)},
		Hi: []float64{float64(ds.Len() / 2), math.Inf(1)},
	}
	cost, err := ix.Framework().CrossingCost(rq, []dataset.Keyword{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	bound := 40 * math.Pow(n, 0.5)
	if cost > bound {
		t.Fatalf("crossing cost %.0f exceeds %.0f (N=%.0f)", cost, bound, n)
	}
}
