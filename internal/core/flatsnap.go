package core

import (
	"fmt"
	"math"

	"kwsc/internal/bitpack"
	"kwsc/internal/bits"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
)

// This file is the serialization boundary of the flat layout: ExportFlat
// turns a flattened Framework into plain columns (FlatArenas), and
// NewFrameworkFromFlat rebuilds a query-ready Framework from untrusted
// columns — e.g. ones aliasing a read-only KWCP2 mapping (internal/flatio).
// Only rectangle splitters (spart.KD, spart.Box) round-trip: their cells are
// 2*pdim float64 bounds. Willard2D cells are convex polygons built during the
// ham-sandwich recursion and have no fixed-width serialized form.

// Splitter kinds a FlatArenas image can carry.
const (
	FlatSplitKD  = 1 // spart.KD over PDim-dimensional points
	FlatSplitBox = 2 // spart.Box over PDim-dimensional points
)

// FlatArenas is the column image of a flattened Framework: every slice of
// flatLayout as a flat, fixed-width array, in BFS node order. Slices returned
// by ExportFlat alias the live index and must be treated as read-only;
// slices given to NewFrameworkFromFlat are aliased by the result and must
// stay immutable for the index's lifetime (they may point into a PROT_READ
// mapping).
type FlatArenas struct {
	SplitterKind int // FlatSplitKD or FlatSplitBox
	K            int // query keyword arity
	PDim         int // partitioning-coordinate dimensionality
	NumObjects   int // dataset size the ids index into

	// Node skeleton, BFS order (see flatLayout). CellBounds packs each cell
	// as Lo[0..PDim) then Hi[0..PDim).
	CellBounds []float64
	Nu         []int64
	L          []int32
	ChildFirst []int32
	ChildCount []int32

	// Pivot sets: PivotIDs[PivotStart[u]:PivotStart[u+1]].
	PivotStart []int32
	PivotIDs   []int32

	// Large keywords, sorted per node, parallel to the tensor axis indexes.
	LargeStart []int32
	LargeKeys  []dataset.Keyword
	LargeIdx   []int32

	// Materialized small-keyword lists: handles into the bitpack arena
	// (MatWords payload + MatBlocks metadata).
	MatStart  []int32
	MatKeys   []dataset.Keyword
	MatLists  []bitpack.List
	MatBlocks []bitpack.Block
	MatWords  []uint64

	// Non-emptiness tensors: node u's child ci occupies TensorStride[u]
	// words at TensorOff[u] + ci*TensorStride[u].
	TensorOff    []int64
	TensorStride []int64
	TensorWords  []uint64

	// Packed partitioning coordinates, NumObjects x PDim row-major.
	Coords []float64
}

// ExportFlat exposes the flat layout as serializable columns. The framework
// must already be flat (build with WithFlatLayout or call Flatten), and its
// splitter must be spart.KD or spart.Box. The returned slices alias the
// index — callers must treat them as read-only.
func (f *Framework) ExportFlat() (*FlatArenas, error) {
	if f.flat == nil {
		return nil, fmt.Errorf("core: ExportFlat requires the flat layout (call Flatten first)")
	}
	var kind int
	switch f.split.(type) {
	case *spart.KD:
		kind = FlatSplitKD
	case *spart.Box:
		kind = FlatSplitBox
	default:
		return nil, fmt.Errorf("core: splitter %T has no serializable cells (KD and Box only)", f.split)
	}
	fl := f.flat
	nn := len(fl.cells)
	a := &FlatArenas{
		SplitterKind: kind,
		K:            f.k,
		PDim:         fl.pdim,
		NumObjects:   f.ds.Len(),

		Nu:         fl.nu,
		L:          fl.l,
		ChildFirst: fl.childFirst,
		ChildCount: fl.childCount,
		PivotStart: fl.pivotStart,
		PivotIDs:   fl.pivotIDs,
		LargeStart: fl.largeStart,
		LargeKeys:  fl.largeKeys,
		LargeIdx:   fl.largeIdx,
		MatStart:   fl.matStart,
		MatKeys:    fl.matKeys,
		MatLists:   fl.matLists,

		TensorOff:    fl.tensorOff,
		TensorStride: fl.tensorStride,
		TensorWords:  fl.tensorArena.Raw(),
		Coords:       fl.coords,
	}
	a.MatWords, a.MatBlocks = fl.matArena.Raw()
	a.CellBounds = make([]float64, 0, 2*fl.pdim*nn)
	for u, c := range fl.cells {
		r, ok := c.(*geom.Rect)
		if !ok {
			return nil, fmt.Errorf("core: node %d cell is %T, not a rectangle", u, c)
		}
		a.CellBounds = append(a.CellBounds, r.Lo...)
		a.CellBounds = append(a.CellBounds, r.Hi...)
	}
	return a, nil
}

// NewFrameworkFromFlat rebuilds a query-ready Framework from exported
// columns. The columns are untrusted (they typically come off disk): every
// structural invariant the query path relies on is checked up front, so a
// malformed image yields an error here rather than a panic mid-query.
// Checksums are the caller's concern (flatio verifies pages before this
// runs); this validation is about shape, not integrity.
//
// The arenas are aliased, not copied — see FlatArenas.
func NewFrameworkFromFlat(ds *dataset.Dataset, a *FlatArenas) (*Framework, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	if a.K < 2 || a.K > 64 {
		return nil, fmt.Errorf("core: flat image arity %d outside [2, 64]", a.K)
	}
	if a.NumObjects != ds.Len() {
		return nil, fmt.Errorf("core: flat image indexes %d objects, dataset has %d", a.NumObjects, ds.Len())
	}
	if a.PDim < 1 || a.PDim > 64 {
		return nil, fmt.Errorf("core: flat image point dimension %d outside [1, 64]", a.PDim)
	}
	var split spart.Splitter
	switch a.SplitterKind {
	case FlatSplitKD:
		split = &spart.KD{Dim: a.PDim}
	case FlatSplitBox:
		split = &spart.Box{Dim: a.PDim}
	default:
		return nil, fmt.Errorf("core: flat image splitter kind %d unknown", a.SplitterKind)
	}

	nn := len(a.Nu)
	if nn < 1 || nn > math.MaxInt32 {
		return nil, fmt.Errorf("core: flat image has %d nodes", nn)
	}
	n := a.NumObjects
	if len(a.L) != nn || len(a.ChildFirst) != nn || len(a.ChildCount) != nn ||
		len(a.TensorOff) != nn || len(a.TensorStride) != nn {
		return nil, fmt.Errorf("core: flat image skeleton columns disagree on node count")
	}
	if len(a.CellBounds) != 2*a.PDim*nn {
		return nil, fmt.Errorf("core: flat image carries %d cell bounds for %d nodes of dimension %d",
			len(a.CellBounds), nn, a.PDim)
	}
	if len(a.Coords) != n*a.PDim {
		return nil, fmt.Errorf("core: flat image carries %d coordinates for %d objects of dimension %d",
			len(a.Coords), n, a.PDim)
	}
	if err := checkStarts("pivot", a.PivotStart, nn, len(a.PivotIDs)); err != nil {
		return nil, err
	}
	if err := checkStarts("large-keyword", a.LargeStart, nn, len(a.LargeKeys)); err != nil {
		return nil, err
	}
	if err := checkStarts("materialized-list", a.MatStart, nn, len(a.MatKeys)); err != nil {
		return nil, err
	}
	if len(a.LargeIdx) != len(a.LargeKeys) {
		return nil, fmt.Errorf("core: flat image has %d large indexes for %d large keys", len(a.LargeIdx), len(a.LargeKeys))
	}
	if len(a.MatLists) != len(a.MatKeys) {
		return nil, fmt.Errorf("core: flat image has %d list handles for %d materialized keys", len(a.MatLists), len(a.MatKeys))
	}

	// BFS layout invariant: dequeue order assigns each node's children the
	// next contiguous id block, so a single cursor must reproduce ChildFirst
	// exactly and land on the node count. This guarantees the "tree" is a
	// tree (acyclic, every node reachable exactly once from the root), which
	// the recursive traversals rely on to terminate.
	next := 1
	for u := 0; u < nn; u++ {
		if a.Nu[u] < 0 {
			return nil, fmt.Errorf("core: node %d has negative weight", u)
		}
		cc := int(a.ChildCount[u])
		if cc < 0 || int(a.ChildFirst[u]) != next {
			return nil, fmt.Errorf("core: node %d breaks the BFS child layout", u)
		}
		next += cc
		if next > nn {
			return nil, fmt.Errorf("core: node %d claims children past the node count", u)
		}
	}
	if next != nn {
		return nil, fmt.Errorf("core: flat image has %d nodes but the BFS layout covers %d", nn, next)
	}

	for _, id := range a.PivotIDs {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("core: pivot id %d outside [0, %d)", id, n)
		}
	}
	for j := 0; j < 2*a.PDim*nn; j += 2 * a.PDim {
		for d := 0; d < a.PDim; d++ {
			lo, hi := a.CellBounds[j+d], a.CellBounds[j+a.PDim+d]
			if !(lo <= hi) { // also rejects NaN
				return nil, fmt.Errorf("core: node %d cell is empty or NaN on dimension %d", j/(2*a.PDim), d)
			}
		}
	}

	matArena := bitpack.FromRaw(a.MatWords, a.MatBlocks)
	for u := 0; u < nn; u++ {
		ls, le := a.LargeStart[u], a.LargeStart[u+1]
		if int(a.L[u]) != int(le-ls) {
			return nil, fmt.Errorf("core: node %d claims %d large keywords, carries %d", u, a.L[u], le-ls)
		}
		for i := ls; i < le; i++ {
			if i > ls && a.LargeKeys[i] <= a.LargeKeys[i-1] {
				return nil, fmt.Errorf("core: node %d large keywords not strictly increasing", u)
			}
			if a.LargeIdx[i] < 0 || a.LargeIdx[i] >= a.L[u] {
				return nil, fmt.Errorf("core: node %d large index %d outside [0, %d)", u, a.LargeIdx[i], a.L[u])
			}
		}
		ms, me := a.MatStart[u], a.MatStart[u+1]
		for i := ms; i < me; i++ {
			if i > ms && a.MatKeys[i] <= a.MatKeys[i-1] {
				return nil, fmt.Errorf("core: node %d materialized keywords not strictly increasing", u)
			}
			l := a.MatLists[i]
			if err := matArena.Validate(l); err != nil {
				return nil, fmt.Errorf("core: node %d list %d: %w", u, i, err)
			}
			for _, b := range matArena.Blocks(l) {
				if b.First < 0 || int(b.Max) >= n || b.First > b.Max {
					return nil, fmt.Errorf("core: node %d materialized ids outside [0, %d)", u, n)
				}
			}
		}

		// Tensor geometry: internal nodes carry one stride-sized bit array
		// per child; leaves carry nothing. The stride must be exactly
		// ceil(L^k / 64) — tensorGet computes bit addresses from it.
		off, stride, cc := a.TensorOff[u], a.TensorStride[u], int64(a.ChildCount[u])
		if cc == 0 {
			if off != 0 || stride != 0 {
				return nil, fmt.Errorf("core: leaf node %d carries a tensor", u)
			}
			continue
		}
		want, ok := tensorWordsChecked(int64(a.L[u]), a.K)
		if !ok {
			return nil, fmt.Errorf("core: node %d tensor exceeds the sanity bound", u)
		}
		if stride != want {
			return nil, fmt.Errorf("core: node %d tensor stride %d, want %d", u, stride, want)
		}
		if off < 0 || off > int64(len(a.TensorWords)) {
			return nil, fmt.Errorf("core: node %d tensor offset %d outside the arena", u, off)
		}
		if stride > 0 && cc > (int64(len(a.TensorWords))-off)/stride {
			return nil, fmt.Errorf("core: node %d tensors overrun the arena", u)
		}
	}

	fl := &flatLayout{
		cells:        make([]spart.Cell, nn),
		nu:           a.Nu,
		l:            a.L,
		childFirst:   a.ChildFirst,
		childCount:   a.ChildCount,
		pivotStart:   a.PivotStart,
		pivotIDs:     a.PivotIDs,
		largeStart:   a.LargeStart,
		largeKeys:    a.LargeKeys,
		largeIdx:     a.LargeIdx,
		matStart:     a.MatStart,
		matKeys:      a.MatKeys,
		matLists:     a.MatLists,
		matArena:     matArena,
		tensorOff:    a.TensorOff,
		tensorStride: a.TensorStride,
		tensorArena:  bits.ArenaFromWords(a.TensorWords),
		coords:       a.Coords,
		pdim:         a.PDim,
	}
	for u := 0; u < nn; u++ {
		fl.cells[u] = &geom.Rect{
			Lo: a.CellBounds[2*a.PDim*u : 2*a.PDim*u+a.PDim],
			Hi: a.CellBounds[2*a.PDim*u+a.PDim : 2*a.PDim*(u+1)],
		}
	}
	f := &Framework{ds: ds, k: a.K, split: split, flat: fl, leafSize: 8}
	f.space.DocHashWords = ds.DocSpaceWords()
	f.accountSpaceFlat()
	return f, nil
}

// checkStarts validates one prefix-offset column: nn+1 entries running
// monotonically from 0 to the payload length.
func checkStarts(what string, starts []int32, nn, payload int) error {
	if len(starts) != nn+1 {
		return fmt.Errorf("core: flat image %s offsets have %d entries for %d nodes", what, len(starts), nn)
	}
	if starts[0] != 0 || int(starts[nn]) != payload {
		return fmt.Errorf("core: flat image %s offsets span [%d, %d], payload is %d", what, starts[0], starts[nn], payload)
	}
	for i := 0; i < nn; i++ {
		if starts[i] > starts[i+1] {
			return fmt.Errorf("core: flat image %s offsets decrease at node %d", what, i)
		}
	}
	return nil
}

// tensorWordsChecked is tensorSize in word units with the panic turned into
// an ok flag — flat images are untrusted, so an absurd L must not crash.
func tensorWordsChecked(L int64, k int) (int64, bool) {
	if L < 0 {
		return 0, false
	}
	s := int64(1)
	for i := 0; i < k; i++ {
		s *= L
		if s > 1<<40 {
			return 0, false
		}
	}
	return (s + 63) / 64, true
}

// NewORPKWFromParts assembles an ORPKW around a reconstructed framework and
// rank space — the open path for paged flat images (internal/flatio). The
// framework must have been built (or rebuilt) over ds's rank-space points.
func NewORPKWFromParts(ds *dataset.Dataset, rs *dataset.RankSpace, fw *Framework, opts ...BuildOption) (*ORPKW, error) {
	o := resolveOpts(opts)
	if fw == nil || rs == nil {
		return nil, fmt.Errorf("core: ORPKW parts incomplete")
	}
	if fw.Dataset() != ds {
		return nil, fmt.Errorf("core: framework was built over a different dataset")
	}
	if rs.Dim() != ds.Dim() || fw.PointDim() != ds.Dim() {
		return nil, fmt.Errorf("core: rank space dim %d, framework dim %d, dataset dim %d disagree",
			rs.Dim(), fw.PointDim(), ds.Dim())
	}
	ix := &ORPKW{ds: ds, rs: rs, fw: fw, fam: o.famFor(famORPKW), tracer: o.Tracer}
	ix.fw.space.AuxWords += rs.SpaceWords()
	return ix, nil
}

// NewSPKWFromParts assembles an SPKW around a reconstructed framework — the
// open path for paged flat images (internal/flatio).
func NewSPKWFromParts(ds *dataset.Dataset, fw *Framework, opts ...BuildOption) (*SPKW, error) {
	o := resolveOpts(opts)
	if fw == nil {
		return nil, fmt.Errorf("core: SPKW parts incomplete")
	}
	if fw.Dataset() != ds {
		return nil, fmt.Errorf("core: framework was built over a different dataset")
	}
	return &SPKW{ds: ds, fw: fw, fam: o.famFor(famLCKW), tracer: o.Tracer}, nil
}
