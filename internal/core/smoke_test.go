package core

import (
	"math/rand"
	"sort"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func equalIDs(t *testing.T, got, want []int32, label string) {
	t.Helper()
	g, w := sortedIDs(got), sortedIDs(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d results, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: result %d: got id %d, want %d", label, i, g[i], w[i])
		}
	}
}

func TestSmokeORPKW(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 500, Dim: 2, Vocab: 60, DocLen: 5})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 50; q++ {
		rect := workload.RandRect(rng, 2, 0.3)
		kws := workload.RandKeywords(rng, 60, 2)
		got, _, err := ix.Collect(rect, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(rect, kws), "orpkw")
	}
}

func TestSmokeSPKW(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 2, Objects: 500, Dim: 2, Vocab: 60, DocLen: 5})
	ix, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 50; q++ {
		hs := workload.RandHalfspaces(rng, 2, 2, 0.6)
		kws := workload.RandKeywords(rng, 60, 2)
		got, _, err := ix.CollectConstraints(hs, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(geom.NewPolyhedron(hs...), kws), "spkw")
	}
}

func TestSmokeORPKWHigh(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 400, Dim: 3, Vocab: 50, DocLen: 5})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 50; q++ {
		rect := workload.RandRect(rng, 3, 0.5)
		kws := workload.RandKeywords(rng, 50, 2)
		got, _, err := ix.Collect(rect, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(rect, kws), "orpkw-high")
	}
}

func TestSmokeSRPKW(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 4, Objects: 400, Dim: 2, Vocab: 50, DocLen: 5})
	ix, err := BuildSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for q := 0; q < 50; q++ {
		s := geom.NewSphere(geom.Point{rng.Float64(), rng.Float64()}, 0.05+rng.Float64()*0.3)
		kws := workload.RandKeywords(rng, 50, 2)
		got, _, err := ix.Collect(s, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(s, kws), "srpkw")
	}
}

func TestSmokeLinfNN(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 5, Objects: 300, Dim: 2, Vocab: 30, DocLen: 5})
	ix, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	for q := 0; q < 25; q++ {
		qp := geom.Point{rng.Float64(), rng.Float64()}
		kws := workload.RandKeywords(rng, 30, 2)
		tt := 1 + rng.Intn(8)
		res, _, err := ix.Query(qp, tt, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth.
		match := ds.Filter(geom.FullSpace{}, kws)
		sort.Slice(match, func(a, b int) bool {
			da, db := qp.LInf(ds.Point(match[a])), qp.LInf(ds.Point(match[b]))
			if da != db {
				return da < db
			}
			return match[a] < match[b]
		})
		wantLen := tt
		if len(match) < tt {
			wantLen = len(match)
		}
		if len(res) != wantLen {
			t.Fatalf("linf-nn: got %d results, want %d", len(res), wantLen)
		}
		for i, r := range res {
			wd := qp.LInf(ds.Point(match[i]))
			if r.Dist != wd {
				t.Fatalf("linf-nn: rank %d distance %v, want %v", i, r.Dist, wd)
			}
		}
	}
}

func TestSmokeL2NN(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 6, Objects: 300, Dim: 2, Vocab: 30, DocLen: 5, Points: "grid", GridSide: 1 << 12})
	ix, err := BuildL2NN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for q := 0; q < 20; q++ {
		qp := geom.Point{float64(rng.Int63n(1 << 12)), float64(rng.Int63n(1 << 12))}
		kws := workload.RandKeywords(rng, 30, 2)
		tt := 1 + rng.Intn(6)
		res, _, err := ix.Query(qp, tt, kws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		match := ds.Filter(geom.FullSpace{}, kws)
		sort.Slice(match, func(a, b int) bool {
			da, db := qp.L2Sq(ds.Point(match[a])), qp.L2Sq(ds.Point(match[b]))
			if da != db {
				return da < db
			}
			return match[a] < match[b]
		})
		wantLen := tt
		if len(match) < tt {
			wantLen = len(match)
		}
		if len(res) != wantLen {
			t.Fatalf("l2-nn: got %d results, want %d", len(res), wantLen)
		}
		for i, r := range res {
			wd := qp.L2(ds.Point(match[i]))
			if r.Dist != wd {
				t.Fatalf("l2-nn: rank %d distance %v, want %v (query %d)", i, r.Dist, wd, q)
			}
		}
	}
}

func TestSmokeRRKW(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, d := range []int{1, 2} {
		rects := make([]RectObject, 300)
		for i := range rects {
			lo := make([]float64, d)
			hi := make([]float64, d)
			for j := 0; j < d; j++ {
				a, b := rng.Float64(), rng.Float64()*0.2
				lo[j], hi[j] = a, a+b
			}
			doc := make([]dataset.Keyword, 1+rng.Intn(5))
			for j := range doc {
				doc[j] = dataset.Keyword(rng.Intn(40))
			}
			rects[i] = RectObject{Rect: &geom.Rect{Lo: lo, Hi: hi}, Doc: doc}
		}
		ix, err := BuildRRKW(rects, 2)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 30; q++ {
			qr := workload.RandRect(rng, d, 0.3)
			kws := workload.RandKeywords(rng, 40, 2)
			got, _, err := ix.Collect(qr, kws, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			var want []int32
			for i, r := range rects {
				if !ix.Dataset().HasAll(int32(i), kws) {
					continue
				}
				if r.Rect.IntersectsRect(qr.Lo, qr.Hi) {
					want = append(want, int32(i))
				}
			}
			equalIDs(t, got, want, "rrkw")
		}
	}
}

func TestSmokeKSI(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sets := make([][]int64, 6)
	for i := range sets {
		n := 20 + rng.Intn(100)
		for j := 0; j < n; j++ {
			sets[i] = append(sets[i], int64(rng.Intn(200)))
		}
	}
	ix, err := BuildKSI(sets, 2)
	if err != nil {
		t.Fatal(err)
	}
	member := func(s []int64, e int64) bool {
		for _, x := range s {
			if x == e {
				return true
			}
		}
		return false
	}
	for a := 0; a < len(sets); a++ {
		for b := a + 1; b < len(sets); b++ {
			got, _, err := ix.Report([]dataset.Keyword{dataset.Keyword(a), dataset.Keyword(b)}, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			seen := map[int64]bool{}
			for _, e := range sets[a] {
				if !seen[e] && member(sets[b], e) {
					seen[e] = true
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("ksi %d&%d: got %d, want %d", a, b, len(got), want)
			}
			empty, _, err := ix.Empty([]dataset.Keyword{dataset.Keyword(a), dataset.Keyword(b)})
			if err != nil {
				t.Fatal(err)
			}
			if empty != (want == 0) {
				t.Fatalf("ksi emptiness %d&%d: got %v, want %v", a, b, empty, want == 0)
			}
		}
	}
}
