package core

import (
	"fmt"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
)

// ORPKW is the orthogonal-range-reporting-with-keywords index of Theorem 1:
// the kd-tree put through the transformation framework, operating in rank
// space (Step 4, Section 3.4). For d <= 2 it provides the paper's
// O(N)-space, O(N^{1-1/k} (1 + OUT^{1/k}))-query guarantee; for d >= 3 the
// same construction still answers correctly but its crossing sensitivity
// degrades as noted in Section 3.5 — use ORPKWHigh (Theorem 2) there.
type ORPKW struct {
	ds *dataset.Dataset
	rs *dataset.RankSpace
	fw *Framework
}

// BuildORPKW constructs the index for queries carrying exactly k keywords.
func BuildORPKW(ds *dataset.Dataset, k int) (*ORPKW, error) {
	rs := dataset.NewRankSpace(ds)
	pts := make([]geom.Point, ds.Len())
	for i := range pts {
		pts[i] = rs.RankPoint(int32(i))
	}
	fw, err := BuildFramework(ds, FrameworkConfig{
		K:        k,
		Splitter: &spart.KD{Dim: ds.Dim()},
		Points:   pts,
	})
	if err != nil {
		return nil, err
	}
	ix := &ORPKW{ds: ds, rs: rs, fw: fw}
	ix.fw.space.AuxWords += rs.SpaceWords()
	return ix, nil
}

// Query reports every object in q whose document contains all keywords,
// converting q to rank space in O(log N) first.
func (ix *ORPKW) Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (QueryStats, error) {
	if q.Dim() != ix.ds.Dim() {
		return QueryStats{}, fmt.Errorf("core: query rectangle has dimension %d, index has %d", q.Dim(), ix.ds.Dim())
	}
	rq, ok := ix.rs.ToRankRect(q)
	if !ok {
		// The rectangle misses every coordinate on some dimension.
		if err := dataset.ValidateKeywords(ws); err != nil {
			return QueryStats{}, err
		}
		return QueryStats{}, nil
	}
	return ix.fw.Query(rq, ws, opts, report)
}

// Collect is Query returning a slice.
func (ix *ORPKW) Collect(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	var out []int32
	st, err := ix.Query(q, ws, opts, func(id int32) { out = append(out, id) })
	return out, st, err
}

// Framework exposes the underlying transformed index (for instrumentation).
func (ix *ORPKW) Framework() *Framework { return ix.fw }

// RankSpace exposes the rank conversion (for instrumentation and the NN
// searches of Corollary 4, which binary-search over rank-space rectangles).
func (ix *ORPKW) RankSpace() *dataset.RankSpace { return ix.rs }

// Space returns the analytic space audit.
func (ix *ORPKW) Space() SpaceBreakdown { return ix.fw.Space() }

// K returns the keyword arity.
func (ix *ORPKW) K() int { return ix.fw.K() }
