package core

import (
	"sync"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
	"kwsc/internal/spart"
)

// ORPKW is the orthogonal-range-reporting-with-keywords index of Theorem 1:
// the kd-tree put through the transformation framework, operating in rank
// space (Step 4, Section 3.4). For d <= 2 it provides the paper's
// O(N)-space, O(N^{1-1/k} (1 + OUT^{1/k}))-query guarantee; for d >= 3 the
// same construction still answers correctly but its crossing sensitivity
// degrades as noted in Section 3.5 — use ORPKWHigh (Theorem 2) there.
type ORPKW struct {
	ds *dataset.Dataset
	rs *dataset.RankSpace
	fw *Framework

	fam    family     // metrics family (famNone when built with NoObs)
	tracer obs.Tracer // per-index tracer, may be nil

	// rqPool recycles rank-space query rectangles so the steady-state query
	// path allocates nothing; entries never leave this index's methods.
	rqPool sync.Pool
}

// BuildORPKW constructs the index for queries carrying exactly k keywords.
func BuildORPKW(ds *dataset.Dataset, k int, opts ...BuildOption) (*ORPKW, error) {
	return BuildORPKWWith(ds, k, resolveOpts(opts))
}

// BuildORPKWWith is BuildORPKW with an explicit options struct. Parallel
// and sequential builds answer every query identically.
func BuildORPKWWith(ds *dataset.Dataset, k int, opts BuildOpts) (*ORPKW, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	bt := obsBuildStart()
	rs := dataset.NewRankSpace(ds)
	pts := make([]geom.Point, ds.Len())
	for i := range pts {
		pts[i] = rs.RankPoint(int32(i))
	}
	fw, err := BuildFramework(ds, FrameworkConfig{
		K:           k,
		Splitter:    &spart.KD{Dim: ds.Dim()},
		Points:      pts,
		Parallelism: opts.Parallelism,
		Flat:        opts.Flat,
	})
	if err != nil {
		return nil, err
	}
	ix := &ORPKW{ds: ds, rs: rs, fw: fw, fam: opts.famFor(famORPKW), tracer: opts.Tracer}
	ix.fw.space.AuxWords += rs.SpaceWords()
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

func (ix *ORPKW) getRankRect() *geom.Rect {
	if rq, ok := ix.rqPool.Get().(*geom.Rect); ok {
		return rq
	}
	d := ix.ds.Dim()
	return &geom.Rect{Lo: make([]float64, d), Hi: make([]float64, d)}
}

// Query reports every object in q whose document contains all keywords,
// converting q to rank space in O(log N) first.
func (ix *ORPKW) Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "Query", ix.tracer)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError("ORPKW.Query", r, echoRegion(q, ws))
		}
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "Query", echoRegion(q, ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	if err := validateRect(q, ix.ds.Dim()); err != nil {
		return QueryStats{}, err
	}
	rq := ix.getRankRect()
	defer ix.rqPool.Put(rq)
	if !ix.rs.ToRankRectInto(q, rq) {
		// The rectangle misses every coordinate on some dimension.
		if err := ix.fw.checkQuery(ws); err != nil {
			return QueryStats{}, err
		}
		return QueryStats{}, nil
	}
	return ix.fw.Query(rq, ws, opts, report)
}

// Collect is Query returning a freshly allocated, caller-owned slice.
func (ix *ORPKW) Collect(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return ix.CollectInto(q, ws, opts, nil)
}

// CollectInto is Collect appending into buf, reusing its capacity. With a
// warmed buffer the query path performs zero heap allocations; the returned
// slice aliases buf only, so the caller owns the result.
func (ix *ORPKW) CollectInto(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, buf []int32) (out []int32, st QueryStats, err error) {
	qt := obsBegin(ix.fam, "CollectInto", ix.tracer)
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, newPanicError("ORPKW.CollectInto", r, echoRegion(q, ws))
		}
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "CollectInto", echoRegion(q, ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	if err := validateRect(q, ix.ds.Dim()); err != nil {
		return nil, QueryStats{}, err
	}
	rq := ix.getRankRect()
	defer ix.rqPool.Put(rq)
	if !ix.rs.ToRankRectInto(q, rq) {
		if err := ix.fw.checkQuery(ws); err != nil {
			return nil, QueryStats{}, err
		}
		return buf[:0], QueryStats{}, nil
	}
	return ix.fw.CollectInto(rq, ws, opts, buf)
}

// Flatten converts the index to the cache-conscious flat layout in place
// (see Framework.Flatten). It must not run concurrently with queries; call
// it once after construction, before serving. Indexes built with
// WithFlatLayout are already flat.
func (ix *ORPKW) Flatten() { ix.fw.Flatten() }

// Framework exposes the underlying transformed index (for instrumentation).
func (ix *ORPKW) Framework() *Framework { return ix.fw }

// RankSpace exposes the rank conversion (for instrumentation and the NN
// searches of Corollary 4, which binary-search over rank-space rectangles).
func (ix *ORPKW) RankSpace() *dataset.RankSpace { return ix.rs }

// Space returns the analytic space audit.
func (ix *ORPKW) Space() SpaceBreakdown { return ix.fw.Space() }

// K returns the keyword arity.
func (ix *ORPKW) K() int { return ix.fw.K() }
