package core

import (
	"fmt"
	"math"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// RRKW is the rectangle-reporting-with-keywords index of Corollary 3. Data
// rectangles [a1,b1] x ... x [ad,bd] are mapped to the 2d-dimensional corner
// points (a1, b1, ..., ad, bd); a query rectangle [x1,y1] x ... x [xd,yd]
// intersects a data rectangle iff the corner point falls in
// (-inf, y1] x [x1, +inf) x ... (Appendix F), so an RR-KW query becomes a
// 2d-dimensional ORP-KW query. For d = 1 — the temporal-document setting of
// [7] — the corner space is 2-dimensional and Theorem 1 applies directly;
// for d >= 2 the index routes through the dimension-reduction structure of
// Theorem 2.
type RRKW struct {
	d     int
	k     int
	rects []*geom.Rect
	low   *ORPKW     // corner dimension 2 (d = 1)
	high  *ORPKWHigh // corner dimension >= 4 (d >= 2)
	ds    *dataset.Dataset

	fam    family
	tracer obs.Tracer
}

// RectObject is one input element of RR-KW: a d-rectangle plus a document.
type RectObject struct {
	Rect *geom.Rect
	Doc  []dataset.Keyword
}

// BuildRRKW constructs the index for k-keyword queries.
func BuildRRKW(rects []RectObject, k int, opts ...BuildOption) (*RRKW, error) {
	return BuildRRKWWith(rects, k, resolveOpts(opts))
}

// BuildRRKWWith is BuildRRKW with an explicit options struct.
func BuildRRKWWith(rects []RectObject, k int, opts BuildOpts) (*RRKW, error) {
	if len(rects) == 0 {
		return nil, fmt.Errorf("%w: RR-KW needs at least one rectangle", ErrInvalidDataset)
	}
	bt := obsBuildStart()
	d := rects[0].Rect.Dim()
	objs := make([]dataset.Object, len(rects))
	geomRects := make([]*geom.Rect, len(rects))
	for i, r := range rects {
		if r.Rect.Dim() != d {
			return nil, fmt.Errorf("core: rectangle %d has dimension %d, want %d", i, r.Rect.Dim(), d)
		}
		corner := make(geom.Point, 2*d)
		for j := 0; j < d; j++ {
			corner[2*j] = r.Rect.Lo[j]
			corner[2*j+1] = r.Rect.Hi[j]
		}
		objs[i] = dataset.Object{Point: corner, Doc: r.Doc}
		geomRects[i] = r.Rect
	}
	ds, err := dataset.New(objs)
	if err != nil {
		return nil, err
	}
	ix := &RRKW{d: d, k: k, rects: geomRects, ds: ds, fam: opts.famFor(famRRKW), tracer: opts.Tracer}
	// The corner-space index is an implementation detail: build it untagged
	// so each RR-KW query is counted once, at this entry point.
	if 2*d <= 2 {
		ix.low, err = BuildORPKWWith(ds, k, opts.inner())
	} else {
		ix.high, err = BuildORPKWHighWith(ds, k, opts.inner())
	}
	if err != nil {
		return nil, err
	}
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

// cornerQuery maps a d-dimensional query rectangle to the 2d-dimensional
// corner-space rectangle of Appendix F.
func (ix *RRKW) cornerQuery(q *geom.Rect) *geom.Rect {
	lo := make([]float64, 2*ix.d)
	hi := make([]float64, 2*ix.d)
	for j := 0; j < ix.d; j++ {
		lo[2*j], hi[2*j] = math.Inf(-1), q.Hi[j]    // a_j <= y_j
		lo[2*j+1], hi[2*j+1] = q.Lo[j], math.Inf(1) // b_j >= x_j
	}
	return &geom.Rect{Lo: lo, Hi: hi}
}

// Query reports every data rectangle intersecting q whose document contains
// all keywords.
func (ix *RRKW) Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "Query", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "Query", echoRegion(q, ws), ix.k, qt, &st, err, ix.tracer)
		}
	}()
	if err := validateRect(q, ix.d); err != nil {
		return QueryStats{}, err
	}
	cq := ix.cornerQuery(q)
	if ix.low != nil {
		return ix.low.Query(cq, ws, opts, report)
	}
	return ix.high.Query(cq, ws, opts, report)
}

// Collect is Query returning a freshly allocated, caller-owned slice.
func (ix *RRKW) Collect(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return ix.CollectInto(q, ws, opts, nil)
}

// CollectInto is Collect appending into buf, reusing its capacity; the
// returned slice aliases buf only.
func (ix *RRKW) CollectInto(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, buf []int32) (out []int32, st QueryStats, err error) {
	qt := obsBegin(ix.fam, "CollectInto", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "CollectInto", echoRegion(q, ws), ix.k, qt, &st, err, ix.tracer)
		}
	}()
	if err := validateRect(q, ix.d); err != nil {
		return nil, QueryStats{}, err
	}
	cq := ix.cornerQuery(q)
	if ix.low != nil {
		return ix.low.CollectInto(cq, ws, opts, buf)
	}
	return ix.high.CollectInto(cq, ws, opts, buf)
}

// Rect returns data rectangle i.
func (ix *RRKW) Rect(i int32) *geom.Rect { return ix.rects[i] }

// K returns the keyword arity queries must carry.
func (ix *RRKW) K() int { return ix.k }

// Dataset returns the corner-point dataset of the reduction.
func (ix *RRKW) Dataset() *dataset.Dataset { return ix.ds }

// Space returns the analytic space audit.
func (ix *RRKW) Space() SpaceBreakdown {
	if ix.low != nil {
		return ix.low.Space()
	}
	return ix.high.Space()
}
