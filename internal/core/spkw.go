package core

import (
	"fmt"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
	"kwsc/internal/spart"
)

// SPKW is the simplex/linear-conjunction reporting index of Theorem 12 and
// Theorem 5 (Appendix D): a partition tree put through the transformation
// framework, on raw coordinates. The splitter is the Willard ham-sandwich
// partition tree for d = 2 and the box tree for d >= 3 (see DESIGN.md,
// substitution 1, for how these stand in for Chan's optimal partition tree).
// One index answers all of:
//
//   - SP-KW: a d-simplex plus keywords (QuerySimplex);
//   - LC-KW: s = O(1) linear constraints plus keywords (QueryConstraints) —
//     the paper triangulates the constraint polyhedron into simplices, but
//     the framework's cell tests work on any convex region, so the
//     polyhedron is queried directly, avoiding boundary double-reporting;
//   - any convex Region (QueryRegion), which the SRP-KW ablation uses to run
//     sphere queries without lifting.
type SPKW struct {
	ds *dataset.Dataset
	fw *Framework

	fam    family
	tracer obs.Tracer
}

// SPKWConfig controls construction.
type SPKWConfig struct {
	// K is the query keyword arity (k >= 2).
	K int
	// Splitter overrides the default substrate (Willard2D for d == 2,
	// Box otherwise). The Grid2D splitter plugs in here for the E6b
	// crossing-sensitivity ablation.
	Splitter spart.Splitter
	// Points overrides the partitioning coordinates (the lifting reduction
	// of Corollary 6 passes lifted points of dimension d+1).
	Points []geom.Point
	// Build tunes construction (parallelism); the zero value uses every
	// core.
	Build BuildOpts
}

// BuildSPKW constructs the index.
func BuildSPKW(ds *dataset.Dataset, cfg SPKWConfig) (*SPKW, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	bt := obsBuildStart()
	dim := ds.Dim()
	if cfg.Points != nil {
		dim = len(cfg.Points[0])
	}
	split := cfg.Splitter
	if split == nil {
		if dim == 2 {
			split = &spart.Willard2D{}
		} else {
			split = &spart.Box{Dim: dim}
		}
	}
	fw, err := BuildFramework(ds, FrameworkConfig{
		K:           cfg.K,
		Splitter:    split,
		Points:      cfg.Points,
		Parallelism: cfg.Build.Parallelism,
		Flat:        cfg.Build.Flat,
	})
	if err != nil {
		return nil, err
	}
	ix := &SPKW{ds: ds, fw: fw, fam: cfg.Build.famFor(famLCKW), tracer: cfg.Build.Tracer}
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

// QuerySimplex answers an SP-KW query: report the objects inside the
// d-simplex whose documents contain all keywords.
func (ix *SPKW) QuerySimplex(s *geom.Simplex, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "QuerySimplex", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "QuerySimplex", echoQuery(s, ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	ph, err := s.Polyhedron()
	if err != nil {
		return QueryStats{}, err
	}
	return ix.fw.Query(ph, ws, opts, report)
}

// QueryConstraints answers an LC-KW query: report the objects satisfying
// every linear constraint whose documents contain all keywords.
func (ix *SPKW) QueryConstraints(hs []geom.Halfspace, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "QueryConstraints", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "QueryConstraints", echoQuery(hs, ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	if err := validateHalfspaces(hs, ix.fw.PointDim()); err != nil {
		return QueryStats{}, err
	}
	return ix.fw.Query(geom.NewPolyhedron(hs...), ws, opts, report)
}

// QueryRegion answers a query against an arbitrary convex region.
func (ix *SPKW) QueryRegion(q geom.Region, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "QueryRegion", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "QueryRegion", echoRegion(q, ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	return ix.fw.Query(q, ws, opts, report)
}

// CollectConstraints is QueryConstraints returning a freshly allocated,
// caller-owned slice.
func (ix *SPKW) CollectConstraints(hs []geom.Halfspace, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return ix.CollectConstraintsInto(hs, ws, opts, nil)
}

// CollectConstraintsInto is CollectConstraints appending into buf, reusing
// its capacity; the returned slice aliases buf only.
func (ix *SPKW) CollectConstraintsInto(hs []geom.Halfspace, ws []dataset.Keyword, opts QueryOpts, buf []int32) (out []int32, st QueryStats, err error) {
	qt := obsBegin(ix.fam, "CollectConstraintsInto", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "CollectConstraintsInto", echoQuery(hs, ws), ix.fw.K(), qt, &st, err, ix.tracer)
		}
	}()
	if err := validateHalfspaces(hs, ix.fw.PointDim()); err != nil {
		return nil, QueryStats{}, err
	}
	return ix.fw.CollectInto(geom.NewPolyhedron(hs...), ws, opts, buf)
}

// Query, Collect, and CollectInto are the unified-interface names for the
// constraint-conjunction query: SPKW's query shape is a halfspace list the
// way ORPKW's is a rectangle, so the aliases let SPKW satisfy
// Index[[]Halfspace] (see the facade's index.go) without a wrapper type.

// Query is QueryConstraints under the unified Index method name.
func (ix *SPKW) Query(hs []geom.Halfspace, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (QueryStats, error) {
	return ix.QueryConstraints(hs, ws, opts, report)
}

// Collect is CollectConstraints under the unified Index method name.
func (ix *SPKW) Collect(hs []geom.Halfspace, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return ix.CollectConstraints(hs, ws, opts)
}

// CollectInto is CollectConstraintsInto under the unified Index method name.
func (ix *SPKW) CollectInto(hs []geom.Halfspace, ws []dataset.Keyword, opts QueryOpts, buf []int32) ([]int32, QueryStats, error) {
	return ix.CollectConstraintsInto(hs, ws, opts, buf)
}

// Flatten converts the index to the cache-conscious flat layout in place
// (see Framework.Flatten). It must not run concurrently with queries.
func (ix *SPKW) Flatten() { ix.fw.Flatten() }

// Framework exposes the underlying transformed index.
func (ix *SPKW) Framework() *Framework { return ix.fw }

// Space returns the analytic space audit.
func (ix *SPKW) Space() SpaceBreakdown { return ix.fw.Space() }

// K returns the keyword arity.
func (ix *SPKW) K() int { return ix.fw.K() }

// QueryConstraintsViaSimplices answers an LC-KW query the way the paper's
// Appendix D reduction describes it: materialize the constraint polyhedron
// (clipped to the data's bounding box), partition it into simplices, query
// each, and de-duplicate objects on shared triangle edges. It returns the
// same results as QueryConstraints, which queries the polyhedron directly;
// both are exposed so the reduction itself is testable. Only d = 2 is
// supported (the materialization uses polygon clipping).
func (ix *SPKW) QueryConstraintsViaSimplices(hs []geom.Halfspace, ws []dataset.Keyword, report func(int32)) (QueryStats, error) {
	if ix.ds.Dim() != 2 {
		return QueryStats{}, fmt.Errorf("core: simplex-partition route supports d=2 only, dataset has d=%d", ix.ds.Dim())
	}
	if len(hs) == 0 {
		return QueryStats{}, fmt.Errorf("core: LC-KW query needs at least one constraint")
	}
	pts := make([]geom.Point, ix.ds.Len())
	for i := range pts {
		pts[i] = ix.ds.Point(int32(i))
	}
	bound := geom.BoundingRect(pts)
	pad := 1.0
	for j := range bound.Lo {
		bound.Lo[j] -= pad
		bound.Hi[j] += pad
	}
	poly := geom.ClipPolyhedron2D(geom.NewPolyhedron(hs...), bound)
	var total QueryStats
	seen := make(map[int32]struct{})
	for _, tri := range poly.FanTriangulate() {
		st, err := ix.QuerySimplex(tri, ws, QueryOpts{}, func(id int32) {
			if _, dup := seen[id]; dup {
				return
			}
			seen[id] = struct{}{}
			report(id)
		})
		total.add(st)
		if err != nil {
			return total, err
		}
	}
	total.Reported = len(seen)
	return total, nil
}
