package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// kthCandidate must return exactly the i-th smallest candidate radius (the
// coordinate differences of Corollary 4's proof), verified against explicit
// enumeration.
func TestKthCandidateExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(60)
		dim := 1 + rng.Intn(3)
		ds := workload.Gen(workload.Config{Seed: int64(trial), Objects: n, Dim: dim, Vocab: 8, DocLen: 3})
		ix, err := BuildLinfNN(ds, 2)
		if err != nil {
			t.Fatal(err)
		}
		q := make(geom.Point, dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		// Enumerate all candidates.
		var cands []float64
		for i := 0; i < n; i++ {
			for j := 0; j < dim; j++ {
				cands = append(cands, math.Abs(q[j]-ds.Point(int32(i))[j]))
			}
		}
		sort.Float64s(cands)
		maxR := cands[len(cands)-1]
		for _, i := range []int64{1, 2, int64(len(cands) / 2), int64(len(cands))} {
			got := ix.kthCandidate(q, i, maxR)
			want := cands[i-1]
			if math.Abs(got-want) > 1e-12*(1+want) {
				t.Fatalf("trial %d: kthCandidate(%d) = %v, want %v", trial, i, got, want)
			}
		}
		// countCandidates is the exact inverse in the float model (both
		// sides compute the same fl(|q_j - x|) values).
		for _, r := range []float64{0, cands[0], cands[len(cands)/3], maxR} {
			wantExact := int64(0)
			for _, c := range cands {
				if c <= r {
					wantExact++
				}
			}
			if got := ix.countCandidates(q, r); got != wantExact {
				t.Fatalf("trial %d: countCandidates(%v) = %d, want %d",
					trial, r, got, wantExact)
			}
		}
	}
}

// nextCandidate walks the distinct candidate values in increasing order.
func TestNextCandidateWalk(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 30, Dim: 2, Vocab: 8, DocLen: 3})
	ix, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{0.5, 0.5}
	var cands []float64
	for i := 0; i < ds.Len(); i++ {
		for j := 0; j < 2; j++ {
			cands = append(cands, math.Abs(q[j]-ds.Point(int32(i))[j]))
		}
	}
	sort.Float64s(cands)
	// Distinct values.
	distinct := cands[:0]
	for _, c := range cands {
		if len(distinct) == 0 || c > distinct[len(distinct)-1] {
			distinct = append(distinct, c)
		}
	}
	r := -1.0
	for _, want := range distinct {
		got := ix.nextCandidate(q, r)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("nextCandidate(%v) = %v, want %v", r, got, want)
		}
		r = got
	}
	if last := ix.nextCandidate(q, r); !math.IsInf(last, 1) {
		t.Fatalf("walk past the end returned %v, want +Inf", last)
	}
}

// The NN search with t = |D(kw)| + large returns the whole filtered set.
func TestLinfNNWantsMoreThanExists(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 4, Objects: 100, Dim: 2, Vocab: 6, DocLen: 3})
	ix, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	match := ds.Filter(geom.FullSpace{}, []uint32{0, 1})
	res, _, err := ix.Query(geom.Point{0.5, 0.5}, len(match)+50, []uint32{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(match) {
		t.Fatalf("oversized t: got %d, want %d", len(res), len(match))
	}
}

// t validation and dimension validation on both NN searches.
func TestNNValidation(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 5, Objects: 50, Dim: 2, Vocab: 6, DocLen: 3})
	linf, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := linf.Query(geom.Point{0.5, 0.5}, 0, []uint32{0, 1}, QueryOpts{}); err == nil {
		t.Fatal("t=0 must be rejected")
	}
	if _, _, err := linf.Query(geom.Point{0.5}, 1, []uint32{0, 1}, QueryOpts{}); err == nil {
		t.Fatal("wrong dimension must be rejected")
	}
	if _, _, err := linf.Query(geom.Point{0.5, 0.5}, 1, []uint32{0}, QueryOpts{}); err == nil {
		t.Fatal("wrong arity must be rejected")
	}
	gds := workload.Gen(workload.Config{Seed: 6, Objects: 50, Dim: 2, Vocab: 6, DocLen: 3, Points: "grid", GridSide: 100})
	l2, err := BuildL2NN(gds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l2.Query(geom.Point{1, 1}, 0, []uint32{0, 1}, QueryOpts{}); err == nil {
		t.Fatal("t=0 must be rejected")
	}
	if _, _, err := l2.Query(geom.Point{1}, 1, []uint32{0, 1}, QueryOpts{}); err == nil {
		t.Fatal("wrong dimension must be rejected")
	}
	// Non-integer coordinates rejected at build.
	if _, err := BuildL2NN(ds, 2); err == nil {
		t.Fatal("fractional coordinates must be rejected by L2NN")
	}
}
