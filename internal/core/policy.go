package core

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"time"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// This file is the resilience layer of the query side: ExecPolicy bounds a
// traversal in wall-clock and work terms, invalid queries are rejected with
// typed errors before they reach a traversal, and index-internal panics are
// converted into errors at the public entry points. The paper bounds query
// cost at O(N^{1-1/k} (1 + OUT^{1/k})) asymptotically, but a serving system
// must bound it on adversarial inputs too — skewed documents, huge OUT,
// degenerate rectangles — where one query can otherwise pin a core
// indefinitely (inverted-index traversal is P-complete in general).

// Typed failure modes of a policy-bounded query. All of them accompany
// PARTIAL results: whatever was reported before the stop remains valid and
// is a prefix of the unbounded answer sequence.
var (
	// ErrDeadline is returned when ExecPolicy.Deadline (or Timeout) passes
	// mid-traversal.
	ErrDeadline = errors.New("core: query deadline exceeded")
	// ErrBudget is returned when ExecPolicy.NodeBudget visits are exhausted
	// mid-traversal.
	ErrBudget = errors.New("core: query node budget exhausted")
	// ErrCanceled is returned when ExecPolicy.Done is closed mid-traversal.
	ErrCanceled = errors.New("core: query canceled")
	// ErrInvalidQuery wraps every input-validation failure (NaN coordinates,
	// lo>hi rectangles, duplicate or wrong-count keyword tuples, ...); test
	// with errors.Is.
	ErrInvalidQuery = errors.New("core: invalid query")
	// ErrInvalidDataset wraps constructor rejections of unusable inputs (nil
	// or empty datasets) so they fail loudly at build time instead of
	// panicking inside a later traversal; test with errors.Is.
	ErrInvalidDataset = errors.New("core: invalid dataset")
)

// checkDataset is the shared constructor guard behind ErrInvalidDataset.
func checkDataset(ds *dataset.Dataset) error {
	if ds == nil {
		return fmt.Errorf("%w: nil dataset", ErrInvalidDataset)
	}
	if ds.Len() == 0 {
		return fmt.Errorf("%w: empty dataset", ErrInvalidDataset)
	}
	return nil
}

// ExecPolicy bounds the execution of one query. The zero value imposes no
// bounds and costs nothing on the traversal hot path. Unlike QueryOpts.Limit
// and QueryOpts.Budget — which stop a query silently with a stats flag — a
// policy violation surfaces as a typed error (ErrDeadline, ErrBudget,
// ErrCanceled) alongside the partial results, so callers and the Degraded
// executor can react.
type ExecPolicy struct {
	// Deadline is the absolute wall-clock stop time (zero = none). The
	// traversal polls the clock every polPollEvery stop checks, so overshoot
	// is bounded by a few microseconds of node work.
	Deadline time.Time
	// Timeout is a relative deadline resolved against time.Now at query
	// entry; ignored when Deadline is set. Nested and secondary traversals
	// share the resolved absolute deadline.
	Timeout time.Duration
	// NodeBudget stops the query after this many tree-node visits
	// (0 = unlimited). Secondary structures and Bentley–Saxe buckets charge
	// the same budget; scan-shaped paths (posting lists, write buffers)
	// charge per examined entry.
	NodeBudget int64
	// MaxResults caps the number of reported objects (0 = unlimited). It
	// folds into QueryOpts.Limit, so hitting it sets QueryStats.Truncated
	// without an error.
	MaxResults int
	// Done cancels the query when closed (nil = none); pass ctx.Done() to
	// integrate with context.Context. Polled at the same cadence as
	// Deadline.
	Done <-chan struct{}
}

// polPollEvery is how many stop checks pass between clock/cancellation
// polls: stop checks fire at least once per node visit and per scanned
// object, so polls land every few microseconds while keeping time.Now off
// the per-node path.
const polPollEvery = 64

// Zero reports whether the policy imposes no bounds at all.
func (p ExecPolicy) Zero() bool { return p == ExecPolicy{} }

// normalized resolves the policy at query entry: Timeout becomes an absolute
// Deadline (shared by nested traversals) and MaxResults folds into the
// opts Limit. Idempotent, so stacked entry points may each call it.
func (o QueryOpts) normalized() QueryOpts {
	p := o.Policy
	if p.Zero() {
		return o
	}
	if p.Timeout > 0 && p.Deadline.IsZero() {
		p.Deadline = time.Now().Add(p.Timeout)
	}
	p.Timeout = 0
	if p.MaxResults > 0 && (o.Limit == 0 || p.MaxResults < o.Limit) {
		o.Limit = p.MaxResults
	}
	p.MaxResults = 0
	o.Policy = p
	return o
}

// shrunk returns the policy with its node budget reduced by work already
// consumed, for handing to a secondary traversal that restarts its own
// counters. Deadline and Done are absolute and shared as-is.
func (p ExecPolicy) shrunk(consumed int64) ExecPolicy {
	if p.NodeBudget > 0 {
		p.NodeBudget -= consumed
		if p.NodeBudget <= 0 {
			p.NodeBudget = 1 // the next check fires immediately
		}
	}
	return p
}

// polState tracks one traversal's progress against its (normalized) policy.
// It lives inside the pooled query contexts, so activating it allocates
// nothing.
type polState struct {
	pol    ExecPolicy
	active bool
	tick   uint32
}

func newPolState(p ExecPolicy) polState {
	return polState{
		pol:    p,
		active: !p.Deadline.IsZero() || p.NodeBudget > 0 || p.Done != nil,
	}
}

// check returns the typed error that should stop the traversal now, or nil.
// work is the traversal's progress measure charged against NodeBudget
// (node visits for tree traversals, scanned entries for list scans). The
// matching QueryStats flag is stamped before returning.
func (ps *polState) check(st *QueryStats, work int64) error {
	if !ps.active {
		return nil
	}
	if ps.pol.NodeBudget > 0 && work > ps.pol.NodeBudget {
		st.NodeBudgetHit, st.Truncated = true, true
		return ErrBudget
	}
	if ps.tick == 0 {
		ps.tick = polPollEvery
		if ps.pol.Done != nil {
			select {
			case <-ps.pol.Done:
				st.Canceled, st.Truncated = true, true
				return ErrCanceled
			default:
			}
		}
		if !ps.pol.Deadline.IsZero() && !time.Now().Before(ps.pol.Deadline) {
			st.DeadlineHit, st.Truncated = true, true
			return ErrDeadline
		}
	}
	ps.tick--
	return nil
}

// PanicError is an index-internal panic converted into an error at a public
// query entry point: the process survives, and the failing query is echoed
// for reproduction.
type PanicError struct {
	Op    string // entry point, e.g. "ORPKW.CollectInto"
	Query string // echo of the query inputs
	Val   any    // the recovered panic value
	Stack []byte // goroutine stack at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: panic in %s (%s): %v", e.Op, e.Query, e.Val)
}

// newPanicError captures the panic value and stack; called on the panic path
// only, so its allocations never touch a healthy query.
func newPanicError(op string, val any, query string) *PanicError {
	return &PanicError{Op: op, Query: query, Val: val, Stack: debug.Stack()}
}

// echoRegion formats a query region and keyword tuple for PanicError.Query.
func echoRegion(q geom.Region, ws []dataset.Keyword) string {
	return fmt.Sprintf("region=%v keywords=%v", q, ws)
}

// echoQuery formats a non-Region constraint (halfspace list, simplex) and
// keyword tuple for PanicError.Query and tracing spans.
func echoQuery(q any, ws []dataset.Keyword) string {
	return fmt.Sprintf("query=%v keywords=%v", q, ws)
}

// echoPoint formats an NN query for PanicError.Query.
func echoPoint(q geom.Point, t int, ws []dataset.Keyword) string {
	return fmt.Sprintf("point=%v t=%d keywords=%v", q, t, ws)
}

// validateRect rejects rectangles no traversal can answer meaningfully: NaN
// bounds (every comparison is false, silently dropping results) and lo > hi
// on some dimension (an empty rectangle must be represented explicitly, not
// passed as a query). Infinite bounds are legal half-open ranges.
func validateRect(q *geom.Rect, dim int) error {
	if q == nil {
		return fmt.Errorf("%w: nil rectangle", ErrInvalidQuery)
	}
	if q.Dim() != dim || len(q.Hi) != len(q.Lo) {
		return fmt.Errorf("%w: rectangle of dimension %d against index of dimension %d", ErrInvalidQuery, q.Dim(), dim)
	}
	for i := range q.Lo {
		if math.IsNaN(q.Lo[i]) || math.IsNaN(q.Hi[i]) {
			return fmt.Errorf("%w: NaN bound on dimension %d", ErrInvalidQuery, i)
		}
		if q.Lo[i] > q.Hi[i] {
			return fmt.Errorf("%w: empty rectangle on dimension %d: [%v,%v]", ErrInvalidQuery, i, q.Lo[i], q.Hi[i])
		}
	}
	return nil
}

// validatePoint rejects query points with non-finite coordinates.
func validatePoint(p geom.Point, dim int) error {
	if len(p) != dim {
		return fmt.Errorf("%w: point of dimension %d against index of dimension %d", ErrInvalidQuery, len(p), dim)
	}
	for i, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: non-finite coordinate %v on dimension %d", ErrInvalidQuery, c, i)
		}
	}
	return nil
}

// validateSphere rejects spheres with non-finite centers or NaN/negative
// radii (an infinite radius is a legal full-space query).
func validateSphere(s *geom.Sphere, dim int) error {
	if s == nil {
		return fmt.Errorf("%w: nil sphere", ErrInvalidQuery)
	}
	if err := validatePoint(s.Center, dim); err != nil {
		return err
	}
	if math.IsNaN(s.Radius) || s.Radius < 0 {
		return fmt.Errorf("%w: sphere radius %v", ErrInvalidQuery, s.Radius)
	}
	return nil
}

// validateHalfspaces rejects constraints with NaN coefficients or bounds.
func validateHalfspaces(hs []geom.Halfspace, dim int) error {
	if len(hs) == 0 {
		return fmt.Errorf("%w: LC-KW query needs at least one constraint", ErrInvalidQuery)
	}
	for i, h := range hs {
		if len(h.Coef) != dim {
			return fmt.Errorf("%w: constraint %d has dimension %d, index has %d", ErrInvalidQuery, i, len(h.Coef), dim)
		}
		if math.IsNaN(h.Bound) {
			return fmt.Errorf("%w: constraint %d has NaN bound", ErrInvalidQuery, i)
		}
		for j, c := range h.Coef {
			if math.IsNaN(c) {
				return fmt.Errorf("%w: constraint %d has NaN coefficient on dimension %d", ErrInvalidQuery, i, j)
			}
		}
	}
	return nil
}
