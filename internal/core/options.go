package core

import "kwsc/internal/obs"

// BuildOption is a functional construction option. The plain builders are
// variadic — BuildORPKW(ds, k, WithParallelism(4), WithTracer(t)) — which
// supersedes the Build*With(ds, k, BuildOpts{...}) pairs; those remain as
// thin wrappers.
type BuildOption func(*BuildOpts)

// WithParallelism caps the number of goroutines the build may use (see
// BuildOpts.Parallelism).
func WithParallelism(p int) BuildOption {
	return func(o *BuildOpts) { o.Parallelism = p }
}

// WithTracer installs a per-index tracer: every query span this index emits
// goes to t in addition to any process-wide tracer (obs.SetTracer).
func WithTracer(t obs.Tracer) BuildOption {
	return func(o *BuildOpts) { o.Tracer = t }
}

// WithFlatLayout converts the index to the cache-conscious flat layout at
// the end of construction: tree nodes re-ordered into BFS order with
// implicit contiguous child addressing, payloads packed into shared arenas,
// materialized keyword lists delta-encoded into fixed-size packed blocks,
// and per-child non-emptiness tensors concatenated into one bit arena.
// Queries answer identically; the layout trades build-time packing work for
// smaller resident memory and fewer cache misses per query.
func WithFlatLayout() BuildOption {
	return func(o *BuildOpts) { o.Flat = true }
}

// WithoutObs excludes the index from the metrics registry and tracing.
// Composite indexes use it on their inner structures so a user query is
// counted exactly once; callers can use it to build shadow indexes that
// stay invisible to monitoring.
func WithoutObs() BuildOption {
	return func(o *BuildOpts) { o.NoObs = true }
}

// With returns a copy of o with opts applied.
func (o BuildOpts) With(opts ...BuildOption) BuildOpts {
	for _, f := range opts {
		if f != nil {
			f(&o)
		}
	}
	return o
}

// resolveOpts folds a variadic option list into a BuildOpts value.
func resolveOpts(opts []BuildOption) BuildOpts {
	return BuildOpts{}.With(opts...)
}

// inner returns the options a composite index passes to the structures it
// builds internally: same parallelism, but untagged (the composite's own
// entry points carry the instrumentation) and without the per-index tracer.
func (o BuildOpts) inner() BuildOpts {
	o.NoObs = true
	o.Tracer = nil
	return o
}

// famFor applies the NoObs switch to a family tag.
func (o BuildOpts) famFor(f family) family {
	if o.NoObs {
		return famNone
	}
	return f
}
