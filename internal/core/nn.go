package core

import (
	"fmt"
	"math"
	"sort"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// rectQuerier is the ORP-KW capability both nearest-neighbor searches build
// on (Theorem 1's index for d <= 2, Theorem 2's for d >= 3).
type rectQuerier interface {
	Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (QueryStats, error)
}

// NNResult is one reported neighbor.
type NNResult struct {
	ID   int32
	Dist float64 // under the search's metric (L-infinity or L2)
}

// NNStats aggregates the instrumentation of all probe queries issued by one
// nearest-neighbor search: the embedded QueryStats sums the stats of every
// probe, so NN searches report work the same way the rest of the catalog
// does (st.Ops, st.NodesVisited, ...).
type NNStats struct {
	Probes int // range queries issued (the paper's O(log N) factor)
	QueryStats
}

// LinfNN is the L∞-nearest-neighbor-with-keywords index of Corollary 4: an
// ORP-KW index plus, per dimension, the sorted coordinate array that yields
// the O(N) candidate radii (the coordinate differences between the query
// point and the objects). A query binary-searches the candidate radii,
// testing each with a reporting query truncated at t results.
type LinfNN struct {
	ds     *dataset.Dataset
	base   rectQuerier
	sorted [][]float64
	dim, k int

	fam    family
	tracer obs.Tracer
}

// BuildLinfNN constructs the index for k-keyword queries.
func BuildLinfNN(ds *dataset.Dataset, k int, opts ...BuildOption) (*LinfNN, error) {
	return BuildLinfNNWith(ds, k, resolveOpts(opts))
}

// BuildLinfNNWith is BuildLinfNN with an explicit options struct.
func BuildLinfNNWith(ds *dataset.Dataset, k int, opts BuildOpts) (*LinfNN, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	bt := obsBuildStart()
	var base rectQuerier
	var err error
	// The probe index is internal: built untagged so a search counts as one
	// linf_nn query, not O(log N) orpkw queries.
	if ds.Dim() <= 2 {
		base, err = BuildORPKWWith(ds, k, opts.inner())
	} else {
		base, err = BuildORPKWHighWith(ds, k, opts.inner())
	}
	if err != nil {
		return nil, err
	}
	ix := &LinfNN{ds: ds, base: base, dim: ds.Dim(), k: k, fam: opts.famFor(famLinfNN), tracer: opts.Tracer}
	ix.sorted = make([][]float64, ix.dim)
	for j := 0; j < ix.dim; j++ {
		c := make([]float64, ds.Len())
		for i := range c {
			c[i] = ds.Point(int32(i))[j]
		}
		sort.Float64s(c)
		ix.sorted[j] = c
	}
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

// linfBallInto fills dst with the L∞-ball B(q, r) as a d-rectangle; one
// search reuses a single rectangle across all of its probe queries.
func linfBallInto(dst *geom.Rect, q geom.Point, r float64) *geom.Rect {
	for i, c := range q {
		dst.Lo[i], dst.Hi[i] = c-r, c+r
	}
	return dst
}

// countCandidates returns the number of candidate radii <= r. A candidate
// is the floating-point value |q_j - x| exactly as computed, so the count
// binary-searches the candidate values themselves: on each side of q_j the
// computed difference is monotone in x, making the predicate
// "fl(|q_j - x|) <= r" searchable without reconstructing q_j ± r (whose own
// rounding would misclassify boundary candidates).
func (ix *LinfNN) countCandidates(q geom.Point, r float64) int64 {
	if r < 0 {
		return 0
	}
	var c int64
	for j := 0; j < ix.dim; j++ {
		s := ix.sorted[j]
		iq := sort.Search(len(s), func(i int) bool { return s[i] > q[j] })
		// Left region [0, iq): q_j - s[i] is non-increasing in i; the
		// qualifying suffix starts at the first i with q_j - s[i] <= r.
		firstLeft := sort.Search(iq, func(i int) bool { return q[j]-s[i] <= r })
		c += int64(iq - firstLeft)
		// Right region [iq, n): s[i] - q_j is non-decreasing in i; the
		// qualifying prefix ends before the first i with s[i] - q_j > r.
		endRight := iq + sort.Search(len(s)-iq, func(i int) bool { return s[iq+i]-q[j] > r })
		c += int64(endRight - iq)
	}
	return c
}

// nextCandidate returns the smallest candidate radius strictly greater than
// r, or +Inf if none exists, under the same float-exact candidate model as
// countCandidates. Negative r asks for the smallest candidate overall.
func (ix *LinfNN) nextCandidate(q geom.Point, r float64) float64 {
	best := math.Inf(1)
	for j := 0; j < ix.dim; j++ {
		s := ix.sorted[j]
		iq := sort.Search(len(s), func(i int) bool { return s[i] > q[j] })
		// Left region: candidates q_j - s[i], non-increasing in i. The
		// smallest one exceeding r sits just before the <= r suffix.
		firstLeft := sort.Search(iq, func(i int) bool { return q[j]-s[i] <= r })
		if firstLeft > 0 {
			if c := q[j] - s[firstLeft-1]; c > r && c < best {
				best = c
			}
		}
		// Right region: candidates s[i] - q_j, non-decreasing in i. The
		// smallest one exceeding r starts the > r suffix.
		offRight := sort.Search(len(s)-iq, func(i int) bool { return s[iq+i]-q[j] > r })
		if iq+offRight < len(s) {
			if c := s[iq+offRight] - q[j]; c > r && c < best {
				best = c
			}
		}
	}
	return best
}

// kthCandidate returns the i-th smallest candidate radius (1-based),
// accelerated by value bisection before walking to the exact candidate.
func (ix *LinfNN) kthCandidate(q geom.Point, i int64, maxR float64) float64 {
	lo, hi := -1.0, maxR
	for iter := 0; iter < 80 && hi-lo > 1e-12*(1+math.Abs(hi)); iter++ {
		mid := lo + (hi-lo)/2
		if ix.countCandidates(q, mid) >= i {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Walk the few remaining distinct candidates in (lo, hi].
	for {
		c := ix.nextCandidate(q, lo)
		if math.IsInf(c, 1) {
			return hi
		}
		if ix.countCandidates(q, c) >= i {
			return c
		}
		lo = c
	}
}

// Query returns up to t objects of D(w1..wk) nearest to q under the L∞
// distance, sorted by distance (fewer when D(w1..wk) itself is smaller).
// opts applies to the whole search: the policy's deadline, node budget and
// cancellation channel are shared across every range probe, so a policy
// violation ends the search with a typed error and NNStats describing the
// work done so far; Limit additionally caps t; Budget bounds each
// individual probe.
func (ix *LinfNN) Query(q geom.Point, t int, ws []dataset.Keyword, opts QueryOpts) (res []NNResult, ns NNStats, err error) {
	qt := obsBegin(ix.fam, "Query", ix.tracer)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, newPanicError("LinfNN.Query", r, echoPoint(q, t, ws))
		}
		if obsEnd(ix.fam, qt, &ns.QueryStats, err, ix.tracer) {
			obsSpan(ix.fam, "Query", echoPoint(q, t, ws), ix.k, qt, &ns.QueryStats, err, ix.tracer)
		}
	}()
	if err := validatePoint(q, ix.dim); err != nil {
		return nil, NNStats{}, err
	}
	if t < 1 {
		return nil, NNStats{}, fmt.Errorf("%w: t must be >= 1, got %d", ErrInvalidQuery, t)
	}
	if err := dataset.ValidateKeywords(ws); err != nil {
		return nil, NNStats{}, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	opts = opts.normalized()
	pol := opts.Policy
	if opts.Limit > 0 && opts.Limit < t {
		t = opts.Limit
	}
	ball := &geom.Rect{Lo: make([]float64, ix.dim), Hi: make([]float64, ix.dim)}
	atLeastT := func(r float64) (bool, error) {
		failpoint(FPNNProbe)
		ns.Probes++
		st, err := ix.base.Query(linfBallInto(ball, q, r), ws,
			QueryOpts{Limit: t, Budget: opts.Budget, Policy: pol.shrunk(int64(ns.NodesVisited))}, func(int32) {})
		ns.QueryStats.add(st)
		return st.Reported >= t, err
	}
	// Maximum candidate radius: the farthest coordinate difference.
	maxR := 0.0
	for j := 0; j < ix.dim; j++ {
		s := ix.sorted[j]
		if c := math.Abs(q[j] - s[0]); c > maxR {
			maxR = c
		}
		if c := math.Abs(s[len(s)-1] - q[j]); c > maxR {
			maxR = c
		}
	}
	full, err := atLeastT(maxR)
	if err != nil {
		return nil, ns, err
	}
	rStar := maxR
	if full {
		// Binary search the candidate index space for the smallest radius
		// at which t objects fall inside the ball.
		m := ix.countCandidates(q, maxR)
		lo, hi := int64(1), m // hi's radius satisfies the predicate
		for lo < hi {
			mid := (lo + hi) / 2
			r := ix.kthCandidate(q, mid, maxR)
			ok, err := atLeastT(r)
			if err != nil {
				return nil, ns, err
			}
			if ok {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		rStar = ix.kthCandidate(q, lo, maxR)
	}
	// Final reporting pass at r*; ties at distance exactly r* are broken
	// arbitrarily, as the problem statement allows.
	ns.Probes++
	st, err := ix.base.Query(linfBallInto(ball, q, rStar), ws,
		QueryOpts{Budget: opts.Budget, Policy: pol.shrunk(int64(ns.NodesVisited))}, func(id int32) {
			res = append(res, NNResult{ID: id, Dist: q.LInf(ix.ds.Point(id))})
		})
	ns.QueryStats.add(st)
	if err != nil {
		return res, ns, err
	}
	sort.Slice(res, func(a, b int) bool {
		if res[a].Dist != res[b].Dist {
			return res[a].Dist < res[b].Dist
		}
		return res[a].ID < res[b].ID
	})
	if len(res) > t {
		res = res[:t]
	}
	return res, ns, nil
}

// QueryWith runs Query under an execution policy.
//
// Deprecated: use Query with QueryOpts{Policy: pol}; it is the same search
// with the catalog-wide options signature.
func (ix *LinfNN) QueryWith(q geom.Point, t int, ws []dataset.Keyword, pol ExecPolicy) ([]NNResult, NNStats, error) {
	return ix.Query(q, t, ws, QueryOpts{Policy: pol})
}

// L2NN is the L2-nearest-neighbor-with-keywords index of Corollary 7 for
// integer coordinates: the lifted SRP-KW index plus binary search over the
// O(N^{O(1)}) candidate squared radii — integers, so O(log N) probes with
// truncated reporting queries locate the smallest enclosing sphere exactly.
type L2NN struct {
	ds         *dataset.Dataset
	srp        *SRPKW
	dim, k     int
	bbLo, bbHi []float64

	fam    family
	tracer obs.Tracer
}

// BuildL2NN constructs the index; every coordinate must be integral (the
// problem fixes D in N^d, the O(log N)-bit integers).
func BuildL2NN(ds *dataset.Dataset, k int, opts ...BuildOption) (*L2NN, error) {
	return BuildL2NNWith(ds, k, resolveOpts(opts))
}

// BuildL2NNWith is BuildL2NN with an explicit options struct.
func BuildL2NNWith(ds *dataset.Dataset, k int, opts BuildOpts) (*L2NN, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	bt := obsBuildStart()
	for i := 0; i < ds.Len(); i++ {
		for j, c := range ds.Point(int32(i)) {
			if c != math.Trunc(c) {
				return nil, fmt.Errorf("core: L2NN-KW requires integer coordinates; object %d dimension %d has %v", i, j, c)
			}
		}
	}
	srp, err := BuildSRPKWWith(ds, k, opts.inner())
	if err != nil {
		return nil, err
	}
	ix := &L2NN{ds: ds, srp: srp, dim: ds.Dim(), k: k, fam: opts.famFor(famL2NN), tracer: opts.Tracer}
	ix.bbLo = make([]float64, ix.dim)
	ix.bbHi = make([]float64, ix.dim)
	copy(ix.bbLo, ds.Point(0))
	copy(ix.bbHi, ds.Point(0))
	for i := 1; i < ds.Len(); i++ {
		p := ds.Point(int32(i))
		for j := 0; j < ix.dim; j++ {
			if p[j] < ix.bbLo[j] {
				ix.bbLo[j] = p[j]
			}
			if p[j] > ix.bbHi[j] {
				ix.bbHi[j] = p[j]
			}
		}
	}
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

// Query returns up to t objects of D(w1..wk) nearest to q under L2 distance,
// sorted by distance. q must have integer coordinates. opts applies to the
// whole search (see LinfNN.Query).
func (ix *L2NN) Query(q geom.Point, t int, ws []dataset.Keyword, opts QueryOpts) (res []NNResult, ns NNStats, err error) {
	qt := obsBegin(ix.fam, "Query", ix.tracer)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, newPanicError("L2NN.Query", r, echoPoint(q, t, ws))
		}
		if obsEnd(ix.fam, qt, &ns.QueryStats, err, ix.tracer) {
			obsSpan(ix.fam, "Query", echoPoint(q, t, ws), ix.k, qt, &ns.QueryStats, err, ix.tracer)
		}
	}()
	if err := validatePoint(q, ix.dim); err != nil {
		return nil, NNStats{}, err
	}
	if t < 1 {
		return nil, NNStats{}, fmt.Errorf("%w: t must be >= 1, got %d", ErrInvalidQuery, t)
	}
	if err := dataset.ValidateKeywords(ws); err != nil {
		return nil, NNStats{}, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	opts = opts.normalized()
	pol := opts.Policy
	if opts.Limit > 0 && opts.Limit < t {
		t = opts.Limit
	}
	atLeastT := func(r2 int64) (bool, error) {
		failpoint(FPNNProbe)
		ns.Probes++
		st, err := ix.srp.QuerySq(q, float64(r2), ws,
			QueryOpts{Limit: t, Budget: opts.Budget, Policy: pol.shrunk(int64(ns.NodesVisited))}, func(int32) {})
		ns.QueryStats.add(st)
		return st.Reported >= t, err
	}
	var maxR2 int64
	for j := 0; j < ix.dim; j++ {
		d := math.Max(math.Abs(q[j]-ix.bbLo[j]), math.Abs(ix.bbHi[j]-q[j]))
		maxR2 += int64(d) * int64(d)
	}
	full, err := atLeastT(maxR2)
	if err != nil {
		return nil, ns, err
	}
	r2Star := maxR2
	if full {
		lo, hi := int64(0), maxR2
		for lo < hi {
			mid := lo + (hi-lo)/2
			ok, err := atLeastT(mid)
			if err != nil {
				return nil, ns, err
			}
			if ok {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		r2Star = lo
	}
	ns.Probes++
	st, err := ix.srp.QuerySq(q, float64(r2Star), ws,
		QueryOpts{Budget: opts.Budget, Policy: pol.shrunk(int64(ns.NodesVisited))}, func(id int32) {
			res = append(res, NNResult{ID: id, Dist: q.L2(ix.ds.Point(id))})
		})
	ns.QueryStats.add(st)
	if err != nil {
		return res, ns, err
	}
	sort.Slice(res, func(a, b int) bool {
		if res[a].Dist != res[b].Dist {
			return res[a].Dist < res[b].Dist
		}
		return res[a].ID < res[b].ID
	})
	if len(res) > t {
		res = res[:t]
	}
	return res, ns, nil
}

// QueryWith runs Query under an execution policy.
//
// Deprecated: use Query with QueryOpts{Policy: pol}; it is the same search
// with the catalog-wide options signature.
func (ix *L2NN) QueryWith(q geom.Point, t int, ws []dataset.Keyword, pol ExecPolicy) ([]NNResult, NNStats, error) {
	return ix.Query(q, t, ws, QueryOpts{Policy: pol})
}

// Space returns the analytic space audit of the underlying SRP-KW index.
func (ix *L2NN) Space() SpaceBreakdown { return ix.srp.Space() }
