package core

import (
	"sort"

	"kwsc/internal/bitpack"
	"kwsc/internal/bits"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
)

// flatLayout is the cache-conscious form of a built Framework: the pointer
// tree of fnodes re-ordered into BFS (level) order and packed into contiguous
// struct-of-arrays slices. BFS order makes every node's children a contiguous
// id range — the multiway analog of the Eytzinger layout — so the child "list"
// is two int32s (childFirst, childCount) and a descent touches consecutive
// cache lines instead of chasing per-node slice headers. Node payloads move
// into shared arenas addressed by monotone start offsets:
//
//   - pivots:       one id arena + per-node [start, start+1) offsets;
//   - large keys:   sorted per node in one arena with the original tensor
//     numbering alongside (lookup by binary search — the per-node maps, with
//     their buckets and padding, are freed);
//   - mat lists:    delta-encoded via bitpack into fixed-size packed blocks in
//     one shared PackedLists arena, scanned block-at-a-time at query time;
//   - tensors:      every per-child L^k-bit non-emptiness array concatenated
//     word-aligned into one bits.Arena, addressed as tensorOff + child*stride.
//
// The layout is query-equivalent to the pointer form by construction: the
// traversal order, the stats counted, and every emitted id are identical
// (tested property-style in flat_test.go).
type flatLayout struct {
	// Node skeleton, BFS order. Children of node u are exactly the ids
	// [childFirst[u], childFirst[u]+childCount[u]), in original child order.
	cells      []spart.Cell
	nu         []int64
	l          []int32 // L = number of large keywords
	childFirst []int32
	childCount []int32

	// Pivot sets: pivotIDs[pivotStart[u]:pivotStart[u+1]].
	pivotStart []int32
	pivotIDs   []int32

	// Large keywords, sorted by keyword per node, parallel to largeIdx which
	// carries the original large-map value (the tensor axis index).
	largeStart []int32
	largeKeys  []dataset.Keyword
	largeIdx   []int32

	// Materialized small-keyword lists: keys sorted per node; matLists[i] is
	// the packed-block handle for matKeys[i] inside matArena.
	matStart []int32
	matKeys  []dataset.Keyword
	matLists []bitpack.List
	matArena bitpack.PackedLists

	// Non-emptiness tensors: node u's child ci occupies tensorStride[u] words
	// starting at tensorOff[u] + ci*tensorStride[u] in tensorArena.
	tensorOff    []int64
	tensorStride []int64
	tensorArena  bits.Arena

	// Packed partitioning coordinates: object id's point is
	// coords[id*pdim : (id+1)*pdim]. This re-lays out the f.pts input (freed
	// at Flatten) — the builder materializes those points one allocation each
	// (rank-space points especially), so the pointer layout pays a header
	// load plus a scattered heap read per candidate check; the arena makes
	// the same check two sequential reads. The audit treats coordinates as
	// input, not index structure, in both layouts.
	coords []float64
	pdim   int
}

// Flatten converts the index into the flat layout, releasing the pointer tree
// to the collector. It is idempotent and must not run concurrently with
// queries (flatten at startup, before serving). Queries, stats, and policy
// semantics are unchanged — only the memory layout is.
func (f *Framework) Flatten() {
	if f.flat != nil || len(f.nodes) == 0 {
		return
	}
	nn := len(f.nodes)
	// Pass 1: BFS over the pointer tree. order[newID] = oldID; a node's
	// children are assigned consecutive new ids the moment it is dequeued.
	order := make([]int32, 1, nn)
	fl := &flatLayout{
		cells:        make([]spart.Cell, nn),
		nu:           make([]int64, nn),
		l:            make([]int32, nn),
		childFirst:   make([]int32, nn),
		childCount:   make([]int32, nn),
		pivotStart:   make([]int32, nn+1),
		largeStart:   make([]int32, nn+1),
		matStart:     make([]int32, nn+1),
		tensorOff:    make([]int64, nn),
		tensorStride: make([]int64, nn),
	}
	for head := 0; head < len(order); head++ {
		n := &f.nodes[order[head]]
		fl.childFirst[head] = int32(len(order))
		fl.childCount[head] = int32(len(n.children))
		order = append(order, n.children...)
	}

	// Pass 2: pack payloads in the new order.
	var keyScratch []dataset.Keyword
	for newID, oldID := range order {
		n := &f.nodes[oldID]
		fl.cells[newID] = n.cell
		fl.nu[newID] = n.nu
		fl.l[newID] = n.l

		fl.pivotIDs = append(fl.pivotIDs, n.pivots...)
		fl.pivotStart[newID+1] = int32(len(fl.pivotIDs))

		keyScratch = keyScratch[:0]
		for w := range n.large {
			keyScratch = append(keyScratch, w)
		}
		sortKeywords(keyScratch)
		for _, w := range keyScratch {
			fl.largeKeys = append(fl.largeKeys, w)
			fl.largeIdx = append(fl.largeIdx, n.large[w])
		}
		fl.largeStart[newID+1] = int32(len(fl.largeKeys))

		keyScratch = keyScratch[:0]
		for w := range n.mat {
			keyScratch = append(keyScratch, w)
		}
		sortKeywords(keyScratch)
		for _, w := range keyScratch {
			fl.matKeys = append(fl.matKeys, w)
			fl.matLists = append(fl.matLists, fl.matArena.Append(n.mat[w]))
		}
		fl.matStart[newID+1] = int32(len(fl.matKeys))

		if len(n.tensors) > 0 {
			fl.tensorOff[newID] = fl.tensorArena.Words()
			fl.tensorStride[newID] = (tensorSize(int(n.l), f.k) + 63) / 64
			for _, t := range n.tensors {
				fl.tensorArena.AppendDense(t)
			}
		}
	}
	if len(f.pts) > 0 {
		fl.pdim = len(f.pts[0])
		fl.coords = make([]float64, len(f.pts)*fl.pdim)
		for i, p := range f.pts {
			copy(fl.coords[i*fl.pdim:(i+1)*fl.pdim], p)
		}
	}
	f.flat = fl
	f.nodes = nil
	f.pts = nil // all query-time reads go through fl.coords
	f.accountSpaceFlat()
}

// IsFlat reports whether the index has been converted to the flat layout.
func (f *Framework) IsFlat() bool { return f.flat != nil }

func sortKeywords(ws []dataset.Keyword) {
	sort.Slice(ws, func(a, b int) bool { return ws[a] < ws[b] })
}

// largeLookup is the flat replacement for the per-node large map: binary
// search over the node's sorted key range, returning the original tensor
// axis index. Manual search keeps the query path closure-free.
func (fl *flatLayout) largeLookup(u int32, w dataset.Keyword) (int32, bool) {
	lo, hi := fl.largeStart[u], fl.largeStart[u+1]
	end := hi
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if fl.largeKeys[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && fl.largeKeys[lo] == w {
		return fl.largeIdx[lo], true
	}
	return 0, false
}

// matLookup returns the index into matLists of node u's materialized list for
// w, or -1 when u has none (an fnode's mat map would have had no entry).
func (fl *flatLayout) matLookup(u int32, w dataset.Keyword) int32 {
	lo, hi := fl.matStart[u], fl.matStart[u+1]
	end := hi
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if fl.matKeys[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && fl.matKeys[lo] == w {
		return lo
	}
	return -1
}

// tensorGet reads the non-emptiness bit lin of node u's child ci.
func (fl *flatLayout) tensorGet(u, ci int32, lin int64) bool {
	return fl.tensorArena.Get(fl.tensorOff[u]+int64(ci)*fl.tensorStride[u], lin)
}

// checkAndEmitFlat is checkAndEmit reading through the packed coords arena.
// For rectangle queries (qLo/qHi cached by run) the containment test inlines
// the exact comparisons of Rect.ContainsPoint, replacing a per-candidate
// interface call plus pointer chase; other regions fall back to the
// interface over a coords subslice. Results are identical either way.
func (qc *qctx) checkAndEmitFlat(id int32, covered bool) {
	if !covered {
		fl := qc.f.flat
		base := int(id) * fl.pdim
		if qc.qLo != nil {
			for j, lo := range qc.qLo {
				if c := fl.coords[base+j]; c < lo || c > qc.qHi[j] {
					return
				}
			}
		} else if !qc.q.ContainsPoint(fl.coords[base : base+fl.pdim]) {
			return
		}
	}
	if qc.f.ds.HasAll(id, qc.ws) {
		qc.emit(id)
	}
}

// visitFlat is visit for the flat layout: the same traversal, stats, and stop
// points, reading through the struct-of-arrays view. The two must stay in
// lockstep — flat_test.go asserts byte-identical results and stats.
func (qc *qctx) visitFlat(u int32, rel geom.Relation) {
	if qc.stop() {
		return
	}
	f := qc.f
	fl := f.flat
	failpoint(FPFrameworkVisit)
	qc.st.NodesVisited++
	qc.st.Ops++
	covered := rel == geom.Covered
	if covered {
		qc.st.CoveredNodes++
	} else {
		qc.st.CrossingNodes++
	}

	if fl.childCount[u] == 0 {
		for _, id := range fl.pivotIDs[fl.pivotStart[u]:fl.pivotStart[u+1]] {
			qc.st.PivotChecks++
			qc.st.Ops++
			qc.checkAndEmitFlat(id, covered)
			if qc.stop() {
				return
			}
		}
		return
	}

	// Small-keyword selection mirrors visit: the first strictly smallest
	// materialized list in ws order wins; an absent list counts as length 0.
	smallSel := int32(-1)
	smallLen := -1
	allLarge := true
	for _, w := range qc.ws {
		if _, ok := fl.largeLookup(u, w); !ok {
			allLarge = false
			mi := fl.matLookup(u, w)
			l := 0
			if mi >= 0 {
				l = int(fl.matLists[mi].N)
			}
			if smallLen < 0 || l < smallLen {
				smallSel, smallLen = mi, l
			}
		}
	}
	if !allLarge {
		if smallSel < 0 {
			return // the chosen list is empty: nothing to scan
		}
		if cap(qc.blk) < bitpack.BlockSize {
			qc.blk = make([]int32, 0, bitpack.BlockSize)
		}
		for _, b := range fl.matArena.Blocks(fl.matLists[smallSel]) {
			for _, id := range fl.matArena.DecodeBlock(b, qc.blk[:0]) {
				qc.st.MatScanned++
				qc.st.Ops++
				qc.checkAndEmitFlat(id, covered)
				if qc.stop() {
					return
				}
			}
		}
		return
	}

	for _, id := range fl.pivotIDs[fl.pivotStart[u]:fl.pivotStart[u+1]] {
		qc.st.PivotChecks++
		qc.st.Ops++
		qc.checkAndEmitFlat(id, covered)
		if qc.stop() {
			return
		}
	}
	if cap(qc.sorted) < f.k {
		qc.sorted = make([]int32, f.k)
	}
	s := qc.sorted[:0]
	for _, w := range qc.ws {
		li, _ := fl.largeLookup(u, w)
		s = append(s, li)
	}
	qc.sorted = s
	sortInt32s(s)
	lin := tensorIndex(s, int(fl.l[u]))
	first, count := fl.childFirst[u], fl.childCount[u]
	for ci := int32(0); ci < count; ci++ {
		if !fl.tensorGet(u, ci, lin) {
			continue
		}
		child := first + ci
		crel := geom.Covered
		if !covered {
			crel = f.split.Relate(fl.cells[child], qc.q)
			if crel == geom.Disjoint {
				continue
			}
		}
		qc.visitFlat(child, crel)
		if qc.done {
			return
		}
	}
}

// crossingCostFlat is CrossingCost's traversal over the flat layout.
func (f *Framework) crossingCostFlat(q geom.Region, ws []dataset.Keyword) float64 {
	fl := f.flat
	var cost float64
	exp := 1 - 1/float64(f.k)
	var rec func(u int32)
	rec = func(u int32) {
		stopsHere := fl.childCount[u] == 0
		if !stopsHere {
			for _, w := range ws {
				if _, ok := fl.largeLookup(u, w); !ok {
					stopsHere = true
					break
				}
			}
		}
		if stopsHere {
			cost += pow(float64(fl.nu[u]), exp)
			return
		}
		cost++
		s := make([]int32, 0, f.k)
		for _, w := range ws {
			li, _ := fl.largeLookup(u, w)
			s = append(s, li)
		}
		sortInt32s(s)
		lin := tensorIndex(s, int(fl.l[u]))
		first, count := fl.childFirst[u], fl.childCount[u]
		for ci := int32(0); ci < count; ci++ {
			if !fl.tensorGet(u, ci, lin) {
				continue
			}
			if f.split.Relate(fl.cells[first+ci], q) == geom.Crossing {
				rec(first + ci)
			}
		}
	}
	if len(fl.cells) > 0 && f.split.Relate(fl.cells[0], q) == geom.Crossing {
		rec(0)
	}
	return cost
}

// accountSpaceFlat recomputes the space audit from the flat arenas, keeping
// the problem-specific terms (AuxWords, DocHashWords) that accrued outside
// the tree. Two int32s pack per word; the List handles count as two words.
func (f *Framework) accountSpaceFlat() {
	fl := f.flat
	s := SpaceBreakdown{AuxWords: f.space.AuxWords, DocHashWords: f.space.DocHashWords}
	nn := int64(len(fl.cells))
	// Skeleton SoA: cell (2 words: interface), nu, tensorOff, tensorStride,
	// plus l/childFirst/childCount/starts at half a word each.
	s.NodeWords = 5*nn + (3*nn)/2 + 2*nn
	s.PivotWords = (int64(len(fl.pivotIDs)) + 1) / 2
	s.LargeWords = int64(len(fl.largeKeys)) // key + idx = two int32s
	s.MatWords = fl.matArena.SpaceWords() + 2*int64(len(fl.matLists)) + int64(len(fl.matKeys))/2
	s.TensorBits = fl.tensorArena.SpaceBits()
	f.space = s
}

// numNodesFlat, maxPivotsFlat, heightFlat back the Framework accessors after
// flattening.
func (fl *flatLayout) numNodes() int { return len(fl.cells) }

func (fl *flatLayout) maxPivots() int {
	m := 0
	for u := range fl.cells {
		if fl.childCount[u] > 0 {
			if p := int(fl.pivotStart[u+1] - fl.pivotStart[u]); p > m {
				m = p
			}
		}
	}
	return m
}

func (fl *flatLayout) height() int {
	if len(fl.cells) == 0 {
		return -1
	}
	var rec func(u int32) int
	rec = func(u int32) int {
		h := 0
		first, count := fl.childFirst[u], fl.childCount[u]
		for ci := int32(0); ci < count; ci++ {
			if ch := rec(first+ci) + 1; ch > h {
				h = ch
			}
		}
		return h
	}
	return rec(0)
}
