package core

import (
	"fmt"
	"math"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// SRPKW is the spherical-range-reporting-with-keywords index of Corollary 6:
// points are lifted to the paraboloid in R^{d+1} (Appendix F), turning a
// d-dimensional sphere query into a single-halfspace LC-KW query answered by
// the SP-KW index in dimension d+1.
type SRPKW struct {
	ds  *dataset.Dataset
	sp  *SPKW
	dim int

	fam    family
	tracer obs.Tracer
}

// BuildSRPKW constructs the lifted index for k-keyword queries.
func BuildSRPKW(ds *dataset.Dataset, k int, opts ...BuildOption) (*SRPKW, error) {
	return BuildSRPKWWith(ds, k, resolveOpts(opts))
}

// BuildSRPKWWith is BuildSRPKW with an explicit options struct.
func BuildSRPKWWith(ds *dataset.Dataset, k int, opts BuildOpts) (*SRPKW, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	bt := obsBuildStart()
	lifted := make([]geom.Point, ds.Len())
	for i := range lifted {
		lifted[i] = geom.Lift(ds.Point(int32(i)))
	}
	// The lifted SP-KW index is internal to the reduction: untagged, so each
	// sphere query is counted once as srpkw.
	sp, err := BuildSPKW(ds, SPKWConfig{K: k, Points: lifted, Build: opts.inner()})
	if err != nil {
		return nil, err
	}
	ix := &SRPKW{ds: ds, sp: sp, dim: ds.Dim(), fam: opts.famFor(famSRPKW), tracer: opts.Tracer}
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

// Query reports every object inside the sphere whose document contains all
// keywords.
func (ix *SRPKW) Query(s *geom.Sphere, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "Query", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "Query", echoRegion(s, ws), ix.sp.K(), qt, &st, err, ix.tracer)
		}
	}()
	if err := validateSphere(s, ix.dim); err != nil {
		return QueryStats{}, err
	}
	hs := geom.LiftSphere(s)
	return ix.sp.QueryConstraints([]geom.Halfspace{hs}, ws, opts, report)
}

// QuerySq is Query for a sphere given by its squared radius; the L2NN-KW
// search of Corollary 7 uses it to binary-search exact integer squared
// distances.
func (ix *SRPKW) QuerySq(center geom.Point, radiusSq float64, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "QuerySq", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "QuerySq", echoQuery(center, ws), ix.sp.K(), qt, &st, err, ix.tracer)
		}
	}()
	if err := validatePoint(center, ix.dim); err != nil {
		return QueryStats{}, err
	}
	if math.IsNaN(radiusSq) || radiusSq < 0 {
		return QueryStats{}, fmt.Errorf("%w: squared radius %v", ErrInvalidQuery, radiusSq)
	}
	hs := geom.LiftSphereSq(center, radiusSq)
	return ix.sp.QueryConstraints([]geom.Halfspace{hs}, ws, opts, report)
}

// Collect is Query returning a freshly allocated, caller-owned slice.
func (ix *SRPKW) Collect(s *geom.Sphere, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return ix.CollectInto(s, ws, opts, nil)
}

// CollectInto is Collect appending into buf, reusing its capacity; the
// returned slice aliases buf only.
func (ix *SRPKW) CollectInto(s *geom.Sphere, ws []dataset.Keyword, opts QueryOpts, buf []int32) (out []int32, st QueryStats, err error) {
	qt := obsBegin(ix.fam, "CollectInto", ix.tracer)
	defer func() {
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "CollectInto", echoRegion(s, ws), ix.sp.K(), qt, &st, err, ix.tracer)
		}
	}()
	if err := validateSphere(s, ix.dim); err != nil {
		return nil, QueryStats{}, err
	}
	hs := geom.LiftSphere(s)
	return ix.sp.CollectConstraintsInto([]geom.Halfspace{hs}, ws, opts, buf)
}

// Space returns the analytic space audit.
func (ix *SRPKW) Space() SpaceBreakdown { return ix.sp.Space() }

// K returns the keyword arity.
func (ix *SRPKW) K() int { return ix.sp.K() }
