package core

import (
	"fmt"
	"math"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// SRPKW is the spherical-range-reporting-with-keywords index of Corollary 6:
// points are lifted to the paraboloid in R^{d+1} (Appendix F), turning a
// d-dimensional sphere query into a single-halfspace LC-KW query answered by
// the SP-KW index in dimension d+1.
type SRPKW struct {
	ds  *dataset.Dataset
	sp  *SPKW
	dim int
}

// BuildSRPKW constructs the lifted index for k-keyword queries.
func BuildSRPKW(ds *dataset.Dataset, k int) (*SRPKW, error) {
	return BuildSRPKWWith(ds, k, BuildOpts{})
}

// BuildSRPKWWith is BuildSRPKW with explicit construction options.
func BuildSRPKWWith(ds *dataset.Dataset, k int, opts BuildOpts) (*SRPKW, error) {
	lifted := make([]geom.Point, ds.Len())
	for i := range lifted {
		lifted[i] = geom.Lift(ds.Point(int32(i)))
	}
	sp, err := BuildSPKW(ds, SPKWConfig{K: k, Points: lifted, Build: opts})
	if err != nil {
		return nil, err
	}
	return &SRPKW{ds: ds, sp: sp, dim: ds.Dim()}, nil
}

// Query reports every object inside the sphere whose document contains all
// keywords.
func (ix *SRPKW) Query(s *geom.Sphere, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (QueryStats, error) {
	if err := validateSphere(s, ix.dim); err != nil {
		return QueryStats{}, err
	}
	hs := geom.LiftSphere(s)
	return ix.sp.QueryConstraints([]geom.Halfspace{hs}, ws, opts, report)
}

// QuerySq is Query for a sphere given by its squared radius; the L2NN-KW
// search of Corollary 7 uses it to binary-search exact integer squared
// distances.
func (ix *SRPKW) QuerySq(center geom.Point, radiusSq float64, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (QueryStats, error) {
	if err := validatePoint(center, ix.dim); err != nil {
		return QueryStats{}, err
	}
	if math.IsNaN(radiusSq) || radiusSq < 0 {
		return QueryStats{}, fmt.Errorf("%w: squared radius %v", ErrInvalidQuery, radiusSq)
	}
	hs := geom.LiftSphereSq(center, radiusSq)
	return ix.sp.QueryConstraints([]geom.Halfspace{hs}, ws, opts, report)
}

// Collect is Query returning a freshly allocated, caller-owned slice.
func (ix *SRPKW) Collect(s *geom.Sphere, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return ix.CollectInto(s, ws, opts, nil)
}

// CollectInto is Collect appending into buf, reusing its capacity; the
// returned slice aliases buf only.
func (ix *SRPKW) CollectInto(s *geom.Sphere, ws []dataset.Keyword, opts QueryOpts, buf []int32) ([]int32, QueryStats, error) {
	if err := validateSphere(s, ix.dim); err != nil {
		return nil, QueryStats{}, err
	}
	hs := geom.LiftSphere(s)
	return ix.sp.CollectConstraintsInto([]geom.Halfspace{hs}, ws, opts, buf)
}

// Space returns the analytic space audit.
func (ix *SRPKW) Space() SpaceBreakdown { return ix.sp.Space() }

// K returns the keyword arity.
func (ix *SRPKW) K() int { return ix.sp.K() }
