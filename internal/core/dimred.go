package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
	"kwsc/internal/spart"
)

// ORPKWHigh is the ORP-KW index for dimension d >= 3 of Theorem 2, built by
// the dimension-reduction technique of Section 4: a tree T over the
// x-dimension whose node at level l has fanout f_u = 2 * 2^(k^level)
// (equation (10)), children produced by an f_u-balanced cut (footnote 13's
// greedy packing), and a secondary (d-1)-dimensional ORP-KW index per node
// over that node's active set. The recursion bottoms out at d = 2 with the
// kd-tree framework of Theorem 1. Space grows by one O(log log N) factor per
// dimension (Lemma 11); query time stays O(N^{1-1/k} (1 + OUT^{1/k})).
type ORPKWHigh struct {
	ds       *dataset.Dataset
	rs       *dataset.RankSpace
	k, dim   int
	lastPair []geom.Point // rank coords of the final two dimensions
	root     *drTree
	space    SpaceBreakdown
	flat     bool // build secondaries in the flat layout (see Flatten)

	gate *parGate // build-time goroutine budget, shared with secondaries

	fam    family     // metrics family (famNone when built with NoObs)
	tracer obs.Tracer // per-index tracer, may be nil

	// rqPool recycles rank-space query rectangles (see ORPKW.rqPool).
	rqPool sync.Pool
}

// drTree is the x-dimension tree cutting rank dimension off; its nodes carry
// secondary indexes over dimensions [off+1, dim).
type drTree struct {
	owner *ORPKWHigh
	off   int
	nodes []drNode
	pend  []pendingSec // nodes whose secondary structures remain to build
}

// pendingSec defers one node's secondary structure: the tree skeleton is
// built first (so the nodes slice stops reallocating), then the secondaries
// — the dominant construction cost, one per internal node over that node's
// full active set — are filled in, in parallel across nodes when the gate
// has budget.
type pendingSec struct {
	idx  int32
	objs []int32
}

type drNode struct {
	level            int
	fu               int64
	sigmaLo, sigmaHi float64 // sigma(u): rank range on dimension off
	pivots           []int32 // the cut separators e*_1..e*_{f-1}; for leaves, all objects
	children         []int32
	secKD            *Framework // when d - off - 1 == 2
	secDR            *drTree    // when d - off - 1 >= 3
}

const drLeafSize = 8

// BuildORPKWHigh constructs the index; the dataset must have dimension >= 3.
func BuildORPKWHigh(ds *dataset.Dataset, k int, opts ...BuildOption) (*ORPKWHigh, error) {
	return BuildORPKWHighWith(ds, k, resolveOpts(opts))
}

// BuildORPKWHighWith is BuildORPKWHigh with explicit construction options.
// The goroutine budget is shared between the x-dimension tree and every
// per-node secondary framework build.
func BuildORPKWHighWith(ds *dataset.Dataset, k int, opts BuildOpts) (*ORPKWHigh, error) {
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	if ds.Dim() < 3 {
		return nil, fmt.Errorf("core: ORPKWHigh requires d >= 3 (got d=%d); use BuildORPKW", ds.Dim())
	}
	if k < 2 {
		return nil, fmt.Errorf("core: k >= 2 required, got %d", k)
	}
	bt := obsBuildStart()
	rs := dataset.NewRankSpace(ds)
	ix := &ORPKWHigh{
		ds: ds, rs: rs, k: k, dim: ds.Dim(), gate: newParGate(opts.Parallelism),
		flat: opts.Flat, fam: opts.famFor(famORPKWHigh), tracer: opts.Tracer,
	}
	ix.lastPair = make([]geom.Point, ds.Len())
	for i := range ix.lastPair {
		id := int32(i)
		ix.lastPair[i] = geom.Point{
			float64(rs.Rank(id, ix.dim-2)),
			float64(rs.Rank(id, ix.dim-1)),
		}
	}
	objs := make([]int32, ds.Len())
	for i := range objs {
		objs[i] = int32(i)
	}
	t, err := ix.buildTree(0, objs)
	if err != nil {
		return nil, err
	}
	ix.root = t
	ix.gate = nil
	ix.accountSpace()
	obsBuildEnd(ix.fam, bt)
	return ix, nil
}

// buildTree builds the x-dimension tree cutting dimension off over objs:
// first the skeleton (cuts, pivots, children), then — once the nodes slice
// is stable — the deferred secondary structures, fanned out across
// goroutines as the gate's budget allows.
func (ix *ORPKWHigh) buildTree(off int, objs []int32) (*drTree, error) {
	t := &drTree{owner: ix, off: off}
	if _, err := t.build(objs, 0); err != nil {
		return nil, err
	}
	if err := t.buildSecondaries(); err != nil {
		return nil, err
	}
	t.pend = nil
	return t, nil
}

// buildSecondaries resolves the pending list. Each task touches only its own
// node (distinct idx), so the only synchronization needed is the join and
// the first-error capture.
func (t *drTree) buildSecondaries() error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	gate := t.owner.gate
	for i := range t.pend {
		p := t.pend[i]
		if len(p.objs) >= parallelCutoff && gate.tryAcquire() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer gate.release()
				if err := t.buildSecondary(p.idx, p.objs); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}()
			continue
		}
		if err := t.buildSecondary(p.idx, p.objs); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	}
	wg.Wait()
	return firstErr
}

func (t *drTree) build(objs []int32, level int) (int32, error) {
	ix := t.owner
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, drNode{level: level})
	n := &t.nodes[idx]
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, id := range objs {
		r := float64(ix.rs.Rank(id, t.off))
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	n.sigmaLo, n.sigmaHi = lo, hi
	if len(objs) <= drLeafSize {
		n.pivots = append([]int32(nil), objs...)
		return idx, nil
	}
	n.fu = fanoutAt(ix.k, level, int64(len(objs))*4+4)
	// f_u-balanced cut (footnote 13): sort by the rank on dimension off
	// (ranks are distinct, so no ties) and pack greedily by weight.
	order := append([]int32(nil), objs...)
	sort.Slice(order, func(a, b int) bool {
		return ix.rs.Rank(order[a], t.off) < ix.rs.Rank(order[b], t.off)
	})
	var weight int64
	for _, id := range order {
		weight += int64(ix.ds.DocLen(id))
	}
	budget := weight / n.fu
	if budget < 1 {
		budget = 1
	}
	var groups [][]int32
	var pivots []int32
	cur := []int32{}
	var acc int64
	for _, id := range order {
		w := int64(ix.ds.DocLen(id))
		if acc+w > budget && int64(len(groups)) < n.fu-1 {
			pivots = append(pivots, id)
			groups = append(groups, cur)
			cur = nil
			acc = 0
			continue
		}
		cur = append(cur, id)
		acc += w
	}
	groups = append(groups, cur)
	nonEmpty := 0
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		// Everything became a pivot: the node is a leaf (Section 4's "if
		// D_1..D_f are all empty, make u a leaf").
		t.nodes[idx].pivots = pivots
		return idx, nil
	}
	// Secondary structure over the full active set (pivots included) —
	// deferred until the skeleton is complete (see buildSecondaries).
	t.pend = append(t.pend, pendingSec{idx: idx, objs: objs})
	t.nodes[idx].pivots = pivots
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		child, err := t.build(g, level+1)
		if err != nil {
			return idx, err
		}
		t.nodes[idx].children = append(t.nodes[idx].children, child)
	}
	return idx, nil
}

func (t *drTree) buildSecondary(idx int32, objs []int32) error {
	ix := t.owner
	rem := ix.dim - t.off - 1 // dimensions the secondary must handle
	switch {
	case rem == 2:
		fw, err := BuildFramework(ix.ds, FrameworkConfig{
			K:        ix.k,
			Splitter: &spart.KD{Dim: 2},
			Points:   ix.lastPair,
			Objects:  append([]int32(nil), objs...),
			// Share the owner's goroutine budget; Parallelism 1 keeps the
			// secondary sequential when the owner has no gate at all.
			Parallelism: 1,
			Flat:        ix.flat,
			gate:        ix.gate,
		})
		if err != nil {
			return err
		}
		t.nodes[idx].secKD = fw
	case rem >= 3:
		sub, err := ix.buildTree(t.off+1, objs)
		if err != nil {
			return err
		}
		t.nodes[idx].secDR = sub
	default:
		return fmt.Errorf("core: dimension-reduction invariant broken: %d remaining dims", rem)
	}
	return nil
}

// fanoutAt evaluates f_u = 2 * 2^(k^level) (equation (10)), capped so it
// never overflows; cap is an upper bound past which the exact value no
// longer matters (the cut degenerates to "every object is a pivot").
func fanoutAt(k, level int, cap int64) int64 {
	e := 1.0
	for i := 0; i < level; i++ {
		e *= float64(k)
		if e > 60 {
			return cap
		}
	}
	f := int64(2) << int64(e)
	if f > cap || f < 2 {
		return cap
	}
	return f
}

// Query reports every object in q (original coordinates) whose document
// contains all k keywords.
func (ix *ORPKWHigh) Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(ix.fam, "Query", ix.tracer)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError("ORPKWHigh.Query", r, echoRegion(q, ws))
		}
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "Query", echoRegion(q, ws), ix.k, qt, &st, err, ix.tracer)
		}
	}()
	if err := ix.checkQuery(q, ws); err != nil {
		return QueryStats{}, err
	}
	rq := ix.getRankRect()
	defer ix.rqPool.Put(rq)
	if !ix.rs.ToRankRectInto(q, rq) {
		return QueryStats{}, nil
	}
	opts = opts.normalized()
	qc := getDrQctx()
	qc.ix, qc.rq, qc.ws, qc.opts, qc.report = ix, rq, ws, opts, report
	qc.pst = newPolState(opts.Policy)
	ix.root.visit(0, qc)
	st, err = qc.st, qc.stopErr
	putDrQctx(qc)
	return st, err
}

func (ix *ORPKWHigh) checkQuery(q *geom.Rect, ws []dataset.Keyword) error {
	if err := dataset.ValidateKeywords(ws); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	if len(ws) != ix.k {
		return fmt.Errorf("%w: query carries %d keywords but the index was built for k=%d", ErrInvalidQuery, len(ws), ix.k)
	}
	return validateRect(q, ix.dim)
}

// Collect is Query returning a freshly allocated, caller-owned slice.
func (ix *ORPKWHigh) Collect(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return ix.CollectInto(q, ws, opts, nil)
}

// CollectInto is Collect appending into buf, reusing its capacity. The
// returned slice aliases buf only — never pooled scratch.
func (ix *ORPKWHigh) CollectInto(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, buf []int32) (out []int32, st QueryStats, err error) {
	qt := obsBegin(ix.fam, "CollectInto", ix.tracer)
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, newPanicError("ORPKWHigh.CollectInto", r, echoRegion(q, ws))
		}
		if obsEnd(ix.fam, qt, &st, err, ix.tracer) {
			obsSpan(ix.fam, "CollectInto", echoRegion(q, ws), ix.k, qt, &st, err, ix.tracer)
		}
	}()
	if err := ix.checkQuery(q, ws); err != nil {
		return nil, QueryStats{}, err
	}
	rq := ix.getRankRect()
	defer ix.rqPool.Put(rq)
	if !ix.rs.ToRankRectInto(q, rq) {
		return buf[:0], QueryStats{}, nil
	}
	opts = opts.normalized()
	qc := getDrQctx()
	qc.ix, qc.rq, qc.ws, qc.opts = ix, rq, ws, opts
	qc.pst = newPolState(opts.Policy)
	qc.collecting = true
	scratch := buf == nil
	if scratch {
		qc.out = qc.res[:0]
	} else {
		qc.out = buf[:0]
	}
	ix.root.visit(0, qc)
	out, st, err = qc.out, qc.st, qc.stopErr
	if scratch {
		qc.res = out[:0] // keep the grown scratch for the next query
		if len(out) > 0 {
			out = append([]int32(nil), out...)
		} else {
			out = nil
		}
	}
	putDrQctx(qc) // clears qc.out: the pool never retains the returned slice
	return out, st, err
}

func (ix *ORPKWHigh) getRankRect() *geom.Rect {
	if rq, ok := ix.rqPool.Get().(*geom.Rect); ok {
		return rq
	}
	return &geom.Rect{Lo: make([]float64, ix.dim), Hi: make([]float64, ix.dim)}
}

// drQctx is the per-query traversal state of the dimension-reduction tree.
// Contexts are pooled; the secondary-query rectangle and the emit closure
// are built once per context and survive between queries.
type drQctx struct {
	ix         *ORPKWHigh
	rq         *geom.Rect
	ws         []dataset.Keyword
	opts       QueryOpts
	report     func(int32)
	collecting bool
	out        []int32
	res        []int32 // scratch accumulator for buf-less CollectInto
	st         QueryStats
	done       bool
	pst        polState // ExecPolicy progress (zero when no policy is set)
	stopErr    error    // typed policy error that ended the traversal

	secRect geom.Rect   // scratch rectangle for type-1 secondary queries
	emitFn  func(int32) // persistent closure handed to secondary queries
}

var drQctxPool = sync.Pool{New: func() any {
	qc := &drQctx{secRect: geom.Rect{Lo: make([]float64, 2), Hi: make([]float64, 2)}}
	qc.emitFn = qc.deliver
	return qc
}}

func getDrQctx() *drQctx { return drQctxPool.Get().(*drQctx) }

func putDrQctx(qc *drQctx) {
	qc.ix, qc.rq, qc.ws, qc.report, qc.out = nil, nil, nil, nil, nil
	qc.res = qc.res[:0]
	qc.opts, qc.st = QueryOpts{}, QueryStats{}
	qc.collecting, qc.done = false, false
	qc.pst, qc.stopErr = polState{}, nil
	drQctxPool.Put(qc)
}

// deliver routes one reported object id to the caller (Reported counting is
// the caller's job: pivot checks count directly, secondary queries are
// merged via QueryStats.add).
func (qc *drQctx) deliver(id int32) {
	if qc.collecting {
		qc.out = append(qc.out, id)
	} else {
		qc.report(id)
	}
}

func (qc *drQctx) stop() bool {
	if qc.done {
		return true
	}
	if qc.opts.Limit > 0 && qc.st.Reported >= qc.opts.Limit {
		qc.st.Truncated = true
		qc.done = true
		return true
	}
	if qc.opts.Budget > 0 && qc.st.Ops > qc.opts.Budget {
		qc.st.BudgetHit = true
		qc.done = true
		return true
	}
	if qc.pst.active {
		if err := qc.pst.check(&qc.st, int64(qc.st.NodesVisited)); err != nil {
			qc.stopErr = err
			qc.done = true
			return true
		}
	}
	return false
}

// containsFrom checks the rank rectangle on dimensions [from, dim) only:
// dimensions below from are guaranteed by the ancestors' sigma containment.
func (qc *drQctx) containsFrom(id int32, from int) bool {
	for j := from; j < qc.ix.dim; j++ {
		r := float64(qc.ix.rs.Rank(id, j))
		if r < qc.rq.Lo[j] || r > qc.rq.Hi[j] {
			return false
		}
	}
	return true
}

func (qc *drQctx) checkPivot(id int32, from int) {
	qc.st.PivotChecks++
	qc.st.Ops++
	if qc.containsFrom(id, from) && qc.ix.ds.HasAll(id, qc.ws) {
		qc.deliver(id)
		qc.st.Reported++
	}
}

func (t *drTree) visit(u int32, qc *drQctx) {
	if qc.stop() {
		return
	}
	n := &t.nodes[u]
	lo, hi := qc.rq.Lo[t.off], qc.rq.Hi[t.off]
	if n.sigmaHi < lo || n.sigmaLo > hi {
		return // sigma(u) disjoint from q's range on this dimension
	}
	failpoint(FPDimredVisit)
	qc.st.NodesVisited++
	qc.st.Ops++
	if len(n.children) == 0 && n.secKD == nil && n.secDR == nil {
		// Leaf: scan all objects.
		for _, id := range n.pivots {
			qc.checkPivot(id, t.off)
			if qc.stop() {
				return
			}
		}
		return
	}
	if n.sigmaLo >= lo && n.sigmaHi <= hi {
		// Type 1: sigma(u) contained in the query range; delegate to the
		// secondary structure over the remaining dimensions.
		qc.st.Type1Nodes++
		t.querySecondary(n, qc)
		return
	}
	// Type 2: examine the pivot separators, recurse into overlapping
	// children. At most two children per node can remain type 2.
	qc.st.Type2Nodes++
	for _, id := range n.pivots {
		qc.checkPivot(id, t.off)
		if qc.stop() {
			return
		}
	}
	for _, c := range n.children {
		t.visit(c, qc)
		if qc.done {
			return
		}
	}
}

func (t *drTree) querySecondary(n *drNode, qc *drQctx) {
	switch {
	case n.secKD != nil:
		sub := &qc.secRect
		sub.Lo[0], sub.Lo[1] = qc.rq.Lo[qc.ix.dim-2], qc.rq.Lo[qc.ix.dim-1]
		sub.Hi[0], sub.Hi[1] = qc.rq.Hi[qc.ix.dim-2], qc.rq.Hi[qc.ix.dim-1]
		opts := qc.remainingOpts()
		st, err := n.secKD.Query(sub, qc.ws, opts, qc.emitFn)
		qc.st.add(st)
		if err != nil {
			// A policy stop (or converted panic) inside the secondary ends
			// the whole query; the merged stats carry the cause flags.
			qc.stopErr = err
			qc.done = true
			return
		}
		if st.Truncated || st.BudgetHit {
			qc.done = true
		}
	case n.secDR != nil:
		n.secDR.visit(0, qc)
	}
}

// remainingOpts shrinks the caller's limit/budget — and the policy's node
// budget — by what has been consumed. The policy deadline and cancellation
// channel are absolute and pass through unchanged.
func (qc *drQctx) remainingOpts() QueryOpts {
	o := qc.opts
	if o.Limit > 0 {
		o.Limit -= qc.st.Reported
		if o.Limit <= 0 {
			o.Limit = 1 // stop() would have fired; defensive
		}
	}
	if o.Budget > 0 {
		o.Budget -= qc.st.Ops
		if o.Budget <= 0 {
			o.Budget = 1
		}
	}
	o.Policy = o.Policy.shrunk(int64(qc.st.NodesVisited))
	return o
}

func (ix *ORPKWHigh) accountSpace() {
	var s SpaceBreakdown
	var walk func(t *drTree)
	walk = func(t *drTree) {
		for i := range t.nodes {
			n := &t.nodes[i]
			s.NodeWords += 6 + int64(len(n.children))
			s.PivotWords += int64(len(n.pivots))
			if n.secKD != nil {
				sec := n.secKD.Space()
				s.NodeWords += sec.NodeWords
				s.PivotWords += sec.PivotWords
				s.LargeWords += sec.LargeWords
				s.MatWords += sec.MatWords
				s.TensorBits += sec.TensorBits
			}
			if n.secDR != nil {
				walk(n.secDR)
			}
		}
	}
	walk(ix.root)
	s.AuxWords = ix.rs.SpaceWords() + int64(len(ix.lastPair))*2
	s.DocHashWords = ix.ds.DocSpaceWords()
	ix.space = s
}

// Flatten converts every secondary framework of the dimension-reduction tree
// to the flat layout in place (the x-dimension skeleton is already compact:
// a handful of words per node). It must not run concurrently with queries.
func (ix *ORPKWHigh) Flatten() {
	var walk func(t *drTree)
	walk = func(t *drTree) {
		for i := range t.nodes {
			n := &t.nodes[i]
			if n.secKD != nil {
				n.secKD.Flatten()
			}
			if n.secDR != nil {
				walk(n.secDR)
			}
		}
	}
	walk(ix.root)
	ix.accountSpace()
}

// Space returns the analytic space audit.
func (ix *ORPKWHigh) Space() SpaceBreakdown { return ix.space }

// K returns the keyword arity.
func (ix *ORPKWHigh) K() int { return ix.k }

// Levels returns the number of levels of the top x-dimension tree
// (Proposition 1 predicts O(log log N)).
func (ix *ORPKWHigh) Levels() int {
	m := 0
	for i := range ix.root.nodes {
		if l := ix.root.nodes[i].level; l > m {
			m = l
		}
	}
	return m + 1
}

// MaxFanout returns the largest realized fanout f_u in the top tree
// (Proposition 3 predicts O(N^{1-1/k})).
func (ix *ORPKWHigh) MaxFanout() int64 {
	var m int64
	for i := range ix.root.nodes {
		if f := int64(len(ix.root.nodes[i].children)); f > m {
			m = f
		}
	}
	return m
}

// Type2Profile runs the query and returns, per level of the top tree, how
// many type-2 nodes were visited — the quantity Figure 2 illustrates (at
// most two per level).
func (ix *ORPKWHigh) Type2Profile(q *geom.Rect, ws []dataset.Keyword) ([]int, error) {
	rq, ok := ix.rs.ToRankRect(q)
	if !ok {
		return nil, nil
	}
	var levels []int
	var rec func(u int32)
	t := ix.root
	rec = func(u int32) {
		n := &t.nodes[u]
		lo, hi := rq.Lo[t.off], rq.Hi[t.off]
		if n.sigmaHi < lo || n.sigmaLo > hi {
			return
		}
		if n.sigmaLo >= lo && n.sigmaHi <= hi {
			return // type 1
		}
		for len(levels) <= n.level {
			levels = append(levels, 0)
		}
		levels[n.level]++
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(0)
	return levels, nil
}
