package core

import (
	"sync"
	"sync/atomic"
)

// Failpoints inject faults mid-traversal so tests can prove the resilience
// layer degrades gracefully instead of crashing or hanging: a registered
// action (panic, stall, burn budget) runs at a named site inside the query
// path. The registry is always compiled in; when nothing is armed the whole
// mechanism costs a single atomic load per site, so the hot path stays
// allocation-free and branch-predictable.
//
// Arm/Disarm are test-only by convention; they are exported (rather than
// build-tagged) so the facade package's degraded-mode tests can reach them.

// Failpoint site names.
const (
	// FPFrameworkVisit fires once per node visit of the Section 3 framework
	// traversal (ORP-KW d<=2, SP-KW, SRP-KW, k-SI all route through it).
	FPFrameworkVisit = "framework/visit"
	// FPDimredVisit fires once per node visit of the Section 4
	// dimension-reduction tree (ORP-KW d>=3).
	FPDimredVisit = "dimred/visit"
	// FPBatchQuery fires once per query claimed by a batch worker.
	FPBatchQuery = "batch/query"
	// FPDynamicBucket fires once per Bentley–Saxe bucket scanned by a
	// dynamic-index query.
	FPDynamicBucket = "dynamic/bucket"
	// FPNNProbe fires once per range probe issued by a nearest-neighbor
	// search.
	FPNNProbe = "nn/probe"
)

var (
	fpArmed   atomic.Int32 // number of armed failpoints; 0 short-circuits
	fpMu      sync.Mutex
	fpActions = map[string]func(){}
)

// ArmFailpoint registers action to run whenever the named site is reached.
// Re-arming a site replaces its action. The action runs on the querying
// goroutine and may panic, sleep, or close channels.
func ArmFailpoint(name string, action func()) {
	fpMu.Lock()
	defer fpMu.Unlock()
	if _, dup := fpActions[name]; !dup {
		fpArmed.Add(1)
	}
	fpActions[name] = action
}

// DisarmFailpoint removes the named site's action.
func DisarmFailpoint(name string) {
	fpMu.Lock()
	defer fpMu.Unlock()
	if _, ok := fpActions[name]; ok {
		delete(fpActions, name)
		fpArmed.Add(-1)
	}
}

// DisarmAllFailpoints removes every armed action (test cleanup).
func DisarmAllFailpoints() {
	fpMu.Lock()
	defer fpMu.Unlock()
	for name := range fpActions {
		delete(fpActions, name)
	}
	fpArmed.Store(0)
}

// Failpoint runs the named site's armed action, if any. It is exported so
// sibling packages hosting their own sites (the wal durability layer) share
// one registry with the query-path sites above.
func Failpoint(name string) { failpoint(name) }

// failpoint runs the site's armed action, if any.
func failpoint(name string) {
	if fpArmed.Load() == 0 {
		return
	}
	fpMu.Lock()
	action := fpActions[name]
	fpMu.Unlock()
	if action != nil {
		action()
	}
}
