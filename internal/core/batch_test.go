package core

import (
	"math/rand"
	"testing"

	"kwsc/internal/workload"
)

func makeBatch(rng *rand.Rand, n int) []RectQuery {
	qs := make([]RectQuery, n)
	for i := range qs {
		qs[i] = RectQuery{
			Rect:     workload.RandRect(rng, 2, 0.3),
			Keywords: workload.RandKeywords(rng, 20, 2),
		}
	}
	return qs
}

func TestQueryBatchMatchesSequential(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 800, Dim: 2, Vocab: 20, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	queries := makeBatch(rng, 40)
	for _, par := range []int{0, 1, 4, 100} {
		results := ix.QueryBatch(queries, par)
		if len(results) != len(queries) {
			t.Fatalf("par=%d: %d results for %d queries", par, len(results), len(queries))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("par=%d query %d: %v", par, i, r.Err)
			}
			want := ds.Filter(queries[i].Rect, queries[i].Keywords)
			if len(r.IDs) != len(want) {
				t.Fatalf("par=%d query %d: %d results, want %d", par, i, len(r.IDs), len(want))
			}
		}
	}
}

func TestQueryBatchErrorsSurface(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 100, Dim: 2, Vocab: 10, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	queries := makeBatch(rng, 5)
	queries[2].Keywords = queries[2].Keywords[:1] // wrong arity
	results := ix.QueryBatch(queries, 3)
	if results[2].Err == nil {
		t.Fatal("bad query did not surface its error")
	}
	for i, r := range results {
		if i != 2 && r.Err != nil {
			t.Fatalf("healthy query %d errored: %v", i, r.Err)
		}
	}
}

func TestQueryBatchHighDim(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 5, Objects: 600, Dim: 3, Vocab: 15, DocLen: 4})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	queries := make([]RectQuery, 20)
	for i := range queries {
		queries[i] = RectQuery{
			Rect:     workload.RandRect(rng, 3, 0.5),
			Keywords: workload.RandKeywords(rng, 15, 2),
		}
	}
	results := ix.QueryBatch(queries, 4)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		want := ds.Filter(queries[i].Rect, queries[i].Keywords)
		if len(r.IDs) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(r.IDs), len(want))
		}
	}
}

func TestQueryBatchEmpty(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 7, Objects: 50, Dim: 2, Vocab: 10, DocLen: 3})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.QueryBatch(nil, 4); len(res) != 0 {
		t.Fatal("empty batch must yield empty results")
	}
}
