package core

import (
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

func TestMultiKValidation(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 1, Objects: 50, Dim: 2, Vocab: 10, DocLen: 4})
	if _, err := BuildMultiK(ds, 1); err == nil {
		t.Fatal("kMax=1 must be rejected")
	}
	if _, err := BuildMultiK(ds, 20); err == nil {
		t.Fatal("huge kMax must be rejected")
	}
	m, err := BuildMultiK(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.KMax() != 3 {
		t.Fatal("KMax accessor wrong")
	}
	if _, _, err := m.Collect(geom.UniverseRect(2), nil, QueryOpts{}); err == nil {
		t.Fatal("zero keywords must error")
	}
}

func TestMultiKAllArities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := make([]dataset.Object, 600)
	for i := range objs {
		doc := make([]dataset.Keyword, 5)
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(9))
		}
		objs[i] = dataset.Object{Point: geom.Point{rng.Float64(), rng.Float64()}, Doc: doc}
	}
	ds := dataset.MustNew(objs)
	m, err := BuildMultiK(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for arity := 1; arity <= 6; arity++ { // 5 and 6 exceed kMax: filter path
		for trial := 0; trial < 10; trial++ {
			q := workload.RandRect(rng, 2, 0.6)
			ws := workload.RandKeywords(rng, 9, arity)
			got, _, err := m.Collect(q, ws, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			equalIDs(t, got, ds.Filter(q, ws), "multik")
		}
	}
}

func TestMultiKSingleKeywordLimit(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 400, Dim: 2, Vocab: 5, DocLen: 3})
	m, err := BuildMultiK(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := m.Collect(geom.UniverseRect(2), []dataset.Keyword{0}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5 {
		t.Skip("not enough single-keyword matches")
	}
	got, st, err := m.Collect(geom.UniverseRect(2), []dataset.Keyword{0}, QueryOpts{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !st.Truncated {
		t.Fatalf("limit: got %d truncated=%v", len(got), st.Truncated)
	}
}

func TestMultiKOverArityLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	objs := make([]dataset.Object, 300)
	for i := range objs {
		objs[i] = dataset.Object{
			Point: geom.Point{rng.Float64(), rng.Float64()},
			Doc:   []dataset.Keyword{0, 1, 2, 3},
		}
	}
	ds := dataset.MustNew(objs)
	m, err := BuildMultiK(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := m.Collect(geom.UniverseRect(2), []dataset.Keyword{0, 1, 2, 3}, QueryOpts{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || !st.Truncated {
		t.Fatalf("over-arity limit: got %d truncated=%v", len(got), st.Truncated)
	}
	if st.Reported != 7 {
		t.Fatalf("Reported = %d after filtering, want 7", st.Reported)
	}
}

func TestMultiK3D(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 5, Objects: 500, Dim: 3, Vocab: 12, DocLen: 4})
	m, err := BuildMultiK(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 10; trial++ {
		q := workload.RandRect(rng, 3, 0.7)
		ws := workload.RandKeywords(rng, 12, 2+trial%2)
		got, _, err := m.Collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(q, ws), "multik-3d")
	}
}

func TestMultiKSpace(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 6, Objects: 200, Dim: 2, Vocab: 20, DocLen: 4})
	m, err := BuildMultiK(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Space().TotalWords(64) <= 0 {
		t.Fatal("space audit empty")
	}
}
