package core

import (
	"fmt"
	"sort"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// MultiK removes the paper's fixed-arity restriction for the flagship
// ORP-KW problem by maintaining one Theorem 1/Theorem 2 index per keyword
// arity in [2, KMax]: a query with j keywords routes to the j-arity index.
// Space multiplies by KMax-1 = O(1); each query keeps the bound of its own
// arity. Queries with a single keyword fall back to scanning that keyword's
// materialized root list via the k=2 index with a duplicate-free surrogate
// is impossible, so k=1 is answered by the dataset's inverted view.
type MultiK struct {
	ds      *dataset.Dataset
	byArity map[int]rectQuerier
	single  map[dataset.Keyword][]int32
	kMax    int

	fam    family
	tracer obs.Tracer
}

// BuildMultiK constructs indexes for every arity in [2, kMax].
func BuildMultiK(ds *dataset.Dataset, kMax int, opts ...BuildOption) (*MultiK, error) {
	if kMax < 2 {
		return nil, fmt.Errorf("core: kMax >= 2 required, got %d", kMax)
	}
	if kMax > 8 {
		return nil, fmt.Errorf("core: kMax %d unreasonably large (tensor space grows with arity)", kMax)
	}
	if err := checkDataset(ds); err != nil {
		return nil, err
	}
	o := resolveOpts(opts)
	bt := obsBuildStart()
	m := &MultiK{
		ds: ds, byArity: make(map[int]rectQuerier, kMax-1), kMax: kMax,
		fam: o.famFor(famMultiK), tracer: o.Tracer,
	}
	for k := 2; k <= kMax; k++ {
		var ix rectQuerier
		var err error
		// Per-arity indexes are routing targets, not user-visible indexes:
		// untagged, so each multi-k query is counted once under multik.
		if ds.Dim() <= 2 {
			ix, err = BuildORPKWWith(ds, k, o.inner())
		} else {
			ix, err = BuildORPKWHighWith(ds, k, o.inner())
		}
		if err != nil {
			return nil, fmt.Errorf("core: building arity-%d index: %w", k, err)
		}
		m.byArity[k] = ix
	}
	// Posting lists for arity-1 queries.
	m.single = make(map[dataset.Keyword][]int32)
	for i := 0; i < ds.Len(); i++ {
		for _, w := range ds.Doc(int32(i)) {
			m.single[w] = append(m.single[w], int32(i))
		}
	}
	obsBuildEnd(m.fam, bt)
	return m, nil
}

// KMax returns the largest supported arity.
func (m *MultiK) KMax() int { return m.kMax }

// Query answers a rectangle query with any number of keywords in [1, KMax].
func (m *MultiK) Query(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, report func(int32)) (st QueryStats, err error) {
	qt := obsBegin(m.fam, "Query", m.tracer)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError("MultiK.Query", r, echoRegion(q, ws))
		}
		if obsEnd(m.fam, qt, &st, err, m.tracer) {
			obsSpan(m.fam, "Query", echoRegion(q, ws), len(ws), qt, &st, err, m.tracer)
		}
	}()
	if e := validateRect(q, m.ds.Dim()); e != nil {
		return QueryStats{}, e
	}
	switch {
	case len(ws) == 0:
		return QueryStats{}, fmt.Errorf("%w: at least one keyword required", ErrInvalidQuery)
	case len(ws) == 1:
		opts = opts.normalized()
		ps := newPolState(opts.Policy)
		for _, id := range m.single[ws[0]] {
			st.Ops++
			if e := ps.check(&st, st.Ops); e != nil {
				return st, e
			}
			if q.ContainsPoint(m.ds.Point(id)) {
				report(id)
				st.Reported++
				if opts.Limit > 0 && st.Reported >= opts.Limit {
					st.Truncated = true
					break
				}
			}
			if opts.Budget > 0 && st.Ops > opts.Budget {
				st.BudgetHit = true
				break
			}
		}
		return st, nil
	case len(ws) > m.kMax:
		// Query the KMax index with a keyword subset and filter the rest:
		// still correct, and the subset bound N^{1-1/KMax} applies. The
		// inner index cannot see the filter, so the result limit is applied
		// here (the inner traversal may overshoot slightly).
		if err := dataset.ValidateKeywords(ws); err != nil {
			return QueryStats{}, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
		}
		sub := append([]dataset.Keyword(nil), ws...)
		sort.Slice(sub, func(a, b int) bool { return sub[a] < sub[b] })
		head := sub[:m.kMax]
		rest := sub[m.kMax:]
		kept := 0
		innerOpts := opts
		innerOpts.Limit = 0
		st, err := m.byArity[m.kMax].Query(q, head, innerOpts, func(id int32) {
			if opts.Limit > 0 && kept >= opts.Limit {
				return
			}
			if m.ds.HasAll(id, rest) {
				report(id)
				kept++
			}
		})
		st.Reported = kept
		if opts.Limit > 0 && kept >= opts.Limit {
			st.Truncated = true
		}
		return st, err
	default:
		return m.byArity[len(ws)].Query(q, ws, opts, report)
	}
}

// Collect is Query returning a slice.
func (m *MultiK) Collect(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts) ([]int32, QueryStats, error) {
	return m.CollectInto(q, ws, opts, nil)
}

// CollectInto is Collect appending into buf, reusing its capacity; the
// returned slice aliases buf only.
func (m *MultiK) CollectInto(q *geom.Rect, ws []dataset.Keyword, opts QueryOpts, buf []int32) ([]int32, QueryStats, error) {
	out := buf[:0]
	st, err := m.Query(q, ws, opts, func(id int32) { out = append(out, id) })
	return out, st, err
}

// K returns the largest supported arity (MultiK spans arities [1, KMax], so
// its unified-interface K is the ceiling, not a fixed per-query arity).
func (m *MultiK) K() int { return m.kMax }

// Space sums the audits of all arity indexes.
func (m *MultiK) Space() SpaceBreakdown {
	var total SpaceBreakdown
	for _, ix := range m.byArity {
		var s SpaceBreakdown
		switch v := ix.(type) {
		case *ORPKW:
			s = v.Space()
		case *ORPKWHigh:
			s = v.Space()
		}
		total.NodeWords += s.NodeWords
		total.PivotWords += s.PivotWords
		total.LargeWords += s.LargeWords
		total.MatWords += s.MatWords
		total.TensorBits += s.TensorBits
		total.AuxWords += s.AuxWords
	}
	for _, lst := range m.single {
		total.AuxWords += int64(len(lst))/2 + 1
	}
	total.DocHashWords = m.ds.DocSpaceWords()
	return total
}
