package core

import (
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// A dataset with a single object.
func TestSingleObject(t *testing.T) {
	ds := dataset.MustNew([]dataset.Object{
		{Point: geom.Point{0.5, 0.5}, Doc: []dataset.Keyword{1, 2, 3}},
	})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d, want 1", len(got))
	}
	got, _, err = ix.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 4}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d, want 0", len(got))
	}
}

// Every object at the same location: geometry degenerates entirely, keyword
// machinery must still work.
func TestAllObjectsSamePoint(t *testing.T) {
	objs := make([]dataset.Object, 200)
	rng := rand.New(rand.NewSource(1))
	for i := range objs {
		doc := make([]dataset.Keyword, 1+rng.Intn(4))
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(8))
		}
		objs[i] = dataset.Object{Point: geom.Point{0.5, 0.5}, Doc: doc}
	}
	ds := dataset.MustNew(objs)
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		ws := workload.RandKeywords(rng, 8, 2)
		got, _, err := ix.Collect(geom.UniverseRect(2), ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(geom.FullSpace{}, ws), "same-point")
	}
	// A rectangle missing the point returns nothing.
	off := geom.NewRect([]float64{0.6, 0.6}, []float64{0.9, 0.9})
	got, _, err := ix.Collect(off, []dataset.Keyword{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("offset rectangle reported %d objects", len(got))
	}
}

// Every object with an identical document: one giant posting list per
// keyword; everything is "large" high in the tree.
func TestAllObjectsSameDoc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := make([]dataset.Object, 300)
	for i := range objs {
		objs[i] = dataset.Object{
			Point: geom.Point{rng.Float64(), rng.Float64()},
			Doc:   []dataset.Keyword{0, 1, 2},
		}
	}
	ds := dataset.MustNew(objs)
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := workload.RandRect(rng, 2, 0.3)
		got, _, err := ix.Collect(q, []dataset.Keyword{0, 2}, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(q, []dataset.Keyword{0, 2}), "same-doc")
	}
}

// Query keywords entirely absent from the vocabulary.
func TestAbsentKeywords(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 3, Objects: 100, Dim: 2, Vocab: 10, DocLen: 3})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{9999, 10000}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("absent keywords reported %d objects", len(got))
	}
	// An absent keyword is small at the root with an empty list: the query
	// must terminate essentially immediately.
	if st.NodesVisited > 1 {
		t.Fatalf("absent-keyword query visited %d nodes", st.NodesVisited)
	}
}

// One keyword present, one absent.
func TestHalfAbsentKeywords(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 4, Objects: 100, Dim: 2, Vocab: 10, DocLen: 3})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{0, 9999}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d, want 0", len(got))
	}
}

// Degenerate query rectangles: points and lines.
func TestDegenerateQueryRects(t *testing.T) {
	ds := dataset.MustNew([]dataset.Object{
		{Point: geom.Point{0.25, 0.25}, Doc: []dataset.Keyword{0, 1}},
		{Point: geom.Point{0.75, 0.75}, Doc: []dataset.Keyword{0, 1}},
		{Point: geom.Point{0.25, 0.75}, Doc: []dataset.Keyword{0, 2}},
	})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Point query hitting an object exactly.
	pt := geom.NewRect([]float64{0.25, 0.25}, []float64{0.25, 0.25})
	got, _, err := ix.Collect(pt, []dataset.Keyword{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("point query = %v, want [0]", got)
	}
	// Vertical line through x=0.25.
	line := geom.NewRect([]float64{0.25, 0}, []float64{0.25, 1})
	got, _, err = ix.Collect(line, []dataset.Keyword{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("line query = %v, want one object", got)
	}
}

// k larger than any document size: no object can ever match.
func TestKExceedsDocSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := make([]dataset.Object, 100)
	for i := range objs {
		objs[i] = dataset.Object{
			Point: geom.Point{rng.Float64(), rng.Float64()},
			Doc:   []dataset.Keyword{dataset.Keyword(rng.Intn(5)), dataset.Keyword(5 + rng.Intn(5))},
		}
	}
	ds := dataset.MustNew(objs)
	ix, err := BuildORPKW(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{0, 1, 5, 6}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("k=4 over 2-keyword docs reported %d objects", len(got))
	}
}

// 1-dimensional ORP-KW (the d <= 2 statement includes d = 1).
func TestORPKW1D(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objs := make([]dataset.Object, 300)
	for i := range objs {
		doc := make([]dataset.Keyword, 1+rng.Intn(4))
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(12))
		}
		objs[i] = dataset.Object{Point: geom.Point{rng.Float64()}, Doc: doc}
	}
	ds := dataset.MustNew(objs)
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		a := rng.Float64() * 0.8
		q := geom.NewRect([]float64{a}, []float64{a + 0.2})
		ws := workload.RandKeywords(rng, 12, 2)
		got, _, err := ix.Collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(q, ws), "orpkw-1d")
	}
}

// Large k (k=5) exercises the combination enumeration and tensors.
func TestK5(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := make([]dataset.Object, 400)
	for i := range objs {
		doc := make([]dataset.Keyword, 6)
		for j := range doc {
			doc[j] = dataset.Keyword(rng.Intn(10))
		}
		objs[i] = dataset.Object{Point: geom.Point{rng.Float64(), rng.Float64()}, Doc: doc}
	}
	ds := dataset.MustNew(objs)
	ix, err := BuildORPKW(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		q := workload.RandRect(rng, 2, 0.7)
		ws := workload.RandKeywords(rng, 10, 5)
		got, _, err := ix.Collect(q, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(q, ws), "k5")
	}
}

// Empty result on a populated region: keyword pair that never co-occurs.
func TestDisjointKeywordPair(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := make([]dataset.Object, 500)
	for i := range objs {
		// Keyword parity split: even objects get even keywords.
		base := dataset.Keyword((i % 2))
		objs[i] = dataset.Object{
			Point: geom.Point{rng.Float64(), rng.Float64()},
			Doc:   []dataset.Keyword{base, base + 2, base + 4},
		}
	}
	ds := dataset.MustNew(objs)
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{0, 1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parity-disjoint keywords reported %d objects", len(got))
	}
	// The tensor prunes this everywhere: far fewer ops than N.
	if st.Ops > ds.N() {
		t.Fatalf("OUT=0 query did Theta(N) work: %d ops for N=%d", st.Ops, ds.N())
	}
}

// The structured-only baseline agrees with the oracle.
func TestStructuredOnlyBaseline(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 9, Objects: 400, Dim: 2, Vocab: 20, DocLen: 4})
	b := BuildStructuredOnly(ds, nil)
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 30; trial++ {
		q := workload.RandRect(rng, 2, 0.4)
		ws := workload.RandKeywords(rng, 20, 2)
		got, candidates, _ := b.Query(q, ws)
		want := ds.Filter(q, ws)
		equalIDs(t, got, want, "structured-only")
		if candidates < len(want) {
			t.Fatal("candidate count below result count")
		}
	}
	if b.Tree() == nil {
		t.Fatal("Tree accessor broken")
	}
}

// LCKW rejects an empty constraint list.
func TestLCKWNoConstraints(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 10, Objects: 50, Dim: 2, Vocab: 10, DocLen: 3})
	ix, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.CollectConstraints(nil, []dataset.Keyword{0, 1}, QueryOpts{}); err == nil {
		t.Fatal("empty constraint list must error")
	}
}

// SP-KW simplex entry point (Theorem 12's native query shape).
func TestSPKWSimplexQuery(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 11, Objects: 400, Dim: 2, Vocab: 20, DocLen: 4})
	ix, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 25; trial++ {
		tri := geom.NewSimplex(
			geom.Point{rng.Float64(), rng.Float64()},
			geom.Point{rng.Float64() + 0.5, rng.Float64()},
			geom.Point{rng.Float64(), rng.Float64() + 0.5},
		)
		ph, err := tri.Polyhedron()
		if err != nil {
			continue
		}
		ws := workload.RandKeywords(rng, 20, 2)
		var got []int32
		if _, err := ix.QuerySimplex(tri, ws, QueryOpts{}, func(id int32) { got = append(got, id) }); err != nil {
			t.Fatal(err)
		}
		equalIDs(t, got, ds.Filter(ph, ws), "spkw-simplex")
	}
}

// SRP-KW direct-region ablation: sphere queries without lifting agree with
// the lifted index.
func TestSRPKWDirectVsLifted(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 12, Objects: 400, Dim: 2, Vocab: 20, DocLen: 4})
	lifted, err := BuildSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 25; trial++ {
		s := geom.NewSphere(geom.Point{rng.Float64(), rng.Float64()}, 0.05+rng.Float64()*0.25)
		ws := workload.RandKeywords(rng, 20, 2)
		a, _, err := lifted.Collect(s, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		var b []int32
		if _, err := direct.QueryRegion(s, ws, QueryOpts{}, func(id int32) { b = append(b, id) }); err != nil {
			t.Fatal(err)
		}
		equalIDs(t, a, b, "srpkw-routes")
	}
}

// Appendix D reduction fidelity: answering an LC-KW query by partitioning
// the constraint polyhedron into simplices (the paper's route) returns the
// same result as querying the polyhedron directly (our default route).
func TestLCKWSimplexPartitionRoute(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 13, Objects: 500, Dim: 2, Vocab: 20, DocLen: 4})
	ix, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(130))
	tested := 0
	for trial := 0; trial < 40 && tested < 25; trial++ {
		s := 1 + rng.Intn(3)
		hs := workload.RandHalfspaces(rng, 2, s, 0.3+rng.Float64()*0.5)
		ws := workload.RandKeywords(rng, 20, 2)
		direct, _, err := ix.CollectConstraints(hs, ws, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		var viaSimplices []int32
		if _, err := ix.QueryConstraintsViaSimplices(hs, ws, func(id int32) {
			viaSimplices = append(viaSimplices, id)
		}); err != nil {
			continue // near-degenerate triangulation; skip this draw
		}
		tested++
		equalIDs(t, viaSimplices, direct, "simplex-partition-route")
	}
	if tested < 10 {
		t.Fatalf("only %d triangulations succeeded; route too fragile", tested)
	}
}
