package core

import (
	"runtime"

	"kwsc/internal/obs"
)

// BuildOpts tunes index construction across the whole suite. The variadic
// builders accept functional BuildOptions (see options.go); the Build*With
// forms accept this struct directly and remain for compatibility.
type BuildOpts struct {
	// Parallelism caps the number of goroutines a build may use: <= 0
	// selects runtime.GOMAXPROCS(0), 1 forces a fully sequential build.
	// Parallel and sequential builds of the same input produce indexes that
	// answer every query identically (the recursion splits the object set
	// the same way; only which goroutine builds which subtree differs).
	Parallelism int

	// Tracer, when non-nil, receives a span for every query this index
	// answers, in addition to the process-wide tracer (obs.SetTracer).
	Tracer obs.Tracer

	// NoObs excludes the index from the metrics registry and tracing.
	// Composite indexes set it on their inner structures so each user query
	// is observed exactly once.
	NoObs bool

	// Flat converts every framework tree the build produces into the
	// cache-conscious flat layout (BFS node order, arena-packed payloads,
	// delta-encoded materialized lists; see Framework.Flatten). Composite
	// indexes propagate it to their inner structures. Queries answer
	// identically in either layout; only memory layout and speed differ.
	Flat bool
}

// parallelCutoff is the subtree size (in objects) below which construction
// stays on the current goroutine: small subtrees finish faster than the
// cost of scheduling them elsewhere.
const parallelCutoff = 2048

// parGate is a counted semaphore bounding the extra goroutines a build may
// spawn. The nil gate is valid and means "never spawn" (sequential build).
//
// Spawning is strictly opportunistic — tryAcquire never blocks — so a
// goroutine that holds a token and waits for its children cannot deadlock:
// children that fail to acquire a token are built inline on the waiting
// goroutine's own stack before it joins.
type parGate struct {
	tokens chan struct{}
}

// newParGate sizes a gate for the requested parallelism (see BuildOpts).
func newParGate(parallelism int) *parGate {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism <= 1 {
		return nil
	}
	// The calling goroutine is itself a worker, so a parallelism budget of
	// P allows P-1 concurrent spawns.
	return &parGate{tokens: make(chan struct{}, parallelism-1)}
}

// tryAcquire reserves a goroutine slot; the caller must release() it when
// the spawned work finishes. It never blocks.
func (g *parGate) tryAcquire() bool {
	if g == nil {
		return false
	}
	select {
	case g.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g *parGate) release() { <-g.tokens }
