//go:build !race

package core

import (
	"math/rand"
	"testing"
	"time"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
	"kwsc/internal/workload"
)

// The resilience layer must be free on queries that don't use it: with no
// policy set, the pooled-context CollectInto path stays at zero allocations
// per query, the property the seed benchmarks established. Run under the race
// detector AllocsPerRun is unreliable, hence the build tag.
func TestCollectIntoZeroAllocsWithoutPolicy(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 30, Objects: 1 << 12, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := workload.RandRect(rand.New(rand.NewSource(30)), 2, 0.4)
	ws := []dataset.Keyword{1, 2}
	buf := make([]int32, 0, 4096)
	// Warm the context pool and grow buf to its steady-state capacity.
	for i := 0; i < 4; i++ {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	}
	allocs := testing.AllocsPerRun(100, func() {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	})
	if allocs != 0 {
		t.Fatalf("CollectInto without policy allocates %v per op, want 0", allocs)
	}
}

// The metrics registry must be free in the allocation sense too: with
// metrics explicitly enabled AND the slow log armed (but its gate above this
// query's cost), the instrumented CollectInto path performs only atomic
// updates — no span or echo is ever formatted.
func TestCollectIntoZeroAllocsWithMetricsAndSlowLog(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 32, Objects: 1 << 12, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetMetricsEnabled(true)
	obs.EnableSlowLog(4, int64(1)<<40) // armed, admits nothing realistic
	defer obs.EnableSlowLog(0, 0)
	q := workload.RandRect(rand.New(rand.NewSource(32)), 2, 0.4)
	ws := []dataset.Keyword{1, 2}
	buf := make([]int32, 0, 4096)
	for i := 0; i < 4; i++ {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	}
	allocs := testing.AllocsPerRun(100, func() {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	})
	if allocs != 0 {
		t.Fatalf("CollectInto with metrics+slow-log armed allocates %v per op, want 0", allocs)
	}
}

// A node-budget policy must also stay allocation-free: polState lives inside
// the pooled context and ExecPolicy is carried by value.
func TestCollectIntoZeroAllocsWithBudgetPolicy(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 31, Objects: 1 << 12, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.UniverseRect(2)
	ws := []dataset.Keyword{1, 2}
	pol := ExecPolicy{NodeBudget: 1 << 30, Deadline: time.Now().Add(time.Hour)}
	buf := make([]int32, 0, 4096)
	for i := 0; i < 4; i++ {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{Policy: pol}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	}
	allocs := testing.AllocsPerRun(100, func() {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{Policy: pol}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	})
	if allocs != 0 {
		t.Fatalf("CollectInto with budget policy allocates %v per op, want 0", allocs)
	}
}

// The flat layout must preserve the zero-allocation property: block decoding
// goes through the pooled context's retained scratch buffer and the large/mat
// lookups are manual binary searches (no sort.Search closures).
func TestCollectIntoZeroAllocsFlatLayout(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 33, Objects: 1 << 12, Dim: 2, Vocab: 64, DocLen: 5})
	ix, err := BuildORPKW(ds, 2, WithFlatLayout())
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Framework().IsFlat() {
		t.Fatal("index not flat")
	}
	q := workload.RandRect(rand.New(rand.NewSource(33)), 2, 0.4)
	ws := []dataset.Keyword{1, 2}
	buf := make([]int32, 0, 4096)
	for i := 0; i < 4; i++ {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	}
	allocs := testing.AllocsPerRun(100, func() {
		ids, _, err := ix.CollectInto(q, ws, QueryOpts{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = ids[:0]
	})
	if allocs != 0 {
		t.Fatalf("flat CollectInto allocates %v per op, want 0", allocs)
	}
}
