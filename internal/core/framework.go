// Package core implements the paper's primary contribution: the four-step
// index-transformation framework of Section 3, which converts a
// space-partitioning geometry index into one that additionally handles
// keyword predicates with query time O(N^{1-1/k} (1 + OUT^{1/k})); the
// dimension-reduction technique of Section 4; and, on top of those, the
// indexes for every problem of Section 1.1 (ORP-KW, RR-KW, L∞NN-KW, LC-KW,
// SP-KW, SRP-KW, L2NN-KW) plus the k-SI view of Section 1.2.
package core

import (
	"fmt"
	"math"
	"sync"

	"kwsc/internal/bits"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/spart"
)

// Framework is the keyword-transformed space-partitioning index of
// Section 3.2 (Step 2 of the framework): a tree built over the verbose set
// (realized as objects weighted by |e.Doc|), where each node u carries
//
//   - its active set implicitly (the objects in its subtree),
//   - its pivot set D_u^pvt (objects on child-cell boundaries),
//   - the secondary structure T_u: a hash table of the keywords that are
//     large at u (|D_u^act(w)| >= N_u^{1-1/k}) and, per child v, a
//     k-dimensional bit array recording whether the intersection of the
//     children's active keyword sets is empty,
//   - the materialized lists D_u^act(w) for keywords that are small at u
//     but large at all proper ancestors.
type Framework struct {
	ds       *dataset.Dataset
	k        int
	split    spart.Splitter
	pts      []geom.Point // partitioning coordinates (rank space or original)
	weight   []int32      // |e.Doc| per object: the verbose-set multiplicity
	nodes    []fnode
	flat     *flatLayout // non-nil after Flatten; nodes is then nil
	leafSize int
	space    SpaceBreakdown
}

type fnode struct {
	cell     spart.Cell
	children []int32
	pivots   []int32
	nu       int64 // N_u = sum of |e.Doc| over the active set

	// Secondary structure T_u (internal nodes only):
	large   map[dataset.Keyword]int32   // large keyword -> index in [0, L)
	l       int32                       // L = number of large keywords
	tensors []*bits.Dense               // per child: L^k-bit non-emptiness array
	mat     map[dataset.Keyword][]int32 // materialized D_u^act(w) for small w
}

// SpaceBreakdown audits the index footprint analytically, in the paper's
// units (words of >= log2 N bits, plus raw bits for the bit arrays), so the
// space claims of Table 1 are measurable independent of Go allocator
// overheads.
type SpaceBreakdown struct {
	NodeWords    int64 // tree skeleton: cells, child pointers, counters
	PivotWords   int64 // pivot set entries
	LargeWords   int64 // large-keyword hash tables
	MatWords     int64 // materialized small-keyword lists
	TensorBits   int64 // k-dimensional non-emptiness bit arrays
	AuxWords     int64 // problem-specific extras (rank tables, coordinate arrays)
	DocHashWords int64 // per-object document hash tables (footnote 9)
}

// TotalWords converts the breakdown to words, charging the bit arrays at
// wordBits bits per word (pass 64 for the machine word; the paper's model
// uses >= log2 N).
func (s SpaceBreakdown) TotalWords(wordBits int) int64 {
	if wordBits <= 0 {
		wordBits = 64
	}
	return s.NodeWords + s.PivotWords + s.LargeWords + s.MatWords +
		s.AuxWords + s.DocHashWords + (s.TensorBits+int64(wordBits)-1)/int64(wordBits)
}

// FrameworkConfig controls construction.
type FrameworkConfig struct {
	// K is the number of keywords every query will carry (k >= 2).
	K int
	// Splitter is the Step-1 space-partitioning policy.
	Splitter spart.Splitter
	// Points are the partitioning coordinates per object (defaults to the
	// dataset's points; ORP-KW passes rank-space points). Points may have a
	// different dimensionality than the dataset (the lifting reduction of
	// Corollary 6 partitions on lifted (d+1)-dimensional coordinates while
	// documents stay with the original objects).
	Points []geom.Point
	// Objects restricts the index to a subset of object ids (defaults to
	// all). The dimension-reduction tree of Section 4 builds one secondary
	// framework per node on that node's active set.
	Objects []int32
	// LeafSize is the maximum number of objects in a leaf (default 8).
	LeafSize int
	// Parallelism caps the goroutines used to build the tree (see
	// BuildOpts): <= 0 selects GOMAXPROCS, 1 forces a sequential build.
	Parallelism int
	// Flat converts the finished tree to the cache-conscious flat layout
	// (see Flatten): BFS node order, arena-packed payloads, delta-encoded
	// materialized lists. Queries answer identically in either layout.
	Flat bool

	// gate shares one goroutine budget across nested builds (the
	// dimension-reduction tree builds one framework per node); when set it
	// overrides Parallelism.
	gate *parGate
}

// BuildFramework runs Step 2 of the framework over the dataset.
func BuildFramework(ds *dataset.Dataset, cfg FrameworkConfig) (*Framework, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: the framework requires k >= 2, got %d", cfg.K)
	}
	if cfg.Splitter == nil {
		return nil, fmt.Errorf("core: nil splitter")
	}
	pts := cfg.Points
	if pts == nil {
		pts = make([]geom.Point, ds.Len())
		for i := range pts {
			pts[i] = ds.Point(int32(i))
		}
	}
	leaf := cfg.LeafSize
	if leaf <= 0 {
		leaf = 8
	}
	f := &Framework{
		ds:       ds,
		k:        cfg.K,
		split:    cfg.Splitter,
		pts:      pts,
		leafSize: leaf,
	}
	f.weight = make([]int32, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		f.weight[i] = ds.DocLen(int32(i))
	}
	objs := cfg.Objects
	if objs == nil {
		objs = make([]int32, ds.Len())
		for i := range objs {
			objs[i] = int32(i)
		}
	}
	// The root's incoming keyword set is every keyword present among the
	// objects: each is vacuously large at all (zero) proper ancestors.
	seen := make(map[dataset.Keyword]struct{})
	incoming := make([]dataset.Keyword, 0, 64)
	for _, id := range objs {
		for _, w := range ds.Doc(id) {
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				incoming = append(incoming, w)
			}
		}
	}
	gate := cfg.gate
	if gate == nil {
		gate = newParGate(cfg.Parallelism)
	}
	b := &builder{f: f, cnt: make(map[dataset.Keyword]int64, len(incoming)), gate: gate}
	root := f.split.RootCell(pts, objs)
	b.build(root, objs, incoming, 0)
	f.nodes = b.nodes
	f.accountSpace()
	if cfg.Flat {
		f.Flatten()
	}
	return f, nil
}

// builder accumulates the subtree it is responsible for in its own nodes
// slice (child indexes are local to that slice) and carries the reusable
// scratch map used to count keyword occurrences per node; keys present in
// the map are exactly the node's incoming keywords. Parallel construction
// gives each spawned subtree its own builder and grafts the finished slice
// into the parent's, so builders never share mutable state.
type builder struct {
	f     *Framework
	cnt   map[dataset.Keyword]int64
	nodes []fnode
	gate  *parGate
}

// childResult is one child subtree of an internal node under construction:
// its non-emptiness tensor plus either a root index into the parent
// builder's nodes (inline build, sub == nil) or a completed sub-builder
// whose nodes await grafting.
type childResult struct {
	tensor *bits.Dense
	root   int32
	sub    *builder
}

// build creates the subtree for objs and returns its node index within
// b.nodes.
func (b *builder) build(cell spart.Cell, objs []int32, incoming []dataset.Keyword, depth int) int32 {
	f := b.f
	idx := int32(len(b.nodes))
	b.nodes = append(b.nodes, fnode{cell: cell})
	var nu int64
	for _, id := range objs {
		nu += int64(f.weight[id])
	}
	b.nodes[idx].nu = nu
	if len(objs) <= f.leafSize {
		b.nodes[idx].pivots = append([]int32(nil), objs...)
		return idx
	}

	// Classify the incoming keywords as large or small at this node
	// (Section 3.2): w is large iff |D_u^act(w)| >= N_u^{1-1/k}.
	for _, w := range incoming {
		b.cnt[w] = 0
	}
	for _, id := range objs {
		for _, w := range f.ds.Doc(id) {
			if _, track := b.cnt[w]; track {
				b.cnt[w]++
			}
		}
	}
	threshold := math.Pow(float64(nu), 1-1/float64(f.k))
	large := make(map[dataset.Keyword]int32)
	var largeList []dataset.Keyword
	for _, w := range incoming {
		if float64(b.cnt[w]) >= threshold {
			large[w] = int32(len(largeList))
			largeList = append(largeList, w)
		}
	}
	// Materialize D_u^act(w) for every small incoming keyword that occurs
	// here (w was large at all proper ancestors by the inductive invariant).
	mat := make(map[dataset.Keyword][]int32)
	for _, id := range objs {
		for _, w := range f.ds.Doc(id) {
			if c, track := b.cnt[w]; track && c > 0 {
				if _, isLarge := large[w]; !isLarge {
					mat[w] = append(mat[w], id)
				}
			}
		}
	}
	// Release the scratch keys so descendants (whose incoming sets are the
	// large keywords only) start from a clean map.
	for _, w := range incoming {
		delete(b.cnt, w)
	}

	cells, assign, ok := f.split.Split(cell, objs, f.pts, f.weight, depth)
	if !ok {
		// No geometric progress possible: finish as a leaf.
		b.nodes[idx].pivots = append([]int32(nil), objs...)
		return idx
	}
	groups := make([][]int32, len(cells))
	var pivots []int32
	for i, id := range objs {
		if a := assign[i]; a == spart.PivotChild {
			pivots = append(pivots, id)
		} else {
			groups[a] = append(groups[a], id)
		}
	}
	b.nodes[idx].pivots = pivots
	b.nodes[idx].large = large
	b.nodes[idx].l = int32(len(largeList))
	b.nodes[idx].mat = mat

	// Per child: the k-dimensional non-emptiness bit array (bit at the
	// sorted tuple (i1 < ... < ik) of large-keyword indexes is set iff some
	// object in the child's active set carries all k keywords) and the child
	// subtree. Both depend only on the child's objects plus this node's
	// read-only large map, so heavy children are handed to other goroutines
	// when the gate has budget; the rest build inline. The results slice is
	// sized up front because spawned goroutines hold pointers into it.
	L := len(largeList)
	tsize := tensorSize(L, f.k)
	nz := 0
	for _, g := range groups {
		if len(g) > 0 {
			nz++
		}
	}
	results := make([]childResult, nz)
	var wg sync.WaitGroup
	ri := 0
	for c, g := range groups {
		if len(g) == 0 {
			continue
		}
		r := &results[ri]
		ri++
		childCell := cells[c]
		if len(g) >= parallelCutoff && b.gate.tryAcquire() {
			sub := &builder{
				f:    f,
				cnt:  make(map[dataset.Keyword]int64, len(largeList)),
				gate: b.gate,
			}
			r.sub = sub
			wg.Add(1)
			go func(g []int32) {
				defer wg.Done()
				defer b.gate.release()
				r.tensor = f.fillTensor(g, large, L, tsize)
				r.root = sub.build(childCell, g, largeList, depth+1)
			}(g)
			continue
		}
		r.tensor = f.fillTensor(g, large, L, tsize)
		r.root = b.build(childCell, g, largeList, depth+1)
	}
	wg.Wait()

	// Graft spawned subtrees, preserving child order; only node placement
	// within the flat array differs from a sequential build.
	childIdx := make([]int32, 0, nz)
	tensors := make([]*bits.Dense, 0, nz)
	for i := range results {
		r := &results[i]
		if r.sub != nil {
			off := int32(len(b.nodes))
			for _, n := range r.sub.nodes {
				for ci := range n.children {
					n.children[ci] += off
				}
				b.nodes = append(b.nodes, n)
			}
			childIdx = append(childIdx, off+r.root)
		} else {
			childIdx = append(childIdx, r.root)
		}
		tensors = append(tensors, r.tensor)
	}
	b.nodes[idx].children = childIdx
	b.nodes[idx].tensors = tensors
	return idx
}

// fillTensor builds the non-emptiness bit array of one child over its
// objects g, given the parent's large-keyword numbering.
func (f *Framework) fillTensor(g []int32, large map[dataset.Keyword]int32, L int, tsize int64) *bits.Dense {
	t := bits.NewDense(int(tsize))
	scratch := make([]int32, 0, 16)
	for _, id := range g {
		scratch = scratch[:0]
		for _, w := range f.ds.Doc(id) {
			if li, isLarge := large[w]; isLarge {
				scratch = append(scratch, li)
			}
		}
		if len(scratch) >= f.k {
			sortInt32s(scratch)
			markCombinations(t, scratch, f.k, L)
		}
	}
	return t
}

// sortInt32s is an allocation-free insertion sort for the short slices the
// build and query hot paths produce (query keyword tuples, per-document
// large-keyword lists).
func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// tensorSize returns L^k, saturating safely (L^k <= N_u by the large-keyword
// bound, so overflow means a logic error upstream).
func tensorSize(L, k int) int64 {
	s := int64(1)
	for i := 0; i < k; i++ {
		s *= int64(L)
		if s > 1<<40 {
			panic("core: non-emptiness tensor exceeds sanity bound; large-keyword invariant violated")
		}
	}
	return s
}

// markCombinations sets the tensor bit of every strictly-increasing
// k-combination of the sorted large-keyword indexes in list.
func markCombinations(t *bits.Dense, list []int32, k, L int) {
	var rec func(start, depth int, lin int64)
	rec = func(start, depth int, lin int64) {
		if depth == k {
			t.Set(int(lin))
			return
		}
		for i := start; i <= len(list)-(k-depth); i++ {
			rec(i+1, depth+1, lin*int64(L)+int64(list[i]))
		}
	}
	rec(0, 0, 0)
}

// tensorIndex computes the linear index of the sorted large-index tuple.
func tensorIndex(sorted []int32, L int) int64 {
	var lin int64
	for _, v := range sorted {
		lin = lin*int64(L) + int64(v)
	}
	return lin
}

// K returns the keyword arity the index was built for.
func (f *Framework) K() int { return f.k }

// Dataset returns the underlying dataset.
func (f *Framework) Dataset() *dataset.Dataset { return f.ds }

// NumNodes returns the number of tree nodes.
func (f *Framework) NumNodes() int {
	if f.flat != nil {
		return f.flat.numNodes()
	}
	return len(f.nodes)
}

// PointDim returns the dimensionality of the partitioning coordinates (the
// lifted dimension for SRP-KW, the rank-space dimension for ORP-KW); query
// validation checks constraints against it.
func (f *Framework) PointDim() int {
	if f.flat != nil {
		return f.flat.pdim
	}
	if len(f.pts) == 0 {
		return 0
	}
	return len(f.pts[0])
}

// Space returns the analytic space audit.
func (f *Framework) Space() SpaceBreakdown { return f.space }

func (f *Framework) accountSpace() {
	var s SpaceBreakdown
	for i := range f.nodes {
		n := &f.nodes[i]
		s.NodeWords += 4 + int64(len(n.children))
		s.PivotWords += int64(len(n.pivots))
		s.LargeWords += 2 * int64(len(n.large))
		for _, lst := range n.mat {
			s.MatWords += int64(len(lst)) + 1
		}
		for _, t := range n.tensors {
			s.TensorBits += t.SpaceBits()
		}
	}
	s.DocHashWords = f.ds.DocSpaceWords()
	f.space = s
}

// MaxPivots returns the largest pivot set of any internal node — the
// quantity the general-position machinery (Steps 2 and 4) keeps O(1).
func (f *Framework) MaxPivots() int {
	if f.flat != nil {
		return f.flat.maxPivots()
	}
	m := 0
	for i := range f.nodes {
		n := &f.nodes[i]
		if len(n.children) > 0 && len(n.pivots) > m {
			m = len(n.pivots)
		}
	}
	return m
}

// Height returns the tree height.
func (f *Framework) Height() int {
	if f.flat != nil {
		return f.flat.height()
	}
	if len(f.nodes) == 0 {
		return -1
	}
	var rec func(n int32) int
	rec = func(n int32) int {
		h := 0
		for _, c := range f.nodes[n].children {
			if ch := rec(c) + 1; ch > h {
				h = ch
			}
		}
		return h
	}
	return rec(0)
}
