package core

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/workload"
)

// assertPrefix fails unless partial is exactly the first len(partial)
// elements of full, in order — the contract of every policy stop on a
// deterministic traversal.
func assertPrefix(t *testing.T, partial, full []int32, label string) {
	t.Helper()
	if len(partial) > len(full) {
		t.Fatalf("%s: partial answer longer (%d) than full answer (%d)", label, len(partial), len(full))
	}
	for i := range partial {
		if partial[i] != full[i] {
			t.Fatalf("%s: partial[%d] = %d, full[%d] = %d: not a prefix", label, i, partial[i], i, full[i])
		}
	}
}

func TestPanicIsolationFramework(t *testing.T) {
	defer DisarmAllFailpoints()
	ds := workload.Gen(workload.Config{Seed: 11, Objects: 400, Dim: 2, Vocab: 20, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.UniverseRect(2)
	ws := []dataset.Keyword{1, 2}

	ArmFailpoint(FPFrameworkVisit, func() { panic("injected traversal corruption") })
	_, _, err = ix.Collect(q, ws, QueryOpts{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("armed panic surfaced as %v, want *PanicError", err)
	}
	if pe.Op == "" || pe.Query == "" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError missing context: %+v", pe)
	}
	if pe.Val != "injected traversal corruption" {
		t.Fatalf("PanicError.Val = %v", pe.Val)
	}

	// Disarming restores normal service on the same index: the panic left no
	// poisoned state behind.
	DisarmFailpoint(FPFrameworkVisit)
	got, _, err := ix.Collect(q, ws, QueryOpts{})
	if err != nil {
		t.Fatalf("query after disarm: %v", err)
	}
	equalIDs(t, got, ds.Filter(q, ws), "post-recovery")
}

func TestPanicIsolationDimred(t *testing.T) {
	defer DisarmAllFailpoints()
	ds := workload.Gen(workload.Config{Seed: 12, Objects: 300, Dim: 3, Vocab: 20, DocLen: 4})
	ix, err := BuildORPKWHigh(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	ArmFailpoint(FPDimredVisit, func() { panic("dimred boom") })
	_, _, err = ix.Collect(geom.UniverseRect(3), []dataset.Keyword{1, 2}, QueryOpts{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("dimred panic surfaced as %v, want *PanicError", err)
	}
}

func TestDeadlineStopsStalledTraversal(t *testing.T) {
	defer DisarmAllFailpoints()
	ds := workload.Gen(workload.Config{Seed: 13, Objects: 2000, Dim: 2, Vocab: 10, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.UniverseRect(2)
	ws := []dataset.Keyword{1, 2}
	full, _, err := ix.Collect(q, ws, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}

	// Each visit stalls 100µs; with a 1ms deadline the poll (every 64 stop
	// checks) must fire long before the traversal would finish on its own.
	ArmFailpoint(FPFrameworkVisit, func() { time.Sleep(100 * time.Microsecond) })
	start := time.Now()
	partial, st, err := ix.Collect(q, ws, QueryOpts{Policy: ExecPolicy{Timeout: time.Millisecond}})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("stalled traversal returned %v, want ErrDeadline", err)
	}
	if !st.DeadlineHit || !st.Truncated {
		t.Fatalf("stats flags after deadline: %+v", st)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline stop took %v, want prompt return", elapsed)
	}
	assertPrefix(t, partial, full, "deadline")
}

func TestNodeBudgetPartialPrefix(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 14, Objects: 1500, Dim: 2, Vocab: 8, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.UniverseRect(2)
	ws := []dataset.Keyword{1, 2}
	full, fullSt, err := ix.Collect(q, ws, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if fullSt.NodesVisited < 20 {
		t.Skipf("traversal too small to budget (visited %d)", fullSt.NodesVisited)
	}
	for _, budget := range []int64{1, 5, int64(fullSt.NodesVisited) / 2} {
		partial, st, err := ix.Collect(q, ws, QueryOpts{Policy: ExecPolicy{NodeBudget: budget}})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %d: err = %v, want ErrBudget", budget, err)
		}
		if !st.NodeBudgetHit || !st.Truncated {
			t.Fatalf("budget %d: stats flags %+v", budget, st)
		}
		assertPrefix(t, partial, full, "budget")
	}
	// A budget generous enough for the whole traversal changes nothing.
	all, st, err := ix.Collect(q, ws, QueryOpts{Policy: ExecPolicy{NodeBudget: int64(fullSt.NodesVisited) + 10}})
	if err != nil {
		t.Fatalf("ample budget errored: %v", err)
	}
	if st.NodeBudgetHit {
		t.Fatal("ample budget flagged NodeBudgetHit")
	}
	equalIDs(t, all, full, "ample budget")
}

func TestCancellation(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 15, Objects: 500, Dim: 2, Vocab: 10, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	_, st, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2},
		QueryOpts{Policy: ExecPolicy{Done: done}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("closed Done returned %v, want ErrCanceled", err)
	}
	if !st.Canceled || !st.Truncated {
		t.Fatalf("stats flags after cancel: %+v", st)
	}
}

func TestMaxResultsTruncatesWithoutError(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 16, Objects: 800, Dim: 2, Vocab: 6, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.UniverseRect(2)
	ws := []dataset.Keyword{1, 2}
	full, _, err := ix.Collect(q, ws, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5 {
		t.Skipf("only %d results", len(full))
	}
	got, st, err := ix.Collect(q, ws, QueryOpts{Policy: ExecPolicy{MaxResults: 3}})
	if err != nil {
		t.Fatalf("MaxResults errored: %v", err)
	}
	if len(got) != 3 || !st.Truncated {
		t.Fatalf("MaxResults=3 returned %d results, Truncated=%v", len(got), st.Truncated)
	}
	assertPrefix(t, got, full, "maxresults")
}

func TestBatchPanicIsolatedPositionally(t *testing.T) {
	defer DisarmAllFailpoints()
	ds := workload.Gen(workload.Config{Seed: 17, Objects: 600, Dim: 2, Vocab: 12, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]RectQuery, 5)
	for i := range queries {
		queries[i] = RectQuery{Rect: geom.UniverseRect(2), Keywords: []dataset.Keyword{1, 2}}
	}
	// With parallelism 1 the batch runs in order; panic exactly on query 2.
	var n atomic.Int64
	ArmFailpoint(FPBatchQuery, func() {
		if n.Add(1) == 3 {
			panic("query 2 dies")
		}
	})
	results := ix.QueryBatch(queries, 1)
	for i, r := range results {
		var pe *PanicError
		if i == 2 {
			if !errors.As(r.Err, &pe) {
				t.Fatalf("query 2: err = %v, want *PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("query %d: unexpected error %v", i, r.Err)
		}
		equalIDs(t, r.IDs, ds.Filter(queries[i].Rect, queries[i].Keywords), "batch neighbor")
	}
}

func TestDynamicPolicyAndPanic(t *testing.T) {
	defer DisarmAllFailpoints()
	d, err := NewDynamicORPKW(2, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Gen(workload.Config{Seed: 18, Objects: 500, Dim: 2, Vocab: 8, DocLen: 4})
	for i := 0; i < src.Len(); i++ {
		obj := dataset.Object{Point: src.Point(int32(i)), Doc: src.Doc(int32(i))}
		if _, err := d.Insert(obj); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumBuckets() == 0 {
		t.Fatal("expected Bentley–Saxe buckets after 500 inserts")
	}
	q := geom.UniverseRect(2)
	ws := []dataset.Keyword{1, 2}
	var full []int64
	if _, err := d.Query(q, ws, func(h int64, _ *dataset.Object) { full = append(full, h) }); err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Skip("no matches for the probe keywords")
	}

	var partial []int64
	_, err = d.QueryWith(q, ws, QueryOpts{Policy: ExecPolicy{NodeBudget: 10}},
		func(h int64, _ *dataset.Object) { partial = append(partial, h) })
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("dynamic budget: err = %v, want ErrBudget", err)
	}
	if len(partial) > len(full) {
		t.Fatalf("partial (%d) longer than full (%d)", len(partial), len(full))
	}
	for i := range partial {
		if partial[i] != full[i] {
			t.Fatalf("dynamic partial[%d] = %d, full[%d] = %d", i, partial[i], i, full[i])
		}
	}

	ArmFailpoint(FPDynamicBucket, func() { panic("bucket corrupt") })
	_, err = d.Query(q, ws, func(int64, *dataset.Object) {})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("dynamic panic surfaced as %v, want *PanicError", err)
	}
	DisarmAllFailpoints()

	// The dynamic wrapper still answers correctly after both failures.
	var again []int64
	if _, err := d.Query(q, ws, func(h int64, _ *dataset.Object) { again = append(again, h) }); err != nil {
		t.Fatal(err)
	}
	if len(again) != len(full) {
		t.Fatalf("post-failure query returned %d results, want %d", len(again), len(full))
	}
}

func TestNNPolicyAndPanic(t *testing.T) {
	defer DisarmAllFailpoints()
	ds := workload.Gen(workload.Config{Seed: 19, Objects: 800, Dim: 2, Vocab: 8, DocLen: 4})
	ix, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{0.5, 0.5}
	ws := []dataset.Keyword{1, 2}
	res, _, err := ix.Query(q, 5, ws, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Skip("no neighbors for the probe keywords")
	}

	_, _, err = ix.QueryWith(q, 5, ws, ExecPolicy{NodeBudget: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("NN budget: err = %v, want ErrBudget", err)
	}

	ArmFailpoint(FPNNProbe, func() { panic("probe dies") })
	_, _, err = ix.Query(q, 5, ws, QueryOpts{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("NN panic surfaced as %v, want *PanicError", err)
	}
	DisarmAllFailpoints()

	again, _, err := ix.Query(q, 5, ws, QueryOpts{})
	if err != nil || len(again) != len(res) {
		t.Fatalf("post-failure NN query: %d results, err %v", len(again), err)
	}
}

func TestMultiKArityOnePolicy(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 20, Objects: 600, Dim: 2, Vocab: 6, DocLen: 4})
	m, err := BuildMultiK(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.UniverseRect(2)
	full, _, err := m.Collect(q, []dataset.Keyword{1}, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Skipf("only %d arity-1 matches", len(full))
	}
	partial, st, err := m.Collect(q, []dataset.Keyword{1}, QueryOpts{Policy: ExecPolicy{NodeBudget: 5}})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("arity-1 budget: err = %v, want ErrBudget", err)
	}
	if !st.NodeBudgetHit {
		t.Fatalf("stats flags: %+v", st)
	}
	assertPrefix(t, partial, full, "multik arity-1")
}

func TestValidationRejectsMalformedQueries(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 21, Objects: 200, Dim: 2, Vocab: 10, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	cases := []struct {
		name string
		q    *geom.Rect
		ws   []dataset.Keyword
	}{
		{"nil rect", nil, []dataset.Keyword{1, 2}},
		{"NaN bound", &geom.Rect{Lo: []float64{nan, 0}, Hi: []float64{1, 1}}, []dataset.Keyword{1, 2}},
		{"inverted", &geom.Rect{Lo: []float64{1, 0}, Hi: []float64{0, 1}}, []dataset.Keyword{1, 2}},
		{"wrong dim", geom.UniverseRect(3), []dataset.Keyword{1, 2}},
		{"wrong arity", geom.UniverseRect(2), []dataset.Keyword{1, 2, 3}},
		{"duplicate keywords", geom.UniverseRect(2), []dataset.Keyword{1, 1}},
	}
	for _, c := range cases {
		if _, _, err := ix.Collect(c.q, c.ws, QueryOpts{}); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("%s: err = %v, want ErrInvalidQuery", c.name, err)
		}
	}

	// Infinite bounds remain a legal half-open range.
	inf := math.Inf(1)
	if _, _, err := ix.Collect(geom.NewRect([]float64{0, 0}, []float64{inf, inf}),
		[]dataset.Keyword{1, 2}, QueryOpts{}); err != nil {
		t.Errorf("infinite bounds rejected: %v", err)
	}

	// Sphere and point validation on the other families.
	srp, err := BuildSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srp.Collect(&geom.Sphere{Center: geom.Point{0, 0}, Radius: nan},
		[]dataset.Keyword{1, 2}, QueryOpts{}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("NaN radius: err = %v, want ErrInvalidQuery", err)
	}
	if _, _, err := srp.Collect(&geom.Sphere{Center: geom.Point{0, 0}, Radius: -1},
		[]dataset.Keyword{1, 2}, QueryOpts{}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("negative radius: err = %v, want ErrInvalidQuery", err)
	}
	nn, err := BuildLinfNN(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Query(geom.Point{inf, 0}, 3, []dataset.Keyword{1, 2}, QueryOpts{}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("Inf NN point: err = %v, want ErrInvalidQuery", err)
	}
	if _, _, err := nn.Query(geom.Point{0, 0}, 0, []dataset.Keyword{1, 2}, QueryOpts{}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("t=0 NN: err = %v, want ErrInvalidQuery", err)
	}
	sp, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := []geom.Halfspace{{Coef: []float64{nan, 1}, Bound: 0}}
	if _, err := sp.QueryConstraints(bad, []dataset.Keyword{1, 2}, QueryOpts{}, func(int32) {}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("NaN halfspace: err = %v, want ErrInvalidQuery", err)
	}
}

// TestPolicyAcrossFamilies drives the same budget/deadline machinery through
// the families that layer on the framework, confirming each surfaces the
// typed error rather than silently completing.
func TestPolicyAcrossFamilies(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 22, Objects: 1000, Dim: 2, Vocab: 6, DocLen: 4})
	ws := []dataset.Keyword{1, 2}

	sp, err := BuildSPKW(ds, SPKWConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := []geom.Halfspace{{Coef: []float64{1, 0}, Bound: 2}}
	if _, _, err := sp.CollectConstraints(hs, ws, QueryOpts{Policy: ExecPolicy{NodeBudget: 2}}); !errors.Is(err, ErrBudget) {
		t.Errorf("SPKW budget: err = %v, want ErrBudget", err)
	}

	srp, err := BuildSRPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srp.Collect(geom.NewSphere(geom.Point{0.5, 0.5}, 10), ws,
		QueryOpts{Policy: ExecPolicy{NodeBudget: 2}}); !errors.Is(err, ErrBudget) {
		t.Errorf("SRPKW budget: err = %v, want ErrBudget", err)
	}

	hi := workload.Gen(workload.Config{Seed: 23, Objects: 600, Dim: 3, Vocab: 6, DocLen: 4})
	drx, err := BuildORPKWHigh(hi, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := drx.Collect(geom.UniverseRect(3), ws,
		QueryOpts{Policy: ExecPolicy{NodeBudget: 2}}); !errors.Is(err, ErrBudget) {
		t.Errorf("ORPKWHigh budget: err = %v, want ErrBudget", err)
	}
}

// TestLegacyBudgetStaysErrorFree pins the pre-existing QueryOpts.Budget
// contract: a silent stop with BudgetHit set, no error — distinct from the
// policy's ErrBudget.
func TestLegacyBudgetStaysErrorFree(t *testing.T) {
	ds := workload.Gen(workload.Config{Seed: 24, Objects: 800, Dim: 2, Vocab: 6, DocLen: 4})
	ix, err := BuildORPKW(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.Collect(geom.UniverseRect(2), []dataset.Keyword{1, 2}, QueryOpts{Budget: 3})
	if err != nil {
		t.Fatalf("legacy Budget returned error %v", err)
	}
	if !st.BudgetHit {
		t.Fatal("legacy Budget did not flag BudgetHit")
	}
}
