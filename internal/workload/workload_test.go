package workload

import (
	"math"
	"math/rand"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

func TestGenDefaults(t *testing.T) {
	ds := Gen(Config{Seed: 1, Objects: 100})
	if ds.Len() != 100 || ds.Dim() != 2 {
		t.Fatalf("defaults wrong: len=%d dim=%d", ds.Len(), ds.Dim())
	}
	if ds.N() < 100 {
		t.Fatal("every document must be non-empty")
	}
}

func TestGenDeterministic(t *testing.T) {
	a := Gen(Config{Seed: 42, Objects: 50})
	b := Gen(Config{Seed: 42, Objects: 50})
	for i := 0; i < 50; i++ {
		if !a.Point(int32(i)).Equal(b.Point(int32(i))) {
			t.Fatal("same seed must give same points")
		}
	}
	c := Gen(Config{Seed: 43, Objects: 50})
	same := true
	for i := 0; i < 50; i++ {
		if !a.Point(int32(i)).Equal(c.Point(int32(i))) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestGenGridIsIntegral(t *testing.T) {
	ds := Gen(Config{Seed: 2, Objects: 80, Points: "grid", GridSide: 100})
	for i := 0; i < ds.Len(); i++ {
		for _, c := range ds.Point(int32(i)) {
			if c != float64(int64(c)) || c < 0 || c >= 100 {
				t.Fatalf("grid coordinate %v out of contract", c)
			}
		}
	}
}

func TestGenCluster(t *testing.T) {
	ds := Gen(Config{Seed: 3, Objects: 200, Points: "cluster", Clusters: 3})
	if ds.Len() != 200 {
		t.Fatal("cluster generation lost objects")
	}
}

func TestGenPlantedExactOut(t *testing.T) {
	for _, out := range []int{0, 1, 17, 100} {
		ds, kws, region := GenPlanted(Planted{Seed: 4, Objects: 600, Dim: 2, K: 2, Out: out, Partial: 50})
		got := ds.Filter(region, kws)
		if len(got) != out {
			t.Fatalf("out=%d: oracle found %d matches", out, len(got))
		}
		// Full-space matches also equal Out: partial objects never carry
		// all keywords.
		all := ds.Filter(geom.FullSpace{}, kws)
		if len(all) != out {
			t.Fatalf("out=%d: full-space matches %d", out, len(all))
		}
	}
}

func TestGenPlantedPostingSizes(t *testing.T) {
	ds, kws, _ := GenPlanted(Planted{Seed: 5, Objects: 2000, Dim: 2, K: 2, Out: 30, Partial: 200})
	for _, w := range kws {
		count := 0
		for i := 0; i < ds.Len(); i++ {
			if ds.Has(int32(i), w) {
				count++
			}
		}
		if count != 230 { // Out + Partial
			t.Fatalf("posting size of keyword %d = %d, want 230", w, count)
		}
	}
}

func TestGenPlantedGrowsObjectBudget(t *testing.T) {
	ds, _, _ := GenPlanted(Planted{Seed: 6, Objects: 10, Dim: 2, K: 2, Out: 50, Partial: 50})
	if ds.Len() < 150 {
		t.Fatalf("object budget not grown: %d", ds.Len())
	}
}

func TestRandRectInsideUnitCube(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		r := RandRect(rng, 3, 0.25)
		for j := 0; j < 3; j++ {
			side := r.Hi[j] - r.Lo[j]
			if r.Lo[j] < 0 || r.Hi[j] > 1 || side < 0.25-1e-12 || side > 0.25+1e-12 {
				t.Fatalf("rect %v violates contract", r)
			}
		}
	}
}

func TestRandKeywordsDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		ws := RandKeywords(rng, 40, 3)
		if err := dataset.ValidateKeywords(ws); err != nil {
			t.Fatalf("invalid keywords: %v", err)
		}
	}
}

func TestRandHalfspacesSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// frac = 0.5 keeps the center; frac near 0 rejects it.
	hsWide := RandHalfspaces(rng, 2, 1, 0.9)
	center := geom.Point{0.5, 0.5}
	if !hsWide[0].Contains(center) {
		t.Fatal("wide halfspace must keep the center")
	}
	hsNarrow := RandHalfspaces(rng, 2, 1, 0.1)
	if hsNarrow[0].Contains(center) {
		t.Fatal("narrow halfspace must exclude the center")
	}
}

func TestGenAdversarialOutZero(t *testing.T) {
	for _, k := range []int{2, 3} {
		ds, kws, slab := GenAdversarial(Adversarial{Seed: 9, Objects: 2000, Dim: 2, K: k})
		if len(kws) != k {
			t.Fatalf("got %d keywords, want %d", len(kws), k)
		}
		if got := ds.Filter(slab, kws); len(got) != 0 {
			t.Fatalf("k=%d: slab should be empty of full matches, found %d", k, len(got))
		}
		// Full matches exist outside the slab.
		if all := ds.Filter(geom.FullSpace{}, kws); len(all) == 0 {
			t.Fatalf("k=%d: no full matches planted at all", k)
		}
	}
}

func TestGenAdversarialSubThresholdPostings(t *testing.T) {
	ds, kws, _ := GenAdversarial(Adversarial{Seed: 10, Objects: 4000, Dim: 2, K: 2})
	threshold := math.Pow(float64(ds.N()), 0.5)
	for _, w := range kws {
		count := 0
		for i := 0; i < ds.Len(); i++ {
			if ds.Has(int32(i), w) {
				count++
			}
		}
		// Posting = partial (sub-threshold) + pairs; must stay within a
		// small factor of the threshold, as the worst case demands.
		if float64(count) > 3*threshold {
			t.Fatalf("keyword %d posting %d far above threshold %.0f", w, count, threshold)
		}
		if count == 0 {
			t.Fatalf("keyword %d absent", w)
		}
	}
}

func TestGenAdversarial3D(t *testing.T) {
	ds, kws, slab := GenAdversarial(Adversarial{Seed: 11, Objects: 1000, Dim: 3, K: 2})
	if ds.Dim() != 3 || slab.Dim() != 3 {
		t.Fatal("dimension plumbing broken")
	}
	if got := ds.Filter(slab, kws); len(got) != 0 {
		t.Fatalf("3D slab should be empty, found %d", len(got))
	}
}
