// Package workload generates the synthetic datasets and queries the
// benchmark harness runs. The paper evaluates nothing empirically, so the
// goal of a workload here is control, not realism: every generator exposes
// the variables the theory predicts behavior in — N, k, OUT, t, keyword
// frequency, selectivity — so the harness can sweep one variable at a time
// and fit the exponents of Table 1.
package workload

import (
	"math"
	"math/rand"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// Config describes a generic dataset.
type Config struct {
	Seed    int64
	Objects int // number of objects |D|
	Dim     int
	Vocab   int     // W: number of distinct keywords
	DocLen  int     // mean document length (doc sizes vary in [1, 2*DocLen))
	ZipfS   float64 // keyword skew; <= 1 means near-uniform (default 1.2)
	// Points selects the coordinate distribution: "uniform" (default) in
	// [0,1)^d, "cluster" (a mixture of Gaussians), or "grid" for integer
	// coordinates in [0, GridSide)^d (the L2NN-KW setting).
	Points   string
	GridSide int64
	Clusters int
}

func (c Config) normalize() Config {
	if c.Dim <= 0 {
		c.Dim = 2
	}
	if c.Vocab <= 0 {
		c.Vocab = 1000
	}
	if c.DocLen <= 0 {
		c.DocLen = 6
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Points == "" {
		c.Points = "uniform"
	}
	if c.GridSide <= 0 {
		c.GridSide = 1 << 20
	}
	if c.Clusters <= 0 {
		c.Clusters = 8
	}
	return c
}

// Gen produces a dataset under the configuration.
func Gen(cfg Config) *dataset.Dataset {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Vocab-1))
	objs := make([]dataset.Object, cfg.Objects)
	var centers []geom.Point
	if cfg.Points == "cluster" {
		centers = make([]geom.Point, cfg.Clusters)
		for i := range centers {
			centers[i] = randomPoint(rng, cfg.Dim)
		}
	}
	for i := range objs {
		objs[i] = dataset.Object{
			Point: genPoint(rng, cfg, centers),
			Doc:   genDoc(rng, zipf, cfg),
		}
	}
	return dataset.MustNew(objs)
}

func genPoint(rng *rand.Rand, cfg Config, centers []geom.Point) geom.Point {
	switch cfg.Points {
	case "grid":
		p := make(geom.Point, cfg.Dim)
		for j := range p {
			p[j] = float64(rng.Int63n(cfg.GridSide))
		}
		return p
	case "cluster":
		c := centers[rng.Intn(len(centers))]
		p := make(geom.Point, cfg.Dim)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*0.03
		}
		return p
	default:
		return randomPoint(rng, cfg.Dim)
	}
}

func randomPoint(rng *rand.Rand, dim int) geom.Point {
	p := make(geom.Point, dim)
	for j := range p {
		p[j] = rng.Float64()
	}
	return p
}

func genDoc(rng *rand.Rand, zipf *rand.Zipf, cfg Config) []dataset.Keyword {
	l := 1 + rng.Intn(2*cfg.DocLen-1)
	doc := make([]dataset.Keyword, 0, l)
	for len(doc) < l {
		doc = append(doc, dataset.Keyword(zipf.Uint64()))
	}
	return doc
}

// Planted describes a dataset with controlled query-relevant structure: the
// first K vocabulary entries are the query keywords; exactly Out objects
// carry all K of them and lie inside Region; Partial objects per keyword
// carry that keyword alone (plus background fillers) anywhere in space.
// Querying (Region, keywords 0..K-1) therefore has output size exactly Out,
// while each posting list has size Out + Partial — the two knobs the
// tightness discussion of Section 1.2 separates.
type Planted struct {
	Seed    int64
	Objects int // total objects; must exceed Out + K*Partial
	Dim     int
	Vocab   int
	DocLen  int
	K       int        // number of query keywords (>= 2)
	Out     int        // objects matching all K keywords inside Region
	Partial int        // per-keyword objects matching exactly that keyword
	Region  *geom.Rect // nil means the unit cube scaled to [0.4, 0.6]^d
}

// GenPlanted produces the dataset and the query keyword tuple.
func GenPlanted(cfg Planted) (*dataset.Dataset, []dataset.Keyword, *geom.Rect) {
	if cfg.K < 2 {
		cfg.K = 2
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 2
	}
	if cfg.Vocab <= cfg.K+1 {
		cfg.Vocab = cfg.K + 100
	}
	if cfg.DocLen <= 0 {
		cfg.DocLen = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := cfg.Region
	if region == nil {
		lo := make([]float64, cfg.Dim)
		hi := make([]float64, cfg.Dim)
		for j := range lo {
			lo[j], hi[j] = 0.4, 0.6
		}
		region = &geom.Rect{Lo: lo, Hi: hi}
	}
	kws := make([]dataset.Keyword, cfg.K)
	for i := range kws {
		kws[i] = dataset.Keyword(i)
	}
	filler := func() dataset.Keyword {
		return dataset.Keyword(cfg.K + rng.Intn(cfg.Vocab-cfg.K))
	}
	fillDoc := func(base []dataset.Keyword) []dataset.Keyword {
		doc := append([]dataset.Keyword(nil), base...)
		for len(doc) < cfg.DocLen {
			doc = append(doc, filler())
		}
		return doc
	}
	inRegion := func() geom.Point {
		p := make(geom.Point, cfg.Dim)
		for j := range p {
			p[j] = region.Lo[j] + rng.Float64()*(region.Hi[j]-region.Lo[j])
		}
		return p
	}
	need := cfg.Out + cfg.K*cfg.Partial
	if cfg.Objects < need+1 {
		cfg.Objects = need + 1
	}
	objs := make([]dataset.Object, 0, cfg.Objects)
	for i := 0; i < cfg.Out; i++ {
		objs = append(objs, dataset.Object{Point: inRegion(), Doc: fillDoc(kws)})
	}
	for w := 0; w < cfg.K; w++ {
		for i := 0; i < cfg.Partial; i++ {
			objs = append(objs, dataset.Object{
				Point: randomPoint(rng, cfg.Dim),
				Doc:   fillDoc([]dataset.Keyword{dataset.Keyword(w)}),
			})
		}
	}
	for len(objs) < cfg.Objects {
		objs = append(objs, dataset.Object{
			Point: randomPoint(rng, cfg.Dim),
			Doc:   fillDoc(nil),
		})
	}
	rng.Shuffle(len(objs), func(a, b int) { objs[a], objs[b] = objs[b], objs[a] })
	return dataset.MustNew(objs), kws, region
}

// RandRect returns a random query rectangle of the given side length inside
// the unit cube.
func RandRect(rng *rand.Rand, dim int, side float64) *geom.Rect {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for j := range lo {
		c := rng.Float64() * (1 - side)
		lo[j], hi[j] = c, c+side
	}
	return &geom.Rect{Lo: lo, Hi: hi}
}

// RandKeywords picks k distinct keywords from the vocabulary, weighted
// toward the frequent (low-id) half so intersections are non-trivial.
func RandKeywords(rng *rand.Rand, vocab, k int) []dataset.Keyword {
	if vocab < k {
		panic("workload: vocabulary smaller than k")
	}
	window := 1 + vocab/4
	if window < k {
		window = vocab // narrow window cannot supply k distinct keywords
	}
	seen := make(map[dataset.Keyword]struct{}, k)
	out := make([]dataset.Keyword, 0, k)
	for len(out) < k {
		w := dataset.Keyword(rng.Intn(window))
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

// RandHalfspaces returns s random linear constraints whose conjunction keeps
// roughly frac of the unit cube around its center.
func RandHalfspaces(rng *rand.Rand, dim, s int, frac float64) []geom.Halfspace {
	hs := make([]geom.Halfspace, s)
	for i := range hs {
		coef := make([]float64, dim)
		var norm float64
		for j := range coef {
			coef[j] = rng.NormFloat64()
			norm += coef[j] * coef[j]
		}
		norm = math.Sqrt(norm)
		var centerVal float64
		for j := range coef {
			coef[j] /= norm
			centerVal += coef[j] * 0.5
		}
		// Offset so the constraint boundary sits frac-deep past the center.
		hs[i] = geom.Halfspace{Coef: coef, Bound: centerVal + (frac-0.5)*0.5}
	}
	return hs
}

// Adversarial describes the worst-case-shaped workload the upper bounds of
// Table 1 are tight against. Three ingredients:
//
//   - per query keyword, a posting list sized just below the root's
//     large/small threshold N^{1-1/K}, so the query's small-keyword path
//     must scan Theta(N^{1-1/K}) materialized entries — the first additive
//     term of expression (4);
//   - objects carrying all K keywords ("full matches") spread everywhere
//     except a thin slab, so a slab query has OUT = 0 while the
//     non-emptiness tensors stay set along the whole search boundary — the
//     crossing-sensitivity term;
//   - uniform filler traffic.
type Adversarial struct {
	Seed    int64
	Objects int
	Dim     int
	K       int
	DocLen  int
}

// SlabLo and SlabHi bound the empty slab on dimension 0.
const (
	SlabLo = 0.47
	SlabHi = 0.53
)

// GenAdversarial produces the dataset, the query keywords, and the slab
// query rectangle (whose result is empty by construction).
func GenAdversarial(cfg Adversarial) (*dataset.Dataset, []dataset.Keyword, *geom.Rect) {
	if cfg.K < 2 {
		cfg.K = 2
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 2
	}
	if cfg.DocLen < cfg.K {
		cfg.DocLen = cfg.K + 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	kws := make([]dataset.Keyword, cfg.K)
	for i := range kws {
		kws[i] = dataset.Keyword(i)
	}
	vocab := cfg.K + 256
	filler := func() dataset.Keyword {
		return dataset.Keyword(cfg.K + rng.Intn(vocab-cfg.K))
	}
	fillDoc := func(base []dataset.Keyword) []dataset.Keyword {
		doc := append([]dataset.Keyword(nil), base...)
		for len(doc) < cfg.DocLen {
			doc = append(doc, filler())
		}
		return doc
	}
	// Points avoiding / covering the slab on dimension 0.
	offSlab := func() geom.Point {
		p := make(geom.Point, cfg.Dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		if p[0] >= SlabLo && p[0] <= SlabHi {
			if rng.Intn(2) == 0 {
				p[0] = rng.Float64() * (SlabLo - 0.01)
			} else {
				p[0] = SlabHi + 0.01 + rng.Float64()*(1-SlabHi-0.01)
			}
		}
		return p
	}
	anywhere := func() geom.Point {
		p := make(geom.Point, cfg.Dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		return p
	}
	nEst := float64(cfg.Objects * cfg.DocLen)
	partial := int(0.9 * math.Pow(nEst, 1-1/float64(cfg.K)))
	pairs := cfg.Objects / 16
	objs := make([]dataset.Object, 0, cfg.Objects)
	for i := 0; i < pairs; i++ {
		objs = append(objs, dataset.Object{Point: offSlab(), Doc: fillDoc(kws)})
	}
	for w := 0; w < cfg.K; w++ {
		for i := 0; i < partial; i++ {
			objs = append(objs, dataset.Object{
				Point: anywhere(),
				Doc:   fillDoc([]dataset.Keyword{dataset.Keyword(w)}),
			})
		}
	}
	for len(objs) < cfg.Objects {
		objs = append(objs, dataset.Object{Point: anywhere(), Doc: fillDoc(nil)})
	}
	rng.Shuffle(len(objs), func(a, b int) { objs[a], objs[b] = objs[b], objs[a] })
	lo := make([]float64, cfg.Dim)
	hi := make([]float64, cfg.Dim)
	lo[0], hi[0] = SlabLo+0.005, SlabHi-0.005
	for j := 1; j < cfg.Dim; j++ {
		lo[j], hi[j] = math.Inf(-1), math.Inf(1)
	}
	return dataset.MustNew(objs), kws, &geom.Rect{Lo: lo, Hi: hi}
}
