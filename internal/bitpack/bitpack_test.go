package bitpack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

func build1D(rng *rand.Rand, n, vocab int, denseFrac float64) *dataset.Dataset {
	objs := make([]dataset.Object, n)
	for i := range objs {
		var doc []dataset.Keyword
		// Keyword 0 and 1 are dense with probability denseFrac.
		for w := dataset.Keyword(0); w < 2; w++ {
			if rng.Float64() < denseFrac {
				doc = append(doc, w)
			}
		}
		doc = append(doc, 2+dataset.Keyword(rng.Intn(vocab-2)))
		objs[i] = dataset.Object{Point: geom.Point{rng.Float64()}, Doc: doc}
	}
	return dataset.MustNew(objs)
}

func brute(ds *dataset.Dataset, lo, hi float64, ws []dataset.Keyword) []int32 {
	var out []int32
	for i := 0; i < ds.Len(); i++ {
		id := int32(i)
		c := ds.Point(id)[0]
		if c >= lo && c <= hi && ds.HasAll(id, ws) {
			out = append(out, id)
		}
	}
	return out
}

func checkEqual(t *testing.T, got, want []int32) {
	t.Helper()
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("element %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestRejectsHigherDimensions(t *testing.T) {
	ds := dataset.MustNew([]dataset.Object{{Point: geom.Point{1, 2}, Doc: []dataset.Keyword{0}}})
	if _, err := Build(ds); err == nil {
		t.Fatal("2D dataset must be rejected")
	}
}

func TestDensePathMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := build1D(rng, 2000, 32, 0.5) // keywords 0,1 dense
	ix, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	if ix.DenseKeywords() == 0 {
		t.Fatal("expected dense keywords in this workload")
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 0.8
		hi := lo + rng.Float64()*0.2
		got, st, err := ix.Collect(lo, hi, []dataset.Keyword{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if st.WordOps == 0 && len(got) > 0 {
			t.Fatal("dense query did not take the word-parallel path")
		}
		checkEqual(t, got, brute(ds, lo, hi, []dataset.Keyword{0, 1}))
	}
}

func TestSparsePathMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := build1D(rng, 2000, 800, 0.3)
	ix, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 0.8
		hi := lo + rng.Float64()*0.2
		// Rare keyword 2.. range: likely sparse.
		ws := []dataset.Keyword{0, 2 + dataset.Keyword(rng.Intn(700))}
		got, _, err := ix.Collect(lo, hi, ws)
		if err != nil {
			t.Fatal(err)
		}
		checkEqual(t, got, brute(ds, lo, hi, ws))
	}
}

func TestSingleKeyword(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := build1D(rng, 500, 16, 0.4)
	ix, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Collect(0, 1, []dataset.Keyword{0})
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, got, brute(ds, 0, 1, []dataset.Keyword{0}))
}

func TestManyKeywords(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := build1D(rng, 1500, 8, 0.7)
	ix, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	ws := []dataset.Keyword{0, 1, 2, 3}
	got, _, err := ix.Collect(0.1, 0.9, ws)
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, got, brute(ds, 0.1, 0.9, ws))
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix, err := Build(build1D(rng, 100, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Collect(0, 1, nil); err == nil {
		t.Fatal("empty keywords must error")
	}
	if _, _, err := ix.Collect(0, 1, []dataset.Keyword{1, 1}); err == nil {
		t.Fatal("duplicates must error")
	}
}

func TestAbsentKeywordAndEmptyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ix, err := Build(build1D(rng, 100, 8, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Collect(0, 1, []dataset.Keyword{0, 9999})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("absent keyword produced results")
	}
	got, _, err = ix.Collect(2, 3, []dataset.Keyword{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("out-of-range query produced results")
	}
}

func TestWordBoundaries(t *testing.T) {
	// Exactly 128 objects at integer coordinates: range cuts at word edges.
	objs := make([]dataset.Object, 128)
	for i := range objs {
		objs[i] = dataset.Object{Point: geom.Point{float64(i)}, Doc: []dataset.Keyword{0, 1}}
	}
	ds := dataset.MustNew(objs)
	ix, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]float64{{0, 127}, {0, 63}, {64, 127}, {63, 64}, {1, 126}, {0, 0}, {127, 127}} {
		got, _, err := ix.Collect(r[0], r[1], []dataset.Keyword{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		want := int(r[1]-r[0]) + 1
		if len(got) != want {
			t.Fatalf("range [%v,%v]: got %d, want %d", r[0], r[1], len(got), want)
		}
	}
}

// Property: agrees with brute force on arbitrary random instances.
func TestAgainstBruteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 2 + rng.Intn(300)
		ds := build1D(rng, n, 4+rng.Intn(12), rng.Float64())
		ix, err := Build(ds)
		if err != nil {
			return false
		}
		for q := 0; q < 5; q++ {
			lo := rng.Float64()
			hi := lo + rng.Float64()*0.5
			k := 1 + rng.Intn(3)
			seen := map[dataset.Keyword]bool{}
			var ws []dataset.Keyword
			for len(ws) < k {
				w := dataset.Keyword(rng.Intn(6))
				if !seen[w] {
					seen[w] = true
					ws = append(ws, w)
				}
			}
			got, _, err := ix.Collect(lo, hi, ws)
			if err != nil {
				return false
			}
			want := brute(ds, lo, hi, ws)
			if len(got) != len(want) {
				return false
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceWordsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ix, err := Build(build1D(rng, 500, 16, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if ix.SpaceWords() <= 0 {
		t.Fatal("space must be positive")
	}
}
