package bitpack

import (
	"fmt"
	"math/bits"
)

// This file is the packed-posting codec the flat index layouts build on:
// int32 sequences delta-encoded (zigzag, so unsorted sequences round-trip
// too) and bit-packed at a fixed per-block width into 64-bit words, in
// blocks of BlockSize values with per-block skip metadata (first value, max
// value, payload offset). Sorted lists — inverted-index postings, the
// framework's materialized small-keyword lists in id order — compress to a
// few bits per entry; the per-block maxima let an intersection skip a block
// entirely, and decode it only when its [First, Max] window admits a match
// (see invidx.Packed).

// BlockSize is the number of values per packed block. 128 deltas at the
// typical 8-16 bit width keep a block's payload within two or four cache
// lines, so one decode touches a predictable, contiguous byte range.
const BlockSize = 128

// Block is the skip metadata of one packed block. The first value is stored
// raw; the remaining N-1 values are zigzag deltas packed at W bits each
// starting at word Off of the arena.
type Block struct {
	Off   int32 // payload offset into the arena's words
	First int32 // first value of the block, stored raw
	Max   int32 // maximum value in the block (== last value for sorted lists)
	N     int16 // values in the block, 1 <= N <= BlockSize
	W     uint8 // bits per packed delta (0 iff N == 1)
}

// List is a handle to one packed sequence inside a PackedLists arena.
type List struct {
	Block     int32 // index of the first block in the arena
	NumBlocks int32
	N         int32 // total values
}

// PackedLists is an arena of packed sequences: all payload words and all
// block metadata live in two contiguous slices, so a set of posting lists
// becomes two allocations instead of one slice header per keyword.
type PackedLists struct {
	words  []uint64
	blocks []Block
}

// Append packs ids into the arena and returns the list handle. Any int32
// sequence is accepted (deltas are zigzag-encoded); an empty sequence
// returns a zero-block handle.
func (a *PackedLists) Append(ids []int32) List {
	l := List{Block: int32(len(a.blocks)), N: int32(len(ids))}
	for len(ids) > 0 {
		n := len(ids)
		if n > BlockSize {
			n = BlockSize
		}
		a.appendBlock(ids[:n])
		ids = ids[n:]
		l.NumBlocks++
	}
	return l
}

// appendBlock packs one block of 1..BlockSize values.
func (a *PackedLists) appendBlock(ids []int32) {
	b := Block{
		Off:   int32(len(a.words)),
		First: ids[0],
		Max:   ids[0],
		N:     int16(len(ids)),
	}
	var width uint8
	prev := ids[0]
	for _, v := range ids[1:] {
		if v > b.Max {
			b.Max = v
		}
		z := zigzag(v - prev)
		if w := uint8(bits.Len32(z)); w > width {
			width = w
		}
		prev = v
	}
	b.W = width
	if width > 0 {
		need := (int(b.N-1)*int(width) + 63) / 64
		a.words = append(a.words, make([]uint64, need)...)
		words := a.words[b.Off:]
		bit := 0
		prev = ids[0]
		for _, v := range ids[1:] {
			z := uint64(zigzag(v - prev))
			words[bit>>6] |= z << (uint(bit) & 63)
			if spill := bit&63 + int(width) - 64; spill > 0 {
				words[bit>>6+1] = z >> (uint(width) - uint(spill))
			}
			bit += int(width)
			prev = v
		}
	}
	a.blocks = append(a.blocks, b)
}

// Blocks returns the block metadata of l (read-only view into the arena).
func (a *PackedLists) Blocks(l List) []Block {
	return a.blocks[l.Block : l.Block+l.NumBlocks]
}

// DecodeBlock appends the values of block b to dst and returns it. With
// cap(dst)-len(dst) >= BlockSize the call performs no allocation.
func (a *PackedLists) DecodeBlock(b Block, dst []int32) []int32 {
	dst = append(dst, b.First)
	if b.N == 1 {
		return dst
	}
	if b.W == 0 {
		// All deltas zero: the block repeats its first value.
		for i := int16(1); i < b.N; i++ {
			dst = append(dst, b.First)
		}
		return dst
	}
	words := a.words[b.Off:]
	width := uint(b.W)
	mask := uint64(1)<<width - 1
	bit := 0
	prev := b.First
	for i := int16(1); i < b.N; i++ {
		z := words[bit>>6] >> (uint(bit) & 63)
		if spill := bit&63 + int(width) - 64; spill > 0 {
			z |= words[bit>>6+1] << (uint(width) - uint(spill))
		}
		prev += unzigzag(uint32(z & mask))
		dst = append(dst, prev)
		bit += int(width)
	}
	return dst
}

// UnpackInto appends every value of l to dst and returns it.
func (a *PackedLists) UnpackInto(l List, dst []int32) []int32 {
	for _, b := range a.Blocks(l) {
		dst = a.DecodeBlock(b, dst)
	}
	return dst
}

// SpaceWords returns the arena footprint in 64-bit words (payload plus block
// metadata at 2 words per block — the unit the space audits use).
func (a *PackedLists) SpaceWords() int64 {
	return int64(len(a.words)) + 2*int64(len(a.blocks))
}

// NumBlocks returns the total block count across all lists in the arena.
func (a *PackedLists) NumBlocks() int { return len(a.blocks) }

// PackDeltas packs one sequence into a fresh single-list arena — the
// round-trip helper form of the codec (see also PackedLists.Append for
// arena-shared packing).
func PackDeltas(ids []int32) (*PackedLists, List) {
	a := &PackedLists{}
	return a, a.Append(ids)
}

// UnpackDeltas decodes a list packed by PackDeltas (or Append) into a fresh
// slice; it is the round-trip inverse used by the fuzz harness.
func UnpackDeltas(a *PackedLists, l List) []int32 {
	if l.N == 0 {
		return nil
	}
	return a.UnpackInto(l, make([]int32, 0, l.N))
}

// Validate checks a handle against the arena it claims to index — untrusted
// handles (e.g. decoded from disk) must pass before DecodeBlock touches the
// word slice.
func (a *PackedLists) Validate(l List) error {
	if l.Block < 0 || l.NumBlocks < 0 || int(l.Block)+int(l.NumBlocks) > len(a.blocks) {
		return fmt.Errorf("bitpack: list blocks [%d,%d) out of arena range %d", l.Block, l.Block+l.NumBlocks, len(a.blocks))
	}
	var n int32
	for _, b := range a.Blocks(l) {
		if b.N < 1 || b.N > BlockSize {
			return fmt.Errorf("bitpack: block count %d outside [1,%d]", b.N, BlockSize)
		}
		if b.W > 32 {
			return fmt.Errorf("bitpack: delta width %d exceeds 32", b.W)
		}
		need := (int64(b.N-1)*int64(b.W) + 63) / 64
		if b.Off < 0 || int64(b.Off)+need > int64(len(a.words)) {
			return fmt.Errorf("bitpack: block payload [%d,%d) out of arena range %d", b.Off, int64(b.Off)+need, len(a.words))
		}
		n += int32(b.N)
	}
	if n != l.N {
		return fmt.Errorf("bitpack: handle claims %d values, blocks hold %d", l.N, n)
	}
	return nil
}

// zigzag maps a signed delta to an unsigned code with small magnitudes near
// zero (0,-1,1,-2,... -> 0,1,2,3,...), so ascending lists cost the same bits
// as their positive gaps plus one.
func zigzag(d int32) uint32 { return uint32(d<<1) ^ uint32(d>>31) }

func unzigzag(z uint32) int32 { return int32(z>>1) ^ -int32(z&1) }
