package bitpack

// Raw exposes the arena's backing stores for serialization: the payload
// words and the block metadata, in arena order. The returned slices alias
// the arena — callers must treat them as read-only.
func (a *PackedLists) Raw() (words []uint64, blocks []Block) {
	return a.words, a.blocks
}

// FromRaw reassembles an arena from serialized backing stores (the inverse
// of Raw). The handles that indexed the original arena remain valid against
// the result. Untrusted inputs must still pass Validate per handle before
// decoding.
func FromRaw(words []uint64, blocks []Block) PackedLists {
	return PackedLists{words: words, blocks: blocks}
}
