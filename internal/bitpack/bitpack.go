// Package bitpack implements the word-parallel one-dimensional ORP-KW index
// of the literature line the paper reviews in Section 2 (Bille-Pagh-Pagh /
// Goodrich): intersect the query keywords' posting sets in O(N/w)-flavored
// time by AND-ing per-keyword position bitmaps, where w is the machine word
// length. It trades the paper's O(N^{1-1/k}) OUT-insensitive bound for a
// bound of the form O(n k / w + OUT) that is excellent when the lists are
// dense, and serves as the third route in the d=1 ablation (A3 in
// DESIGN.md).
//
// Unlike the framework indexes, the query arity k is not fixed at build
// time: any number of keywords >= 1 is accepted.
package bitpack

import (
	"fmt"
	"math/bits"
	"sort"

	"kwsc/internal/dataset"
)

// Index is a 1D range + keywords index over a dataset with 1-dimensional
// points.
type Index struct {
	ds     *dataset.Dataset
	order  []int32   // object ids sorted by coordinate (ties by id)
	coords []float64 // coordinates in sorted order
	pos    []int32   // object id -> sorted position

	dense     map[dataset.Keyword][]uint64 // position bitmaps (n bits)
	sparse    map[dataset.Keyword][]int32  // sorted position lists
	threshold int
}

// Build constructs the index; the dataset must be 1-dimensional.
func Build(ds *dataset.Dataset) (*Index, error) {
	if ds.Dim() != 1 {
		return nil, fmt.Errorf("bitpack: 1-dimensional datasets only, got d=%d", ds.Dim())
	}
	n := ds.Len()
	ix := &Index{
		ds:        ds,
		order:     make([]int32, n),
		coords:    make([]float64, n),
		pos:       make([]int32, n),
		dense:     make(map[dataset.Keyword][]uint64),
		sparse:    make(map[dataset.Keyword][]int32),
		threshold: n/64 + 1,
	}
	for i := range ix.order {
		ix.order[i] = int32(i)
	}
	sort.Slice(ix.order, func(a, b int) bool {
		pa, pb := ds.Point(ix.order[a])[0], ds.Point(ix.order[b])[0]
		if pa != pb {
			return pa < pb
		}
		return ix.order[a] < ix.order[b]
	})
	for p, id := range ix.order {
		ix.coords[p] = ds.Point(id)[0]
		ix.pos[id] = int32(p)
	}
	// Posting positions per keyword.
	postings := make(map[dataset.Keyword][]int32)
	for p, id := range ix.order {
		for _, w := range ds.Doc(id) {
			postings[w] = append(postings[w], int32(p))
		}
	}
	words := (n + 63) / 64
	for w, lst := range postings {
		if len(lst) >= ix.threshold {
			bm := make([]uint64, words)
			for _, p := range lst {
				bm[p>>6] |= 1 << (uint(p) & 63)
			}
			ix.dense[w] = bm
		} else {
			ix.sparse[w] = lst // already sorted: built in position order
		}
	}
	return ix, nil
}

// Stats instruments one query.
type Stats struct {
	WordOps  int64 // 64-bit AND/мask operations
	ListOps  int64 // sparse-list entries examined
	Reported int
}

// Query reports the ids of all objects with coordinate in [lo, hi] whose
// documents contain every keyword in ws (ws must be non-empty and
// duplicate-free).
func (ix *Index) Query(lo, hi float64, ws []dataset.Keyword, report func(int32)) (Stats, error) {
	var st Stats
	if len(ws) == 0 {
		return st, fmt.Errorf("bitpack: at least one keyword required")
	}
	seen := make(map[dataset.Keyword]struct{}, len(ws))
	for _, w := range ws {
		if _, dup := seen[w]; dup {
			return st, fmt.Errorf("bitpack: duplicate keyword %d", w)
		}
		seen[w] = struct{}{}
	}
	n := len(ix.order)
	from := sort.SearchFloat64s(ix.coords, lo)
	to := sort.Search(n, func(p int) bool { return ix.coords[p] > hi }) // exclusive
	if from >= to {
		return st, nil
	}
	// Choose the cheapest route: the sparsest sparse list, if any.
	var bestSparse []int32
	hasSparse := false
	for _, w := range ws {
		if lst, ok := ix.sparse[w]; ok {
			if !hasSparse || len(lst) < len(bestSparse) {
				bestSparse, hasSparse = lst, true
			}
		} else if _, ok := ix.dense[w]; !ok {
			return st, nil // keyword absent entirely
		}
	}
	if hasSparse {
		start := sort.Search(len(bestSparse), func(i int) bool { return int(bestSparse[i]) >= from })
		for _, p := range bestSparse[start:] {
			if int(p) >= to {
				break
			}
			st.ListOps++
			id := ix.order[p]
			if ix.ds.HasAll(id, ws) {
				report(id)
				st.Reported++
			}
		}
		return st, nil
	}
	// All dense: word-parallel AND over the position window.
	bms := make([][]uint64, len(ws))
	for i, w := range ws {
		bms[i] = ix.dense[w]
	}
	firstWord, lastWord := from>>6, (to-1)>>6
	for wi := firstWord; wi <= lastWord; wi++ {
		acc := ^uint64(0)
		for _, bm := range bms {
			acc &= bm[wi]
			st.WordOps++
		}
		if wi == firstWord {
			acc &= ^uint64(0) << (uint(from) & 63)
		}
		if wi == lastWord {
			rem := uint(to-1)&63 + 1
			if rem < 64 {
				acc &= (1 << rem) - 1
			}
		}
		for acc != 0 {
			b := bits.TrailingZeros64(acc)
			acc &= acc - 1
			report(ix.order[wi<<6+b])
			st.Reported++
		}
	}
	return st, nil
}

// Collect is Query returning a slice.
func (ix *Index) Collect(lo, hi float64, ws []dataset.Keyword) ([]int32, Stats, error) {
	var out []int32
	st, err := ix.Query(lo, hi, ws, func(id int32) { out = append(out, id) })
	return out, st, err
}

// SpaceWords audits the structure: bitmaps, sparse lists, order arrays.
func (ix *Index) SpaceWords() int64 {
	var s int64
	s += int64(len(ix.order))/2 + int64(len(ix.coords)) + int64(len(ix.pos))/2
	for _, bm := range ix.dense {
		s += int64(len(bm))
	}
	for _, lst := range ix.sparse {
		s += int64(len(lst))/2 + 1
	}
	return s
}

// DenseKeywords returns how many keywords carry bitmaps.
func (ix *Index) DenseKeywords() int { return len(ix.dense) }
