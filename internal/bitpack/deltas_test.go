package bitpack

import (
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, ids []int32) {
	t.Helper()
	a, l := PackDeltas(ids)
	if err := a.Validate(l); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := UnpackDeltas(a, l)
	if len(got) != len(ids) {
		t.Fatalf("round trip length: got %d, want %d", len(got), len(ids))
	}
	for i := range got {
		if got[i] != ids[i] {
			t.Fatalf("round trip element %d: got %d, want %d", i, got[i], ids[i])
		}
	}
}

func TestPackDeltasRoundTrip(t *testing.T) {
	cases := [][]int32{
		nil,
		{},
		{0},
		{42},
		{-7},
		{math.MaxInt32},
		{math.MinInt32},
		{math.MinInt32, math.MaxInt32, math.MinInt32},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},             // descending: zigzag handles negative deltas
		{7, 7, 7, 7, 7, 7},          // width 0 blocks
		{0, 1 << 30, 1, 1<<30 + 1},  // alternating huge/small deltas
		{-5, 10, -20, 40, -80, 160}, // sign-alternating
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestPackDeltasBlockBoundaries(t *testing.T) {
	for _, n := range []int{BlockSize - 1, BlockSize, BlockSize + 1, 2 * BlockSize, 2*BlockSize + 3} {
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i * 3)
		}
		roundTrip(t, ids)
		a, l := PackDeltas(ids)
		wantBlocks := (n + BlockSize - 1) / BlockSize
		if int(l.NumBlocks) != wantBlocks {
			t.Fatalf("n=%d: got %d blocks, want %d", n, l.NumBlocks, wantBlocks)
		}
		// Sorted input: each block's Max is its last value, and maxima are
		// non-decreasing — the invariant the skip intersection relies on.
		blocks := a.Blocks(l)
		prevMax := int32(math.MinInt32)
		off := 0
		for _, b := range blocks {
			if b.Max < prevMax {
				t.Fatalf("block maxima not monotone: %d after %d", b.Max, prevMax)
			}
			if last := ids[off+int(b.N)-1]; b.Max != last {
				t.Fatalf("sorted block Max %d != last value %d", b.Max, last)
			}
			prevMax = b.Max
			off += int(b.N)
		}
	}
}

func TestPackDeltasRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(1000)
		ids := make([]int32, n)
		mode := trial % 3
		v := int32(rng.Intn(100))
		for i := range ids {
			switch mode {
			case 0: // sorted, small gaps (posting-list shape)
				v += int32(1 + rng.Intn(50))
				ids[i] = v
			case 1: // arbitrary values
				ids[i] = int32(rng.Uint32())
			case 2: // long runs of equal values
				if rng.Intn(10) == 0 {
					v = int32(rng.Intn(1 << 20))
				}
				ids[i] = v
			}
		}
		roundTrip(t, ids)
	}
}

func TestArenaSharing(t *testing.T) {
	var a PackedLists
	lists := make([]List, 0, 50)
	want := make([][]int32, 0, 50)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n := rng.Intn(400)
		ids := make([]int32, n)
		v := int32(0)
		for j := range ids {
			v += int32(1 + rng.Intn(9))
			ids[j] = v
		}
		lists = append(lists, a.Append(ids))
		want = append(want, ids)
	}
	for i, l := range lists {
		got := UnpackDeltas(&a, l)
		if len(got) != len(want[i]) {
			t.Fatalf("list %d: length %d, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("list %d element %d: got %d, want %d", i, j, got[j], want[i][j])
			}
		}
	}
	if a.SpaceWords() <= 0 {
		t.Fatal("arena space must be positive")
	}
}

func TestDecodeBlockNoAlloc(t *testing.T) {
	ids := make([]int32, BlockSize)
	for i := range ids {
		ids[i] = int32(i * 7)
	}
	a, l := PackDeltas(ids)
	b := a.Blocks(l)[0]
	dst := make([]int32, 0, BlockSize)
	allocs := testing.AllocsPerRun(100, func() {
		dst = a.DecodeBlock(b, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("DecodeBlock into a sized buffer allocates %v per op, want 0", allocs)
	}
}

func TestValidateRejectsCorruptHandles(t *testing.T) {
	a, l := PackDeltas([]int32{1, 5, 9, 200000})
	bad := []List{
		{Block: -1, NumBlocks: 1, N: 4},
		{Block: 0, NumBlocks: 99, N: 4},
		{Block: 0, NumBlocks: l.NumBlocks, N: l.N + 1},
	}
	for i, h := range bad {
		if err := a.Validate(h); err == nil {
			t.Fatalf("case %d: corrupt handle passed validation", i)
		}
	}
}
