package bitpack

import (
	"encoding/binary"
	"testing"
)

// FuzzPackDeltas drives the delta codec with arbitrary int32 sequences (the
// fuzzer's bytes reinterpreted four at a time): packing then unpacking must
// reproduce the input exactly, the handle must validate against its own
// arena, and block metadata must stay within the codec's invariants
// (N in [1, BlockSize], payload in range). Wired into `make fuzz-smoke`.
func FuzzPackDeltas(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0x00, 0x00, 0x00, 0x80})
	seed := make([]byte, 4*(2*BlockSize+1))
	for i := range seed {
		seed[i] = byte(i * 13)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		ids := make([]int32, 0, len(data)/4)
		for len(data) >= 4 {
			ids = append(ids, int32(binary.LittleEndian.Uint32(data)))
			data = data[4:]
		}
		a, l := PackDeltas(ids)
		if err := a.Validate(l); err != nil {
			t.Fatalf("fresh pack fails validation: %v", err)
		}
		got := UnpackDeltas(a, l)
		if len(got) != len(ids) {
			t.Fatalf("round trip length: got %d, want %d", len(got), len(ids))
		}
		for i := range got {
			if got[i] != ids[i] {
				t.Fatalf("round trip element %d: got %d, want %d", i, got[i], ids[i])
			}
		}
	})
}
