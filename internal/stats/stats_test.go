package stats

import (
	"math"
	"strings"
	"testing"
)

func TestFitPowerLawExact(t *testing.T) {
	// y = 3 x^1.5.
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	e, c, r2 := FitPowerLaw(xs, ys)
	if math.Abs(e-1.5) > 1e-9 {
		t.Fatalf("exponent = %v, want 1.5", e)
	}
	if math.Abs(c-3) > 1e-9 {
		t.Fatalf("constant = %v, want 3", c)
	}
	if r2 < 0.999999 {
		t.Fatalf("R^2 = %v, want ~1", r2)
	}
}

func TestFitPowerLawConstant(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	ys := []float64{5, 5, 5, 5}
	e, _, _ := FitPowerLaw(xs, ys)
	if math.Abs(e) > 1e-9 {
		t.Fatalf("flat data exponent = %v, want 0", e)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	xs := []float64{1, 2, 0, 4, 8}
	ys := []float64{2, 4, -7, 8, 16}
	e, _, _ := FitPowerLaw(xs, ys)
	if math.Abs(e-1) > 1e-9 {
		t.Fatalf("exponent = %v, want 1", e)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if e, _, _ := FitPowerLaw([]float64{1}, []float64{2}); !math.IsNaN(e) {
		t.Fatal("single point must yield NaN")
	}
	if e, _, _ := FitPowerLaw([]float64{3, 3}, []float64{2, 5}); !math.IsNaN(e) {
		t.Fatal("vertical data must yield NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatal("non-positive inputs must be skipped")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "ops", "note")
	tb.AddRow(1024, 32.5, "fast")
	tb.AddRow(1<<20, 1e9, "slow")
	out := tb.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "fast") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + separator + 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("second line should be a separator:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		5:          "5",
		0.125:      "0.125",
		math.NaN(): "nan",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
