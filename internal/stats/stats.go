// Package stats provides the measurement utilities of the benchmark
// harness: log-log power-law fitting (for the query-time exponents of
// Table 1) and plain-text table rendering for the per-experiment reports.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// FitPowerLaw fits y = c * x^e by least squares on (ln x, ln y) and returns
// the exponent e, the constant c, and the coefficient of determination R^2.
// Non-positive samples are skipped.
func FitPowerLaw(xs, ys []float64) (e, c, r2 float64) {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return math.NaN(), math.NaN(), 0
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN(), 0
	}
	e = (n*sxy - sx*sy) / den
	lc := (sy - e*sx) / n
	c = math.Exp(lc)
	// R^2.
	my := sy / n
	var ssTot, ssRes float64
	for i := range lx {
		pred := lc + e*lx[i]
		ssRes += (ly[i] - pred) * (ly[i] - pred)
		ssTot += (ly[i] - my) * (ly[i] - my)
	}
	if ssTot == 0 {
		return e, c, 1
	}
	return e, c, 1 - ssRes/ssTot
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table renders aligned plain-text tables, one experiment report each.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.01 && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
