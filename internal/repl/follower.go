package repl

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kwsc/internal/core"
	"kwsc/internal/obs"
	"kwsc/internal/wal"
)

// Failpoint sites in the replication apply path (see core.ArmFailpoint).
const (
	// FPApply fires before each shipped record is applied — arming it with a
	// panic simulates a follower killed mid-replay.
	FPApply = "repl/apply"
	// FPBootstrap fires after the checkpoint download lands but before the
	// follower's durable state opens over it.
	FPBootstrap = "repl/bootstrap"
)

// ErrDiverged reports that a shipped record could not be replayed exactly:
// the follower's state no longer matches the primary's logged history (a
// sequence gap, an insert that produced a different handle, or a delete of a
// dead handle). A diverged follower stops applying rather than serve a wrong
// history; the operator must re-seed it from a checkpoint.
var ErrDiverged = errors.New("repl: follower state diverged from shipped log")

// FollowerConfig configures a read replica of one shipped durable directory.
type FollowerConfig struct {
	// Dir is the follower's own durable directory. Its WAL journals every
	// applied record, so a crash resumes from local recovery at the last
	// applied sequence — the checkpoint is only downloaded when Dir is empty
	// or the primary reports the tail pruned.
	Dir string
	// Primary is the base URL of the primary's shipper surface (the prefix
	// Shipper.Handler is mounted under), e.g. http://host:8080/repl/v1/shard/000.
	Primary string
	Dim, K  int

	// Shard labels this follower's applied-seq gauge. Defaults to
	// filepath.Base(Dir).
	Shard string
	// PollInterval is the tail poll cadence while healthy (default 50ms).
	PollInterval time.Duration
	// RetryBase seeds the jittered exponential backoff after a failed poll
	// (default PollInterval); MaxBackoff caps it (default 3s).
	RetryBase  time.Duration
	MaxBackoff time.Duration
	// MaxBatchBytes caps each requested tail batch (0 = server default).
	MaxBatchBytes int
	// Client issues the shipping requests. Defaults to a client with a 5s
	// timeout so a stalled shipper turns into a retry, not a hung follower.
	Client *http.Client
	// WALOptions are passed through to the follower's local wal.Open.
	WALOptions []wal.Option
}

func (c *FollowerConfig) withDefaults() FollowerConfig {
	cc := *c
	if cc.Shard == "" {
		cc.Shard = filepath.Base(cc.Dir)
	}
	if cc.PollInterval <= 0 {
		cc.PollInterval = 50 * time.Millisecond
	}
	if cc.RetryBase <= 0 {
		cc.RetryBase = cc.PollInterval
	}
	if cc.MaxBackoff <= 0 {
		cc.MaxBackoff = 3 * time.Second
	}
	if cc.Client == nil {
		cc.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return cc
}

// Follower is a continuously-tailing read replica. Its queries go through the
// embedded durable index and therefore see exactly the acked prefix
// [1, AppliedSeq()] of the primary's history.
type Follower struct {
	cfg   FollowerConfig
	gauge *obs.Gauge

	mu sync.Mutex // guards d across re-bootstrap (410) transitions
	d  *wal.Durable

	applied    atomic.Uint64 // last applied primary seq
	primarySeq atomic.Uint64 // newest LastSeq the primary has reported
	caughtUpAt atomic.Int64  // unixnano of the report the follower last fully applied
	bootstraps atomic.Uint64

	stop    chan struct{}
	done    chan struct{}
	running bool // whether run() was launched (StartFollower)
	// LastErr is best-effort diagnostics for health endpoints.
	lastErr atomic.Pointer[string]
}

// OpenFollower seeds (if needed) and opens a follower's local state without
// starting the tail loop; callers drive catch-up with Poll or Run. A Dir that
// already holds state is recovered locally — the checkpoint is NOT
// re-downloaded.
func OpenFollower(cfg FollowerConfig) (*Follower, error) {
	cfg = (&cfg).withDefaults()
	f := &Follower{
		cfg:   cfg,
		gauge: appliedSeqGauge(cfg.Shard),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	has, err := wal.DirHasState(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if !has {
		if err := f.downloadCheckpoint(); err != nil {
			return nil, err
		}
	}
	if err := f.openLocked(); err != nil {
		return nil, err
	}
	return f, nil
}

// StartFollower opens a follower and starts its tail loop.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	f, err := OpenFollower(cfg)
	if err != nil {
		return nil, err
	}
	f.running = true
	go f.run()
	return f, nil
}

// openLocked (re)opens the durable index over cfg.Dir and aligns the applied
// counters with whatever local recovery produced.
func (f *Follower) openLocked() error {
	d, err := wal.Open(f.cfg.Dir, f.cfg.Dim, f.cfg.K, f.cfg.WALOptions...)
	if err != nil {
		return err
	}
	d.SetReadOnly(true) // only the replay applier may advance replica state
	f.mu.Lock()
	f.d = d
	f.mu.Unlock()
	f.setApplied(d.LastSeq())
	return nil
}

// downloadCheckpoint fetches the primary's newest checkpoint into cfg.Dir
// under its canonical name, fully verifying it before it can be trusted. A
// primary with no checkpoint yet (204) leaves the directory empty — the
// follower simply replays the whole tail from seq 1.
func (f *Follower) downloadCheckpoint() error {
	replBootstraps.Inc()
	f.bootstraps.Add(1)
	resp, err := f.cfg.Client.Get(f.cfg.Primary + "/checkpoint")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return os.MkdirAll(f.cfg.Dir, 0o755)
	case http.StatusOK:
	default:
		return fmt.Errorf("repl: checkpoint fetch: %s", respError(resp))
	}
	seq, err := strconv.ParseUint(resp.Header.Get(HdrSeq), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: checkpoint response missing %s header", HdrSeq)
	}
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return err
	}
	// Same atomicity discipline as the primary's own checkpoint writer:
	// tmp + fsync + rename, so a crashed download never leaves a file that
	// recovery would consider.
	final := filepath.Join(f.cfg.Dir, wal.CheckpointFileName(seq))
	tmp := final + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, cErr := io.Copy(tf, resp.Body)
	if cErr == nil {
		cErr = tf.Sync()
	}
	if err := tf.Close(); err != nil && cErr == nil {
		cErr = err
	}
	if cErr != nil {
		os.Remove(tmp)
		return cErr
	}
	if _, err := wal.ValidateCheckpointFile(tmp); err != nil {
		os.Remove(tmp)
		replCRCRefusals.Inc()
		return fmt.Errorf("repl: downloaded checkpoint refused: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	core.Failpoint(FPBootstrap)
	return nil
}

// Poll performs one tail fetch-and-apply round trip, returning the number of
// records applied. It is the unit the Run loop repeats and the handle tests
// use for deterministic catch-up.
func (f *Follower) Poll() (applied int, err error) {
	from := f.applied.Load() + 1
	url := fmt.Sprintf("%s/wal?from=%d", f.cfg.Primary, from)
	if f.cfg.MaxBatchBytes > 0 {
		url += fmt.Sprintf("&max_bytes=%d", f.cfg.MaxBatchBytes)
	}
	resp, err := f.cfg.Client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	reportTime := time.Now()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The primary pruned our position: re-seed from its newest
		// checkpoint, then resume tailing from the recovered sequence.
		return 0, f.reseed()
	default:
		return 0, fmt.Errorf("repl: tail fetch: %s", respError(resp))
	}
	reported, err := strconv.ParseUint(resp.Header.Get(HdrLastSeq), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: tail response missing %s header", HdrLastSeq)
	}
	f.primarySeq.Store(reported)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	applied, err = f.applyFrames(body)
	if err != nil {
		return applied, err
	}
	a := f.applied.Load()
	if reported > a {
		replLagSeq.Observe(int64(reported - a))
	} else {
		replLagSeq.Observe(0)
		f.caughtUpAt.Store(reportTime.UnixNano())
	}
	return applied, nil
}

// applyFrames verifies and applies a shipped frame stream in order. A torn
// frame at the end of the stream is benign (the next poll re-requests from
// the same position); a checksum or structural failure, a sequence gap, or a
// replay that does not reproduce the primary's logged handles stops the
// follower without applying the offending record.
func (f *Follower) applyFrames(frames []byte) (applied int, err error) {
	f.mu.Lock()
	d := f.d
	f.mu.Unlock()
	if d == nil {
		return 0, wal.ErrClosed
	}
	off := 0
	for off < len(frames) {
		payload, next, serr := wal.NextFrame(frames, off)
		if serr == io.EOF {
			break
		}
		if serr != nil {
			if errors.Is(serr, wal.ErrTornFrame) {
				replTornRetries.Inc()
				return applied, nil // truncated transfer: re-request next poll
			}
			replCRCRefusals.Inc()
			return applied, serr // ErrCorrupt: refuse the stream
		}
		op, derr := wal.DecodeShipped(payload)
		if derr != nil {
			replCRCRefusals.Inc()
			return applied, derr
		}
		if want := f.applied.Load() + 1; op.Seq != want {
			return applied, fmt.Errorf("%w: shipped seq %d, want %d", ErrDiverged, op.Seq, want)
		}
		core.Failpoint(FPApply)
		if op.Delete {
			ok, aerr := d.ReplayDelete(op.Handle)
			if aerr != nil {
				return applied, aerr
			}
			if !ok {
				return applied, fmt.Errorf("%w: delete of dead handle %d at seq %d", ErrDiverged, op.Handle, op.Seq)
			}
		} else {
			h, aerr := d.ReplayInsert(op.Obj)
			if aerr != nil {
				return applied, aerr
			}
			if h != op.Handle {
				return applied, fmt.Errorf("%w: insert produced handle %d, primary logged %d at seq %d",
					ErrDiverged, h, op.Handle, op.Seq)
			}
		}
		f.setApplied(op.Seq)
		replFramesApplied.Inc()
		applied++
		off = next
	}
	return applied, nil
}

// reseed handles a pruned tail: close local state, download the primary's
// newest checkpoint, and reopen. Local recovery loads the newer checkpoint
// and skips any stale local segment records at or below its base.
func (f *Follower) reseed() error {
	f.mu.Lock()
	d := f.d
	f.d = nil
	f.mu.Unlock()
	if d != nil {
		if err := d.Close(); err != nil {
			return err
		}
	}
	if err := f.downloadCheckpoint(); err != nil {
		return err
	}
	return f.openLocked()
}

// run tails the primary until Close, backing off with capped jittered
// exponential delays while the primary is unreachable or refusing.
func (f *Follower) run() {
	defer close(f.done)
	backoff := time.Duration(0)
	fails := 0
	for {
		wait := f.cfg.PollInterval
		if backoff > 0 {
			wait = backoff
		}
		select {
		case <-f.stop:
			return
		case <-time.After(wait):
		}
		n, err := f.Poll()
		switch {
		case err == nil:
			backoff, fails = 0, 0
			if n > 0 {
				// More may be waiting (batch cap); poll again immediately.
				backoff = time.Nanosecond
			}
		case errors.Is(err, ErrDiverged) || errors.Is(err, wal.ErrCorrupt):
			// Refusal is terminal for the applier: divergence and corruption
			// do not heal with retries. The follower keeps serving its acked
			// prefix; Health surfaces the error.
			f.storeErr(err)
			return
		default:
			f.storeErr(err)
			replRetries.Inc()
			fails++
			backoff = jitteredBackoff(f.cfg.RetryBase, f.cfg.MaxBackoff, fails)
		}
	}
}

// jitteredBackoff returns base·2^(fails-1) capped at max, uniformly jittered
// over [d/2, d) so a fleet of followers does not thunder back in lockstep.
func jitteredBackoff(base, max time.Duration, fails int) time.Duration {
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)))
}

func (f *Follower) setApplied(seq uint64) {
	f.applied.Store(seq)
	f.gauge.Set(int64(seq))
}

func (f *Follower) storeErr(err error) {
	s := err.Error()
	f.lastErr.Store(&s)
}

// AppliedSeq reports the last primary sequence this follower has applied:
// its queries reflect exactly the prefix [1, AppliedSeq()].
func (f *Follower) AppliedSeq() uint64 { return f.applied.Load() }

// PrimarySeq reports the newest LastSeq the primary has reported to this
// follower; AppliedSeq lagging it is the replica's lag in operations.
func (f *Follower) PrimarySeq() uint64 { return f.primarySeq.Load() }

// Bootstraps reports how many checkpoint downloads this follower has
// performed (fresh seed + pruned-tail reseeds).
func (f *Follower) Bootstraps() uint64 { return f.bootstraps.Load() }

// Staleness reports the age of the follower's view: time since the last
// primary report it had fully applied. A follower that has never caught up
// reports a negative duration-free sentinel of -1.
func (f *Follower) Staleness() time.Duration {
	at := f.caughtUpAt.Load()
	if at == 0 {
		return -1
	}
	return time.Since(time.Unix(0, at))
}

// LastErr returns the most recent tail-loop error ("" when healthy).
func (f *Follower) LastErr() string {
	if p := f.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// Durable exposes the follower's local index for read-only serving. It is
// sealed: follower state is owned by the shipped log, so Insert/Delete
// through it return wal.ErrReadOnly instead of diverging the replica.
func (f *Follower) Durable() *wal.Durable {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.d
}

// Close stops the tail loop and closes local state. The local WAL retains
// every applied record, so a reopened follower resumes from AppliedSeq.
func (f *Follower) Close() error {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	if f.running {
		<-f.done
	}
	f.mu.Lock()
	d := f.d
	f.d = nil
	f.mu.Unlock()
	if d != nil {
		return d.Close()
	}
	return nil
}

func respError(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Sprintf("status %d: %s", resp.StatusCode, string(b))
}
