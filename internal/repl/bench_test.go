package repl

import (
	"net/http/httptest"
	"testing"

	"kwsc/internal/wal"
)

// BenchmarkFollowerCatchUp measures cold follower catch-up: each iteration
// opens a fresh follower against a primary holding a ~2000-op history and
// polls until the whole stream is applied (checkpoint download + frame
// decode + replay into the follower's own durable state). ns/op is the full
// catch-up, so ops / (ns/op) is the replication throughput ceiling.
// Deliberately outside the tier-1 BENCH_REGEX baseline — run with:
//
//	go test -run '^$' -bench FollowerCatchUp ./internal/repl/
func BenchmarkFollowerCatchUp(b *testing.B) {
	const nOps = 2000
	dir := b.TempDir()
	d, err := wal.Open(dir, 2, 2, wal.WithSyncPolicy(wal.SyncNone))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	ops := replWorkload(7, nOps)
	handles := map[int]int64{}
	for i, op := range ops {
		if op.del {
			if _, err := d.Delete(handles[op.target]); err != nil {
				b.Fatal(err)
			}
		} else {
			h, err := d.Insert(op.obj)
			if err != nil {
				b.Fatal(err)
			}
			handles[i] = h
		}
	}
	want := d.LastSeq()
	ship := &Shipper{Dir: dir, Dim: 2, K: 2, LastSeq: d.LastSeq}
	srv := httptest.NewServer(ship.Handler())
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := FollowerConfig{
			Dir: b.TempDir(), Primary: srv.URL, Dim: 2, K: 2,
			WALOptions: []wal.Option{wal.WithSyncPolicy(wal.SyncNone)},
		}
		b.StartTimer()
		f, err := OpenFollower(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for f.AppliedSeq() < want {
			if _, err := f.Poll(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(nOps)/float64(b.Elapsed().Seconds()/float64(b.N)), "ops/s")
}
