package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"kwsc/internal/pager"
	"kwsc/internal/wal"
)

// Wire constants of the shipping protocol. The surface is versioned
// independently of /v1 queries: it is an internal replication contract
// between kwsc processes, not a public API.
const (
	// HdrSeq carries the checkpoint's superseded sequence on a checkpoint
	// response.
	HdrSeq = "X-Kwsc-Seq"
	// HdrLastSeq carries the primary's acknowledged LastSeq at response
	// time on every tail response — the follower's lag reference.
	HdrLastSeq = "X-Kwsc-Last-Seq"
	// HdrShippedTo carries the sequence of the last frame included in a
	// tail response body.
	HdrShippedTo = "X-Kwsc-Shipped-To"

	// DefaultMaxBatchBytes bounds one tail response body.
	DefaultMaxBatchBytes = 1 << 20
)

// ShipperMeta is the JSON body of the shipper's meta endpoint.
type ShipperMeta struct {
	Dim           int    `json:"dim"`
	K             int    `json:"k"`
	LastSeq       uint64 `json:"last_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"` // 0 = no checkpoint yet
}

// Shipper serves one durable directory's checkpoint and WAL tail to
// followers. LastSeq must report the owning index's acknowledged sequence —
// the shipper never ships a frame beyond it, so an operation that was logged
// but not acknowledged (a failed fsync awaiting excision) cannot reach a
// follower.
type Shipper struct {
	Dir     string
	Dim, K  int
	LastSeq func() uint64
	// MaxBatchBytes bounds one tail response (0 = DefaultMaxBatchBytes).
	MaxBatchBytes int
}

func (s *Shipper) maxBatch() int {
	if s.MaxBatchBytes > 0 {
		return s.MaxBatchBytes
	}
	return DefaultMaxBatchBytes
}

// Handler returns the shipper's HTTP surface, mounted at the root of
// whatever prefix the caller chooses:
//
//	GET meta        — ShipperMeta JSON
//	GET checkpoint  — newest checkpoint bytes (204 when none), HdrSeq set
//	GET wal?from=N  — verbatim frames for seq in [N, LastSeq], HdrLastSeq
//	                  and HdrShippedTo set; 410 Gone when N was pruned
func (s *Shipper) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /meta", s.handleMeta)
	mux.HandleFunc("GET /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /wal", s.handleWAL)
	return mux
}

func (s *Shipper) handleMeta(w http.ResponseWriter, _ *http.Request) {
	_, ckptSeq, _, err := wal.NewestCheckpoint(s.Dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ShipperMeta{
		Dim: s.Dim, K: s.K, LastSeq: s.LastSeq(), CheckpointSeq: ckptSeq,
	})
}

func (s *Shipper) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	path, seq, ok, err := wal.NewestCheckpoint(s.Dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// The pager reference keeps a concurrent checkpoint+prune from unlinking
	// the file mid-stream: Retire defers deletion to the last Unref.
	f, err := pager.Open(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Unref()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HdrSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.FormatInt(f.Size(), 10))
	n, _ := io.Copy(w, io.NewSectionReader(f, 0, f.Size()))
	replBytesShipped.Add(n)
}

func (s *Shipper) handleWAL(w http.ResponseWriter, r *http.Request) {
	replShipRequests.Inc()
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		http.Error(w, "wal: ?from must be a positive sequence number", http.StatusBadRequest)
		return
	}
	maxBytes := s.maxBatch()
	if mb := r.URL.Query().Get("max_bytes"); mb != "" {
		if v, err := strconv.Atoi(mb); err == nil && v > 0 && v < maxBytes {
			maxBytes = v
		}
	}
	last := s.LastSeq()
	w.Header().Set(HdrLastSeq, strconv.FormatUint(last, 10))
	frames, shippedTo, err := wal.CollectTail(s.Dir, from-1, last, maxBytes)
	if err != nil {
		if errors.Is(err, wal.ErrTailPruned) {
			_, ckptSeq, _, _ := wal.NewestCheckpoint(s.Dir)
			w.Header().Set(HdrSeq, strconv.FormatUint(ckptSeq, 10))
			http.Error(w, fmt.Sprintf("wal: tail from %d pruned; re-seed from checkpoint %d", from, ckptSeq),
				http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(HdrShippedTo, strconv.FormatUint(shippedTo, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frames)))
	n, _ := w.Write(frames)
	replBytesShipped.Add(int64(n))
}
