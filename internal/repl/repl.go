// Package repl replicates a durable dynamic index to read-only follower
// processes by shipping its write-ahead log (DESIGN.md §16).
//
// The primary side is a Shipper: an HTTP surface over one durable directory
// that serves the newest checkpoint (for follower bootstrap) and the
// seq-continuous frame tail after any acknowledged position, bounded by the
// primary's published LastSeq so an unacknowledged operation can never leave
// the machine. Frames travel verbatim — length, crc32c, payload — so the
// follower verifies every byte with the same scanner crash recovery uses.
//
// The follower side is a Follower: it seeds a local durable directory from
// the primary's newest checkpoint, replays the shipped tail into its own
// DynamicORPKW through the normal WAL-journaled write path (every applied
// record is logged locally before it is acknowledged), and tails forever
// with jittered exponential backoff on failure. Because applies run through
// the local WAL, a crashed follower resumes from its own recovery at the
// last applied sequence — no checkpoint re-download — and its queries carry
// the exact acked-prefix semantics of the primary. AppliedSeq, the primary's
// last observed sequence, and the time the follower was last provably caught
// up together make staleness a measured quantity, not a hope.
//
// Divergence is refused, never papered over: a replayed insert must produce
// the handle the primary logged, a replayed delete must hit a live handle,
// and a sequence gap or checksum mismatch stops the applier cold
// (ErrDiverged / wal.ErrCorrupt) rather than applying a wrong history.
package repl

import "kwsc/internal/obs"

// Replication metrics. The applied-seq gauge is per follower directory
// (shard), so a scrape shows exactly how far each replica has replayed;
// the lag histogram records the primary-minus-applied delta observed at
// each successful tail poll.
var (
	replFramesApplied = obs.Default().Counter("kwsc_repl_frames_applied_total")
	replBytesShipped  = obs.Default().Counter("kwsc_repl_ship_bytes_total")
	replShipRequests  = obs.Default().Counter("kwsc_repl_ship_requests_total")
	replBootstraps    = obs.Default().Counter("kwsc_repl_bootstraps_total")
	replCRCRefusals   = obs.Default().Counter("kwsc_repl_crc_refusals_total")
	replTornRetries   = obs.Default().Counter("kwsc_repl_torn_retries_total")
	replRetries       = obs.Default().Counter("kwsc_repl_retries_total")
	replLagSeq        = obs.Default().Histogram("kwsc_repl_lag_seq")
)

func appliedSeqGauge(shard string) *obs.Gauge {
	return obs.Default().Gauge(`kwsc_repl_applied_seq{shard="` + shard + `"}`)
}
