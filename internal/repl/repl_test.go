package repl

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/invidx"
	"kwsc/internal/obs"
	"kwsc/internal/wal"
)

// Fault-injection suite for WAL-shipping replication: a follower is killed
// mid-replay, fed truncated and corrupted streams, starved by a stalled
// shipper, and orphaned by a pruning checkpoint — in every case it must serve
// exactly an acked prefix of the primary's history (verified against an
// inverted-index baseline) and converge once the fault clears.
// Run under -race via `make race` / `make crash`.

// replOp is one step of the primary workload; deletes target the op index of
// a still-live insert.
type replOp struct {
	del    bool
	obj    dataset.Object
	target int
}

func replWorkload(seed int64, n int) []replOp {
	r := rand.New(rand.NewSource(seed))
	var ops []replOp
	var liveInserts []int
	for len(ops) < n {
		if len(liveInserts) > 0 && r.Intn(4) == 0 {
			j := r.Intn(len(liveInserts))
			ops = append(ops, replOp{del: true, target: liveInserts[j]})
			liveInserts = append(liveInserts[:j], liveInserts[j+1:]...)
		} else {
			perm := r.Perm(8)
			doc := make([]dataset.Keyword, 2+r.Intn(3))
			for i := range doc {
				doc[i] = dataset.Keyword(perm[i])
			}
			liveInserts = append(liveInserts, len(ops))
			ops = append(ops, replOp{
				obj: dataset.Object{Point: geom.Point{r.Float64(), r.Float64()}, Doc: doc},
			})
		}
	}
	return ops
}

// applyOps runs ops[from:to] against the primary, recording insert handles.
func applyOps(t *testing.T, d *wal.Durable, ops []replOp, from, to int, handles map[int]int64) {
	t.Helper()
	for i := from; i < to; i++ {
		if ops[i].del {
			ok, err := d.Delete(handles[ops[i].target])
			if err != nil || !ok {
				t.Fatalf("op %d: Delete(%d) = %v, %v", i, handles[ops[i].target], ok, err)
			}
		} else {
			h, err := d.Insert(ops[i].obj)
			if err != nil {
				t.Fatalf("op %d: Insert: %v", i, err)
			}
			handles[i] = h
		}
	}
}

// modelAfter replays ops[:n] into the ground-truth handle→object map,
// assigning handles the way DynamicORPKW does (sequentially per insert).
func modelAfter(ops []replOp, n int) map[int64]dataset.Object {
	live := map[int64]dataset.Object{}
	byOp := map[int]int64{}
	var next int64
	for i := 0; i < n; i++ {
		if ops[i].del {
			delete(live, byOp[ops[i].target])
		} else {
			byOp[i] = next
			live[next] = ops[i].obj
			next++
		}
	}
	return live
}

// verifyPrefix checks the follower's view equals the model at exactly n
// applied ops, comparing query answers against an inverted-index baseline.
func verifyPrefix(t *testing.T, f *Follower, ops []replOp, n int) {
	t.Helper()
	d := f.Durable()
	live := modelAfter(ops, n)
	if d.Len() != len(live) {
		t.Fatalf("follower Len = %d, model at %d ops has %d live objects", d.Len(), n, len(live))
	}
	if len(live) == 0 {
		return
	}
	handles := make([]int64, 0, len(live))
	for h := range live {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	objs := make([]dataset.Object, len(handles))
	for i, h := range handles {
		o := live[h]
		objs[i] = dataset.Object{
			Point: append(geom.Point(nil), o.Point...),
			Doc:   append([]dataset.Keyword(nil), o.Doc...),
		}
	}
	ds, err := dataset.New(objs)
	if err != nil {
		t.Fatalf("baseline dataset: %v", err)
	}
	baseline := invidx.Build(ds)
	rects := []*geom.Rect{
		geom.NewRect([]float64{-1, -1}, []float64{2, 2}),
		geom.NewRect([]float64{0, 0}, []float64{0.5, 0.5}),
		geom.NewRect([]float64{0.3, 0.1}, []float64{0.9, 1}),
	}
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			ws := []dataset.Keyword{dataset.Keyword(a), dataset.Keyword(b)}
			for ri, q := range rects {
				got, _, err := d.Collect(q, ws)
				if err != nil {
					t.Fatalf("Collect(%v): %v", ws, err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				var want []int64
				for _, id := range baseline.KeywordsOnly(q, ws) {
					want = append(want, handles[id])
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("query (rect %d, ws %v): follower %v, baseline %v", ri, ws, got, want)
				}
			}
		}
	}
}

// newPrimary opens a primary durable index and a shipper HTTP server over its
// directory. The extra wrapper counts checkpoint fetches so tests can prove a
// resumed follower did NOT re-download.
func newPrimary(t *testing.T) (d *wal.Durable, srv *httptest.Server, ckptFetches *atomic.Int64) {
	t.Helper()
	dir := t.TempDir()
	d, err := wal.Open(dir, 2, 2)
	if err != nil {
		t.Fatalf("primary Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	ship := &Shipper{Dir: dir, Dim: 2, K: 2, LastSeq: d.LastSeq}
	ckptFetches = &atomic.Int64{}
	h := ship.Handler()
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/checkpoint") {
			ckptFetches.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return d, srv, ckptFetches
}

func followerCfg(t *testing.T, primaryURL string) FollowerConfig {
	t.Helper()
	return FollowerConfig{
		Dir:          filepath.Join(t.TempDir(), "follower"),
		Primary:      primaryURL,
		Dim:          2,
		K:            2,
		PollInterval: 2 * time.Millisecond,
		RetryBase:    2 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	}
}

// pollUntil drives Poll until the follower reaches seq want (or the deadline).
func pollUntil(t *testing.T, f *Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for f.AppliedSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (lastErr=%q)", f.AppliedSeq(), want, f.LastErr())
		}
		if _, err := f.Poll(); err != nil {
			t.Fatalf("Poll at seq %d: %v", f.AppliedSeq(), err)
		}
	}
}

func TestFollowerCatchUpEquality(t *testing.T) {
	prim, srv, _ := newPrimary(t)
	ops := replWorkload(11, 80)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 40, handles)
	if err := prim.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	applyOps(t, prim, ops, 40, 80, handles)

	before := obs.Default().Snapshot()
	cfg := followerCfg(t, srv.URL)
	f, err := OpenFollower(cfg)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()
	// Bootstrap landed the checkpoint: local state starts at its seq, not 0.
	if got := f.AppliedSeq(); got != 40 {
		t.Fatalf("bootstrapped AppliedSeq = %d, want checkpoint seq 40", got)
	}
	pollUntil(t, f, 80)
	verifyPrefix(t, f, ops, 80)

	// The local state is sealed: direct writes are refused (they would
	// silently diverge the replica), while replay keeps flowing.
	if _, err := f.Durable().Insert(ops[0].obj); !errors.Is(err, wal.ErrReadOnly) {
		t.Fatalf("direct Insert on sealed replica: err = %v, want wal.ErrReadOnly", err)
	}
	if _, err := f.Durable().Delete(1); !errors.Is(err, wal.ErrReadOnly) {
		t.Fatalf("direct Delete on sealed replica: err = %v, want wal.ErrReadOnly", err)
	}
	verifyPrefix(t, f, ops, 80)

	if f.PrimarySeq() != 80 {
		t.Errorf("PrimarySeq = %d, want 80", f.PrimarySeq())
	}
	if s := f.Staleness(); s < 0 || s > 10*time.Second {
		t.Errorf("caught-up follower reports staleness %v", s)
	}
	after := obs.Default().Snapshot()
	gauge := `kwsc_repl_applied_seq{shard="` + filepath.Base(cfg.Dir) + `"}`
	if got := after.Gauge(gauge); got != 80 {
		t.Errorf("%s = %d, want 80", gauge, got)
	}
	if d := after.Counter("kwsc_repl_frames_applied_total") - before.Counter("kwsc_repl_frames_applied_total"); d != 40 {
		t.Errorf("frames_applied delta = %d, want 40 (tail after checkpoint)", d)
	}
	if d := after.Counter("kwsc_repl_bootstraps_total") - before.Counter("kwsc_repl_bootstraps_total"); d != 1 {
		t.Errorf("bootstraps delta = %d, want 1", d)
	}
	if d := after.Histogram("kwsc_repl_lag_seq").Count - before.Histogram("kwsc_repl_lag_seq").Count; d < 1 {
		t.Errorf("lag histogram recorded no observations")
	}
	if d := after.Counter("kwsc_repl_ship_bytes_total") - before.Counter("kwsc_repl_ship_bytes_total"); d <= 0 {
		t.Errorf("ship_bytes delta = %d, want > 0", d)
	}
}

// TestFollowerKilledMidReplayResumes kills the follower (panic at the apply
// failpoint) partway through the tail, reopens the same directory, and proves
// it resumes from its last applied seq — no checkpoint re-download — and
// converges to full equality.
func TestFollowerKilledMidReplayResumes(t *testing.T) {
	prim, srv, ckptFetches := newPrimary(t)
	ops := replWorkload(23, 90)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 30, handles)
	if err := prim.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	applyOps(t, prim, ops, 30, 90, handles)

	cfg := followerCfg(t, srv.URL)
	f, err := OpenFollower(cfg)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	fetchesAfterSeed := ckptFetches.Load()

	// Kill mid-replay: the 10th applied record panics mid-Poll, leaving the
	// follower dead between records like a SIGKILL would.
	hits := 0
	core.ArmFailpoint(FPApply, func() {
		hits++
		if hits == 10 {
			panic("follower killed mid-replay")
		}
	})
	t.Cleanup(core.DisarmAllFailpoints)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected the armed failpoint to kill the Poll")
			}
		}()
		for {
			if _, err := f.Poll(); err != nil {
				t.Errorf("Poll before kill: %v", err)
				return
			}
		}
	}()
	core.DisarmAllFailpoints()
	killedAt := f.AppliedSeq()
	if killedAt < 30+9 || killedAt >= 90 {
		t.Fatalf("kill landed at seq %d, want mid-replay in [39, 90)", killedAt)
	}
	// Abandon the dead instance without closing it — its WAL handle stays
	// open, exactly like a killed process — and reopen the directory.
	f2, err := OpenFollower(cfg)
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer f2.Close()
	if got := f2.AppliedSeq(); got != killedAt {
		t.Fatalf("resumed AppliedSeq = %d, want last applied %d", got, killedAt)
	}
	if got := ckptFetches.Load(); got != fetchesAfterSeed {
		t.Fatalf("resume re-downloaded the checkpoint (%d fetches, want %d)", got, fetchesAfterSeed)
	}
	if f2.Bootstraps() != 0 {
		t.Fatalf("resumed follower counted %d bootstraps, want 0", f2.Bootstraps())
	}
	pollUntil(t, f2, 90)
	verifyPrefix(t, f2, ops, 90)
}

// mutateProxy forwards shipping requests upstream, rewriting /wal response
// bodies through mutate. Headers are preserved so only the byte stream lies.
func mutateProxy(t *testing.T, upstream string, mutate func([]byte) []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(upstream + r.URL.Path + "?" + r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if strings.HasSuffix(r.URL.Path, "/wal") && resp.StatusCode == http.StatusOK {
			body = mutate(body)
		}
		for _, hdr := range []string{HdrSeq, HdrLastSeq, HdrShippedTo, "Content-Type"} {
			if v := resp.Header.Get(hdr); v != "" {
				w.Header().Set(hdr, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestTruncatedStreamTornRetry ships every tail batch cut off mid-frame; the
// follower must treat the torn frame as retriable, keep the applied prefix,
// and still converge by re-requesting.
func TestTruncatedStreamTornRetry(t *testing.T) {
	prim, srv, _ := newPrimary(t)
	ops := replWorkload(31, 60)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 60, handles)

	proxy := mutateProxy(t, srv.URL, func(body []byte) []byte {
		if len(body) > 64 {
			return body[:64] // almost always mid-frame
		}
		return body
	})
	before := obs.Default().Snapshot()
	f, err := OpenFollower(followerCfg(t, proxy.URL))
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()
	pollUntil(t, f, 60)
	verifyPrefix(t, f, ops, 60)
	after := obs.Default().Snapshot()
	if d := after.Counter("kwsc_repl_torn_retries_total") - before.Counter("kwsc_repl_torn_retries_total"); d < 1 {
		t.Errorf("torn_retries delta = %d, want >= 1", d)
	}
}

// TestCorruptedStreamRefused flips a byte inside a shipped frame: the
// follower must apply the clean prefix, refuse the rest with ErrCorrupt, and
// never advance past the corruption.
func TestCorruptedStreamRefused(t *testing.T) {
	prim, srv, _ := newPrimary(t)
	ops := replWorkload(47, 40)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 40, handles)

	proxy := mutateProxy(t, srv.URL, func(body []byte) []byte {
		if len(body) < 16 {
			return body
		}
		b := append([]byte(nil), body...)
		b[len(b)-5] ^= 0xFF // payload byte of the last frame
		return b
	})
	before := obs.Default().Snapshot()
	f, err := OpenFollower(followerCfg(t, proxy.URL))
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()
	n, err := f.Poll()
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Poll over corrupted stream: applied %d, err = %v, want ErrCorrupt", n, err)
	}
	applied := f.AppliedSeq()
	if applied >= 40 {
		t.Fatalf("follower applied %d ops through a corrupted stream", applied)
	}
	// The acked prefix it did apply is still a correct prefix.
	verifyPrefix(t, f, ops, int(applied))
	after := obs.Default().Snapshot()
	if d := after.Counter("kwsc_repl_crc_refusals_total") - before.Counter("kwsc_repl_crc_refusals_total"); d < 1 {
		t.Errorf("crc_refusals delta = %d, want >= 1", d)
	}
}

// TestStalledShipperBackoffRecovers starves the follower behind a shipper
// that hangs past the client timeout, then unstalls it; the running tail loop
// must retry with backoff and converge on its own.
func TestStalledShipperBackoffRecovers(t *testing.T) {
	prim, srv, _ := newPrimary(t)
	ops := replWorkload(59, 50)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 50, handles)

	var stalled atomic.Bool
	stalled.Store(true)
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stalled.Load() && strings.HasSuffix(r.URL.Path, "/wal") {
			time.Sleep(250 * time.Millisecond) // past the client timeout
		}
		resp, err := http.Get(srv.URL + r.URL.Path + "?" + r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for _, hdr := range []string{HdrSeq, HdrLastSeq, HdrShippedTo, "Content-Type"} {
			if v := resp.Header.Get(hdr); v != "" {
				w.Header().Set(hdr, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(gate.Close)

	before := obs.Default().Snapshot()
	cfg := followerCfg(t, gate.URL)
	cfg.Client = &http.Client{Timeout: 30 * time.Millisecond}
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer f.Close()

	// Let it fail against the stall at least once, then clear the fault.
	deadline := time.Now().Add(10 * time.Second)
	for obs.Default().Snapshot().Counter("kwsc_repl_retries_total") == before.Counter("kwsc_repl_retries_total") {
		if time.Now().After(deadline) {
			t.Fatal("stalled shipper never produced a retry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stalled.Store(false)
	for f.AppliedSeq() < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d after unstall (lastErr=%q)", f.AppliedSeq(), f.LastErr())
		}
		time.Sleep(5 * time.Millisecond)
	}
	verifyPrefix(t, f, ops, 50)
}

// TestPrunedTailReseeds lets the primary checkpoint past an offline
// follower's position; on reconnect the 410 must trigger a checkpoint
// re-download and the follower must land exactly on the primary's history.
func TestPrunedTailReseeds(t *testing.T) {
	prim, srv, _ := newPrimary(t)
	ops := replWorkload(73, 70)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 20, handles)

	cfg := followerCfg(t, srv.URL)
	f, err := OpenFollower(cfg)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	pollUntil(t, f, 20)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// While the follower is offline: more writes, then a checkpoint that
	// prunes every segment the follower would need, then a fresh tail.
	applyOps(t, prim, ops, 20, 60, handles)
	if err := prim.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	applyOps(t, prim, ops, 60, 70, handles)

	f2, err := OpenFollower(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f2.Close()
	if got := f2.AppliedSeq(); got != 20 {
		t.Fatalf("reopened AppliedSeq = %d, want 20", got)
	}
	pollUntil(t, f2, 70)
	verifyPrefix(t, f2, ops, 70)
	if f2.Bootstraps() != 1 {
		t.Errorf("Bootstraps = %d, want exactly 1 reseed", f2.Bootstraps())
	}
}

// TestCorruptCheckpointRefusedOnBootstrap flips a byte in the shipped
// checkpoint; the follower must refuse to seed from it.
func TestCorruptCheckpointRefusedOnBootstrap(t *testing.T) {
	prim, srv, _ := newPrimary(t)
	ops := replWorkload(89, 30)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 30, handles)
	if err := prim.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(srv.URL + r.URL.Path + "?" + r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if strings.HasSuffix(r.URL.Path, "/checkpoint") && len(body) > 4200 {
			body[4200] ^= 0xFF // inside a data page: page CRC must catch it
		}
		for _, hdr := range []string{HdrSeq, HdrLastSeq, "Content-Type"} {
			if v := resp.Header.Get(hdr); v != "" {
				w.Header().Set(hdr, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}))
	t.Cleanup(proxy.Close)

	cfg := followerCfg(t, proxy.URL)
	if _, err := OpenFollower(cfg); err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("OpenFollower over corrupt checkpoint: err = %v, want refusal", err)
	}
	// The refused download must not have left a checkpoint recovery would eat.
	des, _ := os.ReadDir(cfg.Dir)
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "checkpoint-") && !strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("refused checkpoint left behind as %s", de.Name())
		}
	}
}

// TestShipperNeverShipsUnacked holds the shipper's advertised LastSeq below
// what is physically on disk; frames past it must not leave the primary.
func TestShipperNeverShipsUnacked(t *testing.T) {
	dir := t.TempDir()
	prim, err := wal.Open(dir, 2, 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer prim.Close()
	ops := replWorkload(97, 30)
	handles := map[int]int64{}
	applyOps(t, prim, ops, 0, 30, handles)

	// Advertise only 20 acked ops even though 30 frames are on disk —
	// exactly the window where an op is logged but its fsync has not been
	// acknowledged.
	ship := &Shipper{Dir: dir, Dim: 2, K: 2, LastSeq: func() uint64 { return 20 }}
	srv := httptest.NewServer(ship.Handler())
	t.Cleanup(srv.Close)

	f, err := OpenFollower(followerCfg(t, srv.URL))
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()
	pollUntil(t, f, 20)
	for i := 0; i < 3; i++ {
		if _, err := f.Poll(); err != nil {
			t.Fatalf("Poll: %v", err)
		}
	}
	if got := f.AppliedSeq(); got != 20 {
		t.Fatalf("follower applied %d ops, but only 20 were acked", got)
	}
	verifyPrefix(t, f, ops, 20)
}
