package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"kwsc/internal/codec"
	"kwsc/internal/core"
	"kwsc/internal/pager"
)

// File naming: segments and checkpoints carry their sequence position in the
// name, zero-padded hex so lexicographic order is numeric order.
//
//	wal-<startSeq>.log        frames with seq >= startSeq
//	checkpoint-<lastSeq>.ckpt snapshot superseding all seq <= lastSeq

func segmentPath(dir string, startSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", startSeq))
}

func checkpointPath(dir string, lastSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.ckpt", lastSeq))
}

// parseSeq extracts the hex sequence from a file name with the given prefix
// and suffix; ok is false for foreign files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// writeCheckpointFile atomically persists a snapshot: encode to a tmp file,
// fsync it, rename into place, fsync the directory. The rename is the commit
// point — a crash anywhere before it leaves only an ignorable tmp file, and
// rename-then-crash leaves a complete checkpoint.
//
// Checkpoints are always written in the paged KWCP2 layout (snapshot v2) so
// a later open can serve them in place; readCheckpointAny still accepts the
// legacy KWCP stream for directories written by older builds.
func writeCheckpointFile(dir string, snap *codec.Snapshot) error {
	var buf bytes.Buffer
	if err := codec.WritePagedSnapshot(&buf, snap); err != nil {
		return err
	}
	final := checkpointPath(dir, snap.LastSeq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	data := buf.Bytes()
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		f.Close()
		return err
	}
	core.Failpoint(FPCheckpointWrite)
	if _, err := f.Write(data[half:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	core.Failpoint(FPCheckpointRename)
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// readCheckpointAny fully decodes one checkpoint of either format, sniffing
// the magic: KWCP2 containers go through the paged reader (every page
// checksum verified), legacy KWCP streams through the v1 decoder. All
// checkpoint bytes flow through the pager so pruning's retire protocol sees
// every open (see pruneLocked).
func readCheckpointAny(path string) (*codec.Snapshot, error) {
	f, err := pager.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Unref()
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("wal: reading checkpoint magic: %w", err)
	}
	if string(magic[:]) == codec.PagedMagic {
		return codec.ReadPagedSnapshot(f, f.Size())
	}
	return codec.ReadSnapshot(io.NewSectionReader(f, 0, f.Size()))
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
