package wal

import (
	"fmt"
	"os"
	"sync"
	"time"

	"kwsc/internal/codec"
	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/pager"
)

// Durable is a crash-safe DynamicORPKW: every insert and delete is written
// to the write-ahead log before it is applied and acknowledged, periodic
// checkpoints bound replay time, and Open recovers the exact acknowledged
// state after a crash. Safe for concurrent use: writers are serialized on an
// internal write mutex, while queries, snapshots, and the metrics-style
// accessors (Len, LastSeq, NumBuckets, Tombstones) run lock-free against the
// dynamic index's published copy-on-write state — they never wait on a
// mutation, a checkpoint, or an fsync.
type Durable struct {
	// mu is the WRITE lock. It covers log append + successor-state build +
	// atomic publish (plus checkpoint rotation and Close), which keeps the
	// WAL order identical to the publication order — the invariant snapshot
	// seq semantics rest on. It is never taken on the read path: a reader
	// observing state at seq S sees exactly the acked-WAL prefix [1, S].
	mu        sync.Mutex
	dir       string
	dim, k    int
	cfg       config
	idx       *core.DynamicORPKW
	log       *log
	seq       uint64 // sequence of the last logged record; guarded by mu
	sinceCkpt int
	closed    bool
	readOnly  bool // sealed replica state: direct Insert/Delete refused
	scratch   []byte
}

type config struct {
	bufferCap int
	policy    SyncPolicy
	interval  time.Duration
	autoCkpt  int
	build     []core.BuildOption
	paged     bool
	pagedOpts core.PagedBaseOptions
}

// Option configures Open.
type Option func(*config)

// WithSyncPolicy selects the fsync policy (default SyncEveryOp). Use
// WithSyncInterval to select SyncInterval with a custom period.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithSyncInterval selects the SyncInterval policy with the given fsync
// period (non-positive keeps the 1s default).
func WithSyncInterval(d time.Duration) Option {
	return func(c *config) {
		c.policy = SyncInterval
		if d > 0 {
			c.interval = d
		}
	}
}

// WithBufferCap tunes the dynamic index's unindexed write buffer
// (0 keeps the core default).
func WithBufferCap(n int) Option {
	return func(c *config) { c.bufferCap = n }
}

// WithAutoCheckpoint checkpoints automatically after every n logged
// operations (0, the default, disables automatic checkpoints; Checkpoint
// remains available).
func WithAutoCheckpoint(n int) Option {
	return func(c *config) { c.autoCkpt = n }
}

// WithBuildOptions forwards construction options (parallelism, tracer,
// observability) to the underlying dynamic index and its bucket rebuilds.
func WithBuildOptions(opts ...core.BuildOption) Option {
	return func(c *config) { c.build = append(c.build, opts...) }
}

// WithPagedRecovery makes Open serve a KWCP2 checkpoint in place instead of
// decoding it: the file is mapped (or attached to a bounded pread buffer
// pool, per o) as the dynamic index's immutable bottom layer, so cold start
// is the map plus the WAL-tail replay — no full decode, no index rebuild —
// and the resident footprint is bounded by o.CapPages when o.NoMmap is set.
// Legacy KWCP checkpoints in the directory still recover via full decode.
func WithPagedRecovery(o core.PagedBaseOptions) Option {
	return func(c *config) { c.paged, c.pagedOpts = true, o }
}

// Open recovers (or initializes) a durable dynamic index rooted at dir: it
// loads the newest valid checkpoint, replays the write-ahead log after it —
// truncating a torn tail, refusing mid-log corruption with ErrCorrupt — and
// attaches the journal so subsequent mutations are logged before they are
// acknowledged. dim and k must match any existing state in dir.
func Open(dir string, dim, k int, opts ...Option) (*Durable, error) {
	cfg := config{policy: SyncEveryOp, interval: time.Second}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	rec, err := recoverDir(dir, dim, k, cfg)
	if err != nil {
		return nil, err
	}
	l, err := openLog(rec.segPath, cfg.policy, cfg.interval)
	if err != nil {
		if b := rec.idx.Base(); b != nil {
			b.Close()
		}
		return nil, err
	}
	d := &Durable{
		dir: dir, dim: dim, k: k, cfg: cfg,
		idx: rec.idx, log: l, seq: rec.lastSeq,
	}
	d.idx.SetJournal((*journalHook)(d))
	return d, nil
}

// journalHook adapts Durable to core.Journal without exporting LogInsert /
// LogDelete on the public type. The hooks run inside idx mutations while
// d.mu is already held by the public entry point.
type journalHook Durable

func (j *journalHook) LogInsert(handle int64, obj dataset.Object) error {
	d := (*Durable)(j)
	d.scratch = appendRecord(d.scratch[:0], &record{
		seq: d.seq + 1, op: opInsert, handle: handle, obj: obj,
	})
	if err := d.log.append(d.scratch); err != nil {
		return fmt.Errorf("wal: logging insert: %w", err)
	}
	d.seq++
	return nil
}

func (j *journalHook) LogDelete(handle int64) error {
	d := (*Durable)(j)
	d.scratch = appendRecord(d.scratch[:0], &record{
		seq: d.seq + 1, op: opDelete, handle: handle,
	})
	if err := d.log.append(d.scratch); err != nil {
		return fmt.Errorf("wal: logging delete: %w", err)
	}
	d.seq++
	return nil
}

// Insert adds an object and returns its stable handle. The handle is valid
// — and the operation durable per the sync policy — exactly when the error
// is nil. If an automatic checkpoint was due and failed, the returned error
// wraps the checkpoint failure while the insert itself remains applied and
// logged; errors.Is(err, ErrCheckpoint) distinguishes that case.
func (d *Durable) Insert(obj dataset.Object) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readOnly {
		return 0, ErrReadOnly
	}
	return d.insertLocked(obj)
}

// Delete removes the object with the given handle; deleting an unknown or
// already-deleted handle returns (false, nil) without logging anything.
func (d *Durable) Delete(handle int64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readOnly {
		return false, ErrReadOnly
	}
	return d.deleteLocked(handle)
}

// SetReadOnly seals (or unseals) the index against direct mutation:
// Insert/Delete return ErrReadOnly while the replay path stays open.
// Replication followers seal their local state so embedders cannot
// accidentally diverge a replica from its primary.
func (d *Durable) SetReadOnly(ro bool) {
	d.mu.Lock()
	d.readOnly = ro
	d.mu.Unlock()
}

// ReplayInsert applies a shipped primary record through the normal
// log-before-ack write path, bypassing the read-only seal. It exists for
// replication appliers only — calling it directly on a replica diverges it
// from its primary exactly the way the seal prevents.
func (d *Durable) ReplayInsert(obj dataset.Object) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.insertLocked(obj)
}

// ReplayDelete is ReplayInsert's delete counterpart.
func (d *Durable) ReplayDelete(handle int64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deleteLocked(handle)
}

func (d *Durable) insertLocked(obj dataset.Object) (int64, error) {
	if d.closed {
		return 0, ErrClosed
	}
	h, err := d.idx.Insert(obj)
	if err != nil {
		return 0, err
	}
	return h, d.noteOpLocked()
}

func (d *Durable) deleteLocked(handle int64) (bool, error) {
	if d.closed {
		return false, ErrClosed
	}
	ok, err := d.idx.Delete(handle)
	if err != nil || !ok {
		return ok, err
	}
	return true, d.noteOpLocked()
}

// ErrCheckpoint wraps automatic-checkpoint failures reported alongside an
// otherwise successful mutation.
var ErrCheckpoint = errorString("wal: automatic checkpoint failed")

func (d *Durable) noteOpLocked() error {
	if d.cfg.autoCkpt <= 0 {
		return nil
	}
	d.sinceCkpt++
	if d.sinceCkpt < d.cfg.autoCkpt {
		return nil
	}
	if err := d.checkpointLocked(); err != nil {
		return fmt.Errorf("%w: %w", ErrCheckpoint, err)
	}
	return nil
}

// Checkpoint snapshots the live dataset to an atomically renamed checkpoint
// file, rotates the log so the snapshot supersedes every previous segment,
// and prunes superseded files. On failure the previous checkpoint and log
// remain authoritative — a half-written checkpoint is never loaded.
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.checkpointLocked()
}

func (d *Durable) checkpointLocked() error {
	start := time.Now()
	// Everything logged so far must be on disk before the checkpoint that
	// claims to supersede it exists.
	if err := d.log.sync(); err != nil {
		return err
	}
	entries, err := d.idx.SnapshotNow().Entries()
	if err != nil {
		return fmt.Errorf("wal: snapshotting for checkpoint: %w", err)
	}
	snap := &codec.Snapshot{
		K: d.k, Dim: d.dim, LastSeq: d.seq, NextHandle: d.idx.NextHandle(),
		Entries: make([]codec.SnapshotEntry, len(entries)),
	}
	for i, e := range entries {
		snap.Entries[i] = codec.SnapshotEntry{Handle: e.Handle, Obj: e.Obj}
	}
	if err := writeCheckpointFile(d.dir, snap); err != nil {
		return err
	}
	// Rotate: new appends go to a fresh segment starting after the
	// checkpoint. When no ops were logged since the last rotation the
	// active segment already is that fresh segment.
	newPath := segmentPath(d.dir, d.seq+1)
	if newPath != d.log.path {
		if err := d.log.close(); err != nil {
			return err
		}
		l, err := openLog(newPath, d.cfg.policy, d.cfg.interval)
		if err != nil {
			return err
		}
		d.log = l
		if err := syncDir(d.dir); err != nil {
			return err
		}
	}
	d.pruneLocked()
	d.sinceCkpt = 0
	walCheckpoints.Inc()
	walCheckpointNs.Observe(int64(time.Since(start)))
	return nil
}

// pruneLocked removes files the latest checkpoint supersedes: older
// checkpoints and every segment other than the active one (segments rotate
// at checkpoints, so all inactive segments hold only superseded records).
// Checkpoints go through pager.Retire instead of a bare unlink: a superseded
// snapshot the paged base (or any reader) still has mapped is marked obsolete
// and deleted on its last unref, never under the reader. Failures are
// ignored — recovery handles leftover files.
func (d *Durable) pruneLocked() {
	des, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, de := range des {
		name := de.Name()
		if s, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok && s < d.seq {
			pager.Retire(checkpointPath(d.dir, s))
		}
		if s, ok := parseSeq(name, "wal-", ".log"); ok {
			if p := segmentPath(d.dir, s); p != d.log.path {
				os.Remove(p)
			}
		}
	}
}

// Close fsyncs and closes the log, and releases the paged base's checkpoint
// mapping when recovery attached one. Further mutations fail with ErrClosed;
// the on-disk state reopens with Open. With a paged base, queries must have
// drained before Close — their reads would fault against the released
// mapping; without one, the in-memory state outlives the log and queries
// keep working.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.idx.SetJournal(nil)
	err := d.log.close()
	if b := d.idx.Base(); b != nil {
		if cerr := b.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Query reports (handle, object) for every live object in q whose document
// contains all k keywords; see core.DynamicORPKW.Query. Queries are
// lock-free: they run against the state published by the last acknowledged
// mutation and never wait on writers, checkpoints, or fsyncs. (Without a
// paged base they also keep working after Close — the in-memory state
// outlives the log; with one, Close releases the mapping they read from.)
func (d *Durable) Query(q *geom.Rect, ws []dataset.Keyword, report func(handle int64, obj *dataset.Object)) (core.QueryStats, error) {
	return d.idx.Query(q, ws, report)
}

// QueryWith is Query under explicit options (limits, budgets, deadlines).
func (d *Durable) QueryWith(q *geom.Rect, ws []dataset.Keyword, opts core.QueryOpts, report func(handle int64, obj *dataset.Object)) (core.QueryStats, error) {
	return d.idx.QueryWith(q, ws, opts, report)
}

// Collect is Query returning the handles.
func (d *Durable) Collect(q *geom.Rect, ws []dataset.Keyword) ([]int64, core.QueryStats, error) {
	return d.idx.Collect(q, ws)
}

// Snapshot pins the current acknowledged state for repeatable reads: queries
// against the returned view answer identically no matter how many mutations
// are applied afterwards, and its Seq() is the WAL sequence number of the
// last acknowledged record it includes — the view is exactly the acked-WAL
// prefix [1, Seq()]. Pinning takes one atomic load and no locks.
func (d *Durable) Snapshot() *core.DynSnapshot {
	return d.idx.SnapshotNow()
}

// Len returns the number of live objects.
func (d *Durable) Len() int { return d.idx.Len() }

// K returns the query keyword arity.
func (d *Durable) K() int { return d.k }

// Dim returns the point dimensionality.
func (d *Durable) Dim() int { return d.dim }

// LastSeq returns the sequence number of the last acknowledged operation —
// the length of the operation history a recovery of the current state would
// replay to. It reads the published state (no lock), so a mutation in flight
// is not counted until it is applied and acknowledged.
func (d *Durable) LastSeq() uint64 { return d.idx.Seq() }

// NumBuckets exposes the Bentley–Saxe occupancy for instrumentation.
func (d *Durable) NumBuckets() int { return d.idx.NumBuckets() }

// Tombstones exposes the deleted-but-unpurged entry count.
func (d *Durable) Tombstones() int { return d.idx.Tombstones() }

// Sync forces an fsync of the log regardless of policy, upgrading every
// previously acknowledged op to full durability.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.log.sync()
}
