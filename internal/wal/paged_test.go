package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kwsc/internal/codec"
	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
)

// copyDir clones a durability directory file by file.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// buildPagedHistory populates dir with a checkpoint plus a WAL tail that
// inserts past it and deletes checkpointed (base-resident) handles.
func buildPagedHistory(t *testing.T, dir string) {
	t.Helper()
	d := mustOpen(t, dir)
	var handles []int64
	for i := 0; i < 120; i++ {
		handles = append(handles, mustInsert(t, d, i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail: more inserts, plus deletes that land on checkpoint entries.
	for i := 120; i < 150; i++ {
		mustInsert(t, d, i)
	}
	for i := 0; i < 39; i += 3 {
		if ok, err := d.Delete(handles[i]); err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", handles[i], ok, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPagedRecoveryMatchesClassic recovers the same directory with and
// without paged recovery and demands identical state: the paged base plus
// WAL-tail replay is indistinguishable from a full decode.
func TestPagedRecoveryMatchesClassic(t *testing.T) {
	dirA := t.TempDir()
	buildPagedHistory(t, dirA)
	dirB := t.TempDir()
	copyDir(t, dirA, dirB)

	classic := mustOpen(t, dirA)
	defer classic.Close()
	paged := mustOpen(t, dirB, WithPagedRecovery(core.PagedBaseOptions{}))
	defer paged.Close()

	if paged.idx.Base() == nil {
		t.Fatal("paged recovery did not attach a base layer")
	}
	if classic.idx.Base() != nil {
		t.Fatal("classic recovery attached a base layer")
	}
	if paged.Len() != classic.Len() || paged.LastSeq() != classic.LastSeq() {
		t.Fatalf("paged len=%d seq=%d, classic len=%d seq=%d",
			paged.Len(), paged.LastSeq(), classic.Len(), classic.LastSeq())
	}
	if got, want := liveHandles(t, paged), liveHandles(t, classic); !reflect.DeepEqual(got, want) {
		t.Fatalf("live handles differ:\npaged   %v\nclassic %v", got, want)
	}

	// The histories stay in lockstep through further mutations, including
	// deletes of base-resident handles on the paged side.
	live := liveHandles(t, classic)
	for i := 0; i < 60; i++ {
		switch {
		case i%3 == 0 && len(live) > 0:
			h := live[0]
			live = live[1:]
			ok1, err1 := classic.Delete(h)
			ok2, err2 := paged.Delete(h)
			if err1 != nil || err2 != nil || !ok1 || !ok2 {
				t.Fatalf("step %d: delete(%d) = (%v,%v)/(%v,%v)", i, h, ok1, err1, ok2, err2)
			}
		default:
			h1 := mustInsert(t, classic, 1000+i)
			h2 := mustInsert(t, paged, 1000+i)
			if h1 != h2 {
				t.Fatalf("step %d: handles diverged: %d vs %d", i, h1, h2)
			}
			live = append(live, h1)
		}
	}
	if got, want := liveHandles(t, paged), liveHandles(t, classic); !reflect.DeepEqual(got, want) {
		t.Fatalf("live handles diverged after churn")
	}

	// A checkpoint + reopen cycle on the paged side round-trips the merged
	// state (base entries minus tombstones plus bucket entries).
	if err := paged.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := paged.Close(); err != nil {
		t.Fatal(err)
	}
	paged2 := mustOpen(t, dirB, WithPagedRecovery(core.PagedBaseOptions{NoMmap: true, CapPages: 16}))
	defer paged2.Close()
	if got, want := liveHandles(t, paged2), liveHandles(t, classic); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened paged state differs from classic")
	}
}

// TestCheckpointPruningDefersForPinnedBase is the pinned-file protocol: a
// checkpoint that supersedes the file the live base is serving from must not
// unlink it under the reader — deletion happens on the base's last unref.
func TestCheckpointPruningDefersForPinnedBase(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 0; i < 40; i++ {
		mustInsert(t, d, i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oldSeq := d.LastSeq()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	oldCkpt := checkpointPath(dir, oldSeq)

	d = mustOpen(t, dir, WithPagedRecovery(core.PagedBaseOptions{}))
	base := d.idx.Base()
	if base == nil {
		t.Fatal("no base attached")
	}
	for i := 40; i < 60; i++ {
		mustInsert(t, d, i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The superseded checkpoint is retired, not removed: the base still
	// serves from it.
	if _, err := os.Stat(oldCkpt); err != nil {
		t.Fatalf("pinned checkpoint unlinked by pruning: %v", err)
	}
	all := geom.NewRect([]float64{-1, -1}, []float64{2, 2})
	if _, _, err := d.Collect(all, []dataset.Keyword{0, 1}); err != nil {
		t.Fatalf("query against retired-but-pinned base: %v", err)
	}
	// Close drops the base's reference — the deferred deletion fires.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(oldCkpt); !os.IsNotExist(err) {
		t.Fatalf("retired checkpoint still on disk after last unref (err=%v)", err)
	}
	// The directory reopens cleanly from the surviving checkpoint.
	d = mustOpen(t, dir, WithPagedRecovery(core.PagedBaseOptions{}))
	if d.Len() != 60 {
		t.Fatalf("Len = %d after reopen, want 60", d.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPagedRecoveryRefusesCorruptCheckpoint flips one payload byte in the
// only checkpoint: mapped paged recovery must refuse it (checksum pass at
// open), and with no older checkpoint the WAL tail alone cannot bridge the
// gap, so Open fails rather than silently losing acknowledged state.
func TestPagedRecoveryRefusesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 0; i < 50; i++ {
		mustInsert(t, d, i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, d, 50)
	seq := d.LastSeq()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	p := checkpointPath(dir, seq-1)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	c, err := codec.ParseContainer(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	off, n, ok := c.Section(codec.SecPoints)
	if !ok {
		t.Fatal("no points section")
	}
	raw[off+n/2] ^= 0x01
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 2, 2, WithPagedRecovery(core.PagedBaseOptions{})); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt checkpoint recovery: err=%v, want ErrCorrupt", err)
	}
	// Classic recovery refuses the same directory the same way.
	if _, err := Open(dir, 2, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("classic recovery of corrupt checkpoint: err=%v, want ErrCorrupt", err)
	}
}

// TestLegacyCheckpointStillRecovers plants a v1 (KWCP stream) checkpoint and
// recovers it with and without paged recovery: both decode it, the paged
// open simply finds nothing to map and falls back.
func TestLegacyCheckpointStillRecovers(t *testing.T) {
	dir := t.TempDir()
	snap := &codec.Snapshot{K: 2, Dim: 2, LastSeq: 7, NextHandle: 40}
	for i := 0; i < 30; i++ {
		snap.Entries = append(snap.Entries, codec.SnapshotEntry{
			Handle: int64(i), Obj: testObj(i),
		})
	}
	var buf bytes.Buffer
	if err := codec.WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpointPath(dir, snap.LastSeq), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]Option{nil, {WithPagedRecovery(core.PagedBaseOptions{})}} {
		d := mustOpen(t, dir, opts...)
		if d.Len() != 30 || d.LastSeq() != 7 {
			t.Fatalf("legacy recovery: len=%d seq=%d", d.Len(), d.LastSeq())
		}
		if d.idx.Base() != nil {
			t.Fatal("legacy checkpoint must not produce a paged base")
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
