package wal

import (
	"fmt"
	"io"
	"os"
	"sort"

	"kwsc/internal/codec"
	"kwsc/internal/dataset"
	"kwsc/internal/pager"
)

// Log-shipping exports. A replication shipper (internal/repl) serves a
// durable directory to follower processes: the newest checkpoint seeds a
// fresh follower, and the seq-continuous frame tail after any acknowledged
// position catches it up. Everything here reads the same on-disk artifacts
// the recovery path does — frames are shipped verbatim (length, crc32c,
// payload), so a follower re-verifies every byte with the same scanner the
// primary's own recovery uses and a transport that corrupts or truncates a
// frame is detected, never applied.

// ErrTailPruned reports that the requested log position has been superseded
// by a checkpoint and pruned: the records are no longer on disk, and a
// follower at that position must re-seed from the newest checkpoint.
var ErrTailPruned = errorString("wal: requested tail pruned by a checkpoint")

// ErrTornFrame is the exported torn-frame sentinel of the frame scanner: the
// remaining bytes cannot hold the claimed frame. At the end of a shipped
// batch this means "re-request from the same position", never corruption.
var ErrTornFrame = errTorn

// ShippedOp is one decoded replication record.
type ShippedOp struct {
	Seq    uint64
	Delete bool
	Handle int64
	Obj    dataset.Object // inserts only
}

// DecodeShipped decodes one frame payload into a replication record. It is
// total over arbitrary bytes; structural violations return ErrCorrupt.
func DecodeShipped(payload []byte) (ShippedOp, error) {
	r, err := decodeRecord(payload)
	if err != nil {
		return ShippedOp{}, err
	}
	return ShippedOp{Seq: r.seq, Delete: r.op == opDelete, Handle: r.handle, Obj: r.obj}, nil
}

// NextFrame scans the frame starting at data[off:], returning the payload
// (aliasing data) and the offset of the next frame. io.EOF marks a clean
// end, ErrTornFrame a frame cut short, ErrCorrupt a checksum mismatch.
func NextFrame(data []byte, off int) (payload []byte, next int, err error) {
	return scanFrame(data, off)
}

// DirHasState reports whether dir holds any durable state (a checkpoint or a
// log segment). A follower uses this to decide between resuming its local
// state and seeding from the primary's checkpoint.
func DirHasState(dir string) (bool, error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	for _, de := range des {
		name := de.Name()
		if _, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok {
			return true, nil
		}
		if s, ok := parseSeq(name, "wal-", ".log"); ok {
			// An empty wal-0...1.log from a fresh open is not state: it holds
			// no acknowledged record and seeding over it is always safe.
			if st, err := os.Stat(segmentPath(dir, s)); err == nil && st.Size() > 0 {
				return true, nil
			}
		}
	}
	return false, nil
}

// NewestCheckpoint reports the newest checkpoint file in dir and the WAL
// sequence it supersedes. ok is false when dir holds no checkpoint.
func NewestCheckpoint(dir string) (path string, lastSeq uint64, ok bool, err error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return "", 0, false, nil
	}
	if err != nil {
		return "", 0, false, err
	}
	best, found := uint64(0), false
	for _, de := range des {
		if s, ok := parseSeq(de.Name(), "checkpoint-", ".ckpt"); ok && (!found || s > best) {
			best, found = s, true
		}
	}
	if !found {
		return "", 0, false, nil
	}
	return checkpointPath(dir, best), best, true, nil
}

// CheckpointFileName returns the canonical file name of a checkpoint
// superseding lastSeq, so a follower can land a downloaded checkpoint where
// its own recovery will find it.
func CheckpointFileName(lastSeq uint64) string {
	return fmt.Sprintf("checkpoint-%016x.ckpt", lastSeq)
}

// ValidateCheckpointFile verifies a checkpoint file end to end — every page
// checksum for a KWCP2 container, a full decode for the legacy stream — and
// returns the sequence it supersedes. A follower calls this on a downloaded
// checkpoint before trusting it, so a truncated or corrupted transfer is
// refused instead of recovered from.
func ValidateCheckpointFile(path string) (lastSeq uint64, err error) {
	f, err := pager.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Unref()
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return 0, fmt.Errorf("wal: reading checkpoint magic: %w", err)
	}
	if string(magic[:]) == codec.PagedMagic {
		c, err := codec.ParseContainer(f, f.Size())
		if err != nil {
			return 0, err
		}
		if err := c.VerifyAllPages(f); err != nil {
			return 0, err
		}
		meta := codec.ParsePagedMeta(c.Meta)
		if meta.Kind != codec.PagedKindSnapshot {
			return 0, fmt.Errorf("wal: checkpoint container holds kind %d, want snapshot", meta.Kind)
		}
		return meta.LastSeq, nil
	}
	snap, err := codec.ReadSnapshot(io.NewSectionReader(f, 0, f.Size()))
	if err != nil {
		return 0, err
	}
	return snap.LastSeq, nil
}

// CollectTail gathers the verbatim frames of every record with sequence in
// (afterSeq, upToSeq] into one byte stream, in order, stopping early once
// maxBytes is exceeded (at least one frame is always shipped when available).
// It returns the stream and the sequence of the last record included.
//
// The scan tolerates a concurrent appender: a torn frame at the end of the
// newest segment simply ends the batch (those records are not yet
// acknowledged at upToSeq anyway). ErrTailPruned reports that records in the
// range have been superseded by a checkpoint and deleted — the caller must
// re-seed from the checkpoint instead.
func CollectTail(dir string, afterSeq, upToSeq uint64, maxBytes int) (frames []byte, shippedTo uint64, err error) {
	if upToSeq <= afterSeq {
		return nil, afterSeq, nil
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, afterSeq, err
	}
	var segSeqs []uint64
	for _, de := range des {
		if s, ok := parseSeq(de.Name(), "wal-", ".log"); ok {
			segSeqs = append(segSeqs, s)
		}
	}
	sort.Slice(segSeqs, func(a, b int) bool { return segSeqs[a] < segSeqs[b] })

	expected := afterSeq + 1
	shippedTo = afterSeq
	for si, ss := range segSeqs {
		if ss > upToSeq {
			break
		}
		// Skip segments that end before the requested range; the next
		// segment's start seq bounds this one's records.
		if si+1 < len(segSeqs) && segSeqs[si+1] <= expected {
			continue
		}
		data, err := os.ReadFile(segmentPath(dir, ss))
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between ReadDir and ReadFile; rescan below
			}
			return nil, afterSeq, err
		}
		off := 0
		for {
			payload, next, serr := scanFrame(data, off)
			if serr != nil {
				// Clean EOF, a torn tail the appender is still writing, or a
				// frame recovery would refuse — in every case the shippable
				// prefix of this segment ends here.
				break
			}
			r, rerr := decodeRecord(payload)
			if rerr != nil {
				break
			}
			frame := data[off:next]
			off = next
			if r.seq <= afterSeq {
				continue
			}
			if r.seq > upToSeq {
				return frames, shippedTo, nil
			}
			if r.seq != expected {
				// A gap inside the on-disk tail: records between were pruned
				// (or the directory is damaged); either way the follower
				// cannot be caught up from here.
				return nil, afterSeq, ErrTailPruned
			}
			frames = append(frames, frame...)
			shippedTo = r.seq
			expected++
			if len(frames) >= maxBytes {
				return frames, shippedTo, nil
			}
		}
	}
	if shippedTo == afterSeq {
		// Nothing shippable although upToSeq > afterSeq: the range was
		// superseded by a checkpoint and its segments pruned.
		return nil, afterSeq, ErrTailPruned
	}
	return frames, shippedTo, nil
}
