// Package wal is the durability subsystem of the dynamic index: a CRC-framed
// write-ahead log, atomic checkpoints, and a crash-recovery path that
// together guarantee that every acknowledged insert/delete survives a process
// crash (under the per-op fsync policy) and that recovery never surfaces a
// half-applied operation.
//
// The design follows the standard redo-log architecture (DESIGN.md §11):
//
//   - Every mutation is appended to the active log segment as a
//     length-prefixed, checksummed frame *before* it is applied in memory;
//     the operation is acknowledged to the caller only after the append (and,
//     per policy, the fsync) succeeded.
//   - A checkpoint snapshots the live entries through the codec package into
//     a tmp file, fsyncs it, renames it into place, and fsyncs the directory
//     — the rename is the atomic commit point. A checkpoint supersedes every
//     log record with a sequence number at or below its LastSeq.
//   - Recovery loads the newest checkpoint that validates, replays the log
//     records after it in sequence order, truncates a torn tail (a partial or
//     corrupt final frame with no valid frame after it), and refuses to skip
//     over mid-log corruption: a corrupt frame that precedes a valid one
//     fails recovery rather than silently dropping operations.
//
// Frame format (little-endian):
//
//	u32 payload length | u32 crc32c(payload) | payload
//
// The payload is one op record (see record.go). Torn writes leave a prefix
// of a frame; because the header is written first, any 8-byte-complete
// header carries a genuine length, and a frame cut short by a crash is
// detected as extending past end-of-file.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"kwsc/internal/core"
)

// SyncPolicy selects when the log is fsynced, trading durability for append
// throughput (see EXPERIMENTS.md for the measured spread).
type SyncPolicy int

const (
	// SyncEveryOp fsyncs before acknowledging each operation: an
	// acknowledged op survives both a process and an OS crash.
	SyncEveryOp SyncPolicy = iota
	// SyncInterval flushes each append to the OS immediately (surviving a
	// process crash) but fsyncs on a timer, so an OS crash can lose up to
	// one interval of acknowledged operations.
	SyncInterval
	// SyncNone never fsyncs explicitly; acknowledged operations survive a
	// process crash but an OS crash may lose any of them.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryOp:
		return "every-op"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Failpoint sites covering every durability transition; the crash-injection
// suite arms each with a panic to prove recovery holds at that point. The
// sites share the registry of kwsc/internal/core so one Arm/Disarm API
// covers query-path and durability faults alike.
const (
	// FPAppend fires mid-frame, after the first half of a frame's bytes
	// reached the file — an armed panic here leaves a torn tail.
	FPAppend = "wal/append"
	// FPSync fires after a frame is fully written but before the fsync that
	// would acknowledge it.
	FPSync = "wal/pre-sync"
	// FPCheckpointWrite fires mid-checkpoint, after half the snapshot's
	// bytes reached the tmp file.
	FPCheckpointWrite = "wal/checkpoint-write"
	// FPCheckpointRename fires after the tmp checkpoint is complete and
	// fsynced but before the atomic rename.
	FPCheckpointRename = "wal/checkpoint-rename"
	// FPReplay fires before each record is applied during recovery.
	FPReplay = "wal/replay"
)

// ErrCorrupt reports unrecoverable log or checkpoint corruption: a damaged
// frame that valid frames follow, a sequence gap, or a record that cannot be
// applied. Torn tails are not corruption — they are truncated silently (and
// counted in kwsc_wal_recovery_torn_tail_truncations_total).
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed reports an operation on a closed Durable index.
var ErrClosed = errors.New("wal: index is closed")

// ErrReadOnly reports a direct mutation against a sealed index — a replica's
// local state, which only its replication applier may advance (a direct
// write would silently diverge it from its primary's history).
var ErrReadOnly = errors.New("wal: index is read-only (replica)")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader     = 8
	maxFramePayload = 1 << 24
)

// log is one append-only segment file. Appends are serialized by the owning
// Durable's mutex; the internal mutex only fences the interval-sync
// goroutine against appends.
type log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	policy  SyncPolicy
	end     int64 // logical end: bytes of fully appended frames
	bad     bool  // a failed append left a partial frame past end
	dirty   bool  // appended since the last fsync
	syncErr error // deferred error from the interval-sync goroutine
	stop    chan struct{}
	wg      sync.WaitGroup
	scratch []byte
}

// openLog opens (creating if needed) the segment at path for appending.
// Recovery has already truncated any torn tail, so the current file size is
// the logical end.
func openLog(path string, policy SyncPolicy, interval time.Duration) (*log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &log{f: f, path: path, policy: policy, end: st.Size()}
	if policy == SyncInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop(interval)
	}
	return l, nil
}

func (l *log) syncLoop(interval time.Duration) {
	defer l.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty {
				if err := l.f.Sync(); err != nil {
					l.syncErr = err
				} else {
					l.dirty = false
					walFsyncs.Inc()
				}
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// append writes one frame around payload and makes it durable per policy.
// On any error the frame is logically excised — the next append truncates
// the partial bytes away — so the log never accumulates a damaged frame
// followed by valid ones.
func (l *log) append(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxFramePayload {
		return fmt.Errorf("wal: frame payload size %d", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncErr; err != nil {
		l.syncErr = nil
		return fmt.Errorf("wal: deferred sync failure: %w", err)
	}
	if l.bad {
		if err := l.f.Truncate(l.end); err != nil {
			return fmt.Errorf("wal: excising failed append: %w", err)
		}
		l.bad = false
	}
	l.scratch = l.scratch[:0]
	l.scratch = binary.LittleEndian.AppendUint32(l.scratch, uint32(len(payload)))
	l.scratch = binary.LittleEndian.AppendUint32(l.scratch, crc32.Checksum(payload, castagnoli))
	l.scratch = append(l.scratch, payload...)
	// Two writes with the failpoint between them model a torn write: a
	// crash here leaves a frame prefix for recovery to truncate.
	half := len(l.scratch) / 2
	if _, err := l.f.Write(l.scratch[:half]); err != nil {
		l.bad = true
		return err
	}
	core.Failpoint(FPAppend)
	if _, err := l.f.Write(l.scratch[half:]); err != nil {
		l.bad = true
		return err
	}
	l.end += int64(len(l.scratch))
	l.dirty = true
	walAppends.Inc()
	walAppendBytes.Add(int64(len(l.scratch)))
	if l.policy == SyncEveryOp {
		core.Failpoint(FPSync)
		if err := l.f.Sync(); err != nil {
			// The frame is complete but not durable: excise it so the
			// unacknowledged op cannot resurface after recovery.
			l.bad = true
			l.end -= int64(len(l.scratch))
			return err
		}
		l.dirty = false
		walFsyncs.Inc()
	}
	return nil
}

// sync forces an fsync of everything appended so far.
func (l *log) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty {
		return l.syncErr
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	walFsyncs.Inc()
	return l.syncErr
}

// close stops the interval-sync goroutine, fsyncs, and closes the file.
func (l *log) close() error {
	if l.stop != nil {
		close(l.stop)
		l.wg.Wait()
		l.stop = nil
	}
	err := l.sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
