package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"kwsc/internal/core"
)

// recovered is the outcome of a directory recovery: the reconstructed index,
// the last applied sequence number, and the segment new appends go to.
type recovered struct {
	idx       *core.DynamicORPKW
	lastSeq   uint64
	segPath   string
	replayed  int64
	truncated bool
}

// recoverDir reconstructs the dynamic index from the durability directory:
// newest valid checkpoint first, then an in-order replay of every log record
// after it. The recovery state machine (DESIGN.md §11):
//
//	SCAN      list checkpoints (desc) and segments (asc); drop *.tmp litter
//	RESTORE   load the newest checkpoint that validates; corrupt or torn
//	          checkpoints are skipped (an older one plus a longer replay is
//	          always consistent, because segments are only deleted after the
//	          checkpoint superseding them is durable)
//	REPLAY    scan frames across segments in sequence order; skip records a
//	          checkpoint supersedes, apply the rest; any sequence gap,
//	          handle mismatch, or inapplicable record is ErrCorrupt
//	TORN-TAIL a damaged frame with no valid frame after it, in the final
//	          segment, truncates the file there; damage anywhere else fails
//	          recovery — truncation must never drop an acknowledged op that
//	          a later valid frame proves was followed by more history
func recoverDir(dir string, dim, k int, cfg config) (*recovered, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ckptSeqs, segSeqs []uint64
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Litter from a checkpoint that crashed before its rename; it
			// was never the commit point, so it is safe to drop.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if s, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok {
			ckptSeqs = append(ckptSeqs, s)
		}
		if s, ok := parseSeq(name, "wal-", ".log"); ok {
			segSeqs = append(segSeqs, s)
		}
	}
	sort.Slice(ckptSeqs, func(a, b int) bool { return ckptSeqs[a] > ckptSeqs[b] })
	sort.Slice(segSeqs, func(a, b int) bool { return segSeqs[a] < segSeqs[b] })

	// RESTORE: newest checkpoint that validates. With paged recovery a KWCP2
	// checkpoint is not decoded at all — it is opened as the dynamic index's
	// immutable bottom layer and serves queries in place, so cold start is the
	// map (or pool attach) plus the WAL-tail replay below.
	var idx *core.DynamicORPKW
	base := uint64(0)
	for _, cs := range ckptSeqs {
		path := checkpointPath(dir, cs)
		if cfg.paged {
			pb, err := core.OpenPagedBase(path, cfg.pagedOpts)
			if err == nil {
				if pb.K() != k || pb.Dim() != dim {
					kk, dd := pb.K(), pb.Dim()
					pb.Close()
					return nil, fmt.Errorf("wal: checkpoint is for k=%d dim=%d, index opened with k=%d dim=%d",
						kk, dd, k, dim)
				}
				idx, err = core.RestoreDynamicORPKWFromBase(dim, k, cfg.bufferCap, pb, pb.NextHandle(), cfg.build...)
				if err != nil {
					pb.Close()
					return nil, fmt.Errorf("wal: restoring paged checkpoint %d: %w", cs, err)
				}
				base = pb.LastSeq()
				break
			}
			// Not a KWCP2 container (legacy checkpoint) or damaged: fall
			// through to the decoding path, which refuses damage the same way.
		}
		snap, err := readCheckpointAny(path)
		if err != nil {
			continue // damaged checkpoint: fall back to an older one + replay
		}
		if snap.K != k || snap.Dim != dim {
			return nil, fmt.Errorf("wal: checkpoint is for k=%d dim=%d, index opened with k=%d dim=%d",
				snap.K, snap.Dim, k, dim)
		}
		entries := make([]core.DynEntry, len(snap.Entries))
		for i, e := range snap.Entries {
			entries[i] = core.DynEntry{Handle: e.Handle, Obj: e.Obj}
		}
		idx, err = core.RestoreDynamicORPKW(dim, k, cfg.bufferCap, entries, snap.NextHandle, cfg.build...)
		if err != nil {
			return nil, fmt.Errorf("wal: restoring checkpoint %d: %w", cs, err)
		}
		base = snap.LastSeq
		break
	}
	if idx == nil {
		var err error
		idx, err = core.NewDynamicORPKW(dim, k, cfg.bufferCap, cfg.build...)
		if err != nil {
			return nil, err
		}
	}
	// From here on a failed recovery must release the paged base's file
	// reference (and mapping) instead of leaking it to the finalizer.
	recoverOK := false
	defer func() {
		if !recoverOK {
			if b := idx.Base(); b != nil {
				b.Close()
			}
		}
	}()
	// Align the index's mutation sequence with the journal's numbering: the
	// restored state corresponds to the checkpoint's LastSeq, and each
	// replayed record advances it by one, so after replay the published seq
	// is exactly the last applied record's — the anchor for snapshot reads.
	idx.SetSeq(base)

	// REPLAY.
	rec := &recovered{idx: idx}
	expected := base + 1
	for si, ss := range segSeqs {
		path := segmentPath(dir, ss)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		off := 0
		for {
			payload, next, serr := scanFrame(data, off)
			if serr == io.EOF {
				break
			}
			if serr != nil {
				if si == len(segSeqs)-1 && !anyValidFrameAfter(data, off+1) {
					// TORN-TAIL: nothing valid follows the damage.
					if terr := os.Truncate(path, int64(off)); terr != nil {
						return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, terr)
					}
					walTornTruncations.Inc()
					rec.truncated = true
					break
				}
				return nil, fmt.Errorf("%w: damaged frame at %s offset %d precedes valid frames (%v)",
					ErrCorrupt, path, off, serr)
			}
			r, rerr := decodeRecord(payload)
			if rerr != nil {
				// The frame checksum held but the payload is structurally
				// invalid: this is never a torn write, so refuse.
				return nil, fmt.Errorf("wal: %s offset %d: %w", path, off, rerr)
			}
			off = next
			if r.seq <= base {
				continue // superseded by the checkpoint
			}
			if r.seq != expected {
				return nil, fmt.Errorf("%w: sequence gap: record %d where %d was expected (%s)",
					ErrCorrupt, r.seq, expected, path)
			}
			core.Failpoint(FPReplay)
			switch r.op {
			case opInsert:
				h, err := idx.Insert(r.obj)
				if err != nil {
					return nil, fmt.Errorf("wal: replaying insert seq %d: %w", r.seq, err)
				}
				if h != r.handle {
					return nil, fmt.Errorf("%w: replayed insert seq %d produced handle %d, logged %d",
						ErrCorrupt, r.seq, h, r.handle)
				}
			case opDelete:
				ok, err := idx.Delete(r.handle)
				if err != nil {
					return nil, fmt.Errorf("wal: replaying delete seq %d: %w", r.seq, err)
				}
				if !ok {
					return nil, fmt.Errorf("%w: replayed delete seq %d of unknown handle %d",
						ErrCorrupt, r.seq, r.handle)
				}
			}
			expected++
			rec.replayed++
		}
	}
	rec.lastSeq = expected - 1
	if len(segSeqs) > 0 {
		rec.segPath = segmentPath(dir, segSeqs[len(segSeqs)-1])
	} else {
		rec.segPath = segmentPath(dir, rec.lastSeq+1)
	}
	walRecoveries.Inc()
	walReplayedRecords.Add(rec.replayed)
	walRecoveryNs.Observe(int64(time.Since(start)))
	recoverOK = true
	return rec, nil
}
