package wal

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

// scanFrame parses the frame starting at data[off:]. It returns the payload
// (aliasing data) and the offset of the next frame. Errors:
//
//	io.EOF      — off is exactly the end of data (clean end of log)
//	errTorn     — the remaining bytes cannot hold the claimed frame: either
//	              a partial header or a body cut short (a torn write)
//	ErrCorrupt  — the header is complete but the length is implausible or
//	              the checksum does not match (bit rot / overwrite)
//
// Recovery treats errTorn and ErrCorrupt identically at the log's tail
// (truncate) and fatally everywhere else; the distinction is kept for
// diagnostics.
func scanFrame(data []byte, off int) (payload []byte, next int, err error) {
	rem := len(data) - off
	if rem == 0 {
		return nil, off, io.EOF
	}
	if rem < frameHeader {
		return nil, off, errTorn
	}
	length := int(binary.LittleEndian.Uint32(data[off:]))
	if length == 0 || length > maxFramePayload {
		return nil, off, ErrCorrupt
	}
	if rem < frameHeader+length {
		return nil, off, errTorn
	}
	want := binary.LittleEndian.Uint32(data[off+4:])
	payload = data[off+frameHeader : off+frameHeader+length]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, off, ErrCorrupt
	}
	return payload, off + frameHeader + length, nil
}

// errTorn marks a frame cut short by a torn write; see scanFrame.
var errTorn = errorString("wal: torn frame")

type errorString string

func (e errorString) Error() string { return string(e) }

// anyValidFrameAfter reports whether any byte offset past `from` starts a
// checksum-valid frame. Recovery uses it to distinguish a torn tail (nothing
// valid follows the damage — safe to truncate) from mid-log corruption
// (valid frames follow — truncating would silently drop acknowledged
// operations, so recovery must refuse instead).
func anyValidFrameAfter(data []byte, from int) bool {
	for off := from; off+frameHeader <= len(data); off++ {
		length := int(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 || length > maxFramePayload || off+frameHeader+length > len(data) {
			continue
		}
		body := data[off+frameHeader : off+frameHeader+length]
		if crc32.Checksum(body, castagnoli) == binary.LittleEndian.Uint32(data[off+4:]) {
			return true
		}
	}
	return false
}
