package wal

import (
	"os"
	"testing"
)

// FuzzReplayWAL throws arbitrary bytes at recovery as the first log segment.
// Open must never panic; when it accepts the input, the recovered store must
// be usable (insertable) and reopen to the same sequence — i.e. recovery is
// total over corrupt input and idempotent over accepted input.
func FuzzReplayWAL(f *testing.F) {
	// Seed with a genuine log (a handful of inserts and a delete), its
	// truncations, and bit-flipped variants — the interesting frontier is
	// near-valid input.
	dir := f.TempDir()
	d, err := Open(dir, 2, 2)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.Insert(testObj(i)); err != nil {
			f.Fatal(err)
		}
	}
	d.Delete(2)
	d.Close()
	golden, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(golden)
	f.Add(golden[:len(golden)/2])
	f.Add(golden[:len(golden)-3])
	for _, pos := range []int{0, 4, 8, len(golden) / 2, len(golden) - 2} {
		flipped := append([]byte{}, golden...)
		flipped[pos] ^= 0x20
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(segmentPath(fdir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// SyncNone: the target is the recovery parser, not fsync throughput.
		d, err := Open(fdir, 2, 2, WithSyncPolicy(SyncNone))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		seq := d.LastSeq()
		if _, err := d.Insert(testObj(1000)); err != nil {
			t.Fatalf("accepted log, but store not insertable: %v", err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		d2, err := Open(fdir, 2, 2, WithSyncPolicy(SyncNone))
		if err != nil {
			t.Fatalf("accepted input failed to reopen: %v", err)
		}
		if got := d2.LastSeq(); got != seq+1 {
			t.Fatalf("reopen LastSeq = %d, want %d", got, seq+1)
		}
		d2.Close()
	})
}
