package wal

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/invidx"
)

// Crash-injection suite: arm a panic at each durability failpoint, run a
// randomized insert/delete workload until the "process" dies mid-operation,
// abandon the instance without closing it (open file handles and all), reopen
// the directory, and prove:
//
//  1. recovery succeeds,
//  2. every operation acknowledged before the crash survived (per-op fsync),
//  3. the recovered state is byte-for-byte the prefix ops[:LastSeq] of the
//     submitted history — verified by replaying that prefix into an
//     inverted-index baseline and comparing query answers.
//
// Run with `make crash` (go test -race -run Crash ./internal/wal/).

// crashPanic is the sentinel thrown by armed failpoints; anything else
// re-panics so real bugs still fail loudly.
type crashPanic struct{ site string }

// armCrash panics at the nth hit of the failpoint site.
func armCrash(t *testing.T, site string, nth int) {
	t.Helper()
	hits := 0
	core.ArmFailpoint(site, func() {
		hits++
		if hits == nth {
			panic(crashPanic{site})
		}
	})
	t.Cleanup(core.DisarmAllFailpoints)
}

// crashOp is one step of the workload. For deletes, target is the index (in
// the op sequence) of the insert whose handle is deleted.
type crashOp struct {
	del    bool
	obj    dataset.Object
	target int
}

// crashWorkload builds a deterministic mixed workload: ~1/4 deletes, each
// targeting an insert that is still live at that point of the sequence.
func crashWorkload(seed int64, n int) []crashOp {
	r := rand.New(rand.NewSource(seed))
	var ops []crashOp
	var liveInserts []int // op indices of not-yet-deleted inserts
	for len(ops) < n {
		if len(liveInserts) > 0 && r.Intn(4) == 0 {
			j := r.Intn(len(liveInserts))
			ops = append(ops, crashOp{del: true, target: liveInserts[j]})
			liveInserts = append(liveInserts[:j], liveInserts[j+1:]...)
		} else {
			perm := r.Perm(8)
			doc := make([]dataset.Keyword, 2+r.Intn(3))
			for i := range doc {
				doc[i] = dataset.Keyword(perm[i])
			}
			liveInserts = append(liveInserts, len(ops))
			ops = append(ops, crashOp{
				obj: dataset.Object{Point: geom.Point{r.Float64(), r.Float64()}, Doc: doc},
			})
		}
	}
	return ops
}

// runUntilCrash applies ops in order, returning how many were acknowledged
// (returned without error) before a crashPanic unwound the stack. Non-crash
// errors and foreign panics fail the test.
func runUntilCrash(t *testing.T, d *Durable, ops []crashOp, handles map[int]int64) (acked int, crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashPanic); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	for i, op := range ops {
		if op.del {
			ok, err := d.Delete(handles[op.target])
			if err != nil {
				t.Fatalf("op %d: Delete: %v", i, err)
			}
			if !ok {
				t.Fatalf("op %d: Delete(%d) found nothing live", i, handles[op.target])
			}
		} else {
			h, err := d.Insert(op.obj)
			if err != nil {
				t.Fatalf("op %d: Insert: %v", i, err)
			}
			handles[i] = h
		}
		acked++
	}
	return acked, false
}

// modelAfter replays ops[:n] into a handle→object map, the ground truth for
// the recovered index. Handles are assigned the way DynamicORPKW assigns
// them: sequentially, one per insert.
func modelAfter(ops []crashOp, n int) (live map[int64]dataset.Object, nextHandle int64) {
	live = map[int64]dataset.Object{}
	byOp := map[int]int64{}
	for i := 0; i < n; i++ {
		if ops[i].del {
			delete(live, byOp[ops[i].target])
		} else {
			byOp[i] = nextHandle
			live[nextHandle] = ops[i].obj
			nextHandle++
		}
	}
	return live, nextHandle
}

// queryable is anything that answers Collect/Len over handles — a live
// Durable or a pinned DynSnapshot view.
type queryable interface {
	Collect(q *geom.Rect, ws []dataset.Keyword) ([]int64, core.QueryStats, error)
	Len() int
}

// verifyAgainstBaseline checks the recovered index against an inverted-index
// baseline built from the model: for a spread of (rectangle, keyword-pair)
// queries, the handle sets must match exactly.
func verifyAgainstBaseline(t *testing.T, d queryable, live map[int64]dataset.Object) {
	t.Helper()
	if d.Len() != len(live) {
		t.Fatalf("recovered Len = %d, model has %d live objects", d.Len(), len(live))
	}
	if len(live) == 0 {
		return
	}
	handles := make([]int64, 0, len(live))
	for h := range live {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	objs := make([]dataset.Object, len(handles))
	for i, h := range handles {
		o := live[h]
		objs[i] = dataset.Object{
			Point: append(geom.Point(nil), o.Point...),
			Doc:   append([]dataset.Keyword(nil), o.Doc...),
		}
	}
	ds, err := dataset.New(objs)
	if err != nil {
		t.Fatalf("baseline dataset: %v", err)
	}
	baseline := invidx.Build(ds)

	rects := []*geom.Rect{
		geom.NewRect([]float64{-1, -1}, []float64{2, 2}),     // everything
		geom.NewRect([]float64{0, 0}, []float64{0.5, 0.5}),   // quadrant
		geom.NewRect([]float64{0.3, 0.1}, []float64{0.9, 1}), // off-center
		geom.NewRect([]float64{2, 2}, []float64{3, 3}),       // empty
	}
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			ws := []dataset.Keyword{dataset.Keyword(a), dataset.Keyword(b)}
			for ri, q := range rects {
				got, _, err := d.Collect(q, ws)
				if err != nil {
					t.Fatalf("Collect(%v): %v", ws, err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				var want []int64
				for _, id := range baseline.KeywordsOnly(q, ws) {
					want = append(want, handles[id])
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("query (rect %d, ws %v): recovered %v, baseline %v", ri, ws, got, want)
				}
			}
		}
	}
}

// crashAndRecover reopens the directory after a simulated crash and checks
// the recovered history is an acknowledged-inclusive prefix of ops.
func crashAndRecover(t *testing.T, dir string, ops []crashOp, acked int) *Durable {
	t.Helper()
	core.DisarmAllFailpoints()
	d2, err := Open(dir, 2, 2)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	t.Cleanup(func() { d2.Close() })
	survived := d2.LastSeq()
	// Durability: under SyncEveryOp nothing acknowledged may be lost. The
	// in-flight (unacknowledged) op may or may not have survived — both are
	// legal — but nothing past it can exist.
	if survived < uint64(acked) {
		t.Fatalf("lost acknowledged ops: %d acked, only %d recovered", acked, survived)
	}
	if survived > uint64(acked)+1 {
		t.Fatalf("recovered %d ops, but only %d were ever submitted past the ack point", survived, acked+1)
	}
	live, _ := modelAfter(ops, int(survived))
	verifyAgainstBaseline(t, d2, live)
	return d2
}

// crashSites: every durability failpoint that fires on the write path, with
// the op index at which to detonate (1-based hit count of the site).
func TestCrashDuringAppend(t *testing.T) { testCrashAt(t, FPAppend) }
func TestCrashBeforeFsync(t *testing.T)  { testCrashAt(t, FPSync) }

func testCrashAt(t *testing.T, site string) {
	for _, nth := range []int{1, 7, 40} {
		t.Run(fmt.Sprintf("hit-%d", nth), func(t *testing.T) {
			dir := t.TempDir()
			ops := crashWorkload(int64(nth)*17, 60)
			d := mustOpen(t, dir) // SyncEveryOp default
			armCrash(t, site, nth)
			handles := map[int]int64{}
			acked, crashed := runUntilCrash(t, d, ops, handles)
			if !crashed {
				t.Fatalf("failpoint %s never fired (%d ops acked)", site, acked)
			}
			if acked != nth-1 {
				t.Fatalf("acked %d ops before crash at hit %d", acked, nth)
			}
			d2 := crashAndRecover(t, dir, ops, acked)
			// The store must remain writable after recovery.
			if _, err := d2.Insert(ops[0].obj); err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
		})
	}
}

func TestCrashMidCheckpointWrite(t *testing.T)     { testCrashDuringCheckpoint(t, FPCheckpointWrite) }
func TestCrashBeforeCheckpointRename(t *testing.T) { testCrashDuringCheckpoint(t, FPCheckpointRename) }

func testCrashDuringCheckpoint(t *testing.T, site string) {
	dir := t.TempDir()
	ops := crashWorkload(99, 50)
	d := mustOpen(t, dir)
	handles := map[int]int64{}
	if acked, crashed := runUntilCrash(t, d, ops, handles); crashed || acked != len(ops) {
		t.Fatalf("workload: acked=%d crashed=%v", acked, crashed)
	}
	armCrash(t, site, 1)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashPanic); !ok {
					panic(r)
				}
			}
		}()
		d.Checkpoint()
		t.Fatalf("checkpoint failpoint %s never fired", site)
	}()
	// A crashed checkpoint must lose nothing: the full log is still there.
	crashAndRecover(t, dir, ops, len(ops))
}

func TestCrashDuringReplay(t *testing.T) {
	dir := t.TempDir()
	ops := crashWorkload(7, 40)
	d := mustOpen(t, dir)
	handles := map[int]int64{}
	if acked, crashed := runUntilCrash(t, d, ops, handles); crashed || acked != len(ops) {
		t.Fatalf("workload: acked=%d crashed=%v", acked, crashed)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash in the middle of recovery replay; recovery only reads the log,
	// so a second recovery must start from scratch and succeed.
	armCrash(t, FPReplay, 20)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashPanic); !ok {
					panic(r)
				}
			}
		}()
		Open(dir, 2, 2)
		t.Fatal("replay failpoint never fired")
	}()
	crashAndRecover(t, dir, ops, len(ops))
}

// TestCrashStressManySites detonates at an arbitrary op for every write-path
// site in sequence over fresh directories, as a sweep; kept deterministic so
// failures reproduce.
func TestCrashStressManySites(t *testing.T) {
	for _, site := range []string{FPAppend, FPSync} {
		for nth := 1; nth <= 25; nth += 3 {
			t.Run(fmt.Sprintf("%s-%d", site, nth), func(t *testing.T) {
				dir := t.TempDir()
				ops := crashWorkload(int64(nth)*1031, 30)
				d := mustOpen(t, dir)
				armCrash(t, site, nth)
				handles := map[int]int64{}
				acked, crashed := runUntilCrash(t, d, ops, handles)
				if !crashed {
					t.Skipf("site %s hit fewer than %d times", site, nth)
				}
				crashAndRecover(t, dir, ops, acked)
			})
		}
	}
}
