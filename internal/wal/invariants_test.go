package wal

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/obs"
)

// handleView maps every live handle to a rendering of its object by querying
// all keyword pairs over the full plane.
func handleView(t *testing.T, d *Durable) map[int64]string {
	t.Helper()
	all := geom.NewRect([]float64{-1, -1}, []float64{2, 2})
	view := map[int64]string{}
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			ws := []dataset.Keyword{dataset.Keyword(a), dataset.Keyword(b)}
			_, err := d.Query(all, ws, func(h int64, obj *dataset.Object) {
				view[h] = fmt.Sprintf("%v|%v", obj.Point, obj.Doc)
			})
			if err != nil {
				t.Fatalf("Query(%v): %v", ws, err)
			}
		}
	}
	return view
}

// TestRecoveryInvariants pins the dynamic-index accessor contract across a
// recovery: Len, handle stability (same handle → same object), NextHandle
// monotonicity, and that the shared obs gauges move by exactly the recovered
// instance's state when it is restored.
func TestRecoveryInvariants(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	for i := 0; i < 40; i++ {
		mustInsert(t, d, i)
	}
	for _, h := range []int64{1, 5, 8, 13, 21, 34} {
		if ok, err := d.Delete(h); err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", h, ok, err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 50; i++ { // tail ops after the checkpoint
		mustInsert(t, d, i)
	}
	d.Delete(45)
	before := handleView(t, d)
	wantLen, wantSeq := d.Len(), d.LastSeq()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	liveG := obs.Default().Gauge("kwsc_dynamic_live_objects")
	tombG := obs.Default().Gauge("kwsc_dynamic_tombstones")
	live0, tomb0 := liveG.Load(), tombG.Load()

	d2 := mustOpen(t, dir)
	defer d2.Close()

	// Len is preserved exactly.
	if d2.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", d2.Len(), wantLen)
	}
	if d2.LastSeq() != wantSeq {
		t.Fatalf("LastSeq = %d, want %d", d2.LastSeq(), wantSeq)
	}
	// Handle stability: every handle resolves to the object it named before
	// the restart, and no handle appeared or vanished.
	after := handleView(t, d2)
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("handle→object mapping changed across recovery:\n before %v\n after  %v", before, after)
	}
	// NextHandle: strictly above every live handle, so new inserts can
	// never collide with pre-crash handles.
	var handles []int64
	for h := range after {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	nh := mustInsert(t, d2, 1234)
	if nh <= handles[len(handles)-1] {
		t.Fatalf("post-recovery insert reused handle %d (max live %d)", nh, handles[len(handles)-1])
	}
	if nh != 50 {
		t.Fatalf("post-recovery handle = %d, want 50 (50 inserts before crash)", nh)
	}
	d2.Delete(nh)

	// Gauge deltas: the restore added exactly this instance's live count and
	// tombstones to the fleet-total gauges (the insert/delete pair above
	// cancels in live and adds one tombstone).
	wantLiveDelta := int64(d2.Len())
	wantTombDelta := int64(d2.Tombstones())
	if got := liveG.Load() - live0; got != wantLiveDelta {
		t.Fatalf("kwsc_dynamic_live_objects moved by %d across recovery, want %d", got, wantLiveDelta)
	}
	if got := tombG.Load() - tomb0; got != wantTombDelta {
		t.Fatalf("kwsc_dynamic_tombstones moved by %d across recovery, want %d", got, wantTombDelta)
	}
	// Tombstone ceiling (the compaction contract) holds after recovery too.
	if 2*d2.Tombstones() > d2.Len() {
		t.Fatalf("tombstones %d exceed half of live %d after recovery", d2.Tombstones(), d2.Len())
	}
}
