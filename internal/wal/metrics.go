package wal

import "kwsc/internal/obs"

// Durability metrics, registered in the same process-wide registry as the
// query-path families (obsapi.go): append/fsync throughput, checkpoint
// cadence and duration, and recovery replay counters — enough to alarm on a
// stuck fsync loop or a recovery that silently truncated a tail.
var (
	walAppends     = obs.Default().Counter("kwsc_wal_appends_total")
	walAppendBytes = obs.Default().Counter("kwsc_wal_append_bytes_total")
	walFsyncs      = obs.Default().Counter("kwsc_wal_fsyncs_total")

	walCheckpoints  = obs.Default().Counter("kwsc_wal_checkpoints_total")
	walCheckpointNs = obs.Default().Histogram("kwsc_wal_checkpoint_ns")

	walRecoveries      = obs.Default().Counter("kwsc_wal_recoveries_total")
	walReplayedRecords = obs.Default().Counter("kwsc_wal_recovery_replayed_records_total")
	walTornTruncations = obs.Default().Counter("kwsc_wal_recovery_torn_tail_truncations_total")
	walRecoveryNs      = obs.Default().Histogram("kwsc_wal_recovery_ns")
)
