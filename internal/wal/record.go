package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"kwsc/internal/dataset"
)

// Op record payloads. Every mutation of the durable index becomes exactly
// one record; records carry a strictly increasing sequence number so a
// checkpoint can supersede a log prefix and recovery can detect gaps.
//
//	seq uvarint | op u8 | handle uvarint
//	opInsert only: dim uvarint | per-dim float64 bits uvarint
//	               doclen uvarint | keyword deltas uvarint...
const (
	opInsert byte = 1
	opDelete byte = 2
)

type record struct {
	seq    uint64
	op     byte
	handle int64
	obj    dataset.Object // opInsert only
}

// appendRecord encodes r onto dst. Documents are sorted and de-duplicated by
// the dynamic index before they reach the journal, so delta coding applies.
func appendRecord(dst []byte, r *record) []byte {
	dst = binary.AppendUvarint(dst, r.seq)
	dst = append(dst, r.op)
	dst = binary.AppendUvarint(dst, uint64(r.handle))
	if r.op == opInsert {
		dst = binary.AppendUvarint(dst, uint64(len(r.obj.Point)))
		for _, c := range r.obj.Point {
			dst = binary.AppendUvarint(dst, math.Float64bits(c))
		}
		dst = binary.AppendUvarint(dst, uint64(len(r.obj.Doc)))
		prev := uint64(0)
		for _, kw := range r.obj.Doc {
			dst = binary.AppendUvarint(dst, uint64(kw)-prev)
			prev = uint64(kw)
		}
	}
	return dst
}

// decodeRecord parses one frame payload. It is total over arbitrary bytes:
// claimed counts never allocate more than the payload can back (the same
// hardening as codec.ReadDataset), and any structural violation returns
// ErrCorrupt.
func decodeRecord(payload []byte) (record, error) {
	var r record
	d := recDecoder{buf: payload}
	r.seq = d.uvarint()
	r.op = d.byte()
	h := d.uvarint()
	if d.err || h > math.MaxInt64 {
		return r, fmt.Errorf("%w: record header", ErrCorrupt)
	}
	r.handle = int64(h)
	switch r.op {
	case opDelete:
		// No body.
	case opInsert:
		dim := d.uvarint()
		if d.err || dim == 0 || dim > 64 {
			return r, fmt.Errorf("%w: record dimension", ErrCorrupt)
		}
		p := make([]float64, dim)
		for j := range p {
			p[j] = math.Float64frombits(d.uvarint())
		}
		dl := d.uvarint()
		// Each keyword delta costs at least one byte, so a valid doclen
		// never exceeds the bytes remaining in the payload.
		if d.err || dl == 0 || dl > uint64(len(payload)) {
			return r, fmt.Errorf("%w: record document length", ErrCorrupt)
		}
		doc := make([]dataset.Keyword, 0, dl)
		prev := uint64(0)
		for j := uint64(0); j < dl; j++ {
			delta := d.uvarint()
			if j > 0 && delta == 0 {
				return r, fmt.Errorf("%w: record document not strictly increasing", ErrCorrupt)
			}
			prev += delta
			if prev > math.MaxUint32 {
				return r, fmt.Errorf("%w: record keyword overflow", ErrCorrupt)
			}
			doc = append(doc, dataset.Keyword(prev))
		}
		if d.err {
			return r, fmt.Errorf("%w: record body", ErrCorrupt)
		}
		r.obj = dataset.Object{Point: p, Doc: doc}
	default:
		return r, fmt.Errorf("%w: unknown record op %d", ErrCorrupt, r.op)
	}
	if d.err || len(d.buf) != d.off {
		return r, fmt.Errorf("%w: trailing record bytes", ErrCorrupt)
	}
	return r, nil
}

// recDecoder is a tiny cursor over a record payload with sticky errors.
type recDecoder struct {
	buf []byte
	off int
	err bool
}

func (d *recDecoder) uvarint() uint64 {
	if d.err {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = true
		return 0
	}
	d.off += n
	return v
}

func (d *recDecoder) byte() byte {
	if d.err || d.off >= len(d.buf) {
		d.err = true
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}
