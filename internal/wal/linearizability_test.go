package wal

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kwsc/internal/core"
	"kwsc/internal/dataset"
	"kwsc/internal/geom"
	"kwsc/internal/invidx"
)

// Linearizability-style invariant harness (run under -race via `make race`
// and `make check`): randomized concurrent histories — one writer applying a
// seeded insert/delete workload, a checkpointer, and several readers pinning
// snapshots — where every pinned query must answer exactly as an
// inverted-index baseline replayed to the query's observed sequence number.
//
// Why this is the right check: writers are serialized, so the WAL order is
// the program order of the single writer, and a snapshot at seq S claims to
// be exactly the acked prefix ops[:S]. The writer publishes its history
// through an atomic counter (entry i is written before the counter reaches
// i+1), so a reader holding seq S can reconstruct the ground truth for S and
// compare. Repeatability is checked by re-running queries on the same pinned
// view, and the crash variants arm each durability failpoint mid-history to
// prove the guarantees hold while a mutator dies with readers in flight.

// linHistory is the writer's published op history. ops[i] describes the
// mutation that was assigned WAL seq i+1; len.Load() is the acked count, and
// entries below it are immutable once published.
type linHistory struct {
	ops []crashOp
	len atomic.Int64
}

// waitFor blocks (spinning politely) until the history covers seq.
func (h *linHistory) waitFor(seq uint64) bool {
	for i := 0; i < 1_000_000; i++ {
		if uint64(h.len.Load()) >= seq {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// linWriter applies ops in order, publishing each acked op into hist.
// Returns the acked count; on a crashPanic it records the crash and stops.
// Errors are reported with t.Errorf (goroutine-safe), never Fatalf.
func linWriter(t *testing.T, d *Durable, ops []crashOp, hist *linHistory, stop *atomic.Bool) (acked int, crashed bool) {
	handles := map[int]int64{}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashPanic); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	for i, op := range ops {
		if stop.Load() {
			return acked, false
		}
		if op.del {
			ok, err := d.Delete(handles[op.target])
			if err != nil {
				t.Errorf("op %d: Delete: %v", i, err)
				return acked, false
			}
			if !ok {
				t.Errorf("op %d: Delete(%d) found nothing live", i, handles[op.target])
				return acked, false
			}
		} else {
			h, err := d.Insert(op.obj)
			if err != nil {
				t.Errorf("op %d: Insert: %v", i, err)
				return acked, false
			}
			handles[i] = h
		}
		acked++
		hist.ops[acked-1] = op
		hist.len.Store(int64(acked))
	}
	return acked, false
}

// linVerifySnapshot checks one pinned view against the invidx baseline of
// the acked prefix at the view's seq: Len, a seeded sample of queries, and
// repeatability of each query on the same view. Returns false (with
// t.Errorf) on any divergence.
func linVerifySnapshot(t *testing.T, v *core.DynSnapshot, hist *linHistory, rng *rand.Rand) bool {
	seq := v.Seq()
	if !hist.waitFor(seq) {
		t.Errorf("history never covered pinned seq %d", seq)
		return false
	}
	live, _ := modelAfter(hist.ops, int(seq))
	if v.Len() != len(live) {
		t.Errorf("snapshot at seq %d: Len=%d, model has %d", seq, v.Len(), len(live))
		return false
	}
	handles := make([]int64, 0, len(live))
	for h := range live {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	var baseline *invidx.Index
	if len(live) > 0 {
		objs := make([]dataset.Object, len(handles))
		for i, h := range handles {
			// Clone: dataset.New normalizes docs in place, and these slices
			// are shared with the history (and with concurrent readers
			// building their own baselines from the same ops).
			o := live[h]
			objs[i] = dataset.Object{
				Point: append(geom.Point(nil), o.Point...),
				Doc:   append([]dataset.Keyword(nil), o.Doc...),
			}
		}
		ds, err := dataset.New(objs)
		if err != nil {
			t.Errorf("baseline dataset at seq %d: %v", seq, err)
			return false
		}
		baseline = invidx.Build(ds)
	}
	rects := []*geom.Rect{
		geom.NewRect([]float64{-1, -1}, []float64{2, 2}),
		geom.NewRect([]float64{0, 0}, []float64{0.5, 0.5}),
		geom.NewRect([]float64{0.3, 0.1}, []float64{0.9, 1}),
	}
	for trial := 0; trial < 4; trial++ {
		a := rng.Intn(7)
		b := a + 1 + rng.Intn(7-a)
		ws := []dataset.Keyword{dataset.Keyword(a), dataset.Keyword(b)}
		q := rects[rng.Intn(len(rects))]
		got, _, err := v.Collect(q, ws)
		if err != nil {
			t.Errorf("snapshot Collect at seq %d: %v", seq, err)
			return false
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []int64
		if baseline != nil {
			for _, id := range baseline.KeywordsOnly(q, ws) {
				want = append(want, handles[id])
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("snapshot at seq %d, ws %v: got %v, baseline %v", seq, ws, got, want)
			return false
		}
		// Repeatability: the same pinned view must answer identically even
		// though the writer kept mutating after the first run.
		again, _, err := v.Collect(q, ws)
		if err != nil {
			t.Errorf("snapshot re-Collect at seq %d: %v", seq, err)
			return false
		}
		sort.Slice(again, func(i, j int) bool { return again[i] < again[j] })
		if fmt.Sprint(again) != fmt.Sprint(got) {
			t.Errorf("pinned view at seq %d not repeatable: %v then %v", seq, got, again)
			return false
		}
	}
	return true
}

// runConcurrentHistory drives one full concurrent history against d:
// 1 writer, 1 checkpointer, nReaders verifying readers. Returns the number
// of acked ops and whether a mutator hit an armed crash failpoint.
func runConcurrentHistory(t *testing.T, d *Durable, ops []crashOp, nReaders int, seed int64) (acked int, crashed bool) {
	t.Helper()
	hist := &linHistory{ops: make([]crashOp, len(ops))}
	var stop atomic.Bool // set on crash or writer completion
	var wg sync.WaitGroup
	verified := new(atomic.Int64)

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed<<8 + int64(r)))
			for !stop.Load() {
				if linVerifySnapshot(t, d.Snapshot(), hist, rng) {
					verified.Add(1)
				} else {
					return
				}
			}
		}(r)
	}

	ckptDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ckptDone)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashPanic); !ok {
					panic(r)
				}
				stop.Store(true)
			}
		}()
		for !stop.Load() {
			time.Sleep(2 * time.Millisecond)
			if err := d.Checkpoint(); err != nil && err != ErrClosed {
				t.Errorf("concurrent checkpoint: %v", err)
				return
			}
		}
	}()

	acked, crashed = linWriter(t, d, ops, hist, &stop)
	stop.Store(true)
	wg.Wait()
	if !crashed {
		// Let every reader finish at least one verification even on short
		// histories (they all stop once the flag is up).
		if verified.Load() == 0 {
			rng := rand.New(rand.NewSource(seed))
			linVerifySnapshot(t, d.Snapshot(), hist, rng)
		}
	}
	return acked, crashed
}

// TestLinearizableConcurrentHistory is the clean-run harness: randomized
// concurrent histories under both fsync policies, with pinned mid-history
// views re-checked after the full history for byte-identical answers.
func TestLinearizableConcurrentHistory(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Option
		ops  int
	}{
		{"fsync=none", WithSyncPolicy(SyncNone), 400},
		{"fsync=every-op", WithSyncPolicy(SyncEveryOp), 150},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := mustOpen(t, dir, tc.opt)
			defer d.Close()
			ops := crashWorkload(31, tc.ops)
			acked, crashed := runConcurrentHistory(t, d, ops, 4, 1009)
			if crashed || acked != len(ops) {
				t.Fatalf("clean run: acked=%d crashed=%v", acked, crashed)
			}
			// Final state equals the full-history model.
			live, _ := modelAfter(ops, len(ops))
			verifyAgainstBaseline(t, d, live)
			// And a snapshot pinned now stays byte-identical across churn.
			v := d.Snapshot()
			all := geom.NewRect([]float64{-1, -1}, []float64{2, 2})
			ws := []dataset.Keyword{0, 1}
			before, _, err := v.Collect(all, ws)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 80; i++ {
				mustInsert(t, d, 9000+i)
			}
			after, _, err := v.Collect(all, ws)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(before) != fmt.Sprint(after) {
				t.Fatalf("pinned view drifted under churn: %v then %v", before, after)
			}
			if v.Seq() != uint64(acked) {
				t.Fatalf("pinned seq = %d, want %d", v.Seq(), acked)
			}
		})
	}
}

// TestLinearizableConcurrentCrash arms a crash at each write-path and
// checkpoint-path failpoint while the concurrent history runs, keeps readers
// verifying through the crash, then recovers the directory and proves the
// acked prefix survived exactly.
func TestLinearizableConcurrentCrash(t *testing.T) {
	for _, tc := range []struct {
		site string
		nth  int
	}{
		{FPAppend, 23},
		{FPAppend, 61},
		{FPSync, 17},
		{FPSync, 49},
		{FPCheckpointWrite, 1},
		{FPCheckpointRename, 1},
	} {
		t.Run(fmt.Sprintf("%s-%d", tc.site, tc.nth), func(t *testing.T) {
			dir := t.TempDir()
			d := mustOpen(t, dir) // SyncEveryOp default
			ops := crashWorkload(int64(tc.nth)*13, 120)
			armCrash(t, tc.site, tc.nth)
			acked, crashed := runConcurrentHistory(t, d, ops, 3, int64(tc.nth))
			if !crashed {
				t.Skipf("failpoint %s hit fewer than %d times", tc.site, tc.nth)
			}
			// Readers saw only published (acked) states throughout; now the
			// reopened store must hold the acked prefix, at most one
			// in-flight op beyond it.
			crashAndRecover(t, dir, ops, acked)
		})
	}
}

// TestLinearizableReplayCrash completes a concurrent history, then crashes
// recovery itself mid-replay (FPReplay): a second recovery must start from
// scratch and still reconstruct the full acked history.
func TestLinearizableReplayCrash(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir)
	ops := crashWorkload(271, 90)
	acked, crashed := runConcurrentHistory(t, d, ops, 3, 4211)
	if crashed || acked != len(ops) {
		t.Fatalf("clean run: acked=%d crashed=%v", acked, crashed)
	}
	// The concurrent run's checkpointer may have superseded almost the whole
	// log; append a checkpoint-free tail of inserts so recovery is guaranteed
	// to replay enough records for the failpoint to fire.
	for i := 0; i < 40; i++ {
		op := crashOp{obj: testObj(5000 + i)}
		if _, err := d.Insert(op.obj); err != nil {
			t.Fatalf("tail insert %d: %v", i, err)
		}
		ops = append(ops, op)
		acked++
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	armCrash(t, FPReplay, 30)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashPanic); !ok {
					panic(r)
				}
			}
		}()
		Open(dir, 2, 2)
		t.Fatal("replay failpoint never fired")
	}()
	crashAndRecover(t, dir, ops, acked)
}

// TestReadersNotBlockedBySlowFsync pins the non-blocking-readers contract
// directly: with a writer stalled inside the pre-fsync failpoint (holding
// the write lock), queries, snapshots, and metrics accessors must all
// complete promptly.
func TestReadersNotBlockedBySlowFsync(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir) // SyncEveryOp
	for i := 0; i < 40; i++ {
		mustInsert(t, d, i)
	}
	release := make(chan struct{})
	stalled := make(chan struct{})
	core.ArmFailpoint(FPSync, func() {
		close(stalled)
		<-release
	})
	t.Cleanup(core.DisarmAllFailpoints)
	go d.Insert(testObj(999)) // parks inside the "fsync"
	<-stalled

	done := make(chan struct{})
	go func() {
		defer close(done)
		all := geom.NewRect([]float64{-1, -1}, []float64{2, 2})
		if _, _, err := d.Collect(all, []dataset.Keyword{0, 1}); err != nil {
			t.Errorf("Collect during stalled fsync: %v", err)
		}
		v := d.Snapshot()
		if _, _, err := v.Collect(all, []dataset.Keyword{0, 1}); err != nil {
			t.Errorf("snapshot Collect during stalled fsync: %v", err)
		}
		_ = d.Len()
		_ = d.LastSeq()
		_ = d.NumBuckets()
		_ = d.Tombstones()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("readers blocked behind a stalled fsync")
	}
	close(release)
	core.DisarmAllFailpoints()
}

// TestConcurrentWritersFinalState hammers one Durable from several writer
// goroutines (contending on the write lock) with readers in flight, then
// checks the final state against the set of acknowledged operations —
// inserts are identified by their returned handles, so the final live set is
// order-independent — and that it survives a reopen.
func TestConcurrentWritersFinalState(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, WithSyncPolicy(SyncNone))
	const writers, perWriter = 4, 60

	var mu sync.Mutex
	live := map[int64]dataset.Object{} // acked inserts minus acked deletes
	var wg sync.WaitGroup
	var stop atomic.Bool
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			all := geom.NewRect([]float64{-1, -1}, []float64{2, 2})
			for !stop.Load() {
				v := d.Snapshot()
				if _, _, err := v.Collect(all, []dataset.Keyword{0, 1}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var mine []int64
			for i := 0; i < perWriter; i++ {
				if len(mine) > 8 && rng.Intn(3) == 0 {
					h := mine[0]
					mine = mine[1:]
					ok, err := d.Delete(h)
					if err != nil || !ok {
						t.Errorf("writer %d: Delete(%d)=%v,%v", w, h, ok, err)
						return
					}
					mu.Lock()
					delete(live, h)
					mu.Unlock()
					continue
				}
				obj := testObj(w*1000 + i)
				h, err := d.Insert(obj)
				if err != nil {
					t.Errorf("writer %d: Insert: %v", w, err)
					return
				}
				mine = append(mine, h)
				mu.Lock()
				live[h] = obj
				mu.Unlock()
			}
		}(w)
	}
	ww.Wait()
	stop.Store(true)
	wg.Wait()
	verifyAgainstBaseline(t, d, live)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir)
	defer d2.Close()
	verifyAgainstBaseline(t, d2, live)
}
